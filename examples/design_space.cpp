// Design-space exploration (paper §VI-D): should my embedded CPU include an
// FPU? Compile the application with the FPU and with -msoft-float, estimate
// both via the NFP model, and weigh the savings against the chip area.
//
// The application is a Gaussian blur with double-precision weights — a
// typical image-processing kernel whose FP share decides the answer.
#include <cstdio>

#include "board/area.h"
#include "mcc/compiler.h"
#include "nfp/calibration.h"
#include "nfp/estimator.h"
#include "sim/iss.h"

namespace {

const char* kBlurSource = R"(
#define W 32
#define H 32
unsigned char image[1024];
unsigned char blurred[1024];
double kernel3[9] = {0.0625, 0.125, 0.0625,
                     0.125,  0.25,  0.125,
                     0.0625, 0.125, 0.0625};

int main() {
  for (int i = 0; i < W * H; i++) image[i] = (unsigned char)((i * 131) % 256);
  for (int y = 1; y < H - 1; y++) {
    for (int x = 1; x < W - 1; x++) {
      double acc = 0.0;
      for (int dy = -1; dy <= 1; dy++) {
        for (int dx = -1; dx <= 1; dx++) {
          acc += kernel3[(dy + 1) * 3 + dx + 1] *
                 (double)image[(y + dy) * W + x + dx];
        }
      }
      blurred[y * W + x] = (unsigned char)(int)(acc + 0.5);
    }
  }
  return blurred[W * 15 + 15];
}
)";

nfp::model::Estimate estimate_abi(nfp::mcc::FloatAbi abi,
                                  const nfp::model::CategoryCosts& costs) {
  nfp::mcc::CompileOptions opts;
  opts.float_abi = abi;
  const auto program = nfp::mcc::Compiler(opts).compile({kBlurSource});
  nfp::sim::Iss iss;
  iss.load(program);
  const auto run = iss.run();
  std::printf("  %-10s %9llu instructions\n",
              abi == nfp::mcc::FloatAbi::kHard ? "float:" : "fixed:",
              static_cast<unsigned long long>(run.instret));
  return nfp::model::estimate(iss.counters().counts,
                              nfp::model::CategoryScheme::paper(), costs);
}

}  // namespace

int main() {
  std::printf("Design question: does a Gaussian blur justify an FPU?\n\n");

  nfp::board::BoardConfig cfg;
  const auto calibration = nfp::model::Calibrator().run(cfg);

  std::printf("simulating both hardware options:\n");
  const auto with_fpu = estimate_abi(nfp::mcc::FloatAbi::kHard,
                                     calibration.costs);
  const auto without_fpu = estimate_abi(nfp::mcc::FloatAbi::kSoft,
                                        calibration.costs);

  const double e_save = (1.0 - with_fpu.energy_nj / without_fpu.energy_nj) * 100.0;
  const double t_save = (1.0 - with_fpu.time_s / without_fpu.time_s) * 100.0;

  nfp::board::AreaModel area;
  nfp::board::BoardConfig no_fpu_cfg = cfg;
  no_fpu_cfg.has_fpu = false;
  const auto les_with = area.synthesize(cfg).total();
  const auto les_without = area.synthesize(no_fpu_cfg).total();

  std::printf("\nwith FPU:    %8.3f ms  %8.1f uJ  %u logical elements\n",
              with_fpu.time_s * 1e3, with_fpu.energy_nj * 1e-3, les_with);
  std::printf("without FPU: %8.3f ms  %8.1f uJ  %u logical elements\n",
              without_fpu.time_s * 1e3, without_fpu.energy_nj * 1e-3,
              les_without);
  std::printf("\nFPU saves %.1f%% energy and %.1f%% time for +%.0f%% area.\n",
              e_save, t_save,
              (les_with - les_without) * 100.0 / les_without);
  if (e_save > 60.0) {
    std::printf("=> recommendation: include the FPU (large FP share).\n");
  } else if (e_save > 25.0) {
    std::printf("=> recommendation: depends on the energy/area budget.\n");
  } else {
    std::printf("=> recommendation: skip the FPU, spend the area "
                "elsewhere.\n");
  }
  return 0;
}
