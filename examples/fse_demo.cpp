// Error concealment demo: lose a block of an image, reconstruct it with
// Frequency Selective Extrapolation on the simulated target, and report
// both the reconstruction quality and what the reconstruction costs in
// time and energy on the embedded CPU.
#include <cstdio>

#include "fse/fse_ref.h"
#include "fse/image_gen.h"
#include "nfp/calibration.h"
#include "nfp/estimator.h"
#include "sim/iss.h"
#include "sim/memmap.h"
#include "workloads/kernels.h"

namespace {

void render(const std::vector<double>& img, const std::vector<int>* mask) {
  static const char* kShades = " .:-=+*#%@";
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      const std::size_t i = static_cast<std::size_t>(y) * 16 + x;
      if (mask != nullptr && (*mask)[i]) {
        std::printf("??");
        continue;
      }
      int level = static_cast<int>(img[i] / 25.6);
      if (level < 0) level = 0;
      if (level > 9) level = 9;
      std::printf("%c%c", kShades[level], kShades[level]);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  const auto original = nfp::fse::make_image(16, 7);
  const auto mask = nfp::fse::make_mask(16, 7, nfp::fse::MaskKind::kBlock);
  auto distorted = original;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i]) distorted[i] = 0.0;
  }

  std::printf("received image (?? = lost samples):\n");
  render(distorted, &mask);

  // Run the Micro-C FSE on the simulated target CPU (with FPU).
  nfp::sim::Iss iss;
  iss.load(nfp::workloads::fse_program(nfp::mcc::FloatAbi::kHard));
  const auto blob = nfp::workloads::fse_input_blob(distorted, mask, 48, 0.9);
  iss.bus().write_block(nfp::sim::kInputBase, blob.data(), blob.size());
  const auto run = iss.run();
  if (!run.halted || run.exit_code != 0) {
    std::printf("FSE kernel failed (exit %u)\n", run.exit_code);
    return 1;
  }
  std::vector<double> restored(256);
  for (int i = 0; i < 256; ++i) {
    restored[i] = iss.bus().read_f64(nfp::sim::kOutputBase + 8 * i);
  }

  std::printf("\nreconstruction (FSE, 48 iterations, on the simulated "
              "target):\n");
  render(restored, nullptr);

  std::printf("\nmasked-region PSNR: %.1f dB (zero-fill: %.1f dB)\n",
              nfp::fse::masked_psnr(original, restored, mask),
              nfp::fse::masked_psnr(original, distorted, mask));

  // What does this reconstruction cost on the device?
  nfp::board::BoardConfig cfg;
  const auto calibration = nfp::model::Calibrator().run(cfg);
  const auto est = nfp::model::estimate(iss.counters().counts,
                                        nfp::model::CategoryScheme::paper(),
                                        calibration.costs);
  std::printf("estimated cost on target: %.2f ms, %.2f mJ (%llu "
              "instructions)\n",
              est.time_s * 1e3, est.energy_nj * 1e-6,
              static_cast<unsigned long long>(run.instret));
  return 0;
}
