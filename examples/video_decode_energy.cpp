// Scenario from the paper's introduction: a battery-constrained device
// decoding video. How much decode energy does each quality setting (QP)
// cost? Estimated entirely on the virtual platform — no hardware, no power
// meter.
#include <cstdio>

#include "codecs/sequence_gen.h"
#include "nfp/calibration.h"
#include "nfp/estimator.h"
#include "nfp/report.h"
#include "sim/iss.h"
#include "sim/memmap.h"
#include "workloads/kernels.h"

int main() {
  std::printf("Video decode energy vs quality (48x48, 5 frames, lowdelay)\n\n");

  nfp::board::BoardConfig cfg;
  const auto calibration = nfp::model::Calibrator().run(cfg);
  const auto& program = nfp::workloads::mvc_program(nfp::mcc::FloatAbi::kHard);

  const auto frames = nfp::codec::make_sequence(
      48, 48, 5, nfp::codec::SequenceKind::kPanningTexture, 2026);

  nfp::model::TextTable table({"QP", "bitstream [bytes]", "PSNR [dB]",
                               "decode time [ms]", "decode energy [mJ]"});
  for (const int qp : {10, 20, 32, 45}) {
    const auto enc =
        nfp::codec::encode(frames, 48, 48, qp, nfp::codec::Config::kLowdelay);
    const auto golden = nfp::codec::golden_decode(enc.stream);
    double quality = 0.0;
    for (std::size_t f = 0; f < frames.size(); ++f) {
      quality += nfp::codec::psnr(frames[f], golden.frames[f]);
    }
    quality /= static_cast<double>(frames.size());

    nfp::sim::Iss iss;
    iss.load(program);
    const auto blob = enc.stream.to_input_blob();
    iss.bus().write_block(nfp::sim::kInputBase, blob.data(), blob.size());
    const auto run = iss.run();
    if (!run.halted || run.exit_code != 0) {
      std::printf("decode failed at qp %d\n", qp);
      return 1;
    }
    const auto est = nfp::model::estimate(iss.counters().counts,
                                          nfp::model::CategoryScheme::paper(),
                                          calibration.costs);
    table.add_row({std::to_string(qp),
                   std::to_string(enc.stream.payload.size()),
                   nfp::model::TextTable::fmt(quality, 1),
                   nfp::model::TextTable::fmt(est.time_s * 1e3, 2),
                   nfp::model::TextTable::fmt(est.energy_nj * 1e-6, 2)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\n(the developer reads off the quality/energy trade-off "
              "before any hardware exists)\n");
  return 0;
}
