// Quickstart: estimate the processing time and energy of a program without
// measuring it — the paper's core workflow in ~60 lines.
//
//  1. Write the embedded application (Micro-C).
//  2. Calibrate the per-category costs once on the (simulated) board.
//  3. Run the application on the instruction-accurate simulator and apply
//     Eq. 1 to its instruction counts.
//  4. Compare with a real "bench measurement" to see the accuracy.
#include <cstdio>

#include "board/board.h"
#include "mcc/compiler.h"
#include "nfp/calibration.h"
#include "nfp/estimator.h"
#include "sim/iss.h"

int main() {
  // 1. The application: a 16-tap FIR filter over a sample buffer.
  const char* source = R"(
int samples[256];
int coeff[16] = {1, 2, 4, 6, 9, 12, 14, 15, 15, 14, 12, 9, 6, 4, 2, 1};
int output[256];

int main() {
  for (int i = 0; i < 256; i++) samples[i] = (i * 37 + 11) % 255;
  for (int i = 0; i < 240; i++) {
    int acc = 0;
    for (int t = 0; t < 16; t++) acc += samples[i + t] * coeff[t];
    output[i] = acc >> 7;
  }
  return output[100];
}
)";
  const auto program = nfp::mcc::Compiler().compile({source});

  // 2. Calibrate the nine-category model (Table I / Eq. 2).
  nfp::board::BoardConfig board_cfg;
  nfp::model::Calibrator calibrator;
  const auto calibration = calibrator.run(board_cfg);
  std::printf("calibrated %zu categories (e.g. Memory Load: %.0f ns, "
              "%.0f nJ per instruction)\n",
              calibration.costs.size(), calibration.costs.time_ns[2],
              calibration.costs.energy_nj[2]);

  // 3. Instruction-accurate simulation + Eq. 1.
  nfp::sim::Iss iss;
  iss.load(program);
  const auto run = iss.run();
  std::printf("ISS: program halted with exit code %u after %llu "
              "instructions\n",
              run.exit_code, static_cast<unsigned long long>(run.instret));

  const auto estimate = nfp::model::estimate(
      iss.counters().counts, nfp::model::CategoryScheme::paper(),
      calibration.costs);
  std::printf("estimated:  %.3f ms, %.3f uJ\n", estimate.time_s * 1e3,
              estimate.energy_nj * 1e-3);

  // 4. Ground truth from the measurement board.
  nfp::board::Board board(board_cfg);
  board.load(program);
  board.run();
  const auto measured = board.measure("quickstart-fir");
  std::printf("measured:   %.3f ms, %.3f uJ\n", measured.time_s * 1e3,
              measured.energy_nj * 1e-3);
  std::printf("error:      time %+.2f%%, energy %+.2f%%\n",
              (estimate.time_s - measured.time_s) / measured.time_s * 100.0,
              (estimate.energy_nj - measured.energy_nj) /
                  measured.energy_nj * 100.0);
  return 0;
}
