// A scripted debug session with the board's debug monitor (the GRMON-like
// interface the paper's test stand was driven with): compile a program,
// set a breakpoint, inspect registers and memory, and read the energy
// counters — everything a developer would do on the bench, on the virtual
// platform instead.
#include <cstdio>

#include "board/monitor.h"
#include "mcc/compiler.h"

int main() {
  const char* source = R"(
int table[10];
int main() {
  for (int i = 0; i < 10; i++) table[i] = i * i;
  int sum = 0;
  for (int i = 0; i < 10; i++) sum += table[i];
  return sum;  /* 285 */
}
)";
  const auto program = nfp::mcc::Compiler().compile({source});

  nfp::board::Board board;
  board.load(program);
  nfp::board::DebugMonitor monitor(board);

  const char* session[] = {
      "dis 0x40000000 4",  // entry stub
      "break 0x40000004",  // the delay-slot nop after `call F_main`... run
      "run",
      "reg",
      "delete 0x40000004",
      "step 40",
      "info",
      "run",
      "info",
  };
  for (const char* cmd : session) {
    std::printf("grmon> %s\n%s\n", cmd, monitor.command(cmd).c_str());
  }

  const auto table_addr = program.find_symbol("G_table");
  if (table_addr) {
    std::printf("grmon> mem G_table 12\n%s\n",
                monitor.command("mem " + std::to_string(*table_addr) + " 12")
                    .c_str());
  }
  std::printf("final exit code: %u (expect 285)\n", board.cpu().exit_code);
  return board.cpu().exit_code == 285 ? 0 : 1;
}
