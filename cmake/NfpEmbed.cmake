# nfp_embed_mc(<out_var> <symbol> <absolute-input-path>)
# Generates a .cpp defining `nfp::rtlib::<symbol>` as a string_view holding
# the file contents, and returns its path in <out_var>.
function(nfp_embed_mc out_var symbol input)
  get_filename_component(name "${input}" NAME_WE)
  set(gen "${CMAKE_CURRENT_BINARY_DIR}/${name}_embedded.cpp")
  add_custom_command(
    OUTPUT "${gen}"
    COMMAND ${CMAKE_COMMAND} -DINPUT=${input} -DOUTPUT=${gen}
            -DSYMBOL=${symbol} -P ${CMAKE_SOURCE_DIR}/cmake/embed.cmake
    DEPENDS "${input}" "${CMAKE_SOURCE_DIR}/cmake/embed.cmake"
    COMMENT "Embedding ${name}")
  set(${out_var} "${gen}" PARENT_SCOPE)
endfunction()
