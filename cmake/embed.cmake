# Embeds a text file into a C++ translation unit as a raw string literal.
# Usage: cmake -DINPUT=<file> -DOUTPUT=<cpp> -DSYMBOL=<name> -P embed.cmake
file(READ "${INPUT}" CONTENT)
file(WRITE "${OUTPUT}" "// Generated from ${INPUT} -- do not edit.
#include <string_view>

namespace nfp::rtlib {
extern const std::string_view ${SYMBOL};
const std::string_view ${SYMBOL} = R\"MCSRC(${CONTENT})MCSRC\";
}  // namespace nfp::rtlib
")
