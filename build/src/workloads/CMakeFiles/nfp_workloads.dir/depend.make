# Empty dependencies file for nfp_workloads.
# This may be replaced when dependencies are built.
