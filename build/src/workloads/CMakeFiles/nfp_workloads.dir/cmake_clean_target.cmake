file(REMOVE_RECURSE
  "libnfp_workloads.a"
)
