file(REMOVE_RECURSE
  "CMakeFiles/nfp_workloads.dir/fse_embedded.cpp.o"
  "CMakeFiles/nfp_workloads.dir/fse_embedded.cpp.o.d"
  "CMakeFiles/nfp_workloads.dir/kernels.cpp.o"
  "CMakeFiles/nfp_workloads.dir/kernels.cpp.o.d"
  "CMakeFiles/nfp_workloads.dir/mvc_dec_embedded.cpp.o"
  "CMakeFiles/nfp_workloads.dir/mvc_dec_embedded.cpp.o.d"
  "CMakeFiles/nfp_workloads.dir/sobel_embedded.cpp.o"
  "CMakeFiles/nfp_workloads.dir/sobel_embedded.cpp.o.d"
  "fse_embedded.cpp"
  "libnfp_workloads.a"
  "libnfp_workloads.pdb"
  "mvc_dec_embedded.cpp"
  "sobel_embedded.cpp"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
