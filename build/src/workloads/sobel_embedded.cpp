// Generated from /root/repo/src/workloads/mc/sobel.c -- do not edit.
#include <string_view>

namespace nfp::rtlib {
extern const std::string_view kSobelSource;
const std::string_view kSobelSource = R"MCSRC(/* Sobel edge detection -- Micro-C target implementation.
 *
 * The paper's future work includes "evaluat[ing] the estimation accuracy of
 * this model for further algorithms". This kernel provides a third,
 * pure-integer image-processing workload with a different instruction mix
 * from both MVC (entropy-decoding heavy) and FSE (floating-point heavy):
 * regular stencil loads, multiplies, and a histogram with data-dependent
 * stores. It contains no floating-point at all, so the float and fixed
 * builds are identical -- the FPU design question has a clear "no" answer.
 *
 * Target memory protocol (MC_TARGET):
 *   input  @ 0x40800000: words [magic 0x534F4231, width, height],
 *                        width*height image bytes @ +12
 *   output @ 0x40C00000: width*height edge-magnitude bytes, then 4-aligned:
 *                        64-bin magnitude histogram (words)
 */

#define SOB_MAGIC 0x534F4231
#define SOB_MAX_W 64
#define SOB_MAX_H 64

int sob_clamp255(int v) {
  if (v < 0) return 0;
  if (v > 255) return 255;
  return v;
}

void sobel(unsigned char* in, unsigned char* out, int* hist, int width,
           int height) {
  int x;
  int y;
  for (x = 0; x < 64; x++) hist[x] = 0;
  for (y = 0; y < height; y++) {
    for (x = 0; x < width; x++) {
      int gx;
      int gy;
      int mag;
      if (x == 0 || y == 0 || x == width - 1 || y == height - 1) {
        out[y * width + x] = 0;
        hist[0] = hist[0] + 1;
        continue;
      }
      gx = -(int)in[(y - 1) * width + x - 1] + (int)in[(y - 1) * width + x + 1]
           - 2 * (int)in[y * width + x - 1] + 2 * (int)in[y * width + x + 1]
           - (int)in[(y + 1) * width + x - 1] + (int)in[(y + 1) * width + x + 1];
      gy = -(int)in[(y - 1) * width + x - 1] - 2 * (int)in[(y - 1) * width + x]
           - (int)in[(y - 1) * width + x + 1] + (int)in[(y + 1) * width + x - 1]
           + 2 * (int)in[(y + 1) * width + x] + (int)in[(y + 1) * width + x + 1];
      if (gx < 0) gx = -gx;
      if (gy < 0) gy = -gy;
      /* |g| ~ max + min/2 (integer magnitude approximation) */
      if (gx > gy) {
        mag = gx + (gy >> 1);
      } else {
        mag = gy + (gx >> 1);
      }
      mag = sob_clamp255(mag >> 2);
      out[y * width + x] = (unsigned char)mag;
      hist[mag >> 2] = hist[mag >> 2] + 1;
    }
  }
}

#ifdef MC_TARGET
int main(void) {
  int* header = (int*)0x40800000;
  unsigned char* image = (unsigned char*)0x4080000C;
  unsigned char* out = (unsigned char*)0x40C00000;
  int width;
  int height;
  int* hist;

  if (header[0] != SOB_MAGIC) return 1;
  width = header[1];
  height = header[2];
  if (width > SOB_MAX_W || height > SOB_MAX_H) return 2;
  hist = (int*)(0x40C00000 + ((width * height + 3) & ~3));
  sobel(image, out, hist, width, height);
  return 0;
}
#endif
)MCSRC";
}  // namespace nfp::rtlib
