// Generated from /root/repo/src/workloads/mc/mvc_dec.c -- do not edit.
#include <string_view>

namespace nfp::rtlib {
extern const std::string_view kMvcDecSource;
const std::string_view kMvcDecSource = R"MCSRC(/* MVC ("mini video codec") decoder -- Micro-C target implementation.
 *
 * An HEVC-flavoured block codec standing in for the paper's HM reference
 * decoder: 8x8 blocks, intra prediction (DC/V/H/planar), full-pel motion
 * compensation with optional two-hypothesis averaging, an HEVC 8x8 integer
 * inverse transform, scalar dequantisation, zigzag run-level entropy
 * decoding (Exp-Golomb), and a weak deblocking filter. Integer arithmetic
 * throughout, with a small double-precision tail (activity statistics and
 * timing), mirroring HM's "few floating point operations".
 *
 * The file is dual-compilable; the host encoder #includes it to reuse the
 * exact reconstruction primitives (inverse transform, prediction, deblock,
 * dequant), which keeps the encoder's closed loop bit-identical to this
 * decoder.
 *
 * Bitstream payload (MSB-first bits):
 *   per frame: 1 bit frame_type (1=intra)
 *     per 8x8 block, raster order:
 *       intra frame:  2 bits intra mode, residual
 *       inter frame:  2 bits block mode (0 skip / 1 inter / 2 intra /
 *                     3 bipred), then mode-dependent: MV(s) as signed
 *                     Exp-Golomb, intra mode bits, residual
 *   residual: 1 bit coded flag; if set: last_pos (EG), then per zigzag
 *             position: 1 bit significance; if set |level|-1 (EG) + sign.
 *
 * Target memory protocol (MC_TARGET):
 *   input  @ 0x40800000: words [magic 0x4D564331, width, height, frames,
 *                        qp, config, payload_bytes], payload @ +28
 *   output @ 0x40C00000: frames*width*height reconstructed bytes,
 *                        then 8-aligned: 2 doubles (activity, elapsed)
 */

#define MVC_MAGIC 0x4D564331
#define MVC_BLOCK 8
#define MVC_MAX_W 64
#define MVC_MAX_H 64
#define MVC_MAX_AREA 4096

/* ---- tables --------------------------------------------------------------- */

/* HEVC 8-point integer DCT basis. */
int mvc_t8[64] = {
    64, 64,  64,  64,  64,  64,  64,  64,
    89, 75,  50,  18, -18, -50, -75, -89,
    83, 36, -36, -83, -83, -36,  36,  83,
    75, -18, -89, -50,  50,  89,  18, -75,
    64, -64, -64,  64,  64, -64, -64,  64,
    50, -89,  18,  75, -75, -18,  89, -50,
    36, -83,  83, -36, -36,  83, -83,  36,
    18, -50,  75, -89,  89, -75,  50, -18};

/* JPEG-style zigzag scan for 8x8. */
int mvc_zigzag[64] = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

/* Quantiser step in Q4: round(16 * 2^((qp-4)/6)), qp = 0..51. */
int mvc_qstep_q4[52] = {
    10,   11,   13,   14,   16,   18,   20,   23,   25,   29,   32,  36,
    40,   45,   51,   57,   64,   72,   81,   91,   102,  114,  128, 144,
    161,  181,  203,  228,  256,  287,  323,  362,  406,  456,  512, 575,
    645,  724,  813,  912,  1024, 1149, 1290, 1448, 1625, 1825, 2048, 2299,
    2580, 2896, 3251, 3649};

/* ---- bit reader ------------------------------------------------------------ */

unsigned char* mvc_br_buf;
int mvc_br_bitpos;
int mvc_br_bitlen;

void mvc_br_init(unsigned char* buf, int length_bytes) {
  mvc_br_buf = buf;
  mvc_br_bitpos = 0;
  mvc_br_bitlen = length_bytes * 8;
}

int mvc_br_bit(void) {
  int byte_index;
  int bit_index;
  int bit;
  if (mvc_br_bitpos >= mvc_br_bitlen) return 0;
  byte_index = mvc_br_bitpos >> 3;
  bit_index = 7 - (mvc_br_bitpos & 7);
  bit = (mvc_br_buf[byte_index] >> bit_index) & 1;
  mvc_br_bitpos = mvc_br_bitpos + 1;
  return bit;
}

int mvc_br_bits(int count) {
  int value = 0;
  int i;
  for (i = 0; i < count; i++) value = (value << 1) | mvc_br_bit();
  return value;
}

/* Unsigned Exp-Golomb. */
int mvc_br_ue(void) {
  int zeros = 0;
  while (mvc_br_bit() == 0) {
    zeros = zeros + 1;
    if (zeros > 30) return 0;
  }
  if (zeros == 0) return 0;
  return (1 << zeros) - 1 + mvc_br_bits(zeros);
}

/* Signed Exp-Golomb (0, 1, -1, 2, -2, ...). */
int mvc_br_se(void) {
  int v = mvc_br_ue();
  if (v == 0) return 0;
  if (v & 1) return (v + 1) >> 1;
  return -(v >> 1);
}

/* ---- reconstruction primitives (shared with the host encoder) ------------- */

int mvc_clip255(int v) {
  if (v < 0) return 0;
  if (v > 255) return 255;
  return v;
}

/* Dequantise one coefficient. */
int mvc_dequant(int level, int qp) {
  return (level * mvc_qstep_q4[qp] + 8) >> 4;
}

/* 8x8 inverse transform: block = T^t * coeff * T with HEVC shifts. */
void mvc_idct8(int* coeff, int* block) {
  int tmp[64];
  int i;
  int j;
  int k;
  for (i = 0; i < 8; i++) {
    for (j = 0; j < 8; j++) {
      int acc = 0;
      for (k = 0; k < 8; k++) acc += mvc_t8[k * 8 + i] * coeff[k * 8 + j];
      tmp[i * 8 + j] = (acc + 64) >> 7;
    }
  }
  for (i = 0; i < 8; i++) {
    for (j = 0; j < 8; j++) {
      int acc = 0;
      for (k = 0; k < 8; k++) acc += tmp[i * 8 + k] * mvc_t8[k * 8 + j];
      block[i * 8 + j] = (acc + 2048) >> 12;
    }
  }
}

/* Intra prediction into pred[64]. Neighbours come from the reconstructed
 * frame `rec`; unavailable neighbours default to 128. */
void mvc_intra_pred(unsigned char* rec, int width, int bx, int by, int mode,
                    int* pred) {
  int t[8];
  int l[8];
  int have_top = by > 0;
  int have_left = bx > 0;
  int x;
  int y;
  for (x = 0; x < 8; x++) {
    t[x] = have_top ? rec[(by - 1) * width + bx + x] : 128;
  }
  for (y = 0; y < 8; y++) {
    l[y] = have_left ? rec[(by + y) * width + bx - 1] : 128;
  }
  if (mode == 0) { /* DC */
    int sum = 0;
    int dc;
    if (have_top && have_left) {
      for (x = 0; x < 8; x++) sum += t[x] + l[x];
      dc = (sum + 8) >> 4;
    } else if (have_top) {
      for (x = 0; x < 8; x++) sum += t[x];
      dc = (sum + 4) >> 3;
    } else if (have_left) {
      for (y = 0; y < 8; y++) sum += l[y];
      dc = (sum + 4) >> 3;
    } else {
      dc = 128;
    }
    for (y = 0; y < 8; y++) {
      for (x = 0; x < 8; x++) pred[y * 8 + x] = dc;
    }
  } else if (mode == 1) { /* vertical */
    for (y = 0; y < 8; y++) {
      for (x = 0; x < 8; x++) pred[y * 8 + x] = t[x];
    }
  } else if (mode == 2) { /* horizontal */
    for (y = 0; y < 8; y++) {
      for (x = 0; x < 8; x++) pred[y * 8 + x] = l[y];
    }
  } else { /* planar */
    int tr = t[7];
    int bl = l[7];
    for (y = 0; y < 8; y++) {
      for (x = 0; x < 8; x++) {
        pred[y * 8 + x] =
            ((7 - x) * l[y] + (x + 1) * tr + (7 - y) * t[x] + (y + 1) * bl +
             8) >> 4;
      }
    }
  }
}

/* Full-pel motion compensation from `ref` with frame-edge clipping. */
void mvc_motion_comp(unsigned char* ref, int width, int height, int bx,
                     int by, int mvx, int mvy, int* pred) {
  int x;
  int y;
  for (y = 0; y < 8; y++) {
    int sy = by + y + mvy;
    if (sy < 0) sy = 0;
    if (sy > height - 1) sy = height - 1;
    for (x = 0; x < 8; x++) {
      int sx = bx + x + mvx;
      if (sx < 0) sx = 0;
      if (sx > width - 1) sx = width - 1;
      pred[y * 8 + x] = ref[sy * width + sx];
    }
  }
}

/* Weak deblocking across all internal 8x8 edges of `rec`. */
void mvc_deblock(unsigned char* rec, int width, int height, int qp) {
  int tc = 2 + (qp >> 3);
  int x;
  int y;
  for (x = MVC_BLOCK; x < width; x += MVC_BLOCK) { /* vertical edges */
    for (y = 0; y < height; y++) {
      int p1 = rec[y * width + x - 2];
      int p0 = rec[y * width + x - 1];
      int q0 = rec[y * width + x];
      int q1 = rec[y * width + x + 1];
      int d = p0 - q0;
      if (d < 0) d = -d;
      if (d != 0 && d < tc) {
        rec[y * width + x - 1] = (unsigned char)((p1 + 2 * p0 + q0 + 2) >> 2);
        rec[y * width + x] = (unsigned char)((p0 + 2 * q0 + q1 + 2) >> 2);
      }
    }
  }
  for (y = MVC_BLOCK; y < height; y += MVC_BLOCK) { /* horizontal edges */
    for (x = 0; x < width; x++) {
      int p1 = rec[(y - 2) * width + x];
      int p0 = rec[(y - 1) * width + x];
      int q0 = rec[y * width + x];
      int q1 = rec[(y + 1) * width + x];
      int d = p0 - q0;
      if (d < 0) d = -d;
      if (d != 0 && d < tc) {
        rec[(y - 1) * width + x] = (unsigned char)((p1 + 2 * p0 + q0 + 2) >> 2);
        rec[y * width + x] = (unsigned char)((p0 + 2 * q0 + q1 + 2) >> 2);
      }
    }
  }
}

/* ---- residual decoding ------------------------------------------------------ */

/* Decodes one residual block into res[64] (spatial domain). Returns the
 * coded flag. */
int mvc_decode_residual(int* res, int qp) {
  int coeff[64];
  int i;
  int coded;
  for (i = 0; i < 64; i++) coeff[i] = 0;
  coded = mvc_br_bit();
  if (coded) {
    int last = mvc_br_ue();
    if (last > 64) last = 64;
    for (i = 0; i < last; i++) {
      if (mvc_br_bit()) {
        int level = mvc_br_ue() + 1;
        if (mvc_br_bit()) level = -level;
        coeff[mvc_zigzag[i]] = mvc_dequant(level, qp);
      }
    }
    mvc_idct8(coeff, res);
  } else {
    for (i = 0; i < 64; i++) res[i] = 0;
  }
  return coded;
}

/* ---- frame buffers ----------------------------------------------------------- */

unsigned char mvc_ref_frame[MVC_MAX_AREA];
unsigned char mvc_cur_frame[MVC_MAX_AREA];

/* ---- decoder ------------------------------------------------------------------ */

/* Decodes `frames` frames into out_frames (concatenated). stats_out gets
 * [0] = RMS pixel activity (double), [1] = elapsed target-clock seconds.
 * Returns 0 on success. */
int mvc_decode(unsigned char* payload, int payload_bytes, int width,
               int height, int frames, int qp, unsigned char* out_frames,
               double* stats_out) {
  int f;
  int bx;
  int by;
  int i;
  int pred[64];
  int res[64];
  unsigned t0;
  unsigned t1;
  double activity;
  int sample_count;

  if (width > MVC_MAX_W || height > MVC_MAX_H) return 1;
  if (qp < 0 || qp > 51) return 2;

  t0 = mc_clock();
  activity = 0.0;
  sample_count = 0;
  mvc_br_init(payload, payload_bytes);

  for (f = 0; f < frames; f++) {
    int frame_is_intra = mvc_br_bit();
    for (by = 0; by < height; by += MVC_BLOCK) {
      for (bx = 0; bx < width; bx += MVC_BLOCK) {
        int mode;
        int x;
        int y;
        int with_residual = 1;
        if (frame_is_intra) {
          mvc_intra_pred(mvc_cur_frame, width, bx, by, mvc_br_bits(2), pred);
        } else {
          mode = mvc_br_bits(2);
          if (mode == 0) { /* skip: copy co-located */
            mvc_motion_comp(mvc_ref_frame, width, height, bx, by, 0, 0,
                            pred);
            with_residual = 0;
          } else if (mode == 1) { /* inter */
            int mvx = mvc_br_se();
            int mvy = mvc_br_se();
            mvc_motion_comp(mvc_ref_frame, width, height, bx, by, mvx, mvy,
                            pred);
          } else if (mode == 2) { /* intra in inter frame */
            mvc_intra_pred(mvc_cur_frame, width, bx, by, mvc_br_bits(2),
                           pred);
          } else { /* bipred: average of two hypotheses */
            int mvx0 = mvc_br_se();
            int mvy0 = mvc_br_se();
            int mvx1 = mvc_br_se();
            int mvy1 = mvc_br_se();
            int second[64];
            mvc_motion_comp(mvc_ref_frame, width, height, bx, by, mvx0, mvy0,
                            pred);
            mvc_motion_comp(mvc_ref_frame, width, height, bx, by, mvx1, mvy1,
                            second);
            for (i = 0; i < 64; i++) pred[i] = (pred[i] + second[i] + 1) >> 1;
          }
        }
        if (with_residual) {
          mvc_decode_residual(res, qp);
        } else {
          for (i = 0; i < 64; i++) res[i] = 0;
        }
        for (y = 0; y < 8; y++) {
          for (x = 0; x < 8; x++) {
            mvc_cur_frame[(by + y) * width + bx + x] =
                (unsigned char)mvc_clip255(pred[y * 8 + x] + res[y * 8 + x]);
          }
        }
      }
    }
    mvc_deblock(mvc_cur_frame, width, height, qp);

    /* HM-style floating-point tail: per-frame activity statistics. */
    for (i = 0; i < width * height; i += 3) {
      double p = (double)mvc_cur_frame[i];
      activity += p * p;
      sample_count = sample_count + 1;
    }

    for (i = 0; i < width * height; i++) {
      out_frames[f * width * height + i] = mvc_cur_frame[i];
      mvc_ref_frame[i] = mvc_cur_frame[i];
    }
  }

  t1 = mc_clock();
  if (stats_out) {
    stats_out[0] = mc_sqrt(activity / (double)sample_count); /* RMS */
    stats_out[1] = (double)(t1 - t0) * (1.0 / 1000000.0);
  }
  return 0;
}

#ifdef MC_TARGET
int main(void) {
  int* header = (int*)0x40800000;
  unsigned char* payload = (unsigned char*)0x4080001C;
  unsigned char* out = (unsigned char*)0x40C00000;
  int width;
  int height;
  int frames;
  int qp;
  int payload_bytes;
  int out_bytes;
  double* stats;

  if (header[0] != MVC_MAGIC) return 1;
  width = header[1];
  height = header[2];
  frames = header[3];
  qp = header[4];
  payload_bytes = header[6];
  out_bytes = frames * width * height;
  /* stats doubles after the frames, 8-aligned */
  stats = (double*)(0x40C00000 + ((out_bytes + 7) & ~7));
  return mvc_decode(payload, payload_bytes, width, height, frames, qp, out,
                    stats);
}
#endif
)MCSRC";
}  // namespace nfp::rtlib
