// Generated from /root/repo/src/workloads/mc/fse.c -- do not edit.
#include <string_view>

namespace nfp::rtlib {
extern const std::string_view kFseSource;
const std::string_view kFseSource = R"MCSRC(/* Frequency Selective Extrapolation (FSE) -- Micro-C target implementation.
 *
 * Complex-valued frequency-domain FSE after Seiler & Kaup: iteratively
 * select the Fourier basis function with the largest weighted projection
 * and update the weighted residual spectrum in place (O(N^2) per
 * iteration). Double precision throughout, as the paper requires.
 *
 * Dual-compilable: builds natively for the golden host reference and with
 * mcc (hard- or soft-float) for the simulated LEON3-like target. Twiddle
 * factors are derived with half-angle and Chebyshev recurrences from
 * mc_sqrt so no libm is needed and all builds compute identical bits.
 *
 * Target memory protocol (MC_TARGET):
 *   input  @ 0x40800000: [0]=magic 0x46534531, [4]=n (must be 16),
 *                        [8]=iterations, [12]=pad, [16..24)=rho double,
 *                        [24..24+n*n*8) signal doubles,
 *                        then n*n mask words
 *   output @ 0x40C00000: n*n completed-signal doubles
 */

#define FSE_N 16
#define FSE_AREA 256
#define FSE_MAGIC 0x46534531

double fse_w[FSE_AREA];
double fse_wr_re[FSE_AREA];
double fse_wr_im[FSE_AREA];
double fse_bw_re[FSE_AREA];
double fse_bw_im[FSE_AREA];
double fse_g_re[FSE_AREA];
double fse_g_im[FSE_AREA];
double fse_tw_cos[FSE_N];
double fse_tw_sin[FSE_N];
double fse_line_re[FSE_N];
double fse_line_im[FSE_N];

void fse_init_twiddles(void) {
  double c;
  double s;
  int len;
  int k;
  /* cos(2*pi/N) by half-angle descent from cos(pi/2) = 0. */
  c = 0.0;
  len = 4;
  while (len < FSE_N) {
    c = mc_sqrt((1.0 + c) * 0.5);
    len = len * 2;
  }
  s = mc_sqrt(1.0 - c * c);
  fse_tw_cos[0] = 1.0;
  fse_tw_sin[0] = 0.0;
  fse_tw_cos[1] = c;
  fse_tw_sin[1] = -s; /* e^{-j 2 pi /N} */
  for (k = 2; k < FSE_N; k++) {
    fse_tw_cos[k] = 2.0 * c * fse_tw_cos[k - 1] - fse_tw_cos[k - 2];
    fse_tw_sin[k] = 2.0 * c * fse_tw_sin[k - 1] - fse_tw_sin[k - 2];
  }
}

double fse_ipow(double base, int e) {
  double result = 1.0;
  double p = base;
  while (e > 0) {
    if (e & 1) result = result * p;
    p = p * p;
    e = e >> 1;
  }
  return result;
}

/* In-place length-N FFT over split re/im arrays (stride 1). */
void fse_fft_line(double* re, double* im, int inverse) {
  int i;
  int j;
  int bit;
  int len;
  j = 0;
  for (i = 1; i < FSE_N; i++) {
    bit = FSE_N >> 1;
    while (j & bit) {
      j = j ^ bit;
      bit = bit >> 1;
    }
    j = j | bit;
    if (i < j) {
      double t = re[i];
      re[i] = re[j];
      re[j] = t;
      t = im[i];
      im[i] = im[j];
      im[j] = t;
    }
  }
  for (len = 2; len <= FSE_N; len = len * 2) {
    int half = len >> 1;
    int step = FSE_N / len;
    for (i = 0; i < FSE_N; i += len) {
      int k;
      for (k = 0; k < half; k++) {
        double wr = fse_tw_cos[k * step];
        double wi = fse_tw_sin[k * step];
        double ur;
        double ui;
        double vr;
        double vi;
        if (inverse) wi = -wi;
        ur = re[i + k];
        ui = im[i + k];
        vr = re[i + k + half] * wr - im[i + k + half] * wi;
        vi = re[i + k + half] * wi + im[i + k + half] * wr;
        re[i + k] = ur + vr;
        im[i + k] = ui + vi;
        re[i + k + half] = ur - vr;
        im[i + k + half] = ui - vi;
      }
    }
  }
}

void fse_fft2(double* re, double* im, int inverse) {
  int x;
  int y;
  for (y = 0; y < FSE_N; y++) {
    fse_fft_line(re + y * FSE_N, im + y * FSE_N, inverse);
  }
  for (x = 0; x < FSE_N; x++) {
    for (y = 0; y < FSE_N; y++) {
      fse_line_re[y] = re[y * FSE_N + x];
      fse_line_im[y] = im[y * FSE_N + x];
    }
    fse_fft_line(fse_line_re, fse_line_im, inverse);
    for (y = 0; y < FSE_N; y++) {
      re[y * FSE_N + x] = fse_line_re[y];
      im[y * FSE_N + x] = fse_line_im[y];
    }
  }
}

/* Completes the masked samples of f (mask[i] != 0 => missing). */
void fse_extrapolate(double* f, int* mask, double* out, int iters,
                     double rho, double gamma) {
  int x;
  int y;
  int k;
  int i;
  int it;
  double rho_q;
  double w0;

  fse_init_twiddles();
  rho_q = mc_sqrt(mc_sqrt(rho));
  w0 = 0.0;
  for (y = 0; y < FSE_N; y++) {
    for (x = 0; x < FSE_N; x++) {
      i = y * FSE_N + x;
      if (mask[i]) {
        fse_w[i] = 0.0;
      } else {
        int dx = 2 * x - (FSE_N - 1);
        int dy = 2 * y - (FSE_N - 1);
        fse_w[i] = fse_ipow(rho_q, dx * dx + dy * dy);
      }
      w0 = w0 + fse_w[i];
      fse_bw_re[i] = fse_w[i];
      fse_bw_im[i] = 0.0;
      fse_wr_re[i] = fse_w[i] * f[i];
      fse_wr_im[i] = 0.0;
      fse_g_re[i] = 0.0;
      fse_g_im[i] = 0.0;
    }
  }
  fse_fft2(fse_bw_re, fse_bw_im, 0);
  fse_fft2(fse_wr_re, fse_wr_im, 0);

  for (it = 0; it < iters; it++) {
    int best = 0;
    double best_e = -1.0;
    int bx;
    int by;
    double dcr;
    double dci;
    for (k = 0; k < FSE_AREA; k++) {
      double e = fse_wr_re[k] * fse_wr_re[k] + fse_wr_im[k] * fse_wr_im[k];
      if (e > best_e) {
        best_e = e;
        best = k;
      }
    }
    dcr = fse_wr_re[best] * (gamma / w0);
    dci = fse_wr_im[best] * (gamma / w0);
    fse_g_re[best] += dcr;
    fse_g_im[best] += dci;
    bx = best % FSE_N;
    by = best / FSE_N;
    for (y = 0; y < FSE_N; y++) {
      int sy = y - by;
      int row;
      if (sy < 0) sy += FSE_N;
      row = sy * FSE_N;
      for (x = 0; x < FSE_N; x++) {
        int sx = x - bx;
        int w_index;
        double wre;
        double wim;
        if (sx < 0) sx += FSE_N;
        w_index = row + sx;
        wre = fse_bw_re[w_index];
        wim = fse_bw_im[w_index];
        i = y * FSE_N + x;
        fse_wr_re[i] -= dcr * wre - dci * wim;
        fse_wr_im[i] -= dcr * wim + dci * wre;
      }
    }
  }

  /* Model evaluation: unscaled inverse transform of the coefficients gives
   * g[x] = sum_k c_k exp(+j 2 pi k x / N). */
  fse_fft2(fse_g_re, fse_g_im, 1);
  for (i = 0; i < FSE_AREA; i++) {
    out[i] = mask[i] ? fse_g_re[i] : f[i];
  }
}

#ifdef MC_TARGET
int main(void) {
  int* header = (int*)0x40800000;
  double* rho_in = (double*)0x40800010;
  double* signal = (double*)0x40800018;
  int* mask = (int*)(0x40800018 + FSE_AREA * 8);
  double* out = (double*)0x40C00000;
  int iters;

  if (header[0] != FSE_MAGIC) return 1;
  if (header[1] != FSE_N) return 2;
  iters = header[2];
  fse_extrapolate(signal, mask, out, iters, rho_in[0], 0.5);
  return 0;
}
#endif
)MCSRC";
}  // namespace nfp::rtlib
