# Empty dependencies file for nfp_board.
# This may be replaced when dependencies are built.
