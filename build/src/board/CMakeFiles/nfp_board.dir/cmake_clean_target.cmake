file(REMOVE_RECURSE
  "libnfp_board.a"
)
