
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/board/board.cpp" "src/board/CMakeFiles/nfp_board.dir/board.cpp.o" "gcc" "src/board/CMakeFiles/nfp_board.dir/board.cpp.o.d"
  "/root/repo/src/board/cost_model.cpp" "src/board/CMakeFiles/nfp_board.dir/cost_model.cpp.o" "gcc" "src/board/CMakeFiles/nfp_board.dir/cost_model.cpp.o.d"
  "/root/repo/src/board/monitor.cpp" "src/board/CMakeFiles/nfp_board.dir/monitor.cpp.o" "gcc" "src/board/CMakeFiles/nfp_board.dir/monitor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/nfp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/asmkit/CMakeFiles/nfp_asmkit.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/nfp_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
