file(REMOVE_RECURSE
  "CMakeFiles/nfp_board.dir/board.cpp.o"
  "CMakeFiles/nfp_board.dir/board.cpp.o.d"
  "CMakeFiles/nfp_board.dir/cost_model.cpp.o"
  "CMakeFiles/nfp_board.dir/cost_model.cpp.o.d"
  "CMakeFiles/nfp_board.dir/monitor.cpp.o"
  "CMakeFiles/nfp_board.dir/monitor.cpp.o.d"
  "libnfp_board.a"
  "libnfp_board.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfp_board.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
