file(REMOVE_RECURSE
  "CMakeFiles/nfp_fse.dir/fse_ref.cpp.o"
  "CMakeFiles/nfp_fse.dir/fse_ref.cpp.o.d"
  "CMakeFiles/nfp_fse.dir/image_gen.cpp.o"
  "CMakeFiles/nfp_fse.dir/image_gen.cpp.o.d"
  "libnfp_fse.a"
  "libnfp_fse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfp_fse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
