# Empty compiler generated dependencies file for nfp_fse.
# This may be replaced when dependencies are built.
