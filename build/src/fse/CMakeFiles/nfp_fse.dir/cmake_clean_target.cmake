file(REMOVE_RECURSE
  "libnfp_fse.a"
)
