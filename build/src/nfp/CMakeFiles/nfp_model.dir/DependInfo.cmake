
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nfp/calibration.cpp" "src/nfp/CMakeFiles/nfp_model.dir/calibration.cpp.o" "gcc" "src/nfp/CMakeFiles/nfp_model.dir/calibration.cpp.o.d"
  "/root/repo/src/nfp/campaign.cpp" "src/nfp/CMakeFiles/nfp_model.dir/campaign.cpp.o" "gcc" "src/nfp/CMakeFiles/nfp_model.dir/campaign.cpp.o.d"
  "/root/repo/src/nfp/report.cpp" "src/nfp/CMakeFiles/nfp_model.dir/report.cpp.o" "gcc" "src/nfp/CMakeFiles/nfp_model.dir/report.cpp.o.d"
  "/root/repo/src/nfp/scheme.cpp" "src/nfp/CMakeFiles/nfp_model.dir/scheme.cpp.o" "gcc" "src/nfp/CMakeFiles/nfp_model.dir/scheme.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/board/CMakeFiles/nfp_board.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nfp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/asmkit/CMakeFiles/nfp_asmkit.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/nfp_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
