# Empty dependencies file for nfp_model.
# This may be replaced when dependencies are built.
