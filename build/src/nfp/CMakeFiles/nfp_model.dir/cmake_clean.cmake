file(REMOVE_RECURSE
  "CMakeFiles/nfp_model.dir/calibration.cpp.o"
  "CMakeFiles/nfp_model.dir/calibration.cpp.o.d"
  "CMakeFiles/nfp_model.dir/campaign.cpp.o"
  "CMakeFiles/nfp_model.dir/campaign.cpp.o.d"
  "CMakeFiles/nfp_model.dir/report.cpp.o"
  "CMakeFiles/nfp_model.dir/report.cpp.o.d"
  "CMakeFiles/nfp_model.dir/scheme.cpp.o"
  "CMakeFiles/nfp_model.dir/scheme.cpp.o.d"
  "libnfp_model.a"
  "libnfp_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfp_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
