file(REMOVE_RECURSE
  "libnfp_model.a"
)
