file(REMOVE_RECURSE
  "libnfp_mcc.a"
)
