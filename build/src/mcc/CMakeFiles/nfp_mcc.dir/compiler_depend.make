# Empty compiler generated dependencies file for nfp_mcc.
# This may be replaced when dependencies are built.
