file(REMOVE_RECURSE
  "CMakeFiles/nfp_mcc.dir/codegen.cpp.o"
  "CMakeFiles/nfp_mcc.dir/codegen.cpp.o.d"
  "CMakeFiles/nfp_mcc.dir/compiler.cpp.o"
  "CMakeFiles/nfp_mcc.dir/compiler.cpp.o.d"
  "CMakeFiles/nfp_mcc.dir/lexer.cpp.o"
  "CMakeFiles/nfp_mcc.dir/lexer.cpp.o.d"
  "CMakeFiles/nfp_mcc.dir/parser.cpp.o"
  "CMakeFiles/nfp_mcc.dir/parser.cpp.o.d"
  "CMakeFiles/nfp_mcc.dir/peephole.cpp.o"
  "CMakeFiles/nfp_mcc.dir/peephole.cpp.o.d"
  "libnfp_mcc.a"
  "libnfp_mcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfp_mcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
