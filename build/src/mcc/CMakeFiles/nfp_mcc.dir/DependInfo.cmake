
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mcc/codegen.cpp" "src/mcc/CMakeFiles/nfp_mcc.dir/codegen.cpp.o" "gcc" "src/mcc/CMakeFiles/nfp_mcc.dir/codegen.cpp.o.d"
  "/root/repo/src/mcc/compiler.cpp" "src/mcc/CMakeFiles/nfp_mcc.dir/compiler.cpp.o" "gcc" "src/mcc/CMakeFiles/nfp_mcc.dir/compiler.cpp.o.d"
  "/root/repo/src/mcc/lexer.cpp" "src/mcc/CMakeFiles/nfp_mcc.dir/lexer.cpp.o" "gcc" "src/mcc/CMakeFiles/nfp_mcc.dir/lexer.cpp.o.d"
  "/root/repo/src/mcc/parser.cpp" "src/mcc/CMakeFiles/nfp_mcc.dir/parser.cpp.o" "gcc" "src/mcc/CMakeFiles/nfp_mcc.dir/parser.cpp.o.d"
  "/root/repo/src/mcc/peephole.cpp" "src/mcc/CMakeFiles/nfp_mcc.dir/peephole.cpp.o" "gcc" "src/mcc/CMakeFiles/nfp_mcc.dir/peephole.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/asmkit/CMakeFiles/nfp_asmkit.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nfp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rtlib/CMakeFiles/nfp_rtlib.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/nfp_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
