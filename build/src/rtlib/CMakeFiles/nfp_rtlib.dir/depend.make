# Empty dependencies file for nfp_rtlib.
# This may be replaced when dependencies are built.
