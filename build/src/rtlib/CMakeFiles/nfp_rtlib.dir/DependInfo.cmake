
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/build/src/rtlib/softfloat_embedded.cpp" "src/rtlib/CMakeFiles/nfp_rtlib.dir/softfloat_embedded.cpp.o" "gcc" "src/rtlib/CMakeFiles/nfp_rtlib.dir/softfloat_embedded.cpp.o.d"
  "/root/repo/build/src/rtlib/softmuldiv_embedded.cpp" "src/rtlib/CMakeFiles/nfp_rtlib.dir/softmuldiv_embedded.cpp.o" "gcc" "src/rtlib/CMakeFiles/nfp_rtlib.dir/softmuldiv_embedded.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
