file(REMOVE_RECURSE
  "CMakeFiles/nfp_rtlib.dir/softfloat_embedded.cpp.o"
  "CMakeFiles/nfp_rtlib.dir/softfloat_embedded.cpp.o.d"
  "CMakeFiles/nfp_rtlib.dir/softmuldiv_embedded.cpp.o"
  "CMakeFiles/nfp_rtlib.dir/softmuldiv_embedded.cpp.o.d"
  "libnfp_rtlib.a"
  "libnfp_rtlib.pdb"
  "softfloat_embedded.cpp"
  "softmuldiv_embedded.cpp"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfp_rtlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
