file(REMOVE_RECURSE
  "libnfp_rtlib.a"
)
