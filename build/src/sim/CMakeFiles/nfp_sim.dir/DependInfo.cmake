
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/block_cache.cpp" "src/sim/CMakeFiles/nfp_sim.dir/block_cache.cpp.o" "gcc" "src/sim/CMakeFiles/nfp_sim.dir/block_cache.cpp.o.d"
  "/root/repo/src/sim/bus.cpp" "src/sim/CMakeFiles/nfp_sim.dir/bus.cpp.o" "gcc" "src/sim/CMakeFiles/nfp_sim.dir/bus.cpp.o.d"
  "/root/repo/src/sim/platform.cpp" "src/sim/CMakeFiles/nfp_sim.dir/platform.cpp.o" "gcc" "src/sim/CMakeFiles/nfp_sim.dir/platform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/nfp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/asmkit/CMakeFiles/nfp_asmkit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
