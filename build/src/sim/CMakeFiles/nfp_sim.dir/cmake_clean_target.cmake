file(REMOVE_RECURSE
  "libnfp_sim.a"
)
