# Empty compiler generated dependencies file for nfp_sim.
# This may be replaced when dependencies are built.
