file(REMOVE_RECURSE
  "CMakeFiles/nfp_sim.dir/block_cache.cpp.o"
  "CMakeFiles/nfp_sim.dir/block_cache.cpp.o.d"
  "CMakeFiles/nfp_sim.dir/bus.cpp.o"
  "CMakeFiles/nfp_sim.dir/bus.cpp.o.d"
  "CMakeFiles/nfp_sim.dir/platform.cpp.o"
  "CMakeFiles/nfp_sim.dir/platform.cpp.o.d"
  "libnfp_sim.a"
  "libnfp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
