file(REMOVE_RECURSE
  "libnfp_isa.a"
)
