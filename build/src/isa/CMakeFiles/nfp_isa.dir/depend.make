# Empty dependencies file for nfp_isa.
# This may be replaced when dependencies are built.
