file(REMOVE_RECURSE
  "CMakeFiles/nfp_isa.dir/decode.cpp.o"
  "CMakeFiles/nfp_isa.dir/decode.cpp.o.d"
  "CMakeFiles/nfp_isa.dir/disasm.cpp.o"
  "CMakeFiles/nfp_isa.dir/disasm.cpp.o.d"
  "CMakeFiles/nfp_isa.dir/encode.cpp.o"
  "CMakeFiles/nfp_isa.dir/encode.cpp.o.d"
  "CMakeFiles/nfp_isa.dir/names.cpp.o"
  "CMakeFiles/nfp_isa.dir/names.cpp.o.d"
  "libnfp_isa.a"
  "libnfp_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfp_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
