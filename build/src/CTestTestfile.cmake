# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("isa")
subdirs("asmkit")
subdirs("sim")
subdirs("board")
subdirs("nfp")
subdirs("rtlib")
subdirs("mcc")
subdirs("codecs")
subdirs("fse")
subdirs("workloads")
