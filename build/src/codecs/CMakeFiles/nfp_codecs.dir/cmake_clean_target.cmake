file(REMOVE_RECURSE
  "libnfp_codecs.a"
)
