file(REMOVE_RECURSE
  "CMakeFiles/nfp_codecs.dir/mvc.cpp.o"
  "CMakeFiles/nfp_codecs.dir/mvc.cpp.o.d"
  "CMakeFiles/nfp_codecs.dir/sequence_gen.cpp.o"
  "CMakeFiles/nfp_codecs.dir/sequence_gen.cpp.o.d"
  "libnfp_codecs.a"
  "libnfp_codecs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfp_codecs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
