# Empty dependencies file for nfp_codecs.
# This may be replaced when dependencies are built.
