# Empty dependencies file for nfp_asmkit.
# This may be replaced when dependencies are built.
