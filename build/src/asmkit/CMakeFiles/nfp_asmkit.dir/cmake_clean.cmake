file(REMOVE_RECURSE
  "CMakeFiles/nfp_asmkit.dir/assembler.cpp.o"
  "CMakeFiles/nfp_asmkit.dir/assembler.cpp.o.d"
  "libnfp_asmkit.a"
  "libnfp_asmkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfp_asmkit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
