file(REMOVE_RECURSE
  "libnfp_asmkit.a"
)
