file(REMOVE_RECURSE
  "CMakeFiles/test_block_cache.dir/sim/block_cache_test.cpp.o"
  "CMakeFiles/test_block_cache.dir/sim/block_cache_test.cpp.o.d"
  "test_block_cache"
  "test_block_cache.pdb"
  "test_block_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_block_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
