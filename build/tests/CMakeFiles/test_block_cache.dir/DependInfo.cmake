
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/block_cache_test.cpp" "tests/CMakeFiles/test_block_cache.dir/sim/block_cache_test.cpp.o" "gcc" "tests/CMakeFiles/test_block_cache.dir/sim/block_cache_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/nfp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/nfp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/mcc/CMakeFiles/nfp_mcc.dir/DependInfo.cmake"
  "/root/repo/build/src/rtlib/CMakeFiles/nfp_rtlib.dir/DependInfo.cmake"
  "/root/repo/build/src/codecs/CMakeFiles/nfp_codecs.dir/DependInfo.cmake"
  "/root/repo/build/src/fse/CMakeFiles/nfp_fse.dir/DependInfo.cmake"
  "/root/repo/build/src/nfp/CMakeFiles/nfp_model.dir/DependInfo.cmake"
  "/root/repo/build/src/board/CMakeFiles/nfp_board.dir/DependInfo.cmake"
  "/root/repo/build/src/asmkit/CMakeFiles/nfp_asmkit.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/nfp_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
