# Empty dependencies file for test_block_cache.
# This may be replaced when dependencies are built.
