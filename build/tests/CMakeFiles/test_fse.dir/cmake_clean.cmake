file(REMOVE_RECURSE
  "CMakeFiles/test_fse.dir/fse/fse_test.cpp.o"
  "CMakeFiles/test_fse.dir/fse/fse_test.cpp.o.d"
  "test_fse"
  "test_fse.pdb"
  "test_fse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
