# Empty compiler generated dependencies file for test_fse.
# This may be replaced when dependencies are built.
