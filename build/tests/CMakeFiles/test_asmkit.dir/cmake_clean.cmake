file(REMOVE_RECURSE
  "CMakeFiles/test_asmkit.dir/asmkit/assembler_test.cpp.o"
  "CMakeFiles/test_asmkit.dir/asmkit/assembler_test.cpp.o.d"
  "CMakeFiles/test_asmkit.dir/asmkit/roundtrip_test.cpp.o"
  "CMakeFiles/test_asmkit.dir/asmkit/roundtrip_test.cpp.o.d"
  "test_asmkit"
  "test_asmkit.pdb"
  "test_asmkit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_asmkit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
