# Empty dependencies file for test_nfp.
# This may be replaced when dependencies are built.
