file(REMOVE_RECURSE
  "CMakeFiles/test_nfp.dir/nfp/calibration_test.cpp.o"
  "CMakeFiles/test_nfp.dir/nfp/calibration_test.cpp.o.d"
  "CMakeFiles/test_nfp.dir/nfp/campaign_test.cpp.o"
  "CMakeFiles/test_nfp.dir/nfp/campaign_test.cpp.o.d"
  "CMakeFiles/test_nfp.dir/nfp/estimator_property_test.cpp.o"
  "CMakeFiles/test_nfp.dir/nfp/estimator_property_test.cpp.o.d"
  "CMakeFiles/test_nfp.dir/nfp/model_test.cpp.o"
  "CMakeFiles/test_nfp.dir/nfp/model_test.cpp.o.d"
  "test_nfp"
  "test_nfp.pdb"
  "test_nfp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nfp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
