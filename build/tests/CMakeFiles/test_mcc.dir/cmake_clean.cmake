file(REMOVE_RECURSE
  "CMakeFiles/test_mcc.dir/mcc/mcc_basic_test.cpp.o"
  "CMakeFiles/test_mcc.dir/mcc/mcc_basic_test.cpp.o.d"
  "CMakeFiles/test_mcc.dir/mcc/mcc_double_test.cpp.o"
  "CMakeFiles/test_mcc.dir/mcc/mcc_double_test.cpp.o.d"
  "CMakeFiles/test_mcc.dir/mcc/mcc_muldiv_test.cpp.o"
  "CMakeFiles/test_mcc.dir/mcc/mcc_muldiv_test.cpp.o.d"
  "CMakeFiles/test_mcc.dir/mcc/mcc_stress_test.cpp.o"
  "CMakeFiles/test_mcc.dir/mcc/mcc_stress_test.cpp.o.d"
  "CMakeFiles/test_mcc.dir/mcc/peephole_test.cpp.o"
  "CMakeFiles/test_mcc.dir/mcc/peephole_test.cpp.o.d"
  "test_mcc"
  "test_mcc.pdb"
  "test_mcc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
