# Empty dependencies file for test_mcc.
# This may be replaced when dependencies are built.
