# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_asmkit[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_block_cache[1]_include.cmake")
include("/root/repo/build/tests/test_board[1]_include.cmake")
include("/root/repo/build/tests/test_nfp[1]_include.cmake")
include("/root/repo/build/tests/test_rtlib[1]_include.cmake")
include("/root/repo/build/tests/test_mcc[1]_include.cmake")
include("/root/repo/build/tests/test_fse[1]_include.cmake")
include("/root/repo/build/tests/test_codecs[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
