# Empty dependencies file for bench_ext_config_space.
# This may be replaced when dependencies are built.
