file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_config_space.dir/bench_ext_config_space.cpp.o"
  "CMakeFiles/bench_ext_config_space.dir/bench_ext_config_space.cpp.o.d"
  "bench_ext_config_space"
  "bench_ext_config_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_config_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
