# CMAKE generated file: DO NOT EDIT!
# Timestamp file for custom commands dependencies management for nfp_bench_smoke.
