# Empty custom commands generated dependencies file for nfp_bench_smoke.
# This may be replaced when dependencies are built.
