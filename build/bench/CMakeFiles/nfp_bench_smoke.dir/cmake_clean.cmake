file(REMOVE_RECURSE
  "CMakeFiles/nfp_bench_smoke"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/nfp_bench_smoke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
