# Empty dependencies file for bench_fig4_showcase.
# This may be replaced when dependencies are built.
