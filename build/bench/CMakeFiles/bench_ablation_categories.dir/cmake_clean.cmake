file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_categories.dir/bench_ablation_categories.cpp.o"
  "CMakeFiles/bench_ablation_categories.dir/bench_ablation_categories.cpp.o.d"
  "bench_ablation_categories"
  "bench_ablation_categories.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_categories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
