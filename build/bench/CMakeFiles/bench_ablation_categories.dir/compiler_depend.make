# Empty compiler generated dependencies file for bench_ablation_categories.
# This may be replaced when dependencies are built.
