file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_fpu.dir/bench_table4_fpu.cpp.o"
  "CMakeFiles/bench_table4_fpu.dir/bench_table4_fpu.cpp.o.d"
  "bench_table4_fpu"
  "bench_table4_fpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_fpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
