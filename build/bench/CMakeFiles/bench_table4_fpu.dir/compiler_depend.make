# Empty compiler generated dependencies file for bench_table4_fpu.
# This may be replaced when dependencies are built.
