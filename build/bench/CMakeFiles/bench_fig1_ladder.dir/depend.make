# Empty dependencies file for bench_fig1_ladder.
# This may be replaced when dependencies are built.
