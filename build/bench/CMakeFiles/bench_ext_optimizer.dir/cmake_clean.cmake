file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_optimizer.dir/bench_ext_optimizer.cpp.o"
  "CMakeFiles/bench_ext_optimizer.dir/bench_ext_optimizer.cpp.o.d"
  "bench_ext_optimizer"
  "bench_ext_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
