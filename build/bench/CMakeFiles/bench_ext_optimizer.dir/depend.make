# Empty dependencies file for bench_ext_optimizer.
# This may be replaced when dependencies are built.
