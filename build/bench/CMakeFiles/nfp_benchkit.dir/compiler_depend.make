# Empty compiler generated dependencies file for nfp_benchkit.
# This may be replaced when dependencies are built.
