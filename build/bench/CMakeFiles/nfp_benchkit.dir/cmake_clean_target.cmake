file(REMOVE_RECURSE
  "libnfp_benchkit.a"
)
