file(REMOVE_RECURSE
  "CMakeFiles/nfp_benchkit.dir/support.cpp.o"
  "CMakeFiles/nfp_benchkit.dir/support.cpp.o.d"
  "libnfp_benchkit.a"
  "libnfp_benchkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfp_benchkit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
