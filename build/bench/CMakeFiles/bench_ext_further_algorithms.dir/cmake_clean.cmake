file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_further_algorithms.dir/bench_ext_further_algorithms.cpp.o"
  "CMakeFiles/bench_ext_further_algorithms.dir/bench_ext_further_algorithms.cpp.o.d"
  "bench_ext_further_algorithms"
  "bench_ext_further_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_further_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
