# Empty compiler generated dependencies file for nfpdis.
# This may be replaced when dependencies are built.
