file(REMOVE_RECURSE
  "CMakeFiles/nfpdis.dir/nfpdis.cpp.o"
  "CMakeFiles/nfpdis.dir/nfpdis.cpp.o.d"
  "nfpdis"
  "nfpdis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfpdis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
