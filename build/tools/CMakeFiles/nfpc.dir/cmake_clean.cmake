file(REMOVE_RECURSE
  "CMakeFiles/nfpc.dir/nfpc.cpp.o"
  "CMakeFiles/nfpc.dir/nfpc.cpp.o.d"
  "nfpc"
  "nfpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
