# Empty compiler generated dependencies file for nfpc.
# This may be replaced when dependencies are built.
