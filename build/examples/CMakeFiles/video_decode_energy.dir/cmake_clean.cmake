file(REMOVE_RECURSE
  "CMakeFiles/video_decode_energy.dir/video_decode_energy.cpp.o"
  "CMakeFiles/video_decode_energy.dir/video_decode_energy.cpp.o.d"
  "video_decode_energy"
  "video_decode_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_decode_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
