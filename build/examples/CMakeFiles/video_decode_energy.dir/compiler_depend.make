# Empty compiler generated dependencies file for video_decode_energy.
# This may be replaced when dependencies are built.
