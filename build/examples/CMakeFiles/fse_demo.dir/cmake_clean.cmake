file(REMOVE_RECURSE
  "CMakeFiles/fse_demo.dir/fse_demo.cpp.o"
  "CMakeFiles/fse_demo.dir/fse_demo.cpp.o.d"
  "fse_demo"
  "fse_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fse_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
