# Empty dependencies file for fse_demo.
# This may be replaced when dependencies are built.
