#include "board/monitor.h"

#include <cstdio>
#include <sstream>
#include <vector>

#include "isa/disasm.h"
#include "isa/names.h"

namespace nfp::board {
namespace {

std::vector<std::string> split(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> out;
  std::string word;
  while (in >> word) out.push_back(word);
  return out;
}

std::uint64_t parse_u64(const std::string& text, std::uint64_t fallback) {
  char* end = nullptr;
  const auto v = std::strtoull(text.c_str(), &end, 0);
  return end == text.c_str() ? fallback : v;
}

std::string hex32(std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%08x", v);
  return buf;
}

}  // namespace

std::string DebugMonitor::command(const std::string& line) {
  const auto words = split(line);
  if (words.empty()) return "";
  const std::string& cmd = words[0];
  const auto arg = [&](std::size_t i, std::uint64_t fallback) {
    return i < words.size() ? parse_u64(words[i], fallback) : fallback;
  };

  if (cmd == "reg") return cmd_reg();
  if (cmd == "freg") return cmd_freg();
  if (cmd == "dis") {
    return cmd_dis(static_cast<std::uint32_t>(arg(1, board_.cpu().pc)),
                   static_cast<int>(arg(2, 8)));
  }
  if (cmd == "mem") {
    if (words.size() < 2) return "usage: mem <addr> [words]";
    return cmd_mem(static_cast<std::uint32_t>(arg(1, 0)),
                   static_cast<int>(arg(2, 8)));
  }
  if (cmd == "step") return cmd_step(arg(1, 1));
  if (cmd == "run") return cmd_run(arg(1, Board::kDefaultMaxInsns));
  if (cmd == "break") {
    if (words.size() < 2) return "usage: break <addr>";
    breakpoints_.insert(static_cast<std::uint32_t>(arg(1, 0)));
    return "breakpoint set at " +
           hex32(static_cast<std::uint32_t>(arg(1, 0)));
  }
  if (cmd == "delete") {
    if (words.size() < 2) return "usage: delete <addr>";
    breakpoints_.erase(static_cast<std::uint32_t>(arg(1, 0)));
    return "breakpoint removed";
  }
  if (cmd == "info") return cmd_info();
  if (cmd == "help") {
    return "commands: reg freg dis mem step run break delete info help";
  }
  return "unknown command '" + cmd + "' (try: help)";
}

std::string DebugMonitor::cmd_reg() const {
  const auto& cpu = board_.cpu();
  std::string out;
  for (int i = 0; i < 32; ++i) {
    out += isa::reg_name(static_cast<std::uint8_t>(i)) + " " +
           hex32(cpu.r[i]) + ((i % 4 == 3) ? "\n" : "  ");
  }
  out += "pc " + hex32(cpu.pc) + "  npc " + hex32(cpu.npc) + "  y " +
         hex32(cpu.y) + "\n";
  out += std::string("icc: ") + (cpu.icc_n ? "N" : "n") +
         (cpu.icc_z ? "Z" : "z") + (cpu.icc_v ? "V" : "v") +
         (cpu.icc_c ? "C" : "c") +
         (cpu.halted ? "  [halted]" : "") + "\n";
  return out;
}

std::string DebugMonitor::cmd_freg() const {
  const auto& cpu = board_.cpu();
  std::string out;
  for (int i = 0; i < 32; i += 2) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%%f%-2d %-22.17g%s", i, cpu.read_d(
        static_cast<std::uint8_t>(i)), (i % 8 == 6) ? "\n" : "  ");
    out += buf;
  }
  return out;
}

std::string DebugMonitor::cmd_dis(std::uint32_t addr, int count) {
  std::string out;
  for (int i = 0; i < count; ++i) {
    const std::uint32_t pc = addr + static_cast<std::uint32_t>(i) * 4;
    std::uint32_t word;
    try {
      word = board_.bus().load32(pc);
    } catch (const sim::SimError&) {
      out += hex32(pc) + "  <unmapped>\n";
      continue;
    }
    const char marker = pc == board_.cpu().pc ? '>' : ' ';
    out += std::string(1, marker) + " " + hex32(pc) + "  " +
           isa::disassemble_word(word, pc) + "\n";
  }
  return out;
}

std::string DebugMonitor::cmd_mem(std::uint32_t addr, int words) {
  std::string out;
  for (int i = 0; i < words; ++i) {
    const std::uint32_t a = addr + static_cast<std::uint32_t>(i) * 4;
    if (i % 4 == 0) out += hex32(a) + ":";
    try {
      out += " " + hex32(board_.bus().load32(a));
    } catch (const sim::SimError&) {
      out += " <unmapped>";
    }
    if (i % 4 == 3) out += "\n";
  }
  if (words % 4 != 0) out += "\n";
  return out;
}

std::string DebugMonitor::cmd_step(std::uint64_t count) {
  for (std::uint64_t i = 0; i < count && !board_.cpu().halted; ++i) {
    board_.step();
  }
  return cmd_dis(board_.cpu().pc, 1);
}

std::string DebugMonitor::cmd_run(std::uint64_t max_insns) {
  std::uint64_t executed = 0;
  while (!board_.cpu().halted && executed < max_insns) {
    board_.step();
    ++executed;
    if (breakpoints_.count(board_.cpu().pc)) {
      return "breakpoint hit at " + hex32(board_.cpu().pc) + " after " +
             std::to_string(executed) + " instructions\n" +
             cmd_dis(board_.cpu().pc, 1);
    }
  }
  if (board_.cpu().halted) {
    return "halted with exit code " +
           std::to_string(board_.cpu().exit_code) + "\n";
  }
  return "stopped after " + std::to_string(executed) + " instructions\n";
}

std::string DebugMonitor::cmd_info() const {
  char buf[256];
  const auto& stats = board_.stats();
  std::snprintf(buf, sizeof buf,
                "instret %llu  cycles %llu  time %.6f s  energy %.3f uJ\n"
                "loads %llu  row misses %llu  branches %llu taken / %llu "
                "untaken\n",
                static_cast<unsigned long long>(board_.cpu().instret),
                static_cast<unsigned long long>(board_.cycles()),
                board_.true_time_s(), board_.true_energy_nj() * 1e-3,
                static_cast<unsigned long long>(stats.loads),
                static_cast<unsigned long long>(stats.row_misses),
                static_cast<unsigned long long>(stats.branches_taken),
                static_cast<unsigned long long>(stats.branches_untaken));
  return buf;
}

}  // namespace nfp::board
