// FPGA area model: logical-element counts per processor configuration,
// standing in for Quartus synthesis reports (Table IV, third row).
#pragma once

#include <cstdint>

#include "board/config.h"

namespace nfp::board {

struct AreaReport {
  std::uint32_t integer_unit_les = 0;
  std::uint32_t muldiv_les = 0;
  std::uint32_t fpu_les = 0;
  std::uint32_t total() const {
    return integer_unit_les + muldiv_les + fpu_les;
  }
};

class AreaModel {
 public:
  // LE budgets for a Cyclone-IV-class device; the FPU (a GRFPU-like unit)
  // roughly doubles the design, matching the paper's +109%.
  AreaReport synthesize(const BoardConfig& cfg) const {
    AreaReport r;
    r.integer_unit_les = 4000;
    r.muldiv_les = cfg.has_hw_muldiv ? 1200 : 0;
    r.fpu_les = cfg.has_fpu ? 5668 : 0;
    return r;
  }

  // Relative area change when toggling the FPU on (percent, e.g. +109).
  double fpu_area_increase_percent() const {
    BoardConfig off;
    off.has_fpu = false;
    BoardConfig on;
    on.has_fpu = true;
    const double base = synthesize(off).total();
    const double with = synthesize(on).total();
    return (with - base) / base * 100.0;
  }
};

}  // namespace nfp::board
