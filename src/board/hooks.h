// Retire hooks implementing the board's non-functional ground truth:
// per-instruction cycles and energy with context-dependent effects
// (SDRAM open-row state, branch direction, operand/address toggling,
// optional data cache).
//
// The accounting is split so whole-block dispatch (Hooks::kBlockCost) can
// retire most of it statically:
//
//  - Static base: every op's base cycles and base energy come straight from
//    the CostModel table. Energy is tracked as per-op retire counts and
//    summed lazily in energy_nj(); base cycles of non-residual ops are
//    precomputed per block (BlockCost::base_cycles) and added in one shot.
//  - Dynamic residual: ops whose cost depends on machine context carry a
//    ResidualKind tag, and apply_residual() is the single kernel — shared
//    verbatim by the stepping and block paths — that turns captured operands
//    into the per-op cycle count and the energy correction relative to base
//    (accumulated in residual_energy_).
//
// Because both dispatch modes retire every op through the same count
// increment and the same apply_residual() call sequence in program order,
// cycles(), energy_nj(), stats() and switching_activity() are bit-for-bit
// identical between Dispatch::kStep and Dispatch::kBlock.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "board/config.h"
#include "board/cost_model.h"
#include "board/events.h"
#include "isa/insn.h"
#include "sim/block_cache.h"
#include "sim/bus.h"
#include "sim/hooks.h"
#include "sim/jit.h"

namespace nfp::board {

struct BoardStats {
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t row_misses = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t branches_taken = 0;
  std::uint64_t branches_untaken = 0;
  // Extra cycles spent on SDRAM row opens (row_misses * row_miss_cycles,
  // tracked as a real accumulator so snapshots carry it verbatim).
  std::uint64_t stall_cycles = 0;

  friend bool operator==(const BoardStats&, const BoardStats&) = default;
};

// The accumulator state a snapshot carries (board/board.cpp save/restore):
// everything on which future accounting depends — cycle and energy
// accumulators, SDRAM open row, cache tags, operand-toggle history, and the
// switching-activity LFSR. Derived per-block cost profiles are NOT state
// (they rebuild deterministically), so they are absent by design.
struct BoardHooksState {
  std::uint64_t cycles = 0;
  std::array<std::uint64_t, isa::kOpCount> counts{};
  double residual_energy = 0.0;
  BoardStats stats;
  std::uint32_t prev_a = 0, prev_b = 0, prev_addr = 0;
  std::uint32_t open_row = 0;
  std::vector<std::uint32_t> tags;
  std::uint64_t activity_lfsr = 0;
  std::uint64_t activity = 0;
};

class BoardHooks {
 public:
  static constexpr bool kWantsDetail = true;
  // Not a profile-only batch hook: context-dependent residuals still need
  // flagged instructions in order. kBlockCost is the middle tier — static
  // base applied per block, residuals replayed from captured operands.
  static constexpr bool kBatchRetire = false;
  static constexpr bool kBlockCost = true;

  BoardHooks(const BoardConfig& cfg, const CostModel& cost)
      : cfg_(cfg), cost_(cost) {
    if (cfg_.enable_cache) {
      const std::uint32_t lines = cfg_.cache_lines;
      tags_.assign(lines, kInvalidTag);
    }
  }

  void on_retire(const isa::DecodedInsn& d, const sim::RetireInfo& info) {
    if (!cfg_.has_fpu && uses_fpu(d.op)) {
      throw sim::SimError(
          "board error: FPU instruction executed on an FPU-less "
          "configuration (compile the kernel with soft-float)");
    }
    if (!cfg_.has_hw_muldiv && uses_muldiv(d.op)) {
      throw sim::SimError(
          "board error: MUL/DIV instruction executed on a configuration "
          "without the hardware units (compile with soft-muldiv)");
    }
    // Fold the RetireInfo into the same {x, y} operand pair the block path
    // captures, then run the shared accounting kernel.
    std::uint32_t x, y;
    switch (cost_.of(d.op).kind) {
      case sim::ResidualKind::kMemory:
        x = info.ea;
        y = info.mem_data;
        break;
      case sim::ResidualKind::kBranch:
        x = info.taken ? 1u : 0u;
        y = 0;
        break;
      default:
        x = info.a;
        y = info.b;
        break;
    }
    account(d.op, x, y);
  }

  // Prefix retire after a fault inside a block: replay the accounting for
  // one completed instruction from its captured operands. The retire guards
  // are not re-checked — ensure_block_cost() refused every block containing
  // a guarded op, so a faulting block has none.
  void on_retire_captured(isa::Op op, const sim::CapturedOp& cap) {
    account(op, cap.a, cap.b);
  }

  // Builds (once) and validates the block's cost profile. Returns false to
  // demand single-stepping: blocks containing ops whose retire guard must
  // fault at the exact offending instruction never enter block dispatch.
  bool ensure_block_cost(sim::Block& block) {
    if (block.cost_state == sim::BlockCostState::kReady) return true;
    if (block.cost_state == sim::BlockCostState::kStepOnly) return false;
    sim::BlockCost cost;
    for (std::size_t i = 0; i < block.code.size(); ++i) {
      const auto op = static_cast<isa::Op>(block.code[i].op);
      if ((!cfg_.has_fpu && uses_fpu(op)) ||
          (!cfg_.has_hw_muldiv && uses_muldiv(op))) {
        block.cost_state = sim::BlockCostState::kStepOnly;
        return false;
      }
      const OpCost& oc = cost_.of(op);
      cost.base_energy_nj += oc.energy_nj;
      if (residual_active(oc.kind)) {
        cost.residuals.push_back(
            {static_cast<std::uint16_t>(i), block.code[i].op});
      } else {
        // Residual ops are excluded: their cycles always come from
        // apply_residual() — in both dispatch modes — so they are never
        // counted twice.
        cost.base_cycles += oc.cycles;
      }
    }
    block.cost = std::move(cost);
    block.cost_state = sim::BlockCostState::kReady;
    return true;
  }

  // Whole-block retire: per-op counts and precomputed base cycles land in
  // one shot; only the flagged residual subset replays per instruction, in
  // program order, against the operands the handlers captured.
  void on_retire_block_cost(const sim::Block& block,
                            const sim::CapturedOp* cap) {
    for (const auto& pc : block.profile) {
      counts_[pc.op] += pc.count;
    }
    std::uint64_t cyc = block.cost.base_cycles;
    for (const auto& r : block.cost.residuals) {
      const auto op = static_cast<isa::Op>(r.op);
      cyc += apply_residual(op, cost_.of(op), cap[r.index].a, cap[r.index].b);
    }
    if (cfg_.fidelity == Fidelity::kCycleStepped) {
      // Batched: the tracker is a pure function of how many cycles it has
      // advanced, so one block-sized run equals the per-op runs exactly.
      advance_activity(cyc);
    }
    cycles_ += cyc;
  }

  std::uint64_t cycles() const { return cycles_; }

  // Lazy total: static base energy from the retire counts plus the
  // accumulated dynamic corrections. Summed in ascending op order so the
  // value is a pure function of the retire multiset — identical for any
  // dispatch mode that retires the same instructions.
  double energy_nj() const {
    double e = 0.0;
    for (std::size_t i = 0; i < isa::kOpCount; ++i) {
      if (counts_[i] != 0) {
        e += static_cast<double>(counts_[i]) *
             cost_.of(static_cast<isa::Op>(i)).energy_nj;
      }
    }
    return e + residual_energy_;
  }

  const BoardStats& stats() const { return stats_; }
  std::uint64_t switching_activity() const { return activity_; }

  // Per-op retire counts (the static-base accumulator). Exposed so
  // calibration can derive estimation-scheme feature vectors from the board
  // run itself — the streams are proven identical to the ISS counters.
  const std::array<std::uint64_t, isa::kOpCount>& op_counts() const {
    return counts_;
  }

  // The PMU-style counter export (board/events.h): every value is derived
  // from accumulators the shared residual kernel maintains, so the whole
  // vector is bit-identical across dispatch modes and across
  // snapshot/restore boundaries.
  EventCounters events() const {
    EventCounters ev;
    std::uint64_t retired = 0, fpu = 0, muldiv = 0;
    for (std::size_t op = 0; op < isa::kOpCount; ++op) {
      retired += counts_[op];
      if (isa::is_fpu(static_cast<isa::Op>(op))) fpu += counts_[op];
      if (isa::is_muldiv(static_cast<isa::Op>(op))) muldiv += counts_[op];
    }
    ev[Event::kRetired] = retired;
    ev[Event::kFpuOps] = fpu;
    ev[Event::kMulDivOps] = muldiv;
    ev[Event::kLoads] = stats_.loads;
    ev[Event::kStores] = stats_.stores;
    ev[Event::kRowMisses] = stats_.row_misses;
    ev[Event::kCacheHits] = stats_.cache_hits;
    ev[Event::kCacheMisses] = stats_.cache_misses;
    ev[Event::kBranchesTaken] = stats_.branches_taken;
    ev[Event::kBranchesUntaken] = stats_.branches_untaken;
    ev[Event::kStallCycles] = stats_.stall_cycles;
    return ev;
  }

  // ---- JIT cost-tier interface (Dispatch::kJit; see docs/jit.md) ----------
  // Emitted code retires the static share natively: per-op counts into
  // jit_counts() and each block's base cycles into *jit_cycles(), both as
  // one add per exit. The dynamic share replays here from drained captures.
  std::uint64_t* jit_counts() { return counts_.data(); }
  std::uint64_t* jit_cycles() { return &cycles_; }

  // Replays drained residual captures through the shared kernel in program
  // order — the same apply_residual() call sequence the interpreted block
  // path makes, so every accumulator stays bit-identical.
  void jit_replay(const sim::JitCapture* e, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      const auto op = static_cast<isa::Op>(e[i].op);
      cycles_ += apply_residual(op, cost_.of(op), e[i].a, e[i].b);
    }
  }

  // One batched activity advance over everything accumulated since `mark`
  // (a cycles() snapshot from before the native entry): the tracker is a
  // pure function of cumulative advanced cycles, so one run over the
  // native-base + replayed-residual sum equals the per-block runs exactly.
  void jit_advance_activity(std::uint64_t mark) {
    if (cfg_.fidelity == Fidelity::kCycleStepped) {
      advance_activity(cycles_ - mark);
    }
  }

  // ---- snapshot support (sim/state_io.h, board/board.cpp) -----------------
  BoardHooksState export_state() const {
    BoardHooksState s;
    s.cycles = cycles_;
    s.counts = counts_;
    s.residual_energy = residual_energy_;
    s.stats = stats_;
    s.prev_a = prev_a_;
    s.prev_b = prev_b_;
    s.prev_addr = prev_addr_;
    s.open_row = open_row_;
    s.tags = tags_;
    s.activity_lfsr = activity_lfsr_;
    s.activity = activity_;
    return s;
  }

  // Caller (Board::restore_state) has already validated s.tags against the
  // configuration, so this cannot fail.
  void import_state(const BoardHooksState& s) {
    cycles_ = s.cycles;
    counts_ = s.counts;
    residual_energy_ = s.residual_energy;
    stats_ = s.stats;
    prev_a_ = s.prev_a;
    prev_b_ = s.prev_b;
    prev_addr_ = s.prev_addr;
    open_row_ = s.open_row;
    tags_ = s.tags;
    activity_lfsr_ = s.activity_lfsr;
    activity_ = s.activity;
  }

 private:
  static constexpr std::uint32_t kInvalidTag = 0xFFFFFFFFu;

  static bool uses_fpu(isa::Op op) {
    return isa::is_fpu(op) || op == isa::Op::kLdf || op == isa::Op::kLddf ||
           op == isa::Op::kStf || op == isa::Op::kStdf ||
           op == isa::Op::kFbfcc;
  }

  static bool uses_muldiv(isa::Op op) {
    switch (op) {
      case isa::Op::kUmul: case isa::Op::kUmulcc: case isa::Op::kSmul:
      case isa::Op::kSmulcc: case isa::Op::kUdiv: case isa::Op::kUdivcc:
      case isa::Op::kSdiv: case isa::Op::kSdivcc:
        return true;
      default:
        return false;
    }
  }

  // Whether ops tagged `kind` need a per-instruction callback on this
  // configuration. Memory and control residuals are unconditional (row /
  // cache state, branch direction); operand-toggle residuals exist only
  // when variation is modelled at all.
  bool residual_active(sim::ResidualKind kind) const {
    return kind == sim::ResidualKind::kMemory ||
           kind == sim::ResidualKind::kBranch || cfg_.enable_variation;
  }

  // Shared per-instruction accounting: count the op, apply its residual,
  // track activity, accumulate cycles. The stepping path runs this for every
  // op; the block path replays it only for faulted-block prefixes.
  void account(isa::Op op, std::uint32_t x, std::uint32_t y) {
    ++counts_[static_cast<std::size_t>(op)];
    const std::uint32_t cyc = apply_residual(op, cost_.of(op), x, y);
    if (cfg_.fidelity == Fidelity::kCycleStepped) advance_activity(cyc);
    cycles_ += cyc;
  }

  // The dynamic-residual kernel, shared by both dispatch modes: given the
  // op's captured operand pair, returns its cycle count and accumulates its
  // energy correction relative to the static base into residual_energy_.
  // For kinds with no active residual this is a no-op returning base cycles.
  std::uint32_t apply_residual(isa::Op op, const OpCost& oc, std::uint32_t x,
                               std::uint32_t y) {
    switch (oc.kind) {
      case sim::ResidualKind::kMemory: {
        // x = effective address, y = transferred data word.
        double e = oc.energy_nj;
        const std::uint32_t cyc = memory_cycles(op, x, oc, e);
        if (cfg_.enable_variation) {
          e *= toggle_factor(x ^ prev_addr_, y);
        }
        prev_addr_ = x;
        residual_energy_ += e - oc.energy_nj;
        return cyc;
      }
      case sim::ResidualKind::kBranch: {
        // x = resolved direction.
        if (x != 0) {
          ++stats_.branches_taken;
          return oc.cycles;
        }
        ++stats_.branches_untaken;
        // The untaken path does not redirect the fetch stream.
        residual_energy_ += oc.energy_nj * 0.8 - oc.energy_nj;
        return oc.cycles_alt;
      }
      default: {  // kNone / kFpVariable: operand-toggle variation only
        if (cfg_.enable_variation) {
          // Leakage is occupancy-bound, not switching-bound: only the
          // dynamic share of the base energy is modulated by toggling.
          const double dyn = oc.energy_nj - oc.leakage_nj;
          const double e =
              oc.leakage_nj + dyn * toggle_factor(x ^ prev_a_, y ^ prev_b_);
          prev_a_ = x;
          prev_b_ = y;
          residual_energy_ += e - oc.energy_nj;
        }
        return oc.cycles;
      }
    }
  }

  // Energy modulation from switching activity: ~1.0 on average for typical
  // data, spanning 1 +- amplitude/2.
  double toggle_factor(std::uint32_t x, std::uint32_t y) const {
    const int toggles = std::popcount(x) + std::popcount(y);
    const double tf = static_cast<double>(toggles) / 64.0;  // 0..1
    return 1.0 + cfg_.data_energy_amplitude * (tf - 0.5);
  }

  std::uint32_t memory_cycles(isa::Op op, std::uint32_t ea, const OpCost& oc,
                              double& e) {
    if (isa::is_load(op)) {
      ++stats_.loads;
    } else {
      ++stats_.stores;
    }
    if (cfg_.enable_cache && isa::is_load(op)) {
      const std::uint32_t line = ea / cfg_.cache_line_bytes;
      const std::uint32_t index = line % cfg_.cache_lines;
      if (tags_[index] == line) {
        ++stats_.cache_hits;
        e = cost_.cache_hit_energy_nj();
        return cost_.cache_hit_cycles();
      }
      ++stats_.cache_misses;
      tags_[index] = line;
    }
    const std::uint32_t row = ea >> cost_.row_bits();
    if (row != open_row_) {
      open_row_ = row;
      ++stats_.row_misses;
      stats_.stall_cycles += cost_.row_miss_cycles();
      e += cost_.row_miss_energy_nj();
      return oc.cycles + cost_.row_miss_cycles();
    }
    return oc.cycles;
  }

  // Step the microarchitectural activity tracker cycle by cycle, as a
  // hardware-description-level simulator would. The totals are the same
  // as the approximately-timed path; only the simulation cost differs.
  void advance_activity(std::uint64_t cycles) {
    for (std::uint64_t i = 0; i < cycles; ++i) {
      activity_lfsr_ ^= activity_lfsr_ << 13;
      activity_lfsr_ ^= activity_lfsr_ >> 7;
      activity_lfsr_ ^= activity_lfsr_ << 17;
      activity_ += std::popcount(activity_lfsr_);
    }
  }

  const BoardConfig& cfg_;
  const CostModel& cost_;

  std::uint64_t cycles_ = 0;
  // Energy state: per-op retire counts (static base, summed lazily in
  // energy_nj()) plus the running sum of dynamic corrections.
  std::array<std::uint64_t, isa::kOpCount> counts_{};
  double residual_energy_ = 0.0;
  BoardStats stats_;

  std::uint32_t prev_a_ = 0, prev_b_ = 0, prev_addr_ = 0;
  std::uint32_t open_row_ = kInvalidTag;
  std::vector<std::uint32_t> tags_;

  std::uint64_t activity_lfsr_ = 0x2545F4914F6CDD1Dull;
  std::uint64_t activity_ = 0;
};

}  // namespace nfp::board
