// Retire hooks implementing the board's non-functional ground truth:
// per-instruction cycles and energy with context-dependent effects
// (SDRAM open-row state, branch direction, operand/address toggling,
// optional data cache).
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "board/config.h"
#include "board/cost_model.h"
#include "isa/insn.h"
#include "sim/bus.h"
#include "sim/hooks.h"

namespace nfp::board {

struct BoardStats {
  std::uint64_t loads = 0;
  std::uint64_t row_misses = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t branches_taken = 0;
  std::uint64_t branches_untaken = 0;
};

class BoardHooks {
 public:
  static constexpr bool kWantsDetail = true;
  // Context-dependent effects (open rows, toggling, cache state) need every
  // retired instruction in order; block-batched accounting cannot apply.
  static constexpr bool kBatchRetire = false;

  BoardHooks(const BoardConfig& cfg, const CostModel& cost)
      : cfg_(cfg), cost_(cost) {
    if (cfg_.enable_cache) {
      const std::uint32_t lines = cfg_.cache_lines;
      tags_.assign(lines, kInvalidTag);
    }
  }

  void on_retire(const isa::DecodedInsn& d, const sim::RetireInfo& info) {
    if (!cfg_.has_fpu && uses_fpu(d.op)) {
      throw sim::SimError(
          "board error: FPU instruction executed on an FPU-less "
          "configuration (compile the kernel with soft-float)");
    }
    if (!cfg_.has_hw_muldiv && uses_muldiv(d.op)) {
      throw sim::SimError(
          "board error: MUL/DIV instruction executed on a configuration "
          "without the hardware units (compile with soft-muldiv)");
    }
    const OpCost& oc = cost_.of(d.op);
    std::uint32_t cyc;
    double e = oc.energy_nj;

    if (isa::is_load(d.op) || isa::is_store(d.op)) {
      cyc = memory_cycles(d.op, info.ea, oc, e);
      if (cfg_.enable_variation) {
        e *= toggle_factor(info.ea ^ prev_addr_, info.mem_data);
      }
      prev_addr_ = info.ea;
    } else if (isa::is_control(d.op)) {
      cyc = info.taken ? oc.cycles : oc.cycles_alt;
      if (info.taken) {
        ++stats_.branches_taken;
      } else {
        ++stats_.branches_untaken;
        e *= 0.8;  // the untaken path does not redirect the fetch stream
      }
    } else {
      cyc = oc.cycles;
      if (cfg_.enable_variation) {
        e *= toggle_factor(info.a ^ prev_a_, info.b ^ prev_b_);
        prev_a_ = info.a;
        prev_b_ = info.b;
      }
    }

    if (cfg_.fidelity == Fidelity::kCycleStepped) {
      // Step the microarchitectural activity tracker cycle by cycle, as a
      // hardware-description-level simulator would. The totals are the same
      // as the approximately-timed path; only the simulation cost differs.
      for (std::uint32_t i = 0; i < cyc; ++i) {
        activity_lfsr_ ^= activity_lfsr_ << 13;
        activity_lfsr_ ^= activity_lfsr_ >> 7;
        activity_lfsr_ ^= activity_lfsr_ << 17;
        activity_ += std::popcount(activity_lfsr_);
      }
    }

    cycles_ += cyc;
    energy_nj_ += e;
  }

  std::uint64_t cycles() const { return cycles_; }
  double energy_nj() const { return energy_nj_; }
  const BoardStats& stats() const { return stats_; }
  std::uint64_t switching_activity() const { return activity_; }

 private:
  static constexpr std::uint32_t kInvalidTag = 0xFFFFFFFFu;

  static bool uses_fpu(isa::Op op) {
    return isa::is_fpu(op) || op == isa::Op::kLdf || op == isa::Op::kLddf ||
           op == isa::Op::kStf || op == isa::Op::kStdf ||
           op == isa::Op::kFbfcc;
  }

  static bool uses_muldiv(isa::Op op) {
    switch (op) {
      case isa::Op::kUmul: case isa::Op::kUmulcc: case isa::Op::kSmul:
      case isa::Op::kSmulcc: case isa::Op::kUdiv: case isa::Op::kUdivcc:
      case isa::Op::kSdiv: case isa::Op::kSdivcc:
        return true;
      default:
        return false;
    }
  }

  // Energy modulation from switching activity: ~1.0 on average for typical
  // data, spanning 1 +- amplitude/2.
  double toggle_factor(std::uint32_t x, std::uint32_t y) const {
    const int toggles = std::popcount(x) + std::popcount(y);
    const double tf = static_cast<double>(toggles) / 64.0;  // 0..1
    return 1.0 + cfg_.data_energy_amplitude * (tf - 0.5);
  }

  std::uint32_t memory_cycles(isa::Op op, std::uint32_t ea, const OpCost& oc,
                              double& e) {
    if (isa::is_load(op)) ++stats_.loads;
    if (cfg_.enable_cache && isa::is_load(op)) {
      const std::uint32_t line = ea / cfg_.cache_line_bytes;
      const std::uint32_t index = line % cfg_.cache_lines;
      if (tags_[index] == line) {
        ++stats_.cache_hits;
        e = cost_.cache_hit_energy_nj();
        return cost_.cache_hit_cycles();
      }
      ++stats_.cache_misses;
      tags_[index] = line;
    }
    const std::uint32_t row = ea >> cost_.row_bits();
    if (row != open_row_) {
      open_row_ = row;
      ++stats_.row_misses;
      e += cost_.row_miss_energy_nj();
      return oc.cycles + cost_.row_miss_cycles();
    }
    return oc.cycles;
  }

  const BoardConfig& cfg_;
  const CostModel& cost_;

  std::uint64_t cycles_ = 0;
  double energy_nj_ = 0.0;
  BoardStats stats_;

  std::uint32_t prev_a_ = 0, prev_b_ = 0, prev_addr_ = 0;
  std::uint32_t open_row_ = kInvalidTag;
  std::vector<std::uint32_t> tags_;

  std::uint64_t activity_lfsr_ = 0x2545F4914F6CDD1Dull;
  std::uint64_t activity_ = 0;
};

}  // namespace nfp::board
