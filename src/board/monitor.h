// Debug monitor for the measurement board — the GRMON analog the paper used
// to control the FPGA test stand. Text-command interface for scripted debug
// sessions, examples and tests.
//
// Commands:
//   reg                 dump integer registers, pc/npc, condition codes
//   freg                dump FPU registers as doubles
//   dis [addr] [n]      disassemble n instructions (default: at pc, 8)
//   mem <addr> [n]      hex-dump n words (default 8)
//   step [n]            execute n instructions (default 1)
//   run [max]           run until halt, breakpoint, or max instructions
//   break <addr>        set a breakpoint
//   delete <addr>       remove a breakpoint
//   info                cycles, energy, instret, memory-system statistics
//   help                command list
#pragma once

#include <cstdint>
#include <set>
#include <string>

#include "board/board.h"

namespace nfp::board {

class DebugMonitor {
 public:
  explicit DebugMonitor(Board& board) : board_(board) {}

  // Executes one command line; returns the monitor's textual response.
  // Unknown commands return an error string (never throws for bad input).
  std::string command(const std::string& line);

  const std::set<std::uint32_t>& breakpoints() const { return breakpoints_; }

 private:
  std::string cmd_reg() const;
  std::string cmd_freg() const;
  std::string cmd_dis(std::uint32_t addr, int count);
  std::string cmd_mem(std::uint32_t addr, int words);
  std::string cmd_step(std::uint64_t count);
  std::string cmd_run(std::uint64_t max_insns);
  std::string cmd_info() const;

  Board& board_;
  std::set<std::uint32_t> breakpoints_;
};

}  // namespace nfp::board
