// The board's PMU-style event-counter surface.
//
// The accounting hooks always computed these tallies internally (SDRAM
// row misses, cache hits/misses, branch direction, row-miss stall cycles);
// this header promotes them into a versioned, iterable export so estimation
// schemes beyond the paper's Eq. 1 — the event-counter model of *Video
// Decoding Energy Estimation Using Processor Events* (2023) in particular —
// can read them like a performance-monitoring unit.
//
// Every counter is derived from the same shared residual kernel both
// dispatch tiers replay (board/hooks.h), so EventCounters is bit-identical
// across Dispatch::kStep, kBlock and kJit, and it round-trips through the
// versioned snapshot format unchanged (board/board.cpp).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace nfp::board {

// Bumped whenever a counter is added, removed, or changes meaning, so
// downstream consumers (JSONL records, fitted coefficient vectors) can
// detect a stale counter layout.
inline constexpr std::uint32_t kEventCountersVersion = 1;

enum class Event : std::uint8_t {
  kRetired = 0,        // total retired instructions
  kLoads,              // retired load-class memory ops
  kStores,             // retired store-class memory ops
  kRowMisses,          // SDRAM accesses that had to open a new row
  kCacheHits,          // data-cache hits (0 unless the cache is enabled)
  kCacheMisses,        // data-cache misses (0 unless the cache is enabled)
  kBranchesTaken,      // resolved-taken conditional branches
  kBranchesUntaken,    // resolved-untaken conditional branches
  kStallCycles,        // extra cycles spent waiting on SDRAM row opens
  kFpuOps,             // retired floating-point ops (LEON-style FPU counter)
  kMulDivOps,          // retired integer multiply/divide ops
};

inline constexpr std::size_t kEventCount = 11;

constexpr std::string_view event_name(Event e) {
  switch (e) {
    case Event::kRetired: return "retired";
    case Event::kLoads: return "loads";
    case Event::kStores: return "stores";
    case Event::kRowMisses: return "row_misses";
    case Event::kCacheHits: return "cache_hits";
    case Event::kCacheMisses: return "cache_misses";
    case Event::kBranchesTaken: return "branches_taken";
    case Event::kBranchesUntaken: return "branches_untaken";
    case Event::kStallCycles: return "stall_cycles";
    case Event::kFpuOps: return "fpu_ops";
    case Event::kMulDivOps: return "muldiv_ops";
  }
  return "?";
}

struct EventCounters {
  std::array<std::uint64_t, kEventCount> v{};

  std::uint64_t& operator[](Event e) {
    return v[static_cast<std::size_t>(e)];
  }
  std::uint64_t operator[](Event e) const {
    return v[static_cast<std::size_t>(e)];
  }

  friend bool operator==(const EventCounters&, const EventCounters&) = default;
};

}  // namespace nfp::board
