// Configuration of the simulated measurement board (the FPGA + LEON3 + power
// meter stand-in). The defaults are tuned so that calibration reproduces the
// paper's Table I values at a 50 MHz clock.
#pragma once

#include <cstdint>

namespace nfp::board {

enum class Fidelity {
  kApproxTimed,   // per-instruction cost accounting (quasi cycle accurate)
  kCycleStepped,  // per-cycle stepping with switching-activity tracking
                  // (the "CAS-like" rung of the Fig. 1 ladder; same totals,
                  // much slower)
};

struct BoardConfig {
  // Hardware configuration knobs (the paper's design space).
  bool has_fpu = true;
  bool has_hw_muldiv = true;  // LEON3 MUL/DIV units are synthesis options
  double clock_hz = 50.0e6;

  // Context-dependent behaviour of the "real" hardware. These are the
  // mechanisms that make constant-per-category estimation imperfect:
  // operand/address toggling modulates per-instruction energy, and the
  // SDRAM open-row state modulates load/store latency.
  bool enable_variation = true;
  double data_energy_amplitude = 0.30;  // +-15% swing around the base energy

  // Power-meter and clock()-granularity measurement imperfections.
  bool enable_meter_noise = true;
  double meter_noise_sigma = 0.004;  // multiplicative gaussian on energy
  double clock_ticks_per_s = 1000.0;  // time quantisation of the time base
  std::uint64_t seed = 0x5EED2015u;

  // Future-work extension (paper §VII): direct-mapped data cache.
  bool enable_cache = false;
  std::uint32_t cache_lines = 256;
  std::uint32_t cache_line_bytes = 32;

  Fidelity fidelity = Fidelity::kApproxTimed;

  // Snapshot restore refuses state saved under a different configuration
  // (board/board.cpp): every field participates in the fingerprint.
  friend bool operator==(const BoardConfig&, const BoardConfig&) = default;
};

}  // namespace nfp::board
