// Ground-truth per-instruction cost tables of the simulated board.
//
// These are the "real hardware" values the NFP model tries to recover by
// calibration; they are intentionally finer-grained than the nine Table-I
// categories (e.g. umul/udiv differ from add) so that the category model has
// genuine lumping error, as on the paper's FPGA.
#pragma once

#include <array>
#include <cstdint>

#include "isa/insn.h"

namespace nfp::board {

struct OpCost {
  std::uint32_t cycles = 2;        // base cycles (taken path for branches)
  std::uint32_t cycles_alt = 2;    // untaken path for branches
  double energy_nj = 13.0;         // base energy per execution
};

class CostModel {
 public:
  // Default table tuned for a 50 MHz LEON3-like core without caches.
  CostModel();

  const OpCost& of(isa::Op op) const {
    return table_[static_cast<std::size_t>(op)];
  }
  OpCost& of(isa::Op op) { return table_[static_cast<std::size_t>(op)]; }

  // SDRAM behaviour: extra cycles / energy on a row miss.
  std::uint32_t row_miss_cycles() const { return 4; }
  double row_miss_energy_nj() const { return 18.0; }
  std::uint32_t row_bits() const { return 10; }  // 1 KiB open row

  // Cache-enabled behaviour (extension): a hit shrinks a memory access to
  // the pipeline minimum, a miss pays the full SDRAM access.
  std::uint32_t cache_hit_cycles() const { return 3; }
  double cache_hit_energy_nj() const { return 18.0; }

 private:
  std::array<OpCost, isa::kOpCount> table_;
};

}  // namespace nfp::board
