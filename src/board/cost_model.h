// Ground-truth per-instruction cost tables of the simulated board.
//
// These are the "real hardware" values the NFP model tries to recover by
// calibration; they are intentionally finer-grained than the nine Table-I
// categories (e.g. umul/udiv differ from add) so that the category model has
// genuine lumping error, as on the paper's FPGA.
#pragma once

#include <array>
#include <cstdint>

#include "isa/insn.h"
#include "sim/hooks.h"

namespace nfp::board {

// Per-op cost, split into a statically-precomputable base and a tagged
// dynamic residual kind. The base (cycles, energy_nj and its leakage share)
// is what a block-level cost profile can sum at morph time; `kind` says
// which context-dependent correction — if any — must still be applied per
// retired instruction (SDRAM row / cache state for memory ops, resolved
// direction for control transfers, operand bit activity for FP arithmetic).
struct OpCost {
  std::uint32_t cycles = 2;        // base cycles (taken path for branches)
  std::uint32_t cycles_alt = 2;    // untaken path for branches
  double energy_nj = 13.0;         // base energy per execution (incl. leakage)
  // Static leakage share of energy_nj: the part that scales with occupancy
  // (cycles held in the pipeline) rather than with switching activity, and
  // is therefore exempt from operand-toggle modelling refinements. Purely a
  // decomposition of energy_nj — totals never change with this value.
  double leakage_nj = 0.0;
  sim::ResidualKind kind = sim::ResidualKind::kNone;
};

class CostModel {
 public:
  // Default table tuned for a 50 MHz LEON3-like core without caches.
  CostModel();

  const OpCost& of(isa::Op op) const {
    return table_[static_cast<std::size_t>(op)];
  }
  OpCost& of(isa::Op op) { return table_[static_cast<std::size_t>(op)]; }

  // SDRAM behaviour: extra cycles / energy on a row miss.
  std::uint32_t row_miss_cycles() const { return 4; }
  double row_miss_energy_nj() const { return 18.0; }
  std::uint32_t row_bits() const { return 10; }  // 1 KiB open row

  // Cache-enabled behaviour (extension): a hit shrinks a memory access to
  // the pipeline minimum, a miss pays the full SDRAM access.
  std::uint32_t cache_hit_cycles() const { return 3; }
  double cache_hit_energy_nj() const { return 18.0; }

 private:
  std::array<OpCost, isa::kOpCount> table_;
};

}  // namespace nfp::board
