#include "board/cost_model.h"

namespace nfp::board {

namespace {

// Category-level defaults; per-op deviations applied below. At 50 MHz one
// cycle is 20 ns, so e.g. loads at 35 cycles equal the paper's ~700 ns.
constexpr OpCost kIntArith{2, 2, 15.0};
constexpr OpCost kJump{12, 9, 76.0};
constexpr OpCost kLoad{35, 35, 229.0};
constexpr OpCost kStore{19, 19, 166.0};
constexpr OpCost kNopCost{2, 2, 13.0};
constexpr OpCost kOther{2, 2, 13.0};
constexpr OpCost kFpuArith{2, 2, 14.0};
constexpr OpCost kFpuDiv{22, 22, 431.0};
constexpr OpCost kFpuSqrt{31, 31, 88.0};

}  // namespace

CostModel::CostModel() {
  using isa::Category;
  using isa::Op;
  for (std::size_t i = 0; i < isa::kOpCount; ++i) {
    const auto op = static_cast<Op>(i);
    switch (isa::default_category(op)) {
      case Category::kIntArith: table_[i] = kIntArith; break;
      case Category::kJump: table_[i] = kJump; break;
      case Category::kMemLoad: table_[i] = kLoad; break;
      case Category::kMemStore: table_[i] = kStore; break;
      case Category::kNop: table_[i] = kNopCost; break;
      case Category::kOther: table_[i] = kOther; break;
      case Category::kFpuArith: table_[i] = kFpuArith; break;
      case Category::kFpuDiv: table_[i] = kFpuDiv; break;
      case Category::kFpuSqrt: table_[i] = kFpuSqrt; break;
    }
  }

  // Per-op deviations from the category mean — the real hardware is not as
  // uniform as the nine-category model assumes.
  for (const Op op : {Op::kUmul, Op::kUmulcc, Op::kSmul, Op::kSmulcc}) {
    of(op) = OpCost{5, 5, 27.0};
  }
  for (const Op op : {Op::kUdiv, Op::kUdivcc, Op::kSdiv, Op::kSdivcc}) {
    of(op) = OpCost{35, 35, 120.0};
  }
  // Shifts are marginally cheaper than adds on the barrel shifter.
  for (const Op op : {Op::kSll, Op::kSrl, Op::kSra}) {
    of(op) = OpCost{2, 2, 13.5};
  }
  // Double-word memory ops move two bus words.
  of(Op::kLdd) = OpCost{44, 44, 290.0};
  of(Op::kLddf) = OpCost{44, 44, 290.0};
  of(Op::kStd) = OpCost{26, 26, 215.0};
  of(Op::kStdf) = OpCost{26, 26, 215.0};
  // Trap entry is a little heavier than a plain jump.
  of(Op::kTicc) = OpCost{14, 10, 82.0};
  // jmpl (indirect jump / return) costs slightly more than a direct branch.
  of(Op::kJmpl) = OpCost{13, 13, 79.0};
  // FP compares / converts deviate mildly from adds.
  of(Op::kFcmps) = OpCost{2, 2, 13.0};
  of(Op::kFcmpd) = OpCost{2, 2, 13.5};
  of(Op::kFitod) = OpCost{3, 3, 15.0};
  of(Op::kFdtoi) = OpCost{3, 3, 15.0};
  of(Op::kFitos) = OpCost{3, 3, 15.0};
  of(Op::kFstoi) = OpCost{3, 3, 15.0};
  // Single-precision arithmetic is slightly cheaper than double.
  for (const Op op : {Op::kFadds, Op::kFsubs, Op::kFmuls}) {
    of(op) = OpCost{2, 2, 12.5};
  }
  of(Op::kFdivs) = OpCost{15, 15, 290.0};
  of(Op::kFsqrts) = OpCost{21, 21, 60.0};

  // Residual tagging, applied last so the per-op deviation aggregates above
  // cannot clobber it: which part of each op's cost stays context-dependent
  // after the static base is lifted into a per-block profile. Loads/stores
  // see the SDRAM open-row (and optional data-cache) state, control
  // transfers see their resolved direction, FP arithmetic energy tracks
  // operand bit activity; everything else is fully static apart from the
  // board-global operand-toggle variation.
  for (std::size_t i = 0; i < isa::kOpCount; ++i) {
    const auto op = static_cast<Op>(i);
    if (isa::is_load(op) || isa::is_store(op)) {
      table_[i].kind = sim::ResidualKind::kMemory;
    } else if (isa::is_control(op)) {
      table_[i].kind = sim::ResidualKind::kBranch;
    } else if (isa::is_fpu(op)) {
      table_[i].kind = sim::ResidualKind::kFpVariable;
    }
  }
}

}  // namespace nfp::board
