#include "board/board.h"

#include <cmath>

#include "board/rng.h"
#include "sim/executor.h"

namespace nfp::board {

Board::Board(BoardConfig cfg)
    : cfg_(cfg), hooks_(std::make_unique<BoardHooks>(cfg_, cost_)) {}

void Board::load(const asmkit::Program& program) {
  platform_.load(program);
  // Block-cost dispatch replays per-op residuals from captured operands, so
  // every block the fresh cache morphs must use the capture handler
  // variants. load() rebuilt the cache, so no block pre-dates this.
  platform_.block_cache()->set_capture(true);
  hooks_ = std::make_unique<BoardHooks>(cfg_, cost_);
}

void Board::step() {
  sim::Executor<BoardHooks> exec(platform_.cpu(), platform_.bus(), *hooks_);
  exec.set_decode_cache(platform_.code_base(), platform_.decode_cache());
  exec.set_block_cache(platform_.block_cache());
  exec.set_block_dispatch(false);
  if (!platform_.cpu().halted) exec.step();
}

sim::RunResult Board::run(std::uint64_t max_insns, sim::Dispatch dispatch) {
  sim::Executor<BoardHooks> exec(platform_.cpu(), platform_.bus(), *hooks_);
  exec.set_decode_cache(platform_.code_base(), platform_.decode_cache());
  exec.set_block_cache(platform_.block_cache());
  exec.set_block_dispatch(dispatch != sim::Dispatch::kStep);
  // BoardHooks expose the jit cost interface (jit_counts/jit_cycles/
  // jit_replay/jit_advance_activity), so kJit runs cost-mode native code:
  // static base cycles retire inline, dynamic residuals are captured and
  // replayed in batch. When jit_available() is false the executor degrades
  // to chained kBlock on its own.
  exec.set_jit(dispatch == sim::Dispatch::kJit);
  exec.set_chaining(dispatch == sim::Dispatch::kBlock ||
                    dispatch == sim::Dispatch::kJit);
  exec.run(max_insns);
  sim::RunResult result;
  result.halted = platform_.cpu().halted;
  result.instret = platform_.cpu().instret;
  result.exit_code = platform_.cpu().exit_code;
  return result;
}

Measurement Board::measure(std::string_view tag) const {
  Measurement m;
  m.energy_nj = true_energy_nj();
  m.time_s = true_time_s();
  if (cfg_.enable_meter_noise) {
    SplitMix64 rng(fnv1a(tag, cfg_.seed ^ 0x9E3779B97F4A7C15ull));
    m.energy_nj *= 1.0 + cfg_.meter_noise_sigma * rng.gaussian();
    // clock()-style quantisation: the target timebase has finite resolution.
    const double ticks =
        std::floor(m.time_s * cfg_.clock_ticks_per_s + rng.uniform());
    m.time_s = ticks / cfg_.clock_ticks_per_s;
  }
  return m;
}

}  // namespace nfp::board
