#include "board/board.h"

#include <cmath>

#include "board/rng.h"
#include "sim/executor.h"
#include "sim/state_io.h"

namespace nfp::board {

Board::Board(BoardConfig cfg)
    : cfg_(cfg), hooks_(std::make_unique<BoardHooks>(cfg_, cost_)) {}

void Board::load(const asmkit::Program& program) {
  platform_.load(program);
  // Block-cost dispatch replays per-op residuals from captured operands, so
  // every block the fresh cache morphs must use the capture handler
  // variants. load() rebuilt the cache, so no block pre-dates this.
  platform_.block_cache()->set_capture(true);
  hooks_ = std::make_unique<BoardHooks>(cfg_, cost_);
}

void Board::step() {
  sim::Executor<BoardHooks> exec(platform_.cpu(), platform_.bus(), *hooks_);
  exec.set_decode_cache(platform_.code_base(), platform_.decode_cache());
  exec.set_block_cache(platform_.block_cache());
  exec.set_block_dispatch(false);
  if (!platform_.cpu().halted) exec.step();
}

sim::RunResult Board::run(std::uint64_t max_insns, sim::Dispatch dispatch) {
  sim::Executor<BoardHooks> exec(platform_.cpu(), platform_.bus(), *hooks_);
  exec.set_decode_cache(platform_.code_base(), platform_.decode_cache());
  exec.set_block_cache(platform_.block_cache());
  exec.set_block_dispatch(dispatch != sim::Dispatch::kStep);
  // BoardHooks expose the jit cost interface (jit_counts/jit_cycles/
  // jit_replay/jit_advance_activity), so kJit runs cost-mode native code:
  // static base cycles retire inline, dynamic residuals are captured and
  // replayed in batch. When jit_available() is false the executor degrades
  // to chained kBlock on its own.
  exec.set_jit(dispatch == sim::Dispatch::kJit);
  exec.set_chaining(dispatch == sim::Dispatch::kBlock ||
                    dispatch == sim::Dispatch::kJit);
  exec.run(max_insns);
  sim::RunResult result;
  result.halted = platform_.cpu().halted;
  result.instret = platform_.cpu().instret;
  result.exit_code = platform_.cpu().exit_code;
  return result;
}

void Board::save_state(std::ostream& out) const {
  sim::StateWriter w;
  sim::append_platform_chunks(w, platform_);

  w.begin_chunk(sim::kChunkBoardConfig);
  w.put_u8(cfg_.has_fpu ? 1 : 0);
  w.put_u8(cfg_.has_hw_muldiv ? 1 : 0);
  w.put_f64(cfg_.clock_hz);
  w.put_u8(cfg_.enable_variation ? 1 : 0);
  w.put_f64(cfg_.data_energy_amplitude);
  w.put_u8(cfg_.enable_meter_noise ? 1 : 0);
  w.put_f64(cfg_.meter_noise_sigma);
  w.put_f64(cfg_.clock_ticks_per_s);
  w.put_u64(cfg_.seed);
  w.put_u8(cfg_.enable_cache ? 1 : 0);
  w.put_u32(cfg_.cache_lines);
  w.put_u32(cfg_.cache_line_bytes);
  w.put_u8(static_cast<std::uint8_t>(cfg_.fidelity));
  w.end_chunk();

  const BoardHooksState s = hooks_->export_state();
  w.begin_chunk(sim::kChunkBoardHooks);
  w.put_u64(s.cycles);
  w.put_u32(static_cast<std::uint32_t>(s.counts.size()));
  for (const std::uint64_t c : s.counts) w.put_u64(c);
  w.put_f64(s.residual_energy);
  w.put_u64(s.stats.loads);
  w.put_u64(s.stats.stores);
  w.put_u64(s.stats.row_misses);
  w.put_u64(s.stats.cache_hits);
  w.put_u64(s.stats.cache_misses);
  w.put_u64(s.stats.branches_taken);
  w.put_u64(s.stats.branches_untaken);
  w.put_u64(s.stats.stall_cycles);
  w.put_u32(s.prev_a);
  w.put_u32(s.prev_b);
  w.put_u32(s.prev_addr);
  w.put_u32(s.open_row);
  w.put_u32(static_cast<std::uint32_t>(s.tags.size()));
  for (const std::uint32_t t : s.tags) w.put_u32(t);
  w.put_u64(s.activity_lfsr);
  w.put_u64(s.activity);
  w.end_chunk();

  w.finish(out);
}

void Board::restore_state(std::istream& in) {
  using sim::StateError;
  using sim::StateErrorCode;
  auto tags = sim::platform_chunk_tags();
  tags.push_back(sim::kChunkBoardConfig);
  tags.push_back(sim::kChunkBoardHooks);
  const sim::StateReader r(in, tags);

  // Decode phase: nothing on the board mutates until every chunk decoded and
  // validated (all-or-nothing restore; see sim/state_io.h).
  BoardConfig snap_cfg;
  {
    sim::ChunkCursor c(r.payload(sim::kChunkBoardConfig));
    snap_cfg.has_fpu = c.get_u8() != 0;
    snap_cfg.has_hw_muldiv = c.get_u8() != 0;
    snap_cfg.clock_hz = c.get_f64();
    snap_cfg.enable_variation = c.get_u8() != 0;
    snap_cfg.data_energy_amplitude = c.get_f64();
    snap_cfg.enable_meter_noise = c.get_u8() != 0;
    snap_cfg.meter_noise_sigma = c.get_f64();
    snap_cfg.clock_ticks_per_s = c.get_f64();
    snap_cfg.seed = c.get_u64();
    snap_cfg.enable_cache = c.get_u8() != 0;
    snap_cfg.cache_lines = c.get_u32();
    snap_cfg.cache_line_bytes = c.get_u32();
    const std::uint8_t fid = c.get_u8();
    if (fid > static_cast<std::uint8_t>(Fidelity::kCycleStepped)) {
      throw StateError(StateErrorCode::kBadPayload, "fidelity out of range");
    }
    snap_cfg.fidelity = static_cast<Fidelity>(fid);
    c.done();
  }
  if (!(snap_cfg == cfg_)) {
    throw StateError(StateErrorCode::kConfigMismatch,
                     "snapshot was taken under a different board "
                     "configuration");
  }

  BoardHooksState s;
  {
    sim::ChunkCursor c(r.payload(sim::kChunkBoardHooks));
    s.cycles = c.get_u64();
    if (c.get_u32() != s.counts.size()) {
      throw StateError(StateErrorCode::kBadPayload,
                       "retire-count vector has the wrong arity");
    }
    for (std::uint64_t& count : s.counts) count = c.get_u64();
    s.residual_energy = c.get_f64();
    s.stats.loads = c.get_u64();
    s.stats.stores = c.get_u64();
    s.stats.row_misses = c.get_u64();
    s.stats.cache_hits = c.get_u64();
    s.stats.cache_misses = c.get_u64();
    s.stats.branches_taken = c.get_u64();
    s.stats.branches_untaken = c.get_u64();
    s.stats.stall_cycles = c.get_u64();
    s.prev_a = c.get_u32();
    s.prev_b = c.get_u32();
    s.prev_addr = c.get_u32();
    s.open_row = c.get_u32();
    const std::uint32_t ntags = c.get_u32();
    const std::uint32_t want = cfg_.enable_cache ? cfg_.cache_lines : 0;
    if (ntags != want) {
      throw StateError(StateErrorCode::kBadPayload,
                       "cache tag array does not match the configuration");
    }
    s.tags.resize(ntags);
    for (std::uint32_t& t : s.tags) t = c.get_u32();
    s.activity_lfsr = c.get_u64();
    s.activity = c.get_u64();
    c.done();
  }

  sim::apply_platform_chunks(r, platform_);
  // Same post-load invariant as load(): every block the fresh cache morphs
  // must capture residual operands for cost-mode replay.
  platform_.block_cache()->set_capture(true);
  hooks_ = std::make_unique<BoardHooks>(cfg_, cost_);
  hooks_->import_state(s);
}

Measurement Board::measure(std::string_view tag) const {
  Measurement m;
  m.energy_nj = true_energy_nj();
  m.time_s = true_time_s();
  if (cfg_.enable_meter_noise) {
    SplitMix64 rng(fnv1a(tag, cfg_.seed ^ 0x9E3779B97F4A7C15ull));
    m.energy_nj *= 1.0 + cfg_.meter_noise_sigma * rng.gaussian();
    // clock()-style quantisation: the target timebase has finite resolution.
    const double ticks =
        std::floor(m.time_s * cfg_.clock_ticks_per_s + rng.uniform());
    m.time_s = ticks / cfg_.clock_ticks_per_s;
  }
  return m;
}

}  // namespace nfp::board
