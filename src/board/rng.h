// Deterministic, platform-independent random utilities for the board's
// measurement noise. Distribution sampling is implemented by hand (rather
// than <random> distributions) so results are bit-identical everywhere.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>
#include <string_view>

namespace nfp::board {

// SplitMix64: tiny, high-quality PRNG.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    state_ += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Standard normal via Box-Muller (deterministic, portable).
  double gaussian() {
    double u1 = uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

 private:
  std::uint64_t state_;
};

// FNV-1a hash for deriving per-kernel noise seeds from kernel tags.
constexpr std::uint64_t fnv1a(std::string_view text,
                              std::uint64_t seed = 0xCBF29CE484222325ull) {
  std::uint64_t h = seed;
  for (const char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace nfp::board
