// The measurement board: functional execution plus ground-truth cycle and
// energy accounting, and a power-meter front end with realistic measurement
// imperfections. This module plays the role of the paper's Terasic DE2-115
// FPGA + LEON3 + external power meter test stand.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string_view>

#include "asmkit/program.h"
#include "board/config.h"
#include "board/cost_model.h"
#include "board/hooks.h"
#include "sim/executor.h"
#include "sim/platform.h"

namespace nfp::board {

// What the experimenter reads off the bench: energy from the power meter
// (noisy) and elapsed time from the target's clock (tick-quantised).
struct Measurement {
  double energy_nj = 0.0;
  double time_s = 0.0;
};

class Board {
 public:
  explicit Board(BoardConfig cfg = {});

  void load(const asmkit::Program& program);
  // Runs under the chosen dispatch mode. Block dispatch retires whole
  // superblocks against precomputed static cost profiles with per-op
  // residual callbacks for the flagged subset; cycles, energy, and stats
  // are bit-for-bit identical across all modes (see board/hooks.h). The
  // morph cache is attached in every mode, so stores into the code range
  // re-decode the image even when stepping.
  sim::RunResult run(std::uint64_t max_insns = kDefaultMaxInsns,
                     sim::Dispatch dispatch = sim::Dispatch::kBlock);
  // Executes a single instruction (debug monitor support).
  void step();

  // Ground truth (inaccessible on real hardware; used by tests and by the
  // Fig. 1 accuracy ladder).
  std::uint64_t cycles() const { return hooks_->cycles(); }
  double true_time_s() const {
    return static_cast<double>(cycles()) / cfg_.clock_hz;
  }
  double true_energy_nj() const { return hooks_->energy_nj(); }
  const BoardStats& stats() const { return hooks_->stats(); }
  // The versioned PMU-style counter export (board/events.h): bit-identical
  // across dispatch modes and preserved by snapshot/restore.
  EventCounters events() const { return hooks_->events(); }
  // Per-op retire counts from the board run (estimation-scheme features).
  const std::array<std::uint64_t, isa::kOpCount>& op_counts() const {
    return hooks_->op_counts();
  }
  std::uint64_t switching_activity() const {
    return hooks_->switching_activity();
  }

  // Bench measurement: ground truth seen through the power meter and the
  // clock's tick granularity. `tag` identifies the kernel so repeated
  // measurements of the same kernel are reproducible but distinct kernels
  // draw independent noise.
  Measurement measure(std::string_view tag) const;

  // Versioned snapshot of the whole stand: platform state plus the board's
  // configuration fingerprint and accumulator state (SDRAM open row, cache
  // tags, meter accumulators, switching-activity LFSR). Restore refuses
  // snapshots taken under a different BoardConfig (kConfigMismatch) and is
  // all-or-nothing; a resumed run produces bit-identical cycles, energy,
  // stats, and activity in every dispatch mode (see sim/state_io.h).
  void save_state(std::ostream& out) const;
  void restore_state(std::istream& in);

  const BoardConfig& config() const { return cfg_; }
  sim::Platform& platform() { return platform_; }
  sim::Bus& bus() { return platform_.bus(); }
  sim::CpuState& cpu() { return platform_.cpu(); }

  static constexpr std::uint64_t kDefaultMaxInsns = 20'000'000'000ull;

 private:
  BoardConfig cfg_;
  CostModel cost_;
  sim::Platform platform_;
  std::unique_ptr<BoardHooks> hooks_;
};

}  // namespace nfp::board
