#include "nfp/estimator.h"

namespace nfp::model {
namespace {

// The paper's Eq. 1: features are the nine Table-I category counts.
class Eq1Estimator final : public Estimator {
 public:
  std::string_view name() const override { return "eq1"; }
  std::size_t terms() const override { return CategoryScheme::paper().size(); }
  std::string term_name(std::size_t t) const override {
    return CategoryScheme::paper().category_name(t);
  }
  bool needs_board_run() const override { return false; }

  std::vector<double> features(const RunSample& run) const override {
    const CategoryCounts agg = CategoryScheme::paper().aggregate(run.counts);
    std::vector<double> x(agg.size());
    for (std::size_t c = 0; c < agg.size(); ++c) {
      x[c] = static_cast<double>(agg[c]);
    }
    return x;
  }
};

// PMU event-counter model (2023 follow-on): a linear model over the
// board's exported hardware event counters alone — no disassembly, no
// per-opcode categories. This is what a deployment can observe on silicon
// where only a PMU is available: retired instructions carry the average
// per-instruction cost, and the memory/branch events price SDRAM row
// opens, cache misses and the taken/untaken asymmetry on top.
class EventsEstimator final : public Estimator {
 public:
  std::string_view name() const override { return "events"; }
  std::size_t terms() const override { return board::kEventCount; }
  std::string term_name(std::size_t t) const override {
    return std::string(board::event_name(static_cast<board::Event>(t)));
  }
  bool needs_board_run() const override { return true; }

  std::vector<double> features(const RunSample& run) const override {
    std::vector<double> x(board::kEventCount);
    for (std::size_t e = 0; e < board::kEventCount; ++e) {
      x[e] = static_cast<double>(run.events.v[e]);
    }
    return x;
  }
};

// Processing-time proxy (2015 follow-on): E ≈ P̄·T — one term, the
// measured run time, with the fitted coefficient playing the average-power
// role (the difference calibration cancels any constant offset E0). The
// time fit trivially converges to T̂ = T (coefficient 1e9 ns per second).
class TimeProxyEstimator final : public Estimator {
 public:
  std::string_view name() const override { return "time-proxy"; }
  std::size_t terms() const override { return 1; }
  std::string term_name(std::size_t) const override {
    return "Measured time";
  }
  bool needs_board_run() const override { return true; }

  std::vector<double> features(const RunSample& run) const override {
    return {run.measured_time_s};
  }
};

}  // namespace

const Estimator& eq1_estimator() {
  static const Eq1Estimator e;
  return e;
}

const Estimator& events_estimator() {
  static const EventsEstimator e;
  return e;
}

const Estimator& time_proxy_estimator() {
  static const TimeProxyEstimator e;
  return e;
}

std::vector<const Estimator*> all_estimators() {
  return {&eq1_estimator(), &events_estimator(), &time_proxy_estimator()};
}

const Estimator* find_estimator(std::string_view name) {
  for (const Estimator* e : all_estimators()) {
    if (e->name() == name) return e;
  }
  return nullptr;
}

std::string estimator_names() {
  std::string out;
  for (const Estimator* e : all_estimators()) {
    if (!out.empty()) out += ", ";
    out += e->name();
  }
  return out;
}

}  // namespace nfp::model
