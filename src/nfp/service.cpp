#include "nfp/service.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "sim/jit.h"

namespace nfp::model {

CampaignService::CampaignService(ServiceConfig cfg)
    : cfg_(std::move(cfg)),
      estimator_(find_estimator(cfg_.scheme)),
      dispatch_(cfg_.dispatch.value_or(sim::jit_available()
                                           ? sim::Dispatch::kJit
                                           : sim::Dispatch::kBlock)) {
  if (estimator_ == nullptr) {
    throw std::invalid_argument("CampaignService: unknown scheme '" +
                                cfg_.scheme + "' (known: " +
                                estimator_names() + ")");
  }
  unsigned workers = cfg_.workers;
  if (workers == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    // Each worker holds two 16 MiB platforms; cap the default fleet.
    workers = hw == 0 ? 2 : std::min(hw, 8u);
  }
  workers = std::max(workers, 1u);
  shards_.resize(workers);
  pool_.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool_.emplace_back([this, w] { worker_main(w); });
  }
}

CampaignService::~CampaignService() {
  wait_all();
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : pool_) t.join();
}

std::uint64_t CampaignService::submit(ServiceJob job) {
  std::lock_guard<std::mutex> lk(mu_);
  const std::uint64_t id = next_id_++;
  PendingJob pj;
  pj.id = id;
  pj.job = std::move(job);
  pj.rec.name = pj.job.name;
  results_.resize(static_cast<std::size_t>(next_id_));
  have_result_.resize(static_cast<std::size_t>(next_id_));
  shards_[id % shards_.size()].push_back(std::move(pj));
  ++queued_;
  work_cv_.notify_one();
  return id;
}

void CampaignService::wait_all() {
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] { return completed_ == next_id_; });
}

std::vector<ServiceResult> CampaignService::results() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<ServiceResult> out;
  out.reserve(results_.size());
  for (std::size_t i = 0; i < results_.size(); ++i) {
    if (have_result_[i]) out.push_back(results_[i]);
  }
  return out;
}

ServiceStats CampaignService::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void CampaignService::set_sink(std::function<void(const ServiceResult&)> sink) {
  std::lock_guard<std::mutex> lk(sink_mu_);
  sink_ = std::move(sink);
}

void CampaignService::set_static_sink(
    std::function<void(std::uint64_t, const std::string&, const StaticBounds&)>
        sink) {
  std::lock_guard<std::mutex> lk(sink_mu_);
  static_sink_ = std::move(sink);
}

const CategoryCosts& CampaignService::costs() {
  if (!cfg_.calibrate) {
    throw std::logic_error("CampaignService: calibration disabled");
  }
  ensure_calibrated();
  return calibration_->costs;
}

std::vector<ServiceResult> CampaignService::run_jobs(
    std::vector<ServiceJob> jobs) {
  for (auto& job : jobs) submit(std::move(job));
  wait_all();
  return results();
}

void CampaignService::ensure_calibrated() {
  std::call_once(calib_once_, [&] {
    // fit() routes "eq1" through the classic Eq. 2 differencing run, so the
    // default scheme's table is bit-identical to Calibrator::run().
    calibration_ =
        Calibrator(CategoryScheme::paper(), cfg_.plan).fit(*estimator_,
                                                           cfg_.board);
  });
}

bool CampaignService::pop_job(unsigned self, PendingJob& out) {
  auto& own = shards_[self];
  if (!own.empty()) {
    out = std::move(own.front());
    own.pop_front();
    --queued_;
    return true;
  }
  // Steal from the back of the nearest non-empty shard: the owner drains
  // its shard front-to-back, so thieves take the work it would reach last.
  for (std::size_t k = 1; k < shards_.size(); ++k) {
    auto& other = shards_[(self + k) % shards_.size()];
    if (other.empty()) continue;
    out = std::move(other.back());
    other.pop_back();
    --queued_;
    ++stats_.steals;
    return true;
  }
  return false;
}

bool CampaignService::run_slice(PendingJob& pj, Campaign::WorkerArena& arena,
                                ServiceStats& delta) {
  ++pj.slices;
  ++delta.slices;
  const ServiceJob& job = pj.job;

  // Static fast path: price the program before the first executed
  // instruction and serve the interval immediately. In static_only mode an
  // accepted interval IS the answer; refusals fall through to the dynamic
  // pipeline either way.
  if (cfg_.static_estimator && !pj.static_bounds) {
    pj.static_bounds = cfg_.static_estimator(job.program);
    {
      std::lock_guard<std::mutex> sg(sink_mu_);
      if (static_sink_) static_sink_(pj.id, job.name, *pj.static_bounds);
    }
    if (cfg_.static_only && pj.static_bounds->accepted) {
      pj.static_served = true;
      pj.rec.ok = true;
      return true;
    }
  }

  if (pj.phase == Phase::kIss) {
    sim::Iss& iss = arena.iss;
    if (pj.checkpoint.empty()) {
      iss.load(job.program);
      for (const auto& [addr, bytes] : job.inputs) {
        iss.bus().write_block(addr, bytes.data(), bytes.size());
      }
    } else {
      std::istringstream in(std::move(pj.checkpoint));
      iss.restore_state(in);
      pj.checkpoint.clear();
      ++delta.resumes;
    }
    const std::uint64_t done = iss.cpu().instret;
    const std::uint64_t remaining =
        job.max_insns > done ? job.max_insns - done : 0;
    std::uint64_t budget = remaining;
    if (job.slice_insns > 0) budget = std::min(budget, job.slice_insns);
    const auto r = iss.run(budget);
    if (!r.halted) {
      if (r.instret >= job.max_insns) {
        throw std::runtime_error("ISS run did not halt (instruction budget)");
      }
      std::ostringstream out;
      iss.save_state(out);
      pj.checkpoint = std::move(out).str();
      ++pj.checkpoints;
      ++delta.checkpoints;
      delta.checkpoint_bytes += pj.checkpoint.size();
      return false;
    }
    pj.rec.counts = iss.counters().counts;
    pj.rec.instret = r.instret;
    pj.rec.exit_code = r.exit_code;
    // Phase switch is itself a preemption point: the board run starts cold
    // in a later slice (often on another worker's arena).
    pj.phase = Phase::kBoard;
    return false;
  }

  board::Board& brd = arena.board;
  if (pj.checkpoint.empty()) {
    brd.load(job.program);
    for (const auto& [addr, bytes] : job.inputs) {
      brd.bus().write_block(addr, bytes.data(), bytes.size());
    }
  } else {
    std::istringstream in(std::move(pj.checkpoint));
    brd.restore_state(in);
    pj.checkpoint.clear();
    ++delta.resumes;
  }
  const std::uint64_t done = brd.cpu().instret;
  const std::uint64_t remaining =
      job.max_insns > done ? job.max_insns - done : 0;
  std::uint64_t budget = remaining;
  if (job.slice_insns > 0) budget = std::min(budget, job.slice_insns);
  const auto r = brd.run(budget, dispatch_);
  if (!r.halted) {
    if (r.instret >= job.max_insns) {
      throw std::runtime_error("board run did not halt");
    }
    std::ostringstream out;
    brd.save_state(out);
    pj.checkpoint = std::move(out).str();
    ++pj.checkpoints;
    ++delta.checkpoints;
    delta.checkpoint_bytes += pj.checkpoint.size();
    return false;
  }
  if (r.instret != pj.rec.instret) {
    // The estimator multiplies ISS counts with board-calibrated costs;
    // diverging instruction streams would invalidate the experiment.
    throw std::runtime_error("ISS/board instruction streams diverged");
  }
  pj.rec.measured = brd.measure(job.name);
  pj.rec.events = brd.events();
  pj.rec.cycles = brd.cycles();
  pj.rec.true_energy_nj = brd.true_energy_nj();
  pj.rec.true_time_s = brd.true_time_s();
  if (cfg_.calibrate) {
    ensure_calibrated();
    pj.estimate = estimator_->estimate(run_sample(pj.rec),
                                       calibration_->costs);
  }
  pj.rec.ok = true;
  return true;
}

void CampaignService::worker_main(unsigned self) {
  // One arena per worker, reused across every slice it runs: only pages the
  // previous slice dirtied get re-zeroed (Platform::load / restore_state),
  // not 2 x 16 MiB of RAM per job.
  Campaign::WorkerArena arena(cfg_.board);
  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    PendingJob pj;
    if (!pop_job(self, pj)) {
      if (stopping_) return;
      work_cv_.wait(lk);
      continue;
    }
    ++in_flight_;
    lk.unlock();

    ServiceStats delta{};
    bool finished = true;
    try {
      finished = run_slice(pj, arena, delta);
    } catch (const std::exception& e) {
      pj.rec.ok = false;
      pj.rec.error = e.what();
      finished = true;
    }

    ServiceResult res;
    if (finished) {
      res.id = pj.id;
      res.record = std::move(pj.rec);
      res.estimate = pj.estimate;
      if (cfg_.calibrate) res.scheme = cfg_.scheme;
      res.slices = pj.slices;
      res.checkpoints = pj.checkpoints;
      res.static_bounds = std::move(pj.static_bounds);
      res.static_served = pj.static_served;
      // Streamed before the job counts as completed, so wait_all() never
      // returns with a sink call still in flight; outside the queue lock so
      // a slow sink never stalls the other workers, under sink_mu_ so lines
      // stay whole.
      std::lock_guard<std::mutex> sg(sink_mu_);
      if (sink_) sink_(res);
    }

    lk.lock();
    --in_flight_;
    stats_.slices += delta.slices;
    stats_.checkpoints += delta.checkpoints;
    stats_.resumes += delta.resumes;
    stats_.checkpoint_bytes += delta.checkpoint_bytes;
    if (!finished) {
      shards_[self].push_back(std::move(pj));
      ++queued_;
      work_cv_.notify_one();
      continue;
    }
    ++stats_.jobs_completed;
    results_[static_cast<std::size_t>(res.id)] = std::move(res);
    have_result_[static_cast<std::size_t>(res.id)] = true;
    ++completed_;
    done_cv_.notify_all();
  }
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
}

void append_kv(std::string& out, const char* key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "\"%s\":%.17g,", key, value);
  out += buf;
}

void append_kv(std::string& out, const char* key, std::uint64_t value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "\"%s\":%llu,", key,
                static_cast<unsigned long long>(value));
  out += buf;
}

}  // namespace

std::string static_bounds_json(const StaticBounds& b) {
  if (!b.accepted) {
    std::string out = "{\"accepted\":false,\"reason\":\"";
    append_escaped(out, b.reason);
    out += "\"}";
    return out;
  }
  std::string out = "{\"accepted\":true,";
  append_kv(out, "insns_lower", b.insns_lower);
  append_kv(out, "insns_upper", b.insns_upper);
  append_kv(out, "cycles_lower", b.cycles_lower);
  append_kv(out, "cycles_upper", b.cycles_upper);
  append_kv(out, "time_lower_s", b.time_lower_s);
  append_kv(out, "time_upper_s", b.time_upper_s);
  append_kv(out, "energy_lower_nj", b.energy_lower_nj);
  append_kv(out, "energy_upper_nj", b.energy_upper_nj);
  out.back() = '}';  // replace the trailing comma
  return out;
}

std::string result_json_line(const ServiceResult& r) {
  std::string out = "{\"id\":";
  out += std::to_string(r.id);
  out += ",\"name\":\"";
  append_escaped(out, r.record.name);
  out += "\",\"ok\":";
  out += r.record.ok ? "true," : "false,";
  if (!r.record.ok) {
    out += "\"error\":\"";
    append_escaped(out, r.record.error);
    out += "\",";
  }
  append_kv(out, "exit_code", static_cast<std::uint64_t>(r.record.exit_code));
  append_kv(out, "instret", r.record.instret);
  append_kv(out, "cycles", r.record.cycles);
  append_kv(out, "measured_energy_nj", r.record.measured.energy_nj);
  append_kv(out, "measured_time_s", r.record.measured.time_s);
  append_kv(out, "true_energy_nj", r.record.true_energy_nj);
  append_kv(out, "true_time_s", r.record.true_time_s);
  append_kv(out, "est_energy_nj", r.estimate.energy_nj);
  append_kv(out, "est_time_s", r.estimate.time_s);
  if (!r.scheme.empty()) {
    out += "\"scheme\":\"";
    append_escaped(out, r.scheme);
    out += "\",";
  }
  // The board's PMU-style counter export rides on every record that ran on
  // the board (retired > 0), so event-based schemes can be re-fit offline
  // from the JSONL stream alone.
  if (r.record.events[board::Event::kRetired] != 0) {
    out += "\"events\":{";
    append_kv(out, "version",
              static_cast<std::uint64_t>(board::kEventCountersVersion));
    for (std::size_t i = 0; i < board::kEventCount; ++i) {
      const auto e = static_cast<board::Event>(i);
      append_kv(out, std::string(board::event_name(e)).c_str(),
                r.record.events[e]);
    }
    out.back() = '}';  // replace the trailing comma
    out += ',';
  }
  append_kv(out, "slices", r.slices);
  append_kv(out, "checkpoints", r.checkpoints);
  if (r.static_bounds) {
    out += "\"static_served\":";
    out += r.static_served ? "true," : "false,";
    out += "\"static\":";
    out += static_bounds_json(*r.static_bounds);
    out += ',';
  }
  out.back() = '}';  // replace the trailing comma
  return out;
}

}  // namespace nfp::model
