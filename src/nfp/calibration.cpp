#include "nfp/calibration.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <stdexcept>

#include "asmkit/assembler.h"
#include "board/board.h"
#include "sim/memmap.h"

namespace nfp::model {
namespace {

// A recipe produces the i-th tested instruction line of a category's test
// kernel body.
struct Recipe {
  bool uses_fpu = false;
  bool uses_muldiv = false;
  std::function<std::string(std::uint32_t i)> line;
};

std::string rotate(std::initializer_list<const char*> lines,
                   std::uint32_t i) {
  return *(lines.begin() + (i % lines.size()));
}

std::string format(const char* fmt, std::uint32_t value) {
  char buf[96];
  std::snprintf(buf, sizeof buf, fmt, value);
  return buf;
}

Recipe recipe_for(const std::string& category) {
  if (category == "Integer Arithmetic") {
    return {false, false, [](std::uint32_t i) {
              return rotate({"add %l1, %l2, %l5", "xor %l2, %l3, %l6",
                             "sub %l3, %l4, %l5", "and %l4, %l1, %l6",
                             "sll %l1, 3, %l5", "or %l2, %l4, %l6"},
                            i);
            }};
  }
  if (category == "Integer") {  // coarse: mul/div folded in
    return {false, true, [](std::uint32_t i) {
              return rotate({"add %l1, %l2, %l5", "xor %l2, %l3, %l6",
                             "sub %l3, %l4, %l5", "and %l4, %l1, %l6",
                             "sll %l1, 3, %l5", "or %l2, %l4, %l6",
                             "umul %l1, %l3, %l5", "udiv %l3, %l2, %l6"},
                            i);
            }};
  }
  if (category == "Integer Multiply") {
    return {false, true, [](std::uint32_t i) {
              return rotate({"umul %l1, %l2, %l5", "smul %l2, %l3, %l6",
                             "umul %l3, %l4, %l5", "smul %l4, %l1, %l6"},
                            i);
            }};
  }
  if (category == "Integer Divide") {
    return {false, true, [](std::uint32_t i) {
              return rotate({"udiv %l1, %l2, %l5", "sdiv %l3, %l4, %l6",
                             "udiv %l3, %l2, %l5", "sdiv %l1, %l4, %l6"},
                            i);
            }};
  }
  if (category == "Jump") {
    // Chains of always-taken annulled branches: each executes exactly once
    // per loop iteration and contributes nothing but the jump itself.
    return {false, false, [](std::uint32_t i) {
              const std::string label = "Lcal" + std::to_string(i);
              return "ba,a " + label + "\n" + label + ":";
            }};
  }
  if (category == "Memory Load" || category == "Load") {
    return {false, false, [](std::uint32_t i) {
              return format("ld [%%g1+%u], %%l5", (i * 4) % 512);
            }};
  }
  if (category == "Memory Store" || category == "Store") {
    return {false, false, [](std::uint32_t i) {
              return format("st %%l1, [%%g1+%u]", (i * 4) % 512);
            }};
  }
  if (category == "Memory Double") {
    return {false, false, [](std::uint32_t i) {
              if (i % 2 == 0) return format("ldd [%%g1+%u], %%l6", (i * 8) % 256);
              return format("std %%l6, [%%g1+%u]", (i * 8) % 256);
            }};
  }
  if (category == "NOP") {
    return {false, false, [](std::uint32_t) { return std::string("nop"); }};
  }
  if (category == "Other") {
    return {false, false, [](std::uint32_t i) {
              if (i % 2 == 1) return std::string("nop");  // coarse folds NOPs
              const std::uint32_t value =
                  (0x12345u + i * 0x1111u) << 10;
              return format("sethi %%hi(0x%08x), %%l5", value & 0xFFFFFC00u);
            }};
  }
  if (category == "FPU Arithmetic") {
    return {true, false, [](std::uint32_t i) {
              return rotate({"faddd %f0, %f2, %f10", "fmuld %f2, %f4, %f12",
                             "fsubd %f4, %f6, %f10", "faddd %f6, %f8, %f12",
                             "fmuld %f0, %f6, %f10"},
                            i);
            }};
  }
  if (category == "FPU Divide") {
    return {true, false, [](std::uint32_t i) {
              return rotate({"fdivd %f0, %f2, %f10", "fdivd %f2, %f4, %f12",
                             "fdivd %f4, %f6, %f10", "fdivd %f6, %f8, %f12"},
                            i);
            }};
  }
  if (category == "FPU Square root") {
    return {true, false, [](std::uint32_t i) {
              return rotate({"fsqrtd %f0, %f10", "fsqrtd %f2, %f12",
                             "fsqrtd %f4, %f10", "fsqrtd %f6, %f12"},
                            i);
            }};
  }
  if (category == "FPU Convert/Compare") {
    return {true, false, [](std::uint32_t i) {
              return rotate({"fcmpd %f0, %f2", "fitod %f14, %f10",
                             "fdtoi %f2, %f12", "fcmpd %f4, %f6"},
                            i);
            }};
  }
  if (category == "FPU") {  // coarse: everything FP in one bucket
    return {true, false, [](std::uint32_t i) {
              switch (i % 8) {
                case 5: return std::string("fdivd %f0, %f2, %f10");
                case 6: return std::string("fsqrtd %f4, %f12");
                case 7: return std::string("fcmpd %f0, %f2");
                default:
                  return rotate({"faddd %f0, %f2, %f10",
                                 "fmuld %f2, %f4, %f12",
                                 "fsubd %f4, %f6, %f10",
                                 "faddd %f6, %f8, %f12",
                                 "fmuld %f0, %f6, %f10"},
                                i);
              }
            }};
  }
  throw std::invalid_argument("no calibration recipe for category '" +
                              category + "'");
}

// Shared kernel skeleton (Table II): identical prologue and loop scaffold in
// the reference and test kernels; the test body is the only difference.
std::string make_source(const Recipe& recipe, std::uint32_t loops,
                        std::uint32_t per_loop, bool with_body) {
  std::string src;
  src += "_start:\n";
  src += "        set idata, %g1\n";
  src += "        set 0x13572468, %l1\n";
  src += "        set 0x0F0F1234, %l2\n";
  src += "        set 0x00A5C3E4, %l3\n";
  src += "        set 0x76543210, %l4\n";
  src += "        wr %g0, 0, %y\n";
  if (recipe.uses_fpu) {
    src += "        set fdata, %g2\n";
    src += "        lddf [%g2], %f0\n";
    src += "        lddf [%g2+8], %f2\n";
    src += "        lddf [%g2+16], %f4\n";
    src += "        lddf [%g2+24], %f6\n";
    src += "        lddf [%g2+32], %f8\n";
    src += "        ldf [%g2+40], %f14\n";
  }
  src += format("        set %u, %%l0\n", loops);
  src += "loop:\n";
  if (with_body) {
    for (std::uint32_t i = 0; i < per_loop; ++i) {
      src += "        " + recipe.line(i) + "\n";
    }
  }
  src += "        subcc %l0, 1, %l0\n";
  src += "        bne loop\n";
  src += "        nop\n";
  src += "        mov 0, %o0\n";
  src += "        ta 0\n";
  src += "        .data\n";
  src += "        .align 8\n";
  if (recipe.uses_fpu) {
    src += "fdata:  .double 1.5, 2.25, 3.125, 0.78125, 1.0009765625\n";
    src += "        .word 123456, 0\n";
  }
  src += "idata:\n";
  // Pseudo-random payload for the load/store kernels (varied bit patterns,
  // as typical application data would have).
  std::uint32_t x = 0x2545F491u;
  for (int i = 0; i < 128; i += 4) {
    x ^= x << 13; x ^= x >> 17; x ^= x << 5;
    const std::uint32_t a = x;
    x ^= x << 13; x ^= x >> 17; x ^= x << 5;
    const std::uint32_t b = x;
    x ^= x << 13; x ^= x >> 17; x ^= x << 5;
    const std::uint32_t c = x;
    x ^= x << 13; x ^= x >> 17; x ^= x << 5;
    src += format("        .word 0x%08x, ", a) + format("0x%08x, ", b) +
           format("0x%08x, ", c) + format("0x%08x\n", x);
  }
  return src;
}

// Ridge-regularized least squares over the calibration samples, solved via
// column-scaled normal equations with Gaussian elimination (partial
// pivoting). All-zero feature columns (e.g. cache counters on a cache-less
// board, FPU categories on an FPU-less one) are pruned and get coefficient
// 0; the tiny relative ridge keeps collinear counter pairs (stall cycles
// are exactly row_misses * row_miss_cycles) deterministic without
// disturbing well-identified terms. No external solver dependency.
std::vector<double> fit_least_squares(
    const std::vector<std::vector<double>>& rows,
    const std::vector<double>& targets) {
  const std::size_t n = rows.size();
  const std::size_t k = n == 0 ? 0 : rows[0].size();
  std::vector<double> coeff(k, 0.0);
  if (n == 0 || k == 0) return coeff;

  // Column scales (max |x|): normalizes the wildly different magnitudes of
  // count columns (~1e7) and intercept/time columns (~1).
  std::vector<double> scale(k, 0.0);
  for (const auto& row : rows) {
    for (std::size_t j = 0; j < k; ++j) {
      scale[j] = std::max(scale[j], std::abs(row[j]));
    }
  }
  std::vector<std::size_t> active;
  for (std::size_t j = 0; j < k; ++j) {
    if (scale[j] > 0.0) active.push_back(j);
  }
  const std::size_t m = active.size();
  if (m == 0) return coeff;

  // Normal equations A = XᵀX + λI, b = Xᵀy over the scaled active columns.
  std::vector<double> a(m * m, 0.0);
  std::vector<double> b(m, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t p = 0; p < m; ++p) {
      const double xp = rows[i][active[p]] / scale[active[p]];
      b[p] += xp * targets[i];
      for (std::size_t q = p; q < m; ++q) {
        a[p * m + q] += xp * rows[i][active[q]] / scale[active[q]];
      }
    }
  }
  double trace = 0.0;
  for (std::size_t p = 0; p < m; ++p) trace += a[p * m + p];
  const double ridge = 1e-8 * (trace / static_cast<double>(m));
  for (std::size_t p = 0; p < m; ++p) {
    a[p * m + p] += ridge;
    for (std::size_t q = 0; q < p; ++q) a[p * m + q] = a[q * m + p];
  }

  // Gaussian elimination with partial pivoting.
  for (std::size_t col = 0; col < m; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < m; ++r) {
      if (std::abs(a[r * m + col]) > std::abs(a[pivot * m + col])) pivot = r;
    }
    if (a[pivot * m + col] == 0.0) continue;  // ridge makes this unreachable
    if (pivot != col) {
      for (std::size_t j = 0; j < m; ++j) {
        std::swap(a[col * m + j], a[pivot * m + j]);
      }
      std::swap(b[col], b[pivot]);
    }
    for (std::size_t r = col + 1; r < m; ++r) {
      const double f = a[r * m + col] / a[col * m + col];
      if (f == 0.0) continue;
      for (std::size_t j = col; j < m; ++j) a[r * m + j] -= f * a[col * m + j];
      b[r] -= f * b[col];
    }
  }
  std::vector<double> w(m, 0.0);
  for (std::size_t r = m; r-- > 0;) {
    double acc = b[r];
    for (std::size_t j = r + 1; j < m; ++j) acc -= a[r * m + j] * w[j];
    w[r] = a[r * m + r] != 0.0 ? acc / a[r * m + r] : 0.0;
  }
  for (std::size_t p = 0; p < m; ++p) {
    coeff[active[p]] = w[p] / scale[active[p]];
  }
  return coeff;
}

}  // namespace

Calibrator::Calibrator(const CategoryScheme& scheme, CalibrationPlan plan)
    : scheme_(scheme), plan_(plan) {}

KernelPair Calibrator::make_kernels(std::size_t category) const {
  const std::string& name = scheme_.category_name(category);
  const Recipe recipe = recipe_for(name);
  KernelPair pair;
  pair.category = name;
  pair.ref_asm = make_source(recipe, plan_.loops, plan_.per_loop, false);
  pair.test_asm = make_source(recipe, plan_.loops, plan_.per_loop, true);
  pair.n_test = std::uint64_t{plan_.loops} * plan_.per_loop;
  return pair;
}

CalibrationResult Calibrator::run(
    const board::BoardConfig& cfg,
    const std::optional<Adaptation>& adapt) const {
  CalibrationResult result;
  result.costs.energy_nj.assign(scheme_.size(), 0.0);
  result.costs.time_ns.assign(scheme_.size(), 0.0);

  for (std::size_t c = 0; c < scheme_.size(); ++c) {
    const std::string& name = scheme_.category_name(c);
    const Recipe recipe = recipe_for(name);
    if (recipe.uses_fpu && !cfg.has_fpu) continue;      // not calibratable
    if (recipe.uses_muldiv && !cfg.has_hw_muldiv) continue;

    const KernelPair pair = make_kernels(c);
    CategoryCalibration detail;
    detail.category = name;

    for (const bool is_test : {false, true}) {
      board::Board brd(cfg);
      brd.load(asmkit::assemble(is_test ? pair.test_asm : pair.ref_asm,
                                sim::kTextBase));
      const auto run_result = brd.run();
      if (!run_result.halted) {
        throw std::runtime_error("calibration kernel did not halt: " + name);
      }
      const auto meas =
          brd.measure("cal/" + name + (is_test ? "/test" : "/ref"));
      if (is_test) {
        detail.e_test_nj = meas.energy_nj;
        detail.t_test_s = meas.time_s;
      } else {
        detail.e_ref_nj = meas.energy_nj;
        detail.t_ref_s = meas.time_s;
      }
    }

    const auto n = static_cast<double>(pair.n_test);
    detail.specific_energy_nj = (detail.e_test_nj - detail.e_ref_nj) / n;
    detail.specific_time_ns =
        (detail.t_test_s - detail.t_ref_s) * 1e9 / n;
    result.costs.energy_nj[c] = detail.specific_energy_nj;
    result.costs.time_ns[c] = detail.specific_time_ns;
    result.details.push_back(detail);
  }

  if (adapt) {
    for (std::size_t c = 0; c < scheme_.size(); ++c) {
      if (c < adapt->energy_scale.size()) {
        result.costs.energy_nj[c] *= adapt->energy_scale[c];
      }
      if (c < adapt->time_scale.size()) {
        result.costs.time_ns[c] *= adapt->time_scale[c];
      }
    }
  }
  return result;
}

SchemeCalibration Calibrator::fit(const Estimator& estimator,
                                  const board::BoardConfig& cfg) const {
  SchemeCalibration out;
  out.scheme = estimator.name();
  for (std::size_t t = 0; t < estimator.terms(); ++t) {
    out.term_names.push_back(estimator.term_name(t));
  }

  // The paper scheme stays on the Eq. 2 differencing path — the fitted and
  // legacy pipelines must agree bit for bit for the behavior-preserving
  // default.
  if (out.scheme == "eq1") {
    CalibrationResult r = run(cfg);
    out.costs = std::move(r.costs);
    out.samples = r.details.size() * 2;
    out.details = std::move(r.details);
    return out;
  }

  // Every other scheme: least squares over the same Table-II ref/test
  // pairs, generalizing Eq. 2 from a per-category scalar division to a
  // multivariate fit. Each pair contributes one DIFFERENCE sample —
  // features(test) - features(ref) against the measured energy/time deltas.
  // Differencing is essential, not cosmetic: it cancels the shared loop
  // scaffold and measurement baseline exactly, so feature columns that are
  // constant across calibration runs (the loop branch falls through exactly
  // once per run) difference to zero and get pruned instead of being
  // drafted as pseudo-intercepts with huge compensating coefficients that
  // extrapolate catastrophically to application kernels.
  // Pairs beyond the scheme's categories: the Table-II memory kernels
  // confine their accesses to a 512-byte window inside one open SDRAM row,
  // so the row-miss counter barely moves across them and a least-squares
  // fit would price it from measurement noise (with six-figure relative
  // error on row-heavy application kernels). The stride pair walks loads
  // across four 1 KiB rows — every access reopens a row — which pins the
  // row-miss/stall pricing to the hardware numbers.
  struct ExtraPair {
    std::string name;
    Recipe recipe;
  };
  std::vector<ExtraPair> extras;
  extras.push_back(
      {"Row Stride", {false, false, [](std::uint32_t i) {
                        return format("ld [%%g1+%u], %%l5", (i % 4) * 1024);
                      }}});
  // Same reasoning for the integer multiply/divide counter: the paper's
  // nine categories fold mul/div into Integer Arithmetic, whose kernel
  // retires neither, so without this pair the muldiv_ops column would
  // difference to zero and campaign mul/divs would be priced as cheap ALU
  // ops.
  extras.push_back(
      {"Mul/Div", {false, true, [](std::uint32_t i) {
                     return rotate({"umul %l1, %l2, %l5", "udiv %l3, %l2, %l6",
                                    "smul %l2, %l3, %l5", "sdiv %l1, %l4, %l6"},
                                   i);
                   }}});

  std::vector<std::vector<double>> rows;
  std::vector<double> energy_nj;
  std::vector<double> time_ns;
  const std::size_t total = scheme_.size() + extras.size();
  for (std::size_t c = 0; c < total; ++c) {
    const bool extra = c >= scheme_.size();
    const std::string& name =
        extra ? extras[c - scheme_.size()].name : scheme_.category_name(c);
    const Recipe recipe =
        extra ? extras[c - scheme_.size()].recipe : recipe_for(name);
    if (recipe.uses_fpu && !cfg.has_fpu) continue;
    if (recipe.uses_muldiv && !cfg.has_hw_muldiv) continue;

    KernelPair pair;
    if (extra) {
      pair.category = name;
      pair.ref_asm = make_source(recipe, plan_.loops, plan_.per_loop, false);
      pair.test_asm = make_source(recipe, plan_.loops, plan_.per_loop, true);
      pair.n_test = std::uint64_t{plan_.loops} * plan_.per_loop;
    } else {
      pair = make_kernels(c);
    }
    std::vector<double> features_ref, features_test;
    double de = 0.0, dt_s = 0.0;
    for (const bool is_test : {false, true}) {
      board::Board brd(cfg);
      brd.load(asmkit::assemble(is_test ? pair.test_asm : pair.ref_asm,
                                sim::kTextBase));
      const auto run_result = brd.run();
      if (!run_result.halted) {
        throw std::runtime_error("calibration kernel did not halt: " + name);
      }
      const auto meas =
          brd.measure("cal/" + name + (is_test ? "/test" : "/ref"));
      RunSample sample;
      sample.counts = brd.op_counts();
      sample.instret = run_result.instret;
      sample.events = brd.events();
      sample.measured_time_s = meas.time_s;
      (is_test ? features_test : features_ref) = estimator.features(sample);
      de += is_test ? meas.energy_nj : -meas.energy_nj;
      dt_s += is_test ? meas.time_s : -meas.time_s;
    }
    std::vector<double> delta(features_test.size(), 0.0);
    for (std::size_t j = 0; j < delta.size(); ++j) {
      delta[j] = features_test[j] - features_ref[j];
    }
    rows.push_back(std::move(delta));
    energy_nj.push_back(de);
    time_ns.push_back(dt_s * 1e9);
  }
  out.samples = rows.size();
  out.costs.energy_nj = fit_least_squares(rows, energy_nj);
  out.costs.time_ns = fit_least_squares(rows, time_ns);
  if (out.costs.energy_nj.size() != estimator.terms()) {
    // No calibratable category at all (never happens for the shipped
    // schemes, but keep the coefficient arity invariant regardless).
    out.costs.energy_nj.assign(estimator.terms(), 0.0);
    out.costs.time_ns.assign(estimator.terms(), 0.0);
  }
  return out;
}

}  // namespace nfp::model
