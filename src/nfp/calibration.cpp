#include "nfp/calibration.h"

#include <cstdio>
#include <functional>
#include <stdexcept>

#include "asmkit/assembler.h"
#include "board/board.h"
#include "sim/memmap.h"

namespace nfp::model {
namespace {

// A recipe produces the i-th tested instruction line of a category's test
// kernel body.
struct Recipe {
  bool uses_fpu = false;
  bool uses_muldiv = false;
  std::function<std::string(std::uint32_t i)> line;
};

std::string rotate(std::initializer_list<const char*> lines,
                   std::uint32_t i) {
  return *(lines.begin() + (i % lines.size()));
}

std::string format(const char* fmt, std::uint32_t value) {
  char buf[96];
  std::snprintf(buf, sizeof buf, fmt, value);
  return buf;
}

Recipe recipe_for(const std::string& category) {
  if (category == "Integer Arithmetic") {
    return {false, false, [](std::uint32_t i) {
              return rotate({"add %l1, %l2, %l5", "xor %l2, %l3, %l6",
                             "sub %l3, %l4, %l5", "and %l4, %l1, %l6",
                             "sll %l1, 3, %l5", "or %l2, %l4, %l6"},
                            i);
            }};
  }
  if (category == "Integer") {  // coarse: mul/div folded in
    return {false, true, [](std::uint32_t i) {
              return rotate({"add %l1, %l2, %l5", "xor %l2, %l3, %l6",
                             "sub %l3, %l4, %l5", "and %l4, %l1, %l6",
                             "sll %l1, 3, %l5", "or %l2, %l4, %l6",
                             "umul %l1, %l3, %l5", "udiv %l3, %l2, %l6"},
                            i);
            }};
  }
  if (category == "Integer Multiply") {
    return {false, true, [](std::uint32_t i) {
              return rotate({"umul %l1, %l2, %l5", "smul %l2, %l3, %l6",
                             "umul %l3, %l4, %l5", "smul %l4, %l1, %l6"},
                            i);
            }};
  }
  if (category == "Integer Divide") {
    return {false, true, [](std::uint32_t i) {
              return rotate({"udiv %l1, %l2, %l5", "sdiv %l3, %l4, %l6",
                             "udiv %l3, %l2, %l5", "sdiv %l1, %l4, %l6"},
                            i);
            }};
  }
  if (category == "Jump") {
    // Chains of always-taken annulled branches: each executes exactly once
    // per loop iteration and contributes nothing but the jump itself.
    return {false, false, [](std::uint32_t i) {
              const std::string label = "Lcal" + std::to_string(i);
              return "ba,a " + label + "\n" + label + ":";
            }};
  }
  if (category == "Memory Load" || category == "Load") {
    return {false, false, [](std::uint32_t i) {
              return format("ld [%%g1+%u], %%l5", (i * 4) % 512);
            }};
  }
  if (category == "Memory Store" || category == "Store") {
    return {false, false, [](std::uint32_t i) {
              return format("st %%l1, [%%g1+%u]", (i * 4) % 512);
            }};
  }
  if (category == "Memory Double") {
    return {false, false, [](std::uint32_t i) {
              if (i % 2 == 0) return format("ldd [%%g1+%u], %%l6", (i * 8) % 256);
              return format("std %%l6, [%%g1+%u]", (i * 8) % 256);
            }};
  }
  if (category == "NOP") {
    return {false, false, [](std::uint32_t) { return std::string("nop"); }};
  }
  if (category == "Other") {
    return {false, false, [](std::uint32_t i) {
              if (i % 2 == 1) return std::string("nop");  // coarse folds NOPs
              const std::uint32_t value =
                  (0x12345u + i * 0x1111u) << 10;
              return format("sethi %%hi(0x%08x), %%l5", value & 0xFFFFFC00u);
            }};
  }
  if (category == "FPU Arithmetic") {
    return {true, false, [](std::uint32_t i) {
              return rotate({"faddd %f0, %f2, %f10", "fmuld %f2, %f4, %f12",
                             "fsubd %f4, %f6, %f10", "faddd %f6, %f8, %f12",
                             "fmuld %f0, %f6, %f10"},
                            i);
            }};
  }
  if (category == "FPU Divide") {
    return {true, false, [](std::uint32_t i) {
              return rotate({"fdivd %f0, %f2, %f10", "fdivd %f2, %f4, %f12",
                             "fdivd %f4, %f6, %f10", "fdivd %f6, %f8, %f12"},
                            i);
            }};
  }
  if (category == "FPU Square root") {
    return {true, false, [](std::uint32_t i) {
              return rotate({"fsqrtd %f0, %f10", "fsqrtd %f2, %f12",
                             "fsqrtd %f4, %f10", "fsqrtd %f6, %f12"},
                            i);
            }};
  }
  if (category == "FPU Convert/Compare") {
    return {true, false, [](std::uint32_t i) {
              return rotate({"fcmpd %f0, %f2", "fitod %f14, %f10",
                             "fdtoi %f2, %f12", "fcmpd %f4, %f6"},
                            i);
            }};
  }
  if (category == "FPU") {  // coarse: everything FP in one bucket
    return {true, false, [](std::uint32_t i) {
              switch (i % 8) {
                case 5: return std::string("fdivd %f0, %f2, %f10");
                case 6: return std::string("fsqrtd %f4, %f12");
                case 7: return std::string("fcmpd %f0, %f2");
                default:
                  return rotate({"faddd %f0, %f2, %f10",
                                 "fmuld %f2, %f4, %f12",
                                 "fsubd %f4, %f6, %f10",
                                 "faddd %f6, %f8, %f12",
                                 "fmuld %f0, %f6, %f10"},
                                i);
              }
            }};
  }
  throw std::invalid_argument("no calibration recipe for category '" +
                              category + "'");
}

// Shared kernel skeleton (Table II): identical prologue and loop scaffold in
// the reference and test kernels; the test body is the only difference.
std::string make_source(const Recipe& recipe, std::uint32_t loops,
                        std::uint32_t per_loop, bool with_body) {
  std::string src;
  src += "_start:\n";
  src += "        set idata, %g1\n";
  src += "        set 0x13572468, %l1\n";
  src += "        set 0x0F0F1234, %l2\n";
  src += "        set 0x00A5C3E4, %l3\n";
  src += "        set 0x76543210, %l4\n";
  src += "        wr %g0, 0, %y\n";
  if (recipe.uses_fpu) {
    src += "        set fdata, %g2\n";
    src += "        lddf [%g2], %f0\n";
    src += "        lddf [%g2+8], %f2\n";
    src += "        lddf [%g2+16], %f4\n";
    src += "        lddf [%g2+24], %f6\n";
    src += "        lddf [%g2+32], %f8\n";
    src += "        ldf [%g2+40], %f14\n";
  }
  src += format("        set %u, %%l0\n", loops);
  src += "loop:\n";
  if (with_body) {
    for (std::uint32_t i = 0; i < per_loop; ++i) {
      src += "        " + recipe.line(i) + "\n";
    }
  }
  src += "        subcc %l0, 1, %l0\n";
  src += "        bne loop\n";
  src += "        nop\n";
  src += "        mov 0, %o0\n";
  src += "        ta 0\n";
  src += "        .data\n";
  src += "        .align 8\n";
  if (recipe.uses_fpu) {
    src += "fdata:  .double 1.5, 2.25, 3.125, 0.78125, 1.0009765625\n";
    src += "        .word 123456, 0\n";
  }
  src += "idata:\n";
  // Pseudo-random payload for the load/store kernels (varied bit patterns,
  // as typical application data would have).
  std::uint32_t x = 0x2545F491u;
  for (int i = 0; i < 128; i += 4) {
    x ^= x << 13; x ^= x >> 17; x ^= x << 5;
    const std::uint32_t a = x;
    x ^= x << 13; x ^= x >> 17; x ^= x << 5;
    const std::uint32_t b = x;
    x ^= x << 13; x ^= x >> 17; x ^= x << 5;
    const std::uint32_t c = x;
    x ^= x << 13; x ^= x >> 17; x ^= x << 5;
    src += format("        .word 0x%08x, ", a) + format("0x%08x, ", b) +
           format("0x%08x, ", c) + format("0x%08x\n", x);
  }
  return src;
}

}  // namespace

Calibrator::Calibrator(const CategoryScheme& scheme, CalibrationPlan plan)
    : scheme_(scheme), plan_(plan) {}

KernelPair Calibrator::make_kernels(std::size_t category) const {
  const std::string& name = scheme_.category_name(category);
  const Recipe recipe = recipe_for(name);
  KernelPair pair;
  pair.category = name;
  pair.ref_asm = make_source(recipe, plan_.loops, plan_.per_loop, false);
  pair.test_asm = make_source(recipe, plan_.loops, plan_.per_loop, true);
  pair.n_test = std::uint64_t{plan_.loops} * plan_.per_loop;
  return pair;
}

CalibrationResult Calibrator::run(
    const board::BoardConfig& cfg,
    const std::optional<Adaptation>& adapt) const {
  CalibrationResult result;
  result.costs.energy_nj.assign(scheme_.size(), 0.0);
  result.costs.time_ns.assign(scheme_.size(), 0.0);

  for (std::size_t c = 0; c < scheme_.size(); ++c) {
    const std::string& name = scheme_.category_name(c);
    const Recipe recipe = recipe_for(name);
    if (recipe.uses_fpu && !cfg.has_fpu) continue;      // not calibratable
    if (recipe.uses_muldiv && !cfg.has_hw_muldiv) continue;

    const KernelPair pair = make_kernels(c);
    CategoryCalibration detail;
    detail.category = name;

    for (const bool is_test : {false, true}) {
      board::Board brd(cfg);
      brd.load(asmkit::assemble(is_test ? pair.test_asm : pair.ref_asm,
                                sim::kTextBase));
      const auto run_result = brd.run();
      if (!run_result.halted) {
        throw std::runtime_error("calibration kernel did not halt: " + name);
      }
      const auto meas =
          brd.measure("cal/" + name + (is_test ? "/test" : "/ref"));
      if (is_test) {
        detail.e_test_nj = meas.energy_nj;
        detail.t_test_s = meas.time_s;
      } else {
        detail.e_ref_nj = meas.energy_nj;
        detail.t_ref_s = meas.time_s;
      }
    }

    const auto n = static_cast<double>(pair.n_test);
    detail.specific_energy_nj = (detail.e_test_nj - detail.e_ref_nj) / n;
    detail.specific_time_ns =
        (detail.t_test_s - detail.t_ref_s) * 1e9 / n;
    result.costs.energy_nj[c] = detail.specific_energy_nj;
    result.costs.time_ns[c] = detail.specific_time_ns;
    result.details.push_back(detail);
  }

  if (adapt) {
    for (std::size_t c = 0; c < scheme_.size(); ++c) {
      if (c < adapt->energy_scale.size()) {
        result.costs.energy_nj[c] *= adapt->energy_scale[c];
      }
      if (c < adapt->time_scale.size()) {
        result.costs.time_ns[c] *= adapt->time_scale[c];
      }
    }
  }
  return result;
}

}  // namespace nfp::model
