// Category schemes: how retired ops are lumped into NFP model categories.
//
// The paper uses nine categories (Table I). Because the ISS records per-op
// counts, alternative groupings can be evaluated offline without
// re-simulation; the ablation bench uses a coarser and a finer scheme to
// quantify the cost of lumping (e.g. mul/div into "Integer Arithmetic").
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "isa/insn.h"

namespace nfp::model {

// Per-op retire counts straight from the ISS.
using OpCounts = std::array<std::uint64_t, isa::kOpCount>;

// Per-category counts after aggregation (n_c in Eq. 1).
using CategoryCounts = std::vector<std::uint64_t>;

class CategoryScheme {
 public:
  // The paper's nine Table-I categories.
  static const CategoryScheme& paper();
  // Six categories: FPU lumped into one, NOP folded into Other.
  static const CategoryScheme& coarse();
  // Thirteen categories: integer mul and div split out, FP converts/compares
  // split from FP arithmetic, double-word memory split from single-word.
  static const CategoryScheme& fine();

  const std::string& name() const { return name_; }
  std::size_t size() const { return category_names_.size(); }
  const std::string& category_name(std::size_t c) const {
    return category_names_[c];
  }
  std::size_t category_of(isa::Op op) const {
    return map_[static_cast<std::size_t>(op)];
  }

  CategoryCounts aggregate(const OpCounts& counts) const {
    CategoryCounts out(size(), 0);
    for (std::size_t i = 0; i < isa::kOpCount; ++i) {
      out[map_[i]] += counts[i];
    }
    return out;
  }

  CategoryScheme(std::string name, std::vector<std::string> category_names,
                 std::array<std::uint8_t, isa::kOpCount> map)
      : name_(std::move(name)),
        category_names_(std::move(category_names)),
        map_(map) {}

 private:
  std::string name_;
  std::vector<std::string> category_names_;
  std::array<std::uint8_t, isa::kOpCount> map_;
};

}  // namespace nfp::model
