// Estimation error metrics (paper Eq. 3 and Table III):
//   ε_m = (X̂_m − X_meas,m) / X_meas,m
//   ε̄  = mean_m |ε_m|        ε_max = max_m |ε_m|
#pragma once

#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace nfp::model {

struct ErrorStats {
  std::vector<double> per_kernel;  // signed relative errors ε_m
  double mean_abs = 0.0;           // ε̄   (fraction, not percent)
  double max_abs = 0.0;            // ε_max
  double mean_abs_percent() const { return mean_abs * 100.0; }
  double max_abs_percent() const { return max_abs * 100.0; }
};

inline ErrorStats error_stats(const std::vector<double>& estimated,
                              const std::vector<double>& measured) {
  if (estimated.size() != measured.size() || estimated.empty()) {
    throw std::invalid_argument("error_stats: mismatched or empty inputs");
  }
  ErrorStats stats;
  stats.per_kernel.reserve(estimated.size());
  double sum = 0.0;
  for (std::size_t m = 0; m < estimated.size(); ++m) {
    if (measured[m] == 0.0) {
      throw std::invalid_argument("error_stats: zero measurement");
    }
    const double eps = (estimated[m] - measured[m]) / measured[m];
    stats.per_kernel.push_back(eps);
    sum += std::abs(eps);
    stats.max_abs = std::max(stats.max_abs, std::abs(eps));
  }
  stats.mean_abs = sum / static_cast<double>(estimated.size());
  return stats;
}

}  // namespace nfp::model
