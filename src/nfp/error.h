// Estimation error metrics (paper Eq. 3 and Table III):
//   ε_m = (X̂_m − X_meas,m) / X_meas,m
//   ε̄  = mean_m |ε_m|        ε_max = max_m |ε_m|
//
// Degenerate inputs produce a structured refusal (ok == false with a
// machine-parseable slug) instead of throwing, so one broken kernel can
// never abort a whole campaign report. Kernels whose measurement is exactly
// zero are excluded from the statistics and counted in skipped_zero —
// a relative error against zero is undefined, not infinite.
#pragma once

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

namespace nfp::model {

struct ErrorStats {
  // False when the stats could not be computed; `refusal` then carries one
  // of the stable slugs "size-mismatch", "empty-input",
  // "all-measurements-zero", and every metric below is zero.
  bool ok = false;
  std::string refusal;
  // Kernels excluded because their measurement was exactly zero.
  std::size_t skipped_zero = 0;

  std::vector<double> per_kernel;  // signed relative errors ε_m (included set)
  double mean_abs = 0.0;           // ε̄   (fraction, not percent)
  double max_abs = 0.0;            // ε_max
  double mean_abs_percent() const { return mean_abs * 100.0; }
  double max_abs_percent() const { return max_abs * 100.0; }
};

inline ErrorStats error_stats(const std::vector<double>& estimated,
                              const std::vector<double>& measured) {
  ErrorStats stats;
  if (estimated.size() != measured.size()) {
    stats.refusal = "size-mismatch";
    return stats;
  }
  if (estimated.empty()) {
    stats.refusal = "empty-input";
    return stats;
  }
  stats.per_kernel.reserve(estimated.size());
  double sum = 0.0;
  for (std::size_t m = 0; m < estimated.size(); ++m) {
    if (measured[m] == 0.0) {
      ++stats.skipped_zero;
      continue;
    }
    const double eps = (estimated[m] - measured[m]) / measured[m];
    stats.per_kernel.push_back(eps);
    sum += std::abs(eps);
    stats.max_abs = std::max(stats.max_abs, std::abs(eps));
  }
  if (stats.per_kernel.empty()) {
    stats.refusal = "all-measurements-zero";
    stats.max_abs = 0.0;
    return stats;
  }
  stats.ok = true;
  stats.mean_abs = sum / static_cast<double>(stats.per_kernel.size());
  return stats;
}

}  // namespace nfp::model
