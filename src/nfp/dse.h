// Design-space exploration (paper §VI-D / Table IV): given per-kernel
// estimates for a workload compiled with the FPU and with soft-float, report
// the mean change in energy and time from introducing an FPU, together with
// the chip-area cost from the synthesis model.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "board/area.h"
#include "nfp/estimator.h"

namespace nfp::model {

struct FpuImpact {
  std::string workload;
  // Mean of per-kernel (X_fpu - X_soft) / X_soft, in percent (negative:
  // the FPU saves energy/time).
  double energy_change_percent = 0.0;
  double time_change_percent = 0.0;
  double area_change_percent = 0.0;
  std::size_t kernels = 0;
};

inline FpuImpact fpu_impact(std::string workload,
                            const std::vector<Estimate>& with_fpu,
                            const std::vector<Estimate>& soft_float,
                            const board::AreaModel& area = {}) {
  if (with_fpu.size() != soft_float.size() || with_fpu.empty()) {
    throw std::invalid_argument("fpu_impact: mismatched kernel sets");
  }
  FpuImpact impact;
  impact.workload = std::move(workload);
  impact.kernels = with_fpu.size();
  for (std::size_t i = 0; i < with_fpu.size(); ++i) {
    impact.energy_change_percent +=
        (with_fpu[i].energy_nj - soft_float[i].energy_nj) /
        soft_float[i].energy_nj * 100.0;
    impact.time_change_percent +=
        (with_fpu[i].time_s - soft_float[i].time_s) / soft_float[i].time_s *
        100.0;
  }
  impact.energy_change_percent /= static_cast<double>(with_fpu.size());
  impact.time_change_percent /= static_cast<double>(with_fpu.size());
  impact.area_change_percent = area.fpu_area_increase_percent();
  return impact;
}

}  // namespace nfp::model
