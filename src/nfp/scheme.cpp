#include "nfp/scheme.h"

namespace nfp::model {
namespace {

using isa::Op;

std::array<std::uint8_t, isa::kOpCount> map_from_default() {
  std::array<std::uint8_t, isa::kOpCount> map{};
  for (std::size_t i = 0; i < isa::kOpCount; ++i) {
    map[i] = static_cast<std::uint8_t>(
        isa::default_category(static_cast<Op>(i)));
  }
  return map;
}

}  // namespace

const CategoryScheme& CategoryScheme::paper() {
  static const CategoryScheme scheme(
      "paper-9",
      {"Integer Arithmetic", "Jump", "Memory Load", "Memory Store", "NOP",
       "Other", "FPU Arithmetic", "FPU Divide", "FPU Square root"},
      map_from_default());
  return scheme;
}

const CategoryScheme& CategoryScheme::coarse() {
  static const CategoryScheme scheme = [] {
    // 0 int, 1 jump, 2 load, 3 store, 4 other(+nop), 5 fpu(all).
    std::array<std::uint8_t, isa::kOpCount> map{};
    for (std::size_t i = 0; i < isa::kOpCount; ++i) {
      switch (isa::default_category(static_cast<Op>(i))) {
        case isa::Category::kIntArith: map[i] = 0; break;
        case isa::Category::kJump: map[i] = 1; break;
        case isa::Category::kMemLoad: map[i] = 2; break;
        case isa::Category::kMemStore: map[i] = 3; break;
        case isa::Category::kNop:
        case isa::Category::kOther: map[i] = 4; break;
        default: map[i] = 5; break;
      }
    }
    return CategoryScheme(
        "coarse-6",
        {"Integer", "Jump", "Load", "Store", "Other", "FPU"}, map);
  }();
  return scheme;
}

const CategoryScheme& CategoryScheme::fine() {
  static const CategoryScheme scheme = [] {
    // Start from the paper mapping, then split.
    std::array<std::uint8_t, isa::kOpCount> map = map_from_default();
    constexpr std::uint8_t kIntMul = 9;
    constexpr std::uint8_t kIntDiv = 10;
    constexpr std::uint8_t kFpuConv = 11;
    constexpr std::uint8_t kMemDouble = 12;
    for (const Op op : {Op::kUmul, Op::kUmulcc, Op::kSmul, Op::kSmulcc}) {
      map[static_cast<std::size_t>(op)] = kIntMul;
    }
    for (const Op op : {Op::kUdiv, Op::kUdivcc, Op::kSdiv, Op::kSdivcc}) {
      map[static_cast<std::size_t>(op)] = kIntDiv;
    }
    for (const Op op : {Op::kFitos, Op::kFitod, Op::kFstoi, Op::kFdtoi,
                        Op::kFstod, Op::kFdtos, Op::kFcmps, Op::kFcmpd}) {
      map[static_cast<std::size_t>(op)] = kFpuConv;
    }
    for (const Op op : {Op::kLdd, Op::kLddf, Op::kStd, Op::kStdf}) {
      map[static_cast<std::size_t>(op)] = kMemDouble;
    }
    return CategoryScheme(
        "fine-13",
        {"Integer Arithmetic", "Jump", "Memory Load", "Memory Store", "NOP",
         "Other", "FPU Arithmetic", "FPU Divide", "FPU Square root",
         "Integer Multiply", "Integer Divide", "FPU Convert/Compare",
         "Memory Double"},
        map);
  }();
  return scheme;
}

}  // namespace nfp::model
