// Calibration of instruction-specific energies and times (paper §V).
//
// For every category of a scheme, two kernels are generated following
// Table II: a *reference* kernel (an empty counted loop) and a *test*
// kernel (the same loop containing `per_loop` instances of instructions
// from the category). Both run on the measurement board; Eq. 2
//
//   e_c = (E_test − E_ref) / n_test     t_c = (T_test − T_ref) / n_test
//
// yields the per-instruction costs, with n_test = loops · per_loop.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "board/config.h"
#include "nfp/estimator.h"
#include "nfp/scheme.h"

namespace nfp::model {

struct CalibrationPlan {
  std::uint32_t loops = 200'000;  // loop iterations per kernel
  std::uint32_t per_loop = 32;    // tested instructions per iteration
};

// Generated source pair for one category.
struct KernelPair {
  std::string category;
  std::string ref_asm;
  std::string test_asm;
  std::uint64_t n_test = 0;
};

// Per-category calibration record (the raw bench readings behind Table I).
struct CategoryCalibration {
  std::string category;
  double e_test_nj = 0, e_ref_nj = 0;
  double t_test_s = 0, t_ref_s = 0;
  double specific_energy_nj = 0;  // e_c
  double specific_time_ns = 0;    // t_c
};

struct CalibrationResult {
  CategoryCosts costs;
  std::vector<CategoryCalibration> details;
};

// Calibrated coefficient vector for one estimation scheme (nfp/estimator.h).
// For "eq1" this wraps the classic Eq. 2 differencing result (details
// included, costs bit-identical to Calibrator::run); other schemes carry a
// least-squares fit over the same Table-II calibration runs.
struct SchemeCalibration {
  std::string scheme;
  CategoryCosts costs;                  // one coefficient per model term
  std::vector<std::string> term_names;  // parallel to costs
  std::size_t samples = 0;              // calibration runs behind the fit
  // Raw per-category bench readings (eq1 only; empty for fitted schemes).
  std::vector<CategoryCalibration> details;
};

// Post-calibration manual adaptation (paper: "the values are checked for
// consistency and manually adapted, if necessary").
struct Adaptation {
  std::vector<double> energy_scale;  // per category; empty = all 1.0
  std::vector<double> time_scale;
};

class Calibrator {
 public:
  explicit Calibrator(const CategoryScheme& scheme = CategoryScheme::paper(),
                      CalibrationPlan plan = {});

  // Generates the Table-II kernel pair for one category of the scheme.
  KernelPair make_kernels(std::size_t category) const;

  // Full calibration campaign on a board with the given configuration.
  // FPU categories are skipped (zero cost) when the board has no FPU.
  CalibrationResult run(const board::BoardConfig& cfg,
                        const std::optional<Adaptation>& adapt = {}) const;

  // Calibrates any registered scheme's coefficient vector. "eq1" goes
  // through the Eq. 2 differencing path above (bit-identical costs); every
  // other scheme is fitted by ridge-regularized least squares over the same
  // Table-II ref/test kernel runs, with the feature vectors the scheme
  // extracts from each board run (per-op counts, PMU events, bench time).
  SchemeCalibration fit(const Estimator& estimator,
                        const board::BoardConfig& cfg) const;

 private:
  const CategoryScheme& scheme_;
  CalibrationPlan plan_;
};

}  // namespace nfp::model
