// Sharded estimation campaign service: a library-level job queue that
// accepts estimation jobs (kernel program + inputs + budget), shards them
// across persistent worker threads with work stealing, and streams results
// as they complete.
//
// Two things distinguish it from the batch Campaign loop (nfp/campaign.h):
//
//  - Long jobs are preemptible. A job with `slice_insns > 0` is paused at
//    every slice boundary, checkpointed through the versioned snapshot
//    format (sim/state_io.h) into an in-memory image, and re-queued; the
//    next slice — often on a different worker, against a different arena —
//    restores the image and continues. Because snapshot restore is proven
//    bit-identical across dispatch modes, a preempted job retires exactly
//    like an uninterrupted one: same counts, cycles, energy (bit-for-bit).
//
//  - Results can stream. A sink callback receives each ServiceResult the
//    moment its job finishes (out of submit order); take_results() returns
//    the stable submit-order view afterwards. result_json_line() renders a
//    result as one JSON-lines record for piping (tools/nfpd).
//
// An optional static fast path (ServiceConfig::static_estimator, injected
// by the caller so this library never links the analyzer) serves an
// execution-free [lower, upper] interval per job before the first slice
// runs; static_only mode accepts that interval as the final answer and
// skips the dynamic pipeline entirely (nfpd --static-first/--static-only).
//
// Estimates reuse one warm calibration table: the first job that needs it
// calibrates once (Table I / Eq. 2) and every later job estimates (Eq. 1)
// from the shared costs.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <condition_variable>

#include "nfp/calibration.h"
#include "nfp/campaign.h"
#include "nfp/estimator.h"

namespace nfp::model {

struct ServiceJob {
  std::string name;
  asmkit::Program program;
  // Input blocks written into RAM before the first slice (address, payload).
  std::vector<std::pair<std::uint32_t, std::vector<std::uint8_t>>> inputs;
  // Total retirement budget; exceeding it without halting fails the job.
  std::uint64_t max_insns = board::Board::kDefaultMaxInsns;
  // Preemption grain: > 0 checkpoints and re-queues the job after every
  // `slice_insns` retired instructions (per platform phase); 0 runs each
  // phase to completion in one slice.
  std::uint64_t slice_insns = 0;
};

// Execution-free interval from a static estimator (analyze/ipet, injected
// through ServiceConfig::static_estimator): guaranteed [lower, upper] per
// metric when accepted, otherwise the stable refusal slug.
struct StaticBounds {
  bool accepted = false;
  std::string reason;  // machine-parseable refusal slug when !accepted
  std::uint64_t insns_lower = 0, insns_upper = 0;
  std::uint64_t cycles_lower = 0, cycles_upper = 0;
  double time_lower_s = 0.0, time_upper_s = 0.0;
  double energy_lower_nj = 0.0, energy_upper_nj = 0.0;
};

struct ServiceResult {
  std::uint64_t id = 0;  // submit order, dense from 0
  KernelRunRecord record;
  // Estimate from the shared calibration table under the configured scheme
  // (zeros when the service was configured with calibrate = false).
  Estimate estimate;
  // The estimation scheme behind `estimate` (ServiceConfig::scheme); empty
  // when the service did not estimate.
  std::string scheme;
  std::uint64_t slices = 0;       // run segments across both phases (>= 2)
  std::uint64_t checkpoints = 0;  // serialize/restore round trips
  // Set when the service ran a static estimator over this job's program.
  std::optional<StaticBounds> static_bounds;
  // True when an accepted interval was served as the final answer and the
  // ISS/board refinement run was skipped (ServiceConfig::static_only): the
  // dynamic fields of `record` are then zero by construction.
  bool static_served = false;
};

struct ServiceStats {
  std::uint64_t jobs_completed = 0;
  std::uint64_t slices = 0;
  std::uint64_t checkpoints = 0;  // snapshots taken at preemption points
  std::uint64_t resumes = 0;      // snapshots restored (== checkpoints)
  std::uint64_t steals = 0;       // jobs popped from another worker's shard
  std::uint64_t checkpoint_bytes = 0;
};

struct ServiceConfig {
  board::BoardConfig board;
  // Worker thread count; 0 = min(hardware_concurrency, 8), at least 2.
  unsigned workers = 0;
  // Board dispatch; unset = the jit-availability probe (kJit where emitted
  // code can run, chained kBlock elsewhere). Board accounting is
  // bit-identical across modes, so this is purely a speed knob.
  std::optional<sim::Dispatch> dispatch;
  // Compute estimates via a warm calibration table (calibrated once,
  // lazily, with `plan` against the service's board config).
  bool calibrate = true;
  CalibrationPlan plan{};
  // Estimation scheme (nfp/estimator.h registry: "eq1", "events",
  // "time-proxy"). The default keeps the paper's Eq. 1 pipeline
  // bit-identical; the constructor throws on unknown names.
  std::string scheme = "eq1";
  // Execution-free fast path. When set, a job's first slice runs this
  // estimator over the program before any execution; the interval streams
  // immediately through the static sink and rides on the final result.
  // nfp_model deliberately does not link nfp_analyze — callers (nfpd,
  // tests) inject analyze_ipet through this hook.
  std::function<StaticBounds(const asmkit::Program&)> static_estimator;
  // With a static estimator set: serve accepted intervals as the final
  // answer and skip the ISS/board refinement run entirely. Refused
  // programs still fall through to the dynamic pipeline.
  bool static_only = false;
};

class CampaignService {
 public:
  explicit CampaignService(ServiceConfig cfg = {});
  // Drains every submitted job (wait_all), then joins the workers.
  ~CampaignService();

  CampaignService(const CampaignService&) = delete;
  CampaignService& operator=(const CampaignService&) = delete;

  // Enqueues a job on shard (id % workers) and returns its id. Thread-safe.
  std::uint64_t submit(ServiceJob job);

  // Blocks until every job submitted so far has completed.
  void wait_all();

  // Submit-order results of everything completed so far (call after
  // wait_all for the full set). Results remain stored; this copies.
  std::vector<ServiceResult> results() const;

  ServiceStats stats() const;
  sim::Dispatch board_dispatch() const { return dispatch_; }
  unsigned workers() const { return static_cast<unsigned>(shards_.size()); }

  // Streaming sink, called once per finished job from the finishing worker
  // (never under the queue lock, serialized across workers). Set before
  // submitting.
  void set_sink(std::function<void(const ServiceResult&)> sink);

  // Fast-path sink: called the moment a job's static interval is known —
  // before any execution — so callers can serve it immediately while the
  // refinement run proceeds. Same locking discipline as set_sink.
  void set_static_sink(std::function<void(std::uint64_t id,
                                          const std::string& name,
                                          const StaticBounds&)> sink);

  // The shared calibration table for the configured scheme (calibrates on
  // first use; throws if the service was configured with calibrate = false).
  const CategoryCosts& costs();
  // The scheme the service estimates with (resolved from
  // ServiceConfig::scheme at construction).
  const Estimator& estimator() const { return *estimator_; }

  // Convenience: submit everything, drain, return submit-order results.
  std::vector<ServiceResult> run_jobs(std::vector<ServiceJob> jobs);

 private:
  enum class Phase { kIss, kBoard };

  struct PendingJob {
    std::uint64_t id = 0;
    ServiceJob job;
    Phase phase = Phase::kIss;
    // Snapshot image of the active platform; empty = the phase starts cold
    // (load program + inputs) instead of restoring.
    std::string checkpoint;
    KernelRunRecord rec;
    Estimate estimate;
    std::uint64_t slices = 0;
    std::uint64_t checkpoints = 0;
    std::optional<StaticBounds> static_bounds;
    bool static_served = false;
  };

  void worker_main(unsigned self);
  bool pop_job(unsigned self, PendingJob& out);  // callers hold mu_
  // Runs one slice; returns true when the job is finished (record/estimate
  // final), false when it was checkpointed or phase-switched and must be
  // re-queued. `delta` collects slice/checkpoint accounting for stats_.
  bool run_slice(PendingJob& pj, Campaign::WorkerArena& arena,
                 ServiceStats& delta);
  void ensure_calibrated();

  ServiceConfig cfg_;
  const Estimator* estimator_;  // resolved from cfg_.scheme (never null)
  sim::Dispatch dispatch_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers: new work / shutdown
  std::condition_variable done_cv_;   // wait_all: a job completed
  std::vector<std::deque<PendingJob>> shards_;
  std::size_t queued_ = 0;     // jobs sitting in shards
  std::size_t in_flight_ = 0;  // jobs currently running a slice
  std::uint64_t next_id_ = 0;
  std::uint64_t completed_ = 0;
  bool stopping_ = false;
  std::vector<ServiceResult> results_;  // indexed by id (resized on submit)
  std::vector<bool> have_result_;
  ServiceStats stats_{};

  std::mutex sink_mu_;
  std::function<void(const ServiceResult&)> sink_;
  std::function<void(std::uint64_t, const std::string&, const StaticBounds&)>
      static_sink_;

  std::once_flag calib_once_;
  std::optional<SchemeCalibration> calibration_;

  std::vector<std::thread> pool_;
};

// One finished job as a JSON-lines record (doubles rendered with enough
// digits to round-trip bit-exactly). Carries a "static" object when the
// service ran a static estimator over the job.
std::string result_json_line(const ServiceResult& r);

// The "static" object alone (shared by result_json_line and the nfpd
// fast-path stream): {"accepted":...,...} or {"accepted":false,"reason":..}.
std::string static_bounds_json(const StaticBounds& b);

}  // namespace nfp::model
