#include "nfp/report.h"

#include <algorithm>

namespace nfp::model {

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto render = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };

  std::string out = render(header_);
  std::string sep = "|";
  for (const std::size_t w : widths) {
    sep += std::string(w + 2, '-') + "|";
  }
  out += sep + "\n";
  for (const auto& row : rows_) out += render(row);
  return out;
}

}  // namespace nfp::model
