// Minimal fixed-width text tables for the benchmark harnesses, so every
// bench prints rows that mirror the paper's tables.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace nfp::model {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  std::string to_string() const;

  static std::string fmt(double value, int decimals = 2) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
    return buf;
  }
  static std::string percent(double value, int decimals = 2) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%+.*f%%", decimals, value);
    return buf;
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace nfp::model
