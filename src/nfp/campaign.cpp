#include "nfp/campaign.h"

#include <atomic>
#include <thread>

#include "sim/iss.h"
#include "sim/jit.h"

namespace nfp::model {

Campaign::Campaign(board::BoardConfig cfg, unsigned threads)
    : cfg_(cfg),
      threads_(threads),
      // Same availability probe as the nfpc CLI: the jit tier where emitted
      // code can run, chained kBlock everywhere else (non-x86-64 hosts,
      // sanitizer presets, NFP_JIT_DISABLED).
      dispatch_(sim::jit_available() ? sim::Dispatch::kJit
                                     : sim::Dispatch::kBlock) {
  if (threads_ == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    // Each worker holds two 16 MiB platforms; cap the default fleet.
    threads_ = hw == 0 ? 2 : std::min(hw, 8u);
  }
}

KernelRunRecord Campaign::run_one(const KernelJob& job) const {
  WorkerArena arena(cfg_);
  return run_one(job, arena);
}

KernelRunRecord Campaign::run_one(const KernelJob& job,
                                  WorkerArena& arena) const {
  KernelRunRecord rec;
  rec.name = job.name;
  try {
    sim::Iss& iss = arena.iss;
    iss.load(job.program);
    for (const auto& [addr, bytes] : job.inputs) {
      iss.bus().write_block(addr, bytes.data(), bytes.size());
    }
    const auto iss_result = iss.run();
    if (!iss_result.halted) {
      throw std::runtime_error("ISS run did not halt (instruction budget)");
    }
    rec.counts = iss.counters().counts;
    rec.instret = iss_result.instret;
    rec.exit_code = iss_result.exit_code;

    board::Board& brd = arena.board;
    brd.load(job.program);
    for (const auto& [addr, bytes] : job.inputs) {
      brd.bus().write_block(addr, bytes.data(), bytes.size());
    }
    const auto board_result = brd.run(board::Board::kDefaultMaxInsns, dispatch_);
    if (!board_result.halted) {
      throw std::runtime_error("board run did not halt");
    }
    if (board_result.instret != rec.instret) {
      // The estimator multiplies ISS counts with board-calibrated costs;
      // diverging instruction streams would invalidate the experiment.
      throw std::runtime_error("ISS/board instruction streams diverged");
    }
    rec.measured = brd.measure(job.name);
    rec.events = brd.events();
    rec.cycles = brd.cycles();
    rec.true_energy_nj = brd.true_energy_nj();
    rec.true_time_s = brd.true_time_s();
    rec.ok = true;
  } catch (const std::exception& e) {
    rec.ok = false;
    rec.error = e.what();
  }
  return rec;
}

std::vector<KernelRunRecord> Campaign::run(
    const std::vector<KernelJob>& jobs) const {
  std::vector<KernelRunRecord> results(jobs.size());
  std::atomic<std::size_t> next{0};
  const unsigned workers =
      std::min<std::size_t>(threads_, jobs.size() == 0 ? 1 : jobs.size());

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      // One arena per worker, reused across the whole queue: only pages the
      // previous kernel dirtied get re-zeroed instead of 2 x 16 MiB of RAM
      // (and hooks/caches reset) per job.
      WorkerArena arena(cfg_);
      while (true) {
        const std::size_t i = next.fetch_add(1);
        if (i >= jobs.size()) return;
        results[i] = run_one(jobs[i], arena);
      }
    });
  }
  for (auto& t : pool) t.join();
  return results;
}

}  // namespace nfp::model
