// The mechanistic NFP estimator (paper Eq. 1):
//   Ê = Σ_c e_c · n_c      T̂ = Σ_c t_c · n_c
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "nfp/scheme.h"

namespace nfp::model {

// Instruction-specific costs per category (Table I): e_c in nJ, t_c in ns.
struct CategoryCosts {
  std::vector<double> energy_nj;
  std::vector<double> time_ns;

  std::size_t size() const { return energy_nj.size(); }
};

struct Estimate {
  double energy_nj = 0.0;
  double time_s = 0.0;
};

inline Estimate estimate(const CategoryCounts& counts,
                         const CategoryCosts& costs) {
  if (counts.size() != costs.size()) {
    throw std::invalid_argument("estimate: counts/costs size mismatch");
  }
  Estimate e;
  double time_ns = 0.0;
  for (std::size_t c = 0; c < counts.size(); ++c) {
    const auto n = static_cast<double>(counts[c]);
    e.energy_nj += costs.energy_nj[c] * n;
    time_ns += costs.time_ns[c] * n;
  }
  e.time_s = time_ns * 1e-9;
  return e;
}

inline Estimate estimate(const OpCounts& op_counts,
                         const CategoryScheme& scheme,
                         const CategoryCosts& costs) {
  return estimate(scheme.aggregate(op_counts), costs);
}

}  // namespace nfp::model
