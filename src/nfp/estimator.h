// Estimation schemes: how NFPs are predicted from a run.
//
// The paper's mechanistic model (Eq. 1)
//   Ê = Σ_c e_c · n_c      T̂ = Σ_c t_c · n_c
// is one point in a family; the same group later showed that PMU event
// counters (2023) and a pure processing-time proxy (2015) estimate energy
// with comparable accuracy and fewer terms. Every scheme here is a linear
// model over a scheme-specific feature vector extracted from a RunSample;
// the shared Estimator::estimate() does the Σ_t w_t · x_t accumulation with
// the exact arithmetic the original estimate() helpers used, so the "eq1"
// scheme reproduces the legacy pipeline bit for bit.
//
// Registered schemes (find_estimator / all_estimators):
//   eq1        — the paper's per-category linear model over ISS op counts.
//   events     — a linear model over the exported PMU-style hardware
//                counters alone (board/events.h): what a deployment could
//                estimate from on silicon without any disassembly. Needs a
//                board run for the counters.
//   time-proxy — energy proportional to the measured run time (E ≈ P̄·T).
//                Needs a board run for the time measurement.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "board/events.h"
#include "nfp/scheme.h"

namespace nfp::model {

// Instruction-specific costs per model term (Table I for eq1): e in nJ,
// t in ns. Alternative schemes reuse the container for their fitted
// coefficient vectors, in the same units.
struct CategoryCosts {
  std::vector<double> energy_nj;
  std::vector<double> time_ns;

  std::size_t size() const { return energy_nj.size(); }
};

struct Estimate {
  double energy_nj = 0.0;
  double time_s = 0.0;
};

inline Estimate estimate(const CategoryCounts& counts,
                         const CategoryCosts& costs) {
  if (counts.size() != costs.size()) {
    throw std::invalid_argument("estimate: counts/costs size mismatch");
  }
  Estimate e;
  double time_ns = 0.0;
  for (std::size_t c = 0; c < counts.size(); ++c) {
    const auto n = static_cast<double>(counts[c]);
    e.energy_nj += costs.energy_nj[c] * n;
    time_ns += costs.time_ns[c] * n;
  }
  e.time_s = time_ns * 1e-9;
  return e;
}

inline Estimate estimate(const OpCounts& op_counts,
                         const CategoryScheme& scheme,
                         const CategoryCosts& costs) {
  return estimate(scheme.aggregate(op_counts), costs);
}

// Everything a scheme may draw features from. eq1 needs only the ISS op
// counts; events and time-proxy additionally need the board-side PMU export
// and the bench time measurement (zeros when no board run happened — the
// schemes that need them must be fed a board run).
struct RunSample {
  OpCounts counts{};
  std::uint64_t instret = 0;
  board::EventCounters events{};
  double measured_time_s = 0.0;
};

class Estimator {
 public:
  virtual ~Estimator() = default;

  // Stable registry key ("eq1", "events", "time-proxy").
  virtual std::string_view name() const = 0;
  // Number of model terms (coefficient vector length).
  virtual std::size_t terms() const = 0;
  virtual std::string term_name(std::size_t t) const = 0;
  // The feature vector x for the linear model X̂ = Σ_t w_t · x_t.
  virtual std::vector<double> features(const RunSample& run) const = 0;
  // Whether features depend on a board run (events / measured time). The
  // ISS alone cannot feed such a scheme.
  virtual bool needs_board_run() const = 0;

  // Shared linear accumulation. Term order and arithmetic match the
  // original estimate() loop exactly, so eq1 is bit-identical to
  // estimate(counts, CategoryScheme::paper(), costs).
  Estimate estimate(const RunSample& run, const CategoryCosts& costs) const {
    const std::vector<double> x = features(run);
    if (x.size() != costs.size()) {
      throw std::invalid_argument("Estimator: features/costs size mismatch");
    }
    Estimate e;
    double time_ns = 0.0;
    for (std::size_t t = 0; t < x.size(); ++t) {
      e.energy_nj += costs.energy_nj[t] * x[t];
      time_ns += costs.time_ns[t] * x[t];
    }
    e.time_s = time_ns * 1e-9;
    return e;
  }
};

// Registered scheme singletons.
const Estimator& eq1_estimator();
const Estimator& events_estimator();
const Estimator& time_proxy_estimator();

// All registered schemes, in a stable order (eq1 first).
std::vector<const Estimator*> all_estimators();

// Lookup by registry key; nullptr when unknown.
const Estimator* find_estimator(std::string_view name);

// The valid "--scheme" values, comma-separated (CLI error messages).
std::string estimator_names();

}  // namespace nfp::model
