// Measurement campaign: run a set of kernels on the ISS (instruction counts)
// and on the measurement board (ground truth + bench measurement), in
// parallel across kernels. This is the machinery behind Fig. 4 and
// Table III, where 120 kernels are evaluated.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "asmkit/program.h"
#include "board/board.h"
#include "nfp/estimator.h"
#include "nfp/scheme.h"
#include "sim/iss.h"

namespace nfp::model {

struct KernelJob {
  std::string name;
  asmkit::Program program;
  // Input blocks written into RAM before the run (address, payload).
  std::vector<std::pair<std::uint32_t, std::vector<std::uint8_t>>> inputs;
};

struct KernelRunRecord {
  std::string name;
  bool ok = false;
  std::string error;
  std::uint32_t exit_code = 0;

  // From the ISS (the model's inputs).
  OpCounts counts{};
  std::uint64_t instret = 0;

  // From the board (what the experimenter measures).
  board::Measurement measured;
  // PMU-style counter export from the board run (board/events.h) — the
  // feature source for the event-based estimation schemes.
  board::EventCounters events;
  // Ground truth, for diagnostics only.
  std::uint64_t cycles = 0;
  double true_energy_nj = 0.0;
  double true_time_s = 0.0;
};

// Everything an estimation scheme may draw features from, extracted from a
// finished record (nfp/estimator.h).
inline RunSample run_sample(const KernelRunRecord& rec) {
  RunSample s;
  s.counts = rec.counts;
  s.instret = rec.instret;
  s.events = rec.events;
  s.measured_time_s = rec.measured.time_s;
  return s;
}

class Campaign {
 public:
  // One worker's reusable simulators. Constructing a Bus zeroes 16 MiB of
  // RAM per platform; an arena amortises that over a whole job queue —
  // Platform::load only re-zeroes the pages the previous kernel touched, so
  // a reused arena is observably identical to a fresh one.
  struct WorkerArena {
    explicit WorkerArena(const board::BoardConfig& cfg) : board(cfg) {}
    sim::Iss iss;
    board::Board board;
  };

  explicit Campaign(board::BoardConfig cfg, unsigned threads = 0);

  // Dispatch mode for the board runs (the ISS always runs kBlock). Board
  // accounting is bit-identical across modes, so this is a speed knob — the
  // default is kJit wherever emitted code can run (resolved through the
  // same jit-availability probe as the CLI; chained kBlock elsewhere); step
  // is the A/B baseline surfaced on nfpc as --dispatch=step.
  void set_board_dispatch(sim::Dispatch dispatch) { dispatch_ = dispatch; }
  sim::Dispatch board_dispatch() const { return dispatch_; }

  // Runs every job on both platforms. Results keep the job order.
  std::vector<KernelRunRecord> run(const std::vector<KernelJob>& jobs) const;

  // Single-job convenience (also used by tests). Builds a throwaway arena.
  KernelRunRecord run_one(const KernelJob& job) const;
  KernelRunRecord run_one(const KernelJob& job, WorkerArena& arena) const;

 private:
  board::BoardConfig cfg_;
  unsigned threads_;
  sim::Dispatch dispatch_;  // resolved in the constructor (jit probe)
};

}  // namespace nfp::model
