// SPARC V8 instruction word encoders. Used by the assembler and by tests.
#pragma once

#include <cstdint>
#include <optional>

#include "isa/insn.h"

namespace nfp::isa {

// ALU / jmpl / save / restore with register operand 2.
std::uint32_t enc_alu(Op op, std::uint8_t rd, std::uint8_t rs1,
                      std::uint8_t rs2);
// ALU with 13-bit signed immediate.
std::uint32_t enc_alu_imm(Op op, std::uint8_t rd, std::uint8_t rs1,
                          std::int32_t simm13);

// Memory access (rd is the integer or FP data register).
std::uint32_t enc_mem(Op op, std::uint8_t rd, std::uint8_t rs1,
                      std::uint8_t rs2);
std::uint32_t enc_mem_imm(Op op, std::uint8_t rd, std::uint8_t rs1,
                          std::int32_t simm13);

// sethi: value must have its low 10 bits clear (imm22 << 10 form).
std::uint32_t enc_sethi(std::uint8_t rd, std::uint32_t value);
std::uint32_t enc_nop();

// Branches take a byte displacement relative to the branch instruction;
// it must be word aligned and fit in 22 bits of words.
std::uint32_t enc_bicc(Cond cond, bool annul, std::int32_t byte_disp);
std::uint32_t enc_fbfcc(FCond cond, bool annul, std::int32_t byte_disp);
std::uint32_t enc_call(std::int32_t byte_disp);

// Trap-always with software trap number `swtrap` (rs1 = %g0 + imm).
std::uint32_t enc_ta(std::int32_t swtrap);

// FPop with two source registers (fadds..fdtos). For single-source ops
// (fmovs, fsqrt, conversions) rs1 must be 0.
std::uint32_t enc_fp(Op op, std::uint8_t rd, std::uint8_t rs1,
                     std::uint8_t rs2);

// Re-encodes a decoded instruction into its canonical word: the same
// operand fields, reserved / don't-care bits zero (the asi field of
// register-form format-3 instructions, bit 29 of Ticc). Returns nullopt for
// Op::kInvalid. For every word the decoder accepts,
// decode(*reencode(decode(w))) has identical fields to decode(w); the
// analyzer's consistency sweep pins this property over the encoding space.
std::optional<std::uint32_t> reencode(const DecodedInsn& d);

}  // namespace nfp::isa
