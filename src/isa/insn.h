// SPARC V8 instruction subset modelled by nfpkit.
//
// This mirrors the structure of the paper's OVP processor model (Fig. 2/3):
// a 32-bit word is decoded into an internal tag (Op) used by both the
// disassembler and the execution ("morpher") dispatch. Ops are grouped into
// the NFP categories of Table I via default_category().
#pragma once

#include <cstdint>

#include "isa/categories.h"

namespace nfp::isa {

enum class Op : std::uint8_t {
  kInvalid = 0,
  // Format 2.
  kSethi,
  kNop,  // sethi 0, %g0 — decoded as its own tag (Table I has a NOP category)
  kBicc,
  kFbfcc,
  // Format 1.
  kCall,
  // Format 3: integer ALU.
  kAdd, kAddcc, kAddx, kAddxcc,
  kSub, kSubcc, kSubx, kSubxcc,
  kAnd, kAndcc, kAndn, kAndncc,
  kOr, kOrcc, kOrn, kOrncc,
  kXor, kXorcc, kXnor, kXnorcc,
  kSll, kSrl, kSra,
  kUmul, kUmulcc, kSmul, kSmulcc,
  kUdiv, kUdivcc, kSdiv, kSdivcc,
  kRdy, kWry,
  kJmpl, kTicc, kSave, kRestore,
  // Format 3: memory.
  kLd, kLdub, kLdsb, kLduh, kLdsh, kLdd,
  kSt, kStb, kSth, kStd,
  kLdf, kLddf, kStf, kStdf,
  // FPop.
  kFadds, kFaddd, kFsubs, kFsubd, kFmuls, kFmuld,
  kFdivs, kFdivd, kFsqrts, kFsqrtd,
  kFmovs, kFnegs, kFabss,
  kFitos, kFitod, kFstoi, kFdtoi, kFstod, kFdtos,
  kFcmps, kFcmpd,
  kOpCount_,
};

inline constexpr std::size_t kOpCount = static_cast<std::size_t>(Op::kOpCount_);

// Integer condition codes (Bicc `cond` field).
enum class Cond : std::uint8_t {
  kN = 0, kE = 1, kLe = 2, kL = 3, kLeu = 4, kCs = 5, kNeg = 6, kVs = 7,
  kA = 8, kNe = 9, kG = 10, kGe = 11, kGu = 12, kCc = 13, kPos = 14, kVc = 15,
};

// Floating-point condition codes (FBfcc `cond` field).
enum class FCond : std::uint8_t {
  kN = 0, kNe = 1, kLg = 2, kUl = 3, kL = 4, kUg = 5, kG = 6, kU = 7,
  kA = 8, kE = 9, kUe = 10, kGe = 11, kUge = 12, kLe = 13, kUle = 14, kO = 15,
};

struct DecodedInsn {
  Op op = Op::kInvalid;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::uint8_t cond = 0;   // Bicc/FBfcc/Ticc condition field
  bool annul = false;      // branch annul bit
  bool has_imm = false;    // i-bit (format 3) / always for sethi, branches
  std::int32_t imm = 0;    // simm13; byte displacement for branches and call;
                           // imm22 (already shifted) for sethi
  std::uint32_t raw = 0;
};

// Well-known integer register numbers.
inline constexpr std::uint8_t kRegG0 = 0;
inline constexpr std::uint8_t kRegSp = 14;  // %o6
inline constexpr std::uint8_t kRegO7 = 15;  // call return address
inline constexpr std::uint8_t kRegFp = 30;  // %i6

constexpr bool is_load(Op op) {
  switch (op) {
    case Op::kLd: case Op::kLdub: case Op::kLdsb: case Op::kLduh:
    case Op::kLdsh: case Op::kLdd: case Op::kLdf: case Op::kLddf:
      return true;
    default:
      return false;
  }
}

constexpr bool is_store(Op op) {
  switch (op) {
    case Op::kSt: case Op::kStb: case Op::kSth: case Op::kStd:
    case Op::kStf: case Op::kStdf:
      return true;
    default:
      return false;
  }
}

constexpr bool is_control(Op op) {
  switch (op) {
    case Op::kBicc: case Op::kFbfcc: case Op::kCall: case Op::kJmpl:
    case Op::kTicc:
      return true;
    default:
      return false;
  }
}

constexpr bool is_fpu(Op op) {
  return op >= Op::kFadds && op <= Op::kFcmpd;
}

constexpr bool is_muldiv(Op op) {
  switch (op) {
    case Op::kUmul: case Op::kUmulcc: case Op::kSmul: case Op::kSmulcc:
    case Op::kUdiv: case Op::kUdivcc: case Op::kSdiv: case Op::kSdivcc:
      return true;
    default:
      return false;
  }
}

// Default mapping of ops to the paper's nine Table-I categories.
constexpr Category default_category(Op op) {
  switch (op) {
    case Op::kNop:
      return Category::kNop;
    case Op::kBicc: case Op::kFbfcc: case Op::kCall: case Op::kJmpl:
    case Op::kTicc:
      return Category::kJump;
    case Op::kLd: case Op::kLdub: case Op::kLdsb: case Op::kLduh:
    case Op::kLdsh: case Op::kLdd: case Op::kLdf: case Op::kLddf:
      return Category::kMemLoad;
    case Op::kSt: case Op::kStb: case Op::kSth: case Op::kStd:
    case Op::kStf: case Op::kStdf:
      return Category::kMemStore;
    case Op::kSethi: case Op::kRdy: case Op::kWry: case Op::kSave:
    case Op::kRestore: case Op::kInvalid:
      return Category::kOther;
    case Op::kFdivs: case Op::kFdivd:
      return Category::kFpuDiv;
    case Op::kFsqrts: case Op::kFsqrtd:
      return Category::kFpuSqrt;
    case Op::kFadds: case Op::kFaddd: case Op::kFsubs: case Op::kFsubd:
    case Op::kFmuls: case Op::kFmuld: case Op::kFmovs: case Op::kFnegs:
    case Op::kFabss: case Op::kFitos: case Op::kFitod: case Op::kFstoi:
    case Op::kFdtoi: case Op::kFstod: case Op::kFdtos: case Op::kFcmps:
    case Op::kFcmpd:
      return Category::kFpuArith;
    default:
      return Category::kIntArith;
  }
}

}  // namespace nfp::isa
