// SPARC V8 instruction word decoder.
#pragma once

#include <cstdint>

#include "isa/insn.h"

namespace nfp::isa {

// Decodes a single 32-bit instruction word. Unrecognised encodings yield
// Op::kInvalid; the simulator treats executing such a word as a fatal error.
DecodedInsn decode(std::uint32_t word);

// Decode-table iteration hooks. These expose the raw op3/opf tables behind
// decode() so the static analyzer (nfp::analyze) can enumerate the encoding
// space family by family instead of guessing at the tables' contents.
// Unmapped selector values yield Op::kInvalid.
Op alu_op_from_op3(std::uint32_t op3);           // format 3, op = 2
Op mem_op_from_op3(std::uint32_t op3);           // format 3, op = 3
Op fp_op_from_opf(std::uint32_t op3, std::uint32_t opf);  // FPop1/FPop2

// Morph-time grouping (paper Fig. 3): every decode entry maps to one of a
// small set of grouped execution functions. The superblock morph cache uses
// this table to pick a pre-resolved handler once per cached block instead of
// re-dispatching through the full op switch on every retire.
enum class MorphGroup : std::uint8_t {
  kAddSub,    // add/sub families incl. carry and cc variants
  kLogic,     // and/or/xor families
  kShift,     // sll/srl/sra
  kMulDiv,    // umul/smul/udiv/sdiv families
  kYReg,      // rd %y / wr %y
  kMove,      // sethi, nop, save/restore (flat adds)
  kLoad,      // all integer/FP loads
  kStore,     // all integer/FP stores
  kFpu,       // FP arithmetic, moves, converts, compares
  kCti,       // control-transfer instructions: block terminators
  kInvalid,
};

MorphGroup morph_group(Op op);

// True when a decode entry terminates a superblock: control transfers change
// pc/npc in coupled ways (delay slots), and undecodable words must fault
// through the single-step path.
constexpr bool ends_block(const DecodedInsn& d) {
  return is_control(d.op) || d.op == Op::kInvalid;
}

}  // namespace nfp::isa
