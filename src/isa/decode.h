// SPARC V8 instruction word decoder.
#pragma once

#include <cstdint>

#include "isa/insn.h"

namespace nfp::isa {

// Decodes a single 32-bit instruction word. Unrecognised encodings yield
// Op::kInvalid; the simulator treats executing such a word as a fatal error.
DecodedInsn decode(std::uint32_t word);

}  // namespace nfp::isa
