// Textual names for ops, registers, and condition codes. Shared by the
// disassembler and the assembler.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "isa/insn.h"

namespace nfp::isa {

// Mnemonic for a non-branch op ("add", "ldub", "faddd", ...). Bicc/FBfcc
// return "b" / "fb"; use cond_name()/fcond_name() for the full mnemonic.
std::string_view mnemonic(Op op);

// "ne", "e", "g", ... per the V8 assembler syntax ("" for never, "a" always).
std::string_view cond_name(Cond cond);
std::string_view fcond_name(FCond cond);

// "%g0".."%g7", "%o0".."%o7", "%l0".."%l7", "%i0".."%i7" (also %sp, %fp).
std::string reg_name(std::uint8_t reg);
std::string freg_name(std::uint8_t reg);

// Parses "%g3", "%sp", "%fp", "%o7" etc. Returns nullopt if not a register.
std::optional<std::uint8_t> parse_reg(std::string_view text);
// Parses "%f0".."%f31".
std::optional<std::uint8_t> parse_freg(std::string_view text);

// Reverse mnemonic lookup for the assembler; covers integer/FP/memory ops
// (not branches). Returns kInvalid if unknown.
Op op_from_mnemonic(std::string_view text);

std::optional<Cond> cond_from_name(std::string_view text);
std::optional<FCond> fcond_from_name(std::string_view text);

}  // namespace nfp::isa
