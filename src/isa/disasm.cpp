#include "isa/disasm.h"

#include <cstdio>

#include "isa/decode.h"
#include "isa/names.h"

namespace nfp::isa {
namespace {

std::string hex32(std::uint32_t value) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%08x", value);
  return buf;
}

std::string imm_or_reg(const DecodedInsn& d) {
  if (d.has_imm) return std::to_string(d.imm);
  return reg_name(d.rs2);
}

std::string address_operand(const DecodedInsn& d) {
  std::string out = "[" + reg_name(d.rs1);
  if (d.has_imm) {
    if (d.imm != 0) {
      out += (d.imm > 0 ? "+" : "") + std::to_string(d.imm);
    }
  } else if (d.rs2 != 0) {
    out += "+" + reg_name(d.rs2);
  }
  out += "]";
  return out;
}

}  // namespace

std::string disassemble(const DecodedInsn& d, std::uint32_t pc) {
  const std::string m{mnemonic(d.op)};
  switch (d.op) {
    case Op::kInvalid:
      return "<invalid " + hex32(d.raw) + ">";
    case Op::kNop:
      return "nop";
    case Op::kSethi:
      return "sethi %hi(" + hex32(static_cast<std::uint32_t>(d.imm)) + "), " +
             reg_name(d.rd);
    case Op::kBicc: {
      std::string out = "b";
      out += cond_name(static_cast<Cond>(d.cond));
      if (d.annul) out += ",a";
      return out + " " + hex32(pc + static_cast<std::uint32_t>(d.imm));
    }
    case Op::kFbfcc: {
      std::string out = "fb";
      out += fcond_name(static_cast<FCond>(d.cond));
      if (d.annul) out += ",a";
      return out + " " + hex32(pc + static_cast<std::uint32_t>(d.imm));
    }
    case Op::kCall:
      return "call " + hex32(pc + static_cast<std::uint32_t>(d.imm));
    case Op::kJmpl:
      return "jmpl " + reg_name(d.rs1) + "+" + imm_or_reg(d) + ", " +
             reg_name(d.rd);
    case Op::kTicc:
      return "ta " + (d.has_imm ? std::to_string(d.imm) : reg_name(d.rs2));
    case Op::kRdy:
      return "rd %y, " + reg_name(d.rd);
    case Op::kWry:
      return "wr " + reg_name(d.rs1) + ", " + imm_or_reg(d) + ", %y";
    case Op::kLd: case Op::kLdub: case Op::kLdsb: case Op::kLduh:
    case Op::kLdsh: case Op::kLdd:
      return m + " " + address_operand(d) + ", " + reg_name(d.rd);
    case Op::kLdf: case Op::kLddf:
      return m + " " + address_operand(d) + ", " + freg_name(d.rd);
    case Op::kSt: case Op::kStb: case Op::kSth: case Op::kStd:
      return m + " " + reg_name(d.rd) + ", " + address_operand(d);
    case Op::kStf: case Op::kStdf:
      return m + " " + freg_name(d.rd) + ", " + address_operand(d);
    case Op::kFcmps: case Op::kFcmpd:
      return m + " " + freg_name(d.rs1) + ", " + freg_name(d.rs2);
    case Op::kFmovs: case Op::kFnegs: case Op::kFabss: case Op::kFsqrts:
    case Op::kFsqrtd: case Op::kFitos: case Op::kFitod: case Op::kFstoi:
    case Op::kFdtoi: case Op::kFstod: case Op::kFdtos:
      return m + " " + freg_name(d.rs2) + ", " + freg_name(d.rd);
    case Op::kFadds: case Op::kFaddd: case Op::kFsubs: case Op::kFsubd:
    case Op::kFmuls: case Op::kFmuld: case Op::kFdivs: case Op::kFdivd:
      return m + " " + freg_name(d.rs1) + ", " + freg_name(d.rs2) + ", " +
             freg_name(d.rd);
    default:
      // Integer ALU three-operand form.
      return m + " " + reg_name(d.rs1) + ", " + imm_or_reg(d) + ", " +
             reg_name(d.rd);
  }
}

std::string disassemble_word(std::uint32_t word, std::uint32_t pc) {
  return disassemble(decode(word), pc);
}

}  // namespace nfp::isa
