#include "isa/names.h"

#include <array>
#include <charconv>
#include <unordered_map>

namespace nfp::isa {
namespace {

struct OpName {
  Op op;
  std::string_view name;
};

constexpr std::array kOpNames = {
    OpName{Op::kSethi, "sethi"},   OpName{Op::kNop, "nop"},
    OpName{Op::kCall, "call"},     OpName{Op::kAdd, "add"},
    OpName{Op::kAddcc, "addcc"},   OpName{Op::kAddx, "addx"},
    OpName{Op::kAddxcc, "addxcc"}, OpName{Op::kSub, "sub"},
    OpName{Op::kSubcc, "subcc"},   OpName{Op::kSubx, "subx"},
    OpName{Op::kSubxcc, "subxcc"}, OpName{Op::kAnd, "and"},
    OpName{Op::kAndcc, "andcc"},   OpName{Op::kAndn, "andn"},
    OpName{Op::kAndncc, "andncc"}, OpName{Op::kOr, "or"},
    OpName{Op::kOrcc, "orcc"},     OpName{Op::kOrn, "orn"},
    OpName{Op::kOrncc, "orncc"},   OpName{Op::kXor, "xor"},
    OpName{Op::kXorcc, "xorcc"},   OpName{Op::kXnor, "xnor"},
    OpName{Op::kXnorcc, "xnorcc"}, OpName{Op::kSll, "sll"},
    OpName{Op::kSrl, "srl"},       OpName{Op::kSra, "sra"},
    OpName{Op::kUmul, "umul"},     OpName{Op::kUmulcc, "umulcc"},
    OpName{Op::kSmul, "smul"},     OpName{Op::kSmulcc, "smulcc"},
    OpName{Op::kUdiv, "udiv"},     OpName{Op::kUdivcc, "udivcc"},
    OpName{Op::kSdiv, "sdiv"},     OpName{Op::kSdivcc, "sdivcc"},
    OpName{Op::kRdy, "rd"},        OpName{Op::kWry, "wr"},
    OpName{Op::kJmpl, "jmpl"},     OpName{Op::kTicc, "ta"},
    OpName{Op::kSave, "save"},     OpName{Op::kRestore, "restore"},
    OpName{Op::kLd, "ld"},         OpName{Op::kLdub, "ldub"},
    OpName{Op::kLdsb, "ldsb"},     OpName{Op::kLduh, "lduh"},
    OpName{Op::kLdsh, "ldsh"},     OpName{Op::kLdd, "ldd"},
    OpName{Op::kSt, "st"},         OpName{Op::kStb, "stb"},
    OpName{Op::kSth, "sth"},       OpName{Op::kStd, "std"},
    OpName{Op::kLdf, "ldf"},       OpName{Op::kLddf, "lddf"},
    OpName{Op::kStf, "stf"},       OpName{Op::kStdf, "stdf"},
    OpName{Op::kFadds, "fadds"},   OpName{Op::kFaddd, "faddd"},
    OpName{Op::kFsubs, "fsubs"},   OpName{Op::kFsubd, "fsubd"},
    OpName{Op::kFmuls, "fmuls"},   OpName{Op::kFmuld, "fmuld"},
    OpName{Op::kFdivs, "fdivs"},   OpName{Op::kFdivd, "fdivd"},
    OpName{Op::kFsqrts, "fsqrts"}, OpName{Op::kFsqrtd, "fsqrtd"},
    OpName{Op::kFmovs, "fmovs"},   OpName{Op::kFnegs, "fnegs"},
    OpName{Op::kFabss, "fabss"},   OpName{Op::kFitos, "fitos"},
    OpName{Op::kFitod, "fitod"},   OpName{Op::kFstoi, "fstoi"},
    OpName{Op::kFdtoi, "fdtoi"},   OpName{Op::kFstod, "fstod"},
    OpName{Op::kFdtos, "fdtos"},   OpName{Op::kFcmps, "fcmps"},
    OpName{Op::kFcmpd, "fcmpd"},
};

constexpr std::array<std::string_view, 16> kCondNames = {
    "n", "e", "le", "l", "leu", "cs", "neg", "vs",
    "a", "ne", "g", "ge", "gu", "cc", "pos", "vc"};

constexpr std::array<std::string_view, 16> kFCondNames = {
    "n", "ne", "lg", "ul", "l", "ug", "g", "u",
    "a", "e", "ue", "ge", "uge", "le", "ule", "o"};

}  // namespace

std::string_view mnemonic(Op op) {
  if (op == Op::kBicc) return "b";
  if (op == Op::kFbfcc) return "fb";
  for (const auto& entry : kOpNames) {
    if (entry.op == op) return entry.name;
  }
  return "<invalid>";
}

std::string_view cond_name(Cond cond) {
  return kCondNames[static_cast<std::size_t>(cond)];
}

std::string_view fcond_name(FCond cond) {
  return kFCondNames[static_cast<std::size_t>(cond)];
}

std::string reg_name(std::uint8_t reg) {
  static constexpr std::array<char, 4> kBanks = {'g', 'o', 'l', 'i'};
  std::string out = "%";
  out += kBanks[(reg >> 3) & 3];
  out += static_cast<char>('0' + (reg & 7));
  return out;
}

std::string freg_name(std::uint8_t reg) {
  return "%f" + std::to_string(static_cast<int>(reg));
}

std::optional<std::uint8_t> parse_reg(std::string_view text) {
  if (text == "%sp") return kRegSp;
  if (text == "%fp") return kRegFp;
  if (text.size() != 3 || text[0] != '%') return std::nullopt;
  int bank;
  switch (text[1]) {
    case 'g': bank = 0; break;
    case 'o': bank = 1; break;
    case 'l': bank = 2; break;
    case 'i': bank = 3; break;
    default: return std::nullopt;
  }
  if (text[2] < '0' || text[2] > '7') return std::nullopt;
  return static_cast<std::uint8_t>(bank * 8 + (text[2] - '0'));
}

std::optional<std::uint8_t> parse_freg(std::string_view text) {
  if (text.size() < 3 || text.substr(0, 2) != "%f") return std::nullopt;
  int value = 0;
  const auto* begin = text.data() + 2;
  const auto* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end || value < 0 || value > 31) {
    return std::nullopt;
  }
  return static_cast<std::uint8_t>(value);
}

Op op_from_mnemonic(std::string_view text) {
  static const auto* kMap = [] {
    auto* map = new std::unordered_map<std::string_view, Op>();
    for (const auto& entry : kOpNames) map->emplace(entry.name, entry.op);
    return map;
  }();
  const auto it = kMap->find(text);
  return it == kMap->end() ? Op::kInvalid : it->second;
}

std::optional<Cond> cond_from_name(std::string_view text) {
  for (std::size_t i = 0; i < kCondNames.size(); ++i) {
    if (kCondNames[i] == text) return static_cast<Cond>(i);
  }
  if (text == "z") return Cond::kE;
  if (text == "nz") return Cond::kNe;
  if (text == "geu") return Cond::kCc;
  if (text == "lu") return Cond::kCs;
  return std::nullopt;
}

std::optional<FCond> fcond_from_name(std::string_view text) {
  for (std::size_t i = 0; i < kFCondNames.size(); ++i) {
    if (kFCondNames[i] == text) return static_cast<FCond>(i);
  }
  return std::nullopt;
}

}  // namespace nfp::isa
