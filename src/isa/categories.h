// Instruction categories of the paper's mechanistic NFP model (Table I).
//
// The paper identifies nine categories: six for the integer unit and three
// for the FPU. Each retired instruction is attributed to exactly one
// category; the NFP model multiplies per-category retire counts with
// calibrated specific energies/times (Eq. 1).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace nfp::isa {

enum class Category : std::uint8_t {
  kIntArith = 0,  // integer add/sub/logic/shift/mul/div
  kJump,          // Bicc, FBfcc, call, jmpl, trap
  kMemLoad,       // all integer and FP loads
  kMemStore,      // all integer and FP stores
  kNop,           // sethi 0, %g0
  kOther,         // sethi, rd/wr state registers, save/restore
  kFpuArith,      // FP add/sub/mul, moves, compares, conversions
  kFpuDiv,        // FP divide
  kFpuSqrt,       // FP square root
};

inline constexpr std::size_t kCategoryCount = 9;

constexpr std::string_view to_string(Category c) {
  constexpr std::array<std::string_view, kCategoryCount> names = {
      "Integer Arithmetic", "Jump",       "Memory Load",
      "Memory Store",       "NOP",        "Other",
      "FPU Arithmetic",     "FPU Divide", "FPU Square root",
  };
  return names[static_cast<std::size_t>(c)];
}

constexpr std::array<Category, kCategoryCount> all_categories() {
  return {Category::kIntArith, Category::kJump,    Category::kMemLoad,
          Category::kMemStore, Category::kNop,     Category::kOther,
          Category::kFpuArith, Category::kFpuDiv,  Category::kFpuSqrt};
}

}  // namespace nfp::isa
