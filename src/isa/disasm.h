// SPARC V8 disassembler. Mirrors the "disassembler" output path of the
// paper's OVP processor model (Fig. 2): every decoded tag can be rendered
// for debugging without affecting the execution path.
#pragma once

#include <cstdint>
#include <string>

#include "isa/insn.h"

namespace nfp::isa {

// Renders one decoded instruction. `pc` is used to print absolute branch
// and call targets.
std::string disassemble(const DecodedInsn& insn, std::uint32_t pc);

// Convenience: decode + render a raw word.
std::string disassemble_word(std::uint32_t word, std::uint32_t pc);

}  // namespace nfp::isa
