#include "isa/decode.h"

namespace nfp::isa {
namespace {

constexpr std::int32_t sign_extend(std::uint32_t value, unsigned bits) {
  const std::uint32_t mask = 1u << (bits - 1);
  return static_cast<std::int32_t>((value ^ mask) - mask);
}

}  // namespace

Op alu_op_from_op3(std::uint32_t op3) {
  switch (op3) {
    case 0x00: return Op::kAdd;
    case 0x01: return Op::kAnd;
    case 0x02: return Op::kOr;
    case 0x03: return Op::kXor;
    case 0x04: return Op::kSub;
    case 0x05: return Op::kAndn;
    case 0x06: return Op::kOrn;
    case 0x07: return Op::kXnor;
    case 0x08: return Op::kAddx;
    case 0x0A: return Op::kUmul;
    case 0x0B: return Op::kSmul;
    case 0x0C: return Op::kSubx;
    case 0x0E: return Op::kUdiv;
    case 0x0F: return Op::kSdiv;
    case 0x10: return Op::kAddcc;
    case 0x11: return Op::kAndcc;
    case 0x12: return Op::kOrcc;
    case 0x13: return Op::kXorcc;
    case 0x14: return Op::kSubcc;
    case 0x15: return Op::kAndncc;
    case 0x16: return Op::kOrncc;
    case 0x17: return Op::kXnorcc;
    case 0x18: return Op::kAddxcc;
    case 0x1A: return Op::kUmulcc;
    case 0x1B: return Op::kSmulcc;
    case 0x1C: return Op::kSubxcc;
    case 0x1E: return Op::kUdivcc;
    case 0x1F: return Op::kSdivcc;
    case 0x25: return Op::kSll;
    case 0x26: return Op::kSrl;
    case 0x27: return Op::kSra;
    case 0x28: return Op::kRdy;
    case 0x30: return Op::kWry;
    case 0x38: return Op::kJmpl;
    case 0x3A: return Op::kTicc;
    case 0x3C: return Op::kSave;
    case 0x3D: return Op::kRestore;
    default:   return Op::kInvalid;
  }
}

Op mem_op_from_op3(std::uint32_t op3) {
  switch (op3) {
    case 0x00: return Op::kLd;
    case 0x01: return Op::kLdub;
    case 0x02: return Op::kLduh;
    case 0x03: return Op::kLdd;
    case 0x04: return Op::kSt;
    case 0x05: return Op::kStb;
    case 0x06: return Op::kSth;
    case 0x07: return Op::kStd;
    case 0x09: return Op::kLdsb;
    case 0x0A: return Op::kLdsh;
    case 0x20: return Op::kLdf;
    case 0x23: return Op::kLddf;
    case 0x24: return Op::kStf;
    case 0x27: return Op::kStdf;
    default:   return Op::kInvalid;
  }
}

Op fp_op_from_opf(std::uint32_t op3, std::uint32_t opf) {
  if (op3 == 0x34) {  // FPop1
    switch (opf) {
      case 0x01: return Op::kFmovs;
      case 0x05: return Op::kFnegs;
      case 0x09: return Op::kFabss;
      case 0x29: return Op::kFsqrts;
      case 0x2A: return Op::kFsqrtd;
      case 0x41: return Op::kFadds;
      case 0x42: return Op::kFaddd;
      case 0x45: return Op::kFsubs;
      case 0x46: return Op::kFsubd;
      case 0x49: return Op::kFmuls;
      case 0x4A: return Op::kFmuld;
      case 0x4D: return Op::kFdivs;
      case 0x4E: return Op::kFdivd;
      case 0xC4: return Op::kFitos;
      case 0xC6: return Op::kFdtos;
      case 0xC8: return Op::kFitod;
      case 0xC9: return Op::kFstod;
      case 0xD1: return Op::kFstoi;
      case 0xD2: return Op::kFdtoi;
      default:   return Op::kInvalid;
    }
  }
  // FPop2
  switch (opf) {
    case 0x51: return Op::kFcmps;
    case 0x52: return Op::kFcmpd;
    default:   return Op::kInvalid;
  }
}

DecodedInsn decode(std::uint32_t word) {
  DecodedInsn d;
  d.raw = word;
  const std::uint32_t op = word >> 30;
  switch (op) {
    case 0: {  // format 2: sethi / branches
      const std::uint32_t op2 = (word >> 22) & 0x7;
      if (op2 == 0x4) {  // sethi
        d.rd = static_cast<std::uint8_t>((word >> 25) & 0x1F);
        d.imm = static_cast<std::int32_t>((word & 0x3FFFFF) << 10);
        d.has_imm = true;
        d.op = (d.rd == 0 && d.imm == 0) ? Op::kNop : Op::kSethi;
        return d;
      }
      if (op2 == 0x2 || op2 == 0x6) {  // Bicc / FBfcc
        d.op = (op2 == 0x2) ? Op::kBicc : Op::kFbfcc;
        d.cond = static_cast<std::uint8_t>((word >> 25) & 0xF);
        d.annul = ((word >> 29) & 1) != 0;
        d.imm = sign_extend(word & 0x3FFFFF, 22) * 4;  // byte displacement
        d.has_imm = true;
        return d;
      }
      return d;
    }
    case 1: {  // call
      d.op = Op::kCall;
      d.imm = sign_extend(word & 0x3FFFFFFF, 30) * 4;
      d.has_imm = true;
      return d;
    }
    case 2: {  // format 3: ALU / FPop
      const std::uint32_t op3 = (word >> 19) & 0x3F;
      d.rd = static_cast<std::uint8_t>((word >> 25) & 0x1F);
      d.rs1 = static_cast<std::uint8_t>((word >> 14) & 0x1F);
      if (op3 == 0x34 || op3 == 0x35) {
        d.op = fp_op_from_opf(op3, (word >> 5) & 0x1FF);
        d.rs2 = static_cast<std::uint8_t>(word & 0x1F);
        return d;
      }
      d.op = alu_op_from_op3(op3);
      if (d.op == Op::kTicc) {
        d.cond = static_cast<std::uint8_t>((word >> 25) & 0xF);
        d.rd = 0;
      }
      if ((word >> 13) & 1) {
        d.has_imm = true;
        d.imm = sign_extend(word & 0x1FFF, 13);
      } else {
        d.rs2 = static_cast<std::uint8_t>(word & 0x1F);
      }
      return d;
    }
    default: {  // format 3: memory
      const std::uint32_t op3 = (word >> 19) & 0x3F;
      d.op = mem_op_from_op3(op3);
      d.rd = static_cast<std::uint8_t>((word >> 25) & 0x1F);
      d.rs1 = static_cast<std::uint8_t>((word >> 14) & 0x1F);
      if ((word >> 13) & 1) {
        d.has_imm = true;
        d.imm = sign_extend(word & 0x1FFF, 13);
      } else {
        d.rs2 = static_cast<std::uint8_t>(word & 0x1F);
      }
      return d;
    }
  }
}

MorphGroup morph_group(Op op) {
  switch (op) {
    case Op::kAdd: case Op::kAddcc: case Op::kAddx: case Op::kAddxcc:
    case Op::kSub: case Op::kSubcc: case Op::kSubx: case Op::kSubxcc:
      return MorphGroup::kAddSub;
    case Op::kAnd: case Op::kAndcc: case Op::kAndn: case Op::kAndncc:
    case Op::kOr: case Op::kOrcc: case Op::kOrn: case Op::kOrncc:
    case Op::kXor: case Op::kXorcc: case Op::kXnor: case Op::kXnorcc:
      return MorphGroup::kLogic;
    case Op::kSll: case Op::kSrl: case Op::kSra:
      return MorphGroup::kShift;
    case Op::kUmul: case Op::kUmulcc: case Op::kSmul: case Op::kSmulcc:
    case Op::kUdiv: case Op::kUdivcc: case Op::kSdiv: case Op::kSdivcc:
      return MorphGroup::kMulDiv;
    case Op::kRdy: case Op::kWry:
      return MorphGroup::kYReg;
    case Op::kSethi: case Op::kNop: case Op::kSave: case Op::kRestore:
      return MorphGroup::kMove;
    case Op::kBicc: case Op::kFbfcc: case Op::kCall: case Op::kJmpl:
    case Op::kTicc:
      return MorphGroup::kCti;
    case Op::kInvalid:
      return MorphGroup::kInvalid;
    default:
      if (is_load(op)) return MorphGroup::kLoad;
      if (is_store(op)) return MorphGroup::kStore;
      return MorphGroup::kFpu;
  }
}

}  // namespace nfp::isa
