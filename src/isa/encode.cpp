#include "isa/encode.h"

#include <cassert>
#include <cstdlib>

namespace nfp::isa {
namespace {

std::uint32_t alu_op3(Op op) {
  switch (op) {
    case Op::kAdd: return 0x00;
    case Op::kAnd: return 0x01;
    case Op::kOr: return 0x02;
    case Op::kXor: return 0x03;
    case Op::kSub: return 0x04;
    case Op::kAndn: return 0x05;
    case Op::kOrn: return 0x06;
    case Op::kXnor: return 0x07;
    case Op::kAddx: return 0x08;
    case Op::kUmul: return 0x0A;
    case Op::kSmul: return 0x0B;
    case Op::kSubx: return 0x0C;
    case Op::kUdiv: return 0x0E;
    case Op::kSdiv: return 0x0F;
    case Op::kAddcc: return 0x10;
    case Op::kAndcc: return 0x11;
    case Op::kOrcc: return 0x12;
    case Op::kXorcc: return 0x13;
    case Op::kSubcc: return 0x14;
    case Op::kAndncc: return 0x15;
    case Op::kOrncc: return 0x16;
    case Op::kXnorcc: return 0x17;
    case Op::kAddxcc: return 0x18;
    case Op::kUmulcc: return 0x1A;
    case Op::kSmulcc: return 0x1B;
    case Op::kSubxcc: return 0x1C;
    case Op::kUdivcc: return 0x1E;
    case Op::kSdivcc: return 0x1F;
    case Op::kSll: return 0x25;
    case Op::kSrl: return 0x26;
    case Op::kSra: return 0x27;
    case Op::kRdy: return 0x28;
    case Op::kWry: return 0x30;
    case Op::kJmpl: return 0x38;
    case Op::kTicc: return 0x3A;
    case Op::kSave: return 0x3C;
    case Op::kRestore: return 0x3D;
    default:
      assert(false && "not an ALU op");
      std::abort();
  }
}

std::uint32_t mem_op3(Op op) {
  switch (op) {
    case Op::kLd: return 0x00;
    case Op::kLdub: return 0x01;
    case Op::kLduh: return 0x02;
    case Op::kLdd: return 0x03;
    case Op::kSt: return 0x04;
    case Op::kStb: return 0x05;
    case Op::kSth: return 0x06;
    case Op::kStd: return 0x07;
    case Op::kLdsb: return 0x09;
    case Op::kLdsh: return 0x0A;
    case Op::kLdf: return 0x20;
    case Op::kLddf: return 0x23;
    case Op::kStf: return 0x24;
    case Op::kStdf: return 0x27;
    default:
      assert(false && "not a memory op");
      std::abort();
  }
}

struct FpEnc {
  std::uint32_t op3;
  std::uint32_t opf;
};

FpEnc fp_enc(Op op) {
  switch (op) {
    case Op::kFmovs: return {0x34, 0x01};
    case Op::kFnegs: return {0x34, 0x05};
    case Op::kFabss: return {0x34, 0x09};
    case Op::kFsqrts: return {0x34, 0x29};
    case Op::kFsqrtd: return {0x34, 0x2A};
    case Op::kFadds: return {0x34, 0x41};
    case Op::kFaddd: return {0x34, 0x42};
    case Op::kFsubs: return {0x34, 0x45};
    case Op::kFsubd: return {0x34, 0x46};
    case Op::kFmuls: return {0x34, 0x49};
    case Op::kFmuld: return {0x34, 0x4A};
    case Op::kFdivs: return {0x34, 0x4D};
    case Op::kFdivd: return {0x34, 0x4E};
    case Op::kFitos: return {0x34, 0xC4};
    case Op::kFdtos: return {0x34, 0xC6};
    case Op::kFitod: return {0x34, 0xC8};
    case Op::kFstod: return {0x34, 0xC9};
    case Op::kFstoi: return {0x34, 0xD1};
    case Op::kFdtoi: return {0x34, 0xD2};
    case Op::kFcmps: return {0x35, 0x51};
    case Op::kFcmpd: return {0x35, 0x52};
    default:
      assert(false && "not an FP op");
      std::abort();
  }
}

std::uint32_t format3(std::uint32_t op, std::uint32_t rd, std::uint32_t op3,
                      std::uint32_t rs1, std::uint32_t rs2) {
  return (op << 30) | (rd << 25) | (op3 << 19) | (rs1 << 14) | rs2;
}

std::uint32_t format3_imm(std::uint32_t op, std::uint32_t rd,
                          std::uint32_t op3, std::uint32_t rs1,
                          std::int32_t simm13) {
  assert(simm13 >= -4096 && simm13 <= 4095);
  return (op << 30) | (rd << 25) | (op3 << 19) | (rs1 << 14) | (1u << 13) |
         (static_cast<std::uint32_t>(simm13) & 0x1FFF);
}

std::uint32_t branch_word(std::uint32_t op2, std::uint32_t cond, bool annul,
                          std::int32_t byte_disp) {
  assert(byte_disp % 4 == 0);
  const std::int32_t words = byte_disp / 4;
  assert(words >= -(1 << 21) && words < (1 << 21));
  return (static_cast<std::uint32_t>(annul) << 29) | (cond << 25) |
         (op2 << 22) | (static_cast<std::uint32_t>(words) & 0x3FFFFF);
}

}  // namespace

std::uint32_t enc_alu(Op op, std::uint8_t rd, std::uint8_t rs1,
                      std::uint8_t rs2) {
  return format3(2, rd, alu_op3(op), rs1, rs2);
}

std::uint32_t enc_alu_imm(Op op, std::uint8_t rd, std::uint8_t rs1,
                          std::int32_t simm13) {
  return format3_imm(2, rd, alu_op3(op), rs1, simm13);
}

std::uint32_t enc_mem(Op op, std::uint8_t rd, std::uint8_t rs1,
                      std::uint8_t rs2) {
  return format3(3, rd, mem_op3(op), rs1, rs2);
}

std::uint32_t enc_mem_imm(Op op, std::uint8_t rd, std::uint8_t rs1,
                          std::int32_t simm13) {
  return format3_imm(3, rd, mem_op3(op), rs1, simm13);
}

std::uint32_t enc_sethi(std::uint8_t rd, std::uint32_t value) {
  assert((value & 0x3FF) == 0);
  return (static_cast<std::uint32_t>(rd) << 25) | (0x4u << 22) | (value >> 10);
}

std::uint32_t enc_nop() { return enc_sethi(0, 0); }

std::uint32_t enc_bicc(Cond cond, bool annul, std::int32_t byte_disp) {
  return branch_word(0x2, static_cast<std::uint32_t>(cond), annul, byte_disp);
}

std::uint32_t enc_fbfcc(FCond cond, bool annul, std::int32_t byte_disp) {
  return branch_word(0x6, static_cast<std::uint32_t>(cond), annul, byte_disp);
}

std::uint32_t enc_call(std::int32_t byte_disp) {
  assert(byte_disp % 4 == 0);
  return (1u << 30) | (static_cast<std::uint32_t>(byte_disp / 4) & 0x3FFFFFFF);
}

std::uint32_t enc_ta(std::int32_t swtrap) {
  // ta swtrap  ==  Ticc with cond=always, rs1=%g0, imm=swtrap.
  return format3_imm(2, 0x8, 0x3A, 0, swtrap);
}

std::uint32_t enc_fp(Op op, std::uint8_t rd, std::uint8_t rs1,
                     std::uint8_t rs2) {
  const FpEnc e = fp_enc(op);
  return (2u << 30) | (static_cast<std::uint32_t>(rd) << 25) | (e.op3 << 19) |
         (static_cast<std::uint32_t>(rs1) << 14) | (e.opf << 5) | rs2;
}

std::optional<std::uint32_t> reencode(const DecodedInsn& d) {
  switch (d.op) {
    case Op::kInvalid:
      return std::nullopt;
    case Op::kNop:
    case Op::kSethi:
      return enc_sethi(d.rd, static_cast<std::uint32_t>(d.imm));
    case Op::kBicc:
      return enc_bicc(static_cast<Cond>(d.cond), d.annul, d.imm);
    case Op::kFbfcc:
      return enc_fbfcc(static_cast<FCond>(d.cond), d.annul, d.imm);
    case Op::kCall:
      return enc_call(d.imm);
    case Op::kTicc:
      // The condition lives in the rd field (bit 29 is reserved-zero and
      // the decoder clears rd), so the generic ALU encoders cannot be used.
      return d.has_imm ? format3_imm(2, d.cond, 0x3A, d.rs1, d.imm)
                       : format3(2, d.cond, 0x3A, d.rs1, d.rs2);
    default:
      break;
  }
  if (is_fpu(d.op)) return enc_fp(d.op, d.rd, d.rs1, d.rs2);
  if (is_load(d.op) || is_store(d.op)) {
    return d.has_imm ? enc_mem_imm(d.op, d.rd, d.rs1, d.imm)
                     : enc_mem(d.op, d.rd, d.rs1, d.rs2);
  }
  return d.has_imm ? enc_alu_imm(d.op, d.rd, d.rs1, d.imm)
                   : enc_alu(d.op, d.rd, d.rs1, d.rs2);
}

}  // namespace nfp::isa
