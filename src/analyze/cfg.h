// Static CFG recovery over linked program images (the nfplint core).
//
// The analyzer rebuilds, without executing anything, the control-flow graph
// the superblock morph cache will discover dynamically: delay-slot-aware
// basic blocks (a control transfer and its delay slot always travel
// together), resolved branch/call edges, and terminators (static `ta 0`
// halts, register-indirect jmpl exits, illegal encodings). Along the way it
// lints exactly the constructs that would make the morph/chaining dispatch
// paths misbehave or fault:
//   errors   — CTI couples (a control transfer in a live delay slot),
//              illegal encodings on a reachable path, delay slots or
//              fall-throughs running off the image, static non-halt traps,
//              branch targets outside the image;
//   warnings — CTIs or illegal words in never-executed (annulled-always)
//              delay slots, reachable-looking code that no path reaches.
//
// Reachability is seeded at the program entry; call return sites (pc + 8)
// are assumed reachable, matching the simulator's flat call model.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "asmkit/program.h"
#include "isa/decode.h"

namespace nfp::analyze {

enum class Severity { kError, kWarning };

enum class LintCode {
  kEntryOffImage,
  kIllegalEncoding,
  kCtiInDelaySlot,
  kCtiInAnnulledSlot,
  kIllegalInAnnulledSlot,
  kDelaySlotOffImage,
  kFallThroughOffImage,
  kBranchTargetOffImage,
  kStaticTrapNotHalt,
  kUnreachableCode,
};

const char* to_string(LintCode code);

struct LintFinding {
  Severity severity = Severity::kError;
  LintCode code = LintCode::kIllegalEncoding;
  std::uint32_t pc = 0;
  std::string message;
};

struct CfgEdge {
  enum class Kind {
    kFallThrough,  // straight-line flow into the next leader
    kTaken,        // branch taken (includes unconditional)
    kUntaken,      // conditional branch not taken
    kCall,         // call edge to a static callee
  };
  Kind kind = Kind::kFallThrough;
  std::uint32_t target = 0;   // target block start address
  bool includes_slot = true;  // delay-slot insn retires along this edge
};

struct BasicBlock {
  std::uint32_t start = 0;
  std::uint32_t end = 0;  // exclusive; includes the delay slot if any
  std::vector<isa::DecodedInsn> insns;
  std::array<std::uint32_t, isa::kOpCount> op_counts{};

  bool has_cti = false;
  std::uint32_t cti_pc = 0;
  isa::Op cti_op = isa::Op::kInvalid;
  bool has_slot = false;          // CTI couple: last insn is the delay slot
  bool slot_annulled_always = false;  // ba,a / fba,a: slot never executes
  bool indirect = false;          // jmpl exit: target unresolvable
  bool halt = false;              // static `ta 0`
  bool faults = false;            // ends at an illegal encoding / off image
  std::vector<CfgEdge> edges;

  std::uint32_t insn_count() const {
    return static_cast<std::uint32_t>(insns.size());
  }
};

struct Cfg {
  std::uint32_t entry = 0;
  std::uint32_t image_base = 0, image_end = 0, text_end = 0;
  std::map<std::uint32_t, BasicBlock> blocks;  // keyed by start address
  std::vector<LintFinding> findings;

  bool has_errors() const {
    for (const auto& f : findings) {
      if (f.severity == Severity::kError) return true;
    }
    return false;
  }
  std::size_t error_count() const {
    std::size_t n = 0;
    for (const auto& f : findings) n += f.severity == Severity::kError;
    return n;
  }
};

// Recovers the CFG and runs the lints. Never throws on malformed images —
// every defect becomes a finding.
Cfg build_cfg(const asmkit::Program& program);

// Human-readable block/edge listing for nfplint --dump-cfg.
std::string dump(const Cfg& cfg);

// One line per finding: "error 0x40000010 cti-in-delay-slot: ...".
std::string render(const LintFinding& finding);

}  // namespace nfp::analyze
