// Per-PC execution profiling for the IPET absolute loop totals.
//
// Data-dependent loops (image-driven kernels) defeat the counted-loop
// inference; their escape hatch is an absolute header-execution total from
// one instrumented reference run: the ISS retires instruction by instruction
// into a dense per-PC counter, and the count at a block's start address IS
// the number of times that block (and hence a loop headed there) executed.
// Applying a whole-program total per function invocation over-approximates,
// which keeps the IPET upper bound sound; the profiled execution itself is
// always a feasible flow, so its ground truth stays inside the interval.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "analyze/cfg.h"
#include "asmkit/program.h"

namespace nfp::analyze {

struct PcProfile {
  bool halted = false;
  std::uint64_t instret = 0;
  std::uint32_t base = 0;               // image base of `counts`
  std::vector<std::uint64_t> counts;    // one slot per word in the image

  std::uint64_t at(std::uint32_t pc) const {
    const std::uint32_t off = pc - base;
    if (pc < base || (off >> 2) >= counts.size()) return 0;
    return counts[off >> 2];
  }
};

// Runs the program to completion on the stepping ISS with the given input
// blocks poked into RAM first (same sequence as the measurement campaign).
PcProfile profile_pcs(
    const asmkit::Program& program,
    const std::vector<std::pair<std::uint32_t, std::vector<std::uint8_t>>>&
        inputs = {},
    std::uint64_t max_insns = 20'000'000'000ull);

// Execution total of every recovered block (keyed by start address), ready
// to drop into IpetConfig::loop_totals. Blocks the run never reached map to
// zero — that is load-bearing: a zero total pins dead loops (and whole dead
// callees) to zero flow instead of leaving them unbounded.
std::map<std::uint32_t, std::uint64_t> block_totals(const Cfg& cfg,
                                                    const PcProfile& profile);

}  // namespace nfp::analyze
