#include "analyze/lp.h"

#include <cmath>
#include <limits>

namespace nfp::analyze::lp {
namespace {

using I128 = __int128;
using U128 = unsigned __int128;

I128 chk_add(I128 a, I128 b) {
  I128 r;
  if (__builtin_add_overflow(a, b, &r)) throw LpOverflow{};
  return r;
}

I128 chk_mul(I128 a, I128 b) {
  I128 r;
  if (__builtin_mul_overflow(a, b, &r)) throw LpOverflow{};
  return r;
}

I128 chk_neg(I128 a) {
  I128 r;
  if (__builtin_sub_overflow(I128{0}, a, &r)) throw LpOverflow{};
  return r;
}

U128 uabs(I128 a) { return a < 0 ? U128(0) - U128(a) : U128(a); }

U128 gcd_u(U128 a, U128 b) {
  while (b != 0) {
    const U128 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

}  // namespace

void Rat::normalize() {
  if (d_ == 0) throw LpOverflow{};
  if (d_ < 0) {
    n_ = chk_neg(n_);
    d_ = chk_neg(d_);
  }
  if (n_ == 0) {
    d_ = 1;
    return;
  }
  const U128 g = gcd_u(uabs(n_), uabs(d_));
  if (g > 1) {
    n_ /= static_cast<I128>(g);
    d_ /= static_cast<I128>(g);
  }
}

Rat Rat::frac(long long num, long long den) { return Rat(num, den); }

Rat Rat::operator+(const Rat& o) const {
  // Common-denominator form with gcd pre-reduction to slow coefficient
  // growth inside the tableau.
  const U128 g = gcd_u(uabs(d_), uabs(o.d_));
  const I128 dg = d_ / static_cast<I128>(g);
  const I128 odg = o.d_ / static_cast<I128>(g);
  return Rat(chk_add(chk_mul(n_, odg), chk_mul(o.n_, dg)), chk_mul(d_, odg));
}

Rat Rat::operator-(const Rat& o) const { return *this + (-o); }

Rat Rat::operator-() const { return Rat(chk_neg(n_), d_); }

Rat Rat::operator*(const Rat& o) const {
  const U128 g1 = gcd_u(uabs(n_), uabs(o.d_));
  const U128 g2 = gcd_u(uabs(o.n_), uabs(d_));
  const I128 a = n_ / static_cast<I128>(g1 == 0 ? 1 : g1);
  const I128 b = o.n_ / static_cast<I128>(g2 == 0 ? 1 : g2);
  const I128 c = d_ / static_cast<I128>(g2 == 0 ? 1 : g2);
  const I128 e = o.d_ / static_cast<I128>(g1 == 0 ? 1 : g1);
  return Rat(chk_mul(a, b), chk_mul(c, e));
}

Rat Rat::operator/(const Rat& o) const {
  if (o.n_ == 0) throw LpOverflow{};
  return *this * Rat(o.d_, o.n_);
}

bool Rat::operator<(const Rat& o) const {
  // Denominators are positive after normalization.
  return chk_mul(n_, o.d_) < chk_mul(o.n_, d_);
}

double Rat::to_double() const {
  return static_cast<double>(static_cast<long double>(n_) /
                             static_cast<long double>(d_));
}

double Rat::to_double_dir(bool round_up) const {
  const double v = to_double();
  if (!std::isfinite(v)) return v;
  // Exact check: decompose v = m * 2^(exp-53) with a 53-bit integer m and
  // compare as rationals. Values outside the reconstructible range are
  // treated as inexact and nudged one ulp in the safe direction.
  int exp = 0;
  const double frac = std::frexp(v, &exp);
  const auto m = static_cast<long long>(std::ldexp(frac, 53));  // |m| < 2^53
  const int e2 = exp - 53;
  bool exact = false;
  if (e2 >= 0 && e2 < 64) {
    I128 num = I128(m);
    bool of = false;
    for (int i = 0; i < e2 && !of; ++i) {
      if (__builtin_mul_overflow(num, I128{2}, &num)) of = true;
    }
    exact = !of && d_ == 1 && num == n_;
  } else if (e2 < 0 && e2 > -127) {
    // v = m / 2^(-e2): cross-multiply m * d_ == n_ * 2^(-e2).
    I128 den = 1;
    bool of = false;
    for (int i = 0; i < -e2 && !of; ++i) {
      if (__builtin_mul_overflow(den, I128{2}, &den)) of = true;
    }
    I128 lhs = 0, rhs = 0;
    if (!of) {
      of = __builtin_mul_overflow(I128(m), d_, &lhs) ||
           __builtin_mul_overflow(n_, den, &rhs);
    }
    exact = !of && lhs == rhs;
  }
  if (exact) return v;
  return std::nextafter(
      v, round_up ? std::numeric_limits<double>::infinity()
                  : -std::numeric_limits<double>::infinity());
}

namespace {

constexpr std::uint64_t kMaxPivots = 200'000;

struct Tableau {
  int cols = 0;                        // without rhs
  std::vector<std::vector<Rat>> t;     // m x (cols + 1)
  std::vector<int> basis;

  // One simplex run: maximize `cost` (size cols) from the current basis.
  // `limit_col` bounds entering candidates (excludes artificials in
  // phase 2). Returns status; rhs column holds the vertex.
  LpStatus run(const std::vector<Rat>& cost, int limit_col,
               std::uint64_t& pivots) {
    const int m = static_cast<int>(t.size());
    const int rhs = cols;
    // Reduced-cost row and objective for the current basis.
    std::vector<Rat> z = cost;
    Rat obj = 0;
    for (int i = 0; i < m; ++i) {
      const Rat cb = cost[static_cast<std::size_t>(basis[i])];
      if (cb.is_zero()) continue;
      for (int j = 0; j < cols; ++j) {
        if (!t[i][j].is_zero()) z[j] = z[j] - cb * t[i][j];
      }
      obj = obj + cb * t[i][rhs];
    }
    const std::uint64_t bland_after =
        pivots + 4ull * static_cast<std::uint64_t>(m + cols);
    while (true) {
      if (pivots > kMaxPivots) return LpStatus::kIterLimit;
      // Entering column: Dantzig early, Bland once we risk cycling.
      const bool bland = pivots > bland_after;
      int enter = -1;
      for (int j = 0; j < limit_col; ++j) {
        if (z[j].sign() <= 0) continue;
        if (enter < 0 || (!bland && z[j] > z[enter])) enter = j;
        if (bland) break;
      }
      if (enter < 0) return LpStatus::kOptimal;
      // Ratio test; ties prefer the smallest basis index (Bland-safe).
      int leave = -1;
      Rat best;
      for (int i = 0; i < m; ++i) {
        if (t[i][enter].sign() <= 0) continue;
        const Rat ratio = t[i][rhs] / t[i][enter];
        if (leave < 0 || ratio < best ||
            (ratio == best && basis[i] < basis[leave])) {
          leave = i;
          best = ratio;
        }
      }
      if (leave < 0) return LpStatus::kUnbounded;
      pivot(leave, enter, &z, &obj);
      ++pivots;
    }
  }

  void pivot(int r, int c, std::vector<Rat>* z, Rat* obj) {
    const int rhs = cols;
    const Rat p = t[r][c];
    for (int j = 0; j <= rhs; ++j) t[r][j] = t[r][j] / p;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (static_cast<int>(i) == r || t[i][c].is_zero()) continue;
      const Rat f = t[i][c];
      for (int j = 0; j <= rhs; ++j) {
        if (!t[r][j].is_zero()) t[i][j] = t[i][j] - f * t[r][j];
      }
      t[i][c] = 0;  // keep the unit column exact
    }
    if (z != nullptr && !(*z)[c].is_zero()) {
      const Rat f = (*z)[c];
      for (int j = 0; j < rhs; ++j) {
        if (!t[r][j].is_zero()) (*z)[j] = (*z)[j] - f * t[r][j];
      }
      *obj = *obj + f * t[r][rhs];
      (*z)[c] = 0;
    }
    basis[static_cast<std::size_t>(r)] = c;
  }
};

}  // namespace

Simplex::Simplex(const Problem& p) {
  n_ = p.num_vars;
  const int m = static_cast<int>(p.rows.size());

  // Normalize rhs >= 0; count auxiliary columns. A flipped <= becomes a >=
  // (surplus + artificial); equalities always get an artificial.
  enum class K { kLe, kGe, kEq };
  std::vector<K> kind(p.rows.size());
  int slacks = 0, arts = 0;
  for (std::size_t r = 0; r < p.rows.size(); ++r) {
    const bool neg = p.rows[r].rhs.sign() < 0;
    if (p.rows[r].kind == RowKind::kEq) {
      kind[r] = K::kEq;
      ++arts;
    } else if (neg) {
      kind[r] = K::kGe;
      ++slacks;
      ++arts;
    } else {
      kind[r] = K::kLe;
      ++slacks;
    }
  }
  art_begin_ = n_ + slacks;
  cols_ = art_begin_ + arts;

  Tableau tab;
  tab.cols = cols_;
  tab.t.assign(p.rows.size(), std::vector<Rat>(cols_ + 1, Rat(0)));
  tab.basis.assign(p.rows.size(), 0);
  int next_slack = n_, next_art = art_begin_;
  for (std::size_t r = 0; r < p.rows.size(); ++r) {
    const Row& row = p.rows[r];
    const bool neg = row.rhs.sign() < 0;
    for (const Term& term : row.terms) {
      Rat c = neg ? -term.coef : term.coef;
      tab.t[r][term.var] = tab.t[r][term.var] + c;
    }
    tab.t[r][cols_] = neg ? -row.rhs : row.rhs;
    switch (kind[r]) {
      case K::kLe:
        tab.t[r][next_slack] = 1;
        tab.basis[r] = next_slack++;
        break;
      case K::kGe:
        tab.t[r][next_slack] = -1;
        ++next_slack;
        tab.t[r][next_art] = 1;
        tab.basis[r] = next_art++;
        break;
      case K::kEq:
        tab.t[r][next_art] = 1;
        tab.basis[r] = next_art++;
        break;
    }
  }

  // Phase 1: maximize -(sum of artificials).
  std::vector<Rat> cost(cols_, Rat(0));
  for (int j = art_begin_; j < cols_; ++j) cost[j] = Rat(-1);
  const LpStatus st = tab.run(cost, cols_, phase1_pivots_);
  if (st != LpStatus::kOptimal) {
    feasible_ = false;  // iteration blowup on phase 1: treat as failure
    return;
  }
  Rat art_sum = 0;
  for (int i = 0; i < m; ++i) {
    if (tab.basis[i] >= art_begin_) art_sum = art_sum + tab.t[i][cols_];
  }
  if (!art_sum.is_zero()) {
    feasible_ = false;
    return;
  }
  // Drive zero-valued artificial basics out where possible; fully-zero rows
  // are redundant and stay inert (no non-artificial column ever re-enters
  // them, so their rhs remains 0).
  for (int i = 0; i < m; ++i) {
    if (tab.basis[i] < art_begin_) continue;
    for (int j = 0; j < art_begin_; ++j) {
      if (!tab.t[i][j].is_zero()) {
        tab.pivot(i, j, nullptr, nullptr);
        ++phase1_pivots_;
        break;
      }
    }
  }
  feasible_ = true;
  tab_ = std::move(tab.t);
  basis_ = std::move(tab.basis);
}

Solution Simplex::optimize(const std::vector<Rat>& objective,
                           bool maximize) const {
  Solution sol;
  if (!feasible_) {
    sol.status = LpStatus::kInfeasible;
    return sol;
  }
  Tableau tab;
  tab.cols = cols_;
  tab.t = tab_;
  tab.basis = basis_;
  std::vector<Rat> cost(cols_, Rat(0));
  for (int j = 0; j < n_; ++j) {
    cost[j] = maximize ? objective[static_cast<std::size_t>(j)]
                       : -objective[static_cast<std::size_t>(j)];
  }
  sol.status = tab.run(cost, art_begin_, sol.pivots);
  if (sol.status != LpStatus::kOptimal) return sol;
  sol.x.assign(static_cast<std::size_t>(n_), Rat(0));
  Rat obj = 0;
  for (std::size_t i = 0; i < tab.t.size(); ++i) {
    const int b = tab.basis[i];
    if (b < n_) sol.x[static_cast<std::size_t>(b)] = tab.t[i][cols_];
  }
  for (int j = 0; j < n_; ++j) {
    obj = obj + objective[static_cast<std::size_t>(j)] *
                    sol.x[static_cast<std::size_t>(j)];
  }
  sol.objective = obj;
  return sol;
}

}  // namespace nfp::analyze::lp
