#include "analyze/ipet.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "analyze/callgraph.h"
#include "analyze/cost.h"
#include "analyze/loops.h"
#include "analyze/lp.h"

namespace nfp::analyze {
namespace {

using lp::Rat;

// Fixed-point denominator for double cost coefficients. Energy values are
// O(1..10) nJ per instruction, so 2^20 keeps ~1e-6 relative slack while
// bounding every denominator in the tableau.
constexpr long long kScale = 1 << 20;

// Directed double -> rational: the result is >= v (up) or <= v (!up).
Rat rat_of_cost(double v, bool up) {
  const long double k = static_cast<long double>(v) * kScale;
  const long double r = up ? std::ceil(k) : std::floor(k);
  if (!(r > -9.0e18L && r < 9.0e18L)) throw lp::LpOverflow{};
  return Rat::frac(static_cast<long long>(r), kScale);
}

enum Metric { kInsns = 0, kCycles = 1, kEnergy = 2, kMetricCount = 3 };
enum Sense { kMin = 0, kMax = 1 };

// One function's solved contribution, inlined at every call site.
struct FuncSummary {
  Rat val[kMetricCount][2];            // [metric][sense]
  std::vector<Rat> opvec[2];           // op-count witness per sense
  FuncSummary() {
    opvec[kMin].assign(isa::kOpCount, Rat(0));
    opvec[kMax].assign(isa::kOpCount, Rat(0));
  }
};

// An LP variable: flow along one intra edge, or out of one exit block.
struct Var {
  std::uint32_t block = 0;   // source block
  std::uint32_t target = 0;  // meaningful when !exit
  int cfg_edge = -1;         // index into block's CfgEdge list, -1 otherwise
  bool is_call = false;      // synthesized call-continuation edge
  std::uint32_t callee = 0;  // when is_call
  bool exit = false;
};

struct Refuse {
  IpetRefusal what;
  std::uint32_t block;
  std::string detail;
};

std::string list_hex(const std::vector<std::uint32_t>& addrs) {
  std::string out;
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    if (i != 0) out += " -> ";
    out += hex(addrs[i]);
  }
  return out;
}

// Per-(metric, sense) coefficient of one variable: the source block's cost
// leaving along this edge, plus the callee summary on continuation edges.
// Cycles and energy are priced at the residual envelope's matching end
// (block_cost_dir), so the interval brackets every cost the board's dynamic
// corrections can charge.
Rat coef_of(const Var& v, const Cfg& cfg, const board::CostModel& costs,
            const CostEnvelope& env,
            const std::map<std::uint32_t, FuncSummary>& summaries, Metric m,
            bool maximize) {
  const BasicBlock& b = cfg.blocks.at(v.block);
  Exit exit = Exit::kTerminal;
  bool slot = !b.slot_annulled_always;
  if (!v.exit) {
    int idx = v.cfg_edge;
    if (v.is_call) {
      for (std::size_t i = 0; i < b.edges.size(); ++i) {
        if (b.edges[i].kind == CfgEdge::Kind::kCall) {
          idx = static_cast<int>(i);
        }
      }
    }
    const CfgEdge& e = b.edges[static_cast<std::size_t>(idx)];
    exit = edge_exit(e);
    slot = e.includes_slot;
  }
  Rat c;
  switch (m) {
    case kInsns: {
      const std::uint64_t skipped = b.has_slot && !slot ? 1 : 0;
      c = static_cast<long long>(b.insns.size() - skipped);
      break;
    }
    case kCycles:
      // Cycle residuals are integral (row-miss penalty, taken/untaken), so
      // the directed double is an exact integer.
      c = static_cast<long long>(std::llround(
          block_cost_dir(b, costs, exit, slot,
                         maximize ? Dir::kUpper : Dir::kLower, env)
              .cycles));
      break;
    default:
      c = rat_of_cost(block_cost_dir(b, costs, exit, slot,
                                     maximize ? Dir::kUpper : Dir::kLower, env)
                          .energy_nj,
                      maximize);
      break;
  }
  if (v.is_call) c = c + summaries.at(v.callee).val[m][maximize ? kMax : kMin];
  return c;
}

void add_op_witness(std::vector<Rat>& acc, const BasicBlock& b, bool slot,
                    const Rat& flow) {
  for (std::size_t i = 0; i < b.insns.size(); ++i) {
    if (b.has_slot && i == b.insns.size() - 1 && !slot) continue;
    const auto op = static_cast<std::size_t>(b.insns[i].op);
    acc[op] = acc[op] + flow;
  }
}

struct SolveOutcome {
  bool ok = false;
  bool zeroed = false;  // callee statically dead under profile totals
  std::optional<Refuse> refusal;
  FuncSummary summary;
  std::uint64_t pivots = 0;
  std::vector<IpetLoop> loops;
};

SolveOutcome solve_function(const Cfg& cfg, const board::CostModel& costs,
                            const IpetConfig& config, const CallGraph& cg,
                            const FuncInfo& f, bool is_root,
                            const std::map<std::uint32_t, FuncSummary>& done) {
  SolveOutcome out;
  const auto refuse = [&out](IpetRefusal what, std::uint32_t block,
                             std::string detail) {
    out.refusal = Refuse{what, block, std::move(detail)};
  };

  // Structural pre-checks: every terminator the flow model cannot price is
  // an explicit refusal.
  if (!f.bad_indirect.empty()) {
    const std::uint32_t a = f.bad_indirect.front();
    refuse(IpetRefusal::kIndirectJump, a,
           "indirect control flow (jmpl) at " + hex(cfg.blocks.at(a).cti_pc));
    return out;
  }
  if (!f.fault_blocks.empty()) {
    refuse(IpetRefusal::kFaultPath, f.fault_blocks.front(),
           "reachable faulting block at " + hex(f.fault_blocks.front()));
    return out;
  }
  if (!f.trap_blocks.empty()) {
    refuse(IpetRefusal::kConditionalTrap, f.trap_blocks.front(),
           "conditional trap at " + hex(f.trap_blocks.front()));
    return out;
  }
  if (!f.dead_ends.empty()) {
    refuse(IpetRefusal::kDeadEnd, f.dead_ends.front(),
           "block without successors or terminator at " +
               hex(f.dead_ends.front()));
    return out;
  }
  for (const CallSite& site : f.calls) {
    if (!site.callee_ok || !site.cont_ok) {
      refuse(IpetRefusal::kCalleeOffImage, site.block,
             "call at " + hex(site.call_pc) +
                 (site.callee_ok ? " returns off image" : " targets " +
                                       hex(site.callee) + " off image"));
      return out;
    }
  }
  const std::vector<std::uint32_t>& exits = is_root ? f.halts : f.returns;
  if (is_root && !f.returns.empty()) {
    refuse(IpetRefusal::kReturnFromEntry, f.returns.front(),
           "entry function reaches a return couple at " +
               hex(f.returns.front()));
    return out;
  }
  if (!is_root && !f.halts.empty()) {
    refuse(IpetRefusal::kHaltInCallee, f.halts.front(),
           "static halt inside callee " + hex(f.entry) + " at " +
               hex(f.halts.front()));
    return out;
  }
  if (exits.empty()) {
    refuse(IpetRefusal::kNoExit, f.entry,
           std::string(is_root ? "entry function" : "callee") + " " +
               hex(f.entry) + " has no " + (is_root ? "halting" : "return") +
               " block");
    return out;
  }

  // Loop structure and bound rows.
  const SuccMap succs = f.succ_view();
  const DomTree dom = build_domtree(f.entry, succs);
  const LoopForest forest = find_natural_loops(f.entry, succs, dom);
  if (forest.irreducible) {
    refuse(IpetRefusal::kIrreducible, forest.offender_to,
           "irreducible region: retreating edge " + hex(forest.offender_from) +
               " -> " + hex(forest.offender_to) +
               " whose target does not dominate its source");
    return out;
  }
  const ClobberMask clobbers = [&](const BasicBlock& b) -> std::uint32_t {
    for (const CfgEdge& e : b.edges) {
      if (e.kind == CfgEdge::Kind::kCall && cg.functions.count(e.target)) {
        return cg.functions.at(e.target).reg_writes;
      }
    }
    return 0;
  };
  struct LoopRows {
    const NaturalLoop* loop;
    std::optional<std::uint64_t> relative;
    std::optional<std::uint64_t> total;
  };
  std::vector<LoopRows> loop_rows;
  for (const NaturalLoop& loop : forest.loops) {
    LoopRows rows{&loop, std::nullopt, std::nullopt};
    IpetLoop rec;
    rec.function = f.entry;
    rec.header = loop.header;
    rec.depth = loop.depth;
    const auto annotated = config.loop_bounds.find(loop.header);
    const auto total = config.loop_totals.find(loop.header);
    if (total != config.loop_totals.end()) rows.total = total->second;
    if (annotated != config.loop_bounds.end()) {
      rows.relative = annotated->second;
      rec.source = IpetBoundSource::kAnnotated;
      rec.bound = annotated->second;
    } else {
      std::optional<CountedBound> inferred;
      if (config.infer_counted_loops) {
        inferred = infer_counted_bound(cfg, dom, f.blocks, succs, forest.loops,
                                       loop, clobbers);
      }
      if (inferred.has_value()) {
        rows.relative = inferred->bound;
        rec.source = IpetBoundSource::kInferred;
        rec.bound = inferred->bound;
        rec.detail = inferred->detail;
      } else if (rows.total.has_value()) {
        rec.source = IpetBoundSource::kTotal;
        rec.bound = *rows.total;
      } else {
        refuse(IpetRefusal::kUnboundedLoop, loop.header,
               "loop at " + hex(loop.header) + " has no static bound");
        return out;
      }
    }
    out.loops.push_back(std::move(rec));
    loop_rows.push_back(rows);
  }

  // Variables: one per intra edge, one per exit block.
  std::vector<Var> vars;
  std::map<std::uint32_t, std::vector<int>> out_vars, in_vars;
  for (const std::uint32_t addr : f.blocks) {
    const auto eit = f.edges.find(addr);
    if (eit == f.edges.end()) continue;
    for (const IntraEdge& ie : eit->second) {
      Var v;
      v.block = addr;
      v.target = ie.to;
      v.cfg_edge = ie.cfg_edge;
      if (ie.cfg_edge < 0) {
        v.is_call = true;
        for (const CallSite& site : f.calls) {
          if (site.block == addr) v.callee = site.callee;
        }
      }
      const int id = static_cast<int>(vars.size());
      vars.push_back(v);
      out_vars[addr].push_back(id);
      in_vars[ie.to].push_back(id);
    }
  }
  for (const std::uint32_t addr : exits) {
    Var v;
    v.block = addr;
    v.exit = true;
    const int id = static_cast<int>(vars.size());
    vars.push_back(v);
    out_vars[addr].push_back(id);
  }

  lp::Problem problem;
  problem.num_vars = static_cast<int>(vars.size());
  for (const std::uint32_t addr : f.blocks) {
    lp::Row row;
    row.kind = lp::RowKind::kEq;
    row.rhs = addr == f.entry ? 1 : 0;
    for (const int id : out_vars[addr]) row.terms.push_back({id, Rat(1)});
    for (const int id : in_vars[addr]) row.terms.push_back({id, Rat(-1)});
    problem.rows.push_back(std::move(row));
  }
  for (const LoopRows& lr : loop_rows) {
    std::vector<int> back, entering;
    for (const auto& [id_list_addr, ids] : in_vars) {
      if (id_list_addr != lr.loop->header) continue;
      for (const int id : ids) {
        (lr.loop->body.count(vars[static_cast<std::size_t>(id)].block)
             ? back
             : entering)
            .push_back(id);
      }
    }
    const bool header_is_entry = lr.loop->header == f.entry;
    if (lr.relative.has_value()) {
      // Header executions <= B per loop entry:
      //   sum(back) - (B-1) * sum(entering) <= (B-1 if entry sources here).
      const auto b = static_cast<long long>(
          std::min<std::uint64_t>(*lr.relative, 1ull << 40));
      lp::Row row;
      row.kind = lp::RowKind::kLe;
      if (b == 0) {
        // Bound 0: the header may never execute at all.
        row.rhs = header_is_entry ? -1 : 0;
        for (const int id : back) row.terms.push_back({id, Rat(1)});
        for (const int id : entering) row.terms.push_back({id, Rat(1)});
      } else {
        row.rhs = header_is_entry ? b - 1 : 0;
        for (const int id : back) row.terms.push_back({id, Rat(1)});
        for (const int id : entering) {
          row.terms.push_back({id, Rat(1 - b)});
        }
      }
      problem.rows.push_back(std::move(row));
    }
    if (lr.total.has_value()) {
      // Absolute header-execution total (whole-program profile count).
      const auto t = static_cast<long long>(
          std::min<std::uint64_t>(*lr.total, 1ull << 40));
      lp::Row row;
      row.kind = lp::RowKind::kLe;
      row.rhs = t - (header_is_entry ? 1 : 0);
      for (const int id : back) row.terms.push_back({id, Rat(1)});
      for (const int id : entering) row.terms.push_back({id, Rat(1)});
      problem.rows.push_back(std::move(row));
    }
  }

  try {
    const lp::Simplex simplex(problem);
    out.pivots += simplex.phase1_pivots();
    if (!simplex.feasible()) {
      if (!is_root && !config.loop_totals.empty()) {
        // A callee whose profile totals pin every path to zero flow never
        // ran in the reference execution; a zero summary keeps the caller's
        // LP sound (the actual flow routes no flow through its call sites).
        out.ok = true;
        out.zeroed = true;
        out.loops.clear();
        return out;
      }
      refuse(IpetRefusal::kLpInfeasible, f.entry,
             "flow constraints for " + hex(f.entry) + " admit no execution");
      return out;
    }
    for (int m = 0; m < kMetricCount; ++m) {
      for (int sense = 0; sense < 2; ++sense) {
        const bool maximize = sense == kMax;
        std::vector<Rat> objective(vars.size());
        for (std::size_t i = 0; i < vars.size(); ++i) {
          objective[i] = coef_of(vars[i], cfg, costs, config.envelope, done,
                                 static_cast<Metric>(m), maximize);
        }
        const lp::Solution sol = simplex.optimize(objective, maximize);
        out.pivots += sol.pivots;
        if (sol.status == lp::LpStatus::kUnbounded) {
          refuse(IpetRefusal::kLpUnbounded, f.entry,
                 "objective unbounded for " + hex(f.entry) +
                     " (a loop escaped every bound row)");
          return out;
        }
        if (sol.status != lp::LpStatus::kOptimal) {
          refuse(IpetRefusal::kLpIterLimit, f.entry,
                 "simplex pivot budget exhausted for " + hex(f.entry));
          return out;
        }
        out.summary.val[m][sense] = sol.objective;
        if (m == kCycles) {
          // The cycles vertex doubles as the op-count witness.
          std::vector<Rat>& acc = out.summary.opvec[sense];
          for (std::size_t i = 0; i < vars.size(); ++i) {
            const Rat& flow = sol.x[i];
            if (flow.is_zero()) continue;
            const Var& v = vars[i];
            const BasicBlock& b = cfg.blocks.at(v.block);
            bool slot = !b.slot_annulled_always;
            if (!v.exit) {
              int idx = v.cfg_edge;
              if (v.is_call) {
                for (std::size_t j = 0; j < b.edges.size(); ++j) {
                  if (b.edges[j].kind == CfgEdge::Kind::kCall) {
                    idx = static_cast<int>(j);
                  }
                }
              }
              slot = b.edges[static_cast<std::size_t>(idx)].includes_slot;
            }
            add_op_witness(acc, b, slot, flow);
            if (v.is_call) {
              const std::vector<Rat>& callee = done.at(v.callee).opvec[sense];
              for (std::size_t op = 0; op < callee.size(); ++op) {
                if (!callee[op].is_zero()) {
                  acc[op] = acc[op] + flow * callee[op];
                }
              }
            }
          }
        }
      }
    }
  } catch (const lp::LpOverflow&) {
    refuse(IpetRefusal::kLpOverflow, f.entry,
           "exact LP arithmetic overflowed for " + hex(f.entry));
    return out;
  }
  out.ok = true;
  return out;
}

}  // namespace

const char* to_string(IpetRefusal refusal) {
  switch (refusal) {
    case IpetRefusal::kNone: return "none";
    case IpetRefusal::kLintErrors: return "lint-errors";
    case IpetRefusal::kNoEntry: return "no-entry";
    case IpetRefusal::kIndirectJump: return "indirect-jmpl";
    case IpetRefusal::kCalleeOffImage: return "callee-off-image";
    case IpetRefusal::kRecursion: return "recursion";
    case IpetRefusal::kIrreducible: return "irreducible-loop";
    case IpetRefusal::kUnboundedLoop: return "unbounded-loop";
    case IpetRefusal::kHaltInCallee: return "halt-in-callee";
    case IpetRefusal::kReturnFromEntry: return "return-from-entry";
    case IpetRefusal::kNoExit: return "no-exit";
    case IpetRefusal::kFaultPath: return "fault-path";
    case IpetRefusal::kConditionalTrap: return "conditional-trap";
    case IpetRefusal::kDeadEnd: return "dead-end";
    case IpetRefusal::kLpInfeasible: return "lp-infeasible";
    case IpetRefusal::kLpUnbounded: return "lp-unbounded";
    case IpetRefusal::kLpOverflow: return "lp-overflow";
    case IpetRefusal::kLpIterLimit: return "lp-iter-limit";
  }
  return "unknown";
}

IpetResult analyze_ipet(const Cfg& cfg, const board::CostModel& costs,
                        const IpetConfig& config) {
  IpetResult result;
  const auto refuse = [&result](IpetRefusal what, std::uint32_t block,
                                std::string detail) {
    result.refusal = what;
    result.refusal_block = block;
    result.refusal_detail = std::move(detail);
  };
  if (cfg.has_errors()) {
    std::uint32_t pc = 0;
    for (const LintFinding& finding : cfg.findings) {
      if (finding.severity == Severity::kError) {
        pc = finding.pc;
        break;
      }
    }
    refuse(IpetRefusal::kLintErrors, pc,
           "CFG recovery reported " + std::to_string(cfg.error_count()) +
               " lint error(s)");
    return result;
  }
  if (cfg.blocks.count(cfg.entry) == 0) {
    refuse(IpetRefusal::kNoEntry, cfg.entry,
           "entry " + hex(cfg.entry) + " is not a recovered block");
    return result;
  }

  const CallGraph cg = build_callgraph(cfg);
  if (cg.recursive) {
    refuse(IpetRefusal::kRecursion, cg.cycle.empty() ? cfg.entry : cg.cycle[0],
           "recursive call cycle: " + list_hex(cg.cycle));
    return result;
  }
  result.functions = cg.topo.size();

  std::map<std::uint32_t, FuncSummary> summaries;
  std::uint64_t pivots = 0;
  for (const std::uint32_t entry : cg.topo) {
    const FuncInfo& f = cg.functions.at(entry);
    SolveOutcome out = solve_function(cfg, costs, config, cg, f,
                                      entry == cg.root, summaries);
    pivots += out.pivots;
    if (!out.ok) {
      const Refuse& r = *out.refusal;
      refuse(r.what, r.block, r.detail);
      result.lp_pivots = pivots;
      return result;
    }
    for (IpetLoop& loop : out.loops) result.loops.push_back(std::move(loop));
    summaries.emplace(entry, std::move(out.summary));
  }
  result.lp_pivots = pivots;

  const FuncSummary& root = summaries.at(cg.root);
  result.insns.lower = root.val[kInsns][kMin].to_double_dir(false);
  result.insns.upper = root.val[kInsns][kMax].to_double_dir(true);
  result.cycles.lower = root.val[kCycles][kMin].to_double_dir(false);
  result.cycles.upper = root.val[kCycles][kMax].to_double_dir(true);
  result.energy_nj.lower = root.val[kEnergy][kMin].to_double_dir(false);
  result.energy_nj.upper = root.val[kEnergy][kMax].to_double_dir(true);

  // Clamp the lower bound to the Dijkstra shortest path: both are sound
  // lower bounds, so their max is, and on loop-free single-path programs
  // they agree exactly (identical pricing, cost.h).
  BoundsConfig bc;
  bc.loop_bounds = config.loop_bounds;
  bc.infer_counted_loops = config.infer_counted_loops;
  bc.clock_hz = config.clock_hz;
  const BoundsResult dij = analyze_bounds(cfg, costs, bc);
  if (dij.has_exit) {
    const auto clamp = [&result](double& lo, double dij_lo) {
      if (dij_lo > lo) {
        lo = dij_lo;
        result.lower_clamped = true;
      }
    };
    clamp(result.insns.lower, static_cast<double>(dij.lower.insns));
    clamp(result.cycles.lower, static_cast<double>(dij.lower.cycles));
    clamp(result.energy_nj.lower, dij.lower_energy_nj);
  }
  result.time_s.lower = result.cycles.lower / config.clock_hz;
  result.time_s.upper = result.cycles.upper / config.clock_hz;

  // Witness vectors (informational): rounded op counts from the cycles
  // vertices, metric fields synced to the final intervals.
  const auto fill = [&config](StaticVector& v, const std::vector<Rat>& ops,
                              double cycles, double energy) {
    for (std::size_t i = 0; i < ops.size() && i < v.op_counts.size(); ++i) {
      const double n = ops[i].to_double();
      v.op_counts[i] = n <= 0 ? 0 : static_cast<std::uint64_t>(n + 0.5);
      v.insns += v.op_counts[i];
    }
    v.cycles = static_cast<std::uint64_t>(cycles + 0.5);
    v.energy_nj = energy;
    v.time_s = cycles / config.clock_hz;
  };
  fill(result.lower, root.opvec[kMin], result.cycles.lower,
       result.energy_nj.lower);
  fill(result.upper, root.opvec[kMax], result.cycles.upper,
       result.energy_nj.upper);

  result.accepted = true;
  return result;
}

std::string render(const IpetResult& r) {
  char buf[192];
  std::string out;
  if (!r.accepted) {
    out += "ipet estimate unavailable: " + r.refusal_detail + " [reason=" +
           to_string(r.refusal) + " block=" + hex(r.refusal_block) + "]\n";
    return out;
  }
  std::snprintf(buf, sizeof buf,
                "ipet insns  [%.0f, %.0f]\n"
                "ipet cycles [%.0f, %.0f]\n",
                r.insns.lower, r.insns.upper, r.cycles.lower, r.cycles.upper);
  out += buf;
  std::snprintf(buf, sizeof buf,
                "ipet time   [%.6g, %.6g] s\n"
                "ipet energy [%.6g, %.6g] nJ\n",
                r.time_s.lower, r.time_s.upper, r.energy_nj.lower,
                r.energy_nj.upper);
  out += buf;
  std::snprintf(buf, sizeof buf,
                "ipet solved %zu function(s), %zu loop(s), %llu pivot(s)%s\n",
                r.functions, r.loops.size(),
                static_cast<unsigned long long>(r.lp_pivots),
                r.lower_clamped ? ", lower clamped to shortest path" : "");
  out += buf;
  for (const IpetLoop& loop : r.loops) {
    const char* kind = loop.source == IpetBoundSource::kAnnotated
                           ? "annotated"
                           : loop.source == IpetBoundSource::kInferred
                                 ? "inferred"
                                 : "profile total";
    std::snprintf(buf, sizeof buf, "loop %s (fn %s, depth %d): bound %llu %s",
                  hex(loop.header).c_str(), hex(loop.function).c_str(),
                  loop.depth, static_cast<unsigned long long>(loop.bound),
                  kind);
    out += buf;
    if (!loop.detail.empty()) out += " (" + loop.detail + ")";
    out += "\n";
  }
  return out;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
      continue;
    }
    out += c;
  }
  return out;
}

std::string interval_json(const IpetInterval& i) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "{\"lower\":%.17g,\"upper\":%.17g}", i.lower,
                i.upper);
  return buf;
}

}  // namespace

std::string to_json(const IpetResult& r) {
  std::string out = "{";
  out += "\"accepted\":";
  out += r.accepted ? "true" : "false";
  if (!r.accepted) {
    out += std::string(",\"reason\":\"") + to_string(r.refusal) + "\"";
    out += ",\"block\":\"" + hex(r.refusal_block) + "\"";
    out += ",\"detail\":\"" + json_escape(r.refusal_detail) + "\"";
    out += "}";
    return out;
  }
  out += ",\"insns\":" + interval_json(r.insns);
  out += ",\"cycles\":" + interval_json(r.cycles);
  out += ",\"time_s\":" + interval_json(r.time_s);
  out += ",\"energy_nj\":" + interval_json(r.energy_nj);
  out += ",\"functions\":" + std::to_string(r.functions);
  out += ",\"lp_pivots\":" + std::to_string(r.lp_pivots);
  out += std::string(",\"lower_clamped\":") +
         (r.lower_clamped ? "true" : "false");
  out += ",\"loops\":[";
  for (std::size_t i = 0; i < r.loops.size(); ++i) {
    const IpetLoop& loop = r.loops[i];
    if (i != 0) out += ",";
    out += "{\"header\":\"" + hex(loop.header) + "\"";
    out += ",\"function\":\"" + hex(loop.function) + "\"";
    out += ",\"depth\":" + std::to_string(loop.depth);
    const char* kind = loop.source == IpetBoundSource::kAnnotated
                           ? "annotated"
                           : loop.source == IpetBoundSource::kInferred
                                 ? "inferred"
                                 : "total";
    out += std::string(",\"source\":\"") + kind + "\"";
    out += ",\"bound\":" + std::to_string(loop.bound);
    if (!loop.detail.empty()) {
      out += ",\"detail\":\"" + json_escape(loop.detail) + "\"";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace nfp::analyze
