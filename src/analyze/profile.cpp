#include "analyze/profile.h"

#include "sim/executor.h"
#include "sim/platform.h"

namespace nfp::analyze {
namespace {

// Dense per-PC retire counter. Per-instruction stepping (kBatchRetire ==
// false) is mandatory: block-batched retirement never reports PCs.
struct PcCountHooks {
  static constexpr bool kWantsDetail = true;
  static constexpr bool kBatchRetire = false;
  static constexpr bool kBlockCost = false;

  std::uint32_t base = 0;
  std::vector<std::uint64_t>* counts = nullptr;

  void on_retire(const isa::DecodedInsn&, const sim::RetireInfo& info) {
    const std::uint32_t off = info.pc - base;
    if (info.pc >= base && (off >> 2) < counts->size()) ++(*counts)[off >> 2];
  }
};

}  // namespace

PcProfile profile_pcs(
    const asmkit::Program& program,
    const std::vector<std::pair<std::uint32_t, std::vector<std::uint8_t>>>&
        inputs,
    std::uint64_t max_insns) {
  PcProfile profile;
  profile.base = program.base();
  profile.counts.assign((program.size() + 3) / 4, 0);

  sim::Platform platform;
  platform.load(program);
  for (const auto& [addr, bytes] : inputs) {
    platform.bus().write_block(addr, bytes.data(), bytes.size());
  }

  PcCountHooks hooks;
  hooks.base = profile.base;
  hooks.counts = &profile.counts;
  sim::Executor<PcCountHooks> exec(platform.cpu(), platform.bus(), hooks);
  exec.set_decode_cache(platform.code_base(), platform.decode_cache());
  exec.set_block_cache(platform.block_cache());
  exec.run(max_insns);

  profile.halted = platform.cpu().halted;
  profile.instret = platform.cpu().instret;
  return profile;
}

std::map<std::uint32_t, std::uint64_t> block_totals(const Cfg& cfg,
                                                    const PcProfile& profile) {
  std::map<std::uint32_t, std::uint64_t> totals;
  for (const auto& [addr, b] : cfg.blocks) totals[addr] = profile.at(addr);
  return totals;
}

}  // namespace nfp::analyze
