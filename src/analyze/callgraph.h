// Interprocedural partitioning of a recovered CFG.
//
// The CFG builder gives call couples a single kCall edge and no edge to the
// return site, and return couples (`retl` = `jmpl %o7+8, %g0`) no edges at
// all. This module re-imposes procedure structure on top: starting from the
// program entry, every kCall target becomes a function entry, each function
// gets the set of blocks reachable from its entry through intra-procedural
// edges (with call blocks flowing to their static return site `call_pc + 8`
// instead of into the callee), and blocks are classified as returns, halts,
// conditional traps, faults, or unanalyzable indirect exits. The result
// feeds the bottom-up IPET solver: a callee-first topological order (or a
// named recursion cycle), plus per-function transitive register-write
// summaries for the counted-loop inference.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyze/cfg.h"
#include "analyze/loops.h"

namespace nfp::analyze {

// True for a `jmpl %o7+8, %g0` couple: the idiomatic leaf/epilogue return.
bool is_return_block(const BasicBlock& b);

struct CallSite {
  std::uint32_t block = 0;    // call couple block start
  std::uint32_t call_pc = 0;  // pc of the call instruction
  std::uint32_t callee = 0;   // callee entry address
  std::uint32_t cont = 0;     // static return site (call_pc + 8)
  bool callee_ok = false;     // callee entry is a recovered block
  bool cont_ok = false;       // continuation is a recovered block
};

struct IntraEdge {
  std::uint32_t to = 0;
  // Index into the source block's CfgEdge list; -1 marks the synthesized
  // call-continuation edge (call block -> return site).
  int cfg_edge = -1;
};

struct FuncInfo {
  std::uint32_t entry = 0;
  std::set<std::uint32_t> blocks;
  std::map<std::uint32_t, std::vector<IntraEdge>> edges;
  std::vector<CallSite> calls;
  std::vector<std::uint32_t> returns;       // retl-style return couples
  std::vector<std::uint32_t> halts;         // static `ta 0`
  std::vector<std::uint32_t> bad_indirect;  // jmpl not shaped like a return
  std::vector<std::uint32_t> fault_blocks;
  std::vector<std::uint32_t> trap_blocks;   // conditional Ticc (may trap)
  std::vector<std::uint32_t> dead_ends;     // no edges, none of the above
  // Integer registers this function may write, including everything its
  // callees may write (bit i = %r<i>; calls always set %o7).
  std::uint32_t reg_writes = 0;

  // Target-only view for the dominator/loop machinery.
  SuccMap succ_view() const {
    SuccMap out;
    for (const std::uint32_t b : blocks) out[b];  // every block present
    for (const auto& [b, es] : edges) {
      for (const IntraEdge& e : es) out[b].push_back(e.to);
    }
    return out;
  }
};

struct CallGraph {
  std::uint32_t root = 0;
  std::map<std::uint32_t, FuncInfo> functions;  // keyed by entry
  // Callee-first order (every callee precedes its callers); empty when the
  // graph is recursive.
  std::vector<std::uint32_t> topo;
  bool recursive = false;
  std::vector<std::uint32_t> cycle;  // one recursion cycle, entry addresses
};

// Never fails: structural defects (missing callees, dead ends, bad indirect
// exits) are recorded in the FuncInfo lists for the caller to judge.
CallGraph build_callgraph(const Cfg& cfg);

}  // namespace nfp::analyze
