#include "analyze/cfg.h"

#include <algorithm>
#include <cstdio>
#include <set>

#include "isa/names.h"

namespace nfp::analyze {
namespace {

using isa::Op;

// CTIs with an architectural delay slot. Ticc has none: the simulator
// advances sequentially after a non-taken (or halting) trap.
bool has_delay_slot(Op op) {
  return op == Op::kBicc || op == Op::kFbfcc || op == Op::kCall ||
         op == Op::kJmpl;
}

// True when the delay slot can never execute: annul with an unconditional
// outcome (ba,a / fba,a skip always; bn,a / fbn,a annul always because the
// branch is never taken).
bool slot_never_executes(const isa::DecodedInsn& d) {
  if (!d.annul) return false;
  if (d.op != Op::kBicc && d.op != Op::kFbfcc) return false;
  return d.cond == 8 || d.cond == 0;
}

std::string hex(std::uint32_t value) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%08x", value);
  return buf;
}

class Builder {
 public:
  explicit Builder(const asmkit::Program& program) : prog_(program) {
    cfg_.entry = program.entry();
    cfg_.image_base = program.base();
    cfg_.image_end = program.end();
    cfg_.text_end = program.text_end();
  }

  Cfg run() {
    if ((cfg_.entry & 3) != 0 || !word_in_image(cfg_.entry)) {
      emit(Severity::kError, LintCode::kEntryOffImage, cfg_.entry,
           "entry point outside the image");
      return std::move(cfg_);
    }
    discover();
    for (const std::uint32_t leader : leaders_) {
      if (processed_.count(leader) != 0) build_block(leader);
    }
    report_unreachable();
    return std::move(cfg_);
  }

 private:
  bool word_in_image(std::uint32_t addr) const {
    return addr >= cfg_.image_base && addr + 4 <= cfg_.image_end &&
           addr + 4 > addr;
  }

  void emit(Severity severity, LintCode code, std::uint32_t pc,
            std::string message) {
    if (!emitted_.insert({static_cast<int>(code), pc}).second) return;
    cfg_.findings.push_back(
        LintFinding{severity, code, pc, std::move(message)});
  }

  // Phase 1: instruction-level reachability from the entry. Every address is
  // processed once as a sequential execution point; control-transfer couples
  // are handled atomically so successor sets respect delay-slot semantics.
  void discover() {
    push_leader(cfg_.entry);
    while (!worklist_.empty()) {
      const std::uint32_t pc = worklist_.back();
      worklist_.pop_back();
      if (!processed_.insert(pc).second) continue;
      step_discover(pc);
    }
  }

  void push_leader(std::uint32_t addr) {
    leaders_.insert(addr);
    if (processed_.count(addr) == 0) worklist_.push_back(addr);
  }

  // Sequential successor used by fall-throughs and call returns; checks that
  // another instruction can actually be fetched there.
  void push_fallthrough(std::uint32_t from, std::uint32_t addr) {
    if (!word_in_image(addr)) {
      emit(Severity::kError, LintCode::kFallThroughOffImage, from,
           "execution falls through the end of the image");
      return;
    }
    push_leader(addr);
  }

  void push_target(std::uint32_t from, std::uint32_t target) {
    if (!word_in_image(target)) {
      emit(Severity::kError, LintCode::kBranchTargetOffImage, from,
           "control transfer targets " + hex(target) + ", outside the image");
      return;
    }
    push_leader(target);
  }

  void step_discover(std::uint32_t pc) {
    reachable_.insert(pc);
    const isa::DecodedInsn d = isa::decode(prog_.word_at(pc));
    if (d.op == Op::kInvalid) {
      emit(Severity::kError, LintCode::kIllegalEncoding, pc,
           "illegal encoding " + hex(d.raw) + " on a reachable path");
      return;
    }
    if (has_delay_slot(d.op)) {
      couple_discover(pc, d);
      return;
    }
    if (d.op == Op::kTicc) {
      if (d.cond == 8) {
        // Trap-always: a static halt if the trap number is known to be 0.
        if (d.rs1 == 0 && d.has_imm && (d.imm & 0x7F) != 0) {
          emit(Severity::kError, LintCode::kStaticTrapNotHalt, pc,
               "trap-always with software trap " +
                   std::to_string(d.imm & 0x7F) +
                   " is a guaranteed simulator fault");
        }
        return;  // terminator either way
      }
      push_fallthrough(pc, pc + 4);  // conditional trap: block boundary
      return;
    }
    // Plain sequential instruction: the successor is not a leader.
    if (!word_in_image(pc + 4)) {
      emit(Severity::kError, LintCode::kFallThroughOffImage, pc,
           "execution falls through the end of the image");
      return;
    }
    worklist_.push_back(pc + 4);
  }

  void couple_discover(std::uint32_t pc, const isa::DecodedInsn& d) {
    const std::uint32_t slot_pc = pc + 4;
    if (!word_in_image(slot_pc)) {
      emit(Severity::kError, LintCode::kDelaySlotOffImage, pc,
           "delay slot runs off the image");
      return;
    }
    reachable_.insert(slot_pc);
    const isa::DecodedInsn slot = isa::decode(prog_.word_at(slot_pc));
    const bool never = slot_never_executes(d);
    if (slot.op == Op::kInvalid) {
      if (never) {
        emit(Severity::kWarning, LintCode::kIllegalInAnnulledSlot, slot_pc,
             "illegal encoding in an always-annulled delay slot");
      } else {
        emit(Severity::kError, LintCode::kIllegalEncoding, slot_pc,
             "illegal encoding " + hex(slot.raw) + " in a delay slot");
      }
    } else if (isa::is_control(slot.op)) {
      if (never) {
        emit(Severity::kWarning, LintCode::kCtiInAnnulledSlot, slot_pc,
             "control transfer in an always-annulled delay slot");
      } else {
        emit(Severity::kError, LintCode::kCtiInDelaySlot, slot_pc,
             "control transfer in the delay slot of the " +
                 std::string(isa::mnemonic(d.op)) + " at " + hex(pc));
      }
    }
    switch (d.op) {
      case Op::kBicc:
      case Op::kFbfcc: {
        const std::uint32_t target = pc + static_cast<std::uint32_t>(d.imm);
        if (d.cond != 0) push_target(pc, target);            // can be taken
        if (d.cond != 8) push_fallthrough(pc, pc + 8);       // can fall through
        break;
      }
      case Op::kCall:
        push_target(pc, pc + static_cast<std::uint32_t>(d.imm));
        // The simulator's flat call model: assume callees return.
        push_fallthrough(pc, pc + 8);
        break;
      default:  // jmpl: indirect; a link-register write implies a call site
        if (d.rd != 0) push_fallthrough(pc, pc + 8);
        break;
    }
  }

  // Phase 2: carve blocks out of the reachable instruction stream, one per
  // leader, each ending at the next leader, a CTI couple, or a terminator.
  void build_block(std::uint32_t leader) {
    BasicBlock block;
    block.start = leader;
    std::uint32_t pc = leader;
    for (;;) {
      if (!word_in_image(pc)) {
        block.faults = true;
        break;
      }
      const isa::DecodedInsn d = isa::decode(prog_.word_at(pc));
      if (d.op == Op::kInvalid) {
        block.faults = true;
        break;
      }
      block.insns.push_back(d);
      ++block.op_counts[static_cast<std::size_t>(d.op)];
      if (has_delay_slot(d.op)) {
        finish_couple(block, pc, d);
        pc += 8;
        break;
      }
      if (d.op == Op::kTicc) {
        block.has_cti = true;
        block.cti_pc = pc;
        block.cti_op = d.op;
        if (d.cond == 8) {
          block.halt = !(d.rs1 == 0 && d.has_imm && (d.imm & 0x7F) != 0);
          block.faults = !block.halt;
        } else if (word_in_image(pc + 4)) {
          block.edges.push_back(
              CfgEdge{CfgEdge::Kind::kUntaken, pc + 4, true});
        }
        pc += 4;
        break;
      }
      pc += 4;
      if (leaders_.count(pc) != 0) {
        block.edges.push_back(CfgEdge{CfgEdge::Kind::kFallThrough, pc, true});
        break;
      }
    }
    block.end = pc;
    cfg_.blocks.emplace(leader, std::move(block));
  }

  void finish_couple(BasicBlock& block, std::uint32_t pc,
                     const isa::DecodedInsn& d) {
    block.has_cti = true;
    block.cti_pc = pc;
    block.cti_op = d.op;
    const bool never = slot_never_executes(d);
    block.slot_annulled_always = never;
    if (word_in_image(pc + 4)) {
      const isa::DecodedInsn slot = isa::decode(prog_.word_at(pc + 4));
      if (slot.op != Op::kInvalid) {
        block.has_slot = true;
        block.insns.push_back(slot);
        ++block.op_counts[static_cast<std::size_t>(slot.op)];
      } else {
        block.faults = !never;
      }
    } else {
      block.faults = true;
      return;
    }
    const auto add_edge = [&](CfgEdge::Kind kind, std::uint32_t target,
                              bool slot_runs) {
      if (leaders_.count(target) != 0) {
        block.edges.push_back(CfgEdge{kind, target, slot_runs});
      }
    };
    switch (d.op) {
      case Op::kBicc:
      case Op::kFbfcc: {
        const std::uint32_t target = pc + static_cast<std::uint32_t>(d.imm);
        // The annul bit skips the slot on the not-taken path (and always,
        // for unconditional branches).
        if (d.cond != 0) add_edge(CfgEdge::Kind::kTaken, target, !d.annul || d.cond != 8);
        if (d.cond != 8) add_edge(CfgEdge::Kind::kUntaken, pc + 8, !d.annul);
        break;
      }
      case Op::kCall:
        add_edge(CfgEdge::Kind::kCall, pc + static_cast<std::uint32_t>(d.imm),
                 true);
        break;
      default:
        block.indirect = true;
        break;
    }
  }

  // Warn about plausible code (valid-decoding word runs inside the text
  // section) that no reachable path covers.
  void report_unreachable() {
    constexpr std::size_t kMaxRuns = 16;
    std::size_t runs = 0;
    std::uint32_t run_start = 0, run_len = 0;
    const auto flush = [&] {
      if (run_len == 0) return;
      if (runs < kMaxRuns) {
        emit(Severity::kWarning, LintCode::kUnreachableCode, run_start,
             std::to_string(run_len) + " unreachable instruction(s)");
      }
      ++runs;
      run_len = 0;
    };
    for (std::uint32_t pc = cfg_.image_base; pc + 4 <= cfg_.text_end;
         pc += 4) {
      const bool code = reachable_.count(pc) == 0 &&
                        isa::decode(prog_.word_at(pc)).op != Op::kInvalid;
      if (code) {
        if (run_len == 0) run_start = pc;
        ++run_len;
      } else {
        flush();
      }
    }
    flush();
  }

  const asmkit::Program& prog_;
  Cfg cfg_;
  std::vector<std::uint32_t> worklist_;
  std::set<std::uint32_t> processed_;
  std::set<std::uint32_t> reachable_;
  std::set<std::uint32_t> leaders_;
  std::set<std::pair<int, std::uint32_t>> emitted_;
};

}  // namespace

const char* to_string(LintCode code) {
  switch (code) {
    case LintCode::kEntryOffImage: return "entry-off-image";
    case LintCode::kIllegalEncoding: return "illegal-encoding";
    case LintCode::kCtiInDelaySlot: return "cti-in-delay-slot";
    case LintCode::kCtiInAnnulledSlot: return "cti-in-annulled-slot";
    case LintCode::kIllegalInAnnulledSlot: return "illegal-in-annulled-slot";
    case LintCode::kDelaySlotOffImage: return "delay-slot-off-image";
    case LintCode::kFallThroughOffImage: return "fall-through-off-image";
    case LintCode::kBranchTargetOffImage: return "branch-target-off-image";
    case LintCode::kStaticTrapNotHalt: return "static-trap-not-halt";
    case LintCode::kUnreachableCode: return "unreachable-code";
  }
  return "unknown";
}

Cfg build_cfg(const asmkit::Program& program) { return Builder(program).run(); }

std::string render(const LintFinding& f) {
  return std::string(f.severity == Severity::kError ? "error" : "warning") +
         " " + hex(f.pc) + " " + to_string(f.code) + ": " + f.message;
}

std::string dump(const Cfg& cfg) {
  std::string out;
  char buf[128];
  for (const auto& [start, b] : cfg.blocks) {
    std::snprintf(buf, sizeof buf, "block %08x..%08x  %u insn(s)%s%s%s%s\n",
                  b.start, b.end, b.insn_count(),
                  b.has_cti ? "  cti" : "", b.halt ? "  halt" : "",
                  b.indirect ? "  indirect" : "", b.faults ? "  faults" : "");
    out += buf;
    for (const auto& e : b.edges) {
      const char* kind = e.kind == CfgEdge::Kind::kTaken      ? "taken"
                         : e.kind == CfgEdge::Kind::kUntaken  ? "untaken"
                         : e.kind == CfgEdge::Kind::kCall     ? "call"
                                                              : "fall";
      std::snprintf(buf, sizeof buf, "  -> %08x  %s%s\n", e.target, kind,
                    e.includes_slot ? "" : "  (slot annulled)");
      out += buf;
    }
  }
  for (const auto& f : cfg.findings) out += render(f) + "\n";
  return out;
}

}  // namespace nfp::analyze
