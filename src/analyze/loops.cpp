#include "analyze/loops.h"

#include <algorithm>
#include <cstdio>

#include "analyze/cost.h"

namespace nfp::analyze {
namespace {

using isa::Cond;
using isa::Op;

int order_of(const std::map<std::uint32_t, int>& order, std::uint32_t b) {
  const auto it = order.find(b);
  return it == order.end() ? -1 : it->second;
}

}  // namespace

bool DomTree::dominates(std::uint32_t a, std::uint32_t b) const {
  // idom chains walk strictly upward in RPO, so climb from b until we pass a.
  std::map<std::uint32_t, int> order;
  for (std::size_t i = 0; i < rpo.size(); ++i) {
    order[rpo[i]] = static_cast<int>(i);
  }
  const int oa = order_of(order, a);
  int ob = order_of(order, b);
  if (oa < 0 || ob < 0) return false;
  std::uint32_t at = b;
  while (ob > oa) {
    at = idom.at(at);
    ob = order_of(order, at);
  }
  return at == a;
}

DomTree build_domtree(std::uint32_t entry, const SuccMap& succs) {
  DomTree tree;
  // Post-order DFS, then reverse. Only blocks reachable from the entry.
  std::map<std::uint32_t, int> state;  // 0 unseen, 1 visiting, 2 done
  std::vector<std::pair<std::uint32_t, std::size_t>> stack;
  std::vector<std::uint32_t> post;
  stack.push_back({entry, 0});
  state[entry] = 1;
  while (!stack.empty()) {
    auto& [b, next] = stack.back();
    const auto it = succs.find(b);
    const std::size_t fan = it == succs.end() ? 0 : it->second.size();
    if (next >= fan) {
      post.push_back(b);
      state[b] = 2;
      stack.pop_back();
      continue;
    }
    const std::uint32_t t = it->second[next++];
    if (state[t] == 0 && succs.count(t) != 0) {
      state[t] = 1;
      stack.push_back({t, 0});
    }
  }
  tree.rpo.assign(post.rbegin(), post.rend());

  std::map<std::uint32_t, int> order;
  for (std::size_t i = 0; i < tree.rpo.size(); ++i) {
    order[tree.rpo[i]] = static_cast<int>(i);
  }
  std::map<std::uint32_t, std::vector<std::uint32_t>> preds;
  for (const auto& [b, ts] : succs) {
    if (order.count(b) == 0) continue;  // unreachable source
    for (const std::uint32_t t : ts) {
      if (order.count(t) != 0) preds[t].push_back(b);
    }
  }

  // Cooper/Harvey/Kennedy iterative idom on RPO.
  tree.idom[entry] = entry;
  const auto intersect = [&](std::uint32_t a, std::uint32_t b) {
    while (a != b) {
      while (order.at(a) > order.at(b)) a = tree.idom.at(a);
      while (order.at(b) > order.at(a)) b = tree.idom.at(b);
    }
    return a;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (const std::uint32_t b : tree.rpo) {
      if (b == entry) continue;
      std::uint32_t new_idom = 0;
      bool have = false;
      for (const std::uint32_t p : preds[b]) {
        if (tree.idom.count(p) == 0) continue;  // not yet processed
        new_idom = have ? intersect(new_idom, p) : p;
        have = true;
      }
      if (!have) continue;
      const auto it = tree.idom.find(b);
      if (it == tree.idom.end() || it->second != new_idom) {
        tree.idom[b] = new_idom;
        changed = true;
      }
    }
  }
  return tree;
}

LoopForest find_natural_loops(std::uint32_t entry, const SuccMap& succs,
                              const DomTree& dom) {
  LoopForest forest;
  std::map<std::uint32_t, std::vector<std::uint32_t>> preds;
  for (const auto& [b, ts] : succs) {
    for (const std::uint32_t t : ts) preds[t].push_back(b);
  }

  // DFS coloring: an edge into a gray node is retreating. Retreating with a
  // dominating target = natural back edge; otherwise the region is
  // irreducible.
  std::map<std::uint32_t, int> color;  // 0 unseen, 1 on stack, 2 done
  std::vector<std::pair<std::uint32_t, std::size_t>> stack;
  std::map<std::uint32_t, NaturalLoop> loops;
  stack.push_back({entry, 0});
  color[entry] = 1;
  while (!stack.empty()) {
    auto& [b, next] = stack.back();
    const auto it = succs.find(b);
    const std::size_t fan = it == succs.end() ? 0 : it->second.size();
    if (next >= fan) {
      color[b] = 2;
      stack.pop_back();
      continue;
    }
    const std::uint32_t t = it->second[next++];
    if (succs.count(t) == 0) continue;
    const int c = color[t];
    if (c == 1) {  // retreating edge b -> t
      if (!dom.dominates(t, b)) {
        if (!forest.irreducible) {
          forest.irreducible = true;
          forest.offender_from = b;
          forest.offender_to = t;
        }
        continue;
      }
      NaturalLoop& loop = loops[t];
      loop.header = t;
      loop.latches.push_back(b);
      loop.body.insert(t);
      std::vector<std::uint32_t> work;
      if (loop.body.insert(b).second) work.push_back(b);
      while (!work.empty()) {
        const std::uint32_t x = work.back();
        work.pop_back();
        for (const std::uint32_t p : preds[x]) {
          if (succs.count(p) == 0) continue;
          if (loop.body.insert(p).second) work.push_back(p);
        }
      }
    } else if (c == 0) {
      color[t] = 1;
      stack.push_back({t, 0});
    }
  }

  for (auto& [h, loop] : loops) forest.loops.push_back(std::move(loop));
  // Nesting: the innermost enclosing loop is the smallest other body that
  // contains this header.
  for (std::size_t i = 0; i < forest.loops.size(); ++i) {
    std::size_t best_size = 0;
    for (std::size_t j = 0; j < forest.loops.size(); ++j) {
      if (i == j) continue;
      const NaturalLoop& outer = forest.loops[j];
      if (outer.body.count(forest.loops[i].header) == 0) continue;
      if (forest.loops[i].parent < 0 || outer.body.size() < best_size) {
        forest.loops[i].parent = static_cast<int>(j);
        best_size = outer.body.size();
      }
    }
  }
  // Depths follow parent chains (forest, so chains terminate).
  for (auto& loop : forest.loops) {
    int depth = 1;
    for (int p = loop.parent; p >= 0; p = forest.loops[p].parent) ++depth;
    loop.depth = depth;
  }
  return forest;
}

namespace {

using Int = __int128;

bool cond_supported(Cond c) {
  switch (c) {
    case Cond::kE: case Cond::kNe: case Cond::kG: case Cond::kGe:
    case Cond::kL: case Cond::kLe:
      return true;
    default:
      return false;
  }
}

Cond negate(Cond c) {
  switch (c) {
    case Cond::kE: return Cond::kNe;
    case Cond::kNe: return Cond::kE;
    case Cond::kG: return Cond::kLe;
    case Cond::kLe: return Cond::kG;
    case Cond::kGe: return Cond::kL;
    case Cond::kL: return Cond::kGe;
    default: return c;
  }
}

const char* cond_name(Cond c) {
  switch (c) {
    case Cond::kE: return "e";
    case Cond::kNe: return "ne";
    case Cond::kG: return "g";
    case Cond::kGe: return "ge";
    case Cond::kL: return "l";
    case Cond::kLe: return "le";
    default: return "?";
  }
}

// Smallest i >= 1 with `stay(a0 + (i-1)*d)` false; nullopt = never fails.
std::optional<std::uint64_t> fail_index(Cond stay, Int a0, Int d) {
  switch (stay) {
    case Cond::kNe: {  // fails when w == 0
      if (a0 == 0) return 1;
      if (d == 0) return std::nullopt;
      const Int k = (-a0) / d;
      if (k > 0 && k * d == -a0) return static_cast<std::uint64_t>(k) + 1;
      return std::nullopt;
    }
    case Cond::kE:  // stays only while w == 0
      if (a0 != 0) return 1;
      if (d != 0) return 2;
      return std::nullopt;
    case Cond::kG: {  // fails when w <= 0
      if (a0 <= 0) return 1;
      if (d >= 0) return std::nullopt;
      const Int k = (a0 + (-d) - 1) / (-d);  // ceil(a0 / -d)
      return static_cast<std::uint64_t>(k) + 1;
    }
    case Cond::kGe: {  // fails when w < 0
      if (a0 < 0) return 1;
      if (d >= 0) return std::nullopt;
      const Int k = a0 / (-d) + 1;
      return static_cast<std::uint64_t>(k) + 1;
    }
    case Cond::kL: {  // fails when w >= 0
      if (a0 >= 0) return 1;
      if (d <= 0) return std::nullopt;
      const Int k = ((-a0) + d - 1) / d;  // ceil(-a0 / d)
      return static_cast<std::uint64_t>(k) + 1;
    }
    case Cond::kLe: {  // fails when w > 0
      if (a0 > 0) return 1;
      if (d <= 0) return std::nullopt;
      const Int k = (-a0) / d + 1;
      return static_cast<std::uint64_t>(k) + 1;
    }
    default:
      return std::nullopt;
  }
}

// Executable instruction indices of a block: everything except a delay slot
// that never runs. `allow_slot` additionally excludes a conditional
// (annulled-sometimes) slot, for positions that must execute every pass.
bool slot_index(const BasicBlock& b, std::size_t i) {
  return b.has_slot && i == b.insns.size() - 1;
}

bool index_executes_always(const BasicBlock& b, std::size_t i) {
  if (!slot_index(b, i)) return true;
  if (b.slot_annulled_always) return false;
  // The slot of an annulling conditional branch runs only on the taken path.
  const isa::DecodedInsn& cti = b.insns[cti_index(b)];
  return !cti.annul;
}

struct StrideInsn {
  std::uint32_t block = 0;
  std::size_t index = 0;
  Int d = 0;
};

std::optional<Int> stride_of(const isa::DecodedInsn& d, std::uint8_t reg) {
  const bool add = d.op == Op::kAdd || d.op == Op::kAddcc;
  const bool sub = d.op == Op::kSub || d.op == Op::kSubcc;
  if (!add && !sub) return std::nullopt;
  if (!d.has_imm || d.rd != reg || d.rs1 != reg) return std::nullopt;
  const Int s = add ? Int(d.imm) : -Int(d.imm);
  if (s == 0) return std::nullopt;
  return s;
}

}  // namespace

std::optional<CountedBound> infer_counted_bound(
    const Cfg& cfg, const DomTree& dom, const std::set<std::uint32_t>& fblocks,
    const SuccMap& succs, const std::vector<NaturalLoop>& all_loops,
    const NaturalLoop& loop, const ClobberMask& clobbers) {
  const bool unique_latch = loop.latches.size() == 1;
  const std::uint32_t latch = unique_latch ? loop.latches.front() : 0;

  std::optional<CountedBound> best;

  for (const std::uint32_t test_addr : loop.body) {
    const auto tb_it = cfg.blocks.find(test_addr);
    if (tb_it == cfg.blocks.end()) continue;
    const BasicBlock& tb = tb_it->second;
    if (!tb.has_cti || tb.cti_op != Op::kBicc) continue;
    const isa::DecodedInsn& br = tb.insns[cti_index(tb)];

    // Every loop iteration must pass the test: it is the header, or the
    // unique latch (every cycle traverses a back edge).
    if (!(test_addr == loop.header ||
          (unique_latch && test_addr == latch))) {
      continue;
    }

    // The branch must split into one in-loop and one exiting edge.
    std::optional<std::uint32_t> taken_t, untaken_t;
    for (const CfgEdge& e : tb.edges) {
      if (e.kind == CfgEdge::Kind::kTaken) taken_t = e.target;
      if (e.kind == CfgEdge::Kind::kUntaken) untaken_t = e.target;
    }
    if (!taken_t || !untaken_t) continue;
    const bool taken_in = loop.body.count(*taken_t) != 0;
    const bool untaken_in = loop.body.count(*untaken_t) != 0;
    if (taken_in == untaken_in) continue;
    const Cond br_cond = static_cast<Cond>(br.cond);
    if (!cond_supported(br_cond)) continue;
    const Cond stay = taken_in ? br_cond : negate(br_cond);

    // Condition-code writer: last icc writer before the branch, same block.
    const isa::DecodedInsn* cw = nullptr;
    std::size_t cw_idx = 0;
    for (std::size_t i = cti_index(tb); i-- > 0;) {
      if (writes_icc(tb.insns[i].op)) {
        cw = &tb.insns[i];
        cw_idx = i;
        break;
      }
    }
    if (cw == nullptr) continue;

    std::uint8_t reg = 0;
    Int limit = 0;
    bool pre = false;
    std::optional<StrideInsn> stride;

    const bool combined =
        (cw->op == Op::kSubcc || cw->op == Op::kAddcc) && cw->has_imm &&
        cw->rd == cw->rs1 && cw->rd != isa::kRegG0 && cw->imm != 0;
    const bool compare = cw->op == Op::kSubcc && cw->rd == isa::kRegG0 &&
                         cw->rs1 != isa::kRegG0 && cw->has_imm;
    if (combined) {
      // subcc/addcc %r, s, %r: the stride IS the cc write; the test sees the
      // post-stride value.
      reg = cw->rd;
      limit = 0;
      pre = true;
      stride = StrideInsn{test_addr, cw_idx,
                          cw->op == Op::kAddcc ? Int(cw->imm) : -Int(cw->imm)};
    } else if (compare) {
      // cmp %r, L (subcc %r, L, %g0): find the stride elsewhere.
      reg = cw->rs1;
      limit = Int(cw->imm);
      // Candidate stride positions, each guaranteed to execute exactly once
      // per test execution (soundness argument in docs/static_analysis.md):
      //  - in the test block itself (before or after the compare; the delay
      //    slot counts when never annulled);
      //  - in the unique latch when the test is the header, provided the
      //    latch's only in-loop successor is the header;
      //  - in the header when the test is the unique latch.
      std::vector<std::uint32_t> places{test_addr};
      if (test_addr == loop.header && unique_latch && latch != test_addr) {
        bool latch_only_to_header = true;
        const auto ls = succs.find(latch);
        if (ls != succs.end()) {
          for (const std::uint32_t t : ls->second) {
            if (loop.body.count(t) != 0 && t != loop.header) {
              latch_only_to_header = false;
            }
          }
        }
        if (latch_only_to_header) places.push_back(latch);
      }
      if (unique_latch && test_addr == latch && loop.header != latch) {
        places.push_back(loop.header);
      }
      bool ambiguous = false;
      for (const std::uint32_t place : places) {
        const BasicBlock& pb = cfg.blocks.at(place);
        for (std::size_t i = 0; i < pb.insns.size(); ++i) {
          if (place == test_addr && i == cw_idx) continue;
          if (!index_executes_always(pb, i)) continue;
          const auto s = stride_of(pb.insns[i], reg);
          if (!s) continue;
          if (stride) ambiguous = true;
          stride = StrideInsn{place, i, *s};
        }
      }
      if (!stride || ambiguous) continue;
      // Did the test see the post-stride value?
      if (stride->block == test_addr) {
        pre = stride->index < cw_idx;
      } else {
        pre = stride->block == loop.header;  // header stride, latch test
      }
    } else {
      continue;
    }

    // The stride (and, for the combined form, the cc write) must be the only
    // in-loop writer of the counter; calls may clobber it transitively.
    bool clean = true;
    for (const std::uint32_t a : loop.body) {
      const auto ab_it = cfg.blocks.find(a);
      if (ab_it == cfg.blocks.end()) continue;
      const BasicBlock& ab = ab_it->second;
      if ((clobbers(ab) >> reg) & 1u) {
        clean = false;
        break;
      }
      for (std::size_t i = 0; i < ab.insns.size(); ++i) {
        if (slot_index(ab, i) && ab.slot_annulled_always) continue;
        const isa::DecodedInsn& d = ab.insns[i];
        if (!writes_int_reg(d.op) || written_reg(d) != reg) continue;
        if (a == stride->block && i == stride->index) continue;
        clean = false;
        break;
      }
      if (!clean) break;
    }
    if (!clean) continue;

    // Initialisation: exactly one writer outside the loop (within the
    // function), `mov K, %r`, `sethi K, %r`, or an adjacent sethi+or pair.
    struct Writer {
      std::uint32_t block;
      std::size_t index;
      const isa::DecodedInsn* insn;
    };
    std::vector<Writer> writers;
    bool init_clean = true;
    for (const std::uint32_t a : fblocks) {
      if (loop.body.count(a) != 0) continue;
      const auto ab_it = cfg.blocks.find(a);
      if (ab_it == cfg.blocks.end()) continue;
      const BasicBlock& ab = ab_it->second;
      if ((clobbers(ab) >> reg) & 1u) {
        init_clean = false;
        break;
      }
      for (std::size_t i = 0; i < ab.insns.size(); ++i) {
        if (slot_index(ab, i) && ab.slot_annulled_always) continue;
        const isa::DecodedInsn& d = ab.insns[i];
        if (writes_int_reg(d.op) && written_reg(d) == reg) {
          writers.push_back({a, i, &d});
        }
      }
    }
    if (!init_clean) continue;

    std::optional<Int> init;
    std::uint32_t init_block = 0;
    if (writers.size() == 1) {
      const isa::DecodedInsn& d = *writers[0].insn;
      const bool is_mov = (d.op == Op::kOr || d.op == Op::kAdd) &&
                          d.rs1 == isa::kRegG0 && d.has_imm;
      if (is_mov || d.op == Op::kSethi) {
        init = Int(d.imm);
        init_block = writers[0].block;
      }
    } else if (writers.size() == 2 && writers[0].block == writers[1].block &&
               writers[1].index == writers[0].index + 1) {
      // sethi %hi(K), %r; or %r, %lo(K), %r
      const isa::DecodedInsn& hi = *writers[0].insn;
      const isa::DecodedInsn& lo = *writers[1].insn;
      if (hi.op == Op::kSethi && lo.op == Op::kOr && lo.rs1 == reg &&
          lo.has_imm) {
        init = Int(static_cast<std::int32_t>(
            static_cast<std::uint32_t>(hi.imm) |
            (static_cast<std::uint32_t>(lo.imm) & 0x3FFu)));
        init_block = writers[0].block;
      }
    }
    if (!init) continue;

    // The initialiser must run before every loop entry: it dominates the
    // header, and sits inside every loop that encloses this one (so outer
    // iterations re-initialise before re-entry).
    if (!dom.dominates(init_block, loop.header)) continue;
    bool reinit_ok = true;
    for (const NaturalLoop& outer : all_loops) {
      if (outer.header == loop.header) continue;
      if (outer.body.count(loop.header) == 0) continue;
      if (outer.body.count(init_block) == 0) reinit_ok = false;
    }
    if (!reinit_ok) continue;

    // Closed-form trip count on w_i = (K0 - L) + (i - 1 + pre) * d.
    const Int d = stride->d;
    const Int a0 = *init - limit + (pre ? d : 0);
    const auto trips = fail_index(stay, a0, d);
    if (!trips) continue;
    // No-wrap guard: the counter must stay well inside int32 so the icc
    // semantics match the integer model exactly.
    const Int mag = (*init < 0 ? -*init : *init) +
                    Int(*trips + 1) * (d < 0 ? -d : d);
    if (mag >= (Int(1) << 31)) continue;

    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "counter %%r%u init %lld step %+lld stays-while %s %lld "
                  "-> %llu header runs",
                  reg, static_cast<long long>(*init),
                  static_cast<long long>(d), cond_name(stay),
                  static_cast<long long>(limit),
                  static_cast<unsigned long long>(*trips));
    if (!best || *trips < best->bound) best = CountedBound{*trips, buf};
  }
  return best;
}

}  // namespace nfp::analyze
