#include "analyze/callgraph.h"

#include <algorithm>
#include <functional>

#include "analyze/cost.h"

namespace nfp::analyze {

using isa::Op;

bool is_return_block(const BasicBlock& b) {
  if (!b.indirect || !b.has_cti) return false;
  const isa::DecodedInsn& d = b.insns[cti_index(b)];
  return d.op == Op::kJmpl && d.rd == isa::kRegG0 && d.rs1 == isa::kRegO7 &&
         d.has_imm && d.imm == 8;
}

namespace {

// Blocks reachable from `entry` through intra-procedural flow; classifies
// terminators and records call sites along the way.
FuncInfo discover_function(const Cfg& cfg, std::uint32_t entry) {
  FuncInfo f;
  f.entry = entry;
  std::vector<std::uint32_t> work{entry};
  while (!work.empty()) {
    const std::uint32_t addr = work.back();
    work.pop_back();
    if (!f.blocks.insert(addr).second) continue;
    const auto it = cfg.blocks.find(addr);
    if (it == cfg.blocks.end()) continue;
    const BasicBlock& b = it->second;

    if (b.faults) f.fault_blocks.push_back(addr);
    if (b.halt) f.halts.push_back(addr);
    if (b.has_cti && b.cti_op == Op::kTicc && !b.halt && !b.faults) {
      f.trap_blocks.push_back(addr);
    }
    if (b.indirect) {
      if (is_return_block(b)) {
        f.returns.push_back(addr);
      } else {
        f.bad_indirect.push_back(addr);
      }
      continue;  // no static successors either way
    }

    bool is_call = false;
    for (std::size_t i = 0; i < b.edges.size(); ++i) {
      const CfgEdge& e = b.edges[i];
      if (e.kind == CfgEdge::Kind::kCall) {
        is_call = true;
        CallSite site;
        site.block = addr;
        site.call_pc = b.cti_pc;
        site.callee = e.target;
        site.cont = b.cti_pc + 8;
        site.callee_ok = cfg.blocks.count(site.callee) != 0;
        site.cont_ok = cfg.blocks.count(site.cont) != 0;
        f.calls.push_back(site);
        if (site.cont_ok) {
          f.edges[addr].push_back(IntraEdge{site.cont, -1});
          work.push_back(site.cont);
        }
      } else {
        if (cfg.blocks.count(e.target) == 0) continue;
        f.edges[addr].push_back(IntraEdge{e.target, static_cast<int>(i)});
        work.push_back(e.target);
      }
    }
    if (b.edges.empty() && !b.halt && !b.faults && !is_call) {
      f.dead_ends.push_back(addr);
    }
  }
  return f;
}

}  // namespace

CallGraph build_callgraph(const Cfg& cfg) {
  CallGraph cg;
  cg.root = cfg.entry;
  std::vector<std::uint32_t> work{cfg.entry};
  while (!work.empty()) {
    const std::uint32_t entry = work.back();
    work.pop_back();
    if (cg.functions.count(entry) != 0) continue;
    FuncInfo f = discover_function(cfg, entry);
    for (const CallSite& site : f.calls) {
      if (site.callee_ok && cg.functions.count(site.callee) == 0) {
        work.push_back(site.callee);
      }
    }
    cg.functions.emplace(entry, std::move(f));
  }

  // Callee-first topological order via DFS; a gray-node hit is recursion.
  std::map<std::uint32_t, int> color;  // 0 unseen, 1 on stack, 2 done
  std::vector<std::uint32_t> path;
  const std::function<bool(std::uint32_t)> visit = [&](std::uint32_t entry) {
    color[entry] = 1;
    path.push_back(entry);
    for (const CallSite& site : cg.functions.at(entry).calls) {
      if (!site.callee_ok) continue;
      const int c = color[site.callee];
      if (c == 1) {
        // Cut the recorded path down to the cycle.
        cg.recursive = true;
        const auto at = std::find(path.begin(), path.end(), site.callee);
        cg.cycle.assign(at, path.end());
        cg.cycle.push_back(site.callee);
        return false;
      }
      if (c == 0 && !visit(site.callee)) return false;
    }
    color[entry] = 2;
    path.pop_back();
    cg.topo.push_back(entry);
    return true;
  };
  if (!visit(cg.root)) cg.topo.clear();

  // Transitive register-write summaries. Own writes first, then propagate
  // callee masks to callers until fixpoint (handles recursion too).
  for (auto& [entry, f] : cg.functions) {
    for (const std::uint32_t addr : f.blocks) {
      const auto it = cfg.blocks.find(addr);
      if (it == cfg.blocks.end()) continue;
      for (const isa::DecodedInsn& d : it->second.insns) {
        if (writes_int_reg(d.op)) f.reg_writes |= 1u << (written_reg(d) & 31);
      }
    }
    if (!f.calls.empty()) f.reg_writes |= 1u << isa::kRegO7;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [entry, f] : cg.functions) {
      for (const CallSite& site : f.calls) {
        if (!site.callee_ok) continue;
        const std::uint32_t mask = cg.functions.at(site.callee).reg_writes;
        if ((f.reg_writes | mask) != f.reg_writes) {
          f.reg_writes |= mask;
          changed = true;
        }
      }
    }
  }
  return cg;
}

}  // namespace nfp::analyze
