#include "analyze/sweep.h"

#include <cstdio>

#include "isa/decode.h"
#include "isa/disasm.h"
#include "isa/encode.h"

namespace nfp::analyze {
namespace {

using isa::Category;
using isa::Op;

// All disassembly in the sweep renders against a fixed pc so branch/call
// targets are comparable between the original and the round-tripped word.
constexpr std::uint32_t kSweepPc = 0x40000000u;

std::uint64_t lcg_next(std::uint64_t& state) {
  state = state * 6364136223846793005ull + 1442695040888963407ull;
  return state >> 17;
}

// Independent field-level classification: valid/invalid plus the Table-I
// category, derived from the raw op/op2/op3/opf fields without consulting
// isa::Op. This duplicates the decode tables on purpose — the sweep's value
// is that two independently written mappings must agree over the whole
// encoding space.
struct FieldClass {
  bool valid = false;
  Category category = Category::kOther;
};

bool alu_op3_valid(std::uint32_t op3) {
  if (op3 <= 0x08) return true;
  switch (op3) {
    case 0x0A: case 0x0B: case 0x0C: case 0x0E: case 0x0F:
    case 0x1A: case 0x1B: case 0x1C: case 0x1E: case 0x1F:
    case 0x25: case 0x26: case 0x27: case 0x28: case 0x30:
    case 0x38: case 0x3A: case 0x3C: case 0x3D:
      return true;
    default:
      return op3 >= 0x10 && op3 <= 0x18;
  }
}

FieldClass classify_fields(std::uint32_t word) {
  const std::uint32_t op = word >> 30;
  switch (op) {
    case 0: {
      const std::uint32_t op2 = (word >> 22) & 0x7;
      if (op2 == 0x4) {
        const bool nop = ((word >> 25) & 0x1F) == 0 && (word & 0x3FFFFF) == 0;
        return {true, nop ? Category::kNop : Category::kOther};
      }
      if (op2 == 0x2 || op2 == 0x6) return {true, Category::kJump};
      return {};
    }
    case 1:
      return {true, Category::kJump};
    case 2: {
      const std::uint32_t op3 = (word >> 19) & 0x3F;
      if (op3 == 0x34) {  // FPop1
        switch ((word >> 5) & 0x1FF) {
          case 0x4D: case 0x4E:
            return {true, Category::kFpuDiv};
          case 0x29: case 0x2A:
            return {true, Category::kFpuSqrt};
          case 0x01: case 0x05: case 0x09: case 0x41: case 0x42: case 0x45:
          case 0x46: case 0x49: case 0x4A: case 0xC4: case 0xC6: case 0xC8:
          case 0xC9: case 0xD1: case 0xD2:
            return {true, Category::kFpuArith};
          default:
            return {};
        }
      }
      if (op3 == 0x35) {  // FPop2
        const std::uint32_t opf = (word >> 5) & 0x1FF;
        if (opf == 0x51 || opf == 0x52) return {true, Category::kFpuArith};
        return {};
      }
      if (!alu_op3_valid(op3)) return {};
      switch (op3) {
        case 0x38: case 0x3A:
          return {true, Category::kJump};
        case 0x28: case 0x30: case 0x3C: case 0x3D:
          return {true, Category::kOther};
        default:
          return {true, Category::kIntArith};
      }
    }
    default: {
      switch ((word >> 19) & 0x3F) {
        case 0x00: case 0x01: case 0x02: case 0x03: case 0x09: case 0x0A:
        case 0x20: case 0x23:
          return {true, Category::kMemLoad};
        case 0x04: case 0x05: case 0x06: case 0x07: case 0x24: case 0x27:
          return {true, Category::kMemStore};
        default:
          return {};
      }
    }
  }
}

// Bit mask of the don't-care bits of an accepted word: the asi field of
// register-form format-3 instructions, plus the reserved bit 29 of Ticc.
// A word whose don't-care bits are all zero is canonical and must survive
// reencode() bit-identically.
std::uint32_t dont_care_mask(std::uint32_t word) {
  const std::uint32_t op = word >> 30;
  if (op < 2) return 0;
  const std::uint32_t op3 = (word >> 19) & 0x3F;
  if (op == 2 && (op3 == 0x34 || op3 == 0x35)) return 0;
  std::uint32_t mask = 0;
  if (((word >> 13) & 1) == 0) mask |= 0x1FE0u;        // asi, register form
  if (op == 2 && op3 == 0x3A) mask |= 1u << 29;        // Ticc reserved bit
  return mask;
}

bool fields_equal(const isa::DecodedInsn& a, const isa::DecodedInsn& b) {
  return a.op == b.op && a.rd == b.rd && a.rs1 == b.rs1 && a.rs2 == b.rs2 &&
         a.cond == b.cond && a.annul == b.annul && a.has_imm == b.has_imm &&
         a.imm == b.imm;
}

// Expected category set per morph group; the dispatch grouping and the NFP
// categorisation are maintained independently and must stay consistent.
bool group_allows(isa::MorphGroup group, Category cat) {
  using isa::MorphGroup;
  switch (group) {
    case MorphGroup::kAddSub:
    case MorphGroup::kLogic:
    case MorphGroup::kShift:
    case MorphGroup::kMulDiv:
      return cat == Category::kIntArith;
    case MorphGroup::kYReg:
      return cat == Category::kOther;
    case MorphGroup::kMove:  // sethi, nop, save, restore
      return cat == Category::kOther || cat == Category::kNop;
    case MorphGroup::kLoad:
      return cat == Category::kMemLoad;
    case MorphGroup::kStore:
      return cat == Category::kMemStore;
    case MorphGroup::kCti:
      return cat == Category::kJump;
    case MorphGroup::kFpu:
      return cat == Category::kFpuArith || cat == Category::kFpuDiv ||
             cat == Category::kFpuSqrt;
    case MorphGroup::kInvalid:
      return false;
  }
  return false;
}

class Sweep {
 public:
  explicit Sweep(const SweepConfig& config) : cfg_(config) {
    category_ = cfg_.category ? cfg_.category
                              : [](Op op) { return isa::default_category(op); };
    rng_ = cfg_.seed;
  }

  SweepResult run() {
    build_samples();
    enumerate_fmt2();
    enumerate_call();
    enumerate_fmt3_alu();
    enumerate_fpop();
    enumerate_fmt3_mem();
    return std::move(result_);
  }

 private:
  void build_samples() {
    regs_ = {0, 1, 14, 15, 30, 31};
    while (regs_.size() < cfg_.reg_samples) {
      regs_.push_back(static_cast<std::uint8_t>(lcg_next(rng_) & 31));
    }
    simm13_ = {0, 1, 0x1FFF, 0x1000, 0x0FFF, 0x0AAA};
    while (simm13_.size() < cfg_.imm_samples) {
      simm13_.push_back(static_cast<std::uint32_t>(lcg_next(rng_) & 0x1FFF));
    }
    imm22_ = {0, 1, 0x200000, 0x3FFFFF, 0x1FFFFF, 0x155555};
    while (imm22_.size() < cfg_.imm_samples) {
      imm22_.push_back(static_cast<std::uint32_t>(lcg_next(rng_) & 0x3FFFFF));
    }
    disp30_ = {0, 1, 0x20000000, 0x3FFFFFFF, 0x1FFFFFFF, 0x15555555};
    while (disp30_.size() < 4 * cfg_.imm_samples) {
      disp30_.push_back(
          static_cast<std::uint32_t>(lcg_next(rng_) & 0x3FFFFFFF));
    }
    asi_ = {0x01, 0x80, 0xFF};
    while (asi_.size() < cfg_.asi_samples) {
      asi_.push_back(static_cast<std::uint32_t>(lcg_next(rng_) & 0xFF));
    }
  }

  FamilyStats& family(const std::string& name) {
    for (auto& f : result_.families) {
      if (f.family == name) return f;
    }
    result_.families.push_back(FamilyStats{name, 0, 0, 0, {}});
    return result_.families.back();
  }

  void finding(std::uint32_t word, const char* check, std::string detail) {
    ++result_.findings_total;
    if (result_.findings.size() < cfg_.max_findings) {
      result_.findings.push_back(SweepFinding{word, check, std::move(detail)});
    }
  }

  void check_word(std::uint32_t word, FamilyStats& fam) {
    ++result_.enumerated;
    ++fam.enumerated;

    const isa::DecodedInsn d = isa::decode(word);
    const FieldClass expect = classify_fields(word);
    const bool accepted = d.op != Op::kInvalid;

    if (accepted != expect.valid) {
      finding(word, "accept",
              accepted ? "decoder accepts a field-invalid encoding"
                       : "decoder rejects a field-valid encoding");
    }
    if (!accepted) {
      ++result_.rejected;
      ++fam.rejected;
      // Rejection must agree across every path: reencode refuses, and the
      // disassembler renders an explicit illegal marker.
      if (isa::reencode(d).has_value()) {
        finding(word, "roundtrip", "reencode() accepts an invalid decode");
      }
      if (isa::disassemble(d, kSweepPc).find("invalid") == std::string::npos) {
        finding(word, "disasm", "invalid word renders without marker");
      }
      return;
    }

    ++result_.accepted;
    ++fam.accepted;
    const Category cat = category_(d.op);
    ++fam.categories[static_cast<std::size_t>(cat)];

    if (cat != expect.category) {
      finding(word, "category",
              std::string("category map says '") +
                  std::string(isa::to_string(cat)) + "', encoding fields say '" +
                  std::string(isa::to_string(expect.category)) + "'");
    }

    const isa::MorphGroup group = isa::morph_group(d.op);
    if (!group_allows(group, cat)) {
      finding(word, "morph-group", "morph group disagrees with category");
    }
    if (isa::ends_block(d) != (group == isa::MorphGroup::kCti)) {
      finding(word, "morph-group", "ends_block() disagrees with morph group");
    }

    const auto rw = isa::reencode(d);
    if (!rw.has_value()) {
      finding(word, "roundtrip", "reencode() rejects an accepted decode");
      return;
    }
    const isa::DecodedInsn d2 = isa::decode(*rw);
    if (!fields_equal(d, d2)) {
      finding(word, "roundtrip", "re-decoded fields differ");
      return;
    }
    if ((word & dont_care_mask(word)) == 0 && *rw != word) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "canonical word reencodes to 0x%08x",
                    *rw);
      finding(word, "canonical", buf);
    }
    if (isa::disassemble(d, kSweepPc) != isa::disassemble(d2, kSweepPc)) {
      finding(word, "disasm", "disassembly differs after round-trip");
    }
  }

  void enumerate_fmt2() {
    for (std::uint32_t op2 = 0; op2 < 8; ++op2) {
      const char* name = op2 == 0x4   ? "fmt2.sethi"
                         : op2 == 0x2 ? "fmt2.bicc"
                         : op2 == 0x6 ? "fmt2.fbfcc"
                                      : "fmt2.reserved";
      FamilyStats& fam = family(name);
      for (std::uint32_t top = 0; top < 32; ++top) {  // a+cond / rd field
        for (const std::uint32_t imm : imm22_) {
          check_word((top << 25) | (op2 << 22) | imm, fam);
        }
      }
    }
  }

  void enumerate_call() {
    FamilyStats& fam = family("fmt1.call");
    for (const std::uint32_t disp : disp30_) {
      check_word((1u << 30) | disp, fam);
    }
  }

  void fmt3_shapes(std::uint32_t op, std::uint32_t op3, FamilyStats& fam) {
    const std::uint32_t head = (op << 30) | (op3 << 19);
    for (const std::uint8_t rd : regs_) {
      for (const std::uint8_t rs1 : regs_) {
        const std::uint32_t base =
            head | (std::uint32_t{rd} << 25) | (std::uint32_t{rs1} << 14);
        for (const std::uint32_t simm : simm13_) {
          check_word(base | (1u << 13) | simm, fam);
        }
        for (const std::uint8_t rs2 : regs_) {
          check_word(base | rs2, fam);  // canonical register form
          for (const std::uint32_t asi : asi_) {
            check_word(base | (asi << 5) | rs2, fam);
          }
        }
      }
    }
  }

  void enumerate_fmt3_alu() {
    FamilyStats& fam = family("fmt3.alu");
    for (std::uint32_t op3 = 0; op3 < 0x40; ++op3) {
      if (op3 == 0x34 || op3 == 0x35) continue;
      fmt3_shapes(2, op3, fam);
    }
  }

  void enumerate_fpop() {
    for (const std::uint32_t op3 : {0x34u, 0x35u}) {
      FamilyStats& fam = family(op3 == 0x34 ? "fmt3.fpop1" : "fmt3.fpop2");
      const std::uint32_t head = (2u << 30) | (op3 << 19);
      for (std::uint32_t opf = 0; opf < 0x200; ++opf) {
        for (const std::uint8_t rd : regs_) {
          for (const std::uint8_t rs1 : regs_) {
            for (const std::uint8_t rs2 : regs_) {
              check_word(head | (std::uint32_t{rd} << 25) |
                             (std::uint32_t{rs1} << 14) | (opf << 5) | rs2,
                         fam);
            }
          }
        }
      }
    }
  }

  void enumerate_fmt3_mem() {
    FamilyStats& fam = family("fmt3.mem");
    for (std::uint32_t op3 = 0; op3 < 0x40; ++op3) {
      fmt3_shapes(3, op3, fam);
    }
  }

  const SweepConfig& cfg_;
  std::function<Category(Op)> category_;
  std::uint64_t rng_ = 0;
  std::vector<std::uint8_t> regs_;
  std::vector<std::uint32_t> simm13_, imm22_, disp30_, asi_;
  SweepResult result_;
};

}  // namespace

std::string SweepResult::table() const {
  std::string out =
      "# family enumerated accepted rejected int jump load store nop other "
      "fparith fpdiv fpsqrt\n";
  for (const auto& f : families) {
    char buf[256];
    std::snprintf(buf, sizeof buf, "%s %llu %llu %llu", f.family.c_str(),
                  static_cast<unsigned long long>(f.enumerated),
                  static_cast<unsigned long long>(f.accepted),
                  static_cast<unsigned long long>(f.rejected));
    out += buf;
    for (const auto count : f.categories) {
      std::snprintf(buf, sizeof buf, " %llu",
                    static_cast<unsigned long long>(count));
      out += buf;
    }
    out += '\n';
  }
  return out;
}

SweepResult run_sweep(const SweepConfig& config) {
  return Sweep(config).run();
}

}  // namespace nfp::analyze
