// A small in-tree LP core for the IPET flow solver: two-phase primal
// simplex on a dense tableau over exact rationals.
//
// Scope is deliberately narrow — CFG-sized problems (hundreds of variables,
// hundreds of rows), non-negative variables, equality and <= rows. Exact
// __int128 rational arithmetic removes every numerical-tolerance question
// from the soundness argument: an optimum is an exact vertex, and the only
// failure modes are structural (infeasible/unbounded) or resource-bounded
// (coefficient overflow, iteration cap), both of which the caller turns
// into an explicit refusal instead of a wrong bound.
//
// Phase 1 (artificial minimisation) depends only on the constraint set, so
// one Simplex instance solves many objectives over the same polytope — the
// IPET solver runs 2 senses x 3 metrics per function from a single phase-1
// basis.
#pragma once

#include <cstdint>
#include <vector>

namespace nfp::analyze::lp {

// Thrown when __int128 rational arithmetic would overflow; callers catch it
// and refuse the analysis rather than round.
struct LpOverflow {};

class Rat {
 public:
  Rat() = default;
  Rat(long long n) : n_(n) {}  // NOLINT(google-explicit-constructor)
  static Rat frac(long long num, long long den);

  Rat operator+(const Rat& o) const;
  Rat operator-(const Rat& o) const;
  Rat operator*(const Rat& o) const;
  Rat operator/(const Rat& o) const;
  Rat operator-() const;
  bool operator==(const Rat& o) const { return n_ == o.n_ && d_ == o.d_; }
  bool operator!=(const Rat& o) const { return !(*this == o); }
  bool operator<(const Rat& o) const;
  bool operator>(const Rat& o) const { return o < *this; }
  bool operator<=(const Rat& o) const { return !(o < *this); }
  bool operator>=(const Rat& o) const { return !(*this < o); }

  bool is_zero() const { return n_ == 0; }
  int sign() const { return n_ == 0 ? 0 : (n_ < 0 ? -1 : 1); }
  double to_double() const;
  // Directed conversion: the returned double is guaranteed >= (round_up)
  // or <= (!round_up) the exact rational; exact values convert exactly.
  double to_double_dir(bool round_up) const;

 private:
  Rat(__int128 n, __int128 d) : n_(n), d_(d) { normalize(); }
  void normalize();
  __int128 n_ = 0;
  __int128 d_ = 1;
};

struct Term {
  int var = 0;
  Rat coef;
};

enum class RowKind { kEq, kLe };

struct Row {
  RowKind kind = RowKind::kEq;
  std::vector<Term> terms;
  Rat rhs;
};

struct Problem {
  int num_vars = 0;  // structural variables, all >= 0
  std::vector<Row> rows;
};

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterLimit };

struct Solution {
  LpStatus status = LpStatus::kInfeasible;
  Rat objective;
  std::vector<Rat> x;  // structural variable values (only when kOptimal)
  std::uint64_t pivots = 0;
};

class Simplex {
 public:
  // Runs phase 1. May throw LpOverflow.
  explicit Simplex(const Problem& p);

  bool feasible() const { return feasible_; }
  std::uint64_t phase1_pivots() const { return phase1_pivots_; }

  // Optimizes `objective` (size num_vars) over the phase-1 polytope. Each
  // call restarts from the stored phase-1 basis. May throw LpOverflow.
  Solution optimize(const std::vector<Rat>& objective, bool maximize) const;

 private:
  int n_ = 0;         // structural columns
  int cols_ = 0;      // total columns (structural + slack + artificial)
  int art_begin_ = 0;  // first artificial column
  bool feasible_ = false;
  std::uint64_t phase1_pivots_ = 0;
  std::vector<std::vector<Rat>> tab_;  // m rows x (cols_ + 1), rhs last
  std::vector<int> basis_;             // column basic in each row
};

}  // namespace nfp::analyze::lp
