// Shared block-pricing helpers for the static analyzers (bounds, ipet).
//
// A basic block's cost depends on how it is left: the CTI pays `cycles` on
// the taken path and `cycles_alt` on the untaken one, and the delay slot
// retires only on edges that include it (annul semantics). Keeping these
// rules in one place guarantees the Dijkstra lower bounds and the IPET flow
// solver price identical paths identically — the bench asserts exact
// equality between them on loop-free kernels.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>

#include "analyze/cfg.h"
#include "board/cost_model.h"
#include "nfp/scheme.h"

namespace nfp::analyze {

inline bool writes_icc(isa::Op op) {
  using isa::Op;
  switch (op) {
    case Op::kAddcc: case Op::kAddxcc: case Op::kSubcc: case Op::kSubxcc:
    case Op::kAndcc: case Op::kAndncc: case Op::kOrcc: case Op::kOrncc:
    case Op::kXorcc: case Op::kXnorcc: case Op::kUmulcc: case Op::kSmulcc:
    case Op::kUdivcc: case Op::kSdivcc:
      return true;
    default:
      return false;
  }
}

inline bool writes_int_reg(isa::Op op) {
  using isa::Op;
  if (isa::is_fpu(op) || isa::is_store(op)) return false;
  switch (op) {
    case Op::kInvalid: case Op::kNop: case Op::kBicc: case Op::kFbfcc:
    case Op::kTicc: case Op::kWry: case Op::kLdf: case Op::kLddf:
      return false;
    default:
      return true;  // ALU, sethi, integer loads, jmpl, call, rdy
  }
}

inline std::uint8_t written_reg(const isa::DecodedInsn& d) {
  return d.op == isa::Op::kCall ? isa::kRegO7 : d.rd;
}

inline std::string hex(std::uint32_t value) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%08x", value);
  return buf;
}

// Index of the control-transfer instruction inside a block's insn list (the
// delay slot, when present, follows it).
inline std::size_t cti_index(const BasicBlock& b) {
  return b.insns.size() - 1 - (b.has_slot ? 1 : 0);
}

// How the block is left, for branch cycle selection.
enum class Exit { kTaken, kUntaken, kTerminal, kWorst };

struct BlockCost {
  double cycles = 0.0;
  double energy_nj = 0.0;
};

// Cost of executing `b` once and leaving it the given way. `include_slot`
// matters only for CTI couples (annul semantics).
inline BlockCost block_cost(const BasicBlock& b, const board::CostModel& costs,
                            Exit exit, bool include_slot) {
  BlockCost out;
  const std::size_t cti = b.has_cti ? cti_index(b) : b.insns.size();
  for (std::size_t i = 0; i < b.insns.size(); ++i) {
    if (b.has_slot && i == b.insns.size() - 1 && !include_slot) continue;
    const board::OpCost& c = costs.of(b.insns[i].op);
    std::uint32_t cycles = c.cycles;
    if (i == cti) {
      if (exit == Exit::kUntaken) cycles = c.cycles_alt;
      if (exit == Exit::kWorst) cycles = std::max(c.cycles, c.cycles_alt);
    }
    out.cycles += cycles;
    out.energy_nj += c.energy_nj;
  }
  return out;
}

inline void add_counts(model::OpCounts& acc, const BasicBlock& b,
                       bool include_slot, std::uint64_t times = 1) {
  for (std::size_t i = 0; i < b.insns.size(); ++i) {
    if (b.has_slot && i == b.insns.size() - 1 && !include_slot) continue;
    acc[static_cast<std::size_t>(b.insns[i].op)] += times;
  }
}

// Directional pricing against the board's dynamic residuals (the
// apply_residual kernel in board/hooks.h): SDRAM row misses add cycles and
// energy to memory ops, untaken control transfers retire at 0.8x base energy
// without redirecting the fetch stream, and operand toggling modulates every
// op's dynamic energy share by +-amplitude/2. kLower/kUpper bracket every
// per-op cost the board can charge, so a static interval priced this way
// contains the ground truth of a board configured with the same knobs.
enum class Dir { kLower, kUpper };

// The BoardConfig fields the envelope depends on (defaults match the default
// board: variation on, no data cache).
struct CostEnvelope {
  bool variation = true;    // BoardConfig::enable_variation
  double amplitude = 0.30;  // BoardConfig::data_energy_amplitude
  bool cache = false;       // BoardConfig::enable_cache (loads only)
};

inline BlockCost block_cost_dir(const BasicBlock& b,
                                const board::CostModel& costs, Exit exit,
                                bool include_slot, Dir dir,
                                const CostEnvelope& env = {}) {
  BlockCost out;
  const std::size_t cti = b.has_cti ? cti_index(b) : b.insns.size();
  const double half = env.variation ? env.amplitude * 0.5 : 0.0;
  for (std::size_t i = 0; i < b.insns.size(); ++i) {
    if (b.has_slot && i == b.insns.size() - 1 && !include_slot) continue;
    const isa::Op op = b.insns[i].op;
    const board::OpCost& c = costs.of(op);
    double cycles = c.cycles;
    double energy = c.energy_nj;
    switch (c.kind) {
      case sim::ResidualKind::kMemory:
        if (dir == Dir::kUpper) {
          cycles += costs.row_miss_cycles();
          energy = (energy + costs.row_miss_energy_nj()) * (1.0 + half);
        } else {
          if (env.cache && isa::is_load(op)) {
            cycles = std::min<double>(cycles, costs.cache_hit_cycles());
            energy = std::min(energy, costs.cache_hit_energy_nj());
          }
          energy *= 1.0 - half;
        }
        break;
      case sim::ResidualKind::kBranch:
        // Exit-resolved and exact, not an envelope: the direction is known
        // per flow variable, and taken/untaken costs have no spread.
        if (i == cti) {
          if (exit == Exit::kUntaken) {
            cycles = c.cycles_alt;
            energy *= 0.8;
          } else if (exit == Exit::kWorst) {
            cycles = std::max(c.cycles, c.cycles_alt);
            if (dir == Dir::kLower) energy *= 0.8;
          }
        }
        break;
      default:  // kNone / kFpVariable: operand-toggle modulation only
        energy = c.leakage_nj +
                 (energy - c.leakage_nj) *
                     (dir == Dir::kUpper ? 1.0 + half : 1.0 - half);
        break;
    }
    out.cycles += cycles;
    out.energy_nj += energy;
  }
  return out;
}

inline Exit edge_exit(const CfgEdge& e) {
  switch (e.kind) {
    case CfgEdge::Kind::kUntaken: return Exit::kUntaken;
    default: return Exit::kTaken;  // taken, call, fall-through (base cycles)
  }
}

// A block where execution can leave the program: static halt, fault,
// indirect jmpl, a dead end, or a conditional trap that may fire.
inline bool is_exit(const BasicBlock& b) {
  return b.halt || b.faults || b.indirect || b.edges.empty() ||
         (b.has_cti && b.cti_op == isa::Op::kTicc);
}

}  // namespace nfp::analyze
