#include "analyze/bounds.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <queue>
#include <set>

#include "analyze/cost.h"

namespace nfp::analyze {
namespace {

using isa::Op;

struct PathStep {
  std::uint32_t block = 0;
  int edge = -1;  // index into edges; -1 = terminal exit
};

struct Shortest {
  bool found = false;
  double total = 0.0;
  std::vector<PathStep> path;  // entry..exit, only filled when requested
};

// Dijkstra from the entry block over (block, edge) weights; the exit cost of
// a terminal block is the cost of executing it to its terminator.
Shortest shortest_path(const Cfg& cfg, const board::CostModel& costs,
                       bool energy_metric, bool want_path) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::map<std::uint32_t, double> dist;
  std::map<std::uint32_t, std::pair<std::uint32_t, int>> pred;
  using QItem = std::pair<double, std::uint32_t>;
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> queue;

  Shortest best;
  double best_total = kInf;
  std::uint32_t best_exit = 0;
  if (cfg.blocks.count(cfg.entry) == 0) return best;
  dist[cfg.entry] = 0.0;
  queue.push({0.0, cfg.entry});
  // The energy metric is priced at the residual-envelope floor
  // (block_cost_dir): the board's dynamic corrections — operand-toggle
  // modulation, untaken-branch fetch discount — can push a real execution's
  // energy below the base table sum, and a guaranteed lower bound must sit
  // below all of them. Cycle residuals only ever add cycles, so the base
  // table already floors that metric.
  const auto weight = [&](const BasicBlock& blk, Exit exit, bool slot) {
    return energy_metric
               ? block_cost_dir(blk, costs, exit, slot, Dir::kLower).energy_nj
               : block_cost(blk, costs, exit, slot).cycles;
  };
  while (!queue.empty()) {
    const auto [d, addr] = queue.top();
    queue.pop();
    if (d > dist[addr]) continue;
    const BasicBlock& b = cfg.blocks.at(addr);
    if (is_exit(b)) {
      const double total = d + weight(b, Exit::kTerminal, true);
      if (total < best_total) {
        best_total = total;
        best_exit = addr;
        best.found = true;
      }
    }
    for (int i = 0; i < static_cast<int>(b.edges.size()); ++i) {
      const CfgEdge& e = b.edges[static_cast<std::size_t>(i)];
      if (cfg.blocks.count(e.target) == 0) continue;
      const double w = weight(b, edge_exit(e), e.includes_slot);
      const double nd = d + w;
      const auto it = dist.find(e.target);
      if (it == dist.end() || nd < it->second) {
        dist[e.target] = nd;
        pred[e.target] = {addr, i};
        queue.push({nd, e.target});
      }
    }
  }
  if (!best.found) return best;
  best.total = best_total;
  if (want_path) {
    std::vector<PathStep> rev;
    rev.push_back({best_exit, -1});
    std::uint32_t at = best_exit;
    while (at != cfg.entry) {
      const auto [from, edge] = pred.at(at);
      rev.push_back({from, edge});
      at = from;
    }
    best.path.assign(rev.rbegin(), rev.rend());
  }
  return best;
}

StaticVector vector_of_path(const Cfg& cfg, const board::CostModel& costs,
                            const std::vector<PathStep>& path,
                            double clock_hz) {
  StaticVector v;
  double cycles = 0.0;
  for (const PathStep& step : path) {
    const BasicBlock& b = cfg.blocks.at(step.block);
    const bool terminal = step.edge < 0;
    const bool slot =
        terminal ? !b.slot_annulled_always
                 : b.edges[static_cast<std::size_t>(step.edge)].includes_slot;
    const Exit exit =
        terminal ? Exit::kTerminal
                 : edge_exit(b.edges[static_cast<std::size_t>(step.edge)]);
    const BlockCost c = block_cost(b, costs, exit, slot);
    cycles += c.cycles;
    v.energy_nj += c.energy_nj;
    add_counts(v.op_counts, b, slot);
  }
  v.cycles = static_cast<std::uint64_t>(cycles);
  v.time_s = cycles / clock_hz;
  for (const std::uint64_t n : v.op_counts) v.insns += n;
  return v;
}

// ---- Loop structure -------------------------------------------------------

struct Loop {
  std::uint32_t header = 0;
  std::set<std::uint32_t> body;       // includes header and latches
  std::vector<std::uint32_t> latches;  // back-edge sources
};

// Natural loops from DFS back edges; loops sharing a header are merged.
std::vector<Loop> find_loops(const Cfg& cfg) {
  std::map<std::uint32_t, std::vector<std::uint32_t>> preds;
  for (const auto& [addr, b] : cfg.blocks) {
    for (const CfgEdge& e : b.edges) preds[e.target].push_back(addr);
  }
  // Iterative DFS, colors: 0 unseen, 1 on stack, 2 done.
  std::map<std::uint32_t, int> color;
  std::vector<std::pair<std::uint32_t, std::size_t>> stack;
  std::map<std::uint32_t, Loop> loops;
  if (cfg.blocks.count(cfg.entry) == 0) return {};
  stack.push_back({cfg.entry, 0});
  color[cfg.entry] = 1;
  while (!stack.empty()) {
    auto& [addr, next] = stack.back();
    const BasicBlock& b = cfg.blocks.at(addr);
    if (next >= b.edges.size()) {
      color[addr] = 2;
      stack.pop_back();
      continue;
    }
    const std::uint32_t t = b.edges[next++].target;
    if (cfg.blocks.count(t) == 0) continue;
    const int c = color[t];
    if (c == 1) {  // back edge addr -> t
      Loop& loop = loops[t];
      loop.header = t;
      loop.latches.push_back(addr);
      loop.body.insert(t);
      std::vector<std::uint32_t> work;
      if (loop.body.insert(addr).second) work.push_back(addr);
      while (!work.empty()) {
        const std::uint32_t x = work.back();
        work.pop_back();
        for (const std::uint32_t p : preds[x]) {
          if (loop.body.insert(p).second) work.push_back(p);
        }
      }
    } else if (c == 0) {
      color[t] = 1;
      stack.push_back({t, 0});
    }
  }
  std::vector<Loop> out;
  out.reserve(loops.size());
  for (auto& [h, loop] : loops) out.push_back(std::move(loop));
  return out;
}

// Counted-loop heuristic: the latch decrements a counter by a constant step
// (`subcc %r, s, %r`) and loops on `bne`; the only initialiser outside the
// loop is `mov K, %r` (or `add %g0, K, %r`); nothing else in the loop writes
// %r. Trip count = K / s.
std::optional<std::uint64_t> infer_counted_bound(const Cfg& cfg,
                                                 const Loop& loop) {
  if (loop.latches.size() != 1) return std::nullopt;
  const BasicBlock& latch = cfg.blocks.at(loop.latches.front());
  if (!latch.has_cti || latch.cti_op != Op::kBicc) return std::nullopt;
  const isa::DecodedInsn& br = latch.insns[cti_index(latch)];
  if (static_cast<isa::Cond>(br.cond) != isa::Cond::kNe) return std::nullopt;
  bool loops_back = false;
  for (const CfgEdge& e : latch.edges) {
    if (e.kind == CfgEdge::Kind::kTaken && e.target == loop.header) {
      loops_back = true;
    }
  }
  if (!loops_back) return std::nullopt;

  // Last condition-code writer before the branch must be the decrement.
  const isa::DecodedInsn* dec = nullptr;
  std::size_t dec_index = 0;
  for (std::size_t i = cti_index(latch); i-- > 0;) {
    if (writes_icc(latch.insns[i].op)) {
      dec = &latch.insns[i];
      dec_index = i;
      break;
    }
  }
  if (dec == nullptr || dec->op != Op::kSubcc || !dec->has_imm ||
      dec->imm <= 0 || dec->rd != dec->rs1 || dec->rd == isa::kRegG0) {
    return std::nullopt;
  }
  const std::uint8_t reg = dec->rd;
  const auto step = static_cast<std::uint64_t>(dec->imm);

  // The decrement must be the counter's only writer inside the loop, and
  // exactly one `mov K, %r` outside it may initialise it.
  std::optional<std::uint64_t> init;
  for (const auto& [addr, b] : cfg.blocks) {
    const bool in_loop = loop.body.count(addr) != 0;
    for (std::size_t i = 0; i < b.insns.size(); ++i) {
      const isa::DecodedInsn& d = b.insns[i];
      if (b.has_slot && i == b.insns.size() - 1 && b.slot_annulled_always) {
        continue;  // never executes
      }
      if (!writes_int_reg(d.op) || written_reg(d) != reg) continue;
      if (in_loop) {
        if (addr == latch.start && i == dec_index) continue;
        return std::nullopt;
      }
      if (init.has_value()) return std::nullopt;  // multiple initialisers
      const bool is_mov = (d.op == Op::kOr || d.op == Op::kAdd) &&
                          d.rs1 == isa::kRegG0 && d.has_imm && d.imm > 0;
      if (!is_mov) return std::nullopt;
      init = static_cast<std::uint64_t>(d.imm);
    }
  }
  if (!init.has_value() || *init % step != 0) return std::nullopt;
  return *init / step;
}

}  // namespace

BoundsResult analyze_bounds(const Cfg& cfg, const board::CostModel& costs,
                            const BoundsConfig& config) {
  BoundsResult result;

  // Lower bounds: per-metric shortest entry→exit path.
  const Shortest time_path = shortest_path(cfg, costs, false, true);
  if (time_path.found) {
    result.has_exit = true;
    result.lower = vector_of_path(cfg, costs, time_path.path, config.clock_hz);
    const Shortest energy_path = shortest_path(cfg, costs, true, false);
    result.lower_energy_nj = energy_path.total;
    result.lower_exact = true;
    for (const PathStep& step : time_path.path) {
      const BasicBlock& b = cfg.blocks.at(step.block);
      if (step.edge < 0) {
        result.lower_exact = result.lower_exact && b.halt && b.edges.empty();
      } else {
        result.lower_exact = result.lower_exact && b.edges.size() == 1;
      }
    }
  }

  // Upper estimate: sum over blocks with loop multipliers.
  const auto refuse = [&result](const char* code, std::uint32_t block,
                                std::string human) {
    result.upper_reason_code = code;
    result.upper_reason_block = block;
    result.upper_unavailable = std::move(human);
  };
  for (const auto& [addr, b] : cfg.blocks) {
    if (b.indirect) {
      refuse("indirect-jmpl", addr,
             "indirect control flow (jmpl) at " + hex(b.cti_pc));
      break;
    }
    for (const CfgEdge& e : b.edges) {
      if (e.kind == CfgEdge::Kind::kCall) {
        refuse("call-edge", addr,
               "call at " + hex(b.cti_pc) +
                   " (interprocedural bounds unsupported)");
        break;
      }
    }
    if (!result.upper_unavailable.empty()) break;
  }
  if (!result.upper_unavailable.empty()) return result;

  const std::vector<Loop> loops = find_loops(cfg);
  std::map<std::uint32_t, std::uint64_t> bound_of;
  for (const Loop& loop : loops) {
    const auto annotated = config.loop_bounds.find(loop.header);
    if (annotated != config.loop_bounds.end()) {
      bound_of[loop.header] = annotated->second;
      result.loops.push_back(LoopInfo{loop.header, annotated->second, false});
      continue;
    }
    std::optional<std::uint64_t> inferred;
    if (config.infer_counted_loops) inferred = infer_counted_bound(cfg, loop);
    if (!inferred.has_value()) {
      refuse("unbounded-loop", loop.header,
             "loop at " + hex(loop.header) + " has no static bound");
      return result;
    }
    bound_of[loop.header] = *inferred;
    result.loops.push_back(LoopInfo{loop.header, *inferred, true});
  }

  double cycles = 0.0;
  for (const auto& [addr, b] : cfg.blocks) {
    std::uint64_t mult = 1;
    for (const Loop& loop : loops) {
      if (loop.body.count(addr) != 0) mult *= bound_of[loop.header];
    }
    if (mult == 0) continue;
    const bool slot = !b.slot_annulled_always;
    const BlockCost c = block_cost(b, costs, Exit::kWorst, slot);
    cycles += c.cycles * static_cast<double>(mult);
    result.upper.energy_nj += c.energy_nj * static_cast<double>(mult);
    add_counts(result.upper.op_counts, b, slot, mult);
  }
  result.upper.cycles = static_cast<std::uint64_t>(cycles);
  result.upper.time_s = cycles / config.clock_hz;
  for (const std::uint64_t n : result.upper.op_counts) result.upper.insns += n;
  result.has_upper = true;
  return result;
}

std::string render(const BoundsResult& r) {
  char buf[160];
  std::string out;
  if (!r.has_exit) {
    return "lower bound: no statically halting path (trivial bound 0)\n";
  }
  std::snprintf(buf, sizeof buf,
                "lower bound (min-time path): %llu insns, %llu cycles, "
                "%.6g s, %.6g nJ\n",
                static_cast<unsigned long long>(r.lower.insns),
                static_cast<unsigned long long>(r.lower.cycles),
                r.lower.time_s, r.lower.energy_nj);
  out += buf;
  std::snprintf(buf, sizeof buf, "lower bound (min-energy path): %.6g nJ\n",
                r.lower_energy_nj);
  out += buf;
  out += std::string("lower bound is exact (single static path): ") +
         (r.lower_exact ? "yes" : "no") + "\n";
  for (const LoopInfo& loop : r.loops) {
    std::snprintf(buf, sizeof buf, "loop %s: bound %llu%s\n",
                  hex(loop.header).c_str(),
                  static_cast<unsigned long long>(loop.bound),
                  loop.inferred ? " (inferred counted loop)" : "");
    out += buf;
  }
  if (r.has_upper) {
    std::snprintf(buf, sizeof buf,
                  "upper estimate: %llu insns, %llu cycles, %.6g s, %.6g nJ\n",
                  static_cast<unsigned long long>(r.upper.insns),
                  static_cast<unsigned long long>(r.upper.cycles),
                  r.upper.time_s, r.upper.energy_nj);
    out += buf;
  } else {
    // Human text first, then the machine-parseable key=value tail so both
    // audiences get one stable line.
    out += "upper estimate unavailable: " + r.upper_unavailable + " [reason=" +
           r.upper_reason_code + " block=" + hex(r.upper_reason_block) + "]\n";
  }
  return out;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
      continue;
    }
    out += c;
  }
  return out;
}

std::string vector_json(const StaticVector& v) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "{\"insns\":%llu,\"cycles\":%llu,\"time_s\":%.17g,"
                "\"energy_nj\":%.17g}",
                static_cast<unsigned long long>(v.insns),
                static_cast<unsigned long long>(v.cycles), v.time_s,
                v.energy_nj);
  return buf;
}

}  // namespace

std::string to_json(const BoundsResult& r) {
  char buf[64];
  std::string out = "{\"has_exit\":";
  out += r.has_exit ? "true" : "false";
  if (r.has_exit) {
    out += ",\"lower\":" + vector_json(r.lower);
    std::snprintf(buf, sizeof buf, ",\"lower_energy_nj\":%.17g",
                  r.lower_energy_nj);
    out += buf;
    out += std::string(",\"lower_exact\":") + (r.lower_exact ? "true" : "false");
  }
  out += ",\"has_upper\":";
  out += r.has_upper ? "true" : "false";
  if (r.has_upper) {
    out += ",\"upper\":" + vector_json(r.upper);
  } else {
    out += ",\"reason\":\"" + json_escape(r.upper_reason_code) + "\"";
    out += ",\"block\":\"" + hex(r.upper_reason_block) + "\"";
    out += ",\"detail\":\"" + json_escape(r.upper_unavailable) + "\"";
  }
  out += ",\"loops\":[";
  for (std::size_t i = 0; i < r.loops.size(); ++i) {
    if (i != 0) out += ",";
    out += "{\"header\":\"" + hex(r.loops[i].header) + "\"";
    out += ",\"bound\":" + std::to_string(r.loops[i].bound);
    out += std::string(",\"inferred\":") +
           (r.loops[i].inferred ? "true" : "false") + "}";
  }
  out += "]}";
  return out;
}

}  // namespace nfp::analyze
