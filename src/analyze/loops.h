// Dominator trees and natural-loop forests over one function's blocks.
//
// The callgraph layer partitions the CFG into functions and hands each one
// here as an entry block plus an intra-procedural successor map (call edges
// replaced by continuation edges). This module answers three questions the
// IPET solver needs:
//
//   - dominators   — iterative idom computation on reverse post-order
//                    (Cooper/Harvey/Kennedy), O(E) per round in practice;
//   - loop forest  — natural loops from back edges (a dominated-by-target
//                    retreating edge), merged per header, with nesting
//                    parents and depths. A retreating DFS edge whose target
//                    does NOT dominate its source makes the region
//                    irreducible; the offending edge is reported so the IPET
//                    refusal can name it;
//   - counted-loop bounds — a widened version of the bounds.cpp heuristic:
//                    `mov`/`sethi[+or]` initialisation, `subcc`/`addcc`
//                    strides (combined or separate `add`/`sub` + compare) in
//                    either direction, exits on any signed Bicc condition
//                    (`bne/be/bg/bge/bl/ble`), with a closed-form trip count
//                    and a provenance string for the report.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analyze/cfg.h"

namespace nfp::analyze {

// Intra-procedural successor map for one function: block start -> successor
// block starts (duplicates allowed when two CFG edges share a target).
using SuccMap = std::map<std::uint32_t, std::vector<std::uint32_t>>;

struct DomTree {
  std::vector<std::uint32_t> rpo;  // reverse post-order, entry first
  std::map<std::uint32_t, std::uint32_t> idom;  // entry maps to itself
  // True when `a` dominates `b` (reflexive). Blocks unknown to the tree
  // (unreachable from the entry) dominate nothing and are dominated by
  // nothing.
  bool dominates(std::uint32_t a, std::uint32_t b) const;
};

DomTree build_domtree(std::uint32_t entry, const SuccMap& succs);

struct NaturalLoop {
  std::uint32_t header = 0;
  std::set<std::uint32_t> body;        // includes header and latches
  std::vector<std::uint32_t> latches;  // back-edge sources
  int parent = -1;  // index of the innermost enclosing loop, -1 = top level
  int depth = 1;    // 1 = outermost
};

struct LoopForest {
  std::vector<NaturalLoop> loops;  // sorted by header address
  bool irreducible = false;
  // A retreating edge whose target does not dominate its source (only
  // meaningful when irreducible).
  std::uint32_t offender_from = 0, offender_to = 0;
};

LoopForest find_natural_loops(std::uint32_t entry, const SuccMap& succs,
                              const DomTree& dom);

struct CountedBound {
  std::uint64_t bound = 0;  // max header executions per loop entry
  std::string detail;       // provenance, e.g. "%g2: 12 step -3 while ne 0"
};

// Registers a block may clobber beyond its own decoded instructions — for
// call couples, the transitive write set of the callee (the callgraph layer
// computes it). Return 0 for non-call blocks.
using ClobberMask = std::function<std::uint32_t(const BasicBlock&)>;

// Widened counted-loop inference for `loop` inside the function made of
// `fblocks`. Returns the bound and its provenance, or nullopt with no
// diagnosis (annotations are the escape hatch). Soundness notes live with
// the implementation.
std::optional<CountedBound> infer_counted_bound(
    const Cfg& cfg, const DomTree& dom, const std::set<std::uint32_t>& fblocks,
    const SuccMap& succs, const std::vector<NaturalLoop>& all_loops,
    const NaturalLoop& loop, const ClobberMask& clobbers);

}  // namespace nfp::analyze
