// Execution-free IPET (implicit path enumeration) NFP estimation.
//
// Where analyze_bounds refuses whole program classes (calls, any loop it
// cannot pattern-match), this solver prices every halting execution of the
// interprocedural CFG as a flow problem:
//
//   - the callgraph layer partitions the recovered CFG into functions and
//     orders them callee-first (recursion is a refusal, with the cycle
//     named);
//   - per function, one LP variable per intra-procedural edge plus one exit
//     variable per return/halt block; Kirchhoff conservation rows tie flow
//     together (entry block sources one unit), and every natural loop
//     contributes a bound row — relative bounds (annotations and the widened
//     counted-loop inference) cap header flow per loop entry, absolute
//     totals (profile-derived) cap it outright;
//   - block costs attach to outgoing edges with exact delay-slot/annul and
//     taken/untaken pricing shared with the Dijkstra analyzer (cost.h), and
//     call-continuation edges add the callee's own solved summary, so the
//     analysis is bottom-up compositional;
//   - the LP is solved with the in-tree exact-rational simplex (lp.h):
//     maximizing gives upper bounds, minimizing lower bounds, per metric.
//
// Soundness: cost coefficients are scaled-integer rationals rounded in the
// safe direction (ceil for upper, floor for lower), the final lower bound is
// clamped to the Dijkstra shortest-path lower (both are sound, so their max
// is), and every construct the formulation cannot model exactly is an
// explicit refusal with a machine-parseable reason — never a silent guess.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analyze/bounds.h"
#include "analyze/cfg.h"
#include "analyze/cost.h"
#include "board/cost_model.h"

namespace nfp::analyze {

enum class IpetRefusal {
  kNone,
  kLintErrors,       // CFG recovery reported errors
  kNoEntry,          // entry block missing from the image
  kIndirectJump,     // jmpl not shaped like a return
  kCalleeOffImage,   // call target or return site not recovered
  kRecursion,        // call graph has a cycle
  kIrreducible,      // multi-entry loop region
  kUnboundedLoop,    // no annotation, no total, inference failed
  kHaltInCallee,     // static `ta 0` below the entry function
  kReturnFromEntry,  // entry function falls into a `retl`
  kNoExit,           // entry function has no halting block
  kFaultPath,        // reachable block ends at an illegal/off-image word
  kConditionalTrap,  // conditional Ticc that may leave the program
  kDeadEnd,          // block with no successors and no terminator
  kLpInfeasible,     // constraint system admits no flow
  kLpUnbounded,      // a loop escaped every bound row (internal error)
  kLpOverflow,       // exact arithmetic exceeded __int128
  kLpIterLimit,      // simplex pivot cap exhausted
};

// Stable machine-parseable slug, e.g. "unbounded-loop".
const char* to_string(IpetRefusal refusal);

// Where a loop's bound row came from, for the per-loop provenance report.
enum class IpetBoundSource {
  kAnnotated,  // IpetConfig::loop_bounds (relative, per entry)
  kInferred,   // widened counted-loop inference (relative, per entry)
  kTotal,      // IpetConfig::loop_totals (absolute header executions)
};

struct IpetLoop {
  std::uint32_t function = 0;  // owning function's entry address
  std::uint32_t header = 0;
  int depth = 1;
  IpetBoundSource source = IpetBoundSource::kInferred;
  std::uint64_t bound = 0;  // relative bound or absolute total, per source
  std::string detail;       // inference provenance, empty otherwise
};

struct IpetInterval {
  double lower = 0.0;
  double upper = 0.0;
};

struct IpetConfig {
  // Relative loop bounds (max header executions per loop entry), keyed by
  // header block address. Highest precedence.
  std::map<std::uint32_t, std::uint64_t> loop_bounds;
  // Absolute header-execution totals (e.g. from a profiled reference run),
  // keyed by header address. Used when no relative bound applies; applying a
  // whole-program total per invocation over-approximates, which is sound.
  std::map<std::uint32_t, std::uint64_t> loop_totals;
  bool infer_counted_loops = true;
  double clock_hz = 50.0e6;
  // Residual envelope of the target board (cost.h): upper coefficients price
  // the worst dynamic correction (SDRAM row miss, +amplitude/2 toggling),
  // lower ones the best, so the interval contains the board's ground truth.
  CostEnvelope envelope;
};

struct IpetResult {
  bool accepted = false;
  IpetRefusal refusal = IpetRefusal::kNone;
  std::uint32_t refusal_block = 0;
  std::string refusal_detail;  // human sentence (cycle, offender edge, ...)

  // Bounds on any halting execution admitted by the flow constraints.
  IpetInterval insns, cycles, energy_nj, time_s;

  // Witness vectors from the min-/max-cycles LP vertices (op counts rounded
  // from exact flows); feed these to fold() for an Eq. 1 comparison.
  StaticVector lower, upper;

  // True when the final lower bound came from the Dijkstra clamp rather
  // than the LP minimum (they agree exactly on loop-free kernels).
  bool lower_clamped = false;

  std::vector<IpetLoop> loops;  // per-loop bound provenance, all functions
  std::size_t functions = 0;
  std::uint64_t lp_pivots = 0;
};

IpetResult analyze_ipet(const Cfg& cfg, const board::CostModel& costs,
                        const IpetConfig& config = {});

// Human-readable report (nfplint --estimate).
std::string render(const IpetResult& result);

// Single JSON object (no trailing newline) for --json consumers.
std::string to_json(const IpetResult& result);

}  // namespace nfp::analyze
