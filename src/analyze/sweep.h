// Decoder-consistency sweep: a structured field-enumeration of the 32-bit
// SPARC V8 instruction space that lints the whole src/isa surface at once.
//
// For every enumerated word the sweep checks, against an *independent*
// field-level classifier written directly on the op/op2/op3/opf encoding
// fields (not on isa::Op):
//   - acceptance agreement: decode() accepts exactly the encodings the field
//     classifier marks valid, and rejects everything else;
//   - category agreement: the category function maps each accepted word to
//     the Table-I category the fields dictate (exactly one per word);
//   - morph-group agreement: morph_group()/ends_block() are consistent with
//     the category (CTIs terminate blocks, loads are kMemLoad, ...);
//   - round-trip agreement: reencode(decode(w)) exists, re-decodes to
//     identical fields, renders to the identical disassembly, and is
//     bit-identical to w when w is canonical (don't-care bits zero).
//
// The enumeration is the op/op2/op3/opf cross-product with boundary plus
// seeded-random fill for immediates and registers — a few million words, not
// 2^32 — and is fully deterministic, so per-family acceptance/category
// totals can be pinned by tests.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "isa/categories.h"
#include "isa/insn.h"

namespace nfp::analyze {

// One inconsistency. `check` names the failed property ("accept",
// "category", "morph-group", "roundtrip", "canonical", "disasm"); `word` is
// the offending encoding.
struct SweepFinding {
  std::uint32_t word = 0;
  std::string check;
  std::string detail;
};

// Per-family tallies over the enumeration (machine-readable; tests pin
// these). Families follow the top-level decode split: fmt2.sethi,
// fmt2.bicc, fmt2.fbfcc, fmt2.reserved, fmt1.call, fmt3.alu, fmt3.fpop1,
// fmt3.fpop2, fmt3.mem.
struct FamilyStats {
  std::string family;
  std::uint64_t enumerated = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::array<std::uint64_t, isa::kCategoryCount> categories{};
};

struct SweepConfig {
  // Immediate-field fill values per instruction shape: boundary values
  // first, then seeded-random fill. The defaults enumerate ~2.9M words.
  std::uint32_t imm_samples = 96;
  // Register-field sample values (rd/rs1/rs2): well-known registers first
  // (%g0, %g1, %sp, %o7, %fp, %i7), then seeded-random fill.
  std::uint32_t reg_samples = 10;
  // Extra nonzero fills for the reserved asi field of register-form
  // format-3 words, checking that decode treats those bits as don't-care.
  std::uint32_t asi_samples = 4;
  std::uint64_t seed = 0x5EEDCAFEull;
  // Findings are recorded up to this cap; the total is always counted.
  std::size_t max_findings = 32;
  // Category map under test. Defaults to isa::default_category; tests
  // inject deliberately broken maps to validate that the sweep reports the
  // offending encodings.
  std::function<isa::Category(isa::Op)> category;
};

struct SweepResult {
  std::vector<SweepFinding> findings;     // capped at config.max_findings
  std::uint64_t findings_total = 0;
  std::uint64_t enumerated = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::vector<FamilyStats> families;

  bool consistent() const { return findings_total == 0; }
  // Machine-readable table: one row per family,
  //   family enumerated accepted rejected <9 category totals>
  std::string table() const;
};

SweepResult run_sweep(const SweepConfig& config = {});

}  // namespace nfp::analyze
