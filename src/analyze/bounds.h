// Static (pre-run) NFP bounds from a recovered CFG.
//
// Folds per-block category histograms with the board cost model:
//   lower — the cheapest entry→exit path (per-metric Dijkstra with
//           delay-slot exclusion and taken/untaken branch cycle variants);
//           a guaranteed lower bound on any halting execution, and exact
//           (equal to the dynamic retire vector) on single-path programs;
//   upper — sum over blocks weighted by loop multipliers, where loop bounds
//           come from annotations (keyed by loop-header address) or from a
//           conservative counted-loop heuristic. Unavailable when the CFG
//           has indirect exits, call edges, or unbounded loops — the reason
//           is reported instead of a number.
//
// The op-count vectors can be pushed through the same category scheme and
// calibrated per-category costs as the dynamic estimator (Eq. 1), giving a
// static Ê/T̂ directly comparable with the ISS-derived estimate.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analyze/cfg.h"
#include "board/cost_model.h"
#include "nfp/estimator.h"

namespace nfp::analyze {

// A static execution vector: op counts plus their cost-model fold.
struct StaticVector {
  model::OpCounts op_counts{};
  std::uint64_t insns = 0;
  std::uint64_t cycles = 0;
  double energy_nj = 0.0;
  double time_s = 0.0;
};

struct LoopInfo {
  std::uint32_t header = 0;
  std::uint64_t bound = 0;  // max executions of the loop body
  bool inferred = false;    // counted-loop heuristic, not an annotation
};

struct BoundsConfig {
  // Loop-bound annotations, keyed by loop-header block address.
  std::map<std::uint32_t, std::uint64_t> loop_bounds;
  // Infer bounds for `mov K, %r; ...; subcc %r, s, %r; bne` counted loops.
  bool infer_counted_loops = true;
  double clock_hz = 50.0e6;
};

struct BoundsResult {
  bool has_exit = false;  // some halting/exiting path exists statically
  StaticVector lower;     // along the min-time path (zero when !has_exit)
  // Min-energy path total (may follow a different path), priced at the
  // residual-envelope floor (cost.h block_cost_dir): a guaranteed lower
  // bound even against the board's operand-toggle and untaken-branch energy
  // discounts.
  double lower_energy_nj = 0.0;
  // True when the lower path is the only execution path (every block on it
  // has at most one successor): the static vector then equals the dynamic
  // retire vector exactly.
  bool lower_exact = false;

  bool has_upper = false;
  StaticVector upper;
  std::string upper_unavailable;  // human-readable reason when !has_upper
  // Machine-parseable refusal: a stable reason code ("indirect-jmpl",
  // "call-edge", "unbounded-loop") plus the offending block address. Render
  // appends them as a `[reason=<code> block=0x...]` tail on the human line.
  std::string upper_reason_code;
  std::uint32_t upper_reason_block = 0;
  std::vector<LoopInfo> loops;
};

BoundsResult analyze_bounds(const Cfg& cfg, const board::CostModel& costs,
                            const BoundsConfig& config = {});

// Eq. 1 fold of a static op-count vector with calibrated per-category costs,
// for side-by-side comparison with the dynamic estimate.
inline model::Estimate fold(const StaticVector& v,
                            const model::CategoryScheme& scheme,
                            const model::CategoryCosts& costs) {
  return model::estimate(v.op_counts, scheme, costs);
}

// Human-readable report (used by nfplint --bounds).
std::string render(const BoundsResult& result);

// Single JSON object (no trailing newline) for nfplint --bounds --json.
std::string to_json(const BoundsResult& result);

}  // namespace nfp::analyze
