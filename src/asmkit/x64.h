// Minimal in-process x86-64 machine-code emitter for the template JIT
// (sim/jit.*). Deliberately small: exactly the instruction forms the block
// code generator emits — rex/modrm/sib encoding, 32/64-bit mov and ALU
// forms, setcc/jcc, byte/word memory ops for the big-endian bus fast paths,
// and call-through-register thunks. Encodings are pinned by byte-exact
// golden tests (tests/asmkit/x64_test.cpp) cross-checked against binutils.
//
// The emitter is host-independent — it only builds byte vectors — so it
// compiles and tests on every platform; only sim/jit.cpp decides whether the
// bytes can actually be executed.
#pragma once

#include <cstdint>
#include <vector>

namespace nfp::asmkit::x64 {

// Host general-purpose registers, numbered with their hardware encoding.
enum class Gp : std::uint8_t {
  rax = 0, rcx = 1, rdx = 2, rbx = 3, rsp = 4, rbp = 5, rsi = 6, rdi = 7,
  r8 = 8, r9 = 9, r10 = 10, r11 = 11, r12 = 12, r13 = 13, r14 = 14, r15 = 15,
};

// Condition codes (the 4-bit cc field of jcc/setcc).
enum class Cc : std::uint8_t {
  kO = 0x0, kNo = 0x1, kB = 0x2, kAe = 0x3, kE = 0x4, kNe = 0x5,
  kBe = 0x6, kA = 0x7, kS = 0x8, kNs = 0x9, kP = 0xA, kNp = 0xB,
  kL = 0xC, kGe = 0xD, kLe = 0xE, kG = 0xF,
};

// Memory operand: [base + disp] or [base + index*1 + disp]. rsp is not
// usable as an index (hardware restriction); the encoder asserts on it.
struct Mem {
  Gp base;
  std::int32_t disp = 0;
  bool has_index = false;
  Gp index = Gp::rax;
};

inline Mem ptr(Gp base, std::int32_t disp = 0) { return Mem{base, disp}; }
inline Mem ptr_idx(Gp base, Gp index, std::int32_t disp = 0) {
  return Mem{base, disp, true, index};
}

// Forward-referenceable jump target. Bind-once; every jcc/jmp referencing it
// before bind() records a rel32 fixup patched at bind time.
class Label {
 public:
  bool bound() const { return pos_ >= 0; }

 private:
  friend class Emitter;
  std::int32_t pos_ = -1;
  std::vector<std::uint32_t> refs_;  // offsets of unresolved rel32 fields
};

class Emitter {
 public:
  const std::uint8_t* data() const { return buf_.data(); }
  std::size_t size() const { return buf_.size(); }
  std::uint32_t offset() const { return static_cast<std::uint32_t>(buf_.size()); }
  const std::vector<std::uint8_t>& bytes() const { return buf_; }

  // ---- moves ----------------------------------------------------------------
  void mov_ri(Gp dst, std::uint32_t imm);     // mov r32, imm32 (zero-extends)
  void mov_ri64(Gp dst, std::uint64_t imm);   // movabs r64, imm64
  void mov_rr(Gp dst, Gp src);                // mov r32, r32
  void mov_rr64(Gp dst, Gp src);              // mov r64, r64
  void mov_rm(Gp dst, const Mem& m);          // mov r32, [m]
  void mov_rm64(Gp dst, const Mem& m);        // mov r64, [m]
  void mov_mr(const Mem& m, Gp src);          // mov [m], r32
  void mov_mr64(const Mem& m, Gp src);        // mov [m], r64
  void mov_mr8(const Mem& m, Gp src);         // mov [m], r8 (low byte)
  void mov_mr16(const Mem& m, Gp src);        // mov [m], r16
  void mov_mi(const Mem& m, std::uint32_t imm);   // mov dword [m], imm32
  void mov_mi8(const Mem& m, std::uint8_t imm);   // mov byte [m], imm8
  void movzx_rm8(Gp dst, const Mem& m);       // movzx r32, byte [m]
  void movzx_rm16(Gp dst, const Mem& m);      // movzx r32, word [m]
  void movsx_rm8(Gp dst, const Mem& m);       // movsx r32, byte [m]
  void movsx_rm16(Gp dst, const Mem& m);      // movsx r32, word [m]
  void movsx_rr8(Gp dst, Gp src);             // movsx r32, r8
  void movsx_rr16(Gp dst, Gp src);            // movsx r32, r16

  // ---- ALU (32-bit unless noted) --------------------------------------------
  void add_rr(Gp dst, Gp src);
  void add_rm(Gp dst, const Mem& m);
  void add_ri(Gp dst, std::uint32_t imm);
  void add_ri64(Gp dst, std::int32_t imm);    // add r64, imm (sign-extended)
  void add_mi64(const Mem& m, std::int32_t imm);  // add qword [m], imm
  void add_mr64(const Mem& m, Gp src);        // add qword [m], r64
  void or_rr(Gp dst, Gp src);
  void or_ri(Gp dst, std::uint32_t imm);
  void or_rm8(Gp dst, const Mem& m);          // or r8, byte [m]
  void adc_rr(Gp dst, Gp src);
  void adc_ri(Gp dst, std::uint32_t imm);
  void sbb_rr(Gp dst, Gp src);
  void sbb_ri(Gp dst, std::uint32_t imm);
  void and_rr(Gp dst, Gp src);
  void and_ri(Gp dst, std::uint32_t imm);
  void sub_rr(Gp dst, Gp src);
  void sub_ri(Gp dst, std::uint32_t imm);
  void sub_ri64(Gp dst, std::int32_t imm);    // sub r64, imm (sign-extended)
  void xor_rr(Gp dst, Gp src);
  void xor_ri(Gp dst, std::uint32_t imm);
  void xor_rm8(Gp dst, const Mem& m);         // xor r8, byte [m]
  void cmp_rr(Gp a, Gp b);
  void cmp_rm(Gp a, const Mem& m);            // cmp r32, [m]
  void cmp_rm64(Gp a, const Mem& m);          // cmp r64, [m]
  void cmp_ri(Gp a, std::uint32_t imm);
  void cmp_ri64(Gp a, std::int32_t imm);      // cmp r64, imm (sign-extended)
  void test_rr(Gp a, Gp b);
  void test_rr64(Gp a, Gp b);
  void test_ri(Gp a, std::uint32_t imm);
  void not_r(Gp r);
  void neg_r(Gp r);
  void mul_r(Gp r);        // mul r32  (edx:eax = eax * r32)
  void imul_r(Gp r);       // imul r32 (edx:eax = eax * r32, signed)
  void imul_rr(Gp dst, Gp src);  // imul r32, r32
  void shl_ri(Gp r, std::uint8_t imm);
  void shr_ri(Gp r, std::uint8_t imm);
  void sar_ri(Gp r, std::uint8_t imm);
  void shl_cl(Gp r);
  void shr_cl(Gp r);
  void sar_cl(Gp r);
  void bswap_r(Gp r);          // bswap r32
  void ror16_ri(Gp r, std::uint8_t imm);  // ror r16, imm8 (halfword swap)
  void bt_ri(Gp r, std::uint8_t bit);     // bt r32, imm8 (CF = bit)
  void bt_rr(Gp r, Gp bit);               // bt r32, r32 (CF = bit# in reg)
  void setcc_r(Cc cc, Gp dst);            // setcc r8 (forces REX for spl..dil)
  void setcc_m(Cc cc, const Mem& m);      // setcc byte [m]
  void lea_r32(Gp dst, const Mem& m);     // lea r32, [m] (32-bit truncation)

  // ---- control --------------------------------------------------------------
  void jcc(Cc cc, Label& target);  // jcc rel32
  void jmp(Label& target);         // jmp rel32
  // Emits `jmp rel32` targeting the next instruction (rel 0) and returns the
  // byte offset of the rel32 field — the block chainer's patch site.
  std::uint32_t jmp_patchable();
  void call_r(Gp r);               // call r64
  void jmp_m(const Mem& m);        // jmp qword [m]
  void ret();
  void push_r(Gp r);               // push r64
  void pop_r(Gp r);                // pop r64
  void int3();

  void bind(Label& label);

 private:
  void u8(std::uint8_t b) { buf_.push_back(b); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  // REX prefix covering reg (modrm.reg), and the rm side (base+index of a
  // memory operand or the rm register). Emitted only when a bit is set,
  // unless `force` (8-bit ops on spl/bpl/sil/dil).
  void rex(bool w, unsigned reg, unsigned index, unsigned base,
           bool force = false);
  void rex_rm(bool w, Gp reg, const Mem& m, bool force = false);
  void rex_rr(bool w, Gp reg, Gp rm, bool force = false);
  void modrm_reg(unsigned reg, unsigned rm);
  void modrm_mem(unsigned reg, const Mem& m);
  void alu_rr32(std::uint8_t op_index, Gp dst, Gp src);   // opcode k*8+3
  void alu_ri32(std::uint8_t op_index, Gp dst, std::uint32_t imm);
  void alu_ri64(std::uint8_t op_index, Gp dst, std::int32_t imm);
  void grp3_r32(std::uint8_t ext, Gp r);                  // F7 /ext
  void shift_ri32(std::uint8_t ext, Gp r, std::uint8_t imm);
  void shift_cl32(std::uint8_t ext, Gp r);
  void put_rel32(Label& target);

  std::vector<std::uint8_t> buf_;
};

}  // namespace nfp::asmkit::x64
