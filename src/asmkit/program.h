// Linked program image: a flat byte blob at a base address plus a symbol
// table. This is what the assembler produces and what the simulator loads
// (the paper's "kernel" — a binary executable handed to OVPsim).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace nfp::asmkit {

class Program {
 public:
  Program() = default;
  Program(std::uint32_t base, std::vector<std::uint8_t> bytes)
      : base_(base), bytes_(std::move(bytes)) {}

  std::uint32_t base() const { return base_; }
  std::uint32_t size() const { return static_cast<std::uint32_t>(bytes_.size()); }
  std::uint32_t end() const { return base_ + size(); }
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }

  std::uint32_t entry() const { return entry_; }
  void set_entry(std::uint32_t entry) { entry_ = entry; }

  void define_symbol(const std::string& name, std::uint32_t addr) {
    symbols_[name] = addr;
  }
  std::optional<std::uint32_t> find_symbol(const std::string& name) const {
    const auto it = symbols_.find(name);
    if (it == symbols_.end()) return std::nullopt;
    return it->second;
  }
  // Throwing lookup for symbols the caller knows must exist.
  std::uint32_t symbol(const std::string& name) const {
    const auto addr = find_symbol(name);
    if (!addr) throw std::runtime_error("undefined symbol: " + name);
    return *addr;
  }
  const std::map<std::string, std::uint32_t>& symbols() const {
    return symbols_;
  }

 private:
  std::uint32_t base_ = 0;
  std::uint32_t entry_ = 0;
  std::vector<std::uint8_t> bytes_;
  std::map<std::string, std::uint32_t> symbols_;
};

}  // namespace nfp::asmkit
