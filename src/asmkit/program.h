// Linked program image: a flat byte blob at a base address plus a symbol
// table. This is what the assembler produces and what the simulator loads
// (the paper's "kernel" — a binary executable handed to OVPsim).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace nfp::asmkit {

class Program {
 public:
  Program() = default;
  Program(std::uint32_t base, std::vector<std::uint8_t> bytes)
      : base_(base), bytes_(std::move(bytes)) {}

  std::uint32_t base() const { return base_; }
  std::uint32_t size() const { return static_cast<std::uint32_t>(bytes_.size()); }
  std::uint32_t end() const { return base_ + size(); }
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }

  // Size of the leading .text section in bytes; .data follows (8-byte
  // aligned). Producers that do not distinguish sections leave it unset, in
  // which case the whole image counts as text (static analyzers then decode
  // trailing data words too and rely on reachability to ignore them).
  std::uint32_t text_size() const {
    return text_size_ == kWholeImage || text_size_ > size() ? size()
                                                            : text_size_;
  }
  void set_text_size(std::uint32_t bytes) { text_size_ = bytes; }
  std::uint32_t text_end() const { return base_ + text_size(); }

  // Big-endian instruction word at `addr` (must be word-aligned, in-image).
  std::uint32_t word_at(std::uint32_t addr) const {
    const std::uint32_t off = addr - base_;
    if (addr < base_ || off + 4 > size()) {
      throw std::out_of_range("Program::word_at outside image");
    }
    return (std::uint32_t{bytes_[off]} << 24) |
           (std::uint32_t{bytes_[off + 1]} << 16) |
           (std::uint32_t{bytes_[off + 2]} << 8) | bytes_[off + 3];
  }

  std::uint32_t entry() const { return entry_; }
  void set_entry(std::uint32_t entry) { entry_ = entry; }

  void define_symbol(const std::string& name, std::uint32_t addr) {
    symbols_[name] = addr;
  }
  std::optional<std::uint32_t> find_symbol(const std::string& name) const {
    const auto it = symbols_.find(name);
    if (it == symbols_.end()) return std::nullopt;
    return it->second;
  }
  // Throwing lookup for symbols the caller knows must exist.
  std::uint32_t symbol(const std::string& name) const {
    const auto addr = find_symbol(name);
    if (!addr) throw std::runtime_error("undefined symbol: " + name);
    return *addr;
  }
  const std::map<std::string, std::uint32_t>& symbols() const {
    return symbols_;
  }

 private:
  static constexpr std::uint32_t kWholeImage = 0xFFFFFFFFu;

  std::uint32_t base_ = 0;
  std::uint32_t entry_ = 0;
  std::uint32_t text_size_ = kWholeImage;
  std::vector<std::uint8_t> bytes_;
  std::map<std::string, std::uint32_t> symbols_;
};

}  // namespace nfp::asmkit
