// Two-pass SPARC V8 assembler.
//
// Supported syntax (a pragmatic subset of the SunOS/gas SPARC dialect):
//   - sections:       .text  .data
//   - data:           .word  .half  .byte  .double  .float  .space N
//                     .asciz "..."  .align N  .equ name, expr
//   - labels:         name:
//   - comments:       `!`, `;` or `#` to end of line
//   - operands:       %g0..%i7 (%sp, %fp), %f0..%f31, immediates (dec/hex),
//                     symbols, symbol+offset, %hi(expr), %lo(expr),
//                     memory [reg], [reg+imm], [reg-imm], [reg+reg]
//   - pseudo-insns:   set expr, rd   -> sethi %hi(expr),rd; or rd,%lo(expr),rd
//                     mov val, rd    -> or %g0, val, rd
//                     cmp a, b       -> subcc a, b, %g0
//                     clr rd         -> or %g0, %g0, rd
//                     ret / retl     -> jmpl %o7+8, %g0
//                     b label        -> ba label
//   - branches:       b<cond>[,a] label     fb<cond>[,a] label
//
// The assembler lays .text at `origin`, then .data 8-byte aligned after it.
// All data is emitted big-endian (SPARC byte order).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "asmkit/program.h"

namespace nfp::asmkit {

struct AsmError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class Assembler {
 public:
  explicit Assembler(std::uint32_t origin) : origin_(origin) {}

  // Assembles a full translation unit. Throws AsmError with line-numbered
  // messages on failure. The program entry is the `_start` symbol if
  // defined, otherwise the origin.
  Program assemble(std::string_view source) const;

 private:
  std::uint32_t origin_;
};

// Convenience wrapper.
Program assemble(std::string_view source, std::uint32_t origin);

}  // namespace nfp::asmkit
