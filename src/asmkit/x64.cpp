// x86-64 instruction encoding. Reference: Intel SDM Vol. 2 encoding tables;
// every form here is pinned byte-for-byte by tests/asmkit/x64_test.cpp
// against constants derived from binutils `as`/`objdump` output.
#include "asmkit/x64.h"

#include <cassert>

namespace nfp::asmkit::x64 {

namespace {
inline unsigned lo3(Gp r) { return static_cast<unsigned>(r) & 7u; }
inline unsigned hi1(Gp r) { return (static_cast<unsigned>(r) >> 3) & 1u; }
inline bool fits_i8(std::int32_t v) { return v >= -128 && v <= 127; }
}  // namespace

void Emitter::u32(std::uint32_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
  u8(static_cast<std::uint8_t>(v >> 16));
  u8(static_cast<std::uint8_t>(v >> 24));
}

void Emitter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void Emitter::rex(bool w, unsigned reg, unsigned index, unsigned base,
                  bool force) {
  const std::uint8_t b = static_cast<std::uint8_t>(
      0x40u | (w ? 8u : 0u) | ((reg & 8u) ? 4u : 0u) |
      ((index & 8u) ? 2u : 0u) | ((base & 8u) ? 1u : 0u));
  if (b != 0x40 || force) u8(b);
}

void Emitter::rex_rm(bool w, Gp reg, const Mem& m, bool force) {
  rex(w, static_cast<unsigned>(reg),
      m.has_index ? static_cast<unsigned>(m.index) : 0u,
      static_cast<unsigned>(m.base), force);
}

void Emitter::rex_rr(bool w, Gp reg, Gp rm, bool force) {
  rex(w, static_cast<unsigned>(reg), 0u, static_cast<unsigned>(rm), force);
}

void Emitter::modrm_reg(unsigned reg, unsigned rm) {
  u8(static_cast<std::uint8_t>(0xC0u | ((reg & 7u) << 3) | (rm & 7u)));
}

void Emitter::modrm_mem(unsigned reg, const Mem& m) {
  const unsigned base = lo3(m.base);
  // rbp/r13 as base cannot use mod=00 (that encoding means rip/disp32);
  // force a disp8 of zero instead.
  unsigned mod;
  if (m.disp == 0 && base != 5u) {
    mod = 0u;
  } else if (fits_i8(m.disp)) {
    mod = 1u;
  } else {
    mod = 2u;
  }
  if (m.has_index || base == 4u) {
    // SIB required: either an index is present or the base is rsp/r12.
    assert(!m.has_index || lo3(m.index) != 4u);  // rsp is not a valid index
    u8(static_cast<std::uint8_t>((mod << 6) | ((reg & 7u) << 3) | 4u));
    const unsigned index = m.has_index ? lo3(m.index) : 4u;  // 4 = none
    u8(static_cast<std::uint8_t>((0u << 6) | (index << 3) | base));
  } else {
    u8(static_cast<std::uint8_t>((mod << 6) | ((reg & 7u) << 3) | base));
  }
  if (mod == 1u) {
    u8(static_cast<std::uint8_t>(m.disp));
  } else if (mod == 2u) {
    u32(static_cast<std::uint32_t>(m.disp));
  }
}

// ---- moves ------------------------------------------------------------------

void Emitter::mov_ri(Gp dst, std::uint32_t imm) {
  rex(false, 0, 0, static_cast<unsigned>(dst));
  u8(static_cast<std::uint8_t>(0xB8 + lo3(dst)));
  u32(imm);
}

void Emitter::mov_ri64(Gp dst, std::uint64_t imm) {
  rex(true, 0, 0, static_cast<unsigned>(dst));
  u8(static_cast<std::uint8_t>(0xB8 + lo3(dst)));
  u64(imm);
}

void Emitter::mov_rr(Gp dst, Gp src) {
  rex_rr(false, dst, src);
  u8(0x8B);
  modrm_reg(static_cast<unsigned>(dst), static_cast<unsigned>(src));
}

void Emitter::mov_rr64(Gp dst, Gp src) {
  rex_rr(true, dst, src);
  u8(0x8B);
  modrm_reg(static_cast<unsigned>(dst), static_cast<unsigned>(src));
}

void Emitter::mov_rm(Gp dst, const Mem& m) {
  rex_rm(false, dst, m);
  u8(0x8B);
  modrm_mem(static_cast<unsigned>(dst), m);
}

void Emitter::mov_rm64(Gp dst, const Mem& m) {
  rex_rm(true, dst, m);
  u8(0x8B);
  modrm_mem(static_cast<unsigned>(dst), m);
}

void Emitter::mov_mr(const Mem& m, Gp src) {
  rex_rm(false, src, m);
  u8(0x89);
  modrm_mem(static_cast<unsigned>(src), m);
}

void Emitter::mov_mr64(const Mem& m, Gp src) {
  rex_rm(true, src, m);
  u8(0x89);
  modrm_mem(static_cast<unsigned>(src), m);
}

void Emitter::mov_mr8(const Mem& m, Gp src) {
  // spl/bpl/sil/dil need a bare REX prefix to select the low byte.
  rex_rm(false, src, m, static_cast<unsigned>(src) >= 4);
  u8(0x88);
  modrm_mem(static_cast<unsigned>(src), m);
}

void Emitter::mov_mr16(const Mem& m, Gp src) {
  u8(0x66);
  rex_rm(false, src, m);
  u8(0x89);
  modrm_mem(static_cast<unsigned>(src), m);
}

void Emitter::mov_mi(const Mem& m, std::uint32_t imm) {
  rex_rm(false, Gp::rax, m);
  u8(0xC7);
  modrm_mem(0, m);
  u32(imm);
}

void Emitter::mov_mi8(const Mem& m, std::uint8_t imm) {
  rex_rm(false, Gp::rax, m);
  u8(0xC6);
  modrm_mem(0, m);
  u8(imm);
}

void Emitter::movzx_rm8(Gp dst, const Mem& m) {
  rex_rm(false, dst, m);
  u8(0x0F);
  u8(0xB6);
  modrm_mem(static_cast<unsigned>(dst), m);
}

void Emitter::movzx_rm16(Gp dst, const Mem& m) {
  rex_rm(false, dst, m);
  u8(0x0F);
  u8(0xB7);
  modrm_mem(static_cast<unsigned>(dst), m);
}

void Emitter::movsx_rm8(Gp dst, const Mem& m) {
  rex_rm(false, dst, m);
  u8(0x0F);
  u8(0xBE);
  modrm_mem(static_cast<unsigned>(dst), m);
}

void Emitter::movsx_rm16(Gp dst, const Mem& m) {
  rex_rm(false, dst, m);
  u8(0x0F);
  u8(0xBF);
  modrm_mem(static_cast<unsigned>(dst), m);
}

void Emitter::movsx_rr8(Gp dst, Gp src) {
  rex_rr(false, dst, src, static_cast<unsigned>(src) >= 4);
  u8(0x0F);
  u8(0xBE);
  modrm_reg(static_cast<unsigned>(dst), static_cast<unsigned>(src));
}

void Emitter::movsx_rr16(Gp dst, Gp src) {
  rex_rr(false, dst, src);
  u8(0x0F);
  u8(0xBF);
  modrm_reg(static_cast<unsigned>(dst), static_cast<unsigned>(src));
}

// ---- ALU --------------------------------------------------------------------

void Emitter::alu_rr32(std::uint8_t op_index, Gp dst, Gp src) {
  rex_rr(false, dst, src);
  u8(static_cast<std::uint8_t>(op_index * 8 + 3));  // reg <- rm form
  modrm_reg(static_cast<unsigned>(dst), static_cast<unsigned>(src));
}

void Emitter::alu_ri32(std::uint8_t op_index, Gp dst, std::uint32_t imm) {
  const auto simm = static_cast<std::int32_t>(imm);
  rex(false, 0, 0, static_cast<unsigned>(dst));
  if (fits_i8(simm)) {
    u8(0x83);
    modrm_reg(op_index, static_cast<unsigned>(dst));
    u8(static_cast<std::uint8_t>(imm));
  } else {
    u8(0x81);
    modrm_reg(op_index, static_cast<unsigned>(dst));
    u32(imm);
  }
}

void Emitter::alu_ri64(std::uint8_t op_index, Gp dst, std::int32_t imm) {
  rex(true, 0, 0, static_cast<unsigned>(dst));
  if (fits_i8(imm)) {
    u8(0x83);
    modrm_reg(op_index, static_cast<unsigned>(dst));
    u8(static_cast<std::uint8_t>(imm));
  } else {
    u8(0x81);
    modrm_reg(op_index, static_cast<unsigned>(dst));
    u32(static_cast<std::uint32_t>(imm));
  }
}

void Emitter::add_rr(Gp dst, Gp src) { alu_rr32(0, dst, src); }
void Emitter::or_rr(Gp dst, Gp src) { alu_rr32(1, dst, src); }
void Emitter::adc_rr(Gp dst, Gp src) { alu_rr32(2, dst, src); }
void Emitter::sbb_rr(Gp dst, Gp src) { alu_rr32(3, dst, src); }
void Emitter::and_rr(Gp dst, Gp src) { alu_rr32(4, dst, src); }
void Emitter::sub_rr(Gp dst, Gp src) { alu_rr32(5, dst, src); }
void Emitter::xor_rr(Gp dst, Gp src) { alu_rr32(6, dst, src); }
void Emitter::cmp_rr(Gp a, Gp b) { alu_rr32(7, a, b); }

void Emitter::add_ri(Gp dst, std::uint32_t imm) { alu_ri32(0, dst, imm); }
void Emitter::or_ri(Gp dst, std::uint32_t imm) { alu_ri32(1, dst, imm); }
void Emitter::adc_ri(Gp dst, std::uint32_t imm) { alu_ri32(2, dst, imm); }
void Emitter::sbb_ri(Gp dst, std::uint32_t imm) { alu_ri32(3, dst, imm); }
void Emitter::and_ri(Gp dst, std::uint32_t imm) { alu_ri32(4, dst, imm); }
void Emitter::sub_ri(Gp dst, std::uint32_t imm) { alu_ri32(5, dst, imm); }
void Emitter::xor_ri(Gp dst, std::uint32_t imm) { alu_ri32(6, dst, imm); }
void Emitter::cmp_ri(Gp a, std::uint32_t imm) { alu_ri32(7, a, imm); }

void Emitter::add_ri64(Gp dst, std::int32_t imm) { alu_ri64(0, dst, imm); }
void Emitter::sub_ri64(Gp dst, std::int32_t imm) { alu_ri64(5, dst, imm); }
void Emitter::cmp_ri64(Gp a, std::int32_t imm) { alu_ri64(7, a, imm); }

void Emitter::add_rm(Gp dst, const Mem& m) {
  rex_rm(false, dst, m);
  u8(0x03);
  modrm_mem(static_cast<unsigned>(dst), m);
}

void Emitter::add_mi64(const Mem& m, std::int32_t imm) {
  rex_rm(true, Gp::rax, m);
  if (fits_i8(imm)) {
    u8(0x83);
    modrm_mem(0, m);
    u8(static_cast<std::uint8_t>(imm));
  } else {
    u8(0x81);
    modrm_mem(0, m);
    u32(static_cast<std::uint32_t>(imm));
  }
}

void Emitter::add_mr64(const Mem& m, Gp src) {
  rex_rm(true, src, m);
  u8(0x01);
  modrm_mem(static_cast<unsigned>(src), m);
}

void Emitter::cmp_rm(Gp a, const Mem& m) {
  rex_rm(false, a, m);
  u8(0x3B);
  modrm_mem(static_cast<unsigned>(a), m);
}

void Emitter::cmp_rm64(Gp a, const Mem& m) {
  rex_rm(true, a, m);
  u8(0x3B);
  modrm_mem(static_cast<unsigned>(a), m);
}

void Emitter::or_rm8(Gp dst, const Mem& m) {
  rex_rm(false, dst, m, static_cast<unsigned>(dst) >= 4);
  u8(0x0A);
  modrm_mem(static_cast<unsigned>(dst), m);
}

void Emitter::xor_rm8(Gp dst, const Mem& m) {
  rex_rm(false, dst, m, static_cast<unsigned>(dst) >= 4);
  u8(0x32);
  modrm_mem(static_cast<unsigned>(dst), m);
}

void Emitter::test_rr(Gp a, Gp b) {
  rex_rr(false, b, a);
  u8(0x85);
  modrm_reg(static_cast<unsigned>(b), static_cast<unsigned>(a));
}

void Emitter::test_rr64(Gp a, Gp b) {
  rex_rr(true, b, a);
  u8(0x85);
  modrm_reg(static_cast<unsigned>(b), static_cast<unsigned>(a));
}

void Emitter::test_ri(Gp a, std::uint32_t imm) {
  rex(false, 0, 0, static_cast<unsigned>(a));
  u8(0xF7);
  modrm_reg(0, static_cast<unsigned>(a));
  u32(imm);
}

void Emitter::grp3_r32(std::uint8_t ext, Gp r) {
  rex(false, 0, 0, static_cast<unsigned>(r));
  u8(0xF7);
  modrm_reg(ext, static_cast<unsigned>(r));
}

void Emitter::not_r(Gp r) { grp3_r32(2, r); }
void Emitter::neg_r(Gp r) { grp3_r32(3, r); }
void Emitter::mul_r(Gp r) { grp3_r32(4, r); }
void Emitter::imul_r(Gp r) { grp3_r32(5, r); }

void Emitter::imul_rr(Gp dst, Gp src) {
  rex_rr(false, dst, src);
  u8(0x0F);
  u8(0xAF);
  modrm_reg(static_cast<unsigned>(dst), static_cast<unsigned>(src));
}

void Emitter::shift_ri32(std::uint8_t ext, Gp r, std::uint8_t imm) {
  rex(false, 0, 0, static_cast<unsigned>(r));
  u8(0xC1);
  modrm_reg(ext, static_cast<unsigned>(r));
  u8(imm);
}

void Emitter::shift_cl32(std::uint8_t ext, Gp r) {
  rex(false, 0, 0, static_cast<unsigned>(r));
  u8(0xD3);
  modrm_reg(ext, static_cast<unsigned>(r));
}

void Emitter::shl_ri(Gp r, std::uint8_t imm) { shift_ri32(4, r, imm); }
void Emitter::shr_ri(Gp r, std::uint8_t imm) { shift_ri32(5, r, imm); }
void Emitter::sar_ri(Gp r, std::uint8_t imm) { shift_ri32(7, r, imm); }
void Emitter::shl_cl(Gp r) { shift_cl32(4, r); }
void Emitter::shr_cl(Gp r) { shift_cl32(5, r); }
void Emitter::sar_cl(Gp r) { shift_cl32(7, r); }

void Emitter::bswap_r(Gp r) {
  rex(false, 0, 0, static_cast<unsigned>(r));
  u8(0x0F);
  u8(static_cast<std::uint8_t>(0xC8 + lo3(r)));
}

void Emitter::ror16_ri(Gp r, std::uint8_t imm) {
  u8(0x66);
  rex(false, 0, 0, static_cast<unsigned>(r));
  u8(0xC1);
  modrm_reg(1, static_cast<unsigned>(r));
  u8(imm);
}

void Emitter::bt_ri(Gp r, std::uint8_t bit) {
  rex(false, 0, 0, static_cast<unsigned>(r));
  u8(0x0F);
  u8(0xBA);
  modrm_reg(4, static_cast<unsigned>(r));
  u8(bit);
}

void Emitter::bt_rr(Gp r, Gp bit) {
  rex_rr(false, bit, r);
  u8(0x0F);
  u8(0xA3);
  modrm_reg(static_cast<unsigned>(bit), static_cast<unsigned>(r));
}

void Emitter::setcc_r(Cc cc, Gp dst) {
  rex(false, 0, 0, static_cast<unsigned>(dst),
      static_cast<unsigned>(dst) >= 4);
  u8(0x0F);
  u8(static_cast<std::uint8_t>(0x90 + static_cast<unsigned>(cc)));
  modrm_reg(0, static_cast<unsigned>(dst));
}

void Emitter::setcc_m(Cc cc, const Mem& m) {
  rex_rm(false, Gp::rax, m);
  u8(0x0F);
  u8(static_cast<std::uint8_t>(0x90 + static_cast<unsigned>(cc)));
  modrm_mem(0, m);
}

void Emitter::lea_r32(Gp dst, const Mem& m) {
  rex_rm(false, dst, m);
  u8(0x8D);
  modrm_mem(static_cast<unsigned>(dst), m);
}

// ---- control ----------------------------------------------------------------

void Emitter::put_rel32(Label& target) {
  if (target.bound()) {
    const std::int64_t rel = static_cast<std::int64_t>(target.pos_) -
                             (static_cast<std::int64_t>(offset()) + 4);
    u32(static_cast<std::uint32_t>(rel));
  } else {
    target.refs_.push_back(offset());
    u32(0);
  }
}

void Emitter::jcc(Cc cc, Label& target) {
  u8(0x0F);
  u8(static_cast<std::uint8_t>(0x80 + static_cast<unsigned>(cc)));
  put_rel32(target);
}

void Emitter::jmp(Label& target) {
  u8(0xE9);
  put_rel32(target);
}

std::uint32_t Emitter::jmp_patchable() {
  u8(0xE9);
  const std::uint32_t site = offset();
  u32(0);  // rel 0: falls through to the next instruction until patched
  return site;
}

void Emitter::call_r(Gp r) {
  rex(false, 0, 0, static_cast<unsigned>(r));
  u8(0xFF);
  modrm_reg(2, static_cast<unsigned>(r));
}

void Emitter::jmp_m(const Mem& m) {
  rex_rm(false, Gp::rax, m);  // reg field carries the /4 extension, no REX.R
  u8(0xFF);
  modrm_mem(4, m);
}

void Emitter::ret() { u8(0xC3); }

void Emitter::push_r(Gp r) {
  rex(false, 0, 0, static_cast<unsigned>(r));
  u8(static_cast<std::uint8_t>(0x50 + lo3(r)));
}

void Emitter::pop_r(Gp r) {
  rex(false, 0, 0, static_cast<unsigned>(r));
  u8(static_cast<std::uint8_t>(0x58 + lo3(r)));
}

void Emitter::int3() { u8(0xCC); }

void Emitter::bind(Label& label) {
  assert(!label.bound());
  label.pos_ = static_cast<std::int32_t>(offset());
  for (const std::uint32_t ref : label.refs_) {
    const std::int64_t rel = static_cast<std::int64_t>(label.pos_) -
                             (static_cast<std::int64_t>(ref) + 4);
    const auto bits = static_cast<std::uint32_t>(rel);
    buf_[ref + 0] = static_cast<std::uint8_t>(bits);
    buf_[ref + 1] = static_cast<std::uint8_t>(bits >> 8);
    buf_[ref + 2] = static_cast<std::uint8_t>(bits >> 16);
    buf_[ref + 3] = static_cast<std::uint8_t>(bits >> 24);
  }
  label.refs_.clear();
}

}  // namespace nfp::asmkit::x64
