#include "asmkit/assembler.h"

#include <bit>
#include <cctype>
#include <cstdlib>
#include <optional>
#include <vector>

#include "isa/encode.h"
#include "isa/names.h"

namespace nfp::asmkit {
namespace {

using isa::Op;

constexpr std::uint32_t kTextAlign = 4;
constexpr std::uint32_t kDataAlign = 8;

[[noreturn]] void fail(int line, const std::string& message) {
  throw AsmError("asm line " + std::to_string(line) + ": " + message);
}

// ---------------------------------------------------------------------------
// Tokens (instruction lines only; directives parse their own operand text).

enum class TokKind { kIdent, kReg, kFreg, kNum, kPunct, kY, kHi, kLo };

struct Tok {
  TokKind kind;
  std::string text;   // ident / punct character
  std::int64_t num = 0;
  std::uint8_t reg = 0;
};

std::vector<Tok> tokenize(std::string_view text, int line) {
  std::vector<Tok> out;
  std::size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '%') {
      std::size_t j = i + 1;
      while (j < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[j])))) {
        ++j;
      }
      const std::string_view word = text.substr(i, j - i);
      if (word == "%hi") {
        out.push_back({TokKind::kHi, "%hi", 0, 0});
      } else if (word == "%lo") {
        out.push_back({TokKind::kLo, "%lo", 0, 0});
      } else if (word == "%y") {
        out.push_back({TokKind::kY, "%y", 0, 0});
      } else if (const auto r = isa::parse_reg(word)) {
        out.push_back({TokKind::kReg, std::string(word), 0, *r});
      } else if (const auto f = isa::parse_freg(word)) {
        out.push_back({TokKind::kFreg, std::string(word), 0, *f});
      } else {
        fail(line, "bad register '" + std::string(word) + "'");
      }
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      char* end = nullptr;
      const long long value = std::strtoll(text.data() + i, &end, 0);
      out.push_back({TokKind::kNum, "", value, 0});
      i = static_cast<std::size_t>(end - text.data());
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '.') {
      std::size_t j = i;
      while (j < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[j])) ||
              text[j] == '_' || text[j] == '.' || text[j] == '$')) {
        ++j;
      }
      out.push_back({TokKind::kIdent, std::string(text.substr(i, j - i)), 0, 0});
      i = j;
      continue;
    }
    if (c == '[' || c == ']' || c == '(' || c == ')' || c == '+' || c == '-' ||
        c == ',') {
      out.push_back({TokKind::kPunct, std::string(1, c), 0, 0});
      ++i;
      continue;
    }
    fail(line, std::string("unexpected character '") + c + "'");
  }
  return out;
}

// ---------------------------------------------------------------------------
// Expressions: [%hi|%lo] ( term (('+'|'-') term)* ) where term is a number
// or a symbol. Evaluated during the final pass only.

enum class ExprMod { kNone, kHi, kLo };

struct Term {
  int sign = 1;
  bool is_symbol = false;
  std::int64_t value = 0;
  std::string symbol;
};

struct Expr {
  ExprMod mod = ExprMod::kNone;
  std::vector<Term> terms;
};

class TokStream {
 public:
  TokStream(const std::vector<Tok>& toks, int line) : toks_(toks), line_(line) {}

  bool done() const { return pos_ >= toks_.size(); }
  const Tok& peek() const {
    if (done()) fail(line_, "unexpected end of operands");
    return toks_[pos_];
  }
  Tok next() {
    const Tok t = peek();
    ++pos_;
    return t;
  }
  bool accept_punct(char c) {
    if (!done() && toks_[pos_].kind == TokKind::kPunct &&
        toks_[pos_].text[0] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  void expect_punct(char c) {
    if (!accept_punct(c)) {
      fail(line_, std::string("expected '") + c + "'");
    }
  }
  void expect_done() const {
    if (!done()) fail(line_, "trailing operands");
  }
  int line() const { return line_; }

 private:
  const std::vector<Tok>& toks_;
  std::size_t pos_ = 0;
  int line_;
};

Expr parse_expr(TokStream& ts) {
  Expr expr;
  if (!ts.done() && (ts.peek().kind == TokKind::kHi ||
                     ts.peek().kind == TokKind::kLo)) {
    expr.mod = ts.next().kind == TokKind::kHi ? ExprMod::kHi : ExprMod::kLo;
    ts.expect_punct('(');
  }
  int sign = 1;
  if (ts.accept_punct('-')) sign = -1;
  while (true) {
    const Tok t = ts.next();
    Term term;
    term.sign = sign;
    if (t.kind == TokKind::kNum) {
      term.value = t.num;
    } else if (t.kind == TokKind::kIdent) {
      term.is_symbol = true;
      term.symbol = t.text;
    } else {
      fail(ts.line(), "expected number or symbol");
    }
    expr.terms.push_back(std::move(term));
    if (ts.accept_punct('+')) {
      sign = 1;
    } else if (ts.accept_punct('-')) {
      sign = -1;
    } else {
      break;
    }
  }
  if (expr.mod != ExprMod::kNone) ts.expect_punct(')');
  return expr;
}

// An instruction operand that is either a register or an immediate expression.
struct RegOrImm {
  bool is_reg = false;
  std::uint8_t reg = 0;
  Expr expr;
};

RegOrImm parse_reg_or_imm(TokStream& ts) {
  RegOrImm out;
  if (!ts.done() && ts.peek().kind == TokKind::kReg) {
    out.is_reg = true;
    out.reg = ts.next().reg;
    return out;
  }
  out.expr = parse_expr(ts);
  return out;
}

// Memory operand [rs1], [rs1+imm], [rs1-imm], [rs1+rs2].
struct MemOperand {
  std::uint8_t rs1 = 0;
  bool index_is_reg = false;
  std::uint8_t rs2 = 0;
  Expr offset;  // empty terms => zero immediate
};

MemOperand parse_mem(TokStream& ts) {
  MemOperand m;
  ts.expect_punct('[');
  const Tok base = ts.next();
  if (base.kind != TokKind::kReg) fail(ts.line(), "expected base register");
  m.rs1 = base.reg;
  if (ts.accept_punct('+')) {
    if (ts.peek().kind == TokKind::kReg) {
      m.index_is_reg = true;
      m.rs2 = ts.next().reg;
    } else {
      m.offset = parse_expr(ts);
    }
  } else if (!ts.done() && ts.peek().kind == TokKind::kPunct &&
             ts.peek().text[0] == '-') {
    m.offset = parse_expr(ts);  // consumes the leading '-'
  }
  ts.expect_punct(']');
  return m;
}

// ---------------------------------------------------------------------------
// Statements.

enum class StmtKind {
  kInsn,   // one encoded instruction (pseudos included; `set` is 8 bytes)
  kData,   // raw bytes
  kSpace,  // zero / NOP fill (also produced by .align)
};

struct Stmt {
  StmtKind kind;
  int line = 0;
  int section = 0;  // 0 = text, 1 = data

  // kInsn:
  std::string mnemonic;
  std::vector<Tok> toks;
  // kData:
  std::vector<std::uint8_t> bytes;
  // kAlign / kSpace:
  std::uint32_t amount = 0;
};

struct SymbolDef {
  int section = 0;      // 0 text, 1 data, 2 absolute (.equ)
  std::uint32_t value = 0;
};

void append_be32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

// ---------------------------------------------------------------------------
// The assembler proper.

class Unit {
 public:
  explicit Unit(std::uint32_t origin) : origin_(origin) {}

  Program run(std::string_view source) {
    parse(source);
    layout();
    return encode_all();
  }

 private:
  // ---- parsing ------------------------------------------------------------
  void parse(std::string_view source) {
    int line_no = 0;
    std::size_t pos = 0;
    while (pos <= source.size()) {
      const std::size_t eol = source.find('\n', pos);
      std::string_view line = source.substr(
          pos, eol == std::string_view::npos ? source.size() - pos : eol - pos);
      ++line_no;
      parse_line(line, line_no);
      if (eol == std::string_view::npos) break;
      pos = eol + 1;
    }
  }

  static std::string_view strip(std::string_view s) {
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
      s.remove_prefix(1);
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
      s.remove_suffix(1);
    return s;
  }

  void parse_line(std::string_view line, int line_no) {
    // Strip comments, honouring double-quoted strings (.asciz).
    bool in_string = false;
    std::size_t comment = line.size();
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      if (c == '"' && (i == 0 || line[i - 1] != '\\')) in_string = !in_string;
      if (!in_string && (c == '!' || c == ';' || c == '#')) {
        comment = i;
        break;
      }
    }
    std::string_view text = strip(line.substr(0, comment));

    // Labels.
    while (true) {
      std::size_t i = 0;
      while (i < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[i])) ||
              text[i] == '_' || text[i] == '$' || text[i] == '.')) {
        ++i;
      }
      if (i > 0 && i < text.size() && text[i] == ':') {
        define_label(std::string(text.substr(0, i)), line_no);
        text = strip(text.substr(i + 1));
        continue;
      }
      break;
    }
    if (text.empty()) return;

    if (text[0] == '.') {
      parse_directive(text, line_no);
      return;
    }

    // Instruction.
    std::size_t i = 0;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    Stmt s;
    s.kind = StmtKind::kInsn;
    s.line = line_no;
    s.section = section_;
    s.mnemonic = std::string(text.substr(0, i));
    s.toks = tokenize(text.substr(i), line_no);
    const std::uint32_t size = insn_size(s.mnemonic, line_no);
    add_stmt(std::move(s), size);
  }

  std::uint32_t insn_size(const std::string& mnem, int line_no) {
    if (mnem == "set") return 8;
    (void)line_no;
    return 4;
  }

  void define_label(const std::string& name, int line_no) {
    if (symbols_.count(name)) fail(line_no, "duplicate label '" + name + "'");
    symbols_[name] = SymbolDef{section_, section_ == 0 ? text_off_ : data_off_};
  }

  void parse_directive(std::string_view text, int line_no) {
    std::size_t i = 0;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    const std::string_view name = text.substr(0, i);
    const std::string rest{strip(text.substr(i))};

    if (name == ".text") { section_ = 0; return; }
    if (name == ".data") { section_ = 1; return; }
    if (name == ".global" || name == ".globl" || name == ".type" ||
        name == ".size") {
      return;  // accepted and ignored
    }
    if (name == ".align") {
      Stmt s;
      s.kind = StmtKind::kSpace;  // add_align converts the boundary to padding
      s.line = line_no;
      s.section = section_;
      s.amount = parse_u32(rest, line_no);
      if (s.amount == 0 || (s.amount & (s.amount - 1)) != 0) {
        fail(line_no, ".align must be a power of two");
      }
      add_align(std::move(s));
      return;
    }
    if (name == ".space" || name == ".skip") {
      Stmt s;
      s.kind = StmtKind::kSpace;
      s.line = line_no;
      s.section = section_;
      s.amount = parse_u32(rest, line_no);
      const std::uint32_t size = s.amount;
      add_stmt(std::move(s), size);
      return;
    }
    if (name == ".equ") {
      const std::size_t comma = rest.find(',');
      if (comma == std::string::npos) fail(line_no, ".equ needs name, value");
      const std::string sym{strip(std::string_view(rest).substr(0, comma))};
      const std::uint32_t value =
          parse_u32(std::string(strip(std::string_view(rest).substr(comma + 1))),
                    line_no);
      if (symbols_.count(sym)) fail(line_no, "duplicate symbol '" + sym + "'");
      symbols_[sym] = SymbolDef{2, value};
      return;
    }
    if (name == ".word" || name == ".half" || name == ".byte" ||
        name == ".double" || name == ".float") {
      Stmt s;
      s.kind = StmtKind::kData;
      s.line = line_no;
      s.section = section_;
      for (const std::string& item : split_commas(rest)) {
        if (name == ".double" || name == ".float") {
          char* end = nullptr;
          const double value = std::strtod(item.c_str(), &end);
          if (end == item.c_str()) fail(line_no, "bad float '" + item + "'");
          if (name == ".double") {
            const auto bits = std::bit_cast<std::uint64_t>(value);
            append_be32(s.bytes, static_cast<std::uint32_t>(bits >> 32));
            append_be32(s.bytes, static_cast<std::uint32_t>(bits));
          } else {
            const auto bits =
                std::bit_cast<std::uint32_t>(static_cast<float>(value));
            append_be32(s.bytes, bits);
          }
        } else {
          const std::int64_t value = parse_i64(item, line_no);
          if (name == ".word") {
            append_be32(s.bytes, static_cast<std::uint32_t>(value));
          } else if (name == ".half") {
            s.bytes.push_back(static_cast<std::uint8_t>(value >> 8));
            s.bytes.push_back(static_cast<std::uint8_t>(value));
          } else {
            s.bytes.push_back(static_cast<std::uint8_t>(value));
          }
        }
      }
      const auto size = static_cast<std::uint32_t>(s.bytes.size());
      add_stmt(std::move(s), size);
      return;
    }
    if (name == ".asciz" || name == ".ascii") {
      Stmt s;
      s.kind = StmtKind::kData;
      s.line = line_no;
      s.section = section_;
      s.bytes = parse_string(rest, line_no);
      if (name == ".asciz") s.bytes.push_back(0);
      const auto size = static_cast<std::uint32_t>(s.bytes.size());
      add_stmt(std::move(s), size);
      return;
    }
    fail(line_no, "unknown directive '" + std::string(name) + "'");
  }

  static std::vector<std::string> split_commas(const std::string& text) {
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= text.size(); ++i) {
      if (i == text.size() || text[i] == ',') {
        const auto piece = strip(std::string_view(text).substr(start, i - start));
        if (!piece.empty()) out.emplace_back(piece);
        start = i + 1;
      }
    }
    return out;
  }

  static std::uint32_t parse_u32(const std::string& text, int line_no) {
    return static_cast<std::uint32_t>(parse_i64(text, line_no));
  }

  static std::int64_t parse_i64(const std::string& text, int line_no) {
    char* end = nullptr;
    const long long value = std::strtoll(text.c_str(), &end, 0);
    if (end == text.c_str() || *end != '\0') {
      fail(line_no, "bad integer '" + text + "'");
    }
    return value;
  }

  static std::vector<std::uint8_t> parse_string(const std::string& text,
                                                int line_no) {
    if (text.size() < 2 || text.front() != '"' || text.back() != '"') {
      fail(line_no, "expected quoted string");
    }
    std::vector<std::uint8_t> out;
    for (std::size_t i = 1; i + 1 < text.size(); ++i) {
      char c = text[i];
      if (c == '\\' && i + 2 < text.size()) {
        ++i;
        switch (text[i]) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case '0': c = '\0'; break;
          case '\\': c = '\\'; break;
          case '"': c = '"'; break;
          default: fail(line_no, "bad escape");
        }
      }
      out.push_back(static_cast<std::uint8_t>(c));
    }
    return out;
  }

  void add_stmt(Stmt stmt, std::uint32_t size) {
    std::uint32_t& off = stmt.section == 0 ? text_off_ : data_off_;
    stmt_offsets_.push_back(off);
    off += size;
    stmts_.push_back(std::move(stmt));
  }

  void add_align(Stmt stmt) {
    std::uint32_t& off = stmt.section == 0 ? text_off_ : data_off_;
    const std::uint32_t aligned = (off + stmt.amount - 1) & ~(stmt.amount - 1);
    stmt_offsets_.push_back(off);
    stmt.amount = aligned - off;  // repurposed as pad byte count
    stmt.kind = StmtKind::kSpace;
    off = aligned;
    stmts_.push_back(std::move(stmt));
  }

  // ---- layout ---------------------------------------------------------------
  void layout() {
    text_base_ = origin_;
    data_base_ = (origin_ + text_off_ + (kDataAlign - 1)) & ~(kDataAlign - 1);
    total_size_ =
        data_off_ == 0 ? text_off_ : (data_base_ - origin_) + data_off_;
  }

  std::uint32_t symbol_address(const std::string& name, int line_no) const {
    const auto it = symbols_.find(name);
    if (it == symbols_.end()) fail(line_no, "undefined symbol '" + name + "'");
    switch (it->second.section) {
      case 0: return text_base_ + it->second.value;
      case 1: return data_base_ + it->second.value;
      default: return it->second.value;
    }
  }

  std::int64_t eval(const Expr& expr, int line_no) const {
    std::int64_t value = 0;
    for (const Term& t : expr.terms) {
      const std::int64_t term =
          t.is_symbol ? symbol_address(t.symbol, line_no) : t.value;
      value += t.sign * term;
    }
    const auto uvalue = static_cast<std::uint32_t>(value);
    switch (expr.mod) {
      case ExprMod::kHi: return uvalue & 0xFFFFFC00u;
      case ExprMod::kLo: return uvalue & 0x3FFu;
      case ExprMod::kNone: return value;
    }
    return value;
  }

  std::int32_t eval_simm13(const Expr& expr, int line_no) const {
    const std::int64_t value = eval(expr, line_no);
    if (expr.mod == ExprMod::kNone && (value < -4096 || value > 4095)) {
      fail(line_no, "immediate out of simm13 range: " + std::to_string(value));
    }
    return static_cast<std::int32_t>(value);
  }

  // ---- encoding -------------------------------------------------------------
  Program encode_all() {
    std::vector<std::uint8_t> text_bytes;
    std::vector<std::uint8_t> data_bytes;
    text_bytes.reserve(text_off_);
    data_bytes.reserve(data_off_);

    for (std::size_t i = 0; i < stmts_.size(); ++i) {
      const Stmt& s = stmts_[i];
      auto& out = s.section == 0 ? text_bytes : data_bytes;
      const std::uint32_t base = s.section == 0 ? text_base_ : data_base_;
      const std::uint32_t pc = base + stmt_offsets_[i];
      switch (s.kind) {
        case StmtKind::kInsn:
          encode_insn(s, pc, out);
          break;
        case StmtKind::kData:
          out.insert(out.end(), s.bytes.begin(), s.bytes.end());
          break;
        case StmtKind::kSpace:
          for (std::uint32_t k = 0; k < s.amount; ++k) {
            // Pad text with NOPs so padding is executable/disassemblable.
            if (s.section == 0 && s.amount % 4 == 0 && k % 4 == 0) {
              append_be32(out, isa::enc_nop());
              k += 3;
            } else {
              out.push_back(0);
            }
          }
          break;
      }
    }

    if (text_bytes.size() != text_off_ || data_bytes.size() != data_off_) {
      throw AsmError("internal: pass size mismatch");
    }

    std::vector<std::uint8_t> blob(total_size_, 0);
    std::copy(text_bytes.begin(), text_bytes.end(), blob.begin());
    std::copy(data_bytes.begin(), data_bytes.end(),
              blob.begin() + (data_base_ - origin_));

    Program prog(origin_, std::move(blob));
    prog.set_text_size(text_off_);
    for (const auto& [name, def] : symbols_) {
      switch (def.section) {
        case 0: prog.define_symbol(name, text_base_ + def.value); break;
        case 1: prog.define_symbol(name, data_base_ + def.value); break;
        default: prog.define_symbol(name, def.value); break;
      }
    }
    const auto entry = prog.find_symbol("_start");
    prog.set_entry(entry ? *entry : origin_);
    return prog;
  }

  void encode_insn(const Stmt& s, std::uint32_t pc,
                   std::vector<std::uint8_t>& out) const {
    const int line = s.line;
    TokStream ts(s.toks, line);
    const std::string& m = s.mnemonic;

    // Pseudo-instructions first.
    if (m == "nop") {
      ts.expect_done();
      append_be32(out, isa::enc_nop());
      return;
    }
    if (m == "set") {
      const Expr expr = parse_expr(ts);
      ts.expect_punct(',');
      const std::uint8_t rd = expect_reg(ts);
      ts.expect_done();
      const auto value = static_cast<std::uint32_t>(eval(expr, line));
      append_be32(out, isa::enc_sethi(rd, value & 0xFFFFFC00u));
      append_be32(out, isa::enc_alu_imm(Op::kOr, rd, rd,
                                        static_cast<std::int32_t>(value & 0x3FFu)));
      return;
    }
    if (m == "mov") {
      const RegOrImm src = parse_reg_or_imm(ts);
      ts.expect_punct(',');
      const std::uint8_t rd = expect_reg(ts);
      ts.expect_done();
      append_be32(out, src.is_reg
                           ? isa::enc_alu(Op::kOr, rd, 0, src.reg)
                           : isa::enc_alu_imm(Op::kOr, rd, 0,
                                              eval_simm13(src.expr, line)));
      return;
    }
    if (m == "clr") {
      const std::uint8_t rd = expect_reg(ts);
      ts.expect_done();
      append_be32(out, isa::enc_alu(Op::kOr, rd, 0, 0));
      return;
    }
    if (m == "cmp") {
      const std::uint8_t rs1 = expect_reg(ts);
      ts.expect_punct(',');
      const RegOrImm rhs = parse_reg_or_imm(ts);
      ts.expect_done();
      append_be32(out, rhs.is_reg
                           ? isa::enc_alu(Op::kSubcc, 0, rs1, rhs.reg)
                           : isa::enc_alu_imm(Op::kSubcc, 0, rs1,
                                              eval_simm13(rhs.expr, line)));
      return;
    }
    if (m == "ret" || m == "retl") {
      ts.expect_done();
      append_be32(out, isa::enc_alu_imm(Op::kJmpl, 0, isa::kRegO7, 8));
      return;
    }
    if (m == "ta") {
      const Expr expr = parse_expr(ts);
      ts.expect_done();
      append_be32(out, isa::enc_ta(eval_simm13(expr, line)));
      return;
    }
    if (m == "call") {
      const Expr expr = parse_expr(ts);
      ts.expect_done();
      const auto target = static_cast<std::uint32_t>(eval(expr, line));
      append_be32(out, isa::enc_call(static_cast<std::int32_t>(target - pc)));
      return;
    }
    if (m == "sethi") {
      const Expr expr = parse_expr(ts);
      ts.expect_punct(',');
      const std::uint8_t rd = expect_reg(ts);
      ts.expect_done();
      auto value = static_cast<std::uint32_t>(eval(expr, line));
      if (expr.mod == ExprMod::kNone && (value & 0x3FF) != 0) {
        fail(line, "sethi operand must have low 10 bits clear");
      }
      append_be32(out, isa::enc_sethi(rd, value & 0xFFFFFC00u));
      return;
    }
    if (m == "jmpl") {
      const std::uint8_t rs1 = expect_reg(ts);
      Expr off;
      bool index_is_reg = false;
      std::uint8_t rs2 = 0;
      if (ts.accept_punct('+')) {
        if (ts.peek().kind == TokKind::kReg) {
          index_is_reg = true;
          rs2 = ts.next().reg;
        } else {
          off = parse_expr(ts);
        }
      }
      ts.expect_punct(',');
      const std::uint8_t rd = expect_reg(ts);
      ts.expect_done();
      append_be32(out, index_is_reg
                           ? isa::enc_alu(Op::kJmpl, rd, rs1, rs2)
                           : isa::enc_alu_imm(Op::kJmpl, rd, rs1,
                                              off.terms.empty()
                                                  ? 0
                                                  : eval_simm13(off, line)));
      return;
    }
    if (m == "rd") {
      if (ts.peek().kind != TokKind::kY) fail(line, "rd expects %y");
      ts.next();
      ts.expect_punct(',');
      const std::uint8_t rd = expect_reg(ts);
      ts.expect_done();
      append_be32(out, isa::enc_alu(Op::kRdy, rd, 0, 0));
      return;
    }
    if (m == "wr") {
      const std::uint8_t rs1 = expect_reg(ts);
      ts.expect_punct(',');
      const RegOrImm rhs = parse_reg_or_imm(ts);
      ts.expect_punct(',');
      if (ts.peek().kind != TokKind::kY) fail(line, "wr expects %y");
      ts.next();
      ts.expect_done();
      append_be32(out, rhs.is_reg
                           ? isa::enc_alu(Op::kWry, 0, rs1, rhs.reg)
                           : isa::enc_alu_imm(Op::kWry, 0, rs1,
                                              eval_simm13(rhs.expr, line)));
      return;
    }

    // Branches: b<cond>[,a] / fb<cond>[,a] / plain "b".
    if (m[0] == 'b' || (m.size() >= 2 && m[0] == 'f' && m[1] == 'b')) {
      const bool fp = m[0] == 'f';
      std::string cond_text = fp ? m.substr(2) : m.substr(1);
      bool annul = false;
      if (cond_text.size() >= 2 &&
          cond_text.substr(cond_text.size() - 2) == ",a") {
        annul = true;
        cond_text = cond_text.substr(0, cond_text.size() - 2);
      }
      if (cond_text.empty()) cond_text = "a";
      std::optional<std::uint32_t> word;
      if (fp) {
        if (const auto fc = isa::fcond_from_name(cond_text)) {
          const Expr target = parse_expr(ts);
          ts.expect_done();
          const auto addr = static_cast<std::uint32_t>(eval(target, line));
          word = isa::enc_fbfcc(*fc, annul,
                                static_cast<std::int32_t>(addr - pc));
        }
      } else {
        if (const auto c = isa::cond_from_name(cond_text)) {
          const Expr target = parse_expr(ts);
          ts.expect_done();
          const auto addr = static_cast<std::uint32_t>(eval(target, line));
          word = isa::enc_bicc(*c, annul, static_cast<std::int32_t>(addr - pc));
        }
      }
      if (word) {
        append_be32(out, *word);
        return;
      }
      // Fall through: mnemonics like "bclr" would land here (none exist).
    }

    const Op op = isa::op_from_mnemonic(m);
    if (op == Op::kInvalid) fail(line, "unknown mnemonic '" + m + "'");

    if (isa::is_load(op)) {
      const MemOperand mem = parse_mem(ts);
      ts.expect_punct(',');
      const bool fp = op == Op::kLdf || op == Op::kLddf;
      const std::uint8_t rd = fp ? expect_freg(ts) : expect_reg(ts);
      ts.expect_done();
      append_be32(out, encode_mem(op, rd, mem, line));
      return;
    }
    if (isa::is_store(op)) {
      const bool fp = op == Op::kStf || op == Op::kStdf;
      const std::uint8_t rd = fp ? expect_freg(ts) : expect_reg(ts);
      ts.expect_punct(',');
      const MemOperand mem = parse_mem(ts);
      ts.expect_done();
      append_be32(out, encode_mem(op, rd, mem, line));
      return;
    }
    if (isa::is_fpu(op)) {
      if (op == Op::kFcmps || op == Op::kFcmpd) {
        const std::uint8_t rs1 = expect_freg(ts);
        ts.expect_punct(',');
        const std::uint8_t rs2 = expect_freg(ts);
        ts.expect_done();
        append_be32(out, isa::enc_fp(op, 0, rs1, rs2));
        return;
      }
      switch (op) {
        case Op::kFmovs: case Op::kFnegs: case Op::kFabss: case Op::kFsqrts:
        case Op::kFsqrtd: case Op::kFitos: case Op::kFitod: case Op::kFstoi:
        case Op::kFdtoi: case Op::kFstod: case Op::kFdtos: {
          const std::uint8_t rs2 = expect_freg(ts);
          ts.expect_punct(',');
          const std::uint8_t rd = expect_freg(ts);
          ts.expect_done();
          append_be32(out, isa::enc_fp(op, rd, 0, rs2));
          return;
        }
        default: {
          const std::uint8_t rs1 = expect_freg(ts);
          ts.expect_punct(',');
          const std::uint8_t rs2 = expect_freg(ts);
          ts.expect_punct(',');
          const std::uint8_t rd = expect_freg(ts);
          ts.expect_done();
          append_be32(out, isa::enc_fp(op, rd, rs1, rs2));
          return;
        }
      }
    }

    // Integer ALU three-operand form: op rs1, reg_or_imm, rd.
    {
      const std::uint8_t rs1 = expect_reg(ts);
      ts.expect_punct(',');
      const RegOrImm rhs = parse_reg_or_imm(ts);
      ts.expect_punct(',');
      const std::uint8_t rd = expect_reg(ts);
      ts.expect_done();
      append_be32(out, rhs.is_reg
                           ? isa::enc_alu(op, rd, rs1, rhs.reg)
                           : isa::enc_alu_imm(op, rd, rs1,
                                              eval_simm13(rhs.expr, line)));
    }
  }

  std::uint32_t encode_mem(Op op, std::uint8_t rd, const MemOperand& mem,
                           int line) const {
    if (mem.index_is_reg) return isa::enc_mem(op, rd, mem.rs1, mem.rs2);
    const std::int32_t off =
        mem.offset.terms.empty() ? 0 : eval_simm13(mem.offset, line);
    return isa::enc_mem_imm(op, rd, mem.rs1, off);
  }

  static std::uint8_t expect_reg(TokStream& ts) {
    const Tok t = ts.next();
    if (t.kind != TokKind::kReg) fail(ts.line(), "expected integer register");
    return t.reg;
  }
  static std::uint8_t expect_freg(TokStream& ts) {
    const Tok t = ts.next();
    if (t.kind != TokKind::kFreg) fail(ts.line(), "expected FP register");
    return t.reg;
  }

  std::uint32_t origin_;
  int section_ = 0;
  std::uint32_t text_off_ = 0;
  std::uint32_t data_off_ = 0;
  std::uint32_t text_base_ = 0;
  std::uint32_t data_base_ = 0;
  std::uint32_t total_size_ = 0;
  std::vector<Stmt> stmts_;
  std::vector<std::uint32_t> stmt_offsets_;
  std::map<std::string, SymbolDef> symbols_;
};

}  // namespace

Program Assembler::assemble(std::string_view source) const {
  Unit unit(origin_);
  return unit.run(source);
}

Program assemble(std::string_view source, std::uint32_t origin) {
  return Assembler(origin).assemble(source);
}

}  // namespace nfp::asmkit
