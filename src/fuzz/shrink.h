// Delta-debugging minimiser for diverging fuzz programs.
//
// Generated programs are built from self-contained chunks (generator.h), so
// shrinking is chunk deletion: ddmin-style passes drop windows of chunks
// (half, quarter, ..., single) and keep any subset that still diverges,
// repeating to a fixpoint. The prologue (register inits, helpers, double
// pool) shrinks automatically because render_subset() only emits what the
// surviving chunks reference. The result is typically a one- or two-chunk
// reproducer small enough to read, disassemble and commit to the corpus.
#pragma once

#include <cstddef>
#include <string>

#include "fuzz/generator.h"
#include "fuzz/oracle.h"

namespace nfp::fuzz {

struct ShrinkResult {
  std::string source;       // minimal still-diverging source
  DiffReport report;        // its divergence (or the full program's, if the
                            // full program did not diverge)
  bool diverged = false;    // false if the full program was already clean
  std::size_t chunks_kept = 0;
  std::size_t instructions = 0;  // count_instructions(source)
  std::size_t oracle_runs = 0;   // differential runs spent shrinking
};

ShrinkResult shrink(const GenProgram& program, const DiffConfig& config,
                    DiffArena& arena);

}  // namespace nfp::fuzz
