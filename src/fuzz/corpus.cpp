#include "fuzz/corpus.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace nfp::fuzz {

std::string write_corpus_entry(const std::string& dir, std::uint64_t seed,
                               const std::string& mix_name,
                               const DiffReport& report,
                               const std::string& source) {
  namespace fs = std::filesystem;
  fs::create_directories(dir);
  const std::string name = "fuzz-seed" + std::to_string(seed) + "-" +
                           (report.mode.empty() ? "clean" : report.mode) +
                           ".s";
  const fs::path path = fs::path(dir) / name;
  std::ofstream out(path);
  out << "! nfpfuzz reproducer\n"
      << "! seed: " << seed << "\n"
      << "! mix: " << mix_name << "\n"
      << "! divergence: " << report.detail << "\n"
      << "! step instret: " << report.step_instret
      << (report.step_halted ? " (halted)" : " (budget)") << "\n"
      << source;
  return path.string();
}

std::vector<CorpusEntry> load_corpus_dir(const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<CorpusEntry> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".s") {
      continue;
    }
    std::ifstream in(entry.path());
    std::ostringstream text;
    text << in.rdbuf();
    out.push_back({entry.path().string(), text.str()});
  }
  std::sort(out.begin(), out.end(),
            [](const CorpusEntry& a, const CorpusEntry& b) {
              return a.path < b.path;
            });
  return out;
}

}  // namespace nfp::fuzz
