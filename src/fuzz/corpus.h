// Corpus management: every divergence the fuzzer finds is persisted as a
// plain `.s` file whose leading `!` comment block records the seed, mix and
// divergence detail needed to triage it. Committed corpus files double as
// regression tests: tests/fuzz replays every file through the differential
// oracle on each run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/oracle.h"

namespace nfp::fuzz {

struct CorpusEntry {
  std::string path;
  std::string source;
};

// Writes `source` (already a self-contained assembly file) into `dir` as
// "fuzz-seed<seed>-<mode>.s" with a triage header. Creates `dir` if
// missing. Returns the path written.
std::string write_corpus_entry(const std::string& dir, std::uint64_t seed,
                               const std::string& mix_name,
                               const DiffReport& report,
                               const std::string& source);

// Loads every *.s file in `dir`, sorted by filename for deterministic
// replay order. A missing directory yields an empty corpus.
std::vector<CorpusEntry> load_corpus_dir(const std::string& dir);

}  // namespace nfp::fuzz
