#include "fuzz/generator.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

namespace nfp::fuzz {
namespace {

// General-purpose registers random ops may read and clobber. %g5..%g7 are
// chunk-internal temporaries, %o7 is the call linkage, %sp stays untouched,
// %i6 holds the scratch-window base and %i7 the double-pool base.
constexpr const char* kPool[] = {
    "%g1", "%g2", "%g3", "%g4", "%o0", "%o1", "%o2", "%o3",
    "%o4", "%o5", "%l0", "%l1", "%l2", "%l3", "%l4", "%l5",
    "%l6", "%l7", "%i0", "%i1", "%i2", "%i3", "%i4", "%i5",
};
constexpr std::size_t kPoolSize = sizeof(kPool) / sizeof(kPool[0]);

// Pool registers with an even encoding whose odd partner is also in the
// pool — the only legal rd for ldd/std.
constexpr const char* kEvenPool[] = {
    "%g2", "%o0", "%o2", "%o4", "%l0", "%l2", "%l4", "%l6",
    "%i0", "%i2", "%i4",
};
constexpr std::size_t kEvenPoolSize = sizeof(kEvenPool) / sizeof(kEvenPool[0]);

// Even double-precision registers (rd of ldd/faddd/... must be even).
constexpr const char* kDReg[] = {"%f0",  "%f2",  "%f4",  "%f6",
                                "%f8",  "%f10", "%f12", "%f14"};
constexpr std::size_t kDRegCount = sizeof(kDReg) / sizeof(kDReg[0]);

constexpr std::uint32_t kScratchBase = 0x40200000u;  // 4 KiB window off %i6
constexpr std::size_t kDoublePoolSize = 8;
constexpr std::size_t kHelperCount = 4;

constexpr const char* kCondNames[] = {"e",  "ne", "le", "l",  "g",  "ge",
                                      "gu", "leu", "cs", "cc", "pos", "neg"};
constexpr const char* kFCondNames[] = {"e", "ne", "l", "g", "le", "ge", "u", "o"};

struct Emitter {
  std::ostringstream out;

  void line(const std::string& text) { out << "  " << text << "\n"; }
  void label(const std::string& name) { out << name << ":\n"; }
  std::string str() const { return out.str(); }
};

class ChunkGen {
 public:
  ChunkGen(Rng& rng, std::uint32_t index) : rng_(rng), index_(index) {}

  const char* reg() { return kPool[rng_.below(kPoolSize)]; }
  const char* even_reg() { return kEvenPool[rng_.below(kEvenPoolSize)]; }
  const char* dreg() { return kDReg[rng_.below(kDRegCount)]; }
  int simm(int lo, int hi) {
    return lo + static_cast<int>(rng_.below(static_cast<std::uint32_t>(hi - lo + 1)));
  }
  std::string lab(const char* stem, std::uint32_t sub = 0) {
    std::string s = stem + std::to_string(index_);
    if (sub != 0) s += "_" + std::to_string(sub);
    return s;
  }

  // One random three-operand ALU instruction on pool registers. Division is
  // guarded: %y is zeroed (keeps the 64-bit dividend small, no host
  // overflow) and the divisor forced nonzero through "or rs2, 1".
  std::string alu_op(Emitter& e) {
    static constexpr const char* kOps[] = {
        "add", "sub", "and", "or", "xor", "andn", "orn",  "xnor",
        "addcc", "subcc", "andcc", "orcc", "xorcc", "addx", "subx",
        "umul", "smul", "umulcc", "smulcc",
    };
    const std::uint32_t pick = rng_.below(24);
    if (pick < 19) {
      const char* op = kOps[pick];
      const char* rs1 = reg();
      const char* rd = reg();
      if (rng_.chance(50)) {
        e.line(std::string(op) + " " + rs1 + ", " + reg() + ", " + rd);
      } else {
        e.line(std::string(op) + " " + rs1 + ", " +
               std::to_string(simm(-4096, 4095)) + ", " + rd);
      }
      return rd;
    }
    if (pick < 22) {  // shifts, immediate count only (no reg-count aliasing)
      static constexpr const char* kShifts[] = {"sll", "srl", "sra"};
      const char* rd = reg();
      e.line(std::string(kShifts[pick - 19]) + " " + reg() + ", " +
             std::to_string(rng_.below(32)) + ", " + rd);
      return rd;
    }
    if (pick == 22) {  // %y round-trip
      e.line(std::string("wr ") + reg() + ", " +
             std::to_string(simm(0, 4095)) + ", %y");
      const char* rd = reg();
      e.line(std::string("rd %y, ") + rd);
      return rd;
    }
    // Guarded division.
    e.line("wr %g0, 0, %y");
    e.line(std::string("or ") + reg() + ", 1, %g5");
    const char* rd = reg();
    e.line(std::string(rng_.chance(50) ? "sdiv " : "udiv ") + reg() +
           ", %g5, " + rd);
    return rd;
  }

  Chunk alu() {
    Emitter e;
    const std::uint32_t n = 4 + rng_.below(7);
    for (std::uint32_t i = 0; i < n; ++i) alu_op(e);
    return {e.str(), {}};
  }

  Chunk mem() {
    Emitter e;
    const std::uint32_t n = 3 + rng_.below(5);
    for (std::uint32_t i = 0; i < n; ++i) {
      switch (rng_.below(10)) {
        case 0:
        case 1:
          e.line(std::string("st ") + reg() + ", [%i6 + " +
                 std::to_string(rng_.below(1024) * 4) + "]");
          break;
        case 2:
        case 3:
          e.line(std::string("ld [%i6 + ") +
                 std::to_string(rng_.below(1024) * 4) + "], " + reg());
          break;
        case 4:
          if (rng_.chance(50)) {
            e.line(std::string("stb ") + reg() + ", [%i6 + " +
                   std::to_string(rng_.below(4096)) + "]");
          } else {
            e.line(std::string("sth ") + reg() + ", [%i6 + " +
                   std::to_string(rng_.below(2048) * 2) + "]");
          }
          break;
        case 5: {
          static constexpr const char* kLoads[] = {"ldub", "ldsb"};
          e.line(std::string(kLoads[rng_.below(2)]) + " [%i6 + " +
                 std::to_string(rng_.below(4096)) + "], " + reg());
          break;
        }
        case 6: {
          static constexpr const char* kLoads[] = {"lduh", "ldsh"};
          e.line(std::string(kLoads[rng_.below(2)]) + " [%i6 + " +
                 std::to_string(rng_.below(2048) * 2) + "], " + reg());
          break;
        }
        case 7:
          if (rng_.chance(50)) {
            e.line(std::string("std ") + even_reg() + ", [%i6 + " +
                   std::to_string(rng_.below(512) * 8) + "]");
          } else {
            e.line(std::string("ldd [%i6 + ") +
                   std::to_string(rng_.below(512) * 8) + "], " + even_reg());
          }
          break;
        case 8:  // register-indexed, word-aligned via mask
          e.line(std::string("and ") + reg() + ", 0xffc, %g5");
          if (rng_.chance(50)) {
            e.line(std::string("st ") + reg() + ", [%i6 + %g5]");
          } else {
            e.line(std::string("ld [%i6 + %g5], ") + reg());
          }
          break;
        case 9:  // occasional MMIO word store (UART); exercises the
                 // non-RAM store path that must bypass code invalidation
          e.line("set 0x80000000, %g5");
          e.line(std::string("st ") + reg() + ", [%g5]");
          break;
      }
    }
    return {e.str(), {}};
  }

  Chunk branch() {
    Emitter e;
    const bool fp = rng_.chance(25);
    const std::string target = lab("Lb");
    if (fp) {
      e.line(std::string("fcmpd ") + dreg() + ", " + dreg());
      e.line("nop");  // fcmp/fbfcc separation as on real hardware
      e.line(std::string("fb") + kFCondNames[rng_.below(8)] +
             (rng_.chance(35) ? ",a " : " ") + target);
    } else {
      static constexpr const char* kCcOps[] = {"subcc", "addcc", "andcc",
                                               "orcc"};
      e.line(std::string(kCcOps[rng_.below(4)]) + " " + reg() + ", " +
             (rng_.chance(50) ? std::string(reg())
                              : std::to_string(simm(-4096, 4095))) +
             ", %g5");
      e.line(std::string("b") + kCondNames[rng_.below(12)] +
             (rng_.chance(35) ? ",a " : " ") + target);
    }
    // Delay slot plus 1-3 potentially-skipped instructions.
    alu_op(e);
    const std::uint32_t skipped = 1 + rng_.below(3);
    for (std::uint32_t i = 0; i < skipped; ++i) alu_op(e);
    e.label(target);
    alu_op(e);
    return {e.str(), {}};
  }

  Chunk loop() {
    Emitter e;
    const std::string head = lab("Llp");
    e.line("mov " + std::to_string(1 + rng_.below(12)) + ", %g7");
    e.label(head);
    const std::uint32_t body = 1 + rng_.below(3);
    for (std::uint32_t i = 0; i < body; ++i) alu_op(e);
    e.line("subcc %g7, 1, %g7");
    e.line("bne " + head);
    if (rng_.chance(60)) {
      alu_op(e);  // live delay slot
    } else {
      e.line("nop");
    }
    return {e.str(), {}};
  }

  Chunk call() {
    Emitter e;
    e.line("call Fh" + std::to_string(rng_.below(kHelperCount)));
    alu_op(e);  // delay slot
    return {e.str(), {}};
  }

  // jmpl-dense stream: indirect calls through %g5, optionally selected
  // between two helpers by a data-dependent branch. Return sites from
  // different static jmpl instructions stress BTC indexing.
  Chunk jmpl() {
    Emitter e;
    const std::uint32_t n = 1 + rng_.below(3);
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t a = rng_.below(kHelperCount);
      if (rng_.chance(40)) {
        std::uint32_t b = rng_.below(kHelperCount);
        const std::string join = lab("Ljm", i + 1);
        e.line("set Fh" + std::to_string(a) + ", %g5");
        e.line(std::string("andcc ") + reg() + ", " +
               std::to_string(1 + rng_.below(255)) + ", %g0");
        e.line("be " + join);
        e.line("nop");
        e.line("set Fh" + std::to_string(b) + ", %g5");
        e.label(join);
      } else {
        e.line("set Fh" + std::to_string(a) + ", %g5");
      }
      e.line("jmpl %g5, %o7");
      e.line("nop");
    }
    return {e.str(), {}};
  }

  Chunk fpu() {
    Emitter e;
    // Seed operands from the double pool so arithmetic sees varied values.
    const std::uint32_t loads = 1 + rng_.below(3);
    for (std::uint32_t i = 0; i < loads; ++i) {
      e.line(std::string("lddf [%i7 + ") +
             std::to_string(rng_.below(kDoublePoolSize) * 8) + "], " + dreg());
    }
    const std::uint32_t n = 3 + rng_.below(5);
    for (std::uint32_t i = 0; i < n; ++i) {
      switch (rng_.below(10)) {
        case 0:
        case 1:
          e.line(std::string("faddd ") + dreg() + ", " + dreg() + ", " +
                 dreg());
          break;
        case 2:
          e.line(std::string("fsubd ") + dreg() + ", " + dreg() + ", " +
                 dreg());
          break;
        case 3:
          e.line(std::string("fmuld ") + dreg() + ", " + dreg() + ", " +
                 dreg());
          break;
        case 4:
          e.line(std::string("fdivd ") + dreg() + ", " + dreg() + ", " +
                 dreg());
          break;
        case 5:
          e.line(std::string("fitod ") + dreg() + ", " + dreg());
          break;
        case 6:
          e.line(std::string("fdtoi ") + dreg() + ", " + dreg());
          break;
        case 7: {
          static constexpr const char* kUnary[] = {"fmovs", "fnegs", "fabss"};
          e.line(std::string(kUnary[rng_.below(3)]) + " " + dreg() + ", " +
                 dreg());
          break;
        }
        case 8:
          e.line(std::string("fcmpd ") + dreg() + ", " + dreg());
          e.line("nop");
          break;
        case 9:
          e.line(std::string("stdf ") + dreg() + ", [%i6 + " +
                 std::to_string(rng_.below(512) * 8) + "]");
          break;
      }
    }
    return {e.str(), {}};
  }

  // Store-to-code loop. The template word lives in the tail (after halt,
  // never executed); the loop xors the patch site between the original and
  // template encodings, so the patched add alternates its immediate. The
  // store and the patch site sit in different superblocks (the "ba"
  // in between ends the storing block), so every dispatch mode must agree.
  Chunk selfmod() {
    Emitter e;
    const std::string head = lab("Lsm");
    const std::string patch = lab("Wp");
    const std::string tmpl = lab("Wt");
    const char* rt = reg();
    const char* ra = reg();
    const int imm1 = simm(1, 1000);
    const int imm2 = simm(1, 1000);
    e.line("set " + tmpl + ", %g6");
    e.line("ld [%g6], %g6");
    e.line("set " + patch + ", %g5");
    e.line(std::string("ld [%g5], ") + rt);
    e.line(std::string("xor ") + rt + ", %g6, %g6");
    e.line("mov " + std::to_string(2 + rng_.below(8)) + ", %g7");
    e.label(head);
    e.line(std::string("ld [%g5], ") + rt);
    e.line(std::string("xor ") + rt + ", %g6, " + rt);
    e.line(std::string("st ") + rt + ", [%g5]");
    e.line("ba " + patch);
    e.line("nop");
    e.label(patch);
    e.line(std::string("add ") + ra + ", " + std::to_string(imm1) + ", " + ra);
    e.line("subcc %g7, 1, %g7");
    e.line("bne " + head);
    e.line("nop");

    Emitter tail;
    tail.label(tmpl);
    tail.line(std::string("add ") + ra + ", " + std::to_string(imm2) + ", " +
              ra);
    return {e.str(), tail.str()};
  }

 private:
  Rng& rng_;
  std::uint32_t index_;
};

enum class Kind { kAlu, kMem, kBranch, kLoop, kCall, kJmpl, kFpu, kSelfmod };

Kind pick_kind(Rng& rng, const Mix& mix) {
  const std::uint32_t total = mix.alu + mix.mem + mix.branch + mix.loop +
                              mix.call + mix.jmpl + mix.fpu + mix.selfmod;
  std::uint32_t roll = rng.below(total == 0 ? 1 : total);
  if (total == 0) return Kind::kAlu;
  if (roll < mix.alu) return Kind::kAlu;
  roll -= mix.alu;
  if (roll < mix.mem) return Kind::kMem;
  roll -= mix.mem;
  if (roll < mix.branch) return Kind::kBranch;
  roll -= mix.branch;
  if (roll < mix.loop) return Kind::kLoop;
  roll -= mix.loop;
  if (roll < mix.call) return Kind::kCall;
  roll -= mix.call;
  if (roll < mix.jmpl) return Kind::kJmpl;
  roll -= mix.jmpl;
  if (roll < mix.fpu) return Kind::kFpu;
  return Kind::kSelfmod;
}

std::string helper_text(Rng& rng, std::uint32_t index) {
  Emitter e;
  e.label("Fh" + std::to_string(index));
  ChunkGen gen(rng, 9000 + index);
  const std::uint32_t n = 1 + rng.below(2);
  for (std::uint32_t i = 0; i < n; ++i) gen.alu_op(e);
  e.line("retl");
  if (rng.chance(60)) {
    gen.alu_op(e);
  } else {
    e.line("nop");
  }
  return e.str();
}

bool mentions(const std::string& text, const std::string& token) {
  return text.find(token) != std::string::npos;
}

std::string format_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

std::optional<Mix> mix_from_name(std::string_view name) {
  if (name == "default") return Mix{};
  if (name == "alu") return Mix{12, 2, 2, 1, 0, 0, 0, 0};
  if (name == "mem") return Mix{3, 12, 2, 2, 0, 0, 1, 0};
  if (name == "cti") return Mix{2, 1, 8, 6, 4, 2, 0, 1};
  if (name == "jmpl") return Mix{2, 1, 2, 2, 3, 12, 0, 0};
  if (name == "fpu") return Mix{2, 2, 2, 1, 0, 0, 12, 0};
  if (name == "selfmod") return Mix{2, 2, 2, 3, 0, 1, 0, 8};
  return std::nullopt;
}

const std::vector<std::string>& mix_names() {
  static const std::vector<std::string> kNames = {
      "default", "alu", "mem", "cti", "jmpl", "fpu", "selfmod"};
  return kNames;
}

GenProgram generate(const GenConfig& config) {
  Rng rng(config.seed * 0x9E3779B97F4A7C15ull + config.seed + 0xC0FFEEull);
  GenProgram program;
  program.config = config;

  for (std::size_t i = 0; i < kHelperCount; ++i) {
    program.helpers.emplace_back("Fh" + std::to_string(i),
                                 helper_text(rng, static_cast<std::uint32_t>(i)));
  }

  for (std::size_t i = 0; i < kPoolSize; ++i) {
    const int value =
        -4096 + static_cast<int>(rng.below(8192));
    program.reg_inits.emplace_back(
        kPool[i], std::string("mov ") + std::to_string(value) + ", " + kPool[i]);
  }

  for (std::size_t i = 0; i < kDoublePoolSize; ++i) {
    // A spread of magnitudes, signs and non-finite-adjacent values.
    static constexpr double kBases[] = {0.0,    1.0,     -1.0,   0.5,
                                        1e-30,  3.25e10, -2.5,   1e300};
    const double base = kBases[i % (sizeof(kBases) / sizeof(kBases[0]))];
    const double jitter =
        static_cast<double>(rng.below(1000)) / 7.0 - 71.0;
    program.double_pool.push_back(base + (i >= 4 ? jitter : 0.0));
  }

  for (std::uint32_t i = 0; i < config.chunks; ++i) {
    ChunkGen gen(rng, i);
    switch (pick_kind(rng, config.mix)) {
      case Kind::kAlu: program.chunks.push_back(gen.alu()); break;
      case Kind::kMem: program.chunks.push_back(gen.mem()); break;
      case Kind::kBranch: program.chunks.push_back(gen.branch()); break;
      case Kind::kLoop: program.chunks.push_back(gen.loop()); break;
      case Kind::kCall: program.chunks.push_back(gen.call()); break;
      case Kind::kJmpl: program.chunks.push_back(gen.jmpl()); break;
      case Kind::kFpu: program.chunks.push_back(gen.fpu()); break;
      case Kind::kSelfmod: program.chunks.push_back(gen.selfmod()); break;
    }
  }
  return program;
}

std::string render_subset(const GenProgram& program,
                          const std::vector<bool>& keep) {
  // Collect everything that will actually execute, then emit only the
  // prologue pieces (register inits, helpers, data pool) it references.
  std::string live;
  for (std::size_t i = 0; i < program.chunks.size(); ++i) {
    if (i < keep.size() && !keep[i]) continue;
    live += program.chunks[i].body;
    live += program.chunks[i].tail;
  }
  std::vector<bool> helper_used(program.helpers.size(), false);
  bool changed = true;
  while (changed) {  // helpers may (by construction don't, but cheaply) chain
    changed = false;
    for (std::size_t h = 0; h < program.helpers.size(); ++h) {
      if (!helper_used[h] && mentions(live, program.helpers[h].first)) {
        helper_used[h] = true;
        live += program.helpers[h].second;
        changed = true;
      }
    }
  }

  std::ostringstream out;
  out << "! nfpfuzz seed=" << program.config.seed
      << " mix=" << program.config.mix_name
      << " chunks=" << program.config.chunks << "\n";
  out << "  .text\n  .global _start\n_start:\n";
  if (mentions(live, "%i6")) {
    out << "  set " << kScratchBase << ", %i6\n";
  }
  if (mentions(live, "%i7")) {
    out << "  set Dpool, %i7\n";
  }
  for (const auto& [reg, init] : program.reg_inits) {
    if (mentions(live, reg)) out << "  " << init << "\n";
  }
  for (std::size_t i = 0; i < program.chunks.size(); ++i) {
    if (i < keep.size() && !keep[i]) continue;
    out << program.chunks[i].body;
  }
  out << "  ta 0\n  nop\n";
  for (std::size_t i = 0; i < program.chunks.size(); ++i) {
    if (i < keep.size() && !keep[i]) continue;
    out << program.chunks[i].tail;
  }
  for (std::size_t h = 0; h < program.helpers.size(); ++h) {
    if (helper_used[h]) out << program.helpers[h].second;
  }
  if (mentions(live, "%i7")) {
    out << "  .data\n  .align 8\nDpool:\n";
    for (double value : program.double_pool) {
      out << "  .double " << format_double(value) << "\n";
    }
  }
  return out.str();
}

std::string render(const GenProgram& program) {
  return render_subset(program, std::vector<bool>(program.chunks.size(), true));
}

std::size_t count_instructions(std::string_view source) {
  std::size_t count = 0;
  std::size_t pos = 0;
  while (pos <= source.size()) {
    const std::size_t eol = source.find('\n', pos);
    std::string_view line = source.substr(
        pos, eol == std::string_view::npos ? source.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? source.size() + 1 : eol + 1;
    // Strip comment and leading whitespace; skip past a leading "label:".
    const std::size_t bang = line.find('!');
    if (bang != std::string_view::npos) line = line.substr(0, bang);
    const std::size_t colon = line.find(':');
    if (colon != std::string_view::npos) line = line.substr(colon + 1);
    std::size_t start = 0;
    while (start < line.size() &&
           std::isspace(static_cast<unsigned char>(line[start]))) {
      ++start;
    }
    line = line.substr(start);
    if (line.empty() || line[0] == '.') continue;
    std::size_t end = 0;
    while (end < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[end]))) {
      ++end;
    }
    const std::string_view mnemonic = line.substr(0, end);
    if (mnemonic.empty()) continue;
    count += (mnemonic == "set") ? 2 : 1;
  }
  return count;
}

}  // namespace nfp::fuzz
