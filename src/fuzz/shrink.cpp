#include "fuzz/shrink.h"

#include <algorithm>
#include <vector>

namespace nfp::fuzz {
namespace {

// Safety valve: a pathological predicate (flaky divergence) could otherwise
// make the ddmin loop spend unbounded simulator time.
constexpr std::size_t kMaxOracleRuns = 500;

std::vector<std::size_t> kept_indices(const std::vector<bool>& keep) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < keep.size(); ++i) {
    if (keep[i]) out.push_back(i);
  }
  return out;
}

}  // namespace

ShrinkResult shrink(const GenProgram& program, const DiffConfig& config,
                    DiffArena& arena) {
  ShrinkResult result;
  std::vector<bool> keep(program.chunks.size(), true);

  const auto diverges = [&](const std::vector<bool>& trial,
                            DiffReport& report) {
    report = run_differential_source(render_subset(program, trial), config,
                                     arena);
    ++result.oracle_runs;
    return report.diverged;
  };

  DiffReport best;
  if (!diverges(keep, best)) {
    result.report = best;
    result.source = render(program);
    result.chunks_kept = program.chunks.size();
    result.instructions = count_instructions(result.source);
    return result;
  }
  result.diverged = true;

  bool changed = true;
  while (changed && result.oracle_runs < kMaxOracleRuns) {
    changed = false;
    const std::vector<std::size_t> kept = kept_indices(keep);
    if (kept.empty()) break;
    for (std::size_t window = std::max<std::size_t>(kept.size() / 2, 1);;
         window /= 2) {
      for (std::size_t start = 0;
           start < kept.size() && result.oracle_runs < kMaxOracleRuns;
           start += window) {
        std::vector<bool> trial = keep;
        const std::size_t end = std::min(start + window, kept.size());
        for (std::size_t i = start; i < end; ++i) trial[kept[i]] = false;
        DiffReport report;
        if (diverges(trial, report)) {
          keep = trial;
          best = report;
          changed = true;
          break;
        }
      }
      if (changed || window == 1) break;
    }
  }

  result.report = best;
  result.source = render_subset(program, keep);
  result.chunks_kept = kept_indices(keep).size();
  result.instructions = count_instructions(result.source);
  return result;
}

}  // namespace nfp::fuzz
