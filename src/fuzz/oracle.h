// Differential oracle: one program, every dispatch mode, identical budgets.
//
// A probe run under Dispatch::kStep establishes the program's total retired
// instruction count, a handful of randomized budget checkpoints are drawn
// inside that range, and then each dispatch mode executes the program from
// scratch with the same chunked run() budgets. After every chunk — i.e. at
// arbitrary mid-run stops, not just at the final halt — the full
// architectural state is compared: registers, PSR flags, FP registers,
// instret, the per-op retire vector, the UART stream, and an FNV digest of
// every dirty RAM page. The mid-run stops are what catch accounting bugs in
// batched retirement and budget handling that a final-state-only comparison
// would miss.
#pragma once

#include <cstdint>
#include <string>

#include "asmkit/program.h"
#include "board/board.h"
#include "sim/digest.h"
#include "sim/iss.h"

namespace nfp::fuzz {

struct DiffConfig {
  // Per-mode retirement cap; a program that never halts inside it is
  // compared at the cap (still a valid differential point).
  std::uint64_t max_insns = 4'000'000;
  // Number of randomized mid-run budget stops (the final stop at the
  // program's total instret is always added on top).
  std::uint32_t checkpoints = 4;
  std::uint64_t checkpoint_seed = 0;
  // Also run the program on a measurement Board under kStep vs kBlock and
  // compare cycles, true energy (bit-for-bit), BoardStats, and the full
  // architectural state at every checkpoint. This is the oracle for the
  // board's block-cost dispatch (static per-block profiles + dynamic
  // residual hooks).
  bool check_board = true;
  // Also run the program under Dispatch::kJit and compare against kStep at
  // every checkpoint. Silently skipped when jit_available() is false (the
  // oracle degrades rather than testing jit-that-is-really-block twice).
  bool check_jit = true;
  // Also run the board under Dispatch::kJit (the cost-mode jit tier: native
  // static-cost retirement + batched residual replay) against the board's
  // kStep reference, same bit-for-bit comparison as check_board. Skipped
  // when jit_available() is false.
  bool check_board_jit = true;
  // Save→restore→continue leg (sim/state_io.h): at every budget stop the run
  // is serialized and restored into a second fresh executor which continues
  // the schedule — rotating through the dispatch modes segment by segment —
  // and every checkpoint must match the straight-through kStep reference.
  // With check_board on, a board pair runs the same durable-checkpoint arm
  // against the board reference (cycles/energy/stats/activity bit-for-bit).
  bool check_snapshot = true;
};

// Architectural state observed at one budget stop of one mode.
struct Snapshot {
  std::uint64_t instret = 0;
  std::uint32_t pc = 0;
  std::uint32_t npc = 0;
  bool halted = false;
  std::uint32_t exit_code = 0;
  sim::ArchStateDigest digest{};
  std::uint64_t counts_digest = 0;
  std::uint64_t uart_digest = 0;
  std::string fault;  // non-empty if the run threw (SimError etc.)

  bool operator==(const Snapshot&) const = default;
};

struct DiffReport {
  bool diverged = false;
  std::string mode;    // dispatch mode that disagreed with kStep
  std::string detail;  // first differing checkpoint/field, human readable
  std::uint64_t step_instret = 0;
  bool step_halted = false;
};

// Reusable simulator instances (16 MiB of RAM each); Platform::load resets
// them to a fresh-boot state, so reuse across programs is exact while
// skipping the full-RAM re-zeroing cost. One arena per thread.
struct DiffArena {
  sim::Iss step;
  sim::Iss unchained;
  sim::Iss block;
  sim::Iss jit;
  // Board set for the step-vs-block and step-vs-jit cost differentials
  // (DiffConfig::check_board / check_board_jit). Default config: variation
  // and the SDRAM row model on, so every residual kind is exercised.
  board::Board board_step;
  board::Board board_block;
  board::Board board_jit;
  // Ping-pong pairs for the snapshot leg (DiffConfig::check_snapshot): the
  // run alternates between the two halves across save/restore boundaries.
  sim::Iss snap_a;
  sim::Iss snap_b;
  board::Board board_snap_a;
  board::Board board_snap_b;
};

DiffReport run_differential(const asmkit::Program& program,
                            const DiffConfig& config, DiffArena& arena);

// Convenience: assembles `source` at the platform text base, then runs the
// differential. Throws asmkit::AsmError if the source does not assemble.
DiffReport run_differential_source(const std::string& source,
                                   const DiffConfig& config, DiffArena& arena);

}  // namespace nfp::fuzz
