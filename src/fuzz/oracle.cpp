#include "fuzz/oracle.h"

#include <algorithm>
#include <bit>
#include <sstream>
#include <vector>

#include "asmkit/assembler.h"
#include "fuzz/generator.h"
#include "sim/memmap.h"

namespace nfp::fuzz {
namespace {

std::uint64_t digest_counts(const sim::OpCountHooks& hooks) {
  return sim::fnv1a64(
      reinterpret_cast<const std::uint8_t*>(hooks.counts.data()),
      hooks.counts.size() * sizeof(hooks.counts[0]));
}

std::uint64_t digest_uart(const std::string& uart) {
  return sim::fnv1a64(reinterpret_cast<const std::uint8_t*>(uart.data()),
                      uart.size());
}

Snapshot take_snapshot(sim::Iss& iss) {
  Snapshot s;
  const sim::CpuState& cpu = iss.cpu();
  s.instret = cpu.instret;
  s.pc = cpu.pc;
  s.npc = cpu.npc;
  s.halted = cpu.halted;
  s.exit_code = cpu.exit_code;
  s.digest = sim::arch_digest(cpu, iss.bus());
  s.counts_digest = digest_counts(iss.counters());
  s.uart_digest = digest_uart(iss.bus().uart_output());
  return s;
}

// Runs one dispatch mode through the shared budget schedule, snapshotting
// after every chunk. A fault ends the trace early (the truncated trace then
// differs from kStep's, which is itself the divergence signal).
std::vector<Snapshot> run_mode(sim::Iss& iss, const asmkit::Program& program,
                               sim::Dispatch dispatch,
                               const std::vector<std::uint64_t>& stops) {
  std::vector<Snapshot> out;
  iss.load(program);
  for (const std::uint64_t stop : stops) {
    std::string fault;
    try {
      const std::uint64_t done = iss.cpu().instret;
      if (stop > done) iss.run(stop - done, dispatch);
    } catch (const std::exception& e) {
      fault = e.what();
    }
    out.push_back(take_snapshot(iss));
    out.back().fault = fault;
    if (!fault.empty()) break;
  }
  return out;
}

// The durable-checkpoint arm: executes the same budget schedule, but at
// every stop the machine is serialized (sim/state_io.h) and restored into
// the OTHER half of a ping-pong executor pair, which continues the run.
// Dispatch rotates segment by segment so save/restore boundaries cut through
// warmed morph caches, chains, and jit translations in every mode; the
// restored executor re-warms from scratch and must still match the
// straight-through kStep reference at every checkpoint.
std::vector<Snapshot> run_snapshot_mode(
    sim::Iss& a, sim::Iss& b, const asmkit::Program& program,
    const std::vector<std::uint64_t>& stops) {
  std::vector<sim::Dispatch> rota = {sim::Dispatch::kBlock,
                                     sim::Dispatch::kStep};
  if (sim::jit_available()) rota.push_back(sim::Dispatch::kJit);
  rota.push_back(sim::Dispatch::kBlockUnchained);

  std::vector<Snapshot> out;
  sim::Iss* cur = &a;
  sim::Iss* other = &b;
  cur->load(program);
  std::size_t seg = 0;
  for (const std::uint64_t stop : stops) {
    std::string fault;
    try {
      const std::uint64_t done = cur->cpu().instret;
      if (stop > done) cur->run(stop - done, rota[seg % rota.size()]);
    } catch (const std::exception& e) {
      fault = e.what();
    }
    ++seg;
    out.push_back(take_snapshot(*cur));
    out.back().fault = fault;
    if (!fault.empty()) break;
    std::stringstream buf;
    cur->save_state(buf);
    other->restore_state(buf);
    std::swap(cur, other);
  }
  return out;
}

std::string describe_diff(const Snapshot& ref, const Snapshot& got) {
  std::ostringstream os;
  const auto field = [&os](const char* name, auto a, auto b) {
    os << name << " step=" << a << " got=" << b << "; ";
  };
  if (ref.instret != got.instret) field("instret", ref.instret, got.instret);
  if (ref.pc != got.pc) field("pc", ref.pc, got.pc);
  if (ref.npc != got.npc) field("npc", ref.npc, got.npc);
  if (ref.halted != got.halted) field("halted", ref.halted, got.halted);
  if (ref.exit_code != got.exit_code)
    field("exit_code", ref.exit_code, got.exit_code);
  if (ref.digest.cpu != got.digest.cpu)
    field("cpu-digest", ref.digest.cpu, got.digest.cpu);
  if (ref.digest.ram != got.digest.ram)
    field("ram-digest", ref.digest.ram, got.digest.ram);
  if (ref.counts_digest != got.counts_digest)
    field("retire-counts", ref.counts_digest, got.counts_digest);
  if (ref.uart_digest != got.uart_digest)
    field("uart", ref.uart_digest, got.uart_digest);
  if (ref.fault != got.fault) {
    os << "fault step='" << ref.fault << "' got='" << got.fault << "'; ";
  }
  return os.str();
}

bool compare_traces(const std::vector<Snapshot>& ref,
                    const std::vector<Snapshot>& got,
                    const std::vector<std::uint64_t>& stops,
                    const char* mode_name, DiffReport& report) {
  const std::size_t n = std::min(ref.size(), got.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (ref[i] == got[i]) continue;
    std::ostringstream os;
    os << "dispatch " << mode_name << " vs step, checkpoint " << i
       << " (budget " << stops[i] << "): " << describe_diff(ref[i], got[i]);
    report.diverged = true;
    report.mode = mode_name;
    report.detail = os.str();
    return false;
  }
  if (ref.size() != got.size()) {
    std::ostringstream os;
    os << "dispatch " << mode_name << " vs step: trace truncated at "
       << got.size() << "/" << ref.size() << " checkpoints (fault: '"
       << (got.size() < ref.size() && !got.empty() ? got.back().fault
                                                   : std::string())
       << "')";
    report.diverged = true;
    report.mode = mode_name;
    report.detail = os.str();
    return false;
  }
  return true;
}

// ---- board step-vs-block cost differential --------------------------------

// One budget stop of one board dispatch mode: full architectural state plus
// the board's non-functional accounting. Energy is compared bit-for-bit via
// its IEEE-754 representation — the block-cost dispatch is required to
// reproduce the stepping path's float operation sequence exactly, not just
// approximately.
struct BoardSnapshot {
  std::uint64_t instret = 0;
  std::uint32_t pc = 0;
  std::uint32_t npc = 0;
  bool halted = false;
  std::uint64_t cycles = 0;
  std::uint64_t energy_bits = 0;
  std::uint64_t activity = 0;
  board::BoardStats stats;
  sim::ArchStateDigest digest{};
  std::uint64_t uart_digest = 0;
  std::string fault;

  bool operator==(const BoardSnapshot&) const = default;
};

BoardSnapshot take_board_snapshot(board::Board& brd) {
  BoardSnapshot s;
  const sim::CpuState& cpu = brd.cpu();
  s.instret = cpu.instret;
  s.pc = cpu.pc;
  s.npc = cpu.npc;
  s.halted = cpu.halted;
  s.cycles = brd.cycles();
  s.energy_bits = std::bit_cast<std::uint64_t>(brd.true_energy_nj());
  s.activity = brd.switching_activity();
  s.stats = brd.stats();
  s.digest = sim::arch_digest(cpu, brd.bus());
  s.uart_digest = digest_uart(brd.bus().uart_output());
  return s;
}

std::vector<BoardSnapshot> run_board_mode(
    board::Board& brd, const asmkit::Program& program, sim::Dispatch dispatch,
    const std::vector<std::uint64_t>& stops) {
  std::vector<BoardSnapshot> out;
  brd.load(program);
  for (const std::uint64_t stop : stops) {
    std::string fault;
    try {
      const std::uint64_t done = brd.cpu().instret;
      if (stop > done) brd.run(stop - done, dispatch);
    } catch (const std::exception& e) {
      fault = e.what();
    }
    out.push_back(take_board_snapshot(brd));
    out.back().fault = fault;
    if (!out.back().fault.empty()) break;
  }
  return out;
}

// Board flavour of the durable-checkpoint arm: snapshots carry the SDRAM
// open-row state, meter accumulators, and the activity LFSR, so the restored
// half's ground truth must stay bit-for-bit on the reference trajectory.
std::vector<BoardSnapshot> run_board_snapshot_mode(
    board::Board& a, board::Board& b, const asmkit::Program& program,
    const std::vector<std::uint64_t>& stops) {
  std::vector<sim::Dispatch> rota = {sim::Dispatch::kBlock,
                                     sim::Dispatch::kStep};
  if (sim::jit_available()) rota.push_back(sim::Dispatch::kJit);

  std::vector<BoardSnapshot> out;
  board::Board* cur = &a;
  board::Board* other = &b;
  cur->load(program);
  std::size_t seg = 0;
  for (const std::uint64_t stop : stops) {
    std::string fault;
    try {
      const std::uint64_t done = cur->cpu().instret;
      if (stop > done) cur->run(stop - done, rota[seg % rota.size()]);
    } catch (const std::exception& e) {
      fault = e.what();
    }
    ++seg;
    out.push_back(take_board_snapshot(*cur));
    out.back().fault = fault;
    if (!fault.empty()) break;
    std::stringstream buf;
    cur->save_state(buf);
    other->restore_state(buf);
    std::swap(cur, other);
  }
  return out;
}

std::string describe_board_diff(const BoardSnapshot& ref,
                                const BoardSnapshot& got) {
  std::ostringstream os;
  const auto field = [&os](const char* name, auto a, auto b) {
    if (a != b) os << name << " step=" << a << " got=" << b << "; ";
  };
  field("instret", ref.instret, got.instret);
  field("pc", ref.pc, got.pc);
  field("npc", ref.npc, got.npc);
  field("halted", ref.halted, got.halted);
  field("cycles", ref.cycles, got.cycles);
  field("energy-bits", ref.energy_bits, got.energy_bits);
  field("activity", ref.activity, got.activity);
  field("loads", ref.stats.loads, got.stats.loads);
  field("stores", ref.stats.stores, got.stats.stores);
  field("row-misses", ref.stats.row_misses, got.stats.row_misses);
  field("cache-hits", ref.stats.cache_hits, got.stats.cache_hits);
  field("cache-misses", ref.stats.cache_misses, got.stats.cache_misses);
  field("branches-taken", ref.stats.branches_taken, got.stats.branches_taken);
  field("branches-untaken", ref.stats.branches_untaken,
        got.stats.branches_untaken);
  field("stall-cycles", ref.stats.stall_cycles, got.stats.stall_cycles);
  field("cpu-digest", ref.digest.cpu, got.digest.cpu);
  field("ram-digest", ref.digest.ram, got.digest.ram);
  field("uart", ref.uart_digest, got.uart_digest);
  if (ref.fault != got.fault) {
    os << "fault step='" << ref.fault << "' got='" << got.fault << "'; ";
  }
  return os.str();
}

bool compare_board_traces(const std::vector<BoardSnapshot>& ref,
                          const std::vector<BoardSnapshot>& got,
                          const std::vector<std::uint64_t>& stops,
                          const char* mode_name, DiffReport& report) {
  const std::size_t n = std::min(ref.size(), got.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (ref[i] == got[i]) continue;
    std::ostringstream os;
    os << mode_name << " vs board step, checkpoint " << i << " (budget "
       << stops[i] << "): " << describe_board_diff(ref[i], got[i]);
    report.diverged = true;
    report.mode = mode_name;
    report.detail = os.str();
    return false;
  }
  if (ref.size() != got.size()) {
    std::ostringstream os;
    os << mode_name << " vs board step: trace truncated at " << got.size()
       << "/" << ref.size() << " checkpoints (fault: '"
       << (got.size() < ref.size() && !got.empty() ? got.back().fault
                                                   : std::string())
       << "')";
    report.diverged = true;
    report.mode = mode_name;
    report.detail = os.str();
    return false;
  }
  return true;
}

}  // namespace

DiffReport run_differential(const asmkit::Program& program,
                            const DiffConfig& config, DiffArena& arena) {
  DiffReport report;

  // Probe under kStep to learn the program's length, then rerun every mode
  // (including kStep itself) fresh through the shared checkpoint schedule.
  arena.step.load(program);
  sim::RunResult probe;
  try {
    probe = arena.step.run(config.max_insns, sim::Dispatch::kStep);
  } catch (const std::exception&) {
    // A program that faults deterministically is still a usable
    // differential: every mode must fault at the same instret with the
    // same state, which run_mode() captures per-snapshot below.
    probe.halted = false;
    probe.instret = arena.step.cpu().instret;
  }
  report.step_instret = probe.instret;
  report.step_halted = probe.halted;

  std::vector<std::uint64_t> stops;
  Rng rng(config.checkpoint_seed ^ 0xD1FFC0DEull);
  for (std::uint32_t i = 0; i < config.checkpoints; ++i) {
    if (probe.instret > 1) {
      stops.push_back(1 + rng.next() % (probe.instret - 1));
    }
  }
  stops.push_back(probe.instret);
  if (!probe.halted && probe.instret < config.max_insns) {
    // The probe faulted executing instruction instret+1: give every mode a
    // budget that reaches the faulting instruction so the fault itself
    // (message and restored state) is part of the comparison.
    stops.push_back(probe.instret + 1);
  }
  std::sort(stops.begin(), stops.end());
  stops.erase(std::unique(stops.begin(), stops.end()), stops.end());

  const std::vector<Snapshot> ref =
      run_mode(arena.step, program, sim::Dispatch::kStep, stops);
  const std::vector<Snapshot> unchained =
      run_mode(arena.unchained, program, sim::Dispatch::kBlockUnchained, stops);
  if (!compare_traces(ref, unchained, stops, "block-unchained", report)) {
    return report;
  }
  const std::vector<Snapshot> chained =
      run_mode(arena.block, program, sim::Dispatch::kBlock, stops);
  if (!compare_traces(ref, chained, stops, "block", report)) return report;

  if (config.check_jit && sim::jit_available()) {
    const std::vector<Snapshot> jit =
        run_mode(arena.jit, program, sim::Dispatch::kJit, stops);
    if (!compare_traces(ref, jit, stops, "jit", report)) return report;
  }

  if (config.check_snapshot) {
    const std::vector<Snapshot> snap =
        run_snapshot_mode(arena.snap_a, arena.snap_b, program, stops);
    if (!compare_traces(ref, snap, stops, "snapshot", report)) return report;
  }

  const bool board_jit = config.check_board_jit && sim::jit_available();
  if (config.check_board || board_jit) {
    // Board phase last (it is the most expensive: more platforms, cost
    // accounting on). The same stop schedule applies: board streams match
    // the ISS streams instruction for instruction.
    const std::vector<BoardSnapshot> bref =
        run_board_mode(arena.board_step, program, sim::Dispatch::kStep, stops);
    if (config.check_board) {
      const std::vector<BoardSnapshot> bblk = run_board_mode(
          arena.board_block, program, sim::Dispatch::kBlock, stops);
      if (!compare_board_traces(bref, bblk, stops, "board-block", report)) {
        return report;
      }
    }
    if (board_jit) {
      const std::vector<BoardSnapshot> bjit = run_board_mode(
          arena.board_jit, program, sim::Dispatch::kJit, stops);
      if (!compare_board_traces(bref, bjit, stops, "board-jit", report)) {
        return report;
      }
    }
    if (config.check_snapshot && config.check_board) {
      const std::vector<BoardSnapshot> bsnap = run_board_snapshot_mode(
          arena.board_snap_a, arena.board_snap_b, program, stops);
      compare_board_traces(bref, bsnap, stops, "board-snapshot", report);
    }
  }
  return report;
}

DiffReport run_differential_source(const std::string& source,
                                   const DiffConfig& config, DiffArena& arena) {
  const asmkit::Program program = asmkit::assemble(source, sim::kTextBase);
  return run_differential(program, config, arena);
}

}  // namespace nfp::fuzz
