// Constrained-random SPARC V8 program generator for differential fuzzing.
//
// A generated program is a sequence of independent "chunks" — short,
// self-contained assembly fragments drawn from a weighted mix of shapes
// (straight ALU runs, aligned loads/stores, forward branches, terminating
// counted loops, call/retl and jmpl-dense streams, FPU arithmetic over a
// double pool, and store-to-code loops that patch their own instructions).
// Chunks use disjoint label namespaces and only chunk-private temporaries
// (%g5..%g7) for control, so ANY subset of chunks still assembles, runs and
// terminates — that property is what lets the shrinker minimise a failing
// program by deleting chunks (see shrink.h).
//
// Every program is guaranteed to terminate and to be fault-free by
// construction: loops count down fixed small constants, branches only jump
// forward or to their own loop head, memory accesses are width-aligned into
// a scratch window, divisors are forced odd-nonzero with %y cleared, and
// store-to-code patches write valid instruction words a CTI away from the
// storing block. Any observable difference between dispatch modes on a
// generated program is therefore a simulator bug, never a program quirk.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace nfp::fuzz {

// Deterministic splitmix64; the sequence is part of the corpus contract
// (a stored seed must regenerate the same program on every host).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ull) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  std::uint32_t below(std::uint32_t n) {
    return n == 0 ? 0 : static_cast<std::uint32_t>(next() % n);
  }
  bool chance(std::uint32_t percent) { return below(100) < percent; }

 private:
  std::uint64_t state_;
};

// Relative weights of the chunk shapes. Zero disables a shape.
struct Mix {
  std::uint32_t alu = 6;
  std::uint32_t mem = 4;
  std::uint32_t branch = 4;
  std::uint32_t loop = 3;
  std::uint32_t call = 2;
  std::uint32_t jmpl = 2;
  std::uint32_t fpu = 2;
  std::uint32_t selfmod = 1;
};

// Named presets for the CLI: "default", "alu", "mem", "cti", "jmpl",
// "fpu", "selfmod". Returns nullopt for unknown names.
std::optional<Mix> mix_from_name(std::string_view name);
const std::vector<std::string>& mix_names();

struct GenConfig {
  std::uint64_t seed = 1;
  std::uint32_t chunks = 24;
  Mix mix{};
  std::string mix_name = "default";
};

// One generated fragment. `body` runs in program order between prologue and
// halt; `tail` (template instruction words for store-to-code chunks) is
// placed after the halt where it is decoded but never executed.
struct Chunk {
  std::string body;
  std::string tail;
};

struct GenProgram {
  GenConfig config;
  std::vector<Chunk> chunks;
  // Candidate register inits ("mov imm, %rX"); render() emits only the ones
  // whose register appears in a kept chunk, so shrunk programs stay small.
  std::vector<std::pair<std::string, std::string>> reg_inits;  // (reg, line)
  // Helper functions callable from call/jmpl chunks, emitted on reference.
  std::vector<std::pair<std::string, std::string>> helpers;  // (label, text)
  std::vector<double> double_pool;
};

GenProgram generate(const GenConfig& config);

// Renders the full program (all chunks kept).
std::string render(const GenProgram& program);

// Renders only the chunks with keep[i] == true, dropping register inits,
// helpers and the double pool that no kept chunk references. The result is
// always a valid, terminating program.
std::string render_subset(const GenProgram& program,
                          const std::vector<bool>& keep);

// Number of machine instructions a rendered source assembles to (counts
// statements; `set` counts as 2). Used for shrink reporting and the
// "reproducer of <= N instructions" gate.
std::size_t count_instructions(std::string_view source);

}  // namespace nfp::fuzz
