#include "codecs/mvc.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "codecs/bitio.h"

// Host build of the Micro-C decoder: supplies the reconstruction primitives
// (inverse transform, dequant, prediction, deblock) and the golden decoder.
namespace nfp::codec::mvcdec {
#include "workloads/mc_shims.h"
#include "workloads/mc/mvc_dec.c"
}  // namespace nfp::codec::mvcdec

namespace nfp::codec {
namespace {

constexpr int kBlock = 8;

void append_be32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

// Forward 8x8 transform: coeff = T * block * T^t with HEVC shifts
// (inverse lives in the Micro-C decoder).
void fdct8(const int* block, int* coeff) {
  int tmp[64];
  for (int i = 0; i < 8; ++i) {
    for (int k = 0; k < 8; ++k) {
      int acc = 0;
      for (int m = 0; m < 8; ++m) {
        acc += mvcdec::mvc_t8[i * 8 + m] * block[m * 8 + k];
      }
      tmp[i * 8 + k] = (acc + 2) >> 2;
    }
  }
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      int acc = 0;
      for (int k = 0; k < 8; ++k) {
        acc += tmp[i * 8 + k] * mvcdec::mvc_t8[j * 8 + k];
      }
      coeff[i * 8 + j] = (acc + 256) >> 9;
    }
  }
}

int quantize(int coeff, int qp) {
  const int qstep = mvcdec::mvc_qstep_q4[qp];
  const int sign = coeff < 0 ? -1 : 1;
  const int mag = coeff < 0 ? -coeff : coeff;
  // Dead-zone quantiser: offset of qstep/3.
  return sign * (((mag << 4) + qstep / 3) / qstep);
}

struct ResidualCode {
  int levels[64] = {};  // quantised levels in zigzag order
  int last = 0;         // number of zigzag positions to scan
  bool coded = false;
};

ResidualCode code_residual(const int* spatial, int qp) {
  int coeff[64];
  fdct8(spatial, coeff);
  ResidualCode rc;
  for (int i = 0; i < 64; ++i) {
    const int level = quantize(coeff[mvcdec::mvc_zigzag[i]], qp);
    rc.levels[i] = level;
    if (level != 0) rc.last = i + 1;
  }
  rc.coded = rc.last > 0;
  return rc;
}

void write_residual(BitWriter& bw, const ResidualCode& rc) {
  bw.bit(rc.coded ? 1 : 0);
  if (!rc.coded) return;
  bw.ue(static_cast<std::uint32_t>(rc.last));
  for (int i = 0; i < rc.last; ++i) {
    const int level = rc.levels[i];
    if (level == 0) {
      bw.bit(0);
      continue;
    }
    bw.bit(1);
    bw.ue(static_cast<std::uint32_t>((level < 0 ? -level : level) - 1));
    bw.bit(level < 0 ? 1 : 0);
  }
}

// Reconstructs a residual exactly as the decoder will (dequant + idct).
void reconstruct_residual(const ResidualCode& rc, int qp, int* res) {
  int coeff[64] = {};
  for (int i = 0; i < rc.last; ++i) {
    if (rc.levels[i] != 0) {
      coeff[mvcdec::mvc_zigzag[i]] = mvcdec::mvc_dequant(rc.levels[i], qp);
    }
  }
  if (rc.coded) {
    mvcdec::mvc_idct8(coeff, res);
  } else {
    for (int i = 0; i < 64; ++i) res[i] = 0;
  }
}

int sad_block(const std::uint8_t* orig, int width, int bx, int by,
              const int* pred) {
  int sad = 0;
  for (int y = 0; y < kBlock; ++y) {
    for (int x = 0; x < kBlock; ++x) {
      const int d = orig[(by + y) * width + bx + x] - pred[y * 8 + x];
      sad += d < 0 ? -d : d;
    }
  }
  return sad;
}

}  // namespace

std::vector<std::uint8_t> EncodedStream::to_input_blob() const {
  std::vector<std::uint8_t> blob;
  blob.reserve(28 + payload.size());
  append_be32(blob, kMvcMagic);
  append_be32(blob, static_cast<std::uint32_t>(width));
  append_be32(blob, static_cast<std::uint32_t>(height));
  append_be32(blob, static_cast<std::uint32_t>(frames));
  append_be32(blob, static_cast<std::uint32_t>(qp));
  append_be32(blob, static_cast<std::uint32_t>(config));
  append_be32(blob, static_cast<std::uint32_t>(payload.size()));
  blob.insert(blob.end(), payload.begin(), payload.end());
  return blob;
}

EncodeResult encode(const std::vector<Frame>& frames, int width, int height,
                    int qp, Config config) {
  if (width % kBlock || height % kBlock || width > 64 || height > 64) {
    throw std::invalid_argument("mvc: bad dimensions");
  }
  if (qp < 0 || qp > 51) throw std::invalid_argument("mvc: bad qp");
  for (const Frame& f : frames) {
    if (static_cast<int>(f.size()) != width * height) {
      throw std::invalid_argument("mvc: bad frame size");
    }
  }

  BitWriter bw;
  Frame recon_prev(static_cast<std::size_t>(width) * height, 0);
  Frame recon_cur(static_cast<std::size_t>(width) * height, 0);
  EncodeResult result;

  for (int f = 0; f < static_cast<int>(frames.size()); ++f) {
    const std::uint8_t* orig = frames[f].data();
    const bool intra_frame =
        config == Config::kIntra || f == 0 ||
        (config == Config::kRandomaccess && f % 4 == 0);
    bw.bit(intra_frame ? 1 : 0);

    for (int by = 0; by < height; by += kBlock) {
      for (int bx = 0; bx < width; bx += kBlock) {
        int pred[64];
        int orig_block[64];
        for (int y = 0; y < kBlock; ++y) {
          for (int x = 0; x < kBlock; ++x) {
            orig_block[y * 8 + x] = orig[(by + y) * width + bx + x];
          }
        }

        bool with_residual = true;
        if (intra_frame) {
          // Pick the intra mode with the smallest SAD.
          int best_mode = 0;
          int best_sad = std::numeric_limits<int>::max();
          int best_pred[64];
          for (int mode = 0; mode < 4; ++mode) {
            mvcdec::mvc_intra_pred(recon_cur.data(), width, bx, by, mode,
                                   pred);
            const int sad = sad_block(orig, width, bx, by, pred);
            if (sad < best_sad) {
              best_sad = sad;
              best_mode = mode;
              std::copy(pred, pred + 64, best_pred);
            }
          }
          bw.bits(static_cast<std::uint32_t>(best_mode), 2);
          std::copy(best_pred, best_pred + 64, pred);
        } else {
          // Candidate 0: skip (zero MV, no residual).
          int zero_pred[64];
          mvcdec::mvc_motion_comp(recon_prev.data(), width, height, bx, by,
                                  0, 0, zero_pred);
          const int sad0 = sad_block(orig, width, bx, by, zero_pred);

          // Candidate 1: motion search (full search, +-4 full-pel).
          int best_mvx = 0, best_mvy = 0;
          int best_sad = std::numeric_limits<int>::max();
          int mv_pred[64];
          for (int mvy = -4; mvy <= 4; ++mvy) {
            for (int mvx = -4; mvx <= 4; ++mvx) {
              int cand[64];
              mvcdec::mvc_motion_comp(recon_prev.data(), width, height, bx,
                                      by, mvx, mvy, cand);
              const int sad = sad_block(orig, width, bx, by, cand) +
                              2 * (std::abs(mvx) + std::abs(mvy));
              if (sad < best_sad) {
                best_sad = sad;
                best_mvx = mvx;
                best_mvy = mvy;
                std::copy(cand, cand + 64, mv_pred);
              }
            }
          }

          // Candidate 2: best intra mode.
          int best_imode = 0;
          int best_isad = std::numeric_limits<int>::max();
          int intra_pred[64];
          for (int mode = 0; mode < 4; ++mode) {
            int cand[64];
            mvcdec::mvc_intra_pred(recon_cur.data(), width, bx, by, mode,
                                   cand);
            const int sad = sad_block(orig, width, bx, by, cand);
            if (sad < best_isad) {
              best_isad = sad;
              best_imode = mode;
              std::copy(cand, cand + 64, intra_pred);
            }
          }

          // Candidate 3 (lowdelay only): two-hypothesis average of the
          // best MV and the zero MV.
          int bi_pred[64];
          int bi_sad = std::numeric_limits<int>::max();
          if (config == Config::kLowdelay) {
            for (int i = 0; i < 64; ++i) {
              bi_pred[i] = (mv_pred[i] + zero_pred[i] + 1) >> 1;
            }
            bi_sad = sad_block(orig, width, bx, by, bi_pred) + 6;
          }

          if (sad0 <= 96) {
            bw.bits(0, 2);  // skip
            std::copy(zero_pred, zero_pred + 64, pred);
            with_residual = false;
          } else if (bi_sad < best_sad && bi_sad < best_isad + 32) {
            bw.bits(3, 2);
            bw.se(best_mvx);
            bw.se(best_mvy);
            bw.se(0);
            bw.se(0);
            std::copy(bi_pred, bi_pred + 64, pred);
          } else if (best_sad <= best_isad + 32) {
            bw.bits(1, 2);
            bw.se(best_mvx);
            bw.se(best_mvy);
            std::copy(mv_pred, mv_pred + 64, pred);
          } else {
            bw.bits(2, 2);
            bw.bits(static_cast<std::uint32_t>(best_imode), 2);
            std::copy(intra_pred, intra_pred + 64, pred);
          }
        }

        int res[64] = {};
        if (with_residual) {
          int diff[64];
          for (int i = 0; i < 64; ++i) diff[i] = orig_block[i] - pred[i];
          const ResidualCode rc = code_residual(diff, qp);
          write_residual(bw, rc);
          reconstruct_residual(rc, qp, res);
        }
        for (int y = 0; y < kBlock; ++y) {
          for (int x = 0; x < kBlock; ++x) {
            recon_cur[(by + y) * width + bx + x] =
                static_cast<std::uint8_t>(
                    mvcdec::mvc_clip255(pred[y * 8 + x] + res[y * 8 + x]));
          }
        }
      }
    }
    mvcdec::mvc_deblock(recon_cur.data(), width, height, qp);
    result.reconstruction.push_back(recon_cur);
    recon_prev = recon_cur;
  }

  result.stream.width = width;
  result.stream.height = height;
  result.stream.frames = static_cast<int>(frames.size());
  result.stream.qp = qp;
  result.stream.config = config;
  result.stream.payload = bw.bytes();
  return result;
}

DecodeResult golden_decode(const EncodedStream& stream) {
  DecodeResult out;
  const std::size_t frame_size =
      static_cast<std::size_t>(stream.width) * stream.height;
  std::vector<std::uint8_t> buffer(frame_size * stream.frames);
  std::vector<std::uint8_t> payload = stream.payload;
  double stats[2] = {0.0, 0.0};
  out.status = mvcdec::mvc_decode(
      payload.data(), static_cast<int>(payload.size()), stream.width,
      stream.height, stream.frames, stream.qp, buffer.data(), stats);
  out.rms_activity = stats[0];
  out.elapsed_s = stats[1];
  for (int f = 0; f < stream.frames; ++f) {
    out.frames.emplace_back(buffer.begin() + f * frame_size,
                            buffer.begin() + (f + 1) * frame_size);
  }
  return out;
}

int dequant_probe(int level, int qp) {
  return mvcdec::mvc_dequant(level, qp);
}

double psnr(const Frame& a, const Frame& b) {
  double sse = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    sse += d * d;
  }
  const double mse = sse / static_cast<double>(a.size());
  if (mse <= 1e-12) return 99.0;
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

}  // namespace nfp::codec
