// MVC mini video codec: host-side encoder and golden decoder, the HM
// reference software stand-in of the evaluation (Section VI-A).
//
// The encoder's reconstruction loop calls the exact primitives of the
// Micro-C decoder (src/workloads/mc/mvc_dec.c, host-compiled), so encoder
// reconstruction and decoder output are bit-identical by construction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nfp::codec {

// The paper's four encoding configurations.
enum class Config : std::uint8_t {
  kIntra = 0,        // all-intra
  kLowdelay = 1,     // IPPP with two-hypothesis ("bipred") blocks allowed
  kLowdelayP = 2,    // IPPP, single hypothesis only
  kRandomaccess = 3, // intra refresh every 4th frame
};

inline const char* to_string(Config c) {
  switch (c) {
    case Config::kIntra: return "intra";
    case Config::kLowdelay: return "lowdelay";
    case Config::kLowdelayP: return "lowdelay_P";
    case Config::kRandomaccess: return "randomaccess";
  }
  return "?";
}

inline constexpr std::uint32_t kMvcMagic = 0x4D564331;  // "MVC1"

using Frame = std::vector<std::uint8_t>;  // width*height luma samples

struct EncodedStream {
  int width = 0;
  int height = 0;
  int frames = 0;
  int qp = 0;
  Config config = Config::kIntra;
  std::vector<std::uint8_t> payload;

  // Serialises header + payload in the target's input-window layout
  // (seven big-endian words, then payload bytes).
  std::vector<std::uint8_t> to_input_blob() const;
};

struct EncodeResult {
  EncodedStream stream;
  std::vector<Frame> reconstruction;  // encoder-side recon (closed loop)
};

// Encodes a sequence. Frames must all be width*height, with width/height
// multiples of 8 and at most 64.
EncodeResult encode(const std::vector<Frame>& frames, int width, int height,
                    int qp, Config config);

struct DecodeResult {
  std::vector<Frame> frames;
  double rms_activity = 0.0;
  double elapsed_s = 0.0;
  int status = 0;
};

// Golden decoder: the host-compiled Micro-C decoder.
DecodeResult golden_decode(const EncodedStream& stream);

double psnr(const Frame& a, const Frame& b);

// Exposes the Micro-C decoder's dequantiser (tests pin the QP table to the
// documented formula round(16 * 2^((qp-4)/6)) through it).
int dequant_probe(int level, int qp);

}  // namespace nfp::codec
