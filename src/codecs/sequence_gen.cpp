#include "codecs/sequence_gen.h"

#include <cmath>
#include <numbers>

#include "board/rng.h"

namespace nfp::codec {
namespace {

std::uint8_t clip_pixel(double v) {
  if (v < 0.0) return 0;
  if (v > 255.0) return 255;
  return static_cast<std::uint8_t>(v + 0.5);
}

}  // namespace

std::vector<Frame> make_sequence(int width, int height, int frames,
                                 SequenceKind kind, std::uint64_t seed) {
  board::SplitMix64 rng(seed ^ 0xC0DEC0DEC0DEC0DEull);
  std::vector<Frame> out;
  out.reserve(static_cast<std::size_t>(frames));

  switch (kind) {
    case SequenceKind::kMovingGradient: {
      const double gx = 1.0 + rng.uniform() * 2.0;
      const double gy = 1.0 + rng.uniform() * 2.0;
      const double vx = 1.5 + rng.uniform() * 2.0;  // pixels per frame
      const double vy = 0.5 + rng.uniform();
      for (int f = 0; f < frames; ++f) {
        Frame frame(static_cast<std::size_t>(width) * height);
        for (int y = 0; y < height; ++y) {
          for (int x = 0; x < width; ++x) {
            const double v =
                90.0 + gx * (x + vx * f) + gy * (y + vy * f) +
                25.0 * std::sin((x + vx * f) * 0.21);
            frame[static_cast<std::size_t>(y) * width + x] = clip_pixel(v);
          }
        }
        out.push_back(std::move(frame));
      }
      return out;
    }
    case SequenceKind::kBouncingBlocks: {
      struct Box {
        double x, y, vx, vy;
        int size;
        int value;
      };
      std::vector<Box> boxes;
      for (int b = 0; b < 3; ++b) {
        boxes.push_back({rng.uniform() * (width - 12),
                         rng.uniform() * (height - 12),
                         1.0 + rng.uniform() * 2.5, 1.0 + rng.uniform() * 2.5,
                         8 + static_cast<int>(rng.next() % 8),
                         60 + static_cast<int>(rng.next() % 160)});
      }
      for (int f = 0; f < frames; ++f) {
        Frame frame(static_cast<std::size_t>(width) * height, 40);
        for (auto& box : boxes) {
          const int x0 = static_cast<int>(box.x);
          const int y0 = static_cast<int>(box.y);
          for (int y = y0; y < y0 + box.size && y < height; ++y) {
            for (int x = x0; x < x0 + box.size && x < width; ++x) {
              if (x >= 0 && y >= 0) {
                frame[static_cast<std::size_t>(y) * width + x] =
                    static_cast<std::uint8_t>(box.value);
              }
            }
          }
          box.x += box.vx;
          box.y += box.vy;
          if (box.x < 0 || box.x + box.size >= width) box.vx = -box.vx;
          if (box.y < 0 || box.y + box.size >= height) box.vy = -box.vy;
        }
        out.push_back(std::move(frame));
      }
      return out;
    }
    case SequenceKind::kPanningTexture: {
      const double fx = 0.5 + rng.uniform() * 1.5;
      const double fy = 0.5 + rng.uniform() * 1.5;
      const double pan = 2.0 + rng.uniform() * 2.0;
      for (int f = 0; f < frames; ++f) {
        Frame frame(static_cast<std::size_t>(width) * height);
        for (int y = 0; y < height; ++y) {
          for (int x = 0; x < width; ++x) {
            const double u = x + pan * f;
            const double v =
                128.0 +
                45.0 * std::sin(2.0 * std::numbers::pi * fx * u / width) *
                    std::cos(2.0 * std::numbers::pi * fy * y / height) +
                20.0 * std::sin(0.9 * u + 0.7 * y);
            frame[static_cast<std::size_t>(y) * width + x] = clip_pixel(v);
          }
        }
        out.push_back(std::move(frame));
      }
      return out;
    }
  }
  return out;
}

}  // namespace nfp::codec
