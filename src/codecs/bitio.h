// Bit-level writer for the MVC bitstream (MSB-first; matches the Micro-C
// decoder's bit reader).
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace nfp::codec {

class BitWriter {
 public:
  void bit(int b) {
    if (bit_index_ == 0) bytes_.push_back(0);
    if (b) {
      bytes_.back() |= static_cast<std::uint8_t>(1u << (7 - bit_index_));
    }
    bit_index_ = (bit_index_ + 1) & 7;
  }

  void bits(std::uint32_t value, int count) {
    for (int i = count - 1; i >= 0; --i) bit((value >> i) & 1u);
  }

  // Unsigned Exp-Golomb.
  void ue(std::uint32_t v) {
    const std::uint32_t u = v + 1;
    int n = 0;
    while ((1u << (n + 1)) <= u) ++n;  // n = floor(log2(u))
    for (int i = 0; i < n; ++i) bit(0);
    bits(u, n + 1);
  }

  // Signed Exp-Golomb: 0, 1, -1, 2, -2, ...
  void se(std::int32_t v) {
    if (v == 0) {
      ue(0);
    } else if (v > 0) {
      ue(static_cast<std::uint32_t>(2 * v - 1));
    } else {
      ue(static_cast<std::uint32_t>(-2 * v));
    }
  }

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::size_t bit_count() const {
    return bytes_.size() * 8 - (bit_index_ == 0 ? 0 : 8 - bit_index_);
  }

 private:
  std::vector<std::uint8_t> bytes_;
  int bit_index_ = 0;
};

}  // namespace nfp::codec
