// Synthetic raw video sequences, standing in for the paper's three input
// sequences. Three motion characters: a moving smooth gradient, bouncing
// rectangles, and a panning sinusoid texture.
#pragma once

#include <cstdint>
#include <vector>

#include "codecs/mvc.h"

namespace nfp::codec {

enum class SequenceKind : int {
  kMovingGradient = 0,
  kBouncingBlocks = 1,
  kPanningTexture = 2,
};

std::vector<Frame> make_sequence(int width, int height, int frames,
                                 SequenceKind kind, std::uint64_t seed);

}  // namespace nfp::codec
