// Embedded Micro-C runtime sources. The same files live on disk under
// src/rtlib/mc/ and are #included directly by host differential tests.
#pragma once

#include <string_view>

namespace nfp::rtlib {

// IEEE-754 binary64 soft-float runtime (src/rtlib/mc/softfloat.c).
extern const std::string_view kSoftfloatSource;

// Software integer mul/div runtime (src/rtlib/mc/softmuldiv.c).
extern const std::string_view kSoftMulDivSource;

}  // namespace nfp::rtlib
