/* IEEE-754 binary64 soft-float runtime for Micro-C (-msoft-float).
 *
 * Written in the dual-compilable Micro-C dialect: integer-only arithmetic on
 * the two 32-bit halves of a double, with three compiler intrinsics:
 *   mc_dhi(d) / mc_dlo(d)  -- extract the high/low word of a double
 *   mc_bits2d(hi, lo)      -- assemble a double from raw words
 *   mc_umulhi(a, b)        -- high 32 bits of the 64-bit unsigned product
 * On the simulated target these are register-level no-ops or single
 * instructions; on the host they are provided by tests/support/mc_host.h so
 * this exact file can be verified against hardware IEEE-754 arithmetic.
 *
 * All operations round to nearest-even and handle zeros, subnormals,
 * infinities and NaNs (quiet NaN 0x7FF8...0). The only deliberate deviation:
 * __sf_dcmp reports "unordered" as 2, which maps NaN comparisons to the same
 * results as hardware for <, <=, ==, != (the workloads never compare NaNs).
 */

#ifndef MC_TARGET
/* Host build: intrinsics provided by the including translation unit. */
#endif

/* ---- small helpers ------------------------------------------------------ */

static int sf_clz(unsigned x) {
  int n;
  if (x == 0u) return 32;
  n = 0;
  if ((x & 0xFFFF0000u) == 0u) { n = n + 16; x = x << 16; }
  if ((x & 0xFF000000u) == 0u) { n = n + 8; x = x << 8; }
  if ((x & 0xF0000000u) == 0u) { n = n + 4; x = x << 4; }
  if ((x & 0xC0000000u) == 0u) { n = n + 2; x = x << 2; }
  if ((x & 0x80000000u) == 0u) { n = n + 1; }
  return n;
}

/* (h,l) << n for 0 <= n <= 63; result via out[0]=h, out[1]=l. */
static void sf_shl64(unsigned h, unsigned l, int n, unsigned* out) {
  if (n == 0) {
    out[0] = h; out[1] = l;
  } else if (n < 32) {
    out[0] = (h << n) | (l >> (32 - n));
    out[1] = l << n;
  } else {
    out[0] = l << (n - 32);
    out[1] = 0u;
  }
}

/* (h,l) >> n with the shifted-out bits ORed into bit 0 (sticky). */
static void sf_shr64_sticky(unsigned h, unsigned l, int n, unsigned* out) {
  unsigned sticky;
  if (n == 0) {
    out[0] = h; out[1] = l;
    return;
  }
  if (n >= 64) {
    sticky = (h | l) != 0u ? 1u : 0u;
    out[0] = 0u;
    out[1] = sticky;
    return;
  }
  if (n < 32) {
    sticky = (l << (32 - n)) != 0u ? 1u : 0u;
    out[0] = h >> n;
    out[1] = (h << (32 - n)) | (l >> n) | sticky;
  } else if (n == 32) {
    sticky = l != 0u ? 1u : 0u;
    out[0] = 0u;
    out[1] = h | sticky;
  } else {
    sticky = (l != 0u || (h << (64 - n)) != 0u) ? 1u : 0u;
    out[0] = 0u;
    out[1] = (h >> (n - 32)) | sticky;
  }
}

/* out = (ah,al) + (bh,bl). */
static void sf_add64(unsigned ah, unsigned al, unsigned bh, unsigned bl,
                     unsigned* out) {
  unsigned l = al + bl;
  unsigned carry = l < al ? 1u : 0u;
  out[0] = ah + bh + carry;
  out[1] = l;
}

/* out = (ah,al) - (bh,bl); caller guarantees a >= b. */
static void sf_sub64(unsigned ah, unsigned al, unsigned bh, unsigned bl,
                     unsigned* out) {
  unsigned borrow = al < bl ? 1u : 0u;
  out[1] = al - bl;
  out[0] = ah - bh - borrow;
}

/* unsigned 64-bit compare: -1, 0, 1. */
static int sf_cmp64(unsigned ah, unsigned al, unsigned bh, unsigned bl) {
  if (ah < bh) return -1;
  if (ah > bh) return 1;
  if (al < bl) return -1;
  if (al > bl) return 1;
  return 0;
}

/* ---- unpack / pack ------------------------------------------------------ */

/* Value classes. */
#define SF_FINITE 0
#define SF_ZERO 1
#define SF_INF 2
#define SF_NAN 3

/* Unpacks (h,l). out[0]=sign, out[1]=biased exp, out[2]=mh, out[3]=ml where
 * (mh,ml) is the 53-bit mantissa with the implicit bit at overall bit 52
 * (mh bit 20). Subnormal inputs are normalised (exp goes <= 0). */
static int sf_unpack(unsigned h, unsigned l, unsigned* out) {
  unsigned sign = h >> 31;
  int exp = (int)((h >> 20) & 0x7FFu);
  unsigned mh = h & 0xFFFFFu;
  unsigned ml = l;
  unsigned tmp[2];
  int shift;
  out[0] = sign;
  if (exp == 0x7FF) {
    out[1] = (unsigned)exp;
    out[2] = mh;
    out[3] = ml;
    if ((mh | ml) != 0u) return SF_NAN;
    return SF_INF;
  }
  if (exp == 0) {
    if ((mh | ml) == 0u) {
      out[1] = 0u;
      out[2] = 0u;
      out[3] = 0u;
      return SF_ZERO;
    }
    /* Subnormal: normalise so the top bit lands at position 52. */
    if (mh != 0u) {
      shift = sf_clz(mh) - 11;
    } else {
      shift = 21 + sf_clz(ml);
    }
    sf_shl64(mh, ml, shift, tmp);
    mh = tmp[0];
    ml = tmp[1];
    exp = 1 - shift;
  } else {
    mh = mh | 0x100000u;  /* implicit bit */
  }
  out[1] = (unsigned)exp;
  out[2] = mh;
  out[3] = ml;
  return SF_FINITE;
}

static double sf_nan(void) { return mc_bits2d(0x7FF80000u, 0u); }
static double sf_inf(unsigned sign) {
  return mc_bits2d((sign << 31) | 0x7FF00000u, 0u);
}
static double sf_zero(unsigned sign) { return mc_bits2d(sign << 31, 0u); }

/* Rounds and packs. (mh,ml) carries the result in the "<<3 domain": the
 * implicit bit at overall position 55 (mh bit 23), 52 mantissa bits below
 * it, and guard/round/sticky in bits 2..0. `exp` is the biased exponent.
 * Handles overflow to infinity and gradual underflow. */
static double sf_round_pack(unsigned sign, int exp, unsigned mh, unsigned ml) {
  unsigned tmp[2];
  unsigned grs;
  unsigned lsb;
  unsigned inc;

  if ((mh | ml) == 0u) return sf_zero(sign);

  if (exp <= 0) {
    /* Subnormal (or will round up into the smallest normal): shift right
     * by 1-exp with sticky, then encode with exponent 0. */
    sf_shr64_sticky(mh, ml, 1 - exp, tmp);
    mh = tmp[0];
    ml = tmp[1];
    exp = 0;
  }

  grs = ml & 7u;
  lsb = (ml >> 3) & 1u;
  inc = 0u;
  if (grs > 4u) inc = 1u;
  if (grs == 4u && lsb == 1u) inc = 1u;
  if (inc != 0u) {
    sf_add64(mh, ml & ~7u, 0u, 8u, tmp);
    mh = tmp[0];
    ml = tmp[1];
    if ((mh & 0x1000000u) != 0u) {  /* carried past bit 55 */
      mh = mh >> 1;                  /* all lower bits are zero */
      exp = exp + 1;
    }
  }
  /* Drop the (already consumed) GRS bits -- plain truncating shift. */
  ml = (mh << 29) | (ml >> 3);
  mh = mh >> 3;
  if (exp == 0 && (mh & 0x100000u) != 0u) exp = 1;
  if (exp >= 0x7FF) return sf_inf(sign);
  return mc_bits2d((sign << 31) | ((unsigned)exp << 20) | (mh & 0xFFFFFu),
                   ml);
}

/* ---- addition / subtraction --------------------------------------------- */

double __sf_dadd(double a, double b) {
  unsigned ua[4];
  unsigned ub[4];
  unsigned ra[2];
  unsigned rb[2];
  unsigned res[2];
  int ca;
  int cb;
  int ea;
  int eb;
  int d;
  int shift;
  unsigned sign;

  ca = sf_unpack(mc_dhi(a), mc_dlo(a), ua);
  cb = sf_unpack(mc_dhi(b), mc_dlo(b), ub);
  if (ca == SF_NAN || cb == SF_NAN) return sf_nan();
  if (ca == SF_INF) {
    if (cb == SF_INF && ua[0] != ub[0]) return sf_nan();
    return a;
  }
  if (cb == SF_INF) return b;
  if (ca == SF_ZERO && cb == SF_ZERO) {
    /* +0 + -0 = +0 (round-to-nearest). */
    return sf_zero(ua[0] & ub[0]);
  }
  if (ca == SF_ZERO) return b;
  if (cb == SF_ZERO) return a;

  ea = (int)ua[1];
  eb = (int)ub[1];
  /* Move both mantissas into the <<3 domain. */
  sf_shl64(ua[2], ua[3], 3, ra);
  sf_shl64(ub[2], ub[3], 3, rb);

  if (ea < eb) {
    /* swap so a is the larger exponent */
    d = ea; ea = eb; eb = d;
    res[0] = ra[0]; res[1] = ra[1];
    ra[0] = rb[0]; ra[1] = rb[1];
    rb[0] = res[0]; rb[1] = res[1];
    d = (int)ua[0]; ua[0] = ub[0]; ub[0] = (unsigned)d;
  }
  d = ea - eb;
  sf_shr64_sticky(rb[0], rb[1], d, rb);

  if (ua[0] == ub[0]) {
    sf_add64(ra[0], ra[1], rb[0], rb[1], res);
    sign = ua[0];
    if ((res[0] & 0x1000000u) != 0u) {  /* carry past bit 55 */
      sf_shr64_sticky(res[0], res[1], 1, res);
      ea = ea + 1;
    }
    return sf_round_pack(sign, ea, res[0], res[1]);
  }

  /* Opposite signs: subtract the smaller magnitude. */
  d = sf_cmp64(ra[0], ra[1], rb[0], rb[1]);
  if (d == 0) return sf_zero(0u);
  if (d > 0) {
    sf_sub64(ra[0], ra[1], rb[0], rb[1], res);
    sign = ua[0];
  } else {
    sf_sub64(rb[0], rb[1], ra[0], ra[1], res);
    sign = ub[0];
  }
  /* Renormalise: bring the top bit back to position 55. */
  if (res[0] != 0u) {
    shift = sf_clz(res[0]) - 8;
  } else {
    shift = 24 + sf_clz(res[1]);
  }
  if (shift > 0) {
    /* Left shift, keeping the sticky bit pinned at bit 0: sticky can only
     * be set when the exponent distance was >= 4, in which case at most one
     * bit of cancellation occurred (shift == 1), so no significant bits are
     * manufactured. */
    unsigned sticky0 = res[1] & 1u;
    sf_shl64(res[0], res[1] & ~1u, shift, res);
    res[1] = res[1] | sticky0;
    ea = ea - shift;
  } else if (shift < 0) {
    sf_shr64_sticky(res[0], res[1], -shift, res);
    ea = ea - shift;
  }
  return sf_round_pack(sign, ea, res[0], res[1]);
}

double __sf_dsub(double a, double b) {
  return __sf_dadd(a, mc_bits2d(mc_dhi(b) ^ 0x80000000u, mc_dlo(b)));
}

double __sf_dneg(double a) {
  return mc_bits2d(mc_dhi(a) ^ 0x80000000u, mc_dlo(a));
}

/* ---- multiplication ------------------------------------------------------ */

double __sf_dmul(double a, double b) {
  unsigned ua[4];
  unsigned ub[4];
  unsigned p0;
  unsigned p1;
  unsigned p2;
  unsigned p3;
  unsigned t;
  unsigned c;
  unsigned lo;
  unsigned hi;
  unsigned sticky;
  unsigned res[2];
  int ca;
  int cb;
  int exp;
  unsigned sign;

  ca = sf_unpack(mc_dhi(a), mc_dlo(a), ua);
  cb = sf_unpack(mc_dhi(b), mc_dlo(b), ub);
  sign = ua[0] ^ ub[0];
  if (ca == SF_NAN || cb == SF_NAN) return sf_nan();
  if (ca == SF_INF || cb == SF_INF) {
    if (ca == SF_ZERO || cb == SF_ZERO) return sf_nan();
    return sf_inf(sign);
  }
  if (ca == SF_ZERO || cb == SF_ZERO) return sf_zero(sign);

  exp = (int)ua[1] + (int)ub[1] - 1023;

  /* 53x53 -> 106-bit product via four 32x32 partials. */
  p0 = ua[3] * ub[3];
  t = mc_umulhi(ua[3], ub[3]);

  lo = ua[3] * ub[2];
  hi = mc_umulhi(ua[3], ub[2]);
  p1 = t + lo;
  c = p1 < lo ? 1u : 0u;
  p2 = hi + c;

  lo = ua[2] * ub[3];
  hi = mc_umulhi(ua[2], ub[3]);
  p1 = p1 + lo;
  c = p1 < lo ? 1u : 0u;
  p2 = p2 + hi + c;  /* hi <= 2^21, no overflow with c */

  lo = ua[2] * ub[2];      /* both <= 2^21 -> fits 42 bits */
  hi = mc_umulhi(ua[2], ub[2]);
  p2 = p2 + lo;
  c = p2 < lo ? 1u : 0u;
  p3 = hi + c;

  /* P = p3:p2:p1:p0, top bit at 104 or 105. Bring the top 56 bits into
   * (hi,lo) with everything below as sticky. */
  if ((p3 & 0x200u) != 0u) {  /* bit 105 */
    exp = exp + 1;
    /* (hi,lo) = P >> 50; sticky = P bits [49..0] */
    hi = (p3 << 14) | (p2 >> 18);
    lo = (p2 << 14) | (p1 >> 18);
    sticky = ((p1 << 14) != 0u || p0 != 0u) ? 1u : 0u;
  } else {
    /* (hi,lo) = P >> 49; sticky = P bits [48..0] */
    hi = (p3 << 15) | (p2 >> 17);
    lo = (p2 << 15) | (p1 >> 17);
    sticky = ((p1 << 15) != 0u || p0 != 0u) ? 1u : 0u;
  }
  res[0] = hi;
  res[1] = lo | sticky;
  return sf_round_pack(sign, exp, res[0], res[1]);
}

/* ---- division ------------------------------------------------------------ */

double __sf_ddiv(double a, double b) {
  unsigned ua[4];
  unsigned ub[4];
  unsigned qh;
  unsigned ql;
  unsigned rh;
  unsigned rl;
  unsigned res[2];
  unsigned t[2];
  int ca;
  int cb;
  int exp;
  int i;
  unsigned sign;
  unsigned sticky;

  ca = sf_unpack(mc_dhi(a), mc_dlo(a), ua);
  cb = sf_unpack(mc_dhi(b), mc_dlo(b), ub);
  sign = ua[0] ^ ub[0];
  if (ca == SF_NAN || cb == SF_NAN) return sf_nan();
  if (ca == SF_INF) {
    if (cb == SF_INF) return sf_nan();
    return sf_inf(sign);
  }
  if (cb == SF_INF) return sf_zero(sign);
  if (cb == SF_ZERO) {
    if (ca == SF_ZERO) return sf_nan();
    return sf_inf(sign);  /* x/0 */
  }
  if (ca == SF_ZERO) return sf_zero(sign);

  exp = (int)ua[1] - (int)ub[1] + 1023;

  /* Restoring long division: 55 quotient bits of A/B in Q54 fixed point
   * (A, B are the 53-bit mantissas, both in [2^52, 2^53)). */
  qh = 0u;
  ql = 0u;
  rh = ua[2];
  rl = ua[3];
  for (i = 0; i < 55; i = i + 1) {
    qh = (qh << 1) | (ql >> 31);
    ql = ql << 1;
    if (sf_cmp64(rh, rl, ub[2], ub[3]) >= 0) {
      sf_sub64(rh, rl, ub[2], ub[3], t);
      rh = t[0];
      rl = t[1];
      ql = ql | 1u;
    }
    rh = (rh << 1) | (rl >> 31);
    rl = rl << 1;
  }
  sticky = (rh | rl) != 0u ? 1u : 0u;

  /* q in [2^53, 2^55): bit 54 set iff A >= B. */
  if ((qh & 0x400000u) != 0u) {  /* bit 54 */
    sf_shl64(qh, ql, 1, res);
  } else {
    exp = exp - 1;
    sf_shl64(qh, ql, 2, res);
  }
  res[1] = res[1] | sticky;
  return sf_round_pack(sign, exp, res[0], res[1]);
}

/* ---- square root ---------------------------------------------------------- */

double __sf_dsqrt(double a) {
  unsigned ua[4];
  unsigned rad0;
  unsigned rad1;
  unsigned rad2;
  unsigned rad3;
  unsigned rem_h;
  unsigned rem_l;
  unsigned root_h;
  unsigned root_l;
  unsigned th;
  unsigned tl;
  unsigned two_bits;
  unsigned res[2];
  unsigned t[2];
  int ca;
  int eub;
  int exp;
  int i;
  int s;

  ca = sf_unpack(mc_dhi(a), mc_dlo(a), ua);
  if (ca == SF_NAN) return sf_nan();
  if (ca == SF_ZERO) return a;  /* sqrt(+-0) = +-0 */
  if (ua[0] != 0u) return sf_nan();
  if (ca == SF_INF) return a;

  eub = (int)ua[1] - 1023;  /* unbiased exponent */
  s = 56 + (eub & 1);
  /* The 55 loop iterations consume the top 110 bits of the 128-bit
   * radicand register, so the value M << s (109/110 bits) is placed with
   * an additional left shift of 18: rad = M << (s + 18).
   * M's words: ua[2] (21 bits), ua[3]. */
  if (s == 56) {  /* M << 74 */
    rad3 = (ua[2] << 10) | (ua[3] >> 22);
    rad2 = ua[3] << 10;
  } else {        /* M << 75 */
    rad3 = (ua[2] << 11) | (ua[3] >> 21);
    rad2 = ua[3] << 11;
  }
  rad1 = 0u;
  rad0 = 0u;

  /* Restoring square root, two radicand bits per step, 55 result bits. */
  rem_h = 0u;
  rem_l = 0u;
  root_h = 0u;
  root_l = 0u;
  for (i = 0; i < 55; i = i + 1) {
    /* Shift the next two radicand bits into rem (rem <= 2^57, fits). */
    two_bits = rad3 >> 30;
    rad3 = (rad3 << 2) | (rad2 >> 30);
    rad2 = (rad2 << 2) | (rad1 >> 30);
    rad1 = (rad1 << 2) | (rad0 >> 30);
    rad0 = rad0 << 2;
    rem_h = (rem_h << 2) | (rem_l >> 30);
    rem_l = (rem_l << 2) | two_bits;
    /* trial = (root << 2) | 1 */
    th = (root_h << 2) | (root_l >> 30);
    tl = (root_l << 2) | 1u;
    /* root <<= 1 */
    root_h = (root_h << 1) | (root_l >> 31);
    root_l = root_l << 1;
    if (sf_cmp64(rem_h, rem_l, th, tl) >= 0) {
      sf_sub64(rem_h, rem_l, th, tl, t);
      rem_h = t[0];
      rem_l = t[1];
      root_l = root_l | 1u;
    }
  }

  /* root has 55 bits (bit 54 set); exponent floor(eub/2). */
  exp = (eub >> 1) + 1023;
  sf_shl64(root_h, root_l, 1, res);
  if ((rem_h | rem_l) != 0u) res[1] = res[1] | 1u;
  return sf_round_pack(0u, exp, res[0], res[1]);
}

/* ---- conversions ----------------------------------------------------------- */

double __sf_i2d(int v) {
  unsigned sign;
  unsigned mag;
  int top;
  int exp;
  unsigned m[2];
  if (v == 0) return sf_zero(0u);
  if (v < 0) {
    sign = 1u;
    mag = 0u - (unsigned)v;  /* two's-complement negate; -v is UB at INT_MIN */
  } else {
    sign = 0u;
    mag = (unsigned)v;
  }
  top = 31 - sf_clz(mag);
  exp = 1023 + top;
  /* place the top bit at position 55 */
  sf_shl64(0u, mag, 55 - top, m);
  return sf_round_pack(sign, exp, m[0], m[1]);
}

double __sf_u2d(unsigned v) {
  int top;
  unsigned m[2];
  if (v == 0u) return sf_zero(0u);
  top = 31 - sf_clz(v);
  sf_shl64(0u, v, 55 - top, m);
  return sf_round_pack(0u, 1023 + top, m[0], m[1]);
}

int __sf_d2i(double a) {
  unsigned ua[4];
  int ca;
  int e;
  int r;
  ca = sf_unpack(mc_dhi(a), mc_dlo(a), ua);
  if (ca == SF_NAN || ca == SF_ZERO) return 0;
  e = (int)ua[1] - 1023;
  if (ca == SF_INF || e > 30) {
    /* Saturate (matches the ISS fdtoi semantics); -2^31 itself also lands
     * on INT_MIN through the clamp. */
    if (ua[0] != 0u) return (int)0x80000000u;
    return 0x7FFFFFFF;
  }
  if (e < 0) return 0;
  /* truncated magnitude = mantissa >> (52 - e) */
  if (52 - e >= 32) {
    r = (int)(ua[2] >> (52 - e - 32));
  } else if (52 - e > 0) {
    r = (int)((ua[2] << (e - 20)) | (ua[3] >> (52 - e)));
  } else {
    r = (int)ua[3];
  }
  if (ua[0] != 0u) return -r;
  return r;
}

unsigned __sf_d2u(double a) {
  unsigned ua[4];
  int ca;
  int e;
  unsigned r;
  ca = sf_unpack(mc_dhi(a), mc_dlo(a), ua);
  if (ca == SF_NAN || ca == SF_ZERO) return 0u;
  if (ua[0] != 0u) return 0u;
  e = (int)ua[1] - 1023;
  if (ca == SF_INF || e > 31) return 0xFFFFFFFFu;
  if (e < 0) return 0u;
  if (52 - e >= 32) {
    r = ua[2] >> (52 - e - 32);
  } else if (52 - e > 0) {
    r = (ua[2] << (e - 20)) | (ua[3] >> (52 - e));
  } else {
    r = ua[3];
  }
  return r;
}

/* Total order on non-NaN values: -1, 0, 1; NaN involvement returns 2. */
int __sf_dcmp(double a, double b) {
  unsigned ah = mc_dhi(a);
  unsigned al = mc_dlo(a);
  unsigned bh = mc_dhi(b);
  unsigned bl = mc_dlo(b);
  unsigned asign = ah >> 31;
  unsigned bsign = bh >> 31;
  unsigned amag_h = ah & 0x7FFFFFFFu;
  unsigned bmag_h = bh & 0x7FFFFFFFu;
  int mag;
  if (((ah >> 20) & 0x7FFu) == 0x7FFu && ((ah & 0xFFFFFu) | al) != 0u) {
    return 2;
  }
  if (((bh >> 20) & 0x7FFu) == 0x7FFu && ((bh & 0xFFFFFu) | bl) != 0u) {
    return 2;
  }
  if ((amag_h | al) == 0u && (bmag_h | bl) == 0u) return 0;  /* +-0 == +-0 */
  if (asign != bsign) {
    if (asign != 0u) return -1;
    return 1;
  }
  mag = sf_cmp64(amag_h, al, bmag_h, bl);
  if (asign != 0u) return -mag;
  return mag;
}
