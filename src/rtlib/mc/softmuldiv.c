/* Software integer multiply/divide runtime for Micro-C (-msoft-muldiv).
 *
 * The LEON3's hardware multiplier and divider are synthesis options; a
 * minimal configuration traps or lowers to library calls. mcc lowers
 * `*`, `/`, `%` and the mc_umulhi intrinsic to these routines when
 * compiling for a board without the MUL/DIV units. Only addition,
 * subtraction, shifts and comparisons are used here (no `*`, `/`, `%`, and
 * no mc_umulhi — the routines must not recurse into themselves).
 */

unsigned __mc_umul(unsigned a, unsigned b) {
  unsigned result = 0;
  while (b != 0u) {
    if (b & 1u) result = result + a;
    a = a << 1;
    b = b >> 1;
  }
  return result;
}

int __mc_imul(int a, int b) {
  /* The low 32 bits of the product are sign-agnostic. */
  return (int)__mc_umul((unsigned)a, (unsigned)b);
}

/* High word of the 64-bit unsigned product, via 16-bit partial products. */
unsigned __mc_umulhi(unsigned a, unsigned b) {
  unsigned a_lo = a & 0xFFFFu;
  unsigned a_hi = a >> 16;
  unsigned b_lo = b & 0xFFFFu;
  unsigned b_hi = b >> 16;
  unsigned p_ll = __mc_umul(a_lo, b_lo);
  unsigned p_lh = __mc_umul(a_lo, b_hi);
  unsigned p_hl = __mc_umul(a_hi, b_lo);
  unsigned p_hh = __mc_umul(a_hi, b_hi);
  /* mid = p_lh + p_hl + (p_ll >> 16), tracking the carry into bit 32. */
  unsigned mid = p_lh + p_hl;
  unsigned carry = mid < p_lh ? 0x10000u : 0u;
  unsigned mid2 = mid + (p_ll >> 16);
  if (mid2 < mid) carry = carry + 0x10000u;
  return p_hh + (mid2 >> 16) + carry;
}

unsigned __mc_udiv(unsigned a, unsigned b) {
  unsigned quotient = 0;
  unsigned rem = 0;
  int i;
  /* b == 0 mirrors the hardware divider: the simulator faults there; here
   * we return all-ones, which no defined program observes. */
  if (b == 0u) return 0xFFFFFFFFu;
  for (i = 31; i >= 0; i = i - 1) {
    rem = (rem << 1) | ((a >> i) & 1u);
    quotient = quotient << 1;
    if (rem >= b) {
      rem = rem - b;
      quotient = quotient | 1u;
    }
  }
  return quotient;
}

unsigned __mc_urem(unsigned a, unsigned b) {
  return a - __mc_umul(__mc_udiv(a, b), b);
}

int __mc_sdiv(int a, int b) {
  /* negate in unsigned arithmetic: -a is UB at INT_MIN */
  unsigned ua = a < 0 ? 0u - (unsigned)a : (unsigned)a;
  unsigned ub = b < 0 ? 0u - (unsigned)b : (unsigned)b;
  unsigned q = __mc_udiv(ua, ub);
  if ((a < 0) != (b < 0)) return (int)(0u - q);
  return (int)q;
}

int __mc_srem(int a, int b) {
  /* C semantics: the remainder has the sign of the dividend. */
  unsigned ua = a < 0 ? 0u - (unsigned)a : (unsigned)a;
  unsigned ub = b < 0 ? 0u - (unsigned)b : (unsigned)b;
  unsigned r = __mc_urem(ua, ub);
  if (a < 0) return (int)(0u - r);
  return (int)r;
}
