// x86-64 backend of the template JIT (see jit.h for the architecture and
// docs/jit.md for the template shapes). Split in three parts:
//
//  1. the W^X arena + entry thunk (JitRuntime::Impl),
//  2. the generic slow-path helper nfp_jit_exec_insn — every record the
//     templates do not model natively re-executes through the block's own
//     morph handler, so the slow path is interpreter-identical by
//     construction (including faults, MMIO instret sync, and store
//     invalidation),
//  3. the per-block code generator (BlockCompiler).
//
// Register pinning inside emitted code (all callee-saved, so helper calls
// need no spills):
//   %rbx  &CpuState            %r13  remaining instruction budget
//   %r12  ram_data()-kRamBase  %r14  &JitRt
// %eax/%ecx/%edx are scratch. Blocks run with %rsp ≡ 0 (mod 16), so the
// helper is entered at the SysV-required alignment.
#include "sim/jit.h"

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <type_traits>

#include "asmkit/x64.h"
#include "isa/insn.h"
#include "sim/memmap.h"

#if NFP_JIT_ENABLED
#include <sys/mman.h>
#endif

namespace nfp::sim {

namespace {
[[maybe_unused]] bool g_jit_forced_off = false;
[[maybe_unused]] bool g_jit_inline_btc = true;
// Cost-mode residual run buffer: far larger than kMaxBlockLen, so a block
// whose prologue capacity check bails always fits after the host drains.
[[maybe_unused]] constexpr std::size_t kCaptureSlots = 8192;
}  // namespace

void jit_set_forced_off(bool off) { g_jit_forced_off = off; }
void jit_set_inline_btc(bool on) { g_jit_inline_btc = on; }

#if !NFP_JIT_ENABLED

// ---- foreign-host stubs ----------------------------------------------------
// Everything links, jit_available() is constant-false, and BlockCache never
// constructs a runtime — but keep the methods callable so a defect in the
// gating degrades to "no jit" instead of UB.

bool jit_available() { return false; }

struct JitRuntime::Impl {};

JitRuntime::JitRuntime(Bus& bus, BlockCache& cache) : bus_(bus), cache_(cache) {}
JitRuntime::~JitRuntime() = default;
bool JitRuntime::ok() const { return false; }
void JitRuntime::configure(CpuState*, std::uint64_t*) {}
void JitRuntime::configure_cost(CpuState*, std::uint64_t*, std::uint64_t*) {}
std::span<const JitCapture> JitRuntime::drain_captures() { return {}; }
void JitRuntime::btc_insert(std::uint32_t, Block&) {}
void JitRuntime::append_helper_capture(const Block&, std::uint32_t) {}
Block::JitState JitRuntime::ensure_compiled(Block& b) {
  b.jit_state = Block::JitState::kRejected;
  return b.jit_state;
}
std::uint64_t JitRuntime::enter(Block&, std::uint64_t budget) { return budget; }
std::pair<const JitBlockMeta*, std::uint32_t> JitRuntime::take_fault() {
  return {nullptr, 0};
}
Block* JitRuntime::last_block() const { return nullptr; }
void JitRuntime::patch_transition(JitBlockMeta&, std::uint32_t, Block&) {}
void JitRuntime::on_block_death(Block&) {}
void JitRuntime::reset_code() {}

#else  // NFP_JIT_ENABLED

// Emitted code addresses CpuState and JitRt fields by constant displacement;
// pin the layouts the templates assume.
static_assert(std::is_standard_layout_v<CpuState>);
static_assert(offsetof(CpuState, r) == 0);
static_assert(offsetof(CpuState, f) == 128);
static_assert(offsetof(CpuState, pc) == 256);
static_assert(offsetof(CpuState, npc) == 260);
static_assert(offsetof(CpuState, y) == 264);
static_assert(offsetof(CpuState, icc_n) == 268);
static_assert(offsetof(CpuState, icc_z) == 269);
static_assert(offsetof(CpuState, icc_v) == 270);
static_assert(offsetof(CpuState, icc_c) == 271);
static_assert(offsetof(CpuState, fcc) == 272);
static_assert(offsetof(CpuState, instret) == 280);
static_assert(sizeof(bool) == 1);

static_assert(std::is_standard_layout_v<JitRt>);
static_assert(offsetof(JitRt, cpu) == 0);
static_assert(offsetof(JitRt, ram_bias) == 8);
static_assert(offsetof(JitRt, touched) == 16);
static_assert(offsetof(JitRt, counts) == 24);
static_assert(offsetof(JitRt, cur_meta) == 32);
static_assert(offsetof(JitRt, fault_idx) == 40);
static_assert(offsetof(JitRt, cap_ptr) == 56);
static_assert(offsetof(JitRt, cap_end) == 64);
static_assert(offsetof(JitRt, cost_cycles) == 72);
static_assert(offsetof(JitRt, btc) == 80);
static_assert(offsetof(JitRt, btc_hits) == 88);
static_assert(sizeof(JitCapture) == 16);
static_assert(sizeof(JitBtcSlot) == 16);

namespace {

bool probe_exec_pages() {
  static int result = -1;
  if (result < 0) {
    void* p = ::mmap(nullptr, 4096, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p == MAP_FAILED) {
      result = 0;
    } else {
      result = ::mprotect(p, 4096, PROT_READ | PROT_EXEC) == 0 ? 1 : 0;
      ::munmap(p, 4096);
    }
  }
  return result == 1;
}

}  // namespace

bool jit_available() { return !g_jit_forced_off && probe_exec_pages(); }

// ---- generic slow path -----------------------------------------------------
// Called from emitted code (rdi = &JitRt, esi = record index). Re-executes
// one record through the block's own morph handler and returns 0; on a fault
// stashes the exception and the record index and returns 1 (the native code
// then bails through a bare `ret` and the host reconciles). instret is
// saved/restored around the handler: the handler syncs it for MMIO loads
// (entry_instret is passed as the architectural value at block entry), but
// the batched block-exit add must still see the un-synced value.
extern "C" std::uint64_t nfp_jit_exec_insn(JitRt* rt, std::uint32_t idx) {
  const auto* meta = static_cast<const JitBlockMeta*>(rt->cur_meta);
  Block* b = meta->block;
  CpuState& st = *rt->cpu;
  JitRuntime* jr = rt->owner;
  jr->count_helper_exec();
  // The scratch capture array is always handed to the handler: in cost mode
  // the cache's capture variants dereference it, and on success the capture
  // of a residual-flagged record is forwarded into the run buffer (the
  // handler writes morph-exact operands — e.g. post-writeback for divides).
  MorphCtx ctx{st, jr->bus(), jr->cache(), b->start, b->code.data(),
               st.instret, jr->helper_capture()};
  const std::uint64_t saved = st.instret;
  try {
    const MorphInsn& m = b->code[idx];
    m.fn(m, ctx);
    st.instret = saved;
    if (rt->cap_ptr != nullptr) jr->append_helper_capture(*b, idx);
    return 0;
  } catch (...) {
    st.instret = saved;
    jr->stash_exception(std::current_exception());
    rt->fault_idx = idx;
    return 1;
  }
}

namespace {

namespace x = asmkit::x64;
using x::Cc;
using x::Gp;
using isa::Op;

constexpr Gp kCpu = Gp::rbx;
constexpr Gp kRam = Gp::r12;
constexpr Gp kBudget = Gp::r13;
constexpr Gp kRt = Gp::r14;

constexpr std::int32_t kOffPc = 256;
constexpr std::int32_t kOffNpc = 260;
constexpr std::int32_t kOffY = 264;
constexpr std::int32_t kOffN = 268;
constexpr std::int32_t kOffZ = 269;
constexpr std::int32_t kOffV = 270;
constexpr std::int32_t kOffC = 271;
constexpr std::int32_t kOffFcc = 272;
constexpr std::int32_t kOffInstret = 280;

constexpr std::int32_t kRtTouched = 16;
constexpr std::int32_t kRtCounts = 24;
constexpr std::int32_t kRtCurMeta = 32;
constexpr std::int32_t kRtCapPtr = 56;
constexpr std::int32_t kRtCapEnd = 64;
constexpr std::int32_t kRtCostCycles = 72;
constexpr std::int32_t kRtBtc = 80;
constexpr std::int32_t kRtBtcHits = 88;

x::Mem reg_m(std::uint32_t r) {
  return x::ptr(kCpu, 4 * static_cast<std::int32_t>(r));
}

// Ops safe to fold into a CTI's budget-checked taken path: statically
// non-faulting, no memory traffic, no pc/npc access. Everything else leaves
// the delay slot to the host's single-step (the interpreter's own shape).
bool delay_foldable(Op op) {
  if (op >= Op::kAdd && op <= Op::kSmulcc) return true;  // ALU incl. shifts
  switch (op) {
    case Op::kSethi: case Op::kNop: case Op::kRdy: case Op::kWry:
    case Op::kSave: case Op::kRestore:
      return true;
    default:
      return false;
  }
}

// Per-block code generator. Compiles from the predecoded DecodedInsn image
// (MorphInsn erases has_imm); valid because a live block proves its words
// are unchanged since morph time.
class BlockCompiler {
 public:
  BlockCompiler(BlockCache& cache, const Block& b, const JitBlockMeta* meta,
                bool counted, bool cost, bool inline_btc)
      : b_(b),
        meta_(meta),
        counted_(counted),
        cost_(cost),
        inline_btc_(inline_btc),
        dcache_(cache.dcache()),
        word0_((b.start - cache.code_base()) / 4),
        code_base_(cache.code_base()),
        code_limit_(cache.code_limit()) {}

  bool compile();
  const x::Emitter& emitter() const { return e_; }
  std::vector<JitExit> take_exits() { return std::move(exits_); }
  bool folds_delay() const { return folds_delay_; }

 private:
  struct ColdCall {
    x::Label slow;
    x::Label resume;
    std::uint32_t idx = 0;
    bool returns = true;  // false: the helper is known to fault (jmpl align)
  };

  ColdCall& new_cold(std::uint32_t idx, bool returns = true) {
    colds_.push_back(ColdCall{});
    colds_.back().idx = idx;
    colds_.back().returns = returns;
    return colds_.back();
  }

  void emit_insn(const isa::DecodedInsn& d, std::uint32_t i);
  void emit_load(const isa::DecodedInsn& d, std::uint32_t i);
  void emit_store(const isa::DecodedInsn& d, std::uint32_t i);
  void emit_cti(const isa::DecodedInsn& d);
  void emit_jmpl(const isa::DecodedInsn& d, std::uint32_t cti_pc, bool fold,
                 const isa::DecodedInsn* delay);
  void emit_icc_test(std::uint8_t cond, x::Label& taken);
  void emit_fcc_test(std::uint8_t cond, x::Label& taken);
  void emit_delayed_exit(std::uint32_t cti_pc, std::uint32_t target, bool fold,
                         const isa::DecodedInsn* delay);
  void emit_static_exit(std::uint32_t exit_pc, std::uint32_t retired,
                        int extra_op, int cti_taken = -1);
  void emit_counts(int extra_op);
  void emit_helper_inline(std::uint32_t i);
  void emit_ea(const isa::DecodedInsn& d);

  // ---- cost-mode residual captures ---------------------------------------
  // True when record i carries a dynamic residual (operand pair replayed by
  // the hooks' apply_residual at drain time).
  bool residual_at(std::uint32_t i) const {
    return cost_ && i < residual_.size() && residual_[i];
  }
  void emit_capture_tail(Gp cursor, std::uint32_t op, std::uint32_t idx) {
    e_.mov_mi(x::ptr(cursor, 8), op);
    e_.mov_mi(x::ptr(cursor, 12), idx);
    e_.add_mi64(x::ptr(kRt, kRtCapPtr), 16);
  }
  // Appends {%ecx, %edx} — the ALU operand-pair shape.
  void emit_capture_pair(std::uint32_t op, std::uint32_t idx) {
    e_.mov_rm64(Gp::rax, x::ptr(kRt, kRtCapPtr));
    e_.mov_mr(x::ptr(Gp::rax, 0), Gp::rcx);
    e_.mov_mr(x::ptr(Gp::rax, 4), Gp::rdx);
    emit_capture_tail(Gp::rax, op, idx);
  }
  // Appends a compile-time-constant pair (sethi/nop, CTI taken flags).
  void emit_capture_const(std::uint32_t a, std::uint32_t b, std::uint32_t op,
                          std::uint32_t idx) {
    e_.mov_rm64(Gp::rax, x::ptr(kRt, kRtCapPtr));
    e_.mov_mi(x::ptr(Gp::rax, 0), a);
    e_.mov_mi(x::ptr(Gp::rax, 4), b);
    emit_capture_tail(Gp::rax, op, idx);
  }
  // Appends {%ecx (ea), %eax (data)} — the load/store fast-path shape
  // (%rdx is the cursor because %rax/%ecx hold the pair).
  void emit_capture_mem(std::uint32_t op, std::uint32_t idx) {
    e_.mov_rm64(Gp::rdx, x::ptr(kRt, kRtCapPtr));
    e_.mov_mr(x::ptr(Gp::rdx, 0), Gp::rcx);
    e_.mov_mr(x::ptr(Gp::rdx, 4), Gp::rax);
    emit_capture_tail(Gp::rdx, op, idx);
  }
  void emit_capture_pre(const isa::DecodedInsn& d, std::uint32_t i);
  // Appends the CTI's {taken, 0} capture on an exit path.
  void emit_capture_cti(std::uint32_t taken) {
    if (!residual_at(b_.len - 1)) return;
    emit_capture_const(
        taken, 0,
        static_cast<std::uint32_t>(dcache_[word0_ + b_.len - 1].op),
        b_.len - 1);
  }

  void store_rd(const isa::DecodedInsn& d) {
    if (d.rd != 0) e_.mov_mr(reg_m(d.rd), Gp::rax);
  }
  // Flag materialization after an add/adc/sub/sbb on %eax: x86 SF/ZF/OF/CF
  // coincide with SPARC icc n/z/v/c for these ops (incl. the carry-in
  // forms), so four setcc writes produce the architectural bool bytes.
  void emit_arith_cc() {
    e_.setcc_m(Cc::kS, x::ptr(kCpu, kOffN));
    e_.setcc_m(Cc::kE, x::ptr(kCpu, kOffZ));
    e_.setcc_m(Cc::kO, x::ptr(kCpu, kOffV));
    e_.setcc_m(Cc::kB, x::ptr(kCpu, kOffC));
  }
  void emit_logic_cc() {  // n/z from the last ALU op, v = c = 0
    e_.setcc_m(Cc::kS, x::ptr(kCpu, kOffN));
    e_.setcc_m(Cc::kE, x::ptr(kCpu, kOffZ));
    e_.mov_mi8(x::ptr(kCpu, kOffV), 0);
    e_.mov_mi8(x::ptr(kCpu, kOffC), 0);
  }

  const Block& b_;
  const JitBlockMeta* meta_;
  bool counted_;
  bool cost_;
  bool inline_btc_;
  std::vector<bool> residual_;  // per-record residual flags (cost mode)
  const std::vector<isa::DecodedInsn>& dcache_;
  std::uint32_t word0_;
  std::uint32_t code_base_;
  std::uint32_t code_limit_;

  x::Emitter e_;
  x::Label bail_;
  x::Label fault_;
  std::vector<ColdCall> colds_;
  std::vector<JitExit> exits_;
  bool folds_delay_ = false;
  bool failed_ = false;
};

bool BlockCompiler::compile() {
  // FPU state lives only in CpuState::f with no template coverage; blocks
  // touching it run through exec_block instead (per-block kBlock fallback).
  for (const BlockOpCount& p : b_.profile) {
    const Op op = static_cast<Op>(p.op);
    if (isa::is_fpu(op) || op == Op::kLdf || op == Op::kLddf ||
        op == Op::kStf || op == Op::kStdf) {
      return false;
    }
  }
  if (cost_) {
    // Cost mode bakes BlockCost into the emitted code; the host guarantees
    // the profile is built (ensure_block_cost) before asking to compile.
    if (b_.cost_state != BlockCostState::kReady) return false;
    residual_.assign(b_.len, false);
    for (const ResidualRef& r : b_.cost.residuals) residual_[r.index] = true;
  }

  const std::uint32_t len = b_.len;
  // Prologue: budget check (bail leaves the budget untouched and
  // materializes pc/npc at the block entry — a patched chain arrives here
  // without going through any exit stub), then announce this block as the
  // running one and claim its retirement from the budget.
  e_.cmp_ri64(kBudget, static_cast<std::int32_t>(len));
  e_.jcc(Cc::kB, bail_);
  if (cost_ && !b_.cost.residuals.empty()) {
    // Residual-buffer capacity check: bail (no state change) when this
    // block's captures would not fit; the host drains after every enter, so
    // re-entry always finds room.
    e_.mov_rm64(Gp::rax, x::ptr(kRt, kRtCapPtr));
    e_.add_ri64(Gp::rax,
                static_cast<std::int32_t>(16 * b_.cost.residuals.size()));
    e_.cmp_rm64(Gp::rax, x::ptr(kRt, kRtCapEnd));
    e_.jcc(Cc::kA, bail_);
  }
  e_.mov_ri64(Gp::rax, reinterpret_cast<std::uint64_t>(meta_));
  e_.mov_mr64(x::ptr(kRt, kRtCurMeta), Gp::rax);
  e_.sub_ri64(kBudget, static_cast<std::int32_t>(len));

  const std::uint32_t body = b_.ends_with_cti ? len - 1 : len;
  for (std::uint32_t i = 0; i < body && !failed_; ++i) {
    emit_insn(dcache_[word0_ + i], i);
  }
  if (failed_) return false;
  if (b_.ends_with_cti) {
    emit_cti(dcache_[word0_ + len - 1]);
  } else {
    emit_static_exit(b_.start + 4 * len, len, -1);
  }
  if (failed_) return false;

  e_.bind(bail_);
  e_.mov_mi(x::ptr(kCpu, kOffPc), b_.start);
  e_.mov_mi(x::ptr(kCpu, kOffNpc), b_.start + 4);
  e_.ret();

  // Cold section: one helper trampoline per slow-path site. On success the
  // native trace RESUMES — matching the interpreter's stale-trace-in-flight
  // semantics even when the record just invalidated this very block.
  for (ColdCall& c : colds_) {
    e_.bind(c.slow);
    emit_helper_inline(c.idx);
    if (c.returns) {
      e_.jmp(c.resume);
    } else {
      e_.int3();  // helper is known to fault; jnz above always leaves
    }
  }
  e_.bind(fault_);
  e_.ret();
  return true;
}

void BlockCompiler::emit_helper_inline(std::uint32_t i) {
  e_.mov_rr64(Gp::rdi, kRt);
  e_.mov_ri(Gp::rsi, i);
  e_.mov_ri64(Gp::rax, reinterpret_cast<std::uint64_t>(&nfp_jit_exec_insn));
  e_.call_r(Gp::rax);
  e_.test_rr(Gp::rax, Gp::rax);
  e_.jcc(Cc::kNe, fault_);
}

void BlockCompiler::emit_ea(const isa::DecodedInsn& d) {
  e_.mov_rm(Gp::rcx, reg_m(d.rs1));  // 32-bit move zero-extends %rcx
  if (d.has_imm) {
    if (d.imm != 0) e_.add_ri(Gp::rcx, static_cast<std::uint32_t>(d.imm));
  } else {
    e_.add_rm(Gp::rcx, reg_m(d.rs2));
  }
}

void BlockCompiler::emit_counts(int extra_op) {
  if (counted_) {
    e_.mov_rm64(Gp::rax, x::ptr(kRt, kRtCounts));
    for (const BlockOpCount& p : b_.profile) {
      e_.add_mi64(x::ptr(Gp::rax, 8 * static_cast<std::int32_t>(p.op)),
                  static_cast<std::int32_t>(p.count));
    }
    if (extra_op >= 0) e_.add_mi64(x::ptr(Gp::rax, 8 * extra_op), 1);
  }
  if (cost_ && b_.cost.base_cycles != 0) {
    // Static cost retirement: one add of the block's residual-free cycle
    // base (residual ops contribute their cycles at drain-time replay).
    e_.mov_rm64(Gp::rax, x::ptr(kRt, kRtCostCycles));
    e_.add_mi64(x::ptr(Gp::rax, 0),
                static_cast<std::int32_t>(b_.cost.base_cycles));
  }
}

void BlockCompiler::emit_static_exit(std::uint32_t exit_pc,
                                     std::uint32_t retired, int extra_op,
                                     int cti_taken) {
  if (cti_taken >= 0) {
    emit_capture_cti(static_cast<std::uint32_t>(cti_taken));
  }
  e_.add_mi64(x::ptr(kCpu, kOffInstret), static_cast<std::int32_t>(retired));
  emit_counts(extra_op);
  JitExit exit;
  exit.exit_pc = exit_pc;
  exit.patch_off = e_.jmp_patchable();
  exit.stub_off = e_.offset();
  e_.mov_mi(x::ptr(kCpu, kOffPc), exit_pc);
  e_.mov_mi(x::ptr(kCpu, kOffNpc), exit_pc + 4);
  e_.ret();
  exits_.push_back(exit);
}

void BlockCompiler::emit_delayed_exit(std::uint32_t cti_pc,
                                      std::uint32_t target, bool fold,
                                      const isa::DecodedInsn* delay) {
  if (fold) {
    folds_delay_ = true;
    x::Label pending;
    e_.test_rr64(kBudget, kBudget);
    e_.jcc(Cc::kE, pending);
    e_.sub_ri64(kBudget, 1);
    emit_insn(*delay, b_.len);  // foldable ops never take slow paths
    emit_static_exit(target, b_.len + 1, static_cast<int>(delay->op));
    e_.bind(pending);
  }
  // Budget exhausted (or unfoldable delay, or cost mode): the interpreter's
  // post-CTI state, pc at the delay slot with npc redirected; the host
  // single-steps.
  emit_capture_cti(1);  // delayed exits are always taken paths
  e_.add_mi64(x::ptr(kCpu, kOffInstret), static_cast<std::int32_t>(b_.len));
  emit_counts(-1);
  e_.mov_mi(x::ptr(kCpu, kOffPc), cti_pc + 4);
  e_.mov_mi(x::ptr(kCpu, kOffNpc), target);
  e_.ret();
}

void BlockCompiler::emit_icc_test(std::uint8_t cond, x::Label& taken) {
  // Base condition from the icc bool bytes (cond & 7), negated forms jump
  // on the inverted test. Mirrors CpuState::eval_cond.
  switch (cond & 7) {
    case 1:  // e: z
      e_.movzx_rm8(Gp::rax, x::ptr(kCpu, kOffZ));
      break;
    case 2:  // le: z | (n ^ v)
      e_.movzx_rm8(Gp::rax, x::ptr(kCpu, kOffN));
      e_.xor_rm8(Gp::rax, x::ptr(kCpu, kOffV));
      e_.or_rm8(Gp::rax, x::ptr(kCpu, kOffZ));
      break;
    case 3:  // l: n ^ v
      e_.movzx_rm8(Gp::rax, x::ptr(kCpu, kOffN));
      e_.xor_rm8(Gp::rax, x::ptr(kCpu, kOffV));
      break;
    case 4:  // leu: c | z
      e_.movzx_rm8(Gp::rax, x::ptr(kCpu, kOffC));
      e_.or_rm8(Gp::rax, x::ptr(kCpu, kOffZ));
      break;
    case 5:  // cs: c
      e_.movzx_rm8(Gp::rax, x::ptr(kCpu, kOffC));
      break;
    case 6:  // neg: n
      e_.movzx_rm8(Gp::rax, x::ptr(kCpu, kOffN));
      break;
    default:  // vs: v
      e_.movzx_rm8(Gp::rax, x::ptr(kCpu, kOffV));
      break;
  }
  e_.test_rr(Gp::rax, Gp::rax);
  e_.jcc(cond < 8 ? Cc::kNe : Cc::kE, taken);
}

void BlockCompiler::emit_fcc_test(std::uint8_t cond, x::Label& taken) {
  // fcc is a 2-bit value; precompute the 4-bit truth mask of this condition
  // over all fcc values and test the bit at runtime.
  std::uint32_t mask = 0;
  CpuState probe;
  for (std::uint8_t fc = 0; fc < 4; ++fc) {
    probe.fcc = fc;
    if (probe.eval_fcond(static_cast<isa::FCond>(cond))) mask |= 1u << fc;
  }
  e_.movzx_rm8(Gp::rcx, x::ptr(kCpu, kOffFcc));
  e_.mov_ri(Gp::rax, mask);
  e_.bt_rr(Gp::rax, Gp::rcx);
  e_.jcc(Cc::kB, taken);
}

void BlockCompiler::emit_cti(const isa::DecodedInsn& d) {
  const std::uint32_t cti_pc = b_.start + 4 * (b_.len - 1);
  const std::uint32_t didx = word0_ + b_.len;
  const isa::DecodedInsn* delay =
      didx < dcache_.size() ? &dcache_[didx] : nullptr;
  // Cost mode never folds: the delay slot is outside the block's cost
  // profile, so it single-steps on the host like the interpreter's shape.
  const bool fold = !cost_ && delay != nullptr && delay_foldable(delay->op);

  switch (d.op) {
    case Op::kCall: {
      e_.mov_mi(reg_m(isa::kRegO7), cti_pc);
      emit_delayed_exit(cti_pc, cti_pc + static_cast<std::uint32_t>(d.imm),
                        fold, delay);
      return;
    }
    case Op::kBicc:
    case Op::kFbfcc: {
      const std::uint32_t target = cti_pc + static_cast<std::uint32_t>(d.imm);
      if (d.cond == 8) {  // always
        if (d.annul) {
          // Annulled delay: skip it (a taken branch for the cost model).
          emit_static_exit(target, b_.len, -1, /*cti_taken=*/1);
        } else {
          emit_delayed_exit(cti_pc, target, fold, delay);
        }
        return;
      }
      if (d.cond == 0) {  // never
        emit_static_exit(d.annul ? cti_pc + 8 : cti_pc + 4, b_.len, -1,
                         /*cti_taken=*/0);
        return;
      }
      x::Label taken;
      if (d.op == Op::kBicc) {
        emit_icc_test(d.cond, taken);
      } else {
        emit_fcc_test(d.cond, taken);
      }
      // Untaken falls through (annul skips the delay slot entirely).
      emit_static_exit(d.annul ? cti_pc + 8 : cti_pc + 4, b_.len, -1,
                       /*cti_taken=*/0);
      e_.bind(taken);
      emit_delayed_exit(cti_pc, target, fold, delay);
      return;
    }
    case Op::kJmpl:
      emit_jmpl(d, cti_pc, fold, delay);
      return;
    default:
      failed_ = true;
      return;
  }
}

void BlockCompiler::emit_jmpl(const isa::DecodedInsn& d, std::uint32_t cti_pc,
                              bool fold, const isa::DecodedInsn* delay) {
  // Target in %ecx. Misaligned targets fault through the helper (which runs
  // h_jmpl and throws before any state change, like the interpreter).
  e_.mov_rm(Gp::rcx, reg_m(d.rs1));
  if (d.has_imm) {
    if (d.imm != 0) e_.add_ri(Gp::rcx, static_cast<std::uint32_t>(d.imm));
  } else {
    e_.add_rm(Gp::rcx, reg_m(d.rs2));
  }
  ColdCall& c = new_cold(b_.len - 1, /*returns=*/false);
  e_.test_ri(Gp::rcx, 3);
  e_.jcc(Cc::kNe, c.slow);
  if (d.rd != 0) e_.mov_mi(reg_m(d.rd), cti_pc);
  // Stash npc = target before the folded delay (which may overwrite %ecx's
  // source register but never reads pc/npc).
  e_.mov_mr(x::ptr(kCpu, kOffNpc), Gp::rcx);
  if (fold) {
    folds_delay_ = true;
    x::Label pending;
    e_.test_rr64(kBudget, kBudget);
    e_.jcc(Cc::kE, pending);
    e_.sub_ri64(kBudget, 1);
    emit_insn(*delay, b_.len);
    e_.mov_rm(Gp::rcx, x::ptr(kCpu, kOffNpc));
    e_.mov_mr(x::ptr(kCpu, kOffPc), Gp::rcx);
    e_.add_ri(Gp::rcx, 4);
    e_.mov_mr(x::ptr(kCpu, kOffNpc), Gp::rcx);
    e_.add_mi64(x::ptr(kCpu, kOffInstret),
                static_cast<std::int32_t>(b_.len + 1));
    emit_counts(static_cast<int>(delay->op));
    // Register-indirect exit: never rel32-patchable, but with pc/npc fully
    // settled it can probe the inline branch-target cache — a tag hit jumps
    // straight into the cached successor's prologue instead of returning to
    // the host loop on every indirect call/return.
    if (inline_btc_) {
      x::Label miss;
      e_.mov_rm(Gp::rcx, x::ptr(kCpu, kOffPc));
      e_.mov_rr(Gp::rax, Gp::rcx);
      e_.shr_ri(Gp::rax, 2);
      e_.and_ri(Gp::rax, JitRuntime::kInlineBtcEntries - 1);
      e_.shl_ri(Gp::rax, 4);  // 16-byte slots; the Mem index has no scale
      e_.mov_rm64(Gp::rdx, x::ptr(kRt, kRtBtc));
      e_.cmp_rm(Gp::rcx, x::ptr_idx(Gp::rdx, Gp::rax));
      e_.jcc(Cc::kNe, miss);
      e_.add_mi64(x::ptr(kRt, kRtBtcHits), 1);
      e_.jmp_m(x::ptr_idx(Gp::rdx, Gp::rax, 8));
      e_.bind(miss);
      e_.ret();
    } else {
      e_.ret();
    }
    e_.bind(pending);
  }
  emit_capture_cti(1);  // jmpl is unconditionally taken
  e_.add_mi64(x::ptr(kCpu, kOffInstret), static_cast<std::int32_t>(b_.len));
  emit_counts(-1);
  e_.mov_mi(x::ptr(kCpu, kOffPc), cti_pc + 4);
  e_.ret();  // npc already holds the target
}

void BlockCompiler::emit_load(const isa::DecodedInsn& d, std::uint32_t i) {
  emit_ea(d);  // %ecx = ea
  ColdCall& c = new_cold(i);
  std::uint32_t align = 0;
  switch (d.op) {
    case Op::kLd: align = 3; break;
    case Op::kLduh: case Op::kLdsh: align = 1; break;
    case Op::kLdd: align = 7; break;
    default: break;  // byte loads
  }
  if (align != 0) {
    e_.test_ri(Gp::rcx, align);
    e_.jcc(Cc::kNe, c.slow);
  }
  // RAM range check; off-RAM (MMIO word loads, bad addresses) → helper.
  e_.lea_r32(Gp::rdx, x::ptr(Gp::rcx, -static_cast<std::int32_t>(kRamBase)));
  e_.cmp_ri(Gp::rdx, kRamSize);
  e_.jcc(Cc::kAe, c.slow);
  const x::Mem m = x::ptr_idx(kRam, Gp::rcx);
  switch (d.op) {
    case Op::kLd:
      e_.mov_rm(Gp::rax, m);
      e_.bswap_r(Gp::rax);
      store_rd(d);
      break;
    case Op::kLdub:
      e_.movzx_rm8(Gp::rax, m);
      store_rd(d);
      break;
    case Op::kLdsb:
      e_.movsx_rm8(Gp::rax, m);
      store_rd(d);
      break;
    case Op::kLduh:
      e_.movzx_rm16(Gp::rax, m);
      e_.ror16_ri(Gp::rax, 8);  // halfword byte swap
      store_rd(d);
      break;
    case Op::kLdsh:
      e_.movzx_rm16(Gp::rax, m);
      e_.ror16_ri(Gp::rax, 8);
      e_.movsx_rr16(Gp::rax, Gp::rax);
      store_rd(d);
      break;
    default: {  // kLdd, even rd (odd rd routed to the helper by the caller)
      e_.mov_rm(Gp::rax, m);
      e_.bswap_r(Gp::rax);
      if (d.rd != 0) e_.mov_mr(reg_m(d.rd), Gp::rax);  // rd 0 discards (g0)
      e_.mov_rm(Gp::rax, x::ptr_idx(kRam, Gp::rcx, 4));
      e_.bswap_r(Gp::rax);
      e_.mov_mr(reg_m(d.rd + 1u), Gp::rax);
      break;
    }
  }
  // Cost capture {ea, data}: %ecx still holds ea, %eax the (last) loaded
  // word — morph-exact. The helper path resumes past this (it appends via
  // append_helper_capture instead).
  if (residual_at(i)) emit_capture_mem(static_cast<std::uint32_t>(d.op), i);
  e_.bind(c.resume);
}

void BlockCompiler::emit_store(const isa::DecodedInsn& d, std::uint32_t i) {
  emit_ea(d);  // %ecx = ea
  ColdCall& c = new_cold(i);
  std::uint32_t width = 4;
  switch (d.op) {
    case Op::kStb: width = 1; break;
    case Op::kSth: width = 2; break;
    case Op::kStd: width = 8; break;
    default: break;
  }
  if (width > 1) {
    e_.test_ri(Gp::rcx, width - 1);
    e_.jcc(Cc::kNe, c.slow);
  }
  e_.lea_r32(Gp::rdx, x::ptr(Gp::rcx, -static_cast<std::int32_t>(kRamBase)));
  e_.cmp_ri(Gp::rdx, kRamSize);
  e_.jcc(Cc::kAe, c.slow);
  // Self-modifying code guard: any store intersecting the cached code image
  // [code_base, code_base + limit) goes through the helper, whose h_store
  // invalidates overlapping blocks exactly like the interpreter.
  // Intersection over [ea, ea + width): ea - (code_base - (width-1)) <
  // limit + (width-1), unsigned.
  e_.lea_r32(Gp::rax,
             x::ptr(Gp::rcx,
                    -static_cast<std::int32_t>(code_base_ - (width - 1))));
  e_.cmp_ri(Gp::rax, code_limit_ + (width - 1));
  e_.jcc(Cc::kB, c.slow);
  const x::Mem m = x::ptr_idx(kRam, Gp::rcx);
  switch (d.op) {
    case Op::kSt:
      e_.mov_rm(Gp::rax, reg_m(d.rd));
      e_.bswap_r(Gp::rax);
      e_.mov_mr(m, Gp::rax);
      break;
    case Op::kStb:
      e_.mov_rm(Gp::rax, reg_m(d.rd));
      e_.mov_mr8(m, Gp::rax);
      break;
    case Op::kSth:
      e_.mov_rm(Gp::rax, reg_m(d.rd));
      e_.ror16_ri(Gp::rax, 8);
      e_.mov_mr16(m, Gp::rax);
      break;
    default:  // kStd, even rd
      e_.mov_rm(Gp::rax, reg_m(d.rd));
      e_.bswap_r(Gp::rax);
      e_.mov_mr(m, Gp::rax);
      e_.mov_rm(Gp::rax, reg_m(d.rd + 1u));
      e_.bswap_r(Gp::rax);
      e_.mov_mr(x::ptr_idx(kRam, Gp::rcx, 4), Gp::rax);
      break;
  }
  // Dirty-page flag, exactly like Bus::touch: aligned accesses never
  // straddle a 4 KiB granule, so one byte suffices. %edx still holds
  // ea - kRamBase from the range check.
  e_.shr_ri(Gp::rdx, 12);
  e_.mov_rm64(Gp::rax, x::ptr(kRt, kRtTouched));
  e_.mov_mi8(x::ptr_idx(Gp::rax, Gp::rdx), 1);
  // Cost capture {ea, masked data}: %ecx still holds ea; reload the store
  // data and mask it to the access width (h_store's capture shape, with
  // std capturing the second word).
  if (residual_at(i)) {
    e_.mov_rm(Gp::rax, reg_m(d.op == Op::kStd ? d.rd + 1u : d.rd));
    if (d.op == Op::kStb) e_.and_ri(Gp::rax, 0xFF);
    if (d.op == Op::kSth) e_.and_ri(Gp::rax, 0xFFFF);
    emit_capture_mem(static_cast<std::uint32_t>(d.op), i);
  }
  e_.bind(c.resume);
}

// Cost capture for the statically non-faulting ALU class (exactly the
// delay-foldable set): the operand pair as the morph capture handlers see
// it, pre-writeback (see block_cache.cpp). Loads/stores capture at the end
// of their fast path; helper-routed records via append_helper_capture; the
// CTI at its exits.
void BlockCompiler::emit_capture_pre(const isa::DecodedInsn& d,
                                     std::uint32_t i) {
  switch (d.op) {
    case Op::kNop:
      e_.xor_rr(Gp::rcx, Gp::rcx);
      e_.xor_rr(Gp::rdx, Gp::rdx);
      break;
    case Op::kSethi:
      e_.xor_rr(Gp::rcx, Gp::rcx);
      e_.mov_ri(Gp::rdx, static_cast<std::uint32_t>(d.imm));
      break;
    case Op::kRdy:
      e_.mov_rm(Gp::rcx, x::ptr(kCpu, kOffY));
      e_.xor_rr(Gp::rdx, Gp::rdx);
      break;
    case Op::kSll:
    case Op::kSrl:
    case Op::kSra:  // {a, shift count mod 32}
      e_.mov_rm(Gp::rcx, reg_m(d.rs1));
      if (d.has_imm) {
        e_.mov_ri(Gp::rdx, static_cast<std::uint32_t>(d.imm) & 31);
      } else {
        e_.mov_rm(Gp::rdx, reg_m(d.rs2));
        e_.and_ri(Gp::rdx, 31);
      }
      break;
    default:  // add/sub/logic/mul/wry/save/restore: {r[rs1], op2}
      e_.mov_rm(Gp::rcx, reg_m(d.rs1));
      if (d.has_imm) {
        e_.mov_ri(Gp::rdx, static_cast<std::uint32_t>(d.imm));
      } else {
        e_.mov_rm(Gp::rdx, reg_m(d.rs2));
      }
      break;
  }
  emit_capture_pair(static_cast<std::uint32_t>(d.op), i);
}

void BlockCompiler::emit_insn(const isa::DecodedInsn& d, std::uint32_t i) {
  if (residual_at(i) && delay_foldable(d.op)) emit_capture_pre(d, i);
  switch (d.op) {
    case Op::kNop:
      return;
    case Op::kSethi:
      if (d.rd != 0) e_.mov_mi(reg_m(d.rd), static_cast<std::uint32_t>(d.imm));
      return;

    case Op::kAdd:
    case Op::kSave:      // flat register model: plain add
    case Op::kRestore:
    case Op::kAddcc:
      e_.mov_rm(Gp::rax, reg_m(d.rs1));
      if (d.has_imm) {
        e_.add_ri(Gp::rax, static_cast<std::uint32_t>(d.imm));
      } else {
        e_.add_rm(Gp::rax, reg_m(d.rs2));
      }
      if (d.op == Op::kAddcc) emit_arith_cc();
      store_rd(d);
      return;

    case Op::kAddx:
    case Op::kAddxcc:
      e_.movzx_rm8(Gp::rcx, x::ptr(kCpu, kOffC));
      e_.bt_ri(Gp::rcx, 0);  // CF = icc_c (moves below preserve flags)
      e_.mov_rm(Gp::rax, reg_m(d.rs1));
      if (d.has_imm) {
        e_.adc_ri(Gp::rax, static_cast<std::uint32_t>(d.imm));
      } else {
        e_.mov_rm(Gp::rdx, reg_m(d.rs2));
        e_.adc_rr(Gp::rax, Gp::rdx);
      }
      if (d.op == Op::kAddxcc) emit_arith_cc();
      store_rd(d);
      return;

    case Op::kSub:
    case Op::kSubcc:
      e_.mov_rm(Gp::rax, reg_m(d.rs1));
      if (d.has_imm) {
        e_.sub_ri(Gp::rax, static_cast<std::uint32_t>(d.imm));
      } else {
        e_.mov_rm(Gp::rcx, reg_m(d.rs2));
        e_.sub_rr(Gp::rax, Gp::rcx);
      }
      if (d.op == Op::kSubcc) emit_arith_cc();
      store_rd(d);
      return;

    case Op::kSubx:
    case Op::kSubxcc:
      e_.movzx_rm8(Gp::rcx, x::ptr(kCpu, kOffC));
      e_.bt_ri(Gp::rcx, 0);  // CF = borrow-in
      e_.mov_rm(Gp::rax, reg_m(d.rs1));
      if (d.has_imm) {
        e_.sbb_ri(Gp::rax, static_cast<std::uint32_t>(d.imm));
      } else {
        e_.mov_rm(Gp::rdx, reg_m(d.rs2));
        e_.sbb_rr(Gp::rax, Gp::rdx);
      }
      if (d.op == Op::kSubxcc) emit_arith_cc();
      store_rd(d);
      return;

    case Op::kAnd: case Op::kAndcc:
    case Op::kAndn: case Op::kAndncc:
    case Op::kOr: case Op::kOrcc:
    case Op::kOrn: case Op::kOrncc:
    case Op::kXor: case Op::kXorcc:
    case Op::kXnor: case Op::kXnorcc: {
      const bool inverted = d.op == Op::kAndn || d.op == Op::kAndncc ||
                            d.op == Op::kOrn || d.op == Op::kOrncc ||
                            d.op == Op::kXnor || d.op == Op::kXnorcc;
      const bool cc = d.op == Op::kAndcc || d.op == Op::kAndncc ||
                      d.op == Op::kOrcc || d.op == Op::kOrncc ||
                      d.op == Op::kXorcc || d.op == Op::kXnorcc;
      e_.mov_rm(Gp::rax, reg_m(d.rs1));
      if (d.has_imm) {
        // Fold the complement at compile time (a & ~b, a | ~b, a ^ ~b —
        // xnor == xor with the inverted mask); flags come from the final op.
        const std::uint32_t imm = inverted
                                      ? ~static_cast<std::uint32_t>(d.imm)
                                      : static_cast<std::uint32_t>(d.imm);
        switch (d.op) {
          case Op::kAnd: case Op::kAndcc: case Op::kAndn: case Op::kAndncc:
            e_.and_ri(Gp::rax, imm);
            break;
          case Op::kOr: case Op::kOrcc: case Op::kOrn: case Op::kOrncc:
            e_.or_ri(Gp::rax, imm);
            break;
          default:
            e_.xor_ri(Gp::rax, imm);
            break;
        }
      } else {
        e_.mov_rm(Gp::rcx, reg_m(d.rs2));
        if (inverted) e_.not_r(Gp::rcx);
        switch (d.op) {
          case Op::kAnd: case Op::kAndcc: case Op::kAndn: case Op::kAndncc:
            e_.and_rr(Gp::rax, Gp::rcx);
            break;
          case Op::kOr: case Op::kOrcc: case Op::kOrn: case Op::kOrncc:
            e_.or_rr(Gp::rax, Gp::rcx);
            break;
          default:
            e_.xor_rr(Gp::rax, Gp::rcx);
            break;
        }
      }
      if (cc) emit_logic_cc();
      store_rd(d);
      return;
    }

    case Op::kSll:
    case Op::kSrl:
    case Op::kSra:
      if (d.has_imm) {
        e_.mov_rm(Gp::rax, reg_m(d.rs1));
        const auto count =
            static_cast<std::uint8_t>(static_cast<std::uint32_t>(d.imm) & 31);
        if (d.op == Op::kSll) e_.shl_ri(Gp::rax, count);
        else if (d.op == Op::kSrl) e_.shr_ri(Gp::rax, count);
        else e_.sar_ri(Gp::rax, count);
      } else {
        e_.mov_rm(Gp::rcx, reg_m(d.rs2));  // hardware masks %cl to 5 bits
        e_.mov_rm(Gp::rax, reg_m(d.rs1));
        if (d.op == Op::kSll) e_.shl_cl(Gp::rax);
        else if (d.op == Op::kSrl) e_.shr_cl(Gp::rax);
        else e_.sar_cl(Gp::rax);
      }
      store_rd(d);
      return;

    case Op::kUmul:
    case Op::kUmulcc:
    case Op::kSmul:
    case Op::kSmulcc:
      e_.mov_rm(Gp::rax, reg_m(d.rs1));
      if (d.has_imm) {
        e_.mov_ri(Gp::rcx, static_cast<std::uint32_t>(d.imm));
      } else {
        e_.mov_rm(Gp::rcx, reg_m(d.rs2));
      }
      if (d.op == Op::kUmul || d.op == Op::kUmulcc) {
        e_.mul_r(Gp::rcx);
      } else {
        e_.imul_r(Gp::rcx);
      }
      e_.mov_mr(x::ptr(kCpu, kOffY), Gp::rdx);  // y = high word
      if (d.op == Op::kUmulcc || d.op == Op::kSmulcc) {
        e_.test_rr(Gp::rax, Gp::rax);
        emit_logic_cc();
      }
      store_rd(d);
      return;

    case Op::kRdy:
      e_.mov_rm(Gp::rax, x::ptr(kCpu, kOffY));
      store_rd(d);
      return;

    case Op::kWry:
      e_.mov_rm(Gp::rax, reg_m(d.rs1));
      if (d.has_imm) {
        if (d.imm != 0) e_.xor_ri(Gp::rax, static_cast<std::uint32_t>(d.imm));
      } else {
        e_.mov_rm(Gp::rcx, reg_m(d.rs2));
        e_.xor_rr(Gp::rax, Gp::rcx);
      }
      e_.mov_mr(x::ptr(kCpu, kOffY), Gp::rax);
      return;

    case Op::kUdiv:
    case Op::kUdivcc:
    case Op::kSdiv:
    case Op::kSdivcc:
      // Divides carry y:rs1 dividends, saturation, overflow cc and a
      // div-by-zero fault — not worth templating; always helper.
      emit_helper_inline(i);
      return;

    case Op::kLd: case Op::kLdub: case Op::kLdsb:
    case Op::kLduh: case Op::kLdsh:
      emit_load(d, i);
      return;
    case Op::kLdd:
      if (d.rd & 1) {
        emit_helper_inline(i);  // faults (odd rd), interpreter-identical
      } else {
        emit_load(d, i);
      }
      return;

    case Op::kSt: case Op::kStb: case Op::kSth:
      emit_store(d, i);
      return;
    case Op::kStd:
      if (d.rd & 1) {
        emit_helper_inline(i);
      } else {
        emit_store(d, i);
      }
      return;

    default:
      // CTIs mid-block, Ticc, FPU, invalid — none can appear in a morphed
      // block body; refuse rather than miscompile if that ever changes.
      failed_ = true;
      return;
  }
}

}  // namespace

// ---- arena + thunk ---------------------------------------------------------

struct JitRuntime::Impl {
  static constexpr std::size_t kArenaBytes = std::size_t{16} << 20;
  static constexpr std::uint32_t kFull = 0xFFFFFFFFu;

  std::uint8_t* base = nullptr;
  std::size_t size = 0;
  std::size_t used = 0;
  std::uint32_t thunk_off = 0;
  std::size_t code_start = 0;  // first byte after the thunk

  ~Impl() {
    if (base != nullptr) ::munmap(base, size);
  }

  bool map() {
    void* p = ::mmap(nullptr, kArenaBytes, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p == MAP_FAILED) return false;
    base = static_cast<std::uint8_t*>(p);
    size = kArenaBytes;
    return true;
  }

  void make_rw() { ::mprotect(base, size, PROT_READ | PROT_WRITE); }
  void make_rx() { ::mprotect(base, size, PROT_READ | PROT_EXEC); }

  // Appends emitted bytes (16-aligned) and restores RX. Returns the arena
  // offset, or kFull when exhausted.
  std::uint32_t commit(const asmkit::x64::Emitter& e) {
    const std::size_t at = (used + 15) & ~std::size_t{15};
    if (at + e.size() > size) return kFull;
    make_rw();
    std::memcpy(base + at, e.data(), e.size());
    make_rx();
    used = at + e.size();
    return static_cast<std::uint32_t>(at);
  }

  // Rewrites one rel32 field; caller brackets with make_rw()/make_rx().
  void write_rel32(std::uint32_t off, std::int32_t value) {
    std::memcpy(base + off, &value, 4);
  }
};

JitRuntime::JitRuntime(Bus& bus, BlockCache& cache)
    : bus_(bus), cache_(cache), impl_(std::make_unique<Impl>()) {
  if (!impl_->map()) {
    impl_.reset();
    return;
  }
  rt_.ram_bias = reinterpret_cast<std::uint8_t*>(
      reinterpret_cast<std::uintptr_t>(bus_.ram_data()) - kRamBase);
  rt_.touched = bus_.touched_data();
  rt_.fault_idx = kNoFault;
  rt_.owner = this;
  btc_.assign(kInlineBtcEntries, JitBtcSlot{});
  rt_.btc = btc_.data();

  // Entry thunk: uint64_t thunk(JitRt* rdi, const void* rsi, uint64_t rdx).
  // Loads the pinned registers, calls the block entry, returns the
  // remaining budget. Six pushes keep %rsp ≡ 0 (mod 16) at block entry.
  asmkit::x64::Emitter e;
  e.push_r(Gp::rbx);
  e.push_r(Gp::rbp);
  e.push_r(Gp::r12);
  e.push_r(Gp::r13);
  e.push_r(Gp::r14);
  e.push_r(Gp::r15);
  e.mov_rr64(kRt, Gp::rdi);
  e.mov_rm64(kCpu, x::ptr(kRt, 0));
  e.mov_rm64(kRam, x::ptr(kRt, 8));
  e.mov_rr64(kBudget, Gp::rdx);
  e.call_r(Gp::rsi);
  e.mov_rr64(Gp::rax, kBudget);
  e.pop_r(Gp::r15);
  e.pop_r(Gp::r14);
  e.pop_r(Gp::r13);
  e.pop_r(Gp::r12);
  e.pop_r(Gp::rbp);
  e.pop_r(Gp::rbx);
  e.ret();
  impl_->thunk_off = impl_->commit(e);
  impl_->code_start = impl_->used;
}

JitRuntime::~JitRuntime() = default;

bool JitRuntime::ok() const { return impl_ != nullptr; }

void JitRuntime::configure(CpuState* cpu, std::uint64_t* counts) {
  // The counts adds are baked per block ("emit or not"); the pointer itself
  // is loaded from JitRt at each exit, so only a null ↔ non-null change —
  // or a flip out of cost mode — invalidates compiled code.
  if (!metas_.empty() &&
      (cost_mode_ || (counts == nullptr) != (rt_.counts == nullptr))) {
    reset_code();
  }
  cost_mode_ = false;
  rt_.cpu = cpu;
  rt_.counts = counts;
  rt_.cost_cycles = nullptr;
  rt_.cap_ptr = nullptr;
  rt_.cap_end = nullptr;
}

void JitRuntime::configure_cost(CpuState* cpu, std::uint64_t* counts,
                                std::uint64_t* cycles) {
  // Pointer values are loaded from JitRt at runtime, so rebinding to a
  // fresh hooks instance keeps compiled code valid; only the functional →
  // cost flip (captures and cycle adds baked per block) discards it.
  if (!metas_.empty() && !cost_mode_) reset_code();
  cost_mode_ = true;
  rt_.cpu = cpu;
  rt_.counts = counts;
  rt_.cost_cycles = cycles;
  if (capture_.empty()) capture_.resize(kCaptureSlots);
  rt_.cap_ptr = capture_.data();
  rt_.cap_end = capture_.data() + capture_.size();
}

std::span<const JitCapture> JitRuntime::drain_captures() {
  if (capture_.empty()) return {};
  const auto n = static_cast<std::size_t>(rt_.cap_ptr - capture_.data());
  rt_.cap_ptr = capture_.data();
  return {capture_.data(), n};
}

void JitRuntime::append_helper_capture(const Block& b, std::uint32_t idx) {
  // Forward the handler's scratch capture for residual-flagged records only
  // (the block prologue reserved buffer space for exactly those).
  const auto& rs = b.cost.residuals;
  const auto it = std::lower_bound(
      rs.begin(), rs.end(), idx,
      [](const ResidualRef& r, std::uint32_t i) { return r.index < i; });
  if (it == rs.end() || it->index != idx) return;
  *rt_.cap_ptr++ = JitCapture{helper_capture_[idx].a, helper_capture_[idx].b,
                              static_cast<std::uint32_t>(it->op), idx};
}

void JitRuntime::btc_insert(std::uint32_t pc, Block& to) {
  if (!g_jit_inline_btc || to.jit_state != Block::JitState::kCompiled ||
      to.jit_meta->dead) {
    return;
  }
  JitBtcSlot& s = btc_[(pc >> 2) & (kInlineBtcEntries - 1)];
  s.tag = pc;
  s.native =
      reinterpret_cast<std::uint64_t>(impl_->base) + to.jit_meta->entry_off;
  ++stats_.btc_inserts;
}

void JitRuntime::reset_code() {
  for (const auto& m : metas_) {
    if (m->dead) continue;  // its Block may already be freed
    m->block->jit_state = Block::JitState::kNone;
    m->block->jit_meta = nullptr;
    m->block->jit_folds_delay = false;
  }
  metas_.clear();
  impl_->used = impl_->code_start;
  rt_.cur_meta = nullptr;
  rt_.fault_idx = kNoFault;
  for (JitBtcSlot& s : btc_) s = JitBtcSlot{};  // arena offsets now invalid
}

Block::JitState JitRuntime::ensure_compiled(Block& b) {
  if (b.jit_state != Block::JitState::kNone) return b.jit_state;
  auto meta = std::make_unique<JitBlockMeta>();
  meta->block = &b;
  meta->start = b.start;
  meta->len = b.len;
  BlockCompiler comp(cache_, b, meta.get(), rt_.counts != nullptr, cost_mode_,
                     !cost_mode_ && g_jit_inline_btc);
  std::uint32_t off = Impl::kFull;
  if (comp.compile()) off = impl_->commit(comp.emitter());
  if (off == Impl::kFull) {  // untemplatable block or arena exhausted
    ++stats_.blocks_rejected;
    b.jit_state = Block::JitState::kRejected;
    return b.jit_state;
  }
  meta->entry_off = off;
  meta->exits = comp.take_exits();
  for (JitExit& exit : meta->exits) {
    exit.patch_off += off;
    exit.stub_off += off;
  }
  b.jit_folds_delay = comp.folds_delay();
  b.jit_meta = meta.get();
  b.jit_state = Block::JitState::kCompiled;
  ++stats_.blocks_compiled;
  stats_.code_bytes += comp.emitter().size();
  metas_.push_back(std::move(meta));
  return b.jit_state;
}

std::uint64_t JitRuntime::enter(Block& b, std::uint64_t budget) {
  ++stats_.entries;
  rt_.fault_idx = kNoFault;
  pending_ = nullptr;
  using ThunkFn = std::uint64_t (*)(JitRt*, const void*, std::uint64_t);
  const auto fn = reinterpret_cast<ThunkFn>(impl_->base + impl_->thunk_off);
  return fn(&rt_, impl_->base + b.jit_meta->entry_off, budget);
}

std::pair<const JitBlockMeta*, std::uint32_t> JitRuntime::take_fault() {
  const auto* meta = static_cast<const JitBlockMeta*>(rt_.cur_meta);
  const std::uint32_t idx = rt_.fault_idx;
  rt_.fault_idx = kNoFault;
  return {meta, idx};
}

Block* JitRuntime::last_block() const {
  const auto* meta = static_cast<const JitBlockMeta*>(rt_.cur_meta);
  if (meta == nullptr || meta->dead) return nullptr;
  return meta->block;
}

void JitRuntime::patch_transition(JitBlockMeta& from, std::uint32_t pc,
                                  Block& to) {
  if (from.dead || to.jit_state != Block::JitState::kCompiled) return;
  JitBlockMeta* tm = to.jit_meta;
  for (std::uint32_t i = 0; i < from.exits.size(); ++i) {
    JitExit& exit = from.exits[i];
    if (exit.exit_pc != pc || exit.patched_to != nullptr) continue;
    impl_->make_rw();
    impl_->write_rel32(exit.patch_off,
                       static_cast<std::int32_t>(tm->entry_off) -
                           static_cast<std::int32_t>(exit.patch_off + 4));
    impl_->make_rx();
    exit.patched_to = &to;
    tm->incoming.emplace_back(&from, i);
    ++stats_.patches;
    return;
  }
}

void JitRuntime::on_block_death(Block& b) {
  JitBlockMeta* m = b.jit_meta;
  if (m == nullptr || m->dead) return;
  m->dead = true;
  impl_->make_rw();
  // Withdraw every patched jump INTO the dying code: a live predecessor must
  // fall back to its exit stub (and thence the host) instead of entering a
  // stale trace.
  for (const auto& [src, idx] : m->incoming) {
    JitExit& exit = src->exits[idx];
    impl_->write_rel32(exit.patch_off,
                       static_cast<std::int32_t>(exit.stub_off) -
                           static_cast<std::int32_t>(exit.patch_off + 4));
    exit.patched_to = nullptr;
    ++stats_.unpatches;
  }
  m->incoming.clear();
  // And every patched jump OUT of it: the dying block may still be in
  // flight (stale-trace semantics), and its successors may have just died
  // in the same invalidation — it must return to the host at its exit, like
  // the interpreter falling back to lookup() on a severed chain.
  for (std::uint32_t i = 0; i < m->exits.size(); ++i) {
    JitExit& exit = m->exits[i];
    if (exit.patched_to == nullptr) continue;
    impl_->write_rel32(exit.patch_off,
                       static_cast<std::int32_t>(exit.stub_off) -
                           static_cast<std::int32_t>(exit.patch_off + 4));
    JitBlockMeta* tm = exit.patched_to->jit_meta;
    for (std::size_t j = 0; j < tm->incoming.size(); ++j) {
      if (tm->incoming[j].first == m && tm->incoming[j].second == i) {
        tm->incoming.erase(tm->incoming.begin() +
                           static_cast<std::ptrdiff_t>(j));
        break;
      }
    }
    exit.patched_to = nullptr;
    ++stats_.unpatches;
  }
  impl_->make_rx();
  // Withdraw inline-BTC entries targeting the dying code (the table lives
  // in plain heap memory; no protection bracket needed).
  const std::uint64_t dead_entry =
      reinterpret_cast<std::uint64_t>(impl_->base) + m->entry_off;
  for (JitBtcSlot& s : btc_) {
    if (s.native == dead_entry) s = JitBtcSlot{};
  }
}

#endif  // NFP_JIT_ENABLED

}  // namespace nfp::sim
