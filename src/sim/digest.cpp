#include "sim/digest.h"

namespace nfp::sim {

std::uint64_t digest_cpu(const CpuState& st) {
  // Serialise into a flat buffer so padding bytes never leak into the hash.
  std::uint8_t buf[32 * 4 + 32 * 4 + 4 * 4 + 8 + 16];
  std::size_t n = 0;
  const auto put32 = [&](std::uint32_t v) {
    buf[n++] = static_cast<std::uint8_t>(v >> 24);
    buf[n++] = static_cast<std::uint8_t>(v >> 16);
    buf[n++] = static_cast<std::uint8_t>(v >> 8);
    buf[n++] = static_cast<std::uint8_t>(v);
  };
  for (const std::uint32_t r : st.r) put32(r);
  for (const std::uint32_t f : st.f) put32(f);
  put32(st.pc);
  put32(st.npc);
  put32(st.y);
  put32(static_cast<std::uint32_t>(st.icc_n) << 3 |
        static_cast<std::uint32_t>(st.icc_z) << 2 |
        static_cast<std::uint32_t>(st.icc_v) << 1 |
        static_cast<std::uint32_t>(st.icc_c));
  put32(st.fcc);
  put32(static_cast<std::uint32_t>(st.instret >> 32));
  put32(static_cast<std::uint32_t>(st.instret));
  put32(st.halted ? 1u : 0u);
  put32(st.exit_code);
  return fnv1a64(buf, n);
}

std::uint64_t digest_dirty_ram(const Bus& bus) {
  const std::vector<std::uint8_t>& touched = bus.touched_pages();
  const std::uint8_t* ram = bus.ram_data();
  const std::size_t page_bytes = bus.page_size();
  std::uint64_t hash = kFnvOffset;
  for (std::size_t page = 0; page < touched.size(); ++page) {
    if (!touched[page]) continue;
    const std::uint32_t tag[1] = {static_cast<std::uint32_t>(page)};
    hash = fnv1a64(tag, sizeof tag, hash);
    hash = fnv1a64(ram + page * page_bytes, page_bytes, hash);
  }
  return hash;
}

}  // namespace nfp::sim
