// Superblock morph cache (paper Fig. 2/3, OVPsim-style code morphing).
//
// The executor's single-step path pays a decode-cache bounds check, a large
// op switch, and a retire hook per retired instruction. Programs spend almost
// all of their time re-executing the same straight-line runs, so this cache
// lazily discovers basic blocks (maximal runs of non-CTI instructions inside
// the predecoded image, plus the terminating branch/call/jump when it has a
// morphable form), "morphs" each one once into a compact trace of
// pre-resolved handler records — function-pointer dispatch instead of the op
// switch, operand-2 immediates pre-materialized, odd-rd checks hoisted to
// morph time — and lets the executor run whole blocks per dispatch with a
// single entry check. Each block also carries its static per-op retire
// profile so hooks without per-instruction detail (functional sim, counting
// ISS) retire the block with one vector-add.
//
// Chaining: most blocks transfer to the same one or two successors every
// time, so each block memoizes up to two resolved exit edges (exit pc ->
// successor block) the first time they resolve; the dispatch loop follows a
// matching link straight into the next trace without re-entering lookup().
// Register-indirect exits (jmpl: returns, function pointers) have unbounded
// targets instead, so they go through a small direct-mapped branch-target
// cache (pc -> Block*). Both are pure lookup memos — correctness only
// requires invalidation to clear them, which flush does from both sides via
// per-block back-references (see invalidate()).
//
// Invalidation: programs are loaded read-only into RAM, but a store that
// lands inside the cached code range re-decodes the overwritten words and
// flushes every block overlapping them (taking effect at the next block
// entry; the remainder of a block already in flight completes from its
// morphed trace, and chain links into or out of flushed blocks are severed
// immediately so a chain in flight falls back to lookup()).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "isa/decode.h"
#include "sim/bus.h"
#include "sim/cpu_state.h"
#include "sim/hooks.h"

namespace nfp::sim {

class BlockCache;
class JitRuntime;
struct JitBlockMeta;
struct MorphInsn;

// Execution context shared by all handler records of one block dispatch.
// `base_pc`/`base` let fault paths reconstruct the architectural pc of the
// offending record without any per-instruction bookkeeping.
struct MorphCtx {
  CpuState& st;
  Bus& bus;
  BlockCache& cache;
  std::uint32_t base_pc;
  const MorphInsn* base;
  // instret at block entry: the dispatch loop batches instret updates (one
  // add at block exit), so handlers whose effects can observe the counter
  // (MMIO word loads hitting the timer/instret registers) must restore the
  // exact architectural value first via sync_instret().
  std::uint64_t entry_instret;
  // Per-instruction operand capture buffer (kBlockCost dispatch): the
  // capture variants of the handlers write record i's operands to cap[i].
  // Null for hooks that never replay per-op residuals.
  CapturedOp* cap = nullptr;

  std::uint32_t pc_of(const MorphInsn& m) const;
  void sync_instret(const MorphInsn& m) const;
};

using MorphFn = void (*)(const MorphInsn&, MorphCtx&);

// One morphed instruction: 16 bytes, pre-resolved at morph time.
struct MorphInsn {
  MorphFn fn;
  std::uint8_t op;   // isa::Op, for prefix-retire on faults and diagnostics
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::uint32_t op2 = 0;  // pre-materialized immediate (imm forms only)
};

inline std::uint32_t MorphCtx::pc_of(const MorphInsn& m) const {
  return base_pc + 4 * static_cast<std::uint32_t>(&m - base);
}

inline void MorphCtx::sync_instret(const MorphInsn& m) const {
  st.instret = entry_instret + static_cast<std::uint64_t>(&m - base);
}

struct Block;

// One memoized exit edge: the pc execution actually arrived at after this
// block (and its delay slot, if any) plus the block entered there. Purely a
// cached BlockCache::lookup() result; target == nullptr marks a free slot.
struct ChainLink {
  std::uint32_t pc = 0;
  Block* target = nullptr;
};

struct Block {
  std::uint32_t start = 0;  // entry pc
  std::uint32_t len = 0;    // instructions in the block (>= 1)
  // The last record is a morphed control transfer (bicc/fbfcc/call/jmpl)
  // that writes pc/npc itself; the executor then skips its sequential
  // pc/npc update. The CTI's delay slot always single-steps.
  bool ends_with_cti = false;
  // Terminating CTI is a jmpl: the exit target is register-dependent, so
  // successor resolution goes through the branch-target cache, never links.
  bool indirect_exit = false;
  // Set when invalidate() flushes the block. The trace stays executable
  // until the graveyard drains, but no new links may be installed on it.
  bool dead = false;
  // Successor links (fallthrough/not-taken and direct taken target),
  // populated lazily the first time an exit resolves. Two-sided: preds
  // back-references every block holding a link into this one, so flushing
  // can sever incoming edges without scanning the whole cache.
  std::array<ChainLink, 2> links{};
  std::vector<Block*> preds;
  std::vector<MorphInsn> code;
  // Static retire profile: per-op counts for one front-to-back execution.
  std::vector<BlockOpCount> profile;
  // Per-block cost profile for kBlockCost hooks (board), built lazily by
  // the hook on first dispatch — the cache itself knows nothing about cost
  // tables. Dies with the block on invalidation: flushed blocks never
  // re-enter dispatch, so a stale profile can never be applied.
  BlockCostState cost_state = BlockCostState::kUnbuilt;
  BlockCost cost;
  // JIT compilation state (Dispatch::kJit), owned by the cache's JitRuntime:
  // kNone until the first jit dispatch reaches the block, then kCompiled
  // (jit_meta names the emitted code) or kRejected (the block single-runs
  // through the interpreter's exec_block — the per-block kBlock fallback).
  enum class JitState : std::uint8_t { kNone = 0, kCompiled, kRejected };
  JitState jit_state = JitState::kNone;
  // The emitted code folds the CTI's delay-slot instruction — one word PAST
  // [start, start + 4*len) — so invalidation must treat that word as part of
  // the block's footprint (see BlockCache::invalidate).
  bool jit_folds_delay = false;
  JitBlockMeta* jit_meta = nullptr;

  Block* chain_next(std::uint32_t pc) {
    if (links[0].target != nullptr && links[0].pc == pc) return links[0].target;
    if (links[1].target != nullptr && links[1].pc == pc) return links[1].target;
    return nullptr;
  }
};

class BlockCache {
 public:
  // Blocks never grow past this many instructions; long straight-line runs
  // are split so the run loop's instruction budget stays enforceable at
  // block granularity without starving on giant unrolled kernels.
  static constexpr std::uint32_t kMaxBlockLen = 256;

  // Branch-target cache geometry: direct-mapped, indexed by word address.
  static constexpr std::uint32_t kBtcEntries = 128;

  struct Stats {
    std::uint64_t blocks_morphed = 0;
    std::uint64_t insns_morphed = 0;
    std::uint64_t flushes = 0;
    std::uint64_t links_installed = 0;   // successor edges memoized
    std::uint64_t links_severed = 0;     // edges cut by invalidation
    std::uint64_t chain_hits = 0;        // dispatches entered via a link
    std::uint64_t btc_hits = 0;          // dispatches entered via the BTC
    std::uint64_t btc_misses = 0;        // BTC probes that fell through
    std::uint64_t lookup_fallbacks = 0;  // block transitions via full lookup
  };

  // `dcache` is the platform's predecoded image over
  // [code_base, code_base + 4*dcache.size()); the cache re-decodes entries
  // in place when stores invalidate them. Both must outlive the cache.
  BlockCache(Bus& bus, std::uint32_t code_base,
             std::vector<isa::DecodedInsn>& dcache);
  ~BlockCache();  // out of line: JitRuntime is incomplete here

  // Selects the operand-capturing morph handler variants for every block
  // morphed from now on (kBlockCost dispatch needs each record's operands
  // in MorphCtx::cap). Must be chosen before the first lookup(); the board
  // sets it right after its platform (re)builds the cache.
  void set_capture(bool on) { capture_ = on; }
  bool capture() const { return capture_; }

  // Returns the block entered at `pc`, morphing it on first use. Returns
  // nullptr when `pc` is misaligned, outside the cached image, or when the
  // entry instruction terminates a block (CTI / invalid) — the caller falls
  // back to the single-step path for exact fault and delay-slot semantics.
  Block* lookup(std::uint32_t pc) {
    const std::uint32_t off = pc - code_base_;
    const std::uint32_t idx = off >> 2;
    if (off >= limit_ || (pc & 3u)) return nullptr;
    const std::int32_t slot = index_[idx];
    if (slot >= 0) return blocks_[static_cast<std::size_t>(slot)].get();
    if (slot == kNoBlock) return nullptr;
    return morph(idx);
  }

  // lookup() on a chain edge that no link or BTC entry resolved. May morph,
  // and thus may free graveyard blocks — callers must not touch a dead
  // predecessor afterwards.
  Block* lookup_fallback(std::uint32_t pc) {
    ++stats_.lookup_fallbacks;
    return lookup(pc);
  }

  // Branch-target cache for register-indirect exits: maps an arrived-at pc
  // to the block entered there. Entries pointing into a flushed block are
  // purged by invalidate(), so a hit is always live.
  Block* btc_lookup(std::uint32_t pc) {
    const BtcEntry& e = btc_[(pc >> 2) & (kBtcEntries - 1)];
    if (e.block != nullptr && e.pc == pc) {
      ++stats_.btc_hits;
      return e.block;
    }
    ++stats_.btc_misses;
    return nullptr;
  }

  void btc_insert(std::uint32_t pc, Block* block) {
    if (block->dead) return;
    btc_[(pc >> 2) & (kBtcEntries - 1)] = BtcEntry{pc, block};
  }

  // Memoizes `from`'s resolved exit edge (pc -> to). No-op when either side
  // is dead or both link slots already hold other edges.
  void install_link(Block& from, std::uint32_t pc, Block& to);

  void count_chain_hit() { ++stats_.chain_hits; }

  // Cheap range test used by store paths before paying for invalidate().
  bool covers_code(std::uint32_t ea) const { return ea - code_base_ < limit_; }

  // A store hit [ea, ea + bytes) inside the code range: re-decode the
  // touched words and flush every block overlapping them. Flushing is
  // two-sided: every predecessor edge into a flushed block is unlinked, the
  // flushed block's own out-edges are severed, and BTC entries naming it
  // are purged — so a chain in flight finishes its current trace and then
  // falls back to lookup() instead of following a stale pointer.
  void invalidate(std::uint32_t ea, std::uint32_t bytes);

  const Stats& stats() const { return stats_; }

  // ---- JIT tier (Dispatch::kJit) ------------------------------------------
  // The runtime owning the executable arena and per-block code lives with
  // the cache so invalidation can unpatch emitted chain jumps exactly when
  // it severs the interpreter's chain links. ensure_jit() builds it on first
  // use; it returns nullptr when the host cannot execute emitted code (the
  // executor then stays on the kBlock path).
  JitRuntime* ensure_jit();
  JitRuntime* jit() { return jit_.get(); }

  // Compiler-facing views of the predecoded image: the jit compiles from
  // DecodedInsn (it needs has_imm, which MorphInsn erases), which is valid
  // because a live block proves its words are unchanged since morph time.
  const std::vector<isa::DecodedInsn>& dcache() const { return dcache_; }
  std::uint32_t code_base() const { return code_base_; }
  std::uint32_t code_limit() const { return limit_; }

 private:
  static constexpr std::int32_t kUnknown = -1;
  static constexpr std::int32_t kNoBlock = -2;

  struct BtcEntry {
    std::uint32_t pc = 0;
    Block* block = nullptr;
  };

  Block* morph(std::uint32_t idx);

  // Severs every chain edge into and out of `b` (both link slots and the
  // matching back-references) ahead of parking it in the graveyard.
  void unlink(Block& b);

  Bus& bus_;
  std::uint32_t code_base_;
  std::uint32_t limit_;  // byte size of the cached image
  std::vector<isa::DecodedInsn>& dcache_;
  // Word index of a block *entry* -> slot in blocks_, or kUnknown/kNoBlock.
  std::vector<std::int32_t> index_;
  std::vector<std::unique_ptr<Block>> blocks_;
  // Invalidated blocks are parked here, not freed: a store inside the block
  // currently being executed must leave its morphed trace alive until the
  // dispatch loop returns to lookup(), which drains the graveyard.
  std::vector<std::unique_ptr<Block>> graveyard_;
  std::array<BtcEntry, kBtcEntries> btc_{};
  Stats stats_;
  bool capture_ = false;
  std::unique_ptr<JitRuntime> jit_;
  bool jit_failed_ = false;  // ensure_jit() probe failed; don't retry
};

}  // namespace nfp::sim
