// Versioned snapshot/restore of simulator state (see docs/snapshots.md).
//
// A snapshot is a flat chunked file: an 8-byte header (magic + format
// version) followed by tagged chunks, each carrying its payload size and an
// FNV-1a checksum of the payload, closed by a mandatory end marker. Every
// front end composes its snapshot from the shared platform chunks (CPU
// state, dirty RAM pages, UART stream, the loaded program image) plus its
// own: the counting ISS adds its retire-count vector, the measurement board
// adds its configuration fingerprint and accumulator state (SDRAM open row,
// meter accumulators, switching-activity LFSR).
//
// Restore is strictly two-phase: the whole stream is parsed and validated —
// structure, version, checksums, chunk tags, payload shapes — and decoded
// into locals before a single byte of target state is mutated. Any error
// throws a StateError carrying a structured code and leaves the target
// exactly as it was. Applying a snapshot drops every derived cache (morph
// cache, JIT arena, branch-target caches, block cost profiles): a resumed
// run re-warms them from scratch but retires bit-for-bit identically to the
// uninterrupted run, which the fuzz oracle's snapshot leg and the directed
// resume battery hold in place.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

namespace nfp::sim {

class Platform;

// Current snapshot format version. Bumped on any incompatible layout change;
// readers reject every version but their own (no silent best-effort decode
// of foreign state — see docs/snapshots.md for the policy).
// v2: the board-hooks chunk grew the store and stall-cycle event counters.
inline constexpr std::uint32_t kStateVersion = 2;

constexpr std::uint32_t chunk_tag(char a, char b, char c, char d) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(a)) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(b)) << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(c)) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(d)) << 24);
}

// Platform chunks (shared by every snapshot flavour).
inline constexpr std::uint32_t kChunkCpu = chunk_tag('C', 'P', 'U', '0');
inline constexpr std::uint32_t kChunkProgram = chunk_tag('P', 'R', 'O', 'G');
inline constexpr std::uint32_t kChunkRam = chunk_tag('R', 'A', 'M', 'D');
inline constexpr std::uint32_t kChunkUart = chunk_tag('U', 'A', 'R', 'T');
// Front-end chunks.
inline constexpr std::uint32_t kChunkCounts = chunk_tag('C', 'N', 'T', 'S');
inline constexpr std::uint32_t kChunkBoardConfig = chunk_tag('B', 'C', 'F', 'G');
inline constexpr std::uint32_t kChunkBoardHooks = chunk_tag('B', 'R', 'D', 'H');
// End marker: zero-size chunk closing the stream.
inline constexpr std::uint32_t kChunkEnd = chunk_tag('E', 'N', 'D', '!');

enum class StateErrorCode {
  kTruncated,       // stream ends inside a header/payload, or no end marker
  kBadMagic,        // not a snapshot file
  kBadVersion,      // snapshot written by an incompatible format version
  kBadChecksum,     // chunk payload does not match its stored checksum
  kUnknownChunk,    // tag this restore target does not accept
  kDuplicateChunk,  // same tag appears twice
  kTrailingData,    // bytes after the end marker
  kMissingChunk,    // a chunk the target requires is absent
  kBadPayload,      // chunk decoded to an impossible value/shape
  kConfigMismatch,  // snapshot taken under a different board configuration
  kIo,              // underlying stream write failed
};

const char* state_error_code_name(StateErrorCode code);

// Structured restore/save failure. Restore throws before mutating anything,
// so a caught StateError guarantees the target is bit-for-bit untouched.
struct StateError : std::runtime_error {
  StateError(StateErrorCode c, const std::string& what)
      : std::runtime_error("state error (" +
                           std::string(state_error_code_name(c)) +
                           "): " + what),
        code(c) {}
  StateErrorCode code;
};

// Serializer: buffers the whole snapshot in memory (header, chunks, end
// marker) and flushes once in finish(). Integers are little-endian on every
// host; doubles travel as their IEEE-754 bit pattern.
class StateWriter {
 public:
  StateWriter();

  void begin_chunk(std::uint32_t tag);
  void end_chunk();

  void put_u8(std::uint8_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_f64(double v);
  void put_bytes(const void* data, std::size_t size);
  void put_string(const std::string& s);  // u32 length + bytes

  // Appends the end marker and writes the whole buffer to `out`.
  void finish(std::ostream& out);

 private:
  std::vector<std::uint8_t> buf_;
  std::vector<std::uint8_t> chunk_;
  std::uint32_t chunk_tag_ = 0;
  bool in_chunk_ = false;
};

// Parsed-and-validated snapshot stream. Construction performs the entire
// structural validation pass: magic, version, per-chunk checksums, the end
// marker, duplicate detection, and the accepted-tag check (each restore
// entry point names exactly the tags it understands; anything else is a
// kUnknownChunk error, never silently skipped).
class StateReader {
 public:
  StateReader(std::istream& in, const std::vector<std::uint32_t>& accepted);

  bool has(std::uint32_t tag) const;
  // Payload of `tag`; throws kMissingChunk when absent.
  const std::vector<std::uint8_t>& payload(std::uint32_t tag) const;

 private:
  struct Chunk {
    std::uint32_t tag = 0;
    std::vector<std::uint8_t> payload;
  };
  std::vector<Chunk> chunks_;
};

// Bounds-checked decoder over one chunk payload; any overrun (or leftover
// bytes at done()) is a kBadPayload error.
class ChunkCursor {
 public:
  explicit ChunkCursor(const std::vector<std::uint8_t>& payload)
      : p_(payload.data()), end_(payload.data() + payload.size()) {}

  std::uint8_t get_u8();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  double get_f64();
  void get_bytes(void* dst, std::size_t size);
  std::string get_string();

  // Asserts the payload was consumed exactly.
  void done() const;

 private:
  void need(std::size_t n) const;
  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

// The four tags every platform snapshot carries; front ends append their own
// when constructing a StateReader.
std::vector<std::uint32_t> platform_chunk_tags();

// Serializes the platform: CPU state, the loaded program image (base, entry,
// text split, bytes, symbols), every dirty 4 KiB RAM page, and the UART
// stream. The snapshot is self-contained — restore needs no separate load().
void append_platform_chunks(StateWriter& w, const Platform& p);

// Applies a validated snapshot: decodes everything first, then resets the
// touched RAM, rewrites the dirty pages, reinstates CPU/UART state, rebuilds
// the decode cache from the restored RAM image (so self-modified words stay
// modified), and replaces the block cache — invalidating every morphed
// trace, chain link, BTC entry, cost profile, and JIT translation. The new
// cache inherits the old one's operand-capture flag.
void apply_platform_chunks(const StateReader& r, Platform& p);

// Whole-file convenience for a bare platform (functional sim).
void save_state(std::ostream& out, const Platform& p);
void restore_state(std::istream& in, Platform& p);

}  // namespace nfp::sim
