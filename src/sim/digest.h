// Cheap architectural-state digests for differential testing (src/fuzz).
//
// A digest folds the complete observable machine state into two 64-bit
// FNV-1a hashes: one over the CPU (integer/FP registers, pc/npc, %y, icc,
// fcc, instret, halt state) and one over RAM. The RAM side rides the bus's
// existing 4 KiB dirty-page tracking: only pages a store (or the program
// loader) has touched are hashed, so a digest costs microseconds instead of
// a 16 MiB sweep. Two runs that executed the same stores touch the same
// pages, so equal machine states always produce equal digests; the fuzz
// oracle compares digests at randomized budget stops to pin down where two
// dispatch modes diverge.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/bus.h"
#include "sim/cpu_state.h"

namespace nfp::sim {

inline constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001B3ull;

inline std::uint64_t fnv1a64(const void* data, std::size_t size,
                             std::uint64_t hash = kFnvOffset) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= p[i];
    hash *= kFnvPrime;
  }
  return hash;
}

struct ArchStateDigest {
  std::uint64_t cpu = 0;
  std::uint64_t ram = 0;
  friend bool operator==(const ArchStateDigest&,
                         const ArchStateDigest&) = default;
};

// Hash of every architecturally visible CPU register and flag.
std::uint64_t digest_cpu(const CpuState& state);

// Hash of (page index, page bytes) for every dirty RAM page, in address
// order. Pages never stored to hash as if absent.
std::uint64_t digest_dirty_ram(const Bus& bus);

inline ArchStateDigest arch_digest(const CpuState& state, const Bus& bus) {
  return ArchStateDigest{digest_cpu(state), digest_dirty_ram(bus)};
}

}  // namespace nfp::sim
