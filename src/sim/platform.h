// Platform = bus + CPU state + loaded program (predecoded). Shared by the
// counting ISS (sim/iss.h) and the measurement board (board/board.h), which
// differ only in the retire hooks they attach (paper Fig. 1: same functional
// simulation, different non-functional instrumentation).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "asmkit/program.h"
#include "isa/decode.h"
#include "sim/block_cache.h"
#include "sim/bus.h"
#include "sim/cpu_state.h"

namespace nfp::sim {

struct RunResult {
  bool halted = false;
  std::uint64_t instret = 0;
  std::uint32_t exit_code = 0;
};

class Platform {
 public:
  Platform();

  // Copies the program into RAM, predecodes its text, and resets the CPU
  // (pc = entry, %sp = kStackTop). Any previous machine state is discarded:
  // RAM pages touched by an earlier run are zeroed, the UART cleared, and
  // the superblock morph cache rebuilt, so a reused Platform is
  // indistinguishable from a freshly constructed one.
  void load(const asmkit::Program& program);

  Bus& bus() { return bus_; }
  const Bus& bus() const { return bus_; }
  CpuState& cpu() { return cpu_; }
  const CpuState& cpu() const { return cpu_; }

  std::uint32_t code_base() const { return code_base_; }
  const std::vector<isa::DecodedInsn>& decode_cache() const { return dcache_; }

  // Image/section accessors for the static analyzer (nfp::analyze): the
  // loaded program is retained so nfplint-style tooling can cross-check the
  // predecoded image against a from-scratch CFG recovery.
  std::uint32_t code_size() const {
    return static_cast<std::uint32_t>(dcache_.size()) * 4;
  }
  std::uint32_t text_size() const { return text_size_; }
  const asmkit::Program& loaded_program() const { return program_; }

  // Superblock morph cache over the predecoded image (Dispatch::kBlock);
  // null until a program is loaded.
  BlockCache* block_cache() { return bcache_.get(); }

 private:
  // Snapshot restore (sim/state_io.cpp) replays load() from serialized state
  // and needs to reseat the private image/cache members atomically.
  friend void apply_platform_chunks(const class StateReader& r, Platform& p);

  Bus bus_;
  CpuState cpu_;
  std::uint32_t code_base_ = 0;
  std::uint32_t text_size_ = 0;
  asmkit::Program program_;
  std::vector<isa::DecodedInsn> dcache_;
  std::unique_ptr<BlockCache> bcache_;
};

}  // namespace nfp::sim
