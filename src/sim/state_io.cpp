#include "sim/state_io.h"

#include <bit>
#include <cstring>
#include <istream>
#include <ostream>

#include "isa/decode.h"
#include "sim/digest.h"
#include "sim/memmap.h"
#include "sim/platform.h"

namespace nfp::sim {
namespace {

constexpr std::uint8_t kMagic[4] = {'N', 'F', 'P', 'S'};
constexpr std::size_t kChunkHeaderSize = 4 + 8 + 8;  // tag, size, checksum

std::string tag_name(std::uint32_t tag) {
  std::string s;
  for (int shift = 0; shift < 32; shift += 8) {
    const char c = static_cast<char>((tag >> shift) & 0xFF);
    s += (c >= 0x20 && c < 0x7F) ? c : '?';
  }
  return s;
}

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  append_u32(out, static_cast<std::uint32_t>(v));
  append_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t read_u32(const std::uint8_t* p) {
  return std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) |
         (std::uint32_t{p[2]} << 16) | (std::uint32_t{p[3]} << 24);
}

std::uint64_t read_u64(const std::uint8_t* p) {
  return std::uint64_t{read_u32(p)} | (std::uint64_t{read_u32(p + 4)} << 32);
}

}  // namespace

const char* state_error_code_name(StateErrorCode code) {
  switch (code) {
    case StateErrorCode::kTruncated: return "truncated";
    case StateErrorCode::kBadMagic: return "bad-magic";
    case StateErrorCode::kBadVersion: return "bad-version";
    case StateErrorCode::kBadChecksum: return "bad-checksum";
    case StateErrorCode::kUnknownChunk: return "unknown-chunk";
    case StateErrorCode::kDuplicateChunk: return "duplicate-chunk";
    case StateErrorCode::kTrailingData: return "trailing-data";
    case StateErrorCode::kMissingChunk: return "missing-chunk";
    case StateErrorCode::kBadPayload: return "bad-payload";
    case StateErrorCode::kConfigMismatch: return "config-mismatch";
    case StateErrorCode::kIo: return "io";
  }
  return "unknown";
}

// ---- StateWriter -----------------------------------------------------------

StateWriter::StateWriter() {
  buf_.insert(buf_.end(), kMagic, kMagic + 4);
  append_u32(buf_, kStateVersion);
}

void StateWriter::begin_chunk(std::uint32_t tag) {
  if (in_chunk_) {
    throw StateError(StateErrorCode::kIo, "begin_chunk inside a chunk");
  }
  in_chunk_ = true;
  chunk_tag_ = tag;
  chunk_.clear();
}

void StateWriter::end_chunk() {
  if (!in_chunk_) {
    throw StateError(StateErrorCode::kIo, "end_chunk outside a chunk");
  }
  append_u32(buf_, chunk_tag_);
  append_u64(buf_, chunk_.size());
  append_u64(buf_, fnv1a64(chunk_.data(), chunk_.size()));
  buf_.insert(buf_.end(), chunk_.begin(), chunk_.end());
  in_chunk_ = false;
}

void StateWriter::put_u8(std::uint8_t v) { chunk_.push_back(v); }
void StateWriter::put_u32(std::uint32_t v) { append_u32(chunk_, v); }
void StateWriter::put_u64(std::uint64_t v) { append_u64(chunk_, v); }
void StateWriter::put_f64(double v) {
  append_u64(chunk_, std::bit_cast<std::uint64_t>(v));
}

void StateWriter::put_bytes(const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  chunk_.insert(chunk_.end(), p, p + size);
}

void StateWriter::put_string(const std::string& s) {
  put_u32(static_cast<std::uint32_t>(s.size()));
  put_bytes(s.data(), s.size());
}

void StateWriter::finish(std::ostream& out) {
  if (in_chunk_) {
    throw StateError(StateErrorCode::kIo, "finish inside an open chunk");
  }
  append_u32(buf_, kChunkEnd);
  append_u64(buf_, 0);
  append_u64(buf_, kFnvOffset);  // checksum of the empty payload
  out.write(reinterpret_cast<const char*>(buf_.data()),
            static_cast<std::streamsize>(buf_.size()));
  if (!out) {
    throw StateError(StateErrorCode::kIo, "stream write failed");
  }
}

// ---- StateReader -----------------------------------------------------------

StateReader::StateReader(std::istream& in,
                         const std::vector<std::uint32_t>& accepted) {
  std::vector<std::uint8_t> data;
  {
    char block[4096];
    while (in.read(block, sizeof(block)) || in.gcount() > 0) {
      data.insert(data.end(), block, block + in.gcount());
      if (in.eof()) break;
    }
  }
  if (data.size() < 8) {
    throw StateError(StateErrorCode::kTruncated,
                     "file shorter than the 8-byte header");
  }
  if (std::memcmp(data.data(), kMagic, 4) != 0) {
    throw StateError(StateErrorCode::kBadMagic, "not a snapshot file");
  }
  const std::uint32_t version = read_u32(data.data() + 4);
  if (version != kStateVersion) {
    throw StateError(StateErrorCode::kBadVersion,
                     "snapshot version " + std::to_string(version) +
                         ", this build reads version " +
                         std::to_string(kStateVersion));
  }

  std::size_t pos = 8;
  bool saw_end = false;
  while (pos < data.size()) {
    if (data.size() - pos < kChunkHeaderSize) {
      throw StateError(StateErrorCode::kTruncated,
                       "stream ends inside a chunk header");
    }
    const std::uint32_t tag = read_u32(data.data() + pos);
    const std::uint64_t size = read_u64(data.data() + pos + 4);
    const std::uint64_t checksum = read_u64(data.data() + pos + 12);
    pos += kChunkHeaderSize;
    if (tag == kChunkEnd) {
      if (size != 0 || checksum != kFnvOffset) {
        throw StateError(StateErrorCode::kBadPayload,
                         "end marker carries a payload");
      }
      saw_end = true;
      if (pos != data.size()) {
        throw StateError(StateErrorCode::kTrailingData,
                         std::to_string(data.size() - pos) +
                             " bytes after the end marker");
      }
      break;
    }
    if (size > data.size() - pos) {
      throw StateError(StateErrorCode::kTruncated,
                       "stream ends inside chunk " + tag_name(tag));
    }
    const std::uint8_t* payload = data.data() + pos;
    pos += size;
    if (fnv1a64(payload, size) != checksum) {
      throw StateError(StateErrorCode::kBadChecksum,
                       "chunk " + tag_name(tag) + " is corrupt");
    }
    bool known = false;
    for (const std::uint32_t a : accepted) known = known || a == tag;
    if (!known) {
      throw StateError(StateErrorCode::kUnknownChunk,
                       "this target does not accept chunk " + tag_name(tag));
    }
    for (const Chunk& c : chunks_) {
      if (c.tag == tag) {
        throw StateError(StateErrorCode::kDuplicateChunk,
                         "chunk " + tag_name(tag) + " appears twice");
      }
    }
    chunks_.push_back(
        Chunk{tag, std::vector<std::uint8_t>(payload, payload + size)});
  }
  if (!saw_end) {
    throw StateError(StateErrorCode::kTruncated, "no end marker");
  }
}

bool StateReader::has(std::uint32_t tag) const {
  for (const Chunk& c : chunks_) {
    if (c.tag == tag) return true;
  }
  return false;
}

const std::vector<std::uint8_t>& StateReader::payload(
    std::uint32_t tag) const {
  for (const Chunk& c : chunks_) {
    if (c.tag == tag) return c.payload;
  }
  throw StateError(StateErrorCode::kMissingChunk,
                   "snapshot has no chunk " + tag_name(tag));
}

// ---- ChunkCursor -----------------------------------------------------------

void ChunkCursor::need(std::size_t n) const {
  if (static_cast<std::size_t>(end_ - p_) < n) {
    throw StateError(StateErrorCode::kBadPayload,
                     "chunk payload shorter than its contents claim");
  }
}

std::uint8_t ChunkCursor::get_u8() {
  need(1);
  return *p_++;
}

std::uint32_t ChunkCursor::get_u32() {
  need(4);
  const std::uint32_t v = read_u32(p_);
  p_ += 4;
  return v;
}

std::uint64_t ChunkCursor::get_u64() {
  need(8);
  const std::uint64_t v = read_u64(p_);
  p_ += 8;
  return v;
}

double ChunkCursor::get_f64() { return std::bit_cast<double>(get_u64()); }

void ChunkCursor::get_bytes(void* dst, std::size_t size) {
  need(size);
  std::memcpy(dst, p_, size);
  p_ += size;
}

std::string ChunkCursor::get_string() {
  const std::uint32_t len = get_u32();
  need(len);
  std::string s(reinterpret_cast<const char*>(p_), len);
  p_ += len;
  return s;
}

void ChunkCursor::done() const {
  if (p_ != end_) {
    throw StateError(StateErrorCode::kBadPayload,
                     "chunk payload has trailing bytes");
  }
}

// ---- platform chunks -------------------------------------------------------

std::vector<std::uint32_t> platform_chunk_tags() {
  return {kChunkCpu, kChunkProgram, kChunkRam, kChunkUart};
}

void append_platform_chunks(StateWriter& w, const Platform& p) {
  const CpuState& cpu = p.cpu();
  w.begin_chunk(kChunkCpu);
  for (const std::uint32_t r : cpu.r) w.put_u32(r);
  for (const std::uint32_t f : cpu.f) w.put_u32(f);
  w.put_u32(cpu.pc);
  w.put_u32(cpu.npc);
  w.put_u32(cpu.y);
  w.put_u8(static_cast<std::uint8_t>((cpu.icc_n << 3) | (cpu.icc_z << 2) |
                                     (cpu.icc_v << 1) |
                                     static_cast<int>(cpu.icc_c)));
  w.put_u8(cpu.fcc);
  w.put_u8(cpu.halted ? 1 : 0);
  w.put_u64(cpu.instret);
  w.put_u32(cpu.exit_code);
  w.end_chunk();

  const asmkit::Program& prog = p.loaded_program();
  w.begin_chunk(kChunkProgram);
  w.put_u32(prog.base());
  w.put_u32(prog.entry());
  w.put_u32(prog.text_size());
  w.put_u32(prog.size());
  w.put_bytes(prog.bytes().data(), prog.bytes().size());
  w.put_u32(static_cast<std::uint32_t>(prog.symbols().size()));
  for (const auto& [name, addr] : prog.symbols()) {
    w.put_string(name);
    w.put_u32(addr);
  }
  w.end_chunk();

  const Bus& bus = p.bus();
  const auto& touched = bus.touched_pages();
  const std::uint32_t page = bus.page_size();
  std::uint32_t dirty = 0;
  for (const std::uint8_t t : touched) dirty += t ? 1 : 0;
  w.begin_chunk(kChunkRam);
  w.put_u32(page);
  w.put_u32(dirty);
  for (std::uint32_t i = 0; i < touched.size(); ++i) {
    if (!touched[i]) continue;
    w.put_u32(i);
    w.put_bytes(bus.ram_data() + std::size_t{i} * page, page);
  }
  w.end_chunk();

  w.begin_chunk(kChunkUart);
  w.put_string(bus.uart_output());
  w.end_chunk();
}

void apply_platform_chunks(const StateReader& r, Platform& p) {
  // Decode phase: everything lands in locals; any throw leaves `p` untouched.
  CpuState cpu;
  {
    ChunkCursor c(r.payload(kChunkCpu));
    for (std::uint32_t& reg : cpu.r) reg = c.get_u32();
    for (std::uint32_t& reg : cpu.f) reg = c.get_u32();
    cpu.pc = c.get_u32();
    cpu.npc = c.get_u32();
    cpu.y = c.get_u32();
    const std::uint8_t icc = c.get_u8();
    if (icc & ~0x0Fu) {
      throw StateError(StateErrorCode::kBadPayload, "icc bits out of range");
    }
    cpu.icc_n = (icc & 8) != 0;
    cpu.icc_z = (icc & 4) != 0;
    cpu.icc_v = (icc & 2) != 0;
    cpu.icc_c = (icc & 1) != 0;
    cpu.fcc = c.get_u8();
    if (cpu.fcc > 3) {
      throw StateError(StateErrorCode::kBadPayload, "fcc out of range");
    }
    cpu.halted = c.get_u8() != 0;
    cpu.instret = c.get_u64();
    cpu.exit_code = c.get_u32();
    c.done();
  }

  asmkit::Program prog;
  {
    ChunkCursor c(r.payload(kChunkProgram));
    const std::uint32_t base = c.get_u32();
    const std::uint32_t entry = c.get_u32();
    const std::uint32_t text = c.get_u32();
    const std::uint32_t size = c.get_u32();
    if (base < kRamBase || std::uint64_t{base} + size > kRamEnd) {
      throw StateError(StateErrorCode::kBadPayload,
                       "program image does not fit in RAM");
    }
    std::vector<std::uint8_t> bytes(size);
    c.get_bytes(bytes.data(), bytes.size());
    prog = asmkit::Program(base, std::move(bytes));
    prog.set_entry(entry);
    if (text > size) {
      throw StateError(StateErrorCode::kBadPayload,
                       "text section larger than the image");
    }
    prog.set_text_size(text);
    const std::uint32_t nsyms = c.get_u32();
    for (std::uint32_t i = 0; i < nsyms; ++i) {
      const std::string name = c.get_string();
      prog.define_symbol(name, c.get_u32());
    }
    c.done();
  }

  struct Page {
    std::uint32_t index;
    std::vector<std::uint8_t> bytes;
  };
  std::vector<Page> pages;
  {
    ChunkCursor c(r.payload(kChunkRam));
    const std::uint32_t page = c.get_u32();
    if (page != p.bus().page_size()) {
      throw StateError(StateErrorCode::kBadPayload,
                       "dirty-page granule is " + std::to_string(page) +
                           " bytes, this build uses " +
                           std::to_string(p.bus().page_size()));
    }
    const std::uint32_t count = c.get_u32();
    const std::uint32_t npages = kRamSize / page;
    pages.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      Page pg;
      pg.index = c.get_u32();
      if (pg.index >= npages ||
          (!pages.empty() && pg.index <= pages.back().index)) {
        throw StateError(StateErrorCode::kBadPayload,
                         "dirty pages out of order or out of range");
      }
      pg.bytes.resize(page);
      c.get_bytes(pg.bytes.data(), page);
      pages.push_back(std::move(pg));
    }
    c.done();
  }

  std::string uart;
  {
    ChunkCursor c(r.payload(kChunkUart));
    uart = c.get_string();
    c.done();
  }

  // Apply phase: mirrors Platform::load but sources the image from the
  // snapshot's dirty pages (which include every self-modified code word),
  // then rebuilds the decode cache from restored RAM so the predecoded view
  // matches memory exactly.
  const bool capture = p.bcache_ != nullptr && p.bcache_->capture();
  p.bcache_.reset();
  p.bus_.reset_touched_ram();
  p.bus_.clear_uart();
  for (const Page& pg : pages) {
    p.bus_.write_block(kRamBase + pg.index * p.bus_.page_size(),
                       pg.bytes.data(), pg.bytes.size());
  }
  p.bus_.set_uart_output(std::move(uart));

  p.code_base_ = prog.base();
  p.text_size_ = prog.text_size();
  p.program_ = std::move(prog);
  const std::size_t words = p.program_.size() / 4;
  p.dcache_.clear();
  p.dcache_.reserve(words);
  for (std::size_t i = 0; i < words; ++i) {
    p.dcache_.push_back(isa::decode(p.bus_.load32(
        p.code_base_ + static_cast<std::uint32_t>(i) * 4)));
  }
  p.bcache_ = std::make_unique<BlockCache>(p.bus_, p.code_base_, p.dcache_);
  p.bcache_->set_capture(capture);
  p.cpu_ = cpu;
}

void save_state(std::ostream& out, const Platform& p) {
  StateWriter w;
  append_platform_chunks(w, p);
  w.finish(out);
}

void restore_state(std::istream& in, Platform& p) {
  const StateReader r(in, platform_chunk_tags());
  apply_platform_chunks(r, p);
}

}  // namespace nfp::sim
