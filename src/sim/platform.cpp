#include "sim/platform.h"

#include "sim/memmap.h"

namespace nfp::sim {

Platform::Platform() {
  bus_.set_instret_source([this] { return cpu_.instret; });
  // The target-visible timer advances with retired instructions on every
  // platform flavour so that a kernel's instruction stream is identical on
  // the ISS and on the board (a kernel reading the timer must not perturb
  // the counts the estimator consumes).
  bus_.set_time_source([this] { return cpu_.instret >> 10; });
}

void Platform::load(const asmkit::Program& program) {
  if (!bus_.in_ram(program.base()) ||
      program.base() + program.size() > kRamEnd) {
    throw SimError("program does not fit in RAM");
  }
  // Drop the morph cache before mutating the image it indexes.
  bcache_.reset();
  bus_.reset_touched_ram();
  bus_.clear_uart();
  bus_.write_block(program.base(), program.bytes().data(),
                   program.bytes().size());

  code_base_ = program.base();
  text_size_ = program.text_size();
  program_ = program;
  const std::size_t words = program.size() / 4;
  dcache_.clear();
  dcache_.reserve(words);
  for (std::size_t i = 0; i < words; ++i) {
    dcache_.push_back(isa::decode(bus_.load32(
        program.base() + static_cast<std::uint32_t>(i) * 4)));
  }
  bcache_ = std::make_unique<BlockCache>(bus_, code_base_, dcache_);

  cpu_ = CpuState{};
  cpu_.pc = program.entry();
  cpu_.npc = program.entry() + 4;
  cpu_.r[isa::kRegSp] = kStackTop;
}

}  // namespace nfp::sim
