// Physical memory map of the simulated LEON3-like platform.
//
// Mirrors a typical GRLIB layout: RAM at 0x40000000, peripherals at
// 0x80000000. The input/output windows are plain RAM carved out by
// convention so the host can exchange bulk data (bitstreams, images) with
// the target program, standing in for the paper's practice of linking
// in-/output streams directly into the bare-metal kernel.
#pragma once

#include <cstdint>

namespace nfp::sim {

inline constexpr std::uint32_t kRamBase = 0x40000000u;
inline constexpr std::uint32_t kRamSize = 0x01000000u;  // 16 MiB
inline constexpr std::uint32_t kRamEnd = kRamBase + kRamSize;

// Program text+data are linked at the RAM base.
inline constexpr std::uint32_t kTextBase = kRamBase;

// Host-visible data exchange windows (by convention, inside RAM):
// input at +8 MiB (up to 4 MiB), output at +12 MiB (up to ~3 MiB).
inline constexpr std::uint32_t kInputBase = 0x40800000u;
inline constexpr std::uint32_t kOutputBase = 0x40C00000u;

// Initial stack pointer (grows down; 16-byte aligned).
inline constexpr std::uint32_t kStackTop = kRamEnd - 16;

// Memory-mapped peripherals.
inline constexpr std::uint32_t kMmioBase = 0x80000000u;
inline constexpr std::uint32_t kUartTx = 0x80000000u;      // write: one char
inline constexpr std::uint32_t kTimerLo = 0x80000100u;     // read: time low
inline constexpr std::uint32_t kTimerHi = 0x80000104u;     // read: time high
inline constexpr std::uint32_t kInstretLo = 0x80000108u;   // read: retired lo
inline constexpr std::uint32_t kInstretHi = 0x8000010Cu;   // read: retired hi
inline constexpr std::uint32_t kMmioEnd = 0x80001000u;

// Software trap numbers (`ta N`).
inline constexpr std::int32_t kTrapHalt = 0;

}  // namespace nfp::sim
