// Execution tracing: runs a program while capturing a disassembled
// instruction trace (debugging aid; also powers `nfpc --trace`).
#pragma once

#include <cstdio>
#include <string>

#include "asmkit/program.h"
#include "isa/disasm.h"
#include "sim/executor.h"
#include "sim/platform.h"

namespace nfp::sim {

struct TraceHooks {
  static constexpr bool kWantsDetail = true;
  // A trace is inherently per-instruction; block-batched retire would skip
  // the disassembly callback, and a cost profile has nothing to precompute.
  static constexpr bool kBatchRetire = false;
  static constexpr bool kBlockCost = false;

  std::string* out = nullptr;
  std::size_t limit = 0;
  std::size_t emitted = 0;

  void on_retire(const isa::DecodedInsn& d, const RetireInfo& info) {
    if (emitted >= limit) return;
    ++emitted;
    char buf[16];
    std::snprintf(buf, sizeof buf, "%08x", info.pc);
    *out += std::string(buf) + "  " + isa::disassemble(d, info.pc) + "\n";
    if (emitted == limit) *out += "... (trace limit reached)\n";
  }
};

class TraceSim {
 public:
  explicit TraceSim(std::size_t limit = 200) { hooks_.limit = limit; }

  void load(const asmkit::Program& program) { platform_.load(program); }

  // Runs to completion; returns the captured trace. TraceHooks never batch
  // (kBatchRetire == false), so every dispatch mode steps instruction by
  // instruction; the block modes additionally keep the morph cache and
  // predecode image coherent under stores into code, matching the
  // block-mode executors on self-modifying programs.
  std::string run(std::uint64_t max_insns = 100'000'000ull,
                  Dispatch dispatch = Dispatch::kBlock) {
    std::string trace;
    hooks_.out = &trace;
    hooks_.emitted = 0;
    Executor<TraceHooks> exec(platform_.cpu(), platform_.bus(), hooks_);
    exec.set_decode_cache(platform_.code_base(), platform_.decode_cache());
    if (dispatch != Dispatch::kStep) {
      exec.set_block_cache(platform_.block_cache());
    }
    exec.run(max_insns);
    hooks_.out = nullptr;
    return trace;
  }

  Platform& platform() { return platform_; }
  Bus& bus() { return platform_.bus(); }
  CpuState& cpu() { return platform_.cpu(); }

 private:
  Platform platform_;
  TraceHooks hooks_;
};

}  // namespace nfp::sim
