// Retire hooks: the extension point that turns the functional simulator into
// an ISS with NFP counters (paper §III) or into the measurement board.
//
// The paper's OVP model realises counters "without using callback functions"
// by incrementing internal registers inside each morph function; our
// equivalent is a template hook inlined into the execution switch, so the
// counting build has the same zero-indirection property.
#pragma once

#include <array>
#include <cstdint>

#include "isa/insn.h"

namespace nfp::sim {

// Per-retire detail, filled only for hooks that declare kWantsDetail.
struct RetireInfo {
  std::uint32_t pc = 0;
  std::uint32_t a = 0;       // first source operand (integer value / FP high)
  std::uint32_t b = 0;       // second operand (register or immediate)
  std::uint32_t result = 0;  // integer result (or FP result high word)
  std::uint32_t ea = 0;      // effective address for loads/stores
  std::uint32_t mem_data = 0;  // word loaded/stored (low word for 64-bit)
  bool taken = false;          // control transfers: branch taken
};

// Functional-only simulation: no non-functional properties at all.
struct NullHooks {
  static constexpr bool kWantsDetail = false;
  void on_retire(const isa::DecodedInsn&, const RetireInfo&) {}
};

// Instruction-accurate counting (the OVP-with-counters analog): one counter
// per op; category aggregation happens offline so different category maps
// can be evaluated without re-simulating.
struct OpCountHooks {
  static constexpr bool kWantsDetail = false;

  std::array<std::uint64_t, isa::kOpCount> counts{};

  void on_retire(const isa::DecodedInsn& insn, const RetireInfo&) {
    ++counts[static_cast<std::size_t>(insn.op)];
  }

  std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (const auto c : counts) sum += c;
    return sum;
  }
};

}  // namespace nfp::sim
