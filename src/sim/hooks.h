// Retire hooks: the extension point that turns the functional simulator into
// an ISS with NFP counters (paper §III) or into the measurement board.
//
// The paper's OVP model realises counters "without using callback functions"
// by incrementing internal registers inside each morph function; our
// equivalent is a template hook inlined into the execution switch, so the
// counting build has the same zero-indirection property.
#pragma once

#include <array>
#include <cstdint>

#include "isa/insn.h"

namespace nfp::sim {

// Per-retire detail, filled only for hooks that declare kWantsDetail.
struct RetireInfo {
  std::uint32_t pc = 0;
  std::uint32_t a = 0;       // first source operand (integer value / FP high)
  std::uint32_t b = 0;       // second operand (register or immediate)
  std::uint32_t result = 0;  // integer result (or FP result high word)
  std::uint32_t ea = 0;      // effective address for loads/stores
  std::uint32_t mem_data = 0;  // word loaded/stored (low word for 64-bit)
  bool taken = false;          // control transfers: branch taken
};

// One entry of a superblock's precomputed retire profile: how many times a
// given op retires when the block runs front to back. For a straight-line
// block this is static, so hooks that only consume op counts can retire the
// whole block with one vector-add instead of one call per instruction.
struct BlockOpCount {
  std::uint8_t op = 0;       // isa::Op, stored compactly
  std::uint32_t count = 0;
};

// Functional-only simulation: no non-functional properties at all.
struct NullHooks {
  static constexpr bool kWantsDetail = false;
  // Batched retirement: the executor may retire a whole cached block with a
  // single on_retire_block call. Hooks whose per-instruction cost is
  // data-dependent (board, trace) must leave this false and keep stepping.
  static constexpr bool kBatchRetire = true;
  void on_retire(const isa::DecodedInsn&, const RetireInfo&) {}
  void on_retire_block(const BlockOpCount*, std::size_t, std::uint64_t) {}
};

// Instruction-accurate counting (the OVP-with-counters analog): one counter
// per op; category aggregation happens offline so different category maps
// can be evaluated without re-simulating.
struct OpCountHooks {
  static constexpr bool kWantsDetail = false;
  static constexpr bool kBatchRetire = true;

  std::array<std::uint64_t, isa::kOpCount> counts{};

  void on_retire(const isa::DecodedInsn& insn, const RetireInfo&) {
    ++counts[static_cast<std::size_t>(insn.op)];
  }

  // Batched retirement of a whole straight-line block: the per-category
  // counts of such a block are statically known, so they arrive as one
  // precomputed count vector (paper §III: counters in plain registers, no
  // per-instruction callback).
  void on_retire_block(const BlockOpCount* ops, std::size_t n, std::uint64_t) {
    for (std::size_t i = 0; i < n; ++i) counts[ops[i].op] += ops[i].count;
  }

  std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (const auto c : counts) sum += c;
    return sum;
  }
};

}  // namespace nfp::sim
