// Retire hooks: the extension point that turns the functional simulator into
// an ISS with NFP counters (paper §III) or into the measurement board.
//
// The paper's OVP model realises counters "without using callback functions"
// by incrementing internal registers inside each morph function; our
// equivalent is a template hook inlined into the execution switch, so the
// counting build has the same zero-indirection property.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "isa/insn.h"

namespace nfp::sim {

// Per-retire detail, filled only for hooks that declare kWantsDetail.
struct RetireInfo {
  std::uint32_t pc = 0;
  std::uint32_t a = 0;       // first source operand (integer value / FP high)
  std::uint32_t b = 0;       // second operand (register or immediate)
  std::uint32_t result = 0;  // integer result (or FP result high word)
  std::uint32_t ea = 0;      // effective address for loads/stores
  std::uint32_t mem_data = 0;  // word loaded/stored (low word for 64-bit)
  bool taken = false;          // control transfers: branch taken
};

// One entry of a superblock's precomputed retire profile: how many times a
// given op retires when the block runs front to back. For a straight-line
// block this is static, so hooks that only consume op counts can retire the
// whole block with one vector-add instead of one call per instruction.
struct BlockOpCount {
  std::uint8_t op = 0;       // isa::Op, stored compactly
  std::uint32_t count = 0;
};

// How an op's cost deviates from its static table entry (the EnergyAnalyzer
// split: a statically-precomputable base corrected by context-dependent
// residuals). Tagged per op in the board's CostModel so block dispatch can
// precompute which instructions of a block need a dynamic callback at all.
enum class ResidualKind : std::uint8_t {
  kNone,        // cost fully static (modulo global operand-toggle variation)
  kMemory,      // latency/energy depend on the SDRAM row / data-cache state
  kBranch,      // cycles and energy depend on the resolved direction
  kFpVariable,  // FP op whose energy tracks operand bit activity
};

// Per-instruction operand capture for cost-residual hooks: the two words a
// per-op residual callback needs, written by the capture variants of the
// morph handlers. Semantics follow RetireInfo's field the hook consumes:
// memory ops capture {ea, mem_data}, control transfers {taken, 0}, and
// everything else {a, b} — with the same operand aliasing as the step path
// (e.g. udiv reads rs1 after the result writeback).
struct CapturedOp {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};

// One flagged instruction of a block's cost profile: the record index inside
// the morphed trace (== capture-buffer slot) and its op.
struct ResidualRef {
  std::uint16_t index = 0;
  std::uint8_t op = 0;  // isa::Op
};

// Statically-precomputed cost profile of one superblock, built lazily by a
// kBlockCost hook the first time the block dispatches: the cycle/energy sums
// of every instruction whose cost is context-free, plus the index list of
// the instructions that still need a per-op residual callback. Invalidation
// drops the profile together with the block (flushed blocks never re-enter
// dispatch), so a profile can never outlive the code it was built from.
struct BlockCost {
  std::uint64_t base_cycles = 0;   // sum over the context-free instructions
  double base_energy_nj = 0.0;     // diagnostic: static energy of ALL ops
  std::vector<ResidualRef> residuals;
};

enum class BlockCostState : std::uint8_t {
  kUnbuilt,   // no kBlockCost hook has seen this block yet
  kReady,     // cost profile valid for the current hook configuration
  kStepOnly,  // block contains guarded ops (FPU/muldiv on a config without
              // the unit): it must single-step so the guard faults at the
              // exact offending instruction
};

// Functional-only simulation: no non-functional properties at all.
struct NullHooks {
  static constexpr bool kWantsDetail = false;
  // Batched retirement: the executor may retire a whole cached block with a
  // single on_retire_block call. Hooks whose per-instruction cost is
  // data-dependent (board, trace) must leave this false and keep stepping.
  static constexpr bool kBatchRetire = true;
  // Second block-dispatch capability tier (board): the hook cannot batch
  // whole retires, but can split each op's cost into a per-block static
  // profile plus per-op residual callbacks over captured operands.
  static constexpr bool kBlockCost = false;
  void on_retire(const isa::DecodedInsn&, const RetireInfo&) {}
  void on_retire_block(const BlockOpCount*, std::size_t, std::uint64_t) {}
};

// Instruction-accurate counting (the OVP-with-counters analog): one counter
// per op; category aggregation happens offline so different category maps
// can be evaluated without re-simulating.
struct OpCountHooks {
  static constexpr bool kWantsDetail = false;
  static constexpr bool kBatchRetire = true;
  static constexpr bool kBlockCost = false;

  std::array<std::uint64_t, isa::kOpCount> counts{};

  void on_retire(const isa::DecodedInsn& insn, const RetireInfo&) {
    ++counts[static_cast<std::size_t>(insn.op)];
  }

  // Batched retirement of a whole straight-line block: the per-category
  // counts of such a block are statically known, so they arrive as one
  // precomputed count vector (paper §III: counters in plain registers, no
  // per-instruction callback).
  void on_retire_block(const BlockOpCount* ops, std::size_t n, std::uint64_t) {
    for (std::size_t i = 0; i < n; ++i) counts[ops[i].op] += ops[i].count;
  }

  std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (const auto c : counts) sum += c;
    return sum;
  }
};

}  // namespace nfp::sim
