// Templated SPARC V8 execution core.
//
// One step = decode (via a predecoded cache over the program image) +
// "morph" dispatch (Fig. 2/3 of the paper: decode entries map to grouped
// execution functions) + a retire hook. The hook parameter is what
// distinguishes the functional simulator, the counting ISS, and the
// measurement board — all three share this single execution core.
//
// Three dispatch modes share the core:
//  - kStep: one instruction per dispatch through the op switch (always
//    available; the only mode for hooks that need per-instruction detail).
//  - kBlock: whole superblocks per dispatch through a BlockCache of morphed
//    handler traces, with batched retire accounting for hooks that declare
//    kBatchRetire (see block_cache.h). Blocks chain: resolved exits link
//    block to block (plus a branch-target cache for register-indirect
//    exits), so the hot loop re-enters BlockCache::lookup() only on
//    unresolved edges, budget exhaustion, faults, and flushed links.
//  - kBlockUnchained: kBlock with chaining disabled — every transition goes
//    through lookup(). The A/B baseline for the chaining speedup.
//  - kJit: the x86-64 template JIT tier above the morph cache (sim/jit.h):
//    compiled blocks execute natively with retire counters and instret
//    batched to one add per counter per block, and resolved transitions
//    patched directly into the emitted code. kBlockCost hooks exposing the
//    jit cost interface (the board) run a cost-mode variant: static base
//    cycles retire natively, dynamic residuals are captured and replayed in
//    batch. Per-block fallback to the kBlock interpreter for blocks the
//    compiler rejects (FPU), global fallback to chained kBlock when the
//    host cannot execute emitted code.
#pragma once

#include <array>
#include <cmath>
#include <cstdio>
#include <limits>
#include <span>

#include "isa/decode.h"
#include "isa/disasm.h"
#include "sim/block_cache.h"
#include "sim/bus.h"
#include "sim/cpu_state.h"
#include "sim/hooks.h"
#include "sim/jit.h"

namespace nfp::sim {

// Execution-mode selector surfaced on the simulator front ends (and on the
// nfpc CLI as --dispatch={step,block,block-unchained,jit}).
enum class Dispatch { kStep, kBlock, kBlockUnchained, kJit };

template <class Hooks>
class Executor {
 public:
  Executor(CpuState& state, Bus& bus, Hooks& hooks)
      : st_(state), bus_(bus), hooks_(hooks) {}

  // Predecoded instruction cache covering [base, base + 4*cache.size()).
  void set_decode_cache(std::uint32_t base,
                        std::span<const isa::DecodedInsn> cache) {
    cache_base_ = base;
    cache_ = cache;
  }

  // Attaches the superblock morph cache. Block dispatch engages only for
  // hook types with kBatchRetire; for all hook types an attached cache also
  // routes stores into the code range through invalidation, so self-modified
  // words are re-decoded instead of executed stale.
  void set_block_cache(BlockCache* cache) { block_cache_ = cache; }

  // Disables block-to-block chaining (Dispatch::kBlockUnchained): every
  // transition resolves through BlockCache::lookup(), reproducing the
  // pre-chaining dispatch loop for A/B measurement.
  void set_chaining(bool on) { chain_ = on; }

  // Requests the JIT tier (Dispatch::kJit). Engages for batch-retire hooks
  // (functional/counting) and for kBlockCost hooks exposing the jit cost
  // interface (the board), and only when jit_available(); in every other
  // combination run() silently stays on the (chained) kBlock path, so kJit
  // is always a safe request.
  void set_jit(bool on) { jit_ = on; }

  // Disables whole-block dispatch while keeping the attached cache's store
  // invalidation live (Dispatch::kStep with a cache attached): every
  // instruction goes through the op switch, but stores into the code range
  // still re-decode the image, so the stepping reference stays
  // architecturally meaningful on self-modifying programs.
  void set_block_dispatch(bool on) { block_dispatch_ = on; }

  // Runs until halt or until `max_insns` more instructions retire.
  // Returns the number of instructions executed in this call.
  std::uint64_t run(std::uint64_t max_insns) {
    std::uint64_t executed = 0;
    if constexpr (Hooks::kBatchRetire && !Hooks::kBlockCost) {
      if (block_cache_ != nullptr && block_dispatch_ && jit_) {
        JitRuntime* jr = block_cache_->ensure_jit();
        if (jr != nullptr) return run_jit(*jr, max_insns);
      }
    }
    if constexpr (Hooks::kBlockCost && kHasJitCostInterface) {
      if (block_cache_ != nullptr && block_dispatch_ && jit_) {
        JitRuntime* jr = block_cache_->ensure_jit();
        if (jr != nullptr) return run_jit_cost(*jr, max_insns);
      }
    }
    if constexpr (Hooks::kBatchRetire || Hooks::kBlockCost) {
      if (block_cache_ != nullptr && block_dispatch_) {
        while (!st_.halted && executed < max_insns) {
          // Block entry requires a sequential pc/npc pair: a delay-slot
          // instruction (npc already redirected) must single-step.
          const std::uint32_t pc = st_.pc;
          if (st_.npc == pc + 4) {
            Block* block = block_cache_->lookup(pc);
            if (block != nullptr && block->len <= max_insns - executed &&
                block_enterable(*block)) {
              // Both modes run the same block loop so A/B timings compare
              // link-following against lookup(), not two code layouts.
              executed += chain_ ? run_blocks<true>(*block, max_insns - executed)
                                 : run_blocks<false>(*block, max_insns - executed);
              continue;
            }
          }
          step();
          ++executed;
        }
        return executed;
      }
    }
    while (!st_.halted && executed < max_insns) {
      step();
      ++executed;
    }
    return executed;
  }

  void step() {
    const std::uint32_t pc = st_.pc;
    // Alignment is checked before the decode-cache lookup: a misaligned pc
    // inside the cached range would otherwise truncate to a word index and
    // execute the wrong instruction instead of faulting.
    if (pc & 3) fatal(pc, "misaligned pc");
    isa::DecodedInsn scratch;
    const isa::DecodedInsn* d;
    const std::uint32_t idx = (pc - cache_base_) / 4;
    if (idx < cache_.size()) {
      d = &cache_[idx];
    } else {
      scratch = isa::decode(bus_.load32(pc));
      d = &scratch;
    }
    execute(*d, pc);
    ++st_.instret;
  }

 private:
  using Op = isa::Op;

  // Detected, not declared: kBlockCost hooks that additionally expose the
  // four-method jit cost interface (the measurement board — see
  // board/hooks.h) may ride Dispatch::kJit with native static-cost
  // retirement and batched residual replay.
  static constexpr bool kHasJitCostInterface =
      requires(Hooks& h, const JitCapture* c) {
        h.jit_counts();
        h.jit_cycles();
        h.jit_replay(c, std::size_t{});
        h.jit_advance_activity(std::uint64_t{});
      };

  // Executes `first` and keeps dispatching successor blocks until a
  // transition fails to resolve, the next block would exceed `budget`,
  // control leaves block dispatch (delay-slot CTI, halt, no block at the
  // target), or a fault unwinds. Returns the number of instructions
  // retired. `budget` is exact: the loop never retires past it, the outer
  // loop single-steps the remainder.
  //
  // With Chained, transitions follow memoized exit edges — chain links or
  // the branch-target cache — and re-enter BlockCache::lookup() only on
  // unresolved edges (memoizing the result). Without, every transition is a
  // plain lookup(): the pre-chaining dispatch loop, kept in this one
  // function so the A/B pair differs only in edge resolution.
  // kBlockCost hooks own a per-block cost profile: a block may only enter
  // whole-block dispatch once the hook has built (and accepted) its profile.
  // Blocks the hook refuses — e.g. containing instructions whose retire
  // guards must fault at the exact offending instruction — single-step.
  bool block_enterable(Block& block) {
    if constexpr (Hooks::kBlockCost) {
      return hooks_.ensure_block_cost(block);
    } else {
      return true;
    }
  }

  template <bool Chained>
  std::uint64_t run_blocks(Block& first, std::uint64_t budget) {
    Block* block = &first;
    std::uint64_t executed = 0;
    for (;;) {
      if constexpr (Hooks::kBlockCost) {
        exec_block_cost(*block);
      } else {
        exec_block(*block);
      }
      executed += block->len;
      Block* const prev = block;
      if (prev->ends_with_cti && st_.npc != st_.pc + 4) {
        // True delay slot (npc redirected): single-step it. It may fault,
        // halt, or itself be a CTI — only a sequential pc/npc pair may
        // continue the chain.
        if (executed >= budget) return executed;
        step();
        ++executed;
        if (st_.halted || st_.npc != st_.pc + 4) return executed;
      }
      const std::uint32_t pc = st_.pc;
      Block* next;
      if constexpr (Chained) {
        next = prev->chain_next(pc);
        if (next != nullptr) {
          block_cache_->count_chain_hit();
        } else {
          if (prev->indirect_exit) next = block_cache_->btc_lookup(pc);
          if (next == nullptr) {
            // A store inside prev's own trace may have flushed it; the
            // fallback lookup can morph and thereby drain the graveyard
            // keeping a dead prev alive, so decide link eligibility first.
            const bool prev_live = !prev->dead;
            next = block_cache_->lookup_fallback(pc);
            if (next == nullptr) return executed;
            if (prev_live) {
              if (prev->indirect_exit) {
                block_cache_->btc_insert(pc, next);
              } else {
                block_cache_->install_link(*prev, pc, *next);
              }
            }
          }
        }
      } else {
        next = block_cache_->lookup(pc);
        if (next == nullptr) return executed;
      }
      if (next->len > budget - executed) return executed;
      if (!block_enterable(*next)) return executed;
      block = next;
    }
  }

  // Dispatch::kJit host loop. Native code covers intra-block execution,
  // batched retire/instret accounting, and patched block-to-block chaining;
  // this loop covers everything else: delay slots (single-step), pcs with no
  // block, rejected blocks (exec_block, the per-block kBlock fallback),
  // budget tails, transition patching, and fault reconciliation.
  std::uint64_t run_jit(JitRuntime& jr, std::uint64_t max_insns) {
    jr.configure(&st_, counts_ptr());
    std::uint64_t executed = 0;
    while (!st_.halted && executed < max_insns) {
      const std::uint32_t pc = st_.pc;
      if (st_.npc != pc + 4) {  // delay slot: single-step
        step();
        ++executed;
        continue;
      }
      // The source side of transition patching must be latched before
      // lookup(): a morph may drain the graveyard and free a flushed
      // predecessor (last_block() filters dead metas for exactly that).
      Block* const prev = jr.last_block();
      Block* block = block_cache_->lookup(pc);
      if (block == nullptr) {
        step();
        ++executed;
        continue;
      }
      const std::uint64_t budget = max_insns - executed;
      if (block->len > budget) {
        step();
        ++executed;
        continue;
      }
      if (jr.ensure_compiled(*block) != Block::JitState::kCompiled) {
        exec_block(*block);  // rejected (FPU): kBlock fallback for one block
        executed += block->len;
        continue;
      }
      if (prev != nullptr && prev->jit_state == Block::JitState::kCompiled) {
        if (prev->indirect_exit) {
          // Register-indirect exits are not rel32-patchable; memoize the
          // resolved target in the inline BTC the emitted probe consults.
          jr.btc_insert(pc, *block);
        } else {
          jr.patch_transition(*prev->jit_meta, pc, *block);
        }
      }
      const std::uint64_t remaining = jr.enter(*block, budget);
      if (jr.faulted()) {
        const auto [meta, idx] = jr.take_fault();
        // The faulting block may have been flushed mid-flight (it stored
        // over itself before faulting); its Block object is still alive in
        // the graveyard — no lookup() has run since the native entry.
        const Block* fb = meta->block;
        // The faulting block's prologue claimed its full length from the
        // budget but only idx records retired; earlier blocks in the chain
        // settled their own accounting at their exits. Same protocol as
        // exec_block: state at the faulting instruction, prefix retired
        // through the per-instruction hook.
        executed += (budget - remaining) - (meta->len - idx);
        st_.pc = meta->start + 4 * idx;
        st_.npc = st_.pc + 4;
        st_.instret += idx;
        for (std::uint32_t j = 0; j < idx; ++j) {
          isa::DecodedInsn d;
          d.op = static_cast<Op>(fb->code[j].op);
          hooks_.on_retire(d, RetireInfo{});
        }
        std::rethrow_exception(jr.take_exception());
      }
      executed += budget - remaining;
    }
    return executed;
  }

  // Dispatch::kJit host loop for kBlockCost hooks (the measurement board).
  // Native code settles the per-op retire counters and the profile's static
  // base cycles at block exits and appends the tagged dynamic-residual
  // operand pairs into the runtime's capture buffer; after every native
  // entry this loop drains the buffer through the hook's residual-replay
  // kernel — in program order, so floating-point energy accumulation
  // matches the interpreted paths bit-for-bit — and advances switching
  // activity once over the whole batch (the activity stream is a pure
  // function of cumulative advanced cycles, so batching is exact).
  std::uint64_t run_jit_cost(JitRuntime& jr, std::uint64_t max_insns) {
    jr.configure_cost(&st_, hooks_.jit_counts(), hooks_.jit_cycles());
    std::uint64_t executed = 0;
    while (!st_.halted && executed < max_insns) {
      const std::uint32_t pc = st_.pc;
      if (st_.npc != pc + 4) {  // delay slot: single-step
        step();
        ++executed;
        continue;
      }
      Block* const prev = jr.last_block();
      Block* block = block_cache_->lookup(pc);
      if (block == nullptr) {
        step();
        ++executed;
        continue;
      }
      const std::uint64_t budget = max_insns - executed;
      if (block->len > budget) {
        step();
        ++executed;
        continue;
      }
      // Cost profile before compilation: the compiler bakes the profile's
      // base cycles and residual map into the emitted code, so a block may
      // only compile once its profile is ready (and accepted).
      if (!block_enterable(*block)) {
        step();
        ++executed;
        continue;
      }
      if (jr.ensure_compiled(*block) != Block::JitState::kCompiled) {
        exec_block_cost(*block);  // rejected (FPU): kBlock fallback
        executed += block->len;
        continue;
      }
      // Cost-mode blocks never fold delay slots, so register-indirect exits
      // always end in a delay-pending state handled by the host; only
      // rel32-patchable static edges chain natively here.
      if (prev != nullptr && prev->jit_state == Block::JitState::kCompiled &&
          !prev->indirect_exit) {
        jr.patch_transition(*prev->jit_meta, pc, *block);
      }
      const std::uint64_t mark = *hooks_.jit_cycles();
      const std::uint64_t remaining = jr.enter(*block, budget);
      if (jr.faulted()) {
        const auto [meta, idx] = jr.take_fault();
        const Block* fb = meta->block;
        const auto caps = jr.drain_captures();
        // Captures appended by the faulting block's completed prefix belong
        // to the per-instruction prefix retire below, not the batch replay:
        // the faulting block settled neither counts nor base cycles (both
        // are exit-batched), so its prefix retires through the full per-op
        // hook, exactly as exec_block_cost reconciles.
        std::size_t prefix = 0;
        for (const auto& r : fb->cost.residuals) {
          if (r.index >= idx) break;
          ++prefix;
        }
        hooks_.jit_replay(caps.data(), caps.size() - prefix);
        hooks_.jit_advance_activity(mark);
        executed += (budget - remaining) - (meta->len - idx);
        st_.pc = meta->start + 4 * idx;
        st_.npc = st_.pc + 4;
        st_.instret += idx;
        const JitCapture* tail = caps.data() + (caps.size() - prefix);
        std::size_t cursor = 0;
        auto rit = fb->cost.residuals.begin();
        for (std::uint32_t j = 0; j < idx; ++j) {
          CapturedOp cap{};
          if (rit != fb->cost.residuals.end() && rit->index == j) {
            cap = CapturedOp{tail[cursor].a, tail[cursor].b};
            ++cursor;
            ++rit;
          }
          hooks_.on_retire_captured(static_cast<Op>(fb->code[j].op), cap);
        }
        std::rethrow_exception(jr.take_exception());
      }
      const auto caps = jr.drain_captures();
      hooks_.jit_replay(caps.data(), caps.size());
      hooks_.jit_advance_activity(mark);
      executed += budget - remaining;
    }
    return executed;
  }

  // The retire-counter vector emitted code bumps at block exits; hooks
  // without a counts array (NullHooks) run uncounted native code.
  std::uint64_t* counts_ptr() {
    if constexpr (requires { hooks_.counts; }) {
      return hooks_.counts.data();
    } else {
      return nullptr;
    }
  }

  // Executes one morphed superblock: per-record function-pointer dispatch,
  // a single pc/npc update at block exit, and one batched retire. On a fault
  // the architectural state is restored to the faulting instruction and the
  // completed prefix retires through the per-instruction hook, so instret
  // and op counts stay identical to the stepping path.
  void exec_block(const Block& block) {
    const MorphInsn* code = block.code.data();
    MorphCtx ctx{st_, bus_, *block_cache_, block.start, code, st_.instret};
    const std::uint32_t n = block.len;
    std::uint32_t i = 0;
    try {
      // instret is batched like the retire accounting (one add at block
      // exit); handlers that can observe it mid-block (MMIO word loads)
      // restore the exact value via MorphCtx::sync_instret first.
      for (; i < n; ++i) code[i].fn(code[i], ctx);
    } catch (...) {
      st_.pc = block.start + 4 * i;
      st_.npc = st_.pc + 4;
      st_.instret = ctx.entry_instret + i;
      for (std::uint32_t j = 0; j < i; ++j) {
        isa::DecodedInsn d;
        d.op = static_cast<Op>(code[j].op);
        hooks_.on_retire(d, RetireInfo{});
      }
      throw;
    }
    // A terminating CTI record has already written pc/npc (delay-slot
    // semantics); only straight-line blocks exit sequentially.
    if (!block.ends_with_cti) {
      st_.pc = block.start + 4 * n;
      st_.npc = st_.pc + 4;
    }
    st_.instret = ctx.entry_instret + n;
    hooks_.on_retire_block(block.profile.data(), block.profile.size(), n);
  }

  // exec_block for kBlockCost hooks: same dispatch loop, but every handler
  // additionally records its retire operands into the capture buffer (the
  // cache morphs capture variants when the hook attached — see
  // BlockCache::set_capture), and the block retires through the cost-profile
  // hook, which applies the precomputed static cost in one shot and replays
  // only the flagged residual subset against the captured operands. On a
  // fault the completed prefix retires per instruction from the captures, so
  // cost accounting stays bit-identical to the stepping path.
  void exec_block_cost(const Block& block) {
    const MorphInsn* code = block.code.data();
    MorphCtx ctx{st_, bus_,         *block_cache_, block.start,
                 code, st_.instret, capture_.data()};
    const std::uint32_t n = block.len;
    std::uint32_t i = 0;
    try {
      for (; i < n; ++i) code[i].fn(code[i], ctx);
    } catch (...) {
      st_.pc = block.start + 4 * i;
      st_.npc = st_.pc + 4;
      st_.instret = ctx.entry_instret + i;
      // Blocks with retire-guarded instructions never enter this path
      // (ensure_block_cost refuses them), so the prefix retire is pure
      // accounting replay.
      for (std::uint32_t j = 0; j < i; ++j) {
        hooks_.on_retire_captured(static_cast<Op>(code[j].op), capture_[j]);
      }
      throw;
    }
    if (!block.ends_with_cti) {
      st_.pc = block.start + 4 * n;
      st_.npc = st_.pc + 4;
    }
    st_.instret = ctx.entry_instret + n;
    hooks_.on_retire_block_cost(block, capture_.data());
  }

  // Store paths call this when a block cache is attached: a store landing in
  // the code range re-decodes the words and flushes overlapping blocks.
  void invalidate_stored(Op op, std::uint32_t ea) const {
    std::uint32_t width = 4;
    switch (op) {
      case Op::kStb: width = 1; break;
      case Op::kSth: width = 2; break;
      case Op::kStd: case Op::kStdf: width = 8; break;
      default: break;
    }
    if (block_cache_->covers_code(ea) ||
        block_cache_->covers_code(ea + width - 1)) {
      block_cache_->invalidate(ea, width);
    }
  }

  [[noreturn]] void fatal(std::uint32_t pc, const std::string& what) const {
    char buf[64];
    std::snprintf(buf, sizeof buf, " at pc=0x%08x", pc);
    throw SimError("sim error: " + what + buf);
  }

  void advance() {
    st_.pc = st_.npc;
    st_.npc += 4;
  }

  void set_r(std::uint8_t rd, std::uint32_t value) {
    st_.r[rd] = value;
    st_.r[0] = 0;
  }

  std::uint32_t operand2(const isa::DecodedInsn& d) const {
    return d.has_imm ? static_cast<std::uint32_t>(d.imm) : st_.r[d.rs2];
  }

  void retire(const isa::DecodedInsn& d, const RetireInfo& info) {
    hooks_.on_retire(d, info);
  }

  void retire_simple(const isa::DecodedInsn& d, std::uint32_t pc,
                     std::uint32_t a, std::uint32_t b, std::uint32_t result) {
    if constexpr (Hooks::kWantsDetail) {
      RetireInfo info;
      info.pc = pc;
      info.a = a;
      info.b = b;
      info.result = result;
      retire(d, info);
    } else {
      retire(d, RetireInfo{});
    }
  }

  void set_icc_logic(std::uint32_t result) {
    st_.icc_n = (result >> 31) != 0;
    st_.icc_z = result == 0;
    st_.icc_v = false;
    st_.icc_c = false;
  }

  void set_icc_add(std::uint32_t a, std::uint32_t b, std::uint64_t wide) {
    const auto result = static_cast<std::uint32_t>(wide);
    st_.icc_n = (result >> 31) != 0;
    st_.icc_z = result == 0;
    st_.icc_c = (wide >> 32) != 0;
    st_.icc_v = (((~(a ^ b)) & (a ^ result)) >> 31) != 0;
  }

  void set_icc_sub(std::uint32_t a, std::uint32_t b, std::uint32_t borrow_in) {
    const std::uint32_t result = a - b - borrow_in;
    st_.icc_n = (result >> 31) != 0;
    st_.icc_z = result == 0;
    st_.icc_c = static_cast<std::uint64_t>(a) <
                static_cast<std::uint64_t>(b) + borrow_in;
    st_.icc_v = (((a ^ b) & (a ^ result)) >> 31) != 0;
  }

  // Truncating double->int32 conversion with saturation (defined behaviour
  // for out-of-range values; workloads never rely on the saturated cases).
  static std::int32_t to_int32(double value) {
    if (std::isnan(value)) return 0;
    if (value >= 2147483648.0) return std::numeric_limits<std::int32_t>::max();
    if (value < -2147483648.0) return std::numeric_limits<std::int32_t>::min();
    return static_cast<std::int32_t>(value);
  }

  void execute(const isa::DecodedInsn& d, std::uint32_t pc) {
    switch (d.op) {
      // ---- ALU ------------------------------------------------------------
      case Op::kAdd: case Op::kAddcc: case Op::kAddx: case Op::kAddxcc: {
        const std::uint32_t a = st_.r[d.rs1];
        const std::uint32_t b = operand2(d);
        const std::uint32_t cin =
            (d.op == Op::kAddx || d.op == Op::kAddxcc) && st_.icc_c ? 1 : 0;
        const std::uint64_t wide =
            std::uint64_t{a} + b + cin;
        if (d.op == Op::kAddcc || d.op == Op::kAddxcc) set_icc_add(a, b, wide);
        set_r(d.rd, static_cast<std::uint32_t>(wide));
        retire_simple(d, pc, a, b, static_cast<std::uint32_t>(wide));
        advance();
        return;
      }
      case Op::kSub: case Op::kSubcc: case Op::kSubx: case Op::kSubxcc: {
        const std::uint32_t a = st_.r[d.rs1];
        const std::uint32_t b = operand2(d);
        const std::uint32_t bin =
            (d.op == Op::kSubx || d.op == Op::kSubxcc) && st_.icc_c ? 1 : 0;
        const std::uint32_t result = a - b - bin;
        if (d.op == Op::kSubcc || d.op == Op::kSubxcc) set_icc_sub(a, b, bin);
        set_r(d.rd, result);
        retire_simple(d, pc, a, b, result);
        advance();
        return;
      }
      case Op::kAnd: case Op::kAndcc: case Op::kAndn: case Op::kAndncc:
      case Op::kOr: case Op::kOrcc: case Op::kOrn: case Op::kOrncc:
      case Op::kXor: case Op::kXorcc: case Op::kXnor: case Op::kXnorcc: {
        const std::uint32_t a = st_.r[d.rs1];
        const std::uint32_t b = operand2(d);
        std::uint32_t result = 0;
        bool cc = false;
        switch (d.op) {
          case Op::kAndcc: cc = true; [[fallthrough]];
          case Op::kAnd: result = a & b; break;
          case Op::kAndncc: cc = true; [[fallthrough]];
          case Op::kAndn: result = a & ~b; break;
          case Op::kOrcc: cc = true; [[fallthrough]];
          case Op::kOr: result = a | b; break;
          case Op::kOrncc: cc = true; [[fallthrough]];
          case Op::kOrn: result = a | ~b; break;
          case Op::kXorcc: cc = true; [[fallthrough]];
          case Op::kXor: result = a ^ b; break;
          case Op::kXnorcc: cc = true; [[fallthrough]];
          case Op::kXnor: result = ~(a ^ b); break;
          default: break;
        }
        if (cc) set_icc_logic(result);
        set_r(d.rd, result);
        retire_simple(d, pc, a, b, result);
        advance();
        return;
      }
      case Op::kSll: case Op::kSrl: case Op::kSra: {
        const std::uint32_t a = st_.r[d.rs1];
        const std::uint32_t count = operand2(d) & 31;
        std::uint32_t result;
        if (d.op == Op::kSll) {
          result = a << count;
        } else if (d.op == Op::kSrl) {
          result = a >> count;
        } else {
          result = static_cast<std::uint32_t>(
              static_cast<std::int32_t>(a) >> count);
        }
        set_r(d.rd, result);
        retire_simple(d, pc, a, count, result);
        advance();
        return;
      }
      case Op::kUmul: case Op::kUmulcc: case Op::kSmul: case Op::kSmulcc: {
        const std::uint32_t a = st_.r[d.rs1];
        const std::uint32_t b = operand2(d);
        std::uint64_t wide;
        if (d.op == Op::kUmul || d.op == Op::kUmulcc) {
          wide = std::uint64_t{a} * b;
        } else {
          wide = static_cast<std::uint64_t>(
              std::int64_t{static_cast<std::int32_t>(a)} *
              static_cast<std::int32_t>(b));
        }
        st_.y = static_cast<std::uint32_t>(wide >> 32);
        const auto result = static_cast<std::uint32_t>(wide);
        if (d.op == Op::kUmulcc || d.op == Op::kSmulcc) set_icc_logic(result);
        set_r(d.rd, result);
        retire_simple(d, pc, a, b, result);
        advance();
        return;
      }
      case Op::kUdiv: case Op::kUdivcc: {
        const std::uint32_t b = operand2(d);
        if (b == 0) fatal(pc, "integer division by zero");
        const std::uint64_t dividend =
            (std::uint64_t{st_.y} << 32) | st_.r[d.rs1];
        std::uint64_t q = dividend / b;
        bool overflow = false;
        if (q > 0xFFFFFFFFull) {
          q = 0xFFFFFFFFull;
          overflow = true;
        }
        const auto result = static_cast<std::uint32_t>(q);
        if (d.op == Op::kUdivcc) {
          set_icc_logic(result);
          st_.icc_v = overflow;
        }
        set_r(d.rd, result);
        retire_simple(d, pc, st_.r[d.rs1], b, result);
        advance();
        return;
      }
      case Op::kSdiv: case Op::kSdivcc: {
        const std::uint32_t b = operand2(d);
        if (b == 0) fatal(pc, "integer division by zero");
        const auto dividend = static_cast<std::int64_t>(
            (std::uint64_t{st_.y} << 32) | st_.r[d.rs1]);
        std::int64_t q = dividend / static_cast<std::int32_t>(b);
        bool overflow = false;
        if (q > std::numeric_limits<std::int32_t>::max()) {
          q = std::numeric_limits<std::int32_t>::max();
          overflow = true;
        } else if (q < std::numeric_limits<std::int32_t>::min()) {
          q = std::numeric_limits<std::int32_t>::min();
          overflow = true;
        }
        const auto result = static_cast<std::uint32_t>(q);
        if (d.op == Op::kSdivcc) {
          set_icc_logic(result);
          st_.icc_v = overflow;
        }
        set_r(d.rd, result);
        retire_simple(d, pc, st_.r[d.rs1], b, result);
        advance();
        return;
      }
      case Op::kRdy:
        set_r(d.rd, st_.y);
        retire_simple(d, pc, st_.y, 0, st_.y);
        advance();
        return;
      case Op::kWry:
        st_.y = st_.r[d.rs1] ^ operand2(d);
        retire_simple(d, pc, st_.r[d.rs1], operand2(d), st_.y);
        advance();
        return;
      case Op::kSave: case Op::kRestore: {
        // Flat register model: plain add without window rotation.
        const std::uint32_t a = st_.r[d.rs1];
        const std::uint32_t b = operand2(d);
        set_r(d.rd, a + b);
        retire_simple(d, pc, a, b, a + b);
        advance();
        return;
      }
      case Op::kSethi:
        set_r(d.rd, static_cast<std::uint32_t>(d.imm));
        retire_simple(d, pc, 0, static_cast<std::uint32_t>(d.imm),
                      static_cast<std::uint32_t>(d.imm));
        advance();
        return;
      case Op::kNop:
        retire_simple(d, pc, 0, 0, 0);
        advance();
        return;

      // ---- memory ----------------------------------------------------------
      case Op::kLd: case Op::kLdub: case Op::kLdsb: case Op::kLduh:
      case Op::kLdsh: case Op::kLdd: case Op::kLdf: case Op::kLddf: {
        const std::uint32_t ea = st_.r[d.rs1] + operand2(d);
        std::uint32_t data = 0;
        switch (d.op) {
          case Op::kLd:
            check_align(ea, 4, pc);
            data = bus_.load32(ea);
            set_r(d.rd, data);
            break;
          case Op::kLdub:
            data = bus_.load8(ea);
            set_r(d.rd, data);
            break;
          case Op::kLdsb:
            data = static_cast<std::uint32_t>(
                static_cast<std::int32_t>(static_cast<std::int8_t>(bus_.load8(ea))));
            set_r(d.rd, data);
            break;
          case Op::kLduh:
            check_align(ea, 2, pc);
            data = bus_.load16(ea);
            set_r(d.rd, data);
            break;
          case Op::kLdsh:
            check_align(ea, 2, pc);
            data = static_cast<std::uint32_t>(static_cast<std::int32_t>(
                static_cast<std::int16_t>(bus_.load16(ea))));
            set_r(d.rd, data);
            break;
          case Op::kLdd: {
            check_align(ea, 8, pc);
            if (d.rd & 1) fatal(pc, "ldd with odd rd");
            set_r(d.rd, bus_.load32(ea));
            data = bus_.load32(ea + 4);
            set_r(d.rd + 1, data);
            break;
          }
          case Op::kLdf:
            check_align(ea, 4, pc);
            data = bus_.load32(ea);
            st_.f[d.rd] = data;
            break;
          case Op::kLddf: {
            check_align(ea, 8, pc);
            if (d.rd & 1) fatal(pc, "lddf with odd rd");
            st_.f[d.rd] = bus_.load32(ea);
            data = bus_.load32(ea + 4);
            st_.f[d.rd + 1] = data;
            break;
          }
          default: break;
        }
        retire_mem(d, pc, ea, data);
        advance();
        return;
      }
      case Op::kSt: case Op::kStb: case Op::kSth: case Op::kStd:
      case Op::kStf: case Op::kStdf: {
        const std::uint32_t ea = st_.r[d.rs1] + operand2(d);
        std::uint32_t data = 0;
        switch (d.op) {
          case Op::kSt:
            check_align(ea, 4, pc);
            data = st_.r[d.rd];
            bus_.store32(ea, data);
            break;
          case Op::kStb:
            data = st_.r[d.rd] & 0xFF;
            bus_.store8(ea, static_cast<std::uint8_t>(data));
            break;
          case Op::kSth:
            check_align(ea, 2, pc);
            data = st_.r[d.rd] & 0xFFFF;
            bus_.store16(ea, static_cast<std::uint16_t>(data));
            break;
          case Op::kStd:
            check_align(ea, 8, pc);
            if (d.rd & 1) fatal(pc, "std with odd rd");
            bus_.store32(ea, st_.r[d.rd]);
            data = st_.r[d.rd + 1];
            bus_.store32(ea + 4, data);
            break;
          case Op::kStf:
            check_align(ea, 4, pc);
            data = st_.f[d.rd];
            bus_.store32(ea, data);
            break;
          case Op::kStdf:
            check_align(ea, 8, pc);
            if (d.rd & 1) fatal(pc, "stdf with odd rd");
            bus_.store32(ea, st_.f[d.rd]);
            data = st_.f[d.rd + 1];
            bus_.store32(ea + 4, data);
            break;
          default: break;
        }
        if (block_cache_ != nullptr) invalidate_stored(d.op, ea);
        retire_mem(d, pc, ea, data);
        advance();
        return;
      }

      // ---- control ----------------------------------------------------------
      case Op::kBicc: case Op::kFbfcc: {
        const bool taken =
            d.op == Op::kBicc
                ? st_.eval_cond(static_cast<isa::Cond>(d.cond))
                : st_.eval_fcond(static_cast<isa::FCond>(d.cond));
        const std::uint32_t target = pc + static_cast<std::uint32_t>(d.imm);
        const bool always = d.cond == 8;
        const bool annul_delay = d.annul && (always || !taken);
        if (annul_delay) {
          st_.pc = taken ? target : st_.npc + 4;
          st_.npc = st_.pc + 4;
        } else {
          st_.pc = st_.npc;
          st_.npc = taken ? target : st_.npc + 4;
        }
        retire_branch(d, pc, taken);
        return;
      }
      case Op::kCall: {
        set_r(isa::kRegO7, pc);
        const std::uint32_t target = pc + static_cast<std::uint32_t>(d.imm);
        st_.pc = st_.npc;
        st_.npc = target;
        retire_branch(d, pc, true);
        return;
      }
      case Op::kJmpl: {
        const std::uint32_t target = st_.r[d.rs1] + operand2(d);
        if (target & 3) fatal(pc, "jmpl to misaligned address");
        set_r(d.rd, pc);
        st_.pc = st_.npc;
        st_.npc = target;
        retire_branch(d, pc, true);
        return;
      }
      case Op::kTicc: {
        const bool taken = st_.eval_cond(static_cast<isa::Cond>(d.cond));
        if (taken) {
          const std::int32_t trap =
              static_cast<std::int32_t>(st_.r[d.rs1] + operand2(d)) & 0x7F;
          if (trap == kTrapHalt) {
            st_.halted = true;
            st_.exit_code = st_.r[8];  // %o0
          } else {
            fatal(pc, "unhandled software trap " + std::to_string(trap));
          }
        }
        retire_branch(d, pc, taken);
        if (!st_.halted) advance();
        return;
      }

      // ---- FPU ---------------------------------------------------------------
      case Op::kFadds: case Op::kFsubs: case Op::kFmuls: case Op::kFdivs: {
        const float a = st_.read_s(d.rs1);
        const float b = st_.read_s(d.rs2);
        float result = 0;
        switch (d.op) {
          case Op::kFadds: result = a + b; break;
          case Op::kFsubs: result = a - b; break;
          case Op::kFmuls: result = a * b; break;
          case Op::kFdivs: result = a / b; break;
          default: break;
        }
        st_.write_s(d.rd, result);
        retire_fp(d, pc, st_.f[d.rs1], st_.f[d.rs2], st_.f[d.rd]);
        advance();
        return;
      }
      case Op::kFaddd: case Op::kFsubd: case Op::kFmuld: case Op::kFdivd: {
        const double a = st_.read_d(d.rs1);
        const double b = st_.read_d(d.rs2);
        double result = 0;
        switch (d.op) {
          case Op::kFaddd: result = a + b; break;
          case Op::kFsubd: result = a - b; break;
          case Op::kFmuld: result = a * b; break;
          case Op::kFdivd: result = a / b; break;
          default: break;
        }
        st_.write_d(d.rd, result);
        retire_fp(d, pc, st_.f[d.rs1], st_.f[d.rs2], st_.f[d.rd]);
        advance();
        return;
      }
      case Op::kFsqrts:
        st_.write_s(d.rd, std::sqrt(st_.read_s(d.rs2)));
        retire_fp(d, pc, 0, st_.f[d.rs2], st_.f[d.rd]);
        advance();
        return;
      case Op::kFsqrtd:
        st_.write_d(d.rd, std::sqrt(st_.read_d(d.rs2)));
        retire_fp(d, pc, 0, st_.f[d.rs2], st_.f[d.rd]);
        advance();
        return;
      case Op::kFmovs:
        st_.f[d.rd] = st_.f[d.rs2];
        retire_fp(d, pc, 0, st_.f[d.rs2], st_.f[d.rd]);
        advance();
        return;
      case Op::kFnegs:
        st_.f[d.rd] = st_.f[d.rs2] ^ 0x80000000u;
        retire_fp(d, pc, 0, st_.f[d.rs2], st_.f[d.rd]);
        advance();
        return;
      case Op::kFabss:
        st_.f[d.rd] = st_.f[d.rs2] & 0x7FFFFFFFu;
        retire_fp(d, pc, 0, st_.f[d.rs2], st_.f[d.rd]);
        advance();
        return;
      case Op::kFitos:
        st_.write_s(d.rd, static_cast<float>(
                              static_cast<std::int32_t>(st_.f[d.rs2])));
        retire_fp(d, pc, 0, st_.f[d.rs2], st_.f[d.rd]);
        advance();
        return;
      case Op::kFitod:
        st_.write_d(d.rd, static_cast<double>(
                              static_cast<std::int32_t>(st_.f[d.rs2])));
        retire_fp(d, pc, 0, st_.f[d.rs2], st_.f[d.rd]);
        advance();
        return;
      case Op::kFstoi:
        st_.f[d.rd] = static_cast<std::uint32_t>(
            to_int32(static_cast<double>(st_.read_s(d.rs2))));
        retire_fp(d, pc, 0, st_.f[d.rs2], st_.f[d.rd]);
        advance();
        return;
      case Op::kFdtoi:
        st_.f[d.rd] =
            static_cast<std::uint32_t>(to_int32(st_.read_d(d.rs2)));
        retire_fp(d, pc, 0, st_.f[d.rs2], st_.f[d.rd]);
        advance();
        return;
      case Op::kFstod:
        st_.write_d(d.rd, static_cast<double>(st_.read_s(d.rs2)));
        retire_fp(d, pc, 0, st_.f[d.rs2], st_.f[d.rd]);
        advance();
        return;
      case Op::kFdtos:
        st_.write_s(d.rd, static_cast<float>(st_.read_d(d.rs2)));
        retire_fp(d, pc, 0, st_.f[d.rs2], st_.f[d.rd]);
        advance();
        return;
      case Op::kFcmps: case Op::kFcmpd: {
        double a, b;
        if (d.op == Op::kFcmps) {
          a = st_.read_s(d.rs1);
          b = st_.read_s(d.rs2);
        } else {
          a = st_.read_d(d.rs1);
          b = st_.read_d(d.rs2);
        }
        if (std::isnan(a) || std::isnan(b)) {
          st_.fcc = 3;
        } else if (a == b) {
          st_.fcc = 0;
        } else if (a < b) {
          st_.fcc = 1;
        } else {
          st_.fcc = 2;
        }
        retire_fp(d, pc, st_.f[d.rs1], st_.f[d.rs2], st_.fcc);
        advance();
        return;
      }

      case Op::kInvalid:
      default:
        fatal(pc, "illegal instruction " + isa::disassemble(d, pc));
    }
  }

  void retire_mem(const isa::DecodedInsn& d, std::uint32_t pc,
                  std::uint32_t ea, std::uint32_t data) {
    if constexpr (Hooks::kWantsDetail) {
      RetireInfo info;
      info.pc = pc;
      info.ea = ea;
      info.mem_data = data;
      retire(d, info);
    } else {
      retire(d, RetireInfo{});
    }
  }

  void retire_branch(const isa::DecodedInsn& d, std::uint32_t pc, bool taken) {
    if constexpr (Hooks::kWantsDetail) {
      RetireInfo info;
      info.pc = pc;
      info.taken = taken;
      retire(d, info);
    } else {
      retire(d, RetireInfo{});
    }
  }

  void retire_fp(const isa::DecodedInsn& d, std::uint32_t pc, std::uint32_t a,
                 std::uint32_t b, std::uint32_t result) {
    retire_simple(d, pc, a, b, result);
  }

  void check_align(std::uint32_t ea, std::uint32_t align, std::uint32_t pc) {
    if (ea & (align - 1)) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "misaligned %u-byte access to 0x%08x",
                    align, ea);
      fatal(pc, buf);
    }
  }

  CpuState& st_;
  Bus& bus_;
  Hooks& hooks_;
  std::uint32_t cache_base_ = 0;
  std::span<const isa::DecodedInsn> cache_;
  BlockCache* block_cache_ = nullptr;
  bool chain_ = true;
  bool block_dispatch_ = true;
  bool jit_ = false;
  // Per-block retire-operand capture buffer (kBlockCost dispatch only);
  // record i of the running block writes its operand pair to capture_[i].
  std::array<CapturedOp, BlockCache::kMaxBlockLen> capture_{};
};

}  // namespace nfp::sim
