#include "sim/bus.h"

#include <bit>
#include <cstdio>
#include <cstring>

namespace nfp::sim {

void Bus::write_block(std::uint32_t addr, const std::uint8_t* data,
                      std::size_t size) {
  if (!in_ram(addr) || addr - kRamBase + size > kRamSize) {
    throw_bad(addr, "host block write");
  }
  std::memcpy(&ram_[addr - kRamBase], data, size);
  if (size != 0) {
    // A bulk write can span many pages; mark every one of them.
    for (std::uint32_t page = (addr - kRamBase) >> kPageShift;
         page <= (addr - kRamBase + size - 1) >> kPageShift; ++page) {
      touched_[page] = 1;
    }
  }
}

std::vector<std::uint8_t> Bus::read_block(std::uint32_t addr,
                                          std::size_t size) const {
  if (!in_ram(addr) || addr - kRamBase + size > kRamSize) {
    throw_bad(addr, "host block read");
  }
  return {ram_.begin() + (addr - kRamBase),
          ram_.begin() + (addr - kRamBase) + size};
}

void Bus::write_f64(std::uint32_t addr, double value) {
  const auto bits = std::bit_cast<std::uint64_t>(value);
  store32(addr, static_cast<std::uint32_t>(bits >> 32));
  store32(addr + 4, static_cast<std::uint32_t>(bits));
}

double Bus::read_f64(std::uint32_t addr) {
  const std::uint64_t bits =
      (std::uint64_t{load32(addr)} << 32) | load32(addr + 4);
  return std::bit_cast<double>(bits);
}

std::uint32_t Bus::mmio_load(std::uint32_t addr) {
  switch (addr) {
    case kUartTx:
      return 0;
    case kTimerLo:
      return time_source_ ? static_cast<std::uint32_t>(time_source_()) : 0;
    case kTimerHi:
      return time_source_ ? static_cast<std::uint32_t>(time_source_() >> 32)
                          : 0;
    case kInstretLo:
      return instret_source_ ? static_cast<std::uint32_t>(instret_source_())
                             : 0;
    case kInstretHi:
      return instret_source_
                 ? static_cast<std::uint32_t>(instret_source_() >> 32)
                 : 0;
    default:
      throw_bad(addr, "MMIO load");
  }
}

void Bus::mmio_store(std::uint32_t addr, std::uint32_t value) {
  switch (addr) {
    case kUartTx:
      uart_.push_back(static_cast<char>(value & 0xFF));
      return;
    default:
      throw_bad(addr, "MMIO store");
  }
}

void Bus::throw_bad(std::uint32_t addr, const char* what) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "bus error: %s at 0x%08x", what, addr);
  throw SimError(buf);
}

}  // namespace nfp::sim
