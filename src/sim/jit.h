// x86-64 template JIT tier above the superblock morph cache
// (Dispatch::kJit — see docs/jit.md).
//
// Each morphed superblock is compiled once into straight-line x86-64: SPARC
// architectural state stays in the CpuState struct whose address is pinned
// in %rbx for the whole native run, the RAM base pointer in %r12, the
// remaining instruction budget in %r13 and the JitRt anchor in %r14, so the
// per-instruction templates are two-to-four host instructions against
// [%rbx + offset] operands. instret and the per-op retire counters are
// batched to one add per counter per block exit, and resolved block-to-block
// transitions are patched directly into the emitted code (a `jmp rel32`
// over the exit stub), so hot loops never return to the host dispatch loop.
//
// Anything the templates do not model — MMIO, sub-word accesses off RAM,
// division, odd-rd doubleword forms, every faulting edge — funnels through
// one generic helper that re-executes the record via the block's own morph
// handler, which makes the slow path interpreter-identical by construction.
// Blocks containing FPU work are not compiled at all (Block::JitState::
// kRejected); the executor runs them through exec_block, the per-block
// fallback to kBlock. On non-x86-64 hosts (or when the executable arena
// cannot be mapped) jit_available() is false and the executor stays on the
// chained-block path entirely.
#pragma once

#include <array>
#include <cstdint>
#include <exception>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "sim/block_cache.h"
#include "sim/bus.h"
#include "sim/cpu_state.h"

// The backend emits and executes x86-64 code via an anonymous W^X mmap; it
// is compiled in only on x86-64 Linux hosts. Everywhere else (and when
// NFP_JIT_DISABLED is defined, e.g. by a sanitizer preset) the stubs below
// report the jit unavailable and the executor degrades to kBlock.
#if defined(__x86_64__) && defined(__linux__) && !defined(NFP_JIT_DISABLED)
#define NFP_JIT_ENABLED 1
#else
#define NFP_JIT_ENABLED 0
#endif

namespace nfp::sim {

// True when emitted code can actually run here: compiled-in backend, not
// forced off by jit_set_forced_off, and a one-shot probe confirming the
// host will hand out executable pages.
bool jit_available();

// Test hook: force jit_available() == false to exercise the graceful
// kBlock degradation paths without a foreign host.
void jit_set_forced_off(bool off);

// Bench/test hook: suppress the inline branch-target-cache probe on
// register-indirect exits (A/B against the host-loop re-entry path).
// Consulted at compile time; flip it only against a fresh runtime.
void jit_set_inline_btc(bool on);

// One dynamic-residual operand pair captured by cost-mode emitted code
// (Hooks::kBlockCost — the measurement board). `a`/`b` mirror CapturedOp
// for the record's op; `op`/`idx` identify it for replay and fault
// reconciliation. Layout is baked into emitted appends.
struct JitCapture {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t op = 0;   // isa::Op of the captured record
  std::uint32_t idx = 0;  // record index within its block
};

// One slot of the JIT-resident branch-target cache probed inline on
// register-indirect exits (jmpl/retl). Direct-mapped on (pc >> 2); the
// sentinel tag 1 can never match a 4-aligned target.
struct JitBtcSlot {
  std::uint32_t tag = 1;
  std::uint32_t pad = 0;
  std::uint64_t native = 0;  // absolute address of the target block prologue
};

// State block anchored in %r14 during native execution. Field offsets are
// baked into emitted code and pinned by static_asserts in jit.cpp.
struct JitRt {
  CpuState* cpu = nullptr;          // +0   -> %rbx
  std::uint8_t* ram_bias = nullptr; // +8   ram_data() - kRamBase -> %r12
  std::uint8_t* touched = nullptr;  // +16  dirty-page flags
  std::uint64_t* counts = nullptr;  // +24  OpCountHooks counters (or null)
  const void* cur_meta = nullptr;   // +32  JitBlockMeta* of the running block
  std::uint32_t fault_idx = 0;      // +40  record index of a stashed fault
  std::uint32_t pad = 0;
  JitRuntime* owner = nullptr;      // +48
  // Cost mode only: bump-pointer residual capture buffer (drained by the
  // host after every enter) and the hooks' cycle accumulator.
  JitCapture* cap_ptr = nullptr;        // +56  write cursor
  const JitCapture* cap_end = nullptr;  // +64  one past the last slot
  std::uint64_t* cost_cycles = nullptr; // +72  BoardHooks cycle counter
  const JitBtcSlot* btc = nullptr;      // +80  inline BTC table base
  std::uint64_t btc_hits = 0;           // +88  inline probe hits
};

// One potentially-patchable block exit: a static successor pc, the rel32
// field of the `jmp` guarding it, and the stub the jump targets while
// unpatched (which materializes pc/npc and returns to the host).
struct JitExit {
  std::uint32_t exit_pc = 0;
  std::uint32_t patch_off = 0;  // arena offset of the rel32 field
  std::uint32_t stub_off = 0;   // arena offset of the unpatched target
  Block* patched_to = nullptr;
};

struct JitBlockMeta {
  Block* block = nullptr;
  // Set when the block is invalidated. `block` is NOT cleared — an in-flight
  // native run may still route slow-path records through it, and the Block
  // object stays alive in the cache's graveyard until the next morph — but
  // once dead the meta must never source a new patch or host transition.
  bool dead = false;
  std::uint32_t start = 0;
  std::uint32_t len = 0;
  std::uint32_t entry_off = 0;  // arena offset of the block prologue
  std::vector<JitExit> exits;
  // Patched jumps INTO this block: {source meta, exit index}. Mirrors
  // JitExit::patched_to so block death can unpatch both directions without
  // scanning the arena.
  std::vector<std::pair<JitBlockMeta*, std::uint32_t>> incoming;
};

class JitRuntime {
 public:
  JitRuntime(Bus& bus, BlockCache& cache);
  ~JitRuntime();

  JitRuntime(const JitRuntime&) = delete;
  JitRuntime& operator=(const JitRuntime&) = delete;

  // False when the executable arena could not be mapped; the cache then
  // drops the runtime and the executor keeps running kBlock.
  bool ok() const;

  // Binds the CpuState and retire-counter vector the emitted code will
  // address. Counter adds are baked into block exits, so changing the
  // counts pointer discards all previously compiled code.
  void configure(CpuState* cpu, std::uint64_t* counts);

  // Cost-tier configuration (Hooks::kBlockCost — the board): binds the
  // per-op retire counters and the cycle accumulator the emitted code adds
  // into, and switches the compiler into cost mode (residual capture
  // appends, per-exit base-cycle adds, no delay folding). Switching between
  // cost and functional mode discards all previously compiled code.
  void configure_cost(CpuState* cpu, std::uint64_t* counts,
                      std::uint64_t* cycles);

  // Returns every residual capture appended since the last drain (program
  // order) and resets the buffer. The host drains after every enter().
  std::span<const JitCapture> drain_captures();

  // Compiles `b` on first sight (updating b.jit_state); later calls are a
  // cheap state read. Rejected blocks stay rejected.
  Block::JitState ensure_compiled(Block& b);

  // Runs native code starting at `b` (which must be kCompiled) for at most
  // `budget` instructions. Returns the unconsumed budget. On a fault,
  // faulted() is true and the caller reconciles via take_fault().
  std::uint64_t enter(Block& b, std::uint64_t budget);

  bool faulted() const { return rt_.fault_idx != kNoFault; }

  // Fault reconciliation data: the meta of the faulting block plus the
  // record index that faulted. Clears the fault latch.
  std::pair<const JitBlockMeta*, std::uint32_t> take_fault();
  std::exception_ptr take_exception() { return std::move(pending_); }

  // The last block whose prologue ran (native runs leave it in rt_.cur_meta);
  // the host loop uses it as the source side of transition patching.
  Block* last_block() const;

  // Patches `from`'s exit with exit_pc == pc to jump straight into `to`'s
  // emitted entry. No-op if no such exit exists or it is already patched.
  void patch_transition(JitBlockMeta& from, std::uint32_t pc, Block& to);

  // Installs `pc -> to` in the inline branch-target cache probed by
  // register-indirect exits. No-op when `to` is not compiled or the inline
  // BTC is disabled; entries are withdrawn on block death and code reset.
  void btc_insert(std::uint32_t pc, Block& to);
  std::uint64_t inline_btc_hits() const { return rt_.btc_hits; }

  // Invalidation hook (called from BlockCache::unlink): withdraw every
  // patched jump into and out of `b` so no native path can reach its stale
  // code or trust its stale edges.
  void on_block_death(Block& b);

  void stash_exception(std::exception_ptr e) { pending_ = std::move(e); }
  Bus& bus() { return bus_; }
  BlockCache& cache() { return cache_; }

  struct Stats {
    std::uint64_t blocks_compiled = 0;
    std::uint64_t blocks_rejected = 0;
    std::uint64_t code_bytes = 0;
    std::uint64_t entries = 0;        // host-side native entries
    std::uint64_t patches = 0;        // chain jumps patched in
    std::uint64_t unpatches = 0;      // chain jumps withdrawn
    std::uint64_t helper_exec = 0;    // slow-path records executed
    std::uint64_t btc_inserts = 0;    // inline-BTC entries installed
  };
  const Stats& stats() const { return stats_; }
  // The generic slow path bumps helper_exec through this (hot, but only on
  // slow records).
  void count_helper_exec() { ++stats_.helper_exec; }

  // Scratch CapturedOp array the generic slow path hands to the morph
  // handler as MorphCtx::cap; in cost mode append_helper_capture forwards
  // the handler's capture into the run buffer for residual-flagged records.
  CapturedOp* helper_capture() { return helper_capture_.data(); }
  void append_helper_capture(const Block& b, std::uint32_t idx);

  static constexpr std::uint32_t kNoFault = 0xFFFFFFFFu;
  static constexpr std::uint32_t kInlineBtcEntries = 512;

 private:
  struct Impl;  // arena + emitted-code bookkeeping (x86-64 only)

  void reset_code();  // drop all compiled blocks (counts pointer changed)

  Bus& bus_;
  BlockCache& cache_;
  JitRt rt_;
  std::exception_ptr pending_;
  std::vector<std::unique_ptr<JitBlockMeta>> metas_;
  Stats stats_;
  bool cost_mode_ = false;
  std::vector<JitCapture> capture_;  // cost-mode residual run buffer
  std::array<CapturedOp, BlockCache::kMaxBlockLen> helper_capture_{};
  std::vector<JitBtcSlot> btc_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace nfp::sim
