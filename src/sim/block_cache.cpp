// Morph-time handler selection and the grouped execution functions the
// morphed records dispatch to. Every handler must be observably identical to
// the corresponding case of the executor's single-step switch — the
// differential tests in tests/sim/block_cache_test.cpp hold the two paths to
// bit-identical results, UART output, instret, and op counts.
//
// Every handler exists in two variants selected at morph time by the
// cache-wide capture flag (BlockCache::set_capture): the CAP=true variant
// additionally writes the record's operand pair into MorphCtx::cap — the
// exact words the single-step RetireInfo would carry (including its operand
// aliasing: udiv reads rs1 after writeback, FP retires read the register
// file after the result lands). kBlockCost hooks (the board) replay those
// captures for per-op cost residuals after the block ran.
#include "sim/block_cache.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>

#include "sim/jit.h"

namespace nfp::sim {
namespace {

using isa::Op;

[[noreturn]] void fatal(std::uint32_t pc, const std::string& what) {
  char buf[64];
  std::snprintf(buf, sizeof buf, " at pc=0x%08x", pc);
  throw SimError("sim error: " + what + buf);
}

inline void set_r(CpuState& st, std::uint8_t rd, std::uint32_t value) {
  st.r[rd] = value;
  st.r[0] = 0;
}

inline void icc_logic(CpuState& st, std::uint32_t result) {
  st.icc_n = (result >> 31) != 0;
  st.icc_z = result == 0;
  st.icc_v = false;
  st.icc_c = false;
}

inline void icc_add(CpuState& st, std::uint32_t a, std::uint32_t b,
                    std::uint64_t wide) {
  const auto result = static_cast<std::uint32_t>(wide);
  st.icc_n = (result >> 31) != 0;
  st.icc_z = result == 0;
  st.icc_c = (wide >> 32) != 0;
  st.icc_v = (((~(a ^ b)) & (a ^ result)) >> 31) != 0;
}

inline void icc_sub(CpuState& st, std::uint32_t a, std::uint32_t b,
                    std::uint32_t borrow_in) {
  const std::uint32_t result = a - b - borrow_in;
  st.icc_n = (result >> 31) != 0;
  st.icc_z = result == 0;
  st.icc_c = static_cast<std::uint64_t>(a) <
             static_cast<std::uint64_t>(b) + borrow_in;
  st.icc_v = (((a ^ b) & (a ^ result)) >> 31) != 0;
}

inline void check_align(std::uint32_t ea, std::uint32_t align,
                        const MorphInsn& m, MorphCtx& c) {
  if (ea & (align - 1)) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "misaligned %u-byte access to 0x%08x",
                  align, ea);
    fatal(c.pc_of(m), buf);
  }
}

// Same saturating conversion as the executor's to_int32.
std::int32_t to_int32(double value) {
  if (std::isnan(value)) return 0;
  if (value >= 2147483648.0) return std::numeric_limits<std::int32_t>::max();
  if (value < -2147483648.0) return std::numeric_limits<std::int32_t>::min();
  return static_cast<std::int32_t>(value);
}

template <bool IMM>
inline std::uint32_t op2(const MorphInsn& m, const CpuState& st) {
  if constexpr (IMM) {
    return m.op2;
  } else {
    return st.r[m.rs2];
  }
}

// Operand capture for kBlockCost hooks: record i's pair lands in cap[i].
template <bool CAP>
inline void capture(const MorphInsn& m, MorphCtx& c, std::uint32_t a,
                    std::uint32_t b) {
  if constexpr (CAP) c.cap[&m - c.base] = CapturedOp{a, b};
}

// ---- grouped execution functions (Fig. 3) ---------------------------------

template <Op OP, bool IMM, bool CAP>
void h_addsub(const MorphInsn& m, MorphCtx& c) {
  CpuState& st = c.st;
  const std::uint32_t a = st.r[m.rs1];
  const std::uint32_t b = op2<IMM>(m, st);
  capture<CAP>(m, c, a, b);
  if constexpr (OP == Op::kAdd || OP == Op::kAddcc || OP == Op::kAddx ||
                OP == Op::kAddxcc) {
    const std::uint32_t cin =
        (OP == Op::kAddx || OP == Op::kAddxcc) && st.icc_c ? 1 : 0;
    const std::uint64_t wide = std::uint64_t{a} + b + cin;
    if constexpr (OP == Op::kAddcc || OP == Op::kAddxcc) icc_add(st, a, b, wide);
    set_r(st, m.rd, static_cast<std::uint32_t>(wide));
  } else {
    const std::uint32_t bin =
        (OP == Op::kSubx || OP == Op::kSubxcc) && st.icc_c ? 1 : 0;
    const std::uint32_t result = a - b - bin;
    if constexpr (OP == Op::kSubcc || OP == Op::kSubxcc) icc_sub(st, a, b, bin);
    set_r(st, m.rd, result);
  }
}

template <Op OP, bool IMM, bool CAP>
void h_logic(const MorphInsn& m, MorphCtx& c) {
  CpuState& st = c.st;
  const std::uint32_t a = st.r[m.rs1];
  const std::uint32_t b = op2<IMM>(m, st);
  capture<CAP>(m, c, a, b);
  std::uint32_t result;
  if constexpr (OP == Op::kAnd || OP == Op::kAndcc) {
    result = a & b;
  } else if constexpr (OP == Op::kAndn || OP == Op::kAndncc) {
    result = a & ~b;
  } else if constexpr (OP == Op::kOr || OP == Op::kOrcc) {
    result = a | b;
  } else if constexpr (OP == Op::kOrn || OP == Op::kOrncc) {
    result = a | ~b;
  } else if constexpr (OP == Op::kXor || OP == Op::kXorcc) {
    result = a ^ b;
  } else {
    result = ~(a ^ b);
  }
  if constexpr (OP == Op::kAndcc || OP == Op::kAndncc || OP == Op::kOrcc ||
                OP == Op::kOrncc || OP == Op::kXorcc || OP == Op::kXnorcc) {
    icc_logic(st, result);
  }
  set_r(st, m.rd, result);
}

template <Op OP, bool IMM, bool CAP>
void h_shift(const MorphInsn& m, MorphCtx& c) {
  CpuState& st = c.st;
  const std::uint32_t a = st.r[m.rs1];
  const std::uint32_t count = op2<IMM>(m, st) & 31;
  capture<CAP>(m, c, a, count);
  std::uint32_t result;
  if constexpr (OP == Op::kSll) {
    result = a << count;
  } else if constexpr (OP == Op::kSrl) {
    result = a >> count;
  } else {
    result =
        static_cast<std::uint32_t>(static_cast<std::int32_t>(a) >> count);
  }
  set_r(st, m.rd, result);
}

template <Op OP, bool IMM, bool CAP>
void h_mul(const MorphInsn& m, MorphCtx& c) {
  CpuState& st = c.st;
  const std::uint32_t a = st.r[m.rs1];
  const std::uint32_t b = op2<IMM>(m, st);
  capture<CAP>(m, c, a, b);
  std::uint64_t wide;
  if constexpr (OP == Op::kUmul || OP == Op::kUmulcc) {
    wide = std::uint64_t{a} * b;
  } else {
    wide = static_cast<std::uint64_t>(
        std::int64_t{static_cast<std::int32_t>(a)} *
        static_cast<std::int32_t>(b));
  }
  st.y = static_cast<std::uint32_t>(wide >> 32);
  const auto result = static_cast<std::uint32_t>(wide);
  if constexpr (OP == Op::kUmulcc || OP == Op::kSmulcc) icc_logic(st, result);
  set_r(st, m.rd, result);
}

template <Op OP, bool IMM, bool CAP>
void h_udiv(const MorphInsn& m, MorphCtx& c) {
  CpuState& st = c.st;
  const std::uint32_t b = op2<IMM>(m, st);
  if (b == 0) fatal(c.pc_of(m), "integer division by zero");
  const std::uint64_t dividend = (std::uint64_t{st.y} << 32) | st.r[m.rs1];
  std::uint64_t q = dividend / b;
  bool overflow = false;
  if (q > 0xFFFFFFFFull) {
    q = 0xFFFFFFFFull;
    overflow = true;
  }
  const auto result = static_cast<std::uint32_t>(q);
  if constexpr (OP == Op::kUdivcc) {
    icc_logic(st, result);
    st.icc_v = overflow;
  }
  set_r(st, m.rd, result);
  // The step path reads rs1 for the retire record AFTER writeback, so a
  // result overwriting its own dividend register is captured post-write.
  capture<CAP>(m, c, st.r[m.rs1], b);
}

template <Op OP, bool IMM, bool CAP>
void h_sdiv(const MorphInsn& m, MorphCtx& c) {
  CpuState& st = c.st;
  const std::uint32_t b = op2<IMM>(m, st);
  if (b == 0) fatal(c.pc_of(m), "integer division by zero");
  const auto dividend =
      static_cast<std::int64_t>((std::uint64_t{st.y} << 32) | st.r[m.rs1]);
  std::int64_t q = dividend / static_cast<std::int32_t>(b);
  bool overflow = false;
  if (q > std::numeric_limits<std::int32_t>::max()) {
    q = std::numeric_limits<std::int32_t>::max();
    overflow = true;
  } else if (q < std::numeric_limits<std::int32_t>::min()) {
    q = std::numeric_limits<std::int32_t>::min();
    overflow = true;
  }
  const auto result = static_cast<std::uint32_t>(q);
  if constexpr (OP == Op::kSdivcc) {
    icc_logic(st, result);
    st.icc_v = overflow;
  }
  set_r(st, m.rd, result);
  capture<CAP>(m, c, st.r[m.rs1], b);
}

template <bool CAP>
void h_rdy(const MorphInsn& m, MorphCtx& c) {
  capture<CAP>(m, c, c.st.y, 0);
  set_r(c.st, m.rd, c.st.y);
}

template <bool IMM, bool CAP>
void h_wry(const MorphInsn& m, MorphCtx& c) {
  const std::uint32_t v = op2<IMM>(m, c.st);
  capture<CAP>(m, c, c.st.r[m.rs1], v);
  c.st.y = c.st.r[m.rs1] ^ v;
}

// save/restore on the flat register model: a plain add.
template <bool IMM, bool CAP>
void h_plain_add(const MorphInsn& m, MorphCtx& c) {
  CpuState& st = c.st;
  const std::uint32_t a = st.r[m.rs1];
  const std::uint32_t b = op2<IMM>(m, st);
  capture<CAP>(m, c, a, b);
  set_r(st, m.rd, a + b);
}

template <bool CAP>
void h_sethi(const MorphInsn& m, MorphCtx& c) {
  capture<CAP>(m, c, 0, m.op2);
  set_r(c.st, m.rd, m.op2);
}

template <bool CAP>
void h_nop(const MorphInsn& m, MorphCtx& c) {
  capture<CAP>(m, c, 0, 0);
}

// ---- memory ---------------------------------------------------------------

template <Op OP, bool IMM, bool CAP>
void h_load(const MorphInsn& m, MorphCtx& c) {
  CpuState& st = c.st;
  const std::uint32_t ea = st.r[m.rs1] + op2<IMM>(m, st);
  // Word loads can hit the timer/instret MMIO registers, whose values
  // derive from instret — restore the exact count the stepping path would
  // have at this instruction before performing the access.
  if constexpr (OP == Op::kLd || OP == Op::kLdd || OP == Op::kLdf ||
                OP == Op::kLddf) {
    if (!c.bus.in_ram(ea)) c.sync_instret(m);
  }
  std::uint32_t data;
  if constexpr (OP == Op::kLd) {
    check_align(ea, 4, m, c);
    data = c.bus.load32(ea);
    set_r(st, m.rd, data);
  } else if constexpr (OP == Op::kLdub) {
    data = c.bus.load8(ea);
    set_r(st, m.rd, data);
  } else if constexpr (OP == Op::kLdsb) {
    data = static_cast<std::uint32_t>(
        static_cast<std::int32_t>(static_cast<std::int8_t>(c.bus.load8(ea))));
    set_r(st, m.rd, data);
  } else if constexpr (OP == Op::kLduh) {
    check_align(ea, 2, m, c);
    data = c.bus.load16(ea);
    set_r(st, m.rd, data);
  } else if constexpr (OP == Op::kLdsh) {
    check_align(ea, 2, m, c);
    data = static_cast<std::uint32_t>(static_cast<std::int32_t>(
        static_cast<std::int16_t>(c.bus.load16(ea))));
    set_r(st, m.rd, data);
  } else if constexpr (OP == Op::kLdd) {
    check_align(ea, 8, m, c);
    set_r(st, m.rd, c.bus.load32(ea));
    data = c.bus.load32(ea + 4);
    set_r(st, m.rd + 1, data);
  } else if constexpr (OP == Op::kLdf) {
    check_align(ea, 4, m, c);
    data = c.bus.load32(ea);
    st.f[m.rd] = data;
  } else {  // kLddf
    check_align(ea, 8, m, c);
    st.f[m.rd] = c.bus.load32(ea);
    data = c.bus.load32(ea + 4);
    st.f[m.rd + 1] = data;
  }
  capture<CAP>(m, c, ea, data);
}

// ldd/lddf with an odd rd: the fault is hoisted to morph time, but it must
// fire only if the instruction is actually reached, after the alignment
// check — matching the single-step fault order exactly. The instruction
// never retires, so there is nothing to capture.
template <Op OP, bool IMM>
void h_load_oddrd(const MorphInsn& m, MorphCtx& c) {
  const std::uint32_t ea = c.st.r[m.rs1] + op2<IMM>(m, c.st);
  check_align(ea, 8, m, c);
  fatal(c.pc_of(m), OP == Op::kLdd ? "ldd with odd rd" : "lddf with odd rd");
}

void invalidate_code(MorphCtx& c, std::uint32_t ea, std::uint32_t bytes) {
  if (c.cache.covers_code(ea) || c.cache.covers_code(ea + bytes - 1)) {
    c.cache.invalidate(ea, bytes);
  }
}

template <Op OP, bool IMM, bool CAP>
void h_store(const MorphInsn& m, MorphCtx& c) {
  CpuState& st = c.st;
  const std::uint32_t ea = st.r[m.rs1] + op2<IMM>(m, st);
  std::uint32_t data;
  if constexpr (OP == Op::kSt) {
    check_align(ea, 4, m, c);
    data = st.r[m.rd];
    c.bus.store32(ea, data);
    invalidate_code(c, ea, 4);
  } else if constexpr (OP == Op::kStb) {
    data = st.r[m.rd] & 0xFF;
    c.bus.store8(ea, static_cast<std::uint8_t>(data));
    invalidate_code(c, ea, 1);
  } else if constexpr (OP == Op::kSth) {
    check_align(ea, 2, m, c);
    data = st.r[m.rd] & 0xFFFF;
    c.bus.store16(ea, static_cast<std::uint16_t>(data));
    invalidate_code(c, ea, 2);
  } else if constexpr (OP == Op::kStd) {
    check_align(ea, 8, m, c);
    c.bus.store32(ea, st.r[m.rd]);
    data = st.r[m.rd + 1];
    c.bus.store32(ea + 4, data);
    invalidate_code(c, ea, 8);
  } else if constexpr (OP == Op::kStf) {
    check_align(ea, 4, m, c);
    data = st.f[m.rd];
    c.bus.store32(ea, data);
    invalidate_code(c, ea, 4);
  } else {  // kStdf
    check_align(ea, 8, m, c);
    c.bus.store32(ea, st.f[m.rd]);
    data = st.f[m.rd + 1];
    c.bus.store32(ea + 4, data);
    invalidate_code(c, ea, 8);
  }
  capture<CAP>(m, c, ea, data);
}

template <Op OP, bool IMM>
void h_store_oddrd(const MorphInsn& m, MorphCtx& c) {
  const std::uint32_t ea = c.st.r[m.rs1] + op2<IMM>(m, c.st);
  check_align(ea, 8, m, c);
  fatal(c.pc_of(m), OP == Op::kStd ? "std with odd rd" : "stdf with odd rd");
}

// ---- FPU ------------------------------------------------------------------
//
// FP retires capture the register-file words AFTER the result lands, exactly
// as the step path's retire_fp does — with rd aliasing rs1/rs2, the captured
// operand is the freshly-written result.

template <Op OP, bool CAP>
void h_fpu_s(const MorphInsn& m, MorphCtx& c) {
  CpuState& st = c.st;
  const float a = st.read_s(m.rs1);
  const float b = st.read_s(m.rs2);
  float result;
  if constexpr (OP == Op::kFadds) {
    result = a + b;
  } else if constexpr (OP == Op::kFsubs) {
    result = a - b;
  } else if constexpr (OP == Op::kFmuls) {
    result = a * b;
  } else {
    result = a / b;
  }
  st.write_s(m.rd, result);
  capture<CAP>(m, c, st.f[m.rs1], st.f[m.rs2]);
}

template <Op OP, bool CAP>
void h_fpu_d(const MorphInsn& m, MorphCtx& c) {
  CpuState& st = c.st;
  const double a = st.read_d(m.rs1);
  const double b = st.read_d(m.rs2);
  double result;
  if constexpr (OP == Op::kFaddd) {
    result = a + b;
  } else if constexpr (OP == Op::kFsubd) {
    result = a - b;
  } else if constexpr (OP == Op::kFmuld) {
    result = a * b;
  } else {
    result = a / b;
  }
  st.write_d(m.rd, result);
  capture<CAP>(m, c, st.f[m.rs1], st.f[m.rs2]);
}

template <Op OP, bool CAP>
void h_fpu_unary(const MorphInsn& m, MorphCtx& c) {
  CpuState& st = c.st;
  if constexpr (OP == Op::kFsqrts) {
    st.write_s(m.rd, std::sqrt(st.read_s(m.rs2)));
  } else if constexpr (OP == Op::kFsqrtd) {
    st.write_d(m.rd, std::sqrt(st.read_d(m.rs2)));
  } else if constexpr (OP == Op::kFmovs) {
    st.f[m.rd] = st.f[m.rs2];
  } else if constexpr (OP == Op::kFnegs) {
    st.f[m.rd] = st.f[m.rs2] ^ 0x80000000u;
  } else if constexpr (OP == Op::kFabss) {
    st.f[m.rd] = st.f[m.rs2] & 0x7FFFFFFFu;
  } else if constexpr (OP == Op::kFitos) {
    st.write_s(m.rd,
               static_cast<float>(static_cast<std::int32_t>(st.f[m.rs2])));
  } else if constexpr (OP == Op::kFitod) {
    st.write_d(m.rd,
               static_cast<double>(static_cast<std::int32_t>(st.f[m.rs2])));
  } else if constexpr (OP == Op::kFstoi) {
    st.f[m.rd] = static_cast<std::uint32_t>(
        to_int32(static_cast<double>(st.read_s(m.rs2))));
  } else if constexpr (OP == Op::kFdtoi) {
    st.f[m.rd] = static_cast<std::uint32_t>(to_int32(st.read_d(m.rs2)));
  } else if constexpr (OP == Op::kFstod) {
    st.write_d(m.rd, static_cast<double>(st.read_s(m.rs2)));
  } else {  // kFdtos
    st.write_s(m.rd, static_cast<float>(st.read_d(m.rs2)));
  }
  capture<CAP>(m, c, 0, st.f[m.rs2]);
}

template <Op OP, bool CAP>
void h_fcmp(const MorphInsn& m, MorphCtx& c) {
  CpuState& st = c.st;
  capture<CAP>(m, c, st.f[m.rs1], st.f[m.rs2]);
  double a, b;
  if constexpr (OP == Op::kFcmps) {
    a = st.read_s(m.rs1);
    b = st.read_s(m.rs2);
  } else {
    a = st.read_d(m.rs1);
    b = st.read_d(m.rs2);
  }
  if (std::isnan(a) || std::isnan(b)) {
    st.fcc = 3;
  } else if (a == b) {
    st.fcc = 0;
  } else if (a < b) {
    st.fcc = 1;
  } else {
    st.fcc = 2;
  }
}

// ---- control transfers (block terminators) --------------------------------
//
// A morphed CTI is always the LAST record of its block, executing with a
// sequential pc/npc pair (npc == pc_of(m) + 4, guaranteed by block entry and
// the straight-line records before it), so it can reconstruct the step
// path's delay-slot state update from its own pc alone. The executor skips
// its sequential pc/npc update for such blocks (Block::ends_with_cti); the
// delay-slot instruction itself always runs on the single-step path.
// Encoding: branches keep cond in m.rd, the annul bit in m.rs1, and the
// byte displacement in m.op2. Captured pair: {taken, 0}.

template <bool FBF, bool CAP>
void h_bcc(const MorphInsn& m, MorphCtx& c) {
  CpuState& st = c.st;
  const std::uint32_t pc = c.pc_of(m);
  const bool taken = FBF ? st.eval_fcond(static_cast<isa::FCond>(m.rd))
                         : st.eval_cond(static_cast<isa::Cond>(m.rd));
  capture<CAP>(m, c, taken ? 1 : 0, 0);
  const std::uint32_t target = pc + m.op2;
  const bool always = m.rd == 8;
  if (m.rs1 != 0 && (always || !taken)) {  // annulled delay slot
    st.pc = taken ? target : pc + 8;
    st.npc = st.pc + 4;
  } else {
    st.pc = pc + 4;
    st.npc = taken ? target : pc + 8;
  }
}

template <bool CAP>
void h_call(const MorphInsn& m, MorphCtx& c) {
  CpuState& st = c.st;
  const std::uint32_t pc = c.pc_of(m);
  capture<CAP>(m, c, 1, 0);
  set_r(st, isa::kRegO7, pc);
  st.pc = pc + 4;
  st.npc = pc + m.op2;
}

template <bool IMM, bool CAP>
void h_jmpl(const MorphInsn& m, MorphCtx& c) {
  CpuState& st = c.st;
  const std::uint32_t pc = c.pc_of(m);
  const std::uint32_t target = st.r[m.rs1] + op2<IMM>(m, st);
  if (target & 3) fatal(pc, "jmpl to misaligned address");
  capture<CAP>(m, c, 1, 0);
  set_r(st, m.rd, pc);
  st.pc = pc + 4;
  st.npc = target;
}

// ---- morph-time handler table ---------------------------------------------

#define MORPH_II(OPK, H)                                    \
  case Op::OPK:                                             \
    return d.has_imm ? &H<Op::OPK, true, CAP>               \
                     : &H<Op::OPK, false, CAP>
#define MORPH_F(OPK, H) \
  case Op::OPK:         \
    return &H<Op::OPK, CAP>

template <bool CAP>
MorphFn select_handler(const isa::DecodedInsn& d) {
  switch (d.op) {
    MORPH_II(kAdd, h_addsub);
    MORPH_II(kAddcc, h_addsub);
    MORPH_II(kAddx, h_addsub);
    MORPH_II(kAddxcc, h_addsub);
    MORPH_II(kSub, h_addsub);
    MORPH_II(kSubcc, h_addsub);
    MORPH_II(kSubx, h_addsub);
    MORPH_II(kSubxcc, h_addsub);
    MORPH_II(kAnd, h_logic);
    MORPH_II(kAndcc, h_logic);
    MORPH_II(kAndn, h_logic);
    MORPH_II(kAndncc, h_logic);
    MORPH_II(kOr, h_logic);
    MORPH_II(kOrcc, h_logic);
    MORPH_II(kOrn, h_logic);
    MORPH_II(kOrncc, h_logic);
    MORPH_II(kXor, h_logic);
    MORPH_II(kXorcc, h_logic);
    MORPH_II(kXnor, h_logic);
    MORPH_II(kXnorcc, h_logic);
    MORPH_II(kSll, h_shift);
    MORPH_II(kSrl, h_shift);
    MORPH_II(kSra, h_shift);
    MORPH_II(kUmul, h_mul);
    MORPH_II(kUmulcc, h_mul);
    MORPH_II(kSmul, h_mul);
    MORPH_II(kSmulcc, h_mul);
    MORPH_II(kUdiv, h_udiv);
    MORPH_II(kUdivcc, h_udiv);
    MORPH_II(kSdiv, h_sdiv);
    MORPH_II(kSdivcc, h_sdiv);
    case Op::kRdy:
      return &h_rdy<CAP>;
    case Op::kWry:
      return d.has_imm ? &h_wry<true, CAP> : &h_wry<false, CAP>;
    case Op::kSave:
    case Op::kRestore:
      return d.has_imm ? &h_plain_add<true, CAP> : &h_plain_add<false, CAP>;
    case Op::kSethi:
      return &h_sethi<CAP>;
    case Op::kNop:
      return &h_nop<CAP>;
    MORPH_II(kLd, h_load);
    MORPH_II(kLdub, h_load);
    MORPH_II(kLdsb, h_load);
    MORPH_II(kLduh, h_load);
    MORPH_II(kLdsh, h_load);
    case Op::kLdd:
      if (d.rd & 1) {
        return d.has_imm ? &h_load_oddrd<Op::kLdd, true>
                         : &h_load_oddrd<Op::kLdd, false>;
      }
      return d.has_imm ? &h_load<Op::kLdd, true, CAP>
                       : &h_load<Op::kLdd, false, CAP>;
    MORPH_II(kLdf, h_load);
    case Op::kLddf:
      if (d.rd & 1) {
        return d.has_imm ? &h_load_oddrd<Op::kLddf, true>
                         : &h_load_oddrd<Op::kLddf, false>;
      }
      return d.has_imm ? &h_load<Op::kLddf, true, CAP>
                       : &h_load<Op::kLddf, false, CAP>;
    MORPH_II(kSt, h_store);
    MORPH_II(kStb, h_store);
    MORPH_II(kSth, h_store);
    case Op::kStd:
      if (d.rd & 1) {
        return d.has_imm ? &h_store_oddrd<Op::kStd, true>
                         : &h_store_oddrd<Op::kStd, false>;
      }
      return d.has_imm ? &h_store<Op::kStd, true, CAP>
                       : &h_store<Op::kStd, false, CAP>;
    MORPH_II(kStf, h_store);
    case Op::kStdf:
      if (d.rd & 1) {
        return d.has_imm ? &h_store_oddrd<Op::kStdf, true>
                         : &h_store_oddrd<Op::kStdf, false>;
      }
      return d.has_imm ? &h_store<Op::kStdf, true, CAP>
                       : &h_store<Op::kStdf, false, CAP>;
    MORPH_F(kFadds, h_fpu_s);
    MORPH_F(kFsubs, h_fpu_s);
    MORPH_F(kFmuls, h_fpu_s);
    MORPH_F(kFdivs, h_fpu_s);
    MORPH_F(kFaddd, h_fpu_d);
    MORPH_F(kFsubd, h_fpu_d);
    MORPH_F(kFmuld, h_fpu_d);
    MORPH_F(kFdivd, h_fpu_d);
    MORPH_F(kFsqrts, h_fpu_unary);
    MORPH_F(kFsqrtd, h_fpu_unary);
    MORPH_F(kFmovs, h_fpu_unary);
    MORPH_F(kFnegs, h_fpu_unary);
    MORPH_F(kFabss, h_fpu_unary);
    MORPH_F(kFitos, h_fpu_unary);
    MORPH_F(kFitod, h_fpu_unary);
    MORPH_F(kFstoi, h_fpu_unary);
    MORPH_F(kFdtoi, h_fpu_unary);
    MORPH_F(kFstod, h_fpu_unary);
    MORPH_F(kFdtos, h_fpu_unary);
    MORPH_F(kFcmps, h_fcmp);
    MORPH_F(kFcmpd, h_fcmp);
    default:
      return nullptr;  // CTIs and invalid ops never enter a block
  }
}

#undef MORPH_II
#undef MORPH_F

template <bool CAP>
MorphInsn morph_record(const isa::DecodedInsn& d) {
  MorphInsn m;
  m.fn = select_handler<CAP>(d);
  m.op = static_cast<std::uint8_t>(d.op);
  m.rd = d.rd;
  m.rs1 = d.rs1;
  m.rs2 = d.rs2;
  if (d.has_imm) {
    m.op2 = static_cast<std::uint32_t>(d.imm);
    // Shift counts are architecturally masked to 5 bits; pre-mask so the
    // imm-form handlers and the single-step path agree on the same count.
    if (d.op == Op::kSll || d.op == Op::kSrl || d.op == Op::kSra) m.op2 &= 31;
  }
  return m;
}

// Control transfers that may terminate a morphed block. Ticc stays on the
// step path (it is rare and owns the halt protocol), as does kInvalid.
bool morphable_cti(Op op) {
  return op == Op::kBicc || op == Op::kFbfcc || op == Op::kCall ||
         op == Op::kJmpl;
}

template <bool CAP>
MorphInsn morph_cti_record(const isa::DecodedInsn& d) {
  MorphInsn m;
  m.op = static_cast<std::uint8_t>(d.op);
  switch (d.op) {
    case Op::kBicc:
    case Op::kFbfcc:
      m.fn = d.op == Op::kBicc ? &h_bcc<false, CAP> : &h_bcc<true, CAP>;
      m.rd = d.cond;
      m.rs1 = d.annul ? 1 : 0;
      m.op2 = static_cast<std::uint32_t>(d.imm);
      break;
    case Op::kCall:
      m.fn = &h_call<CAP>;
      m.op2 = static_cast<std::uint32_t>(d.imm);
      break;
    default:  // kJmpl
      m.fn = d.has_imm ? &h_jmpl<true, CAP> : &h_jmpl<false, CAP>;
      m.rd = d.rd;
      m.rs1 = d.rs1;
      m.rs2 = d.rs2;
      if (d.has_imm) m.op2 = static_cast<std::uint32_t>(d.imm);
      break;
  }
  return m;
}

}  // namespace

BlockCache::BlockCache(Bus& bus, std::uint32_t code_base,
                       std::vector<isa::DecodedInsn>& dcache)
    : bus_(bus),
      code_base_(code_base),
      limit_(static_cast<std::uint32_t>(4 * dcache.size())),
      dcache_(dcache),
      index_(dcache.size(), kUnknown) {}

BlockCache::~BlockCache() = default;

JitRuntime* BlockCache::ensure_jit() {
  if (jit_ == nullptr && !jit_failed_) {
    if (jit_available()) {
      jit_ = std::make_unique<JitRuntime>(bus_, *this);
      if (!jit_->ok()) jit_.reset();
    }
    jit_failed_ = jit_ == nullptr;
  }
  return jit_.get();
}

Block* BlockCache::morph(std::uint32_t idx) {
  if (!graveyard_.empty()) graveyard_.clear();

  const std::size_t end = dcache_.size();
  std::uint32_t n = 0;
  while (idx + n < end && n < kMaxBlockLen && !isa::ends_block(dcache_[idx + n]))
    ++n;
  // Absorb a morphable terminating CTI; its delay slot still single-steps.
  const bool with_cti =
      idx + n < end && n < kMaxBlockLen && morphable_cti(dcache_[idx + n].op);
  if (n == 0 && !with_cti) {
    index_[idx] = kNoBlock;
    return nullptr;
  }

  auto block = std::make_unique<Block>();
  block->start = code_base_ + 4 * idx;
  block->len = with_cti ? n + 1 : n;
  block->ends_with_cti = with_cti;
  block->indirect_exit = with_cti && dcache_[idx + n].op == Op::kJmpl;
  block->code.reserve(block->len);
  std::array<std::uint32_t, isa::kOpCount> hist{};
  for (std::uint32_t i = 0; i < n; ++i) {
    const isa::DecodedInsn& d = dcache_[idx + i];
    block->code.push_back(capture_ ? morph_record<true>(d)
                                   : morph_record<false>(d));
    ++hist[static_cast<std::size_t>(d.op)];
  }
  if (with_cti) {
    const isa::DecodedInsn& d = dcache_[idx + n];
    block->code.push_back(capture_ ? morph_cti_record<true>(d)
                                   : morph_cti_record<false>(d));
    ++hist[static_cast<std::size_t>(d.op)];
    n = block->len;
  }
  for (std::size_t op = 0; op < isa::kOpCount; ++op) {
    if (hist[op] != 0) {
      block->profile.push_back({static_cast<std::uint8_t>(op), hist[op]});
    }
  }

  ++stats_.blocks_morphed;
  stats_.insns_morphed += n;
  index_[idx] = static_cast<std::int32_t>(blocks_.size());
  blocks_.push_back(std::move(block));
  return blocks_.back().get();
}

void BlockCache::install_link(Block& from, std::uint32_t pc, Block& to) {
  // A dead predecessor outlives its flush only until the graveyard drains;
  // a link (or back-reference) on it would dangle past that point.
  if (from.dead || to.dead) return;
  for (auto& l : from.links) {
    if (l.target == nullptr) {
      l.pc = pc;
      l.target = &to;
      to.preds.push_back(&from);
      ++stats_.links_installed;
      return;
    }
    if (l.pc == pc) return;  // edge already memoized
  }
  // Both slots hold other edges (e.g. a patched-over branch); the edge
  // stays unmemoized and keeps resolving through lookup_fallback().
}

void BlockCache::unlink(Block& b) {
  // Emitted chain jumps are the jit's equivalent of the links below: every
  // patched jump into b must be redirected back through its exit stub before
  // b's SPARC words can change, and b's own patches must be withdrawn so a
  // later flush of a successor never misses the (now-dead) edge.
  if (jit_ != nullptr) jit_->on_block_death(b);
  // Incoming edges: predecessors drop their links into b. A self-loop puts
  // b in its own pred list, which this pass handles like any other.
  for (Block* p : b.preds) {
    for (auto& l : p->links) {
      if (l.target == &b) {
        l.target = nullptr;
        ++stats_.links_severed;
      }
    }
  }
  b.preds.clear();
  // Outgoing edges: successors forget b as a predecessor. Cleared rather
  // than left on the dead block so an in-flight chain re-enters lookup()
  // instead of trusting an edge that invalidation may be about to cut.
  for (auto& l : b.links) {
    if (l.target == nullptr) continue;
    auto& preds = l.target->preds;
    preds.erase(std::remove(preds.begin(), preds.end(), &b), preds.end());
    l.target = nullptr;
    ++stats_.links_severed;
  }
}

void BlockCache::invalidate(std::uint32_t ea, std::uint32_t bytes) {
  // Clamp [ea, ea + bytes) to the code image (a wide store can straddle its
  // edges) and work in word granules.
  const std::uint64_t lo64 = std::max<std::uint64_t>(ea, code_base_);
  const std::uint64_t hi64 =
      std::min<std::uint64_t>(std::uint64_t{ea} + bytes, code_base_ + limit_);
  if (lo64 >= hi64) return;
  const auto w0 = static_cast<std::uint32_t>((lo64 - code_base_) >> 2);
  const auto w1 = static_cast<std::uint32_t>((hi64 - 1 - code_base_) >> 2);

  for (std::uint32_t w = w0; w <= w1; ++w) {
    dcache_[w] = isa::decode(bus_.load32(code_base_ + 4 * w));
    if (index_[w] == kNoBlock) index_[w] = kUnknown;
  }

  const std::uint32_t lo = code_base_ + 4 * w0;
  const std::uint32_t hi = code_base_ + 4 * w1 + 4;
  for (auto& slot : blocks_) {
    if (!slot) continue;
    // Jit-compiled blocks that fold their CTI's delay slot bake the word one
    // past the block into the emitted code, so it counts as footprint here.
    const std::uint32_t jit_tail = slot->jit_folds_delay ? 1u : 0u;
    if (slot->start < hi && slot->start + 4 * (slot->len + jit_tail) > lo) {
      unlink(*slot);
      for (auto& e : btc_) {
        if (e.block == slot.get()) e = BtcEntry{};
      }
      slot->dead = true;
      index_[(slot->start - code_base_) >> 2] = kUnknown;
      ++stats_.flushes;
      graveyard_.push_back(std::move(slot));
    }
  }
}

}  // namespace nfp::sim
