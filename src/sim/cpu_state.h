// Architectural state of the simulated SPARC V8 integer unit and FPU.
//
// Register windows are modelled flat (see DESIGN.md): SAVE/RESTORE execute
// as plain adds. This matches the paper's bare-metal, OS-less kernels, whose
// generated code never nests deeper than one window's worth of state.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

#include "isa/insn.h"

namespace nfp::sim {

struct CpuState {
  std::array<std::uint32_t, 32> r{};  // integer registers, r[0] pinned to 0
  std::array<std::uint32_t, 32> f{};  // FPU registers (raw bits)
  std::uint32_t pc = 0;
  std::uint32_t npc = 4;
  std::uint32_t y = 0;

  // Integer condition codes.
  bool icc_n = false, icc_z = false, icc_v = false, icc_c = false;
  // FP condition code: 0 =, 1 <, 2 >, 3 unordered.
  std::uint8_t fcc = 0;

  std::uint64_t instret = 0;
  bool halted = false;
  std::uint32_t exit_code = 0;

  // ---- FP register pair access (double at even register, high word first,
  // matching SPARC big-endian register pairing) ----
  double read_d(std::uint8_t reg) const {
    const std::uint64_t bits =
        (std::uint64_t{f[reg]} << 32) | f[(reg + 1) & 31];
    return std::bit_cast<double>(bits);
  }
  void write_d(std::uint8_t reg, double value) {
    const auto bits = std::bit_cast<std::uint64_t>(value);
    f[reg] = static_cast<std::uint32_t>(bits >> 32);
    f[(reg + 1) & 31] = static_cast<std::uint32_t>(bits);
  }
  float read_s(std::uint8_t reg) const { return std::bit_cast<float>(f[reg]); }
  void write_s(std::uint8_t reg, float value) {
    f[reg] = std::bit_cast<std::uint32_t>(value);
  }

  bool eval_cond(isa::Cond cond) const {
    using isa::Cond;
    switch (cond) {
      case Cond::kN: return false;
      case Cond::kE: return icc_z;
      case Cond::kLe: return icc_z || (icc_n != icc_v);
      case Cond::kL: return icc_n != icc_v;
      case Cond::kLeu: return icc_c || icc_z;
      case Cond::kCs: return icc_c;
      case Cond::kNeg: return icc_n;
      case Cond::kVs: return icc_v;
      case Cond::kA: return true;
      case Cond::kNe: return !icc_z;
      case Cond::kG: return !(icc_z || (icc_n != icc_v));
      case Cond::kGe: return icc_n == icc_v;
      case Cond::kGu: return !(icc_c || icc_z);
      case Cond::kCc: return !icc_c;
      case Cond::kPos: return !icc_n;
      case Cond::kVc: return !icc_v;
    }
    return false;
  }

  bool eval_fcond(isa::FCond cond) const {
    using isa::FCond;
    const std::uint8_t c = fcc;  // 0 =, 1 <, 2 >, 3 unordered
    switch (cond) {
      case FCond::kN: return false;
      case FCond::kNe: return c != 0;
      case FCond::kLg: return c == 1 || c == 2;
      case FCond::kUl: return c == 1 || c == 3;
      case FCond::kL: return c == 1;
      case FCond::kUg: return c == 2 || c == 3;
      case FCond::kG: return c == 2;
      case FCond::kU: return c == 3;
      case FCond::kA: return true;
      case FCond::kE: return c == 0;
      case FCond::kUe: return c == 0 || c == 3;
      case FCond::kGe: return c == 0 || c == 2;
      case FCond::kUge: return c != 1;
      case FCond::kLe: return c == 0 || c == 1;
      case FCond::kUle: return c != 2;
      case FCond::kO: return c != 3;
    }
    return false;
  }
};

}  // namespace nfp::sim
