// The counting instruction-set simulator (the paper's extended OVPsim):
// instruction-accurate functional execution plus per-op retire counters.
#pragma once

#include <cstdint>
#include <iosfwd>

#include "asmkit/program.h"
#include "sim/executor.h"
#include "sim/hooks.h"
#include "sim/platform.h"
#include "sim/state_io.h"

namespace nfp::sim {

class Iss {
 public:
  // Default instruction budget: generous enough for every workload in the
  // repo; hitting it means a runaway kernel and yields halted == false.
  static constexpr std::uint64_t kDefaultMaxInsns = 20'000'000'000ull;

  void load(const asmkit::Program& program) {
    platform_.load(program);
    hooks_ = OpCountHooks{};  // counters belong to the loaded program
  }

  RunResult run(std::uint64_t max_insns = kDefaultMaxInsns,
                Dispatch dispatch = Dispatch::kBlock) {
    Executor<OpCountHooks> exec(platform_.cpu(), platform_.bus(), hooks_);
    exec.set_decode_cache(platform_.code_base(), platform_.decode_cache());
    // The cache is attached in every mode so stores into code re-decode the
    // image; kStep only opts out of whole-block dispatch. This keeps the
    // stepping reference valid on self-modifying programs.
    exec.set_block_cache(platform_.block_cache());
    exec.set_block_dispatch(dispatch != Dispatch::kStep);
    // kJit chains too: native block-to-block patching is the jit's chaining,
    // and the host loop falls back to chained kBlock for rejected blocks.
    exec.set_chaining(dispatch == Dispatch::kBlock || dispatch == Dispatch::kJit);
    exec.set_jit(dispatch == Dispatch::kJit);
    exec.run(max_insns);
    RunResult result;
    result.halted = platform_.cpu().halted;
    result.instret = platform_.cpu().instret;
    result.exit_code = platform_.cpu().exit_code;
    return result;
  }

  // Serializes the platform plus the retire-count vector; restore is
  // all-or-nothing (see sim/state_io.h) and the resumed run retires
  // bit-for-bit identically to the uninterrupted one in every dispatch mode.
  void save_state(std::ostream& out) const {
    StateWriter w;
    append_platform_chunks(w, platform_);
    w.begin_chunk(kChunkCounts);
    w.put_u32(static_cast<std::uint32_t>(hooks_.counts.size()));
    for (const std::uint64_t c : hooks_.counts) w.put_u64(c);
    w.end_chunk();
    w.finish(out);
  }

  void restore_state(std::istream& in) {
    auto tags = platform_chunk_tags();
    tags.push_back(kChunkCounts);
    const StateReader r(in, tags);
    OpCountHooks hooks;
    ChunkCursor c(r.payload(kChunkCounts));
    if (c.get_u32() != hooks.counts.size()) {
      throw StateError(StateErrorCode::kBadPayload,
                       "retire-count vector has the wrong arity");
    }
    for (std::uint64_t& count : hooks.counts) count = c.get_u64();
    c.done();
    apply_platform_chunks(r, platform_);
    hooks_ = hooks;
  }

  const OpCountHooks& counters() const { return hooks_; }
  Platform& platform() { return platform_; }
  const Platform& platform() const { return platform_; }
  Bus& bus() { return platform_.bus(); }
  CpuState& cpu() { return platform_.cpu(); }
  const CpuState& cpu() const { return platform_.cpu(); }

 private:
  Platform platform_;
  OpCountHooks hooks_;
};

// Functional-only simulator (fastest rung of the Fig. 1 ladder).
class FunctionalSim {
 public:
  void load(const asmkit::Program& program) { platform_.load(program); }

  RunResult run(std::uint64_t max_insns = Iss::kDefaultMaxInsns,
                Dispatch dispatch = Dispatch::kBlock) {
    NullHooks hooks;
    Executor<NullHooks> exec(platform_.cpu(), platform_.bus(), hooks);
    exec.set_decode_cache(platform_.code_base(), platform_.decode_cache());
    exec.set_block_cache(platform_.block_cache());
    exec.set_block_dispatch(dispatch != Dispatch::kStep);
    exec.set_chaining(dispatch == Dispatch::kBlock || dispatch == Dispatch::kJit);
    exec.set_jit(dispatch == Dispatch::kJit);
    exec.run(max_insns);
    RunResult result;
    result.halted = platform_.cpu().halted;
    result.instret = platform_.cpu().instret;
    result.exit_code = platform_.cpu().exit_code;
    return result;
  }

  Platform& platform() { return platform_; }
  Bus& bus() { return platform_.bus(); }

 private:
  Platform platform_;
};

}  // namespace nfp::sim
