// System bus: big-endian RAM plus memory-mapped peripherals (UART, timer).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/memmap.h"

namespace nfp::sim {

struct SimError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class Bus {
 public:
  Bus() : ram_(kRamSize, 0), touched_(kRamSize >> kPageShift, 0) {}

  // Time sources surfaced through the timer MMIO registers. The ISS reports
  // retired instructions; the board reports cycles.
  void set_time_source(std::function<std::uint64_t()> fn) {
    time_source_ = std::move(fn);
  }
  void set_instret_source(std::function<std::uint64_t()> fn) {
    instret_source_ = std::move(fn);
  }

  bool in_ram(std::uint32_t addr) const {
    return addr - kRamBase < kRamSize;
  }

  // Fast-path byte view of RAM for the executor.
  std::uint8_t* ram_data() { return ram_.data(); }
  const std::uint8_t* ram_data() const { return ram_.data(); }

  // Fast-path view of the dirty-page flags for the JIT's inlined store
  // templates, which must mark granules exactly like store8/16/32 do.
  std::uint8_t* touched_data() { return touched_.data(); }

  std::uint32_t load32(std::uint32_t addr) {
    if (in_ram(addr)) {
      const std::uint8_t* p = &ram_[addr - kRamBase];
      return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
             (std::uint32_t{p[2]} << 8) | p[3];
    }
    return mmio_load(addr);
  }

  std::uint16_t load16(std::uint32_t addr) {
    if (!in_ram(addr)) throw_bad(addr, "halfword load");
    const std::uint8_t* p = &ram_[addr - kRamBase];
    return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
  }

  std::uint8_t load8(std::uint32_t addr) {
    if (!in_ram(addr)) throw_bad(addr, "byte load");
    return ram_[addr - kRamBase];
  }

  void store32(std::uint32_t addr, std::uint32_t value) {
    if (in_ram(addr)) {
      std::uint8_t* p = &ram_[addr - kRamBase];
      p[0] = static_cast<std::uint8_t>(value >> 24);
      p[1] = static_cast<std::uint8_t>(value >> 16);
      p[2] = static_cast<std::uint8_t>(value >> 8);
      p[3] = static_cast<std::uint8_t>(value);
      touch(addr - kRamBase, 4);
      return;
    }
    mmio_store(addr, value);
  }

  void store16(std::uint32_t addr, std::uint16_t value) {
    if (!in_ram(addr)) throw_bad(addr, "halfword store");
    std::uint8_t* p = &ram_[addr - kRamBase];
    p[0] = static_cast<std::uint8_t>(value >> 8);
    p[1] = static_cast<std::uint8_t>(value);
    touch(addr - kRamBase, 2);
  }

  void store8(std::uint32_t addr, std::uint8_t value) {
    if (!in_ram(addr)) throw_bad(addr, "byte store");
    ram_[addr - kRamBase] = value;
    touch(addr - kRamBase, 1);
  }

  // Zeroes every page a store has dirtied since construction (or since the
  // last reset), restoring the fresh-RAM guarantee without the cost of
  // re-zeroing all 16 MiB. Lets campaign workers reuse one simulator arena
  // across a job queue.
  void reset_touched_ram() {
    for (std::size_t page = 0; page < touched_.size(); ++page) {
      if (touched_[page]) {
        std::fill_n(ram_.begin() + (page << kPageShift),
                    std::size_t{1} << kPageShift, 0);
        touched_[page] = 0;
      }
    }
  }

  // ---- host-side bulk access (loader, workload data exchange) -------------
  void write_block(std::uint32_t addr, const std::uint8_t* data,
                   std::size_t size);
  std::vector<std::uint8_t> read_block(std::uint32_t addr,
                                       std::size_t size) const;
  void write_u32(std::uint32_t addr, std::uint32_t value) { store32(addr, value); }
  std::uint32_t read_u32(std::uint32_t addr) { return load32(addr); }
  void write_f64(std::uint32_t addr, double value);
  double read_f64(std::uint32_t addr);

  const std::string& uart_output() const { return uart_; }
  void clear_uart() { uart_.clear(); }
  // Reinstates a saved UART stream on restore (sim/state_io.h).
  void set_uart_output(std::string s) { uart_ = std::move(s); }

  // Dirty-page metadata, exposed for cheap architectural digests
  // (sim/digest.h): one flag per 4 KiB granule, set by every store and by
  // host-side block writes, cleared by reset_touched_ram().
  const std::vector<std::uint8_t>& touched_pages() const { return touched_; }
  std::uint32_t page_size() const { return 1u << kPageShift; }

 private:
  static constexpr std::uint32_t kPageShift = 12;  // 4 KiB dirty granules

  void touch(std::uint32_t offset, std::uint32_t bytes) {
    touched_[offset >> kPageShift] = 1;
    touched_[((offset + bytes - 1) & (kRamSize - 1)) >> kPageShift] = 1;
  }

  std::uint32_t mmio_load(std::uint32_t addr);
  void mmio_store(std::uint32_t addr, std::uint32_t value);
  [[noreturn]] static void throw_bad(std::uint32_t addr, const char* what);

  std::vector<std::uint8_t> ram_;
  std::vector<std::uint8_t> touched_;
  std::string uart_;
  std::function<std::uint64_t()> time_source_;
  std::function<std::uint64_t()> instret_source_;
};

}  // namespace nfp::sim
