// Synthetic test images and loss masks for the FSE evaluation, standing in
// for the paper's 24 Kodak pictures with per-picture masks. The instruction
// mix of FSE depends on block size, mask shape and iteration count, not on
// photographic content, so seeded sinusoid/gradient/noise textures preserve
// the experiment.
#pragma once

#include <cstdint>
#include <vector>

namespace nfp::fse {

enum class MaskKind {
  kBlock,    // rectangular loss area (error concealment scenario)
  kStripes,  // periodic slice loss (packet loss scenario)
  kScatter,  // random pixel loss (distortion removal scenario)
};

// n*n image with values in [0, 255], deterministic per (seed).
std::vector<double> make_image(int n, std::uint64_t seed);

// n*n mask, nonzero = missing. Deterministic per (seed, kind); loses
// roughly 10-25% of the samples.
std::vector<int> make_mask(int n, std::uint64_t seed, MaskKind kind);

// PSNR of `got` vs `want` restricted to masked samples (the reconstruction
// quality FSE is judged by).
double masked_psnr(const std::vector<double>& want,
                   const std::vector<double>& got,
                   const std::vector<int>& mask);

}  // namespace nfp::fse
