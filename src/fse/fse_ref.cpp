#include "fse/fse_ref.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace nfp::fse {
namespace {

using cd = std::complex<double>;

// Binary exponentiation with an integer exponent: the exact operation
// sequence the target implementation uses, so weights match bit-for-bit.
double ipow(double base, int e) {
  double result = 1.0;
  double p = base;
  while (e > 0) {
    if (e & 1) result *= p;
    p *= p;
    e >>= 1;
  }
  return result;
}

std::vector<double> build_weights(const std::vector<int>& mask, int n,
                                  double rho) {
  std::vector<double> w(static_cast<std::size_t>(n) * n, 0.0);
  // Isotropic decay rho^(d^2) evaluated on the doubled lattice so the
  // exponent stays integral: rho^(d2q/4) with d2q = (2x-n+1)^2+(2y-n+1)^2.
  const double rho_q = std::sqrt(std::sqrt(rho));
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      const std::size_t i = static_cast<std::size_t>(y) * n + x;
      if (mask[i]) continue;
      const int dx = 2 * x - (n - 1);
      const int dy = 2 * y - (n - 1);
      w[i] = ipow(rho_q, dx * dx + dy * dy);
    }
  }
  return w;
}

struct FseState {
  int n;
  std::vector<cd> big_w;  // FFT2 of weights
  std::vector<cd> r;      // weighted residual spectrum
  std::vector<cd> g;      // model coefficient spectrum
  double w0;              // sum of weights (DC of big_w)
};

FseState init(const std::vector<double>& signal, const std::vector<int>& mask,
              const FseParams& p) {
  const int n = p.n;
  const std::size_t area = static_cast<std::size_t>(n) * n;
  if (signal.size() != area || mask.size() != area) {
    throw std::invalid_argument("fse: signal/mask size mismatch");
  }
  const auto w = build_weights(mask, n, p.rho);
  FseState st;
  st.n = n;
  st.big_w.assign(area, cd{});
  st.r.assign(area, cd{});
  st.g.assign(area, cd{});
  st.w0 = 0.0;
  for (std::size_t i = 0; i < area; ++i) {
    st.big_w[i] = cd(w[i], 0.0);
    st.r[i] = cd(w[i] * signal[i], 0.0);
    st.w0 += w[i];
  }
  if (st.w0 <= 0.0) throw std::invalid_argument("fse: empty weight support");
  fft2_inplace(st.big_w, n, false);
  fft2_inplace(st.r, n, false);
  return st;
}

// One basis selection + residual spectrum update. Returns the selected
// residual energy before the update.
double iterate(FseState& st, double gamma) {
  const int n = st.n;
  const std::size_t area = static_cast<std::size_t>(n) * n;
  std::size_t best = 0;
  double best_e = -1.0;
  for (std::size_t k = 0; k < area; ++k) {
    const double e = std::norm(st.r[k]);
    if (e > best_e) {
      best_e = e;
      best = k;
    }
  }
  const cd dc = st.r[best] * (gamma / st.w0);
  st.g[best] += dc;
  const int bx = static_cast<int>(best) % n;
  const int by = static_cast<int>(best) / n;
  for (int ky = 0; ky < n; ++ky) {
    const int sy = (ky - by + n) % n;
    for (int kx = 0; kx < n; ++kx) {
      const int sx = (kx - bx + n) % n;
      st.r[static_cast<std::size_t>(ky) * n + kx] -=
          dc * st.big_w[static_cast<std::size_t>(sy) * n + sx];
    }
  }
  return best_e;
}

}  // namespace

void fft_inplace(std::vector<cd>& data, bool inverse) {
  const std::size_t n = data.size();
  if (n == 0 || (n & (n - 1)) != 0) {
    throw std::invalid_argument("fft: size must be a power of two");
  }
  // Bit reversal.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const cd wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      cd w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cd u = data[i + k];
        const cd v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  // Unscaled in both directions (matches the target implementation; the
  // model evaluation absorbs the 1/N^2).
}

void fft2_inplace(std::vector<cd>& data, int n, bool inverse) {
  if (data.size() != static_cast<std::size_t>(n) * n) {
    throw std::invalid_argument("fft2: bad size");
  }
  std::vector<cd> line(static_cast<std::size_t>(n));
  for (int y = 0; y < n; ++y) {
    line.assign(data.begin() + static_cast<std::ptrdiff_t>(y) * n,
                data.begin() + static_cast<std::ptrdiff_t>(y + 1) * n);
    fft_inplace(line, inverse);
    std::copy(line.begin(), line.end(),
              data.begin() + static_cast<std::ptrdiff_t>(y) * n);
  }
  for (int x = 0; x < n; ++x) {
    for (int y = 0; y < n; ++y) line[y] = data[static_cast<std::size_t>(y) * n + x];
    fft_inplace(line, inverse);
    for (int y = 0; y < n; ++y) data[static_cast<std::size_t>(y) * n + x] = line[y];
  }
}

std::vector<double> extrapolate(const std::vector<double>& signal,
                                const std::vector<int>& mask,
                                const FseParams& params) {
  FseState st = init(signal, mask, params);
  for (int it = 0; it < params.iterations; ++it) iterate(st, params.gamma);
  // Evaluate the model: unscaled inverse FFT of the coefficient spectrum
  // yields g[x] = sum_k c_k exp(+j 2 pi k x / N) directly.
  std::vector<cd> model = st.g;
  fft2_inplace(model, st.n, true);
  std::vector<double> out(signal);
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (mask[i]) out[i] = model[i].real();
  }
  return out;
}

std::vector<double> residual_energy_trace(const std::vector<double>& signal,
                                          const std::vector<int>& mask,
                                          const FseParams& params) {
  // Traces the functional FSE minimises: the weighted spatial residual
  // error  E = sum_x w[x] (f[x] - model[x])^2 . Each iteration performs a
  // gamma-damped line step along one basis function in the weighted inner
  // product space, so E is non-increasing for gamma in (0, 2).
  FseState st = init(signal, mask, params);
  const auto w = build_weights(mask, params.n, params.rho);
  const std::size_t area = w.size();
  std::vector<double> trace;
  trace.reserve(static_cast<std::size_t>(params.iterations) + 1);
  for (int it = 0; it <= params.iterations; ++it) {
    std::vector<cd> model = st.g;
    fft2_inplace(model, st.n, true);  // unscaled inverse: sum_k c_k e^{+j..}
    double energy = 0.0;
    for (std::size_t i = 0; i < area; ++i) {
      // Complex-valued FSE: the model may carry imaginary parts until the
      // conjugate-symmetric partner coefficients are selected.
      const cd r = cd(signal[i], 0.0) - model[i];
      energy += w[i] * std::norm(r);
    }
    trace.push_back(energy);
    if (it < params.iterations) iterate(st, params.gamma);
  }
  return trace;
}

}  // namespace nfp::fse
