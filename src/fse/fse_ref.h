// Host reference implementation of complex-valued Frequency Selective
// Extrapolation (Seiler & Kaup 2010/2011): the fast frequency-domain
// variant that updates the weighted residual spectrum per iteration.
//
// Used as the algorithmic golden model for the Micro-C target
// implementation (workloads/mc/fse.c) and for property tests. The paper's
// isotropic rho^dist weighting is realised as rho^(dx^2+dy^2) so the
// target build needs no exp/log, which preserves the isotropic decay
// behaviour FSE requires.
#pragma once

#include <complex>
#include <vector>

namespace nfp::fse {

struct FseParams {
  int n = 16;            // FFT / block size (power of two)
  int iterations = 48;   // basis selections
  double rho = 0.90;     // weight decay
  double gamma = 0.5;    // orthogonality deficiency compensation
};

// Extrapolates the masked samples of `signal` (n*n, row major).
// mask[i] != 0 means sample i is missing. Returns the completed signal:
// original samples kept, missing samples replaced by the model.
std::vector<double> extrapolate(const std::vector<double>& signal,
                                const std::vector<int>& mask,
                                const FseParams& params = {});

// Weighted residual energy after each iteration (for property tests:
// must be non-increasing).
std::vector<double> residual_energy_trace(const std::vector<double>& signal,
                                          const std::vector<int>& mask,
                                          const FseParams& params = {});

// Reference FFT utilities (power-of-two size), exposed for tests.
void fft_inplace(std::vector<std::complex<double>>& data, bool inverse);
void fft2_inplace(std::vector<std::complex<double>>& data, int n,
                  bool inverse);

}  // namespace nfp::fse
