#include "fse/image_gen.h"

#include <cmath>
#include <numbers>

#include "board/rng.h"

namespace nfp::fse {

std::vector<double> make_image(int n, std::uint64_t seed) {
  board::SplitMix64 rng(seed * 0x9E3779B97F4A7C15ull + 0x1234);
  // 2-4 sinusoid components + linear gradient + mild noise.
  const int components = 2 + static_cast<int>(rng.next() % 3);
  struct Wave {
    double fx, fy, phase, amp;
  };
  std::vector<Wave> waves;
  for (int c = 0; c < components; ++c) {
    waves.push_back({
        0.3 + rng.uniform() * 2.2,
        0.3 + rng.uniform() * 2.2,
        rng.uniform() * 2.0 * std::numbers::pi,
        20.0 + rng.uniform() * 45.0,
    });
  }
  const double gx = (rng.uniform() - 0.5) * 3.0;
  const double gy = (rng.uniform() - 0.5) * 3.0;

  std::vector<double> img(static_cast<std::size_t>(n) * n);
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      double v = 128.0 + gx * x + gy * y;
      for (const Wave& w : waves) {
        v += w.amp * std::sin(2.0 * std::numbers::pi *
                                  (w.fx * x + w.fy * y) / n +
                              w.phase);
      }
      v += (rng.uniform() - 0.5) * 4.0;  // sensor-like noise
      if (v < 0.0) v = 0.0;
      if (v > 255.0) v = 255.0;
      img[static_cast<std::size_t>(y) * n + x] = v;
    }
  }
  return img;
}

std::vector<int> make_mask(int n, std::uint64_t seed, MaskKind kind) {
  board::SplitMix64 rng(seed ^ 0xABCDEF0123456789ull);
  std::vector<int> mask(static_cast<std::size_t>(n) * n, 0);
  switch (kind) {
    case MaskKind::kBlock: {
      const int bw = n / 4 + static_cast<int>(rng.next() % (n / 4));
      const int bh = n / 4 + static_cast<int>(rng.next() % (n / 4));
      const int x0 = static_cast<int>(rng.next() % (n - bw));
      const int y0 = static_cast<int>(rng.next() % (n - bh));
      for (int y = y0; y < y0 + bh; ++y) {
        for (int x = x0; x < x0 + bw; ++x) {
          mask[static_cast<std::size_t>(y) * n + x] = 1;
        }
      }
      break;
    }
    case MaskKind::kStripes: {
      const int period = 4 + static_cast<int>(rng.next() % 4);
      const int offset = static_cast<int>(rng.next() % period);
      const bool vertical = (rng.next() & 1) != 0;
      for (int y = 0; y < n; ++y) {
        for (int x = 0; x < n; ++x) {
          const int c = vertical ? x : y;
          if (c % period == offset) {
            mask[static_cast<std::size_t>(y) * n + x] = 1;
          }
        }
      }
      break;
    }
    case MaskKind::kScatter: {
      for (auto& m : mask) {
        m = rng.uniform() < 0.18 ? 1 : 0;
      }
      break;
    }
  }
  // Never lose everything (FSE needs support samples).
  mask[0] = 0;
  mask[mask.size() - 1] = 0;
  return mask;
}

double masked_psnr(const std::vector<double>& want,
                   const std::vector<double>& got,
                   const std::vector<int>& mask) {
  double sse = 0.0;
  int count = 0;
  for (std::size_t i = 0; i < want.size(); ++i) {
    if (!mask[i]) continue;
    const double d = want[i] - got[i];
    sse += d * d;
    ++count;
  }
  if (count == 0) return 99.0;
  const double mse = sse / count;
  if (mse <= 1e-12) return 99.0;
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

}  // namespace nfp::fse
