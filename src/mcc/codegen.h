// SPARC V8 code generation for Micro-C.
//
// Unoptimised, -O0-style code: all variables live in memory, expressions
// evaluate on a virtual register stack with fixed spill slots. This mirrors
// the instruction mixes of the paper's bare-metal builds (memory-heavy, many
// NOP delay slots).
//
// ## Target ABI (custom bare-metal, windowless)
//  - All arguments are passed on the stack: for a call with A argument
//    words, the caller stores word j at [%sp - 4*A + 4*j] immediately
//    before the `call`. Doubles occupy two words, high word first.
//  - Return values: integers/pointers in %o0; doubles in %o0 (high) and
//    %o1 (low), regardless of float ABI.
//  - All registers are caller-saved. %sp (%o6) is the stack pointer,
//    %o7 holds the return address (call/retl).
//  - Frame layout (offsets from %sp after the prologue):
//       [0]        saved %o7
//       [8..16)    FP<->integer staging slot
//       [16..336)  40 virtual-stack backing slots of 8 bytes
//       [336..)    locals
//       [F-4A..F)  incoming argument words
//
// ## Float ABIs
//  - kHard: doubles in FPU register pairs; double ops emit faddd/fmuld/....
//  - kSoft (-msoft-float): doubles are 2-word values in integer registers;
//    double ops call the __sf_* runtime (itself Micro-C, integer-only).
#pragma once

#include <string>

#include "mcc/ast.h"

namespace nfp::mcc {

enum class FloatAbi { kHard, kSoft };

// LEON3-style hardware option: with kSoft, integer `*`, `/`, `%` and the
// mc_umulhi intrinsic lower to the __mc_* runtime (rtlib/mc/softmuldiv.c)
// instead of umul/udiv instructions, for boards synthesised without the
// MUL/DIV units. Note: the soft divider returns all-ones for division by
// zero where the hardware one faults the simulator.
enum class MulDivAbi { kHard, kSoft };

// Generates a complete assembly translation unit, including the `_start`
// entry stub (call main, then `ta 0` with main's return value in %o0).
std::string generate_assembly(const TranslationUnit& unit, FloatAbi abi,
                              MulDivAbi muldiv = MulDivAbi::kHard);

}  // namespace nfp::mcc
