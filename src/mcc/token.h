// Token definitions for Micro-C, the strict C subset accepted by mcc.
//
// Micro-C sources are dual-compilable: the same file compiles natively as
// C/C++ (for golden host tests) and with mcc for the simulated target. See
// docs in mcc/compiler.h for the language surface.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nfp::mcc {

enum class Tok : std::uint8_t {
  kEof,
  kIdent,
  kIntLit,
  kDoubleLit,
  kCharLit,   // carried as kIntLit value, kept distinct for diagnostics
  kStrLit,
  // Keywords.
  kKwVoid, kKwInt, kKwUnsigned, kKwChar, kKwShort, kKwDouble,
  kKwSigned, kKwConst, kKwStatic,
  kKwIf, kKwElse, kKwWhile, kKwFor, kKwDo, kKwReturn, kKwBreak, kKwContinue,
  kKwSizeof,
  // Punctuation / operators.
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kSemi, kComma,
  kAssign,                            // =
  kPlus, kMinus, kStar, kSlash, kPercent,
  kAmp, kPipe, kCaret, kTilde, kBang,
  kShl, kShr,
  kLt, kGt, kLe, kGe, kEqEq, kNotEq,
  kAndAnd, kOrOr,
  kPlusEq, kMinusEq, kStarEq, kSlashEq, kPercentEq,
  kAmpEq, kPipeEq, kCaretEq, kShlEq, kShrEq,
  kPlusPlus, kMinusMinus,
  kQuestion, kColon,
};

struct Token {
  Tok kind = Tok::kEof;
  std::string text;        // identifier / string payload
  std::int64_t int_value = 0;
  double double_value = 0.0;
  int line = 0;
};

const char* tok_name(Tok kind);

}  // namespace nfp::mcc
