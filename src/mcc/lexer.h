// Micro-C lexer and preprocessor.
//
// The preprocessor supports only what dual-compilation needs:
//   #define NAME <tokens>      (object-like macros)
//   #ifdef NAME / #ifndef NAME / #else / #endif
// `MC_TARGET` is predefined when compiling for the simulator, so sources can
// guard target-only code (e.g. the `main` that reads the memory-mapped I/O
// windows) from the host build and vice versa.
#pragma once

#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "mcc/token.h"

namespace nfp::mcc {

struct CompileError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// Lexes a raw source fragment (no preprocessing). Used internally and for
// macro bodies.
std::vector<Token> lex(std::string_view source, int first_line = 1);

// Full front-end pass: strip comments, run the preprocessor, lex, and
// expand macros. `defines` seeds predefined macros (e.g. MC_TARGET).
std::vector<Token> preprocess_and_lex(
    std::string_view source,
    const std::map<std::string, std::string>& defines);

}  // namespace nfp::mcc
