#include "mcc/parser.h"

#include <cmath>

namespace nfp::mcc {
namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  throw CompileError("mcc line " + std::to_string(line) + ": " + message);
}

class Parser {
 public:
  Parser(const std::vector<Token>& tokens, TranslationUnit& unit)
      : toks_(tokens), unit_(unit) {}

  void run() {
    while (peek().kind != Tok::kEof) {
      parse_top_level();
    }
  }

 private:
  // ---- token helpers -------------------------------------------------------
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  const Token& next() {
    const Token& t = peek();
    if (t.kind != Tok::kEof) ++pos_;
    return t;
  }
  bool accept(Tok kind) {
    if (peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }
  const Token& expect(Tok kind, const char* what) {
    if (peek().kind != kind) {
      fail(peek().line, std::string("expected ") + what);
    }
    return toks_[pos_++];
  }
  int line() const { return peek().line; }

  // ---- types ---------------------------------------------------------------
  static bool is_type_start(Tok kind) {
    switch (kind) {
      case Tok::kKwVoid: case Tok::kKwInt: case Tok::kKwUnsigned:
      case Tok::kKwChar: case Tok::kKwShort: case Tok::kKwDouble:
      case Tok::kKwSigned: case Tok::kKwConst: case Tok::kKwStatic:
        return true;
      default:
        return false;
    }
  }

  // Base type specifier (no declarator). Consumes const/static qualifiers.
  Type parse_base_type() {
    while (accept(Tok::kKwConst) || accept(Tok::kKwStatic)) {
    }
    bool is_unsigned = false;
    bool saw_sign = false;
    if (accept(Tok::kKwUnsigned)) {
      is_unsigned = true;
      saw_sign = true;
    } else if (accept(Tok::kKwSigned)) {
      saw_sign = true;
    }
    Type base = type_int();
    switch (peek().kind) {
      case Tok::kKwVoid:
        if (saw_sign) fail(line(), "signed/unsigned void");
        next();
        base = type_void();
        break;
      case Tok::kKwChar:
        next();
        base = Type::basic(is_unsigned ? Type::K::kUChar : Type::K::kChar);
        break;
      case Tok::kKwShort:
        next();
        accept(Tok::kKwInt);
        base = Type::basic(is_unsigned ? Type::K::kUShort : Type::K::kShort);
        break;
      case Tok::kKwInt:
        next();
        base = is_unsigned ? type_uint() : type_int();
        break;
      case Tok::kKwDouble:
        if (saw_sign) fail(line(), "signed/unsigned double");
        next();
        base = type_double();
        break;
      default:
        if (!saw_sign) fail(line(), "expected type specifier");
        base = is_unsigned ? type_uint() : type_int();
        break;
    }
    while (accept(Tok::kKwConst)) {
    }
    return base;
  }

  Type parse_pointers(Type base) {
    while (accept(Tok::kStar)) {
      base = Type::ptr(base);
      while (accept(Tok::kKwConst)) {
      }
    }
    return base;
  }

  // Trailing array dimensions: name[3][4] builds arr(arr(base,4),3).
  Type parse_array_suffix(Type base) {
    std::vector<std::uint32_t> dims;
    while (accept(Tok::kLBracket)) {
      const ExprPtr dim = parse_ternary();
      const std::int64_t n = eval_const_int(*dim);
      if (n <= 0) fail(line(), "array size must be positive");
      dims.push_back(static_cast<std::uint32_t>(n));
      expect(Tok::kRBracket, "]");
    }
    for (auto it = dims.rbegin(); it != dims.rend(); ++it) {
      base = Type::arr(base, *it);
    }
    return base;
  }

  // ---- top level -------------------------------------------------------------
  void parse_top_level() {
    if (!is_type_start(peek().kind)) {
      fail(line(), "expected declaration");
    }
    const Type base = parse_base_type();
    const Type with_ptr = parse_pointers(base);
    const Token& name_tok = expect(Tok::kIdent, "declarator name");
    const std::string name = name_tok.text;

    if (peek().kind == Tok::kLParen) {
      parse_function(with_ptr, name, name_tok.line);
      return;
    }
    parse_global(with_ptr, name, name_tok.line);
    while (accept(Tok::kComma)) {
      const Type t2 = parse_pointers(base);
      const Token& n2 = expect(Tok::kIdent, "declarator name");
      parse_global(t2, n2.text, n2.line);
    }
    expect(Tok::kSemi, ";");
  }

  void parse_function(const Type& ret, const std::string& name, int fline) {
    Function fn;
    fn.name = name;
    fn.return_type = ret;
    fn.line = fline;
    expect(Tok::kLParen, "(");
    if (!accept(Tok::kRParen)) {
      if (peek().kind == Tok::kKwVoid && peek(1).kind == Tok::kRParen) {
        next();
        next();
      } else {
        while (true) {
          Type pt = parse_pointers(parse_base_type());
          const Token& pn = expect(Tok::kIdent, "parameter name");
          pt = parse_array_suffix(pt);
          if (pt.is_array()) pt = Type::ptr(pt.elem());  // decay
          if (pt.is_void()) fail(pn.line, "void parameter");
          fn.params.push_back({pn.text, pt});
          if (!accept(Tok::kComma)) break;
        }
        expect(Tok::kRParen, ")");
      }
    }
    if (accept(Tok::kSemi)) {
      unit_.functions.push_back(std::move(fn));  // prototype
      return;
    }
    fn.body = parse_block();
    unit_.functions.push_back(std::move(fn));
  }

  void parse_global(Type type, const std::string& name, int gline) {
    type = parse_array_suffix(type);
    if (type.is_void()) fail(gline, "void variable");
    GlobalVar g;
    g.name = name;
    g.type = type;
    g.line = gline;
    if (accept(Tok::kAssign)) {
      g.has_init = true;
      parse_global_init(g);
    }
    unit_.globals.push_back(std::move(g));
  }

  void parse_global_init(GlobalVar& g) {
    const Type elem = g.type.is_array() ? innermost_elem(g.type) : g.type;
    if (accept(Tok::kLBrace)) {
      if (!g.type.is_array()) fail(line(), "brace init on non-array");
      if (!accept(Tok::kRBrace)) {
        while (true) {
          push_global_scalar(g, elem);
          if (!accept(Tok::kComma)) break;
          if (peek().kind == Tok::kRBrace) break;  // trailing comma
        }
        expect(Tok::kRBrace, "}");
      }
      const std::uint32_t capacity = g.type.size() / elem.size();
      const std::size_t count =
          elem.is_double() ? g.double_inits.size() : g.int_inits.size();
      if (count > capacity) fail(g.line, "too many initialisers");
      return;
    }
    if (peek().kind == Tok::kStrLit && g.type.is_array() &&
        elem.size() == 1) {
      const Token& s = next();
      for (const char c : s.text) g.int_inits.push_back(c);
      g.int_inits.push_back(0);
      if (g.int_inits.size() > g.type.size()) {
        fail(s.line, "string too long for array");
      }
      return;
    }
    push_global_scalar(g, elem);
  }

  void push_global_scalar(GlobalVar& g, const Type& elem) {
    const ExprPtr e = parse_ternary();
    if (elem.is_double()) {
      g.double_inits.push_back(eval_const_double(*e));
    } else {
      g.int_inits.push_back(eval_const_int(*e));
    }
  }

  static Type innermost_elem(Type t) {
    while (t.is_array()) t = t.elem();
    return t;
  }

  // ---- constant expressions -----------------------------------------------
  static std::int64_t eval_const_int(const Expr& e) {
    switch (e.kind) {
      case Expr::K::kIntLit:
        return e.int_value;
      case Expr::K::kSizeof:
        return e.cast_type.size();
      case Expr::K::kCast:
        return eval_const_int(*e.lhs);
      case Expr::K::kUnary:
        switch (e.un_op) {
          case UnOp::kNeg: return -eval_const_int(*e.lhs);
          case UnOp::kBitNot: return ~eval_const_int(*e.lhs);
          case UnOp::kNot: return eval_const_int(*e.lhs) == 0 ? 1 : 0;
          default: break;
        }
        break;
      case Expr::K::kBinary: {
        const std::int64_t a = eval_const_int(*e.lhs);
        const std::int64_t b = eval_const_int(*e.rhs);
        switch (e.bin_op) {
          case BinOp::kAdd: return a + b;
          case BinOp::kSub: return a - b;
          case BinOp::kMul: return a * b;
          case BinOp::kDiv:
            if (b == 0) fail(e.line, "constant division by zero");
            return a / b;
          case BinOp::kMod:
            if (b == 0) fail(e.line, "constant division by zero");
            return a % b;
          case BinOp::kShl: return a << (b & 31);
          case BinOp::kShr: return a >> (b & 31);
          case BinOp::kAnd: return a & b;
          case BinOp::kOr: return a | b;
          case BinOp::kXor: return a ^ b;
          default: break;
        }
        break;
      }
      default:
        break;
    }
    fail(e.line, "expression is not an integer constant");
  }

  static double eval_const_double(const Expr& e) {
    switch (e.kind) {
      case Expr::K::kDoubleLit:
        return e.double_value;
      case Expr::K::kUnary:
        if (e.un_op == UnOp::kNeg) return -eval_const_double(*e.lhs);
        break;
      case Expr::K::kIntLit:
        return static_cast<double>(e.int_value);
      case Expr::K::kCast:
        return eval_const_double(*e.lhs);
      default:
        break;
    }
    fail(e.line, "expression is not a floating constant");
  }

  // ---- statements -----------------------------------------------------------
  StmtPtr parse_block() {
    auto s = std::make_unique<Stmt>();
    s->kind = Stmt::K::kBlock;
    s->line = line();
    expect(Tok::kLBrace, "{");
    while (!accept(Tok::kRBrace)) {
      if (peek().kind == Tok::kEof) fail(line(), "unterminated block");
      parse_statement_into(s->block);
    }
    return s;
  }

  void parse_statement_into(std::vector<StmtPtr>& out) {
    if (is_type_start(peek().kind)) {
      parse_local_decls(out);
      return;
    }
    out.push_back(parse_statement());
  }

  void parse_local_decls(std::vector<StmtPtr>& out) {
    const Type base = parse_base_type();
    while (true) {
      Type t = parse_pointers(base);
      const Token& name = expect(Tok::kIdent, "variable name");
      t = parse_array_suffix(t);
      if (t.is_void()) fail(name.line, "void variable");
      auto s = std::make_unique<Stmt>();
      s->kind = Stmt::K::kDecl;
      s->line = name.line;
      s->decl.name = name.text;
      s->decl.type = t;
      s->decl.line = name.line;
      if (accept(Tok::kAssign)) {
        if (t.is_array()) fail(name.line, "local array initialisers are not supported");
        s->decl.init = parse_assignment();
      }
      out.push_back(std::move(s));
      if (!accept(Tok::kComma)) break;
    }
    expect(Tok::kSemi, ";");
  }

  StmtPtr parse_statement() {
    auto s = std::make_unique<Stmt>();
    s->line = line();
    switch (peek().kind) {
      case Tok::kLBrace:
        return parse_block();
      case Tok::kSemi:
        next();
        s->kind = Stmt::K::kEmpty;
        return s;
      case Tok::kKwIf: {
        next();
        s->kind = Stmt::K::kIf;
        expect(Tok::kLParen, "(");
        s->expr = parse_expression();
        expect(Tok::kRParen, ")");
        s->body = parse_statement();
        if (accept(Tok::kKwElse)) s->else_body = parse_statement();
        return s;
      }
      case Tok::kKwWhile: {
        next();
        s->kind = Stmt::K::kWhile;
        expect(Tok::kLParen, "(");
        s->expr = parse_expression();
        expect(Tok::kRParen, ")");
        s->body = parse_statement();
        return s;
      }
      case Tok::kKwDo: {
        next();
        s->kind = Stmt::K::kDoWhile;
        s->body = parse_statement();
        if (!accept(Tok::kKwWhile)) fail(line(), "expected while after do");
        expect(Tok::kLParen, "(");
        s->expr = parse_expression();
        expect(Tok::kRParen, ")");
        expect(Tok::kSemi, ";");
        return s;
      }
      case Tok::kKwFor: {
        next();
        s->kind = Stmt::K::kFor;
        expect(Tok::kLParen, "(");
        if (!accept(Tok::kSemi)) {
          if (is_type_start(peek().kind)) {
            std::vector<StmtPtr> decls;
            parse_local_decls(decls);
            if (decls.size() != 1) {
              fail(s->line, "for-init supports a single declaration");
            }
            s->init_decl = std::move(decls[0]);
          } else {
            s->init_expr = parse_expression();
            expect(Tok::kSemi, ";");
          }
        }
        if (!accept(Tok::kSemi)) {
          s->expr = parse_expression();
          expect(Tok::kSemi, ";");
        }
        if (!accept(Tok::kRParen)) {
          s->step = parse_expression();
          expect(Tok::kRParen, ")");
        }
        s->body = parse_statement();
        return s;
      }
      case Tok::kKwReturn: {
        next();
        s->kind = Stmt::K::kReturn;
        if (!accept(Tok::kSemi)) {
          s->expr = parse_expression();
          expect(Tok::kSemi, ";");
        }
        return s;
      }
      case Tok::kKwBreak:
        next();
        expect(Tok::kSemi, ";");
        s->kind = Stmt::K::kBreak;
        return s;
      case Tok::kKwContinue:
        next();
        expect(Tok::kSemi, ";");
        s->kind = Stmt::K::kContinue;
        return s;
      default: {
        s->kind = Stmt::K::kExpr;
        s->expr = parse_expression();
        expect(Tok::kSemi, ";");
        return s;
      }
    }
  }

  // ---- expressions -----------------------------------------------------------
  ExprPtr make(Expr::K kind) {
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    e->line = line();
    return e;
  }

  ExprPtr parse_expression() { return parse_assignment(); }

  ExprPtr parse_assignment() {
    ExprPtr lhs = parse_ternary();
    const Tok k = peek().kind;
    const bool compound =
        k == Tok::kPlusEq || k == Tok::kMinusEq || k == Tok::kStarEq ||
        k == Tok::kSlashEq || k == Tok::kPercentEq || k == Tok::kAmpEq ||
        k == Tok::kPipeEq || k == Tok::kCaretEq || k == Tok::kShlEq ||
        k == Tok::kShrEq;
    if (k == Tok::kAssign || compound) {
      const int l = line();
      next();
      auto e = std::make_unique<Expr>();
      e->kind = Expr::K::kAssign;
      e->line = l;
      e->flag = compound;  // compound assignment: evaluate lvalue once
      if (compound) {
        switch (k) {
          case Tok::kPlusEq: e->bin_op = BinOp::kAdd; break;
          case Tok::kMinusEq: e->bin_op = BinOp::kSub; break;
          case Tok::kStarEq: e->bin_op = BinOp::kMul; break;
          case Tok::kSlashEq: e->bin_op = BinOp::kDiv; break;
          case Tok::kPercentEq: e->bin_op = BinOp::kMod; break;
          case Tok::kAmpEq: e->bin_op = BinOp::kAnd; break;
          case Tok::kPipeEq: e->bin_op = BinOp::kOr; break;
          case Tok::kCaretEq: e->bin_op = BinOp::kXor; break;
          case Tok::kShlEq: e->bin_op = BinOp::kShl; break;
          case Tok::kShrEq: e->bin_op = BinOp::kShr; break;
          default: break;
        }
      }
      e->lhs = std::move(lhs);
      e->rhs = parse_assignment();
      return e;
    }
    return lhs;
  }

  ExprPtr parse_ternary() {
    ExprPtr c = parse_binary(0);
    if (accept(Tok::kQuestion)) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::K::kCond;
      e->line = c->line;
      e->cond = std::move(c);
      e->lhs = parse_assignment();
      expect(Tok::kColon, ":");
      e->rhs = parse_ternary();
      return e;
    }
    return c;
  }

  struct BinLevel {
    Tok tok;
    BinOp op;
    int prec;
  };

  static const BinLevel* binary_level(Tok kind) {
    static constexpr BinLevel kLevels[] = {
        {Tok::kOrOr, BinOp::kLogOr, 1},
        {Tok::kAndAnd, BinOp::kLogAnd, 2},
        {Tok::kPipe, BinOp::kOr, 3},
        {Tok::kCaret, BinOp::kXor, 4},
        {Tok::kAmp, BinOp::kAnd, 5},
        {Tok::kEqEq, BinOp::kEq, 6},
        {Tok::kNotEq, BinOp::kNe, 6},
        {Tok::kLt, BinOp::kLt, 7},
        {Tok::kLe, BinOp::kLe, 7},
        {Tok::kGt, BinOp::kGt, 7},
        {Tok::kGe, BinOp::kGe, 7},
        {Tok::kShl, BinOp::kShl, 8},
        {Tok::kShr, BinOp::kShr, 8},
        {Tok::kPlus, BinOp::kAdd, 9},
        {Tok::kMinus, BinOp::kSub, 9},
        {Tok::kStar, BinOp::kMul, 10},
        {Tok::kSlash, BinOp::kDiv, 10},
        {Tok::kPercent, BinOp::kMod, 10},
    };
    for (const auto& level : kLevels) {
      if (level.tok == kind) return &level;
    }
    return nullptr;
  }

  ExprPtr parse_binary(int min_prec) {
    ExprPtr lhs = parse_unary();
    while (true) {
      const BinLevel* level = binary_level(peek().kind);
      if (level == nullptr || level->prec < min_prec) return lhs;
      const int l = line();
      next();
      ExprPtr rhs = parse_binary(level->prec + 1);
      auto e = std::make_unique<Expr>();
      e->kind = Expr::K::kBinary;
      e->line = l;
      e->bin_op = level->op;
      e->lhs = std::move(lhs);
      e->rhs = std::move(rhs);
      lhs = std::move(e);
    }
  }

  bool at_cast() const {
    return peek().kind == Tok::kLParen && is_type_start(peek(1).kind);
  }

  ExprPtr parse_unary() {
    const int l = line();
    switch (peek().kind) {
      case Tok::kMinus: {
        next();
        auto e = std::make_unique<Expr>();
        e->kind = Expr::K::kUnary;
        e->line = l;
        e->un_op = UnOp::kNeg;
        e->lhs = parse_unary();
        return e;
      }
      case Tok::kPlus:
        next();
        return parse_unary();
      case Tok::kBang: {
        next();
        auto e = std::make_unique<Expr>();
        e->kind = Expr::K::kUnary;
        e->line = l;
        e->un_op = UnOp::kNot;
        e->lhs = parse_unary();
        return e;
      }
      case Tok::kTilde: {
        next();
        auto e = std::make_unique<Expr>();
        e->kind = Expr::K::kUnary;
        e->line = l;
        e->un_op = UnOp::kBitNot;
        e->lhs = parse_unary();
        return e;
      }
      case Tok::kStar: {
        next();
        auto e = std::make_unique<Expr>();
        e->kind = Expr::K::kUnary;
        e->line = l;
        e->un_op = UnOp::kDeref;
        e->lhs = parse_unary();
        return e;
      }
      case Tok::kAmp: {
        next();
        auto e = std::make_unique<Expr>();
        e->kind = Expr::K::kUnary;
        e->line = l;
        e->un_op = UnOp::kAddr;
        e->lhs = parse_unary();
        return e;
      }
      case Tok::kPlusPlus:
      case Tok::kMinusMinus: {
        const bool inc = peek().kind == Tok::kPlusPlus;
        next();
        auto e = std::make_unique<Expr>();
        e->kind = Expr::K::kIncDec;
        e->line = l;
        e->int_value = inc ? 1 : -1;
        e->flag = true;  // prefix
        e->lhs = parse_unary();
        return e;
      }
      case Tok::kKwSizeof: {
        next();
        expect(Tok::kLParen, "(");
        Type t = parse_pointers(parse_base_type());
        t = parse_array_suffix(t);
        expect(Tok::kRParen, ")");
        auto e = std::make_unique<Expr>();
        e->kind = Expr::K::kSizeof;
        e->line = l;
        e->cast_type = t;
        return e;
      }
      case Tok::kLParen:
        if (at_cast()) {
          next();
          Type t = parse_pointers(parse_base_type());
          expect(Tok::kRParen, ")");
          auto e = std::make_unique<Expr>();
          e->kind = Expr::K::kCast;
          e->line = l;
          e->cast_type = t;
          e->lhs = parse_unary();
          return e;
        }
        return parse_postfix();
      default:
        return parse_postfix();
    }
  }

  ExprPtr parse_postfix() {
    ExprPtr e = parse_primary();
    while (true) {
      if (accept(Tok::kLBracket)) {
        auto idx = std::make_unique<Expr>();
        idx->kind = Expr::K::kIndex;
        idx->line = e->line;
        idx->lhs = std::move(e);
        idx->rhs = parse_expression();
        expect(Tok::kRBracket, "]");
        e = std::move(idx);
        continue;
      }
      if (peek().kind == Tok::kPlusPlus || peek().kind == Tok::kMinusMinus) {
        const bool inc = peek().kind == Tok::kPlusPlus;
        next();
        auto pe = std::make_unique<Expr>();
        pe->kind = Expr::K::kIncDec;
        pe->line = e->line;
        pe->int_value = inc ? 1 : -1;
        pe->flag = false;  // postfix
        pe->lhs = std::move(e);
        e = std::move(pe);
        continue;
      }
      return e;
    }
  }

  ExprPtr parse_primary() {
    const Token& t = peek();
    switch (t.kind) {
      case Tok::kIntLit: {
        next();
        auto e = std::make_unique<Expr>();
        e->kind = Expr::K::kIntLit;
        e->line = t.line;
        e->int_value = t.int_value;
        return e;
      }
      case Tok::kDoubleLit: {
        next();
        auto e = std::make_unique<Expr>();
        e->kind = Expr::K::kDoubleLit;
        e->line = t.line;
        e->double_value = t.double_value;
        return e;
      }
      case Tok::kStrLit: {
        next();
        auto e = std::make_unique<Expr>();
        e->kind = Expr::K::kStrLit;
        e->line = t.line;
        e->text = t.text;
        return e;
      }
      case Tok::kIdent: {
        next();
        if (peek().kind == Tok::kLParen) {
          next();
          auto e = std::make_unique<Expr>();
          e->kind = Expr::K::kCall;
          e->line = t.line;
          e->text = t.text;
          if (!accept(Tok::kRParen)) {
            while (true) {
              e->args.push_back(parse_assignment());
              if (!accept(Tok::kComma)) break;
            }
            expect(Tok::kRParen, ")");
          }
          return e;
        }
        auto e = std::make_unique<Expr>();
        e->kind = Expr::K::kVar;
        e->line = t.line;
        e->text = t.text;
        return e;
      }
      case Tok::kLParen: {
        next();
        ExprPtr e = parse_expression();
        expect(Tok::kRParen, ")");
        return e;
      }
      default:
        fail(t.line, "expected expression");
    }
  }

  const std::vector<Token>& toks_;
  TranslationUnit& unit_;
  std::size_t pos_ = 0;
};

}  // namespace

void parse_into(const std::vector<Token>& tokens, TranslationUnit& unit) {
  Parser(tokens, unit).run();
}

}  // namespace nfp::mcc
