// Peephole optimiser over the generated assembly (opt-in; the default
// build stays -O0-style to match the paper's bare-metal instruction mixes).
//
// Implemented windows (all within a basic block — a label ends the window):
//   1. store-forwarding: `st rX, [%sp+N]` directly followed by
//      `ld [%sp+N], rY` drops the reload (same register) or turns it into a
//      register move.
//   2. fallthrough branches: `ba .L` + delay-slot `nop` immediately before
//      the definition of `.L` are removed.
//   3. address-move folding: `mov rX, rY` + `ld [rY], rY` becomes
//      `ld [rX], rY` (rY is overwritten, so the move is dead).
//   4. immediate folding: `mov IMM, rY` + `op rA, rY, rD` (or `cmp rA, rY`)
//      becomes `op rA, IMM, rD` when IMM fits simm13, rA != rY and rY is a
//      virtual-stack pool register. Relies on the code generator's stack
//      discipline: a popped pool register is always written before it is
//      read again, so dropping its defining move is safe.
#pragma once

#include <string>

namespace nfp::mcc {

struct PeepholeStats {
  int removed_loads = 0;
  int removed_branches = 0;
  int folded_moves = 0;
  int folded_immediates = 0;
  int total() const {
    return removed_loads + removed_branches + folded_moves +
           folded_immediates;
  }
};

// Returns the optimised assembly text; `stats` (optional) reports what was
// removed.
std::string peephole_optimize(const std::string& asm_text,
                              PeepholeStats* stats = nullptr);

}  // namespace nfp::mcc
