// Recursive-descent parser for Micro-C.
#pragma once

#include <vector>

#include "mcc/ast.h"
#include "mcc/lexer.h"

namespace nfp::mcc {

// Parses one preprocessed token stream into `unit` (so multiple source files
// accumulate into a single translation unit, mirroring whole-program
// compilation of a bare-metal kernel).
void parse_into(const std::vector<Token>& tokens, TranslationUnit& unit);

}  // namespace nfp::mcc
