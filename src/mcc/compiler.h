// Micro-C compiler driver: preprocess + parse + codegen + assemble.
//
// ## The Micro-C dialect (dual-compilable C subset)
//  - types: void, char/short/int (signed & unsigned), double, pointers,
//    constant-size (multi-dimensional) arrays
//  - no structs/unions/enums/typedefs/function pointers/varargs
//  - statements: blocks, if/else, while, do-while, for, return,
//    break/continue; declarations anywhere in a block
//  - expressions: full C operator set (incl. compound assignment, ++/--,
//    ternary, short-circuit logic, casts, sizeof(type))
//  - preprocessor: object-like #define, #undef, #ifdef/#ifndef/#else/#endif;
//    MC_TARGET is predefined (plus MC_SOFT_FLOAT under the soft ABI)
//  - intrinsics (host shims in tests/support/mc_host.h):
//      mc_putc, mc_halt, mc_clock, mc_umulhi, mc_sqrt, mc_dhi, mc_dlo,
//      mc_bits2d
//
// Whole-program compilation: all sources are merged into one translation
// unit; under FloatAbi::kSoft the soft-float runtime is appended
// automatically (the -msoft-float analog of the paper's builds).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "asmkit/program.h"
#include "mcc/codegen.h"
#include "sim/memmap.h"

namespace nfp::mcc {

struct CompileOptions {
  FloatAbi float_abi = FloatAbi::kHard;
  MulDivAbi muldiv_abi = MulDivAbi::kHard;
  bool link_runtime = true;  // append soft runtimes for the soft ABIs
  bool peephole = false;     // opt-in assembly peephole (mcc/peephole.h)
  std::uint32_t origin = sim::kTextBase;
  std::map<std::string, std::string> extra_defines;
};

class Compiler {
 public:
  explicit Compiler(CompileOptions opts = {}) : opts_(std::move(opts)) {}

  // Compiles Micro-C sources to SPARC assembly text.
  std::string compile_to_asm(const std::vector<std::string>& sources) const;

  // Full pipeline: sources -> loadable program image.
  asmkit::Program compile(const std::vector<std::string>& sources) const;

  const CompileOptions& options() const { return opts_; }

 private:
  CompileOptions opts_;
};

}  // namespace nfp::mcc
