// Micro-C abstract syntax tree.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mcc/types.h"

namespace nfp::mcc {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class BinOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv, kMod,
  kShl, kShr, kAnd, kOr, kXor,
  kLt, kLe, kGt, kGe, kEq, kNe,
  kLogAnd, kLogOr,
};

enum class UnOp : std::uint8_t {
  kNeg, kNot, kBitNot, kDeref, kAddr,
};

struct Expr {
  enum class K : std::uint8_t {
    kIntLit, kDoubleLit, kStrLit,
    kVar,           // text
    kBinary,        // bin_op, lhs, rhs
    kUnary,         // un_op, lhs
    kAssign,        // lhs = rhs (plain; compound ops desugared by parser)
    kCond,          // cond ? lhs : rhs
    kCall,          // text = callee, args
    kIndex,         // lhs[rhs]
    kCast,          // (cast_type) lhs
    kSizeof,        // sizeof(cast_type) -> int constant
    kIncDec,        // ++/-- ; lhs target; int_value: +1/-1; flag: prefix
  };

  K kind;
  int line = 0;

  std::int64_t int_value = 0;
  double double_value = 0.0;
  std::string text;
  BinOp bin_op{};
  UnOp un_op{};
  Type cast_type;
  bool flag = false;  // kIncDec: prefix?

  ExprPtr lhs, rhs, cond;
  std::vector<ExprPtr> args;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct VarDecl {
  std::string name;
  Type type;
  ExprPtr init;  // optional (scalars only for locals)
  int line = 0;
};

struct Stmt {
  enum class K : std::uint8_t {
    kExpr, kDecl, kBlock, kIf, kWhile, kDoWhile, kFor, kReturn, kBreak,
    kContinue, kEmpty,
  };

  K kind;
  int line = 0;

  ExprPtr expr;       // kExpr, kReturn (optional), kIf/kWhile condition
  StmtPtr body;       // kIf then / loop body
  StmtPtr else_body;  // kIf else
  ExprPtr init_expr;  // kFor init (expression form)
  StmtPtr init_decl;  // kFor init (declaration form)
  ExprPtr step;       // kFor step
  std::vector<StmtPtr> block;  // kBlock
  VarDecl decl;       // kDecl
};

struct Param {
  std::string name;
  Type type;
};

struct Function {
  std::string name;
  Type return_type;
  std::vector<Param> params;
  StmtPtr body;  // null for prototypes
  int line = 0;
};

struct GlobalVar {
  std::string name;
  Type type;
  // Constant initialisers: scalars have one entry; arrays up to array_len
  // entries (rest zero). Doubles use double_values.
  std::vector<std::int64_t> int_inits;
  std::vector<double> double_inits;
  bool has_init = false;
  int line = 0;
};

struct TranslationUnit {
  std::vector<Function> functions;
  std::vector<GlobalVar> globals;
};

}  // namespace nfp::mcc
