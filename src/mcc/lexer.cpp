#include "mcc/lexer.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <functional>

namespace nfp::mcc {
namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  throw CompileError("mcc line " + std::to_string(line) + ": " + message);
}

struct Keyword {
  const char* text;
  Tok kind;
};

constexpr Keyword kKeywords[] = {
    {"void", Tok::kKwVoid},         {"int", Tok::kKwInt},
    {"unsigned", Tok::kKwUnsigned}, {"char", Tok::kKwChar},
    {"short", Tok::kKwShort},       {"double", Tok::kKwDouble},
    {"signed", Tok::kKwSigned},     {"const", Tok::kKwConst},
    {"static", Tok::kKwStatic},     {"if", Tok::kKwIf},
    {"else", Tok::kKwElse},         {"while", Tok::kKwWhile},
    {"for", Tok::kKwFor},           {"do", Tok::kKwDo},
    {"return", Tok::kKwReturn},     {"break", Tok::kKwBreak},
    {"continue", Tok::kKwContinue}, {"sizeof", Tok::kKwSizeof},
};

char unescape(char c, int line) {
  switch (c) {
    case 'n': return '\n';
    case 't': return '\t';
    case 'r': return '\r';
    case '0': return '\0';
    case '\\': return '\\';
    case '\'': return '\'';
    case '"': return '"';
    default: fail(line, "unsupported escape sequence");
  }
}

bool is_float_literal(std::string_view s) {
  // Hex floats: 0x...p; decimal floats: contain '.' or exponent.
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    return s.find('p') != std::string_view::npos ||
           s.find('P') != std::string_view::npos ||
           s.find('.') != std::string_view::npos;
  }
  return s.find('.') != std::string_view::npos ||
         s.find('e') != std::string_view::npos ||
         s.find('E') != std::string_view::npos;
}

}  // namespace

const char* tok_name(Tok kind) {
  switch (kind) {
    case Tok::kEof: return "<eof>";
    case Tok::kIdent: return "identifier";
    case Tok::kIntLit: return "integer literal";
    case Tok::kDoubleLit: return "double literal";
    case Tok::kCharLit: return "char literal";
    case Tok::kStrLit: return "string literal";
    case Tok::kLParen: return "(";
    case Tok::kRParen: return ")";
    case Tok::kLBrace: return "{";
    case Tok::kRBrace: return "}";
    case Tok::kLBracket: return "[";
    case Tok::kRBracket: return "]";
    case Tok::kSemi: return ";";
    case Tok::kComma: return ",";
    case Tok::kAssign: return "=";
    default: return "<token>";
  }
}

std::vector<Token> lex(std::string_view src, int first_line) {
  std::vector<Token> out;
  int line = first_line;
  std::size_t i = 0;
  const auto push = [&](Tok kind) {
    Token t;
    t.kind = kind;
    t.line = line;
    out.push_back(std::move(t));
  };

  while (i < src.size()) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < src.size() && (std::isalnum(static_cast<unsigned char>(src[j])) ||
                                src[j] == '_')) {
        ++j;
      }
      const std::string_view word = src.substr(i, j - i);
      Token t;
      t.line = line;
      t.kind = Tok::kIdent;
      for (const auto& kw : kKeywords) {
        if (word == kw.text) {
          t.kind = kw.kind;
          break;
        }
      }
      t.text = std::string(word);
      out.push_back(std::move(t));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < src.size() &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      // Scan the maximal numeric literal (covers hex, hex-float, exponent).
      std::size_t j = i;
      while (j < src.size()) {
        const char d = src[j];
        if (std::isalnum(static_cast<unsigned char>(d)) || d == '.') {
          ++j;
        } else if ((d == '+' || d == '-') && j > i &&
                   (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                    src[j - 1] == 'p' || src[j - 1] == 'P')) {
          ++j;
        } else {
          break;
        }
      }
      std::string text(src.substr(i, j - i));
      Token t;
      t.line = line;
      if (is_float_literal(text)) {
        char* end = nullptr;
        t.kind = Tok::kDoubleLit;
        t.double_value = std::strtod(text.c_str(), &end);
        if (end != text.c_str() + text.size()) {
          fail(line, "bad float literal '" + text + "'");
        }
      } else {
        // Strip C suffixes (u, U, l, L) for host-compatible sources.
        std::size_t len = text.size();
        while (len > 0 && std::strchr("uUlL", text[len - 1])) --len;
        const std::string digits = text.substr(0, len);
        char* end = nullptr;
        t.kind = Tok::kIntLit;
        t.int_value = std::strtoll(digits.c_str(), &end, 0);
        if (end != digits.c_str() + digits.size() || digits.empty()) {
          fail(line, "bad integer literal '" + text + "'");
        }
      }
      out.push_back(std::move(t));
      i = j;
      continue;
    }
    if (c == '\'') {
      std::size_t j = i + 1;
      if (j >= src.size()) fail(line, "unterminated char literal");
      char value = src[j];
      if (value == '\\') {
        ++j;
        if (j >= src.size()) fail(line, "unterminated char literal");
        value = unescape(src[j], line);
      }
      ++j;
      if (j >= src.size() || src[j] != '\'') {
        fail(line, "unterminated char literal");
      }
      Token t;
      t.line = line;
      t.kind = Tok::kIntLit;
      t.int_value = static_cast<unsigned char>(value);
      out.push_back(std::move(t));
      i = j + 1;
      continue;
    }
    if (c == '"') {
      std::string value;
      std::size_t j = i + 1;
      while (j < src.size() && src[j] != '"') {
        char d = src[j];
        if (d == '\n') fail(line, "newline in string literal");
        if (d == '\\') {
          ++j;
          if (j >= src.size()) fail(line, "unterminated string");
          d = unescape(src[j], line);
        }
        value.push_back(d);
        ++j;
      }
      if (j >= src.size()) fail(line, "unterminated string");
      Token t;
      t.line = line;
      t.kind = Tok::kStrLit;
      t.text = std::move(value);
      out.push_back(std::move(t));
      i = j + 1;
      continue;
    }

    // Operators, longest match first.
    const std::string_view rest = src.substr(i);
    struct OpTok {
      const char* text;
      Tok kind;
    };
    static constexpr OpTok kOps[] = {
        {"<<=", Tok::kShlEq}, {">>=", Tok::kShrEq},
        {"==", Tok::kEqEq},   {"!=", Tok::kNotEq},
        {"<=", Tok::kLe},     {">=", Tok::kGe},
        {"<<", Tok::kShl},    {">>", Tok::kShr},
        {"&&", Tok::kAndAnd}, {"||", Tok::kOrOr},
        {"+=", Tok::kPlusEq}, {"-=", Tok::kMinusEq},
        {"*=", Tok::kStarEq}, {"/=", Tok::kSlashEq},
        {"%=", Tok::kPercentEq},
        {"&=", Tok::kAmpEq},  {"|=", Tok::kPipeEq},
        {"^=", Tok::kCaretEq},
        {"++", Tok::kPlusPlus}, {"--", Tok::kMinusMinus},
        {"(", Tok::kLParen},  {")", Tok::kRParen},
        {"{", Tok::kLBrace},  {"}", Tok::kRBrace},
        {"[", Tok::kLBracket}, {"]", Tok::kRBracket},
        {";", Tok::kSemi},    {",", Tok::kComma},
        {"=", Tok::kAssign},  {"+", Tok::kPlus},
        {"-", Tok::kMinus},   {"*", Tok::kStar},
        {"/", Tok::kSlash},   {"%", Tok::kPercent},
        {"&", Tok::kAmp},     {"|", Tok::kPipe},
        {"^", Tok::kCaret},   {"~", Tok::kTilde},
        {"!", Tok::kBang},    {"<", Tok::kLt},
        {">", Tok::kGt},      {"?", Tok::kQuestion},
        {":", Tok::kColon},
    };
    bool matched = false;
    for (const auto& op : kOps) {
      const std::size_t n = std::strlen(op.text);
      if (rest.substr(0, n) == op.text) {
        push(op.kind);
        i += n;
        matched = true;
        break;
      }
    }
    if (!matched) {
      fail(line, std::string("unexpected character '") + c + "'");
    }
  }
  Token eof;
  eof.kind = Tok::kEof;
  eof.line = line;
  out.push_back(eof);
  return out;
}

namespace {

// Removes // and /* */ comments, preserving newlines for line numbers.
std::string strip_comments(std::string_view src) {
  std::string out;
  out.reserve(src.size());
  std::size_t i = 0;
  bool in_str = false;
  char str_quote = 0;
  while (i < src.size()) {
    const char c = src[i];
    if (in_str) {
      out.push_back(c);
      if (c == '\\' && i + 1 < src.size()) {
        out.push_back(src[i + 1]);
        i += 2;
        continue;
      }
      if (c == str_quote) in_str = false;
      ++i;
      continue;
    }
    if (c == '"' || c == '\'') {
      in_str = true;
      str_quote = c;
      out.push_back(c);
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < src.size() && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') out.push_back('\n');
        ++i;
      }
      i = std::min(i + 2, src.size());
      continue;
    }
    out.push_back(c);
    ++i;
  }
  return out;
}

}  // namespace

std::vector<Token> preprocess_and_lex(
    std::string_view source,
    const std::map<std::string, std::string>& defines) {
  const std::string clean = strip_comments(source);

  // Macro table: name -> replacement token list.
  std::map<std::string, std::vector<Token>> macros;
  for (const auto& [name, body] : defines) {
    auto toks = lex(body);
    toks.pop_back();  // drop EOF
    macros[name] = std::move(toks);
  }

  // Line-based directive pass.
  std::string filtered;
  filtered.reserve(clean.size());
  std::vector<bool> active_stack;  // per #if level
  const auto active = [&] {
    for (const bool a : active_stack) {
      if (!a) return false;
    }
    return true;
  };

  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= clean.size()) {
    const std::size_t eol = clean.find('\n', pos);
    const std::string_view raw = std::string_view(clean).substr(
        pos, eol == std::string::npos ? clean.size() - pos : eol - pos);
    ++line_no;
    std::string_view text = raw;
    while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front())))
      text.remove_prefix(1);

    if (!text.empty() && text.front() == '#') {
      text.remove_prefix(1);
      while (!text.empty() &&
             std::isspace(static_cast<unsigned char>(text.front())))
        text.remove_prefix(1);
      const std::size_t name_end = text.find_first_of(" \t");
      const std::string_view directive = text.substr(0, name_end);
      std::string_view rest =
          name_end == std::string_view::npos ? "" : text.substr(name_end);
      while (!rest.empty() &&
             std::isspace(static_cast<unsigned char>(rest.front())))
        rest.remove_prefix(1);
      while (!rest.empty() &&
             std::isspace(static_cast<unsigned char>(rest.back())))
        rest.remove_suffix(1);

      if (directive == "define") {
        if (active()) {
          const std::size_t sp = rest.find_first_of(" \t");
          const std::string name(rest.substr(0, sp));
          if (name.empty()) fail(line_no, "#define without a name");
          if (name.find('(') != std::string::npos ||
              (sp != std::string_view::npos && rest[sp] == '(')) {
            fail(line_no, "function-like macros are not supported");
          }
          const std::string body(
              sp == std::string_view::npos ? "" : rest.substr(sp + 1));
          auto toks = lex(body, line_no);
          toks.pop_back();
          macros[name] = std::move(toks);
        }
      } else if (directive == "undef") {
        if (active()) macros.erase(std::string(rest));
      } else if (directive == "ifdef" || directive == "ifndef") {
        const bool defined = macros.count(std::string(rest)) != 0;
        active_stack.push_back(directive == "ifdef" ? defined : !defined);
      } else if (directive == "else") {
        if (active_stack.empty()) fail(line_no, "#else without #ifdef");
        active_stack.back() = !active_stack.back();
      } else if (directive == "endif") {
        if (active_stack.empty()) fail(line_no, "#endif without #ifdef");
        active_stack.pop_back();
      } else {
        fail(line_no, "unsupported directive #" + std::string(directive));
      }
      filtered += '\n';  // keep line numbering
    } else {
      if (active()) filtered += std::string(raw);
      filtered += '\n';
    }
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }
  if (!active_stack.empty()) fail(line_no, "unterminated #ifdef");

  // Lex, then expand macros token-wise (recursively, with a depth guard).
  const std::vector<Token> raw_tokens = lex(filtered);
  std::vector<Token> out;
  out.reserve(raw_tokens.size());
  const std::function<void(const Token&, int)> expand =
      [&](const Token& t, int depth) {
        if (t.kind == Tok::kIdent) {
          const auto it = macros.find(t.text);
          if (it != macros.end()) {
            if (depth > 16) fail(t.line, "macro expansion too deep");
            for (const Token& body_tok : it->second) {
              Token copy = body_tok;
              copy.line = t.line;
              expand(copy, depth + 1);
            }
            return;
          }
        }
        out.push_back(t);
      };
  for (const Token& t : raw_tokens) {
    if (t.kind == Tok::kEof) {
      out.push_back(t);
      break;
    }
    expand(t, 0);
  }
  return out;
}

}  // namespace nfp::mcc
