#include "mcc/peephole.h"

#include <vector>

namespace nfp::mcc {
namespace {

struct Line {
  std::string text;     // full original line
  std::string trimmed;  // without indentation
  bool is_label = false;
  bool removed = false;
};

std::vector<Line> split_lines(const std::string& text) {
  std::vector<Line> lines;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string line =
        text.substr(pos, eol == std::string::npos ? std::string::npos
                                                  : eol - pos);
    Line entry;
    entry.text = line;
    const std::size_t start = line.find_first_not_of(" \t");
    entry.trimmed = start == std::string::npos ? "" : line.substr(start);
    entry.is_label =
        !entry.trimmed.empty() && entry.trimmed.back() == ':' &&
        start == 0;  // labels are emitted at column zero
    lines.push_back(std::move(entry));
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }
  return lines;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

// "st %l0, [%sp+24]" -> ("%l0", "[%sp+24]"); empty on mismatch.
bool parse_st_sp(const std::string& s, std::string* reg, std::string* slot) {
  if (!starts_with(s, "st ")) return false;
  const std::size_t comma = s.find(", [%sp+");
  if (comma == std::string::npos) return false;
  *reg = s.substr(3, comma - 3);
  *slot = s.substr(comma + 2);
  return !slot->empty() && slot->back() == ']';
}

bool parse_ld_sp(const std::string& s, std::string* slot, std::string* reg) {
  if (!starts_with(s, "ld [%sp+")) return false;
  const std::size_t close = s.find("], ");
  if (close == std::string::npos) return false;
  *slot = s.substr(3, close - 2);  // includes brackets
  *reg = s.substr(close + 3);
  return true;
}

// "mov %l0, %l1" -> ("%l0", "%l1"); also matches "mov 5, %l1" with src "5".
bool parse_mov(const std::string& s, std::string* src, std::string* dst) {
  if (!starts_with(s, "mov ")) return false;
  const std::size_t comma = s.find(", ");
  if (comma == std::string::npos) return false;
  *src = s.substr(4, comma - 4);
  *dst = s.substr(comma + 2);
  return !src->empty() && !dst->empty() &&
         dst->find(' ') == std::string::npos;
}

bool is_pool_register(const std::string& reg) {
  static const char* const kPool[] = {"%l0", "%l1", "%l2", "%l3",
                                      "%l4", "%l5", "%l6", "%l7",
                                      "%g2", "%g3", "%g4"};
  for (const char* p : kPool) {
    if (reg == p) return true;
  }
  return false;
}

bool parse_simm13(const std::string& text, long* value) {
  if (text.empty() || text[0] == '%') return false;
  char* end = nullptr;
  *value = std::strtol(text.c_str(), &end, 0);
  return end == text.c_str() + text.size() && *value >= -4096 &&
         *value <= 4095;
}

// Three-operand ALU line "op %rA, %rB, %rD" with a foldable opcode.
bool parse_alu3(const std::string& s, std::string* op, std::string* ra,
                std::string* rb, std::string* rd) {
  static const char* const kFoldable[] = {"add", "sub", "and", "or",
                                          "xor", "sll", "srl", "sra",
                                          "smul", "umul"};
  const std::size_t sp = s.find(' ');
  if (sp == std::string::npos) return false;
  *op = s.substr(0, sp);
  bool known = false;
  for (const char* k : kFoldable) {
    if (*op == k) known = true;
  }
  if (!known) return false;
  const std::string rest = s.substr(sp + 1);
  const std::size_t c1 = rest.find(", ");
  if (c1 == std::string::npos) return false;
  const std::size_t c2 = rest.find(", ", c1 + 2);
  if (c2 == std::string::npos) return false;
  *ra = rest.substr(0, c1);
  *rb = rest.substr(c1 + 2, c2 - c1 - 2);
  *rd = rest.substr(c2 + 2);
  return !ra->empty() && !rb->empty() && !rd->empty();
}

}  // namespace

std::string peephole_optimize(const std::string& asm_text,
                              PeepholeStats* stats) {
  std::vector<Line> lines = split_lines(asm_text);
  PeepholeStats local;

  // Window 1: st/ld forwarding.
  for (std::size_t i = 0; i + 1 < lines.size(); ++i) {
    if (lines[i].removed || lines[i].is_label) continue;
    std::string st_reg, st_slot;
    if (!parse_st_sp(lines[i].trimmed, &st_reg, &st_slot)) continue;
    // The very next line (no labels in between) must be the matching load.
    const std::size_t j = i + 1;
    if (lines[j].removed || lines[j].is_label) continue;
    std::string ld_slot, ld_reg;
    if (!parse_ld_sp(lines[j].trimmed, &ld_slot, &ld_reg)) continue;
    if (ld_slot != st_slot) continue;
    if (ld_reg == st_reg) {
      lines[j].removed = true;
      ++local.removed_loads;
    } else {
      // Forward through a register-register move instead of the memory
      // round trip (the slot still receives the store above).
      lines[j].text = "        mov " + st_reg + ", " + ld_reg;
      lines[j].trimmed = "mov " + st_reg + ", " + ld_reg;
      ++local.removed_loads;
    }
  }

  // Window 3: address-move folding (mov rX, rY ; ld [rY], rY).
  for (std::size_t i = 0; i + 1 < lines.size(); ++i) {
    if (lines[i].removed || lines[i].is_label) continue;
    std::string src, dst;
    if (!parse_mov(lines[i].trimmed, &src, &dst)) continue;
    if (src.empty() || src[0] != '%') continue;  // register moves only
    const std::size_t j = i + 1;
    if (lines[j].removed || lines[j].is_label) continue;
    const std::string want = "ld [" + dst + "], " + dst;
    if (lines[j].trimmed == want) {
      lines[i].removed = true;
      lines[j].text = "        ld [" + src + "], " + dst;
      lines[j].trimmed = "ld [" + src + "], " + dst;
      ++local.folded_moves;
    }
  }

  // Window 4: immediate folding into the second ALU/cmp operand.
  for (std::size_t i = 0; i + 1 < lines.size(); ++i) {
    if (lines[i].removed || lines[i].is_label) continue;
    std::string imm_text, dst;
    if (!parse_mov(lines[i].trimmed, &imm_text, &dst)) continue;
    long imm = 0;
    if (!parse_simm13(imm_text, &imm)) continue;
    if (!is_pool_register(dst)) continue;
    const std::size_t j = i + 1;
    if (lines[j].removed || lines[j].is_label) continue;
    // cmp rA, rY
    if (starts_with(lines[j].trimmed, "cmp ")) {
      const std::string rest = lines[j].trimmed.substr(4);
      const std::size_t comma = rest.find(", ");
      if (comma == std::string::npos) continue;
      const std::string ra = rest.substr(0, comma);
      const std::string rb = rest.substr(comma + 2);
      if (rb == dst && ra != dst) {
        lines[i].removed = true;
        lines[j].text = "        cmp " + ra + ", " + imm_text;
        lines[j].trimmed = "cmp " + ra + ", " + imm_text;
        ++local.folded_immediates;
      }
      continue;
    }
    std::string op, ra, rb, rd;
    if (!parse_alu3(lines[j].trimmed, &op, &ra, &rb, &rd)) continue;
    if (rb == dst && ra != dst) {
      lines[i].removed = true;
      const std::string folded = op + " " + ra + ", " + imm_text + ", " + rd;
      lines[j].text = "        " + folded;
      lines[j].trimmed = folded;
      ++local.folded_immediates;
    }
  }

  // Window 2: branch-to-fallthrough (ba .L / nop / .L:).
  for (std::size_t i = 0; i + 2 < lines.size(); ++i) {
    if (lines[i].removed) continue;
    if (!starts_with(lines[i].trimmed, "ba ")) continue;
    const std::string target = lines[i].trimmed.substr(3);
    if (lines[i + 1].removed || lines[i + 1].trimmed != "nop") continue;
    // Find the next surviving line; it must be the target label.
    std::size_t j = i + 2;
    while (j < lines.size() && lines[j].removed) ++j;
    if (j >= lines.size() || !lines[j].is_label) continue;
    const std::string label =
        lines[j].trimmed.substr(0, lines[j].trimmed.size() - 1);
    if (label == target) {
      lines[i].removed = true;
      lines[i + 1].removed = true;
      ++local.removed_branches;
    }
  }

  std::string out;
  out.reserve(asm_text.size());
  for (const Line& line : lines) {
    if (line.removed) continue;
    out += line.text;
    out += '\n';
  }
  if (!out.empty()) out.pop_back();  // drop the synthetic trailing newline
  if (stats) *stats = local;
  return out;
}

}  // namespace nfp::mcc
