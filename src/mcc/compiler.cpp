#include "mcc/compiler.h"

#include "asmkit/assembler.h"
#include "mcc/parser.h"
#include "mcc/peephole.h"
#include "rtlib/sources.h"

namespace nfp::mcc {

std::string Compiler::compile_to_asm(
    const std::vector<std::string>& sources) const {
  std::map<std::string, std::string> defines = opts_.extra_defines;
  defines.emplace("MC_TARGET", "1");
  if (opts_.float_abi == FloatAbi::kSoft) {
    defines.emplace("MC_SOFT_FLOAT", "1");
  }
  if (opts_.muldiv_abi == MulDivAbi::kSoft) {
    defines.emplace("MC_SOFT_MULDIV", "1");
  }

  TranslationUnit unit;
  for (const std::string& src : sources) {
    parse_into(preprocess_and_lex(src, defines), unit);
  }
  if (opts_.link_runtime) {
    if (opts_.float_abi == FloatAbi::kSoft) {
      parse_into(
          preprocess_and_lex(std::string(rtlib::kSoftfloatSource), defines),
          unit);
    }
    if (opts_.muldiv_abi == MulDivAbi::kSoft) {
      parse_into(
          preprocess_and_lex(std::string(rtlib::kSoftMulDivSource), defines),
          unit);
    }
  }
  std::string text =
      generate_assembly(unit, opts_.float_abi, opts_.muldiv_abi);
  if (opts_.peephole) text = peephole_optimize(text);
  return text;
}

asmkit::Program Compiler::compile(
    const std::vector<std::string>& sources) const {
  return asmkit::assemble(compile_to_asm(sources), opts_.origin);
}

}  // namespace nfp::mcc
