// Micro-C type system: void, the integer family (char/short/int, signed and
// unsigned), double, pointers, and constant-size arrays. No structs, unions,
// enums, typedefs, or function pointers.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace nfp::mcc {

class Type {
 public:
  enum class K : std::uint8_t {
    kVoid, kChar, kUChar, kShort, kUShort, kInt, kUInt, kDouble,
    kPtr, kArr,
  };

  Type() : kind_(K::kVoid) {}
  static Type basic(K kind) { return Type(kind, nullptr, 0); }
  static Type ptr(const Type& elem) {
    return Type(K::kPtr, std::make_shared<Type>(elem), 0);
  }
  static Type arr(const Type& elem, std::uint32_t len) {
    return Type(K::kArr, std::make_shared<Type>(elem), len);
  }

  K kind() const { return kind_; }
  const Type& elem() const { return *elem_; }
  std::uint32_t array_len() const { return len_; }

  bool is_void() const { return kind_ == K::kVoid; }
  bool is_double() const { return kind_ == K::kDouble; }
  bool is_pointer() const { return kind_ == K::kPtr; }
  bool is_array() const { return kind_ == K::kArr; }
  bool is_integer() const {
    return kind_ >= K::kChar && kind_ <= K::kUInt;
  }
  bool is_arithmetic() const { return is_integer() || is_double(); }
  bool is_scalar() const { return is_arithmetic() || is_pointer(); }
  bool is_signed() const {
    return kind_ == K::kChar || kind_ == K::kShort || kind_ == K::kInt;
  }

  std::uint32_t size() const {
    switch (kind_) {
      case K::kVoid: return 0;
      case K::kChar: case K::kUChar: return 1;
      case K::kShort: case K::kUShort: return 2;
      case K::kInt: case K::kUInt: case K::kPtr: return 4;
      case K::kDouble: return 8;
      case K::kArr: return len_ * elem_->size();
    }
    return 0;
  }

  bool same(const Type& other) const {
    if (kind_ != other.kind_) return false;
    if (kind_ == K::kPtr || kind_ == K::kArr) {
      if (kind_ == K::kArr && len_ != other.len_) return false;
      return elem_->same(*other.elem_);
    }
    return true;
  }

  std::string str() const {
    switch (kind_) {
      case K::kVoid: return "void";
      case K::kChar: return "char";
      case K::kUChar: return "unsigned char";
      case K::kShort: return "short";
      case K::kUShort: return "unsigned short";
      case K::kInt: return "int";
      case K::kUInt: return "unsigned";
      case K::kDouble: return "double";
      case K::kPtr: return elem_->str() + "*";
      case K::kArr:
        return elem_->str() + "[" + std::to_string(len_) + "]";
    }
    return "?";
  }

  // Integer promotion: char/short -> int (values always fit).
  Type promoted() const {
    if (kind_ == K::kChar || kind_ == K::kShort) return basic(K::kInt);
    if (kind_ == K::kUChar || kind_ == K::kUShort) return basic(K::kInt);
    return *this;
  }

  // Array-to-pointer decay for rvalue contexts.
  Type decayed() const {
    if (kind_ == K::kArr) return ptr(*elem_);
    return *this;
  }

 private:
  Type(K kind, std::shared_ptr<Type> elem, std::uint32_t len)
      : kind_(kind), elem_(std::move(elem)), len_(len) {}

  K kind_;
  std::shared_ptr<Type> elem_;
  std::uint32_t len_ = 0;
};

inline Type type_void() { return Type::basic(Type::K::kVoid); }
inline Type type_int() { return Type::basic(Type::K::kInt); }
inline Type type_uint() { return Type::basic(Type::K::kUInt); }
inline Type type_double() { return Type::basic(Type::K::kDouble); }
inline Type type_char() { return Type::basic(Type::K::kChar); }

// Usual arithmetic conversions for a binary operator.
inline Type common_arith_type(const Type& a, const Type& b) {
  if (a.is_double() || b.is_double()) return type_double();
  const Type pa = a.promoted();
  const Type pb = b.promoted();
  if (pa.kind() == Type::K::kUInt || pb.kind() == Type::K::kUInt) {
    return type_uint();
  }
  return type_int();
}

}  // namespace nfp::mcc
