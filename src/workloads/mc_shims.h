// Host-side shims for the Micro-C intrinsics. Include this before
// #including a .c Micro-C source into a (uniquely named) namespace to build
// it natively with the exact semantics the simulated target provides.
//
// NOTE: deliberately includes no standard headers, because this file is
// typically included *inside* a namespace. The including .cpp must include
// <cmath>, <cstdint> and <cstring> at global scope first.
#pragma once

inline unsigned mc_umulhi(unsigned a, unsigned b) {
  return static_cast<unsigned>(
      (static_cast<unsigned long long>(a) * b) >> 32);
}

inline unsigned mc_dhi(double d) {
  std::uint64_t bits;
  std::memcpy(&bits, &d, 8);
  return static_cast<unsigned>(bits >> 32);
}

inline unsigned mc_dlo(double d) {
  std::uint64_t bits;
  std::memcpy(&bits, &d, 8);
  return static_cast<unsigned>(bits);
}

inline double mc_bits2d(unsigned hi, unsigned lo) {
  const std::uint64_t bits = (static_cast<std::uint64_t>(hi) << 32) | lo;
  double d;
  std::memcpy(&d, &bits, 8);
  return d;
}

inline double mc_sqrt(double x) { return std::sqrt(x); }

inline void mc_putc(int) {}
inline void mc_halt(int) {}
inline unsigned mc_clock() { return 0; }
