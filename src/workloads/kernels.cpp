#include "workloads/kernels.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <map>
#include <mutex>
#include <tuple>

#include "codecs/sequence_gen.h"
#include "fse/image_gen.h"
#include "rtlib/sources.h"
#include "sim/memmap.h"

// Host build of the Micro-C FSE (golden reference for differential tests).
namespace nfp::workloads::fsehost {
#include "workloads/mc_shims.h"
#include "workloads/mc/fse.c"
}  // namespace nfp::workloads::fsehost

// Host build of the Micro-C Sobel (golden reference).
namespace nfp::workloads::sobelhost {
#include "workloads/mc/sobel.c"
}  // namespace nfp::workloads::sobelhost

namespace nfp::rtlib {
// Embedded by the workloads CMake rules.
extern const std::string_view kFseSource;
extern const std::string_view kMvcDecSource;
extern const std::string_view kSobelSource;
}  // namespace nfp::rtlib

namespace nfp::workloads {
namespace {

constexpr int kFseN = 16;
constexpr int kFseArea = kFseN * kFseN;

void append_be32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void append_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, 8);
  append_be32(out, static_cast<std::uint32_t>(bits >> 32));
  append_be32(out, static_cast<std::uint32_t>(bits));
}

const asmkit::Program& cached_program(const std::string_view source,
                                      mcc::FloatAbi abi,
                                      mcc::MulDivAbi muldiv) {
  static std::mutex mutex;
  static std::map<std::tuple<const void*, int, int>, asmkit::Program> cache;
  std::scoped_lock lock(mutex);
  const auto key = std::make_tuple(static_cast<const void*>(source.data()),
                                   static_cast<int>(abi),
                                   static_cast<int>(muldiv));
  auto it = cache.find(key);
  if (it == cache.end()) {
    mcc::CompileOptions opts;
    opts.float_abi = abi;
    opts.muldiv_abi = muldiv;
    it = cache
             .emplace(key,
                      mcc::Compiler(opts).compile({std::string(source)}))
             .first;
  }
  return it->second;
}

std::string abi_name(mcc::FloatAbi abi, mcc::MulDivAbi muldiv) {
  std::string name = abi == mcc::FloatAbi::kHard ? "float" : "fixed";
  if (muldiv == mcc::MulDivAbi::kSoft) name += "+swmd";
  return name;
}

}  // namespace

const asmkit::Program& mvc_program(mcc::FloatAbi abi,
                                   mcc::MulDivAbi muldiv) {
  return cached_program(rtlib::kMvcDecSource, abi, muldiv);
}

const asmkit::Program& fse_program(mcc::FloatAbi abi,
                                   mcc::MulDivAbi muldiv) {
  return cached_program(rtlib::kFseSource, abi, muldiv);
}

const asmkit::Program& sobel_program(mcc::FloatAbi abi,
                                     mcc::MulDivAbi muldiv) {
  return cached_program(rtlib::kSobelSource, abi, muldiv);
}

std::vector<codec::EncodedStream> mvc_streams(const MvcKernelParams& p) {
  std::vector<codec::EncodedStream> streams;
  const codec::Config configs[] = {
      codec::Config::kIntra, codec::Config::kLowdelay,
      codec::Config::kLowdelayP, codec::Config::kRandomaccess};
  for (const auto config : configs) {
    for (const int qp : p.qps) {
      for (int seq = 0; seq < 3; ++seq) {
        const auto frames = codec::make_sequence(
            p.width, p.height, p.frames,
            static_cast<codec::SequenceKind>(seq), 1000 + seq);
        auto encoded =
            codec::encode(frames, p.width, p.height, qp, config);
        streams.push_back(std::move(encoded.stream));
      }
    }
  }
  return streams;
}

std::vector<model::KernelJob> make_mvc_jobs(mcc::FloatAbi abi,
                                            const MvcKernelParams& p,
                                            mcc::MulDivAbi muldiv) {
  const asmkit::Program& program = mvc_program(abi, muldiv);
  std::vector<model::KernelJob> jobs;
  int seq = 0;
  for (auto& stream : mvc_streams(p)) {
    model::KernelJob job;
    job.name = std::string("hevc/") + codec::to_string(stream.config) +
               "/qp" + std::to_string(stream.qp) + "/seq" +
               std::to_string(seq % 3) + "/" + abi_name(abi, muldiv);
    job.program = program;
    job.inputs.emplace_back(sim::kInputBase, stream.to_input_blob());
    jobs.push_back(std::move(job));
    ++seq;
  }
  return jobs;
}

FseKernelData fse_kernel_data(int index) {
  FseKernelData data;
  data.signal = fse::make_image(kFseN, 42 + static_cast<std::uint64_t>(index));
  data.mask = fse::make_mask(kFseN, 42 + static_cast<std::uint64_t>(index),
                             static_cast<fse::MaskKind>(index % 3));
  // FSE operates on the distorted signal: missing samples zeroed.
  for (int i = 0; i < kFseArea; ++i) {
    if (data.mask[i]) data.signal[i] = 0.0;
  }
  return data;
}

std::vector<std::uint8_t> fse_input_blob(const std::vector<double>& signal,
                                         const std::vector<int>& mask,
                                         int iterations, double rho) {
  std::vector<std::uint8_t> blob;
  blob.reserve(24 + kFseArea * 12);
  append_be32(blob, 0x46534531u);
  append_be32(blob, kFseN);
  append_be32(blob, static_cast<std::uint32_t>(iterations));
  append_be32(blob, 0);  // pad to 8-align the rho double
  append_f64(blob, rho);
  for (const double v : signal) append_f64(blob, v);
  for (const int m : mask) {
    append_be32(blob, static_cast<std::uint32_t>(m));
  }
  return blob;
}

std::vector<model::KernelJob> make_fse_jobs(mcc::FloatAbi abi,
                                            const FseKernelParams& p,
                                            mcc::MulDivAbi muldiv) {
  const asmkit::Program& program = fse_program(abi, muldiv);
  std::vector<model::KernelJob> jobs;
  for (int k = 0; k < p.count; ++k) {
    const FseKernelData data = fse_kernel_data(k);
    model::KernelJob job;
    job.name = "fse/img" + std::to_string(k) + "/" + abi_name(abi, muldiv);
    job.program = program;
    job.inputs.emplace_back(
        sim::kInputBase,
        fse_input_blob(data.signal, data.mask, p.iterations, p.rho));
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::vector<std::uint8_t> sobel_kernel_image(int index,
                                             const SobelKernelParams& p) {
  // Frame 0 of a synthetic sequence: varied texture per kernel.
  const auto frames = codec::make_sequence(
      p.width, p.height, 1, static_cast<codec::SequenceKind>(index % 3),
      7000 + static_cast<std::uint64_t>(index));
  return frames[0];
}

std::vector<model::KernelJob> make_sobel_jobs(mcc::FloatAbi abi,
                                              const SobelKernelParams& p,
                                              mcc::MulDivAbi muldiv) {
  const asmkit::Program& program = sobel_program(abi, muldiv);
  std::vector<model::KernelJob> jobs;
  for (int k = 0; k < p.count; ++k) {
    const auto image = sobel_kernel_image(k, p);
    std::vector<std::uint8_t> blob;
    blob.reserve(12 + image.size());
    append_be32(blob, 0x534F4231u);
    append_be32(blob, static_cast<std::uint32_t>(p.width));
    append_be32(blob, static_cast<std::uint32_t>(p.height));
    blob.insert(blob.end(), image.begin(), image.end());

    model::KernelJob job;
    job.name = "sobel/img" + std::to_string(k) + "/" + abi_name(abi, muldiv);
    job.program = program;
    job.inputs.emplace_back(sim::kInputBase, std::move(blob));
    jobs.push_back(std::move(job));
  }
  return jobs;
}

SobelGolden sobel_golden(const std::vector<std::uint8_t>& image, int width,
                         int height) {
  SobelGolden out;
  out.edges.assign(image.size(), 0);
  out.histogram.assign(64, 0);
  std::vector<std::uint8_t> input = image;
  sobelhost::sobel(input.data(), out.edges.data(), out.histogram.data(),
                   width, height);
  return out;
}

std::vector<double> fse_golden(const std::vector<double>& signal,
                               const std::vector<int>& mask, int iterations,
                               double rho) {
  static std::mutex mutex;  // the host FSE uses global scratch buffers
  std::scoped_lock lock(mutex);
  std::vector<double> f = signal;
  std::vector<int> m = mask;
  std::vector<double> out(kFseArea, 0.0);
  fsehost::fse_extrapolate(f.data(), m.data(), out.data(), iterations, rho,
                           0.5);
  return out;
}

}  // namespace nfp::workloads
