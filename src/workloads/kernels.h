// The paper's kernel test set (Section VI):
//  - 36 MVC/HEVC decoding kernels: 4 configurations x 3 QPs x 3 sequences
//  - 24 FSE kernels: 24 synthetic images with per-image masks
// each compiled with the FPU ("float") and with soft-float ("fixed").
//
// A kernel = a compiled target program plus its input blob; the program is
// shared between kernels of the same workload/ABI (only inputs differ),
// mirroring the paper's one-binary-many-bitstreams methodology.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "asmkit/program.h"
#include "codecs/mvc.h"
#include "fse/fse_ref.h"
#include "mcc/compiler.h"
#include "nfp/campaign.h"

namespace nfp::workloads {

struct MvcKernelParams {
  int width = 48;
  int height = 48;
  int frames = 5;
  std::vector<int> qps = {10, 32, 45};
};

struct FseKernelParams {
  int iterations = 48;
  double rho = 0.90;
  int count = 24;
};

struct SobelKernelParams {
  int width = 48;
  int height = 48;
  int count = 6;
};

// Compiles the target decoders/extrapolators (cached per ABI per process).
const asmkit::Program& mvc_program(
    mcc::FloatAbi abi, mcc::MulDivAbi muldiv = mcc::MulDivAbi::kHard);
const asmkit::Program& fse_program(
    mcc::FloatAbi abi, mcc::MulDivAbi muldiv = mcc::MulDivAbi::kHard);
const asmkit::Program& sobel_program(
    mcc::FloatAbi abi, mcc::MulDivAbi muldiv = mcc::MulDivAbi::kHard);

// Builds the full kernel sets. Names follow
//   "hevc/<config>/qp<QP>/seq<k>/<float|fixed>" and
//   "fse/img<k>/<float|fixed>".
std::vector<model::KernelJob> make_mvc_jobs(
    mcc::FloatAbi abi, const MvcKernelParams& p = {},
    mcc::MulDivAbi muldiv = mcc::MulDivAbi::kHard);
std::vector<model::KernelJob> make_fse_jobs(
    mcc::FloatAbi abi, const FseKernelParams& p = {},
    mcc::MulDivAbi muldiv = mcc::MulDivAbi::kHard);

// Sobel kernels ("further algorithms" extension): "sobel/img<k>/<abi>".
std::vector<model::KernelJob> make_sobel_jobs(
    mcc::FloatAbi abi, const SobelKernelParams& p = {},
    mcc::MulDivAbi muldiv = mcc::MulDivAbi::kHard);

// Sobel golden: returns edge image followed by the 64-bin histogram
// serialised as the target writes it (bytes, then 4-aligned words).
struct SobelGolden {
  std::vector<std::uint8_t> edges;
  std::vector<int> histogram;
};
SobelGolden sobel_golden(const std::vector<std::uint8_t>& image, int width,
                         int height);
// The image behind sobel kernel `index`.
std::vector<std::uint8_t> sobel_kernel_image(int index,
                                             const SobelKernelParams& p = {});

// ---- golden expectations (host-compiled Micro-C sources) ----
// Output bytes the simulator must produce for a given job, for differential
// verification.

// FSE: n*n doubles; runs the host build of workloads/mc/fse.c.
std::vector<double> fse_golden(const std::vector<double>& signal,
                               const std::vector<int>& mask, int iterations,
                               double rho);

// Input blob builders (exposed for tests/examples).
std::vector<std::uint8_t> fse_input_blob(const std::vector<double>& signal,
                                         const std::vector<int>& mask,
                                         int iterations, double rho);

// Per-kernel data used to rebuild the golden expectation for FSE jobs.
struct FseKernelData {
  std::vector<double> signal;
  std::vector<int> mask;
};
FseKernelData fse_kernel_data(int index);

// The MVC streams behind make_mvc_jobs, in job order.
std::vector<codec::EncodedStream> mvc_streams(const MvcKernelParams& p = {});

}  // namespace nfp::workloads
