// CI-sized slice of the cross-scheme accuracy triangle (the full 120-kernel
// sweep lives in bench/bench_scheme_accuracy.cpp): a dozen real MVC + FSE
// kernels at reduced sizes, one campaign scored under every registered
// estimation scheme. The hard invariants mirror the bench:
//
//   - behavior preservation: the "eq1" scheme's estimates are bit-identical
//     to the legacy estimate(counts, paper, costs) pipeline per kernel;
//   - every fitted scheme stays calibratable on the default board and lands
//     within a (generous) accuracy envelope on real kernels, so a fit
//     regression that silently destroys extrapolation fails CI.
//
// Registered under the scheme_accuracy ctest label so CI can select it with
// `ctest -L scheme_accuracy`.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "board/config.h"
#include "nfp/calibration.h"
#include "nfp/campaign.h"
#include "nfp/error.h"
#include "nfp/estimator.h"
#include "workloads/kernels.h"

namespace nfp::model {
namespace {

std::vector<KernelJob> smoke_jobs() {
  // Reduced-size kernels keep one ctest shard under a few seconds while
  // still exercising FPU, soft-float, memory and branch behavior.
  workloads::MvcKernelParams mvc;
  mvc.width = 16;
  mvc.height = 16;
  mvc.frames = 2;
  mvc.qps = {10, 45};
  workloads::FseKernelParams fse;
  fse.iterations = 6;
  fse.count = 3;
  std::vector<KernelJob> jobs;
  for (const auto abi : {mcc::FloatAbi::kHard, mcc::FloatAbi::kSoft}) {
    for (auto& j : workloads::make_mvc_jobs(abi, mvc)) {
      jobs.push_back(std::move(j));
    }
    for (auto& j : workloads::make_fse_jobs(abi, fse)) {
      jobs.push_back(std::move(j));
    }
  }
  if (jobs.size() > 12) jobs.resize(12);
  return jobs;
}

struct SchemeScore {
  ErrorStats energy;
  ErrorStats time;
};

SchemeScore score(const std::vector<KernelRunRecord>& records,
                  const Estimator& estimator, const CategoryCosts& costs) {
  std::vector<double> est_e, meas_e, est_t, meas_t;
  for (const auto& rec : records) {
    if (!rec.ok) continue;
    const Estimate est = estimator.estimate(run_sample(rec), costs);
    est_e.push_back(est.energy_nj);
    meas_e.push_back(rec.measured.energy_nj);
    est_t.push_back(est.time_s);
    meas_t.push_back(rec.measured.time_s);
  }
  return {error_stats(est_e, meas_e), error_stats(est_t, meas_t)};
}

TEST(SchemeAccuracySmoke, AllSchemesCalibrateAndStayInsideTheEnvelope) {
  const auto jobs = smoke_jobs();
  ASSERT_GE(jobs.size(), 12u);
  const board::BoardConfig cfg;

  // Smaller Table-II kernels than the default plan: calibration quality is
  // the benches' concern, this tier guards the machinery.
  CalibrationPlan plan;
  plan.loops = 20'000;
  const Calibrator calibrator(CategoryScheme::paper(), plan);

  const auto records = Campaign(cfg).run(jobs);
  for (const auto& rec : records) {
    EXPECT_TRUE(rec.ok) << rec.name << ": " << rec.error;
  }

  for (const Estimator* est : all_estimators()) {
    const SchemeCalibration calib = calibrator.fit(*est, cfg);
    EXPECT_EQ(calib.scheme, est->name());
    ASSERT_EQ(calib.costs.energy_nj.size(), est->terms()) << est->name();
    ASSERT_EQ(calib.costs.time_ns.size(), est->terms()) << est->name();
    EXPECT_GT(calib.samples, 0u) << est->name();
    for (std::size_t t = 0; t < est->terms(); ++t) {
      EXPECT_TRUE(std::isfinite(calib.costs.energy_nj[t]))
          << est->name() << " term " << calib.term_names[t];
      EXPECT_TRUE(std::isfinite(calib.costs.time_ns[t]))
          << est->name() << " term " << calib.term_names[t];
    }

    const SchemeScore s = score(records, *est, calib.costs);
    ASSERT_TRUE(s.energy.ok) << est->name() << ": " << s.energy.refusal;
    ASSERT_TRUE(s.time.ok) << est->name() << ": " << s.time.refusal;
    // Generous envelopes — the bench tracks the real numbers (eq1 ~1-4%,
    // events ~2-18%, time-proxy ~1-4% energy / exact time on the reduced
    // kernels). A fit regression like the one the row-stride excitation
    // pair exists to prevent shows up as errors in the 1e4..1e6% range.
    EXPECT_LT(s.energy.mean_abs, 0.60) << est->name();
    EXPECT_LT(s.time.mean_abs, 0.60) << est->name();
  }
}

TEST(SchemeAccuracySmoke, Eq1SchemeIsBitIdenticalOnRealKernels) {
  const auto jobs = smoke_jobs();
  const board::BoardConfig cfg;
  CalibrationPlan plan;
  plan.loops = 20'000;
  const Calibrator calibrator(CategoryScheme::paper(), plan);

  // The fitted-path "eq1" coefficients must be the classic Eq. 2 result,
  // and estimates through the scheme interface the same doubles as the
  // legacy pipeline, kernel for kernel.
  const SchemeCalibration fitted = calibrator.fit(eq1_estimator(), cfg);
  const CalibrationResult classic = calibrator.run(cfg);
  ASSERT_EQ(fitted.costs.energy_nj.size(), classic.costs.energy_nj.size());
  for (std::size_t c = 0; c < classic.costs.energy_nj.size(); ++c) {
    EXPECT_EQ(fitted.costs.energy_nj[c], classic.costs.energy_nj[c]);
    EXPECT_EQ(fitted.costs.time_ns[c], classic.costs.time_ns[c]);
  }

  const auto records = Campaign(cfg).run(jobs);
  for (const auto& rec : records) {
    ASSERT_TRUE(rec.ok) << rec.name;
    const Estimate via_scheme =
        eq1_estimator().estimate(run_sample(rec), fitted.costs);
    const Estimate legacy =
        estimate(rec.counts, CategoryScheme::paper(), classic.costs);
    EXPECT_EQ(via_scheme.energy_nj, legacy.energy_nj) << rec.name;
    EXPECT_EQ(via_scheme.time_s, legacy.time_s) << rec.name;
  }
}

}  // namespace
}  // namespace nfp::model
