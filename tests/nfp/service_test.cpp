// Sharded campaign service: deterministic sharded draining at any worker
// count, preempt/checkpoint/resume bit-identity (through sim/state_io.h
// snapshots), work stealing, failure isolation, and equivalence with the
// batch Campaign loop on the real kernel sets.
#include "nfp/service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "asmkit/assembler.h"
#include "nfp/campaign.h"
#include "sim/memmap.h"
#include "workloads/kernels.h"

namespace nfp::model {
namespace {

// A store/load loop touching RAM so board cycles and energy depend on real
// activity, not just instruction count.
ServiceJob loop_job(const std::string& name, int iterations,
                    std::uint64_t slice = 0) {
  ServiceJob job;
  job.name = name;
  job.slice_insns = slice;
  job.program = asmkit::assemble(
      "_start: set " + std::to_string(iterations) + R"(, %l0
        set 0x40700000, %l1
        clr %l3
loop:   st %l0, [%l1 + %l3]
        ld [%l1 + %l3], %l4
        add %l3, 68, %l3
        and %l3, 0xffc, %l3
        xor %l4, %l0, %l5
        subcc %l0, 1, %l0
        bne loop
        nop
        mov 0, %o0
        ta 0
)",
      sim::kTextBase);
  return job;
}

ServiceConfig fast_config(unsigned workers) {
  ServiceConfig cfg;
  cfg.workers = workers;
  cfg.calibrate = false;  // these tests compare records, not estimates
  return cfg;
}

void expect_records_equal(const ServiceResult& got, const ServiceResult& want,
                          const std::string& where) {
  EXPECT_EQ(got.id, want.id) << where;
  EXPECT_EQ(got.record.name, want.record.name) << where;
  EXPECT_EQ(got.record.ok, want.record.ok) << where << ": " << got.record.error;
  EXPECT_EQ(got.record.exit_code, want.record.exit_code) << where;
  EXPECT_EQ(got.record.instret, want.record.instret) << where;
  EXPECT_EQ(got.record.counts, want.record.counts) << where;
  EXPECT_EQ(got.record.cycles, want.record.cycles) << where;
  EXPECT_EQ(std::bit_cast<std::uint64_t>(got.record.measured.energy_nj),
            std::bit_cast<std::uint64_t>(want.record.measured.energy_nj))
      << where;
  EXPECT_EQ(std::bit_cast<std::uint64_t>(got.record.measured.time_s),
            std::bit_cast<std::uint64_t>(want.record.measured.time_s))
      << where;
  EXPECT_EQ(std::bit_cast<std::uint64_t>(got.record.true_energy_nj),
            std::bit_cast<std::uint64_t>(want.record.true_energy_nj))
      << where;
}

TEST(CampaignService, DrainsThousandsOfTinyJobsAtAnyWorkerCount) {
  // The queue must produce the same submit-order results no matter how the
  // jobs shard, steal, and interleave across workers.
  const int kJobs = 2000;
  std::vector<ServiceJob> protos;
  for (int v = 0; v < 10; ++v) {
    protos.push_back(loop_job("tiny" + std::to_string(v), 20 + v * 7));
  }

  std::vector<ServiceResult> baseline;
  for (const unsigned workers : {1u, 3u, 8u}) {
    CampaignService service(fast_config(workers));
    std::vector<ServiceJob> jobs;
    jobs.reserve(kJobs);
    for (int i = 0; i < kJobs; ++i) jobs.push_back(protos[i % protos.size()]);
    const auto results = service.run_jobs(std::move(jobs));
    ASSERT_EQ(results.size(), static_cast<std::size_t>(kJobs));
    const auto stats = service.stats();
    EXPECT_EQ(stats.jobs_completed, static_cast<std::uint64_t>(kJobs));
    // Every job takes one ISS and one board slice when never preempted.
    EXPECT_EQ(stats.slices, static_cast<std::uint64_t>(2 * kJobs));
    EXPECT_EQ(stats.checkpoints, 0u);
    if (workers == 1) {
      baseline = results;
      for (int i = 0; i < kJobs; ++i) {
        ASSERT_TRUE(results[i].record.ok) << results[i].record.error;
        EXPECT_EQ(results[i].id, static_cast<std::uint64_t>(i));
      }
      continue;
    }
    for (int i = 0; i < kJobs; ++i) {
      expect_records_equal(results[i], baseline[i],
                           "job " + std::to_string(i) + " at " +
                               std::to_string(workers) + " workers");
    }
  }
}

TEST(CampaignService, PreemptedLongJobBitIdenticalToUnpreempted) {
  // ~290k retired instructions per platform, preempted every 7000: dozens
  // of snapshot round trips, usually across arenas. Ground truth must not
  // wobble by a single bit.
  const auto unpreempted =
      CampaignService(fast_config(2)).run_jobs({loop_job("long", 24'000)});
  ASSERT_EQ(unpreempted.size(), 1u);
  ASSERT_TRUE(unpreempted[0].record.ok) << unpreempted[0].record.error;
  ASSERT_GT(unpreempted[0].record.instret, 150'000u);

  CampaignService service(fast_config(2));
  const auto sliced = service.run_jobs({loop_job("long", 24'000, 7'000)});
  ASSERT_EQ(sliced.size(), 1u);
  expect_records_equal(sliced[0], unpreempted[0], "preempted long job");

  const auto stats = service.stats();
  EXPECT_GT(stats.checkpoints, 20u);
  EXPECT_EQ(stats.resumes, stats.checkpoints);
  EXPECT_GT(stats.checkpoint_bytes, 0u);
  EXPECT_EQ(sliced[0].slices, stats.checkpoints + 2);  // +1 cold start each
  EXPECT_GT(unpreempted[0].slices, 0u);
  EXPECT_EQ(unpreempted[0].checkpoints, 0u);
}

TEST(CampaignService, MixedGrainsAndWorkerCountsAgree) {
  // Same job set under every combination of preemption grain and worker
  // count: all records identical to the serial unsliced baseline.
  auto make_jobs = [](std::uint64_t slice) {
    std::vector<ServiceJob> jobs;
    for (int i = 0; i < 24; ++i) {
      jobs.push_back(
          loop_job("mix" + std::to_string(i), 300 + 113 * i, slice));
    }
    return jobs;
  };
  const auto baseline = CampaignService(fast_config(1)).run_jobs(make_jobs(0));
  for (const unsigned workers : {1u, 4u}) {
    for (const std::uint64_t slice : {900ull, 3'000ull}) {
      const auto got =
          CampaignService(fast_config(workers)).run_jobs(make_jobs(slice));
      ASSERT_EQ(got.size(), baseline.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        expect_records_equal(got[i], baseline[i],
                             "slice " + std::to_string(slice) + " workers " +
                                 std::to_string(workers));
      }
    }
  }
}

TEST(CampaignService, StealsWorkFromABusyShard) {
  // Two workers. Shard 0 gets a long unpreemptible job first plus a tail of
  // short ones (even ids); worker 1 drains its own shard quickly and must
  // steal worker 0's queued tail to finish.
  CampaignService service(fast_config(2));
  std::vector<ServiceJob> jobs;
  jobs.push_back(loop_job("long", 60'000));  // id 0 -> shard 0
  for (int i = 1; i < 16; ++i) {
    jobs.push_back(loop_job("short" + std::to_string(i), 25));
  }
  const auto results = service.run_jobs(std::move(jobs));
  ASSERT_EQ(results.size(), 16u);
  for (const auto& r : results) {
    EXPECT_TRUE(r.record.ok) << r.record.name << ": " << r.record.error;
  }
  EXPECT_GT(service.stats().steals, 0u);
}

TEST(CampaignService, FailingJobsAreIsolated) {
  CampaignService service(fast_config(2));
  ServiceJob bad;
  bad.name = "illegal";
  bad.program = asmkit::assemble("_start: .word 0\n", sim::kTextBase);
  ServiceJob runaway = loop_job("runaway", 1'000'000);
  runaway.max_insns = 5'000;  // budget exhausted long before the halt
  runaway.slice_insns = 1'000;
  const auto results = service.run_jobs(
      {loop_job("good", 50), std::move(bad), std::move(runaway),
       loop_job("also-good", 50)});
  ASSERT_EQ(results.size(), 4u);
  EXPECT_TRUE(results[0].record.ok) << results[0].record.error;
  EXPECT_FALSE(results[1].record.ok);
  EXPECT_NE(results[1].record.error.find("illegal instruction"),
            std::string::npos);
  EXPECT_FALSE(results[2].record.ok);
  EXPECT_NE(results[2].record.error.find("did not halt"), std::string::npos);
  EXPECT_TRUE(results[3].record.ok) << results[3].record.error;
}

TEST(CampaignService, SinkStreamsEveryResultExactlyOnce) {
  CampaignService service(fast_config(3));
  std::mutex mu;
  std::vector<std::uint64_t> seen;
  service.set_sink([&](const ServiceResult& r) {
    std::lock_guard<std::mutex> lk(mu);
    seen.push_back(r.id);
    const std::string line = result_json_line(r);
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"name\":\"" + r.record.name + "\""),
              std::string::npos);
    EXPECT_NE(line.find("\"ok\":true"), std::string::npos);
    EXPECT_EQ(line.find('\n'), std::string::npos);
  });
  std::vector<ServiceJob> jobs;
  for (int i = 0; i < 40; ++i) {
    jobs.push_back(loop_job("s" + std::to_string(i), 30 + i));
  }
  service.run_jobs(std::move(jobs));
  ASSERT_EQ(seen.size(), 40u);
  std::sort(seen.begin(), seen.end());
  for (std::uint64_t i = 0; i < 40; ++i) EXPECT_EQ(seen[i], i);
}

TEST(CampaignService, JsonLineEscapesErrorStrings) {
  ServiceResult r;
  r.record.name = "quo\"te";
  r.record.ok = false;
  r.record.error = "line\nbreak\\slash";
  const std::string line = result_json_line(r);
  EXPECT_NE(line.find("quo\\\"te"), std::string::npos);
  EXPECT_NE(line.find("line\\nbreak\\\\slash"), std::string::npos);
}

TEST(CampaignService, MatchesBatchCampaignOnKernelSets) {
  // The acceptance bar: real MVC + FSE kernel sets (both ABIs) through the
  // sharded, preempting service equal the batch Campaign loop bit-for-bit
  // in cycles and energy, at every worker count. Reduced-size kernels keep
  // the test fast; bench_service_ab runs the full 120-kernel set.
  workloads::MvcKernelParams mvc;
  mvc.width = 16;
  mvc.height = 16;
  mvc.frames = 2;
  mvc.qps = {10, 45};
  workloads::FseKernelParams fse;
  fse.iterations = 6;
  fse.count = 3;

  std::vector<KernelJob> batch_jobs;
  for (const auto abi : {mcc::FloatAbi::kHard, mcc::FloatAbi::kSoft}) {
    for (auto& j : workloads::make_mvc_jobs(abi, mvc)) {
      batch_jobs.push_back(std::move(j));
    }
    for (auto& j : workloads::make_fse_jobs(abi, fse)) {
      batch_jobs.push_back(std::move(j));
    }
  }
  ASSERT_GE(batch_jobs.size(), 30u);

  const board::BoardConfig board_cfg;
  const auto batch = Campaign(board_cfg, 4).run(batch_jobs);

  for (const unsigned workers : {1u, 3u}) {
    ServiceConfig cfg;
    cfg.workers = workers;
    cfg.calibrate = false;
    cfg.board = board_cfg;
    CampaignService service(cfg);
    std::vector<ServiceJob> jobs;
    for (const auto& j : batch_jobs) {
      ServiceJob sj;
      sj.name = j.name;
      sj.program = j.program;
      sj.inputs = j.inputs;
      sj.slice_insns = 40'000;  // force checkpoint/resume inside real runs
      jobs.push_back(std::move(sj));
    }
    const auto got = service.run_jobs(std::move(jobs));
    ASSERT_EQ(got.size(), batch.size());
    if (workers == 3) EXPECT_GT(service.stats().checkpoints, 0u);
    for (std::size_t i = 0; i < got.size(); ++i) {
      const auto& g = got[i].record;
      const auto& w = batch[i];
      ASSERT_TRUE(g.ok) << g.name << ": " << g.error;
      ASSERT_TRUE(w.ok) << w.name << ": " << w.error;
      EXPECT_EQ(g.name, w.name);
      EXPECT_EQ(g.instret, w.instret) << g.name;
      EXPECT_EQ(g.counts, w.counts) << g.name;
      EXPECT_EQ(g.cycles, w.cycles) << g.name;
      EXPECT_EQ(std::bit_cast<std::uint64_t>(g.true_energy_nj),
                std::bit_cast<std::uint64_t>(w.true_energy_nj))
          << g.name;
      EXPECT_EQ(std::bit_cast<std::uint64_t>(g.measured.energy_nj),
                std::bit_cast<std::uint64_t>(w.measured.energy_nj))
          << g.name;
      EXPECT_EQ(std::bit_cast<std::uint64_t>(g.measured.time_s),
                std::bit_cast<std::uint64_t>(w.measured.time_s))
          << g.name;
    }
  }
}

TEST(CampaignService, StaticFastPathStreamsBeforeTheFinalResult) {
  // The injected estimator (a stub here; nfpd injects analyze_ipet) runs
  // before the first executed instruction, streams through the static sink,
  // and rides unchanged on the final record.
  ServiceConfig cfg = fast_config(2);
  cfg.static_estimator = [](const asmkit::Program& p) {
    StaticBounds b;
    b.accepted = true;
    b.insns_lower = 1;
    b.insns_upper = p.size();  // any program-derived value round-trips
    b.energy_lower_nj = 2.5;
    b.energy_upper_nj = 99.5;
    return b;
  };
  CampaignService service(cfg);
  std::mutex mu;
  std::vector<std::pair<std::uint64_t, char>> order;  // (id, 's'tatic/'f'inal)
  service.set_static_sink(
      [&](std::uint64_t id, const std::string& name, const StaticBounds& b) {
        std::lock_guard<std::mutex> lk(mu);
        EXPECT_TRUE(b.accepted);
        EXPECT_FALSE(name.empty());
        order.emplace_back(id, 's');
      });
  service.set_sink([&](const ServiceResult& r) {
    std::lock_guard<std::mutex> lk(mu);
    order.emplace_back(r.id, 'f');
  });
  const auto results = service.run_jobs(
      {loop_job("fast0", 40), loop_job("fast1", 60), loop_job("fast2", 80)});
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) {
    ASSERT_TRUE(r.record.ok) << r.record.error;
    EXPECT_GT(r.record.instret, 0u);  // refinement ran
    EXPECT_FALSE(r.static_served);
    ASSERT_TRUE(r.static_bounds.has_value());
    EXPECT_TRUE(r.static_bounds->accepted);
    EXPECT_EQ(r.static_bounds->insns_upper, r.record.instret == 0
                                                ? 0u
                                                : r.static_bounds->insns_upper);
    EXPECT_EQ(r.static_bounds->energy_upper_nj, 99.5);
  }
  // Per job, the static interval streamed strictly before the final result.
  for (std::uint64_t id = 0; id < 3; ++id) {
    std::vector<char> kinds;
    for (const auto& [oid, kind] : order) {
      if (oid == id) kinds.push_back(kind);
    }
    ASSERT_EQ(kinds.size(), 2u) << "job " << id;
    EXPECT_EQ(kinds[0], 's') << "job " << id;
    EXPECT_EQ(kinds[1], 'f') << "job " << id;
  }
}

TEST(CampaignService, StaticOnlyServesAcceptedAndRunsRefused) {
  // static_only: an accepted interval is the answer (no execution at all);
  // a refusal falls through to the full dynamic pipeline.
  ServiceConfig cfg = fast_config(2);
  cfg.static_only = true;
  cfg.static_estimator = [](const asmkit::Program& p) {
    StaticBounds b;
    b.accepted = p.size() < 40;  // only the tiniest program is accepted
    if (!b.accepted) b.reason = "unbounded-loop";
    b.cycles_upper = 1234;
    return b;
  };
  CampaignService service(cfg);
  ServiceJob tiny;
  tiny.name = "tiny";
  tiny.program = asmkit::assemble("_start: mov 0, %o0\n ta 0\n nop\n",
                                  sim::kTextBase);
  const auto results =
      service.run_jobs({std::move(tiny), loop_job("refused", 50)});
  ASSERT_EQ(results.size(), 2u);

  ASSERT_TRUE(results[0].static_bounds.has_value());
  EXPECT_TRUE(results[0].static_bounds->accepted);
  EXPECT_TRUE(results[0].static_served);
  EXPECT_TRUE(results[0].record.ok);
  EXPECT_EQ(results[0].record.instret, 0u);  // never executed
  EXPECT_EQ(results[0].slices, 1u);

  ASSERT_TRUE(results[1].static_bounds.has_value());
  EXPECT_FALSE(results[1].static_bounds->accepted);
  EXPECT_EQ(results[1].static_bounds->reason, "unbounded-loop");
  EXPECT_FALSE(results[1].static_served);
  ASSERT_TRUE(results[1].record.ok) << results[1].record.error;
  EXPECT_GT(results[1].record.instret, 0u);  // dynamic pipeline ran
  EXPECT_GT(results[1].record.cycles, 0u);
}

TEST(CampaignService, JsonLineCarriesTheStaticObject) {
  ServiceResult r;
  r.record.name = "static";
  r.record.ok = true;
  StaticBounds b;
  b.accepted = true;
  b.insns_lower = 5;
  b.insns_upper = 11;
  b.cycles_lower = 29;
  b.cycles_upper = 61;
  r.static_bounds = b;
  r.static_served = true;
  const std::string line = result_json_line(r);
  EXPECT_NE(line.find("\"static_served\":true"), std::string::npos);
  EXPECT_NE(line.find("\"static\":{\"accepted\":true,\"insns_lower\":5,"
                      "\"insns_upper\":11,\"cycles_lower\":29,"
                      "\"cycles_upper\":61,"),
            std::string::npos);
  EXPECT_EQ(line.back(), '}');

  StaticBounds refused;
  refused.accepted = false;
  refused.reason = "recursion";
  EXPECT_EQ(static_bounds_json(refused),
            "{\"accepted\":false,\"reason\":\"recursion\"}");

  // No estimator => no static fields at all.
  ServiceResult plain;
  plain.record.name = "plain";
  EXPECT_EQ(result_json_line(plain).find("static"), std::string::npos);
}

TEST(CampaignService, WarmCalibrationTableIsSharedAcrossJobs) {
  // With calibration on, every job's estimate comes from one table: equal
  // counts => bit-equal estimates, and the table matches a direct
  // Calibrator run under the same config and plan.
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.calibrate = true;
  cfg.plan.loops = 2'000;  // small plan: this tests sharing, not Table I
  cfg.plan.per_loop = 8;
  CampaignService service(cfg);
  const auto results = service.run_jobs(
      {loop_job("a", 400), loop_job("b", 400), loop_job("c", 150)});
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) {
    ASSERT_TRUE(r.record.ok) << r.record.error;
    EXPECT_GT(r.estimate.energy_nj, 0.0);
    EXPECT_GT(r.estimate.time_s, 0.0);
  }
  EXPECT_EQ(std::bit_cast<std::uint64_t>(results[0].estimate.energy_nj),
            std::bit_cast<std::uint64_t>(results[1].estimate.energy_nj));
  const auto direct =
      Calibrator(CategoryScheme::paper(), cfg.plan).run(cfg.board);
  const auto want =
      estimate(results[2].record.counts, CategoryScheme::paper(), direct.costs);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(results[2].estimate.energy_nj),
            std::bit_cast<std::uint64_t>(want.energy_nj));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(results[2].estimate.time_s),
            std::bit_cast<std::uint64_t>(want.time_s));
}

}  // namespace
}  // namespace nfp::model
