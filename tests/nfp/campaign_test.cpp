// Measurement campaign: parallel execution, determinism, error isolation.
#include "nfp/campaign.h"

#include <gtest/gtest.h>

#include "asmkit/assembler.h"
#include "mcc/compiler.h"
#include "sim/jit.h"
#include "sim/memmap.h"

namespace nfp::model {
namespace {

KernelJob loop_job(const std::string& name, int iterations) {
  KernelJob job;
  job.name = name;
  job.program = asmkit::assemble("_start: set " + std::to_string(iterations) +
                                     R"(, %l0
loop:   subcc %l0, 1, %l0
        bne loop
        nop
        mov 0, %o0
        ta 0
)",
                                 sim::kTextBase);
  return job;
}

TEST(Campaign, RunsJobsAndKeepsOrder) {
  std::vector<KernelJob> jobs;
  for (int i = 0; i < 12; ++i) {
    jobs.push_back(loop_job("job" + std::to_string(i), 100 + i * 50));
  }
  Campaign campaign(board::BoardConfig{}, 4);
  const auto records = campaign.run(jobs);
  ASSERT_EQ(records.size(), jobs.size());
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(records[i].name, "job" + std::to_string(i));
    EXPECT_TRUE(records[i].ok) << records[i].error;
    EXPECT_GT(records[i].instret, 0u);
    EXPECT_EQ(records[i].instret, records[i].cycles > 0
                                       ? records[i].instret
                                       : 0);  // both platforms ran
  }
  // Longer loops retire more instructions.
  EXPECT_GT(records[11].instret, records[0].instret);
}

TEST(Campaign, DeterministicAcrossThreadCounts) {
  std::vector<KernelJob> jobs;
  for (int i = 0; i < 8; ++i) {
    jobs.push_back(loop_job("det" + std::to_string(i), 200 + i * 30));
  }
  const auto serial = Campaign(board::BoardConfig{}, 1).run(jobs);
  const auto parallel = Campaign(board::BoardConfig{}, 8).run(jobs);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(serial[i].measured.energy_nj, parallel[i].measured.energy_nj);
    EXPECT_EQ(serial[i].measured.time_s, parallel[i].measured.time_s);
    EXPECT_EQ(serial[i].instret, parallel[i].instret);
    EXPECT_EQ(serial[i].counts, parallel[i].counts);
  }
}

TEST(Campaign, BlockDispatchMatchesStepBitForBit) {
  // The campaign defaults to the fastest cost-exact board dispatch (jit
  // where emitted code can run, chained block elsewhere); a campaign pinned
  // to per-instruction stepping must reproduce every record exactly
  // (measured energy/time compare bit-for-bit, not approximately).
  std::vector<KernelJob> jobs;
  for (int i = 0; i < 6; ++i) {
    jobs.push_back(loop_job("disp" + std::to_string(i), 150 + i * 40));
  }
  Campaign block_campaign(board::BoardConfig{}, 2);
  EXPECT_EQ(block_campaign.board_dispatch(), sim::jit_available()
                                                 ? sim::Dispatch::kJit
                                                 : sim::Dispatch::kBlock);
  Campaign step_campaign(board::BoardConfig{}, 2);
  step_campaign.set_board_dispatch(sim::Dispatch::kStep);
  Campaign pinned_block_campaign(board::BoardConfig{}, 2);
  pinned_block_campaign.set_board_dispatch(sim::Dispatch::kBlock);
  const auto block = block_campaign.run(jobs);
  const auto step = step_campaign.run(jobs);
  const auto pinned = pinned_block_campaign.run(jobs);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_TRUE(step[i].ok) << step[i].error;
    EXPECT_EQ(step[i].instret, block[i].instret);
    EXPECT_EQ(step[i].cycles, block[i].cycles);
    EXPECT_EQ(step[i].measured.energy_nj, block[i].measured.energy_nj);
    EXPECT_EQ(step[i].measured.time_s, block[i].measured.time_s);
    EXPECT_EQ(step[i].counts, block[i].counts);
    EXPECT_EQ(step[i].cycles, pinned[i].cycles);
    EXPECT_EQ(step[i].measured.energy_nj, pinned[i].measured.energy_nj);
    EXPECT_EQ(step[i].counts, pinned[i].counts);
  }
}

TEST(Campaign, FailingKernelIsIsolated) {
  std::vector<KernelJob> jobs;
  jobs.push_back(loop_job("good", 100));
  KernelJob bad;
  bad.name = "bad";
  bad.program = asmkit::assemble(R"(
_start: .word 0
)",
                                 sim::kTextBase);
  jobs.push_back(bad);
  jobs.push_back(loop_job("also-good", 100));

  const auto records = Campaign(board::BoardConfig{}, 2).run(jobs);
  EXPECT_TRUE(records[0].ok);
  EXPECT_FALSE(records[1].ok);
  EXPECT_NE(records[1].error.find("illegal instruction"), std::string::npos);
  EXPECT_TRUE(records[2].ok);
}

TEST(Campaign, RunawayKernelReportsBudgetFailure) {
  KernelJob runaway;
  runaway.name = "runaway";
  runaway.program = asmkit::assemble("_start: ba _start\n nop\n",
                                     sim::kTextBase);
  // Intercept via the ISS budget (campaign uses the default); the run must
  // not hang: use a tiny program budget through a direct run_one.
  // (The default budget is deliberately huge; here we just check the error
  // propagation path with an illegal-memory kernel instead.)
  KernelJob bad_mem;
  bad_mem.name = "bad-mem";
  bad_mem.program = asmkit::assemble(R"(
_start: set 0x10000000, %g1
        ld [%g1], %l0
        ta 0
)",
                                     sim::kTextBase);
  const auto rec = Campaign(board::BoardConfig{}, 1).run_one(bad_mem);
  EXPECT_FALSE(rec.ok);
  EXPECT_NE(rec.error.find("bus error"), std::string::npos);
}

TEST(Campaign, InputsAreWrittenBeforeRun) {
  KernelJob job;
  job.name = "reads-input";
  job.program = asmkit::assemble(R"(
_start: set 0x40800000, %g1
        ld [%g1], %o0
        ta 0
)",
                                 sim::kTextBase);
  job.inputs.emplace_back(sim::kInputBase,
                          std::vector<std::uint8_t>{0x00, 0x00, 0x01, 0x17});
  const auto rec = Campaign(board::BoardConfig{}, 1).run_one(job);
  ASSERT_TRUE(rec.ok) << rec.error;
  EXPECT_EQ(rec.exit_code, 0x117u);
}

TEST(Campaign, CompiledKernelCountsFeedEstimator) {
  mcc::CompileOptions opts;
  KernelJob job;
  job.name = "compiled";
  job.program = mcc::Compiler(opts).compile({R"(
int main() {
  int sum = 0;
  for (int i = 0; i < 100; i++) sum += i;
  return sum & 0xFF;
}
)"});
  const auto rec = Campaign(board::BoardConfig{}, 1).run_one(job);
  ASSERT_TRUE(rec.ok) << rec.error;
  std::uint64_t total = 0;
  for (const auto c : rec.counts) total += c;
  EXPECT_EQ(total, rec.instret);
  EXPECT_GT(rec.measured.energy_nj, 0.0);
}

}  // namespace
}  // namespace nfp::model
