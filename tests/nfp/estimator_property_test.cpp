// Property tests for the Eq. 1 estimator and the Eq. 3 error metrics over
// randomised inputs.
#include <gtest/gtest.h>

#include <random>

#include "nfp/error.h"
#include "nfp/estimator.h"
#include "nfp/scheme.h"

namespace nfp::model {
namespace {

class EstimatorProperties : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  std::mt19937_64 rng_{GetParam()};

  CategoryCosts random_costs(std::size_t n) {
    CategoryCosts costs;
    std::uniform_real_distribution<double> d(1.0, 500.0);
    for (std::size_t i = 0; i < n; ++i) {
      costs.energy_nj.push_back(d(rng_));
      costs.time_ns.push_back(d(rng_));
    }
    return costs;
  }

  CategoryCounts random_counts(std::size_t n) {
    CategoryCounts counts;
    for (std::size_t i = 0; i < n; ++i) counts.push_back(rng_() % 1000000);
    return counts;
  }
};

TEST_P(EstimatorProperties, AdditivityOverKernels) {
  // Running kernel A then kernel B costs the sum of their estimates
  // (the mechanistic model is linear by construction).
  const auto costs = random_costs(9);
  for (int trial = 0; trial < 50; ++trial) {
    const auto a = random_counts(9);
    const auto b = random_counts(9);
    CategoryCounts sum(9);
    for (std::size_t i = 0; i < 9; ++i) sum[i] = a[i] + b[i];
    const auto ea = estimate(a, costs);
    const auto eb = estimate(b, costs);
    const auto es = estimate(sum, costs);
    EXPECT_NEAR(es.energy_nj, ea.energy_nj + eb.energy_nj,
                1e-9 * es.energy_nj + 1e-9);
    EXPECT_NEAR(es.time_s, ea.time_s + eb.time_s, 1e-12 * es.time_s + 1e-15);
  }
}

TEST_P(EstimatorProperties, MonotoneInCounts) {
  const auto costs = random_costs(9);
  const auto base = random_counts(9);
  const auto e0 = estimate(base, costs);
  for (std::size_t c = 0; c < 9; ++c) {
    auto bumped = base;
    bumped[c] += 1000;
    const auto e1 = estimate(bumped, costs);
    EXPECT_GT(e1.energy_nj, e0.energy_nj) << "category " << c;
    EXPECT_GT(e1.time_s, e0.time_s) << "category " << c;
    // ... by exactly 1000 * the category cost.
    EXPECT_NEAR(e1.energy_nj - e0.energy_nj, 1000.0 * costs.energy_nj[c],
                1e-6);
  }
}

TEST_P(EstimatorProperties, SchemeAggregationCommutesWithEstimation) {
  // Estimating from per-op counts through a scheme equals estimating from
  // the aggregated category counts.
  const auto& scheme = CategoryScheme::paper();
  const auto costs = random_costs(scheme.size());
  OpCounts ops{};
  for (std::size_t i = 1; i < isa::kOpCount; ++i) ops[i] = rng_() % 10000;
  const auto direct = estimate(ops, scheme, costs);
  const auto via_agg = estimate(scheme.aggregate(ops), costs);
  EXPECT_DOUBLE_EQ(direct.energy_nj, via_agg.energy_nj);
  EXPECT_DOUBLE_EQ(direct.time_s, via_agg.time_s);
}

TEST_P(EstimatorProperties, ErrorStatsBounds) {
  std::uniform_real_distribution<double> meas_d(1.0, 1e6);
  std::uniform_real_distribution<double> eps_d(-0.2, 0.2);
  std::vector<double> est, meas;
  double max_abs = 0;
  for (int i = 0; i < 100; ++i) {
    const double m = meas_d(rng_);
    const double eps = eps_d(rng_);
    meas.push_back(m);
    est.push_back(m * (1.0 + eps));
    max_abs = std::max(max_abs, std::abs(eps));
  }
  const auto stats = error_stats(est, meas);
  // mean <= max, max equals the largest injected epsilon.
  EXPECT_LE(stats.mean_abs, stats.max_abs + 1e-12);
  EXPECT_NEAR(stats.max_abs, max_abs, 1e-9);
  // every per-kernel epsilon is recovered within rounding.
  for (int i = 0; i < 100; ++i) {
    EXPECT_NEAR(stats.per_kernel[i], (est[i] - meas[i]) / meas[i], 1e-12);
  }
}

TEST_P(EstimatorProperties, PerfectEstimatesGiveZeroError) {
  std::uniform_real_distribution<double> d(1.0, 1e6);
  std::vector<double> values;
  for (int i = 0; i < 20; ++i) values.push_back(d(rng_));
  const auto stats = error_stats(values, values);
  EXPECT_EQ(stats.mean_abs, 0.0);
  EXPECT_EQ(stats.max_abs, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EstimatorProperties,
                         ::testing::Values(7u, 99u, 123456u));

}  // namespace
}  // namespace nfp::model
