// Category-scheme and estimation-scheme layer invariants:
//   - every CategoryScheme maps every retired op to an in-range category
//     (totality), and aggregation conserves the op total;
//   - the estimator registry is complete and lookups are exact;
//   - the "eq1" scheme is bit-identical to the legacy estimate() pipeline;
//   - feature vectors honor the advertised term count and feed only on what
//     needs_board_run() promises.
#include <gtest/gtest.h>

#include <random>
#include <set>

#include "nfp/estimator.h"
#include "nfp/scheme.h"

namespace nfp::model {
namespace {

std::vector<const CategoryScheme*> all_schemes() {
  return {&CategoryScheme::paper(), &CategoryScheme::coarse(),
          &CategoryScheme::fine()};
}

TEST(CategoryScheme, EveryOpMapsToAnInRangeCategory) {
  for (const CategoryScheme* scheme : all_schemes()) {
    ASSERT_GT(scheme->size(), 0u) << scheme->name();
    for (std::size_t i = 0; i < isa::kOpCount; ++i) {
      const auto op = static_cast<isa::Op>(i);
      EXPECT_LT(scheme->category_of(op), scheme->size())
          << scheme->name() << " op " << i;
    }
  }
}

TEST(CategoryScheme, EveryCategoryNameIsUniqueAndNonEmpty) {
  for (const CategoryScheme* scheme : all_schemes()) {
    std::set<std::string> names;
    for (std::size_t c = 0; c < scheme->size(); ++c) {
      EXPECT_FALSE(scheme->category_name(c).empty())
          << scheme->name() << " category " << c;
      EXPECT_TRUE(names.insert(scheme->category_name(c)).second)
          << scheme->name() << " duplicate " << scheme->category_name(c);
    }
  }
}

TEST(CategoryScheme, AggregationConservesTheOpTotal) {
  std::mt19937_64 rng{2026};
  for (int trial = 0; trial < 20; ++trial) {
    OpCounts ops{};
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < isa::kOpCount; ++i) {
      ops[i] = rng() % 100000;
      total += ops[i];
    }
    for (const CategoryScheme* scheme : all_schemes()) {
      const CategoryCounts agg = scheme->aggregate(ops);
      ASSERT_EQ(agg.size(), scheme->size()) << scheme->name();
      std::uint64_t agg_total = 0;
      for (const std::uint64_t n : agg) agg_total += n;
      EXPECT_EQ(agg_total, total) << scheme->name();
    }
  }
}

TEST(EstimatorRegistry, AllSchemesRegisteredAndFindable) {
  const auto all = all_estimators();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0]->name(), "eq1");  // stable order, eq1 first (the default)
  std::set<std::string> names;
  for (const Estimator* e : all) {
    EXPECT_TRUE(names.insert(std::string(e->name())).second);
    EXPECT_EQ(find_estimator(e->name()), e);
    EXPECT_GT(e->terms(), 0u);
    for (std::size_t t = 0; t < e->terms(); ++t) {
      EXPECT_FALSE(e->term_name(t).empty())
          << e->name() << " term " << t;
    }
  }
  EXPECT_EQ(find_estimator("no-such-scheme"), nullptr);
  EXPECT_EQ(find_estimator(""), nullptr);
  // The CLI help string names every scheme.
  const std::string known = estimator_names();
  for (const Estimator* e : all) {
    EXPECT_NE(known.find(e->name()), std::string::npos) << known;
  }
}

TEST(EstimatorRegistry, OnlyEq1WorksWithoutABoardRun) {
  EXPECT_FALSE(eq1_estimator().needs_board_run());
  EXPECT_TRUE(events_estimator().needs_board_run());
  EXPECT_TRUE(time_proxy_estimator().needs_board_run());
}

TEST(Estimator, FeatureVectorsMatchTheAdvertisedTermCount) {
  std::mt19937_64 rng{7};
  RunSample run;
  for (auto& c : run.counts) c = rng() % 10000;
  for (auto& v : run.events.v) v = rng() % 10000;
  run.instret = 123456;
  run.measured_time_s = 0.25;
  for (const Estimator* e : all_estimators()) {
    EXPECT_EQ(e->features(run).size(), e->terms()) << e->name();
  }
}

TEST(Estimator, Eq1IsBitIdenticalToTheLegacyPipeline) {
  // The tentpole behavior-preservation guarantee, at the unit level: the
  // same costs and counts through the scheme interface and through the
  // original estimate() produce the same doubles, compared for equality.
  std::mt19937_64 rng{42};
  const auto& scheme = CategoryScheme::paper();
  CategoryCosts costs;
  std::uniform_real_distribution<double> d(0.1, 300.0);
  for (std::size_t c = 0; c < scheme.size(); ++c) {
    costs.energy_nj.push_back(d(rng));
    costs.time_ns.push_back(d(rng));
  }
  for (int trial = 0; trial < 100; ++trial) {
    RunSample run;
    for (auto& c : run.counts) c = rng() % 5000000;
    const Estimate via_scheme = eq1_estimator().estimate(run, costs);
    const Estimate legacy = estimate(run.counts, scheme, costs);
    EXPECT_EQ(via_scheme.energy_nj, legacy.energy_nj);
    EXPECT_EQ(via_scheme.time_s, legacy.time_s);
  }
}

TEST(Estimator, EventsFeaturesAreTheCounterVector) {
  RunSample run;
  for (std::size_t i = 0; i < board::kEventCount; ++i) {
    run.events.v[i] = 100 + i;
  }
  const auto x = events_estimator().features(run);
  ASSERT_EQ(x.size(), board::kEventCount);
  for (std::size_t i = 0; i < board::kEventCount; ++i) {
    EXPECT_EQ(x[i], static_cast<double>(100 + i));
    // Term names mirror the exported counter names.
    EXPECT_EQ(events_estimator().term_name(i),
              std::string(board::event_name(static_cast<board::Event>(i))));
  }
}

TEST(Estimator, TimeProxyFeatureIsTheMeasuredTime) {
  RunSample run;
  run.measured_time_s = 0.125;
  const auto x = time_proxy_estimator().features(run);
  ASSERT_EQ(x.size(), 1u);
  EXPECT_EQ(x[0], 0.125);
}

TEST(Estimator, MismatchedCoefficientArityIsRejected) {
  RunSample run;
  CategoryCosts wrong;
  wrong.energy_nj.assign(3, 1.0);
  wrong.time_ns.assign(3, 1.0);
  EXPECT_THROW(eq1_estimator().estimate(run, wrong), std::invalid_argument);
}

}  // namespace
}  // namespace nfp::model
