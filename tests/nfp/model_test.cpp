#include <gtest/gtest.h>

#include "nfp/dse.h"
#include "nfp/error.h"
#include "nfp/estimator.h"
#include "nfp/report.h"
#include "nfp/scheme.h"

namespace nfp::model {
namespace {

using isa::Op;

TEST(Scheme, PaperSchemeHasNineCategories) {
  const auto& s = CategoryScheme::paper();
  EXPECT_EQ(s.size(), 9u);
  EXPECT_EQ(s.category_name(0), "Integer Arithmetic");
  EXPECT_EQ(s.category_of(Op::kAdd), 0u);
  EXPECT_EQ(s.category_of(Op::kFdivd), 7u);
}

TEST(Scheme, AggregationSumsPerOpCounts) {
  OpCounts counts{};
  counts[static_cast<std::size_t>(Op::kAdd)] = 10;
  counts[static_cast<std::size_t>(Op::kSub)] = 5;
  counts[static_cast<std::size_t>(Op::kLd)] = 7;
  counts[static_cast<std::size_t>(Op::kFaddd)] = 2;
  const auto agg = CategoryScheme::paper().aggregate(counts);
  EXPECT_EQ(agg[0], 15u);  // int arith
  EXPECT_EQ(agg[2], 7u);   // load
  EXPECT_EQ(agg[6], 2u);   // fpu arith
}

TEST(Scheme, TotalCountPreservedAcrossSchemes) {
  OpCounts counts{};
  for (std::size_t i = 1; i < isa::kOpCount; ++i) counts[i] = i;
  for (const auto* scheme :
       {&CategoryScheme::paper(), &CategoryScheme::coarse(),
        &CategoryScheme::fine()}) {
    std::uint64_t total = 0;
    for (const auto n : scheme->aggregate(counts)) total += n;
    std::uint64_t expected = 0;
    for (const auto n : counts) expected += n;
    EXPECT_EQ(total, expected) << scheme->name();
  }
}

TEST(Scheme, FineSchemeSplitsMulDiv) {
  const auto& s = CategoryScheme::fine();
  EXPECT_NE(s.category_of(Op::kUmul), s.category_of(Op::kAdd));
  EXPECT_NE(s.category_of(Op::kUdiv), s.category_of(Op::kUmul));
  EXPECT_NE(s.category_of(Op::kFcmpd), s.category_of(Op::kFaddd));
}

TEST(Estimator, LinearInCounts) {
  CategoryCosts costs;
  costs.energy_nj = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  costs.time_ns = {9, 8, 7, 6, 5, 4, 3, 2, 1};
  CategoryCounts a(9, 10);
  CategoryCounts b(9, 30);
  const auto ea = estimate(a, costs);
  const auto eb = estimate(b, costs);
  EXPECT_DOUBLE_EQ(eb.energy_nj, 3.0 * ea.energy_nj);
  EXPECT_DOUBLE_EQ(eb.time_s, 3.0 * ea.time_s);
}

TEST(Estimator, MatchesHandComputation) {
  CategoryCosts costs;
  costs.energy_nj = {15, 76};
  costs.time_ns = {45, 238};
  const auto e = estimate(CategoryCounts{100, 10}, costs);
  EXPECT_DOUBLE_EQ(e.energy_nj, 100 * 15.0 + 10 * 76.0);
  EXPECT_DOUBLE_EQ(e.time_s, (100 * 45.0 + 10 * 238.0) * 1e-9);
}

TEST(Estimator, SizeMismatchThrows) {
  CategoryCosts costs;
  costs.energy_nj = {1.0};
  costs.time_ns = {1.0};
  EXPECT_THROW(estimate(CategoryCounts{1, 2}, costs), std::invalid_argument);
}

TEST(ErrorStats, MatchesEquationThree) {
  // est 103 vs meas 100 -> +3%; est 95 vs 100 -> -5%.
  const auto stats = error_stats({103, 95}, {100, 100});
  EXPECT_NEAR(stats.per_kernel[0], 0.03, 1e-12);
  EXPECT_NEAR(stats.per_kernel[1], -0.05, 1e-12);
  EXPECT_NEAR(stats.mean_abs_percent(), 4.0, 1e-9);
  EXPECT_NEAR(stats.max_abs_percent(), 5.0, 1e-9);
}

TEST(ErrorStats, RefusesDegenerateInputWithoutThrowing) {
  // One broken kernel must never abort a whole campaign report: degenerate
  // inputs come back as a structured refusal, not an exception.
  const auto empty = error_stats({}, {});
  EXPECT_FALSE(empty.ok);
  EXPECT_EQ(empty.refusal, "empty-input");

  const auto mismatch = error_stats({1.0, 2.0}, {1.0});
  EXPECT_FALSE(mismatch.ok);
  EXPECT_EQ(mismatch.refusal, "size-mismatch");

  const auto zeros = error_stats({1.0}, {0.0});
  EXPECT_FALSE(zeros.ok);
  EXPECT_EQ(zeros.refusal, "all-measurements-zero");
  EXPECT_EQ(zeros.skipped_zero, 1u);
  EXPECT_EQ(zeros.mean_abs, 0.0);
  EXPECT_EQ(zeros.max_abs, 0.0);
}

TEST(ErrorStats, SkipsZeroMeasurementsButKeepsTheRest) {
  // A relative error against zero is undefined, not infinite: the kernel is
  // excluded and counted, the remaining set still produces Eq. 3 stats.
  const auto stats = error_stats({2.0, 1.1}, {0.0, 1.0});
  EXPECT_TRUE(stats.ok);
  EXPECT_TRUE(stats.refusal.empty());
  EXPECT_EQ(stats.skipped_zero, 1u);
  ASSERT_EQ(stats.per_kernel.size(), 1u);
  EXPECT_NEAR(stats.per_kernel[0], 0.1, 1e-12);
  EXPECT_NEAR(stats.mean_abs, 0.1, 1e-12);
  EXPECT_NEAR(stats.max_abs, 0.1, 1e-12);
}

TEST(Dse, FpuImpactMeansPerKernelChanges) {
  // Kernel 1: FPU halves energy; kernel 2: FPU quarters it.
  std::vector<Estimate> with_fpu = {{50, 0.5}, {25, 0.25}};
  std::vector<Estimate> soft = {{100, 1.0}, {100, 1.0}};
  const auto impact = fpu_impact("toy", with_fpu, soft);
  EXPECT_NEAR(impact.energy_change_percent, (-50.0 + -75.0) / 2, 1e-9);
  EXPECT_NEAR(impact.time_change_percent, (-50.0 + -75.0) / 2, 1e-9);
  EXPECT_NEAR(impact.area_change_percent, 109.0, 1.0);
}

TEST(Report, RendersAlignedTable) {
  TextTable t({"Category", "Value"});
  t.add_row({"Integer", "15"});
  t.add_row({"Load", "229"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| Category |"), std::string::npos);
  EXPECT_NE(s.find("| Load     |"), std::string::npos);
}

}  // namespace
}  // namespace nfp::model
