#include "nfp/calibration.h"

#include <gtest/gtest.h>

#include "board/cost_model.h"

namespace nfp::model {
namespace {

CalibrationPlan small_plan() {
  // Small but still dominated by the tested instructions.
  return CalibrationPlan{.loops = 20'000, .per_loop = 32};
}

TEST(Calibration, KernelPairsFollowTableTwo) {
  Calibrator cal(CategoryScheme::paper(), small_plan());
  const auto pair = cal.make_kernels(0);  // Integer Arithmetic
  EXPECT_EQ(pair.n_test, 20'000u * 32u);
  // The reference kernel is the test kernel minus the tested body.
  EXPECT_LT(pair.ref_asm.size(), pair.test_asm.size());
  EXPECT_NE(pair.test_asm.find("add %l1, %l2, %l5"), std::string::npos);
  EXPECT_EQ(pair.ref_asm.find("add %l1, %l2, %l5"), std::string::npos);
  // Both share the loop scaffold.
  EXPECT_NE(pair.ref_asm.find("subcc %l0, 1, %l0"), std::string::npos);
  EXPECT_NE(pair.test_asm.find("subcc %l0, 1, %l0"), std::string::npos);
}

// Property: with a noise-free, variation-free board, Eq. 2 recovers the
// configured cost-model values essentially exactly.
TEST(Calibration, RecoversTrueCostsOnIdealBoard) {
  board::BoardConfig cfg;
  cfg.enable_variation = false;
  cfg.enable_meter_noise = false;
  Calibrator cal(CategoryScheme::paper(), small_plan());
  const auto result = cal.run(cfg);
  ASSERT_EQ(result.details.size(), 9u);

  const board::CostModel cost;
  const double tick_ns = 1e9 / cfg.clock_hz;
  const struct {
    std::size_t cat;
    isa::Op op;
  } probes[] = {
      {0, isa::Op::kAdd},    {2, isa::Op::kLd},     {3, isa::Op::kSt},
      {4, isa::Op::kNop},    {6, isa::Op::kFaddd},  {7, isa::Op::kFdivd},
      {8, isa::Op::kFsqrtd},
  };
  for (const auto& probe : probes) {
    const auto& oc = cost.of(probe.op);
    EXPECT_NEAR(result.costs.time_ns[probe.cat], oc.cycles * tick_ns,
                oc.cycles * tick_ns * 0.03)
        << "category " << probe.cat;
    EXPECT_NEAR(result.costs.energy_nj[probe.cat], oc.energy_nj,
                oc.energy_nj * 0.03)
        << "category " << probe.cat;
  }
  // Jump category: taken branches.
  EXPECT_NEAR(result.costs.time_ns[1], cost.of(isa::Op::kBicc).cycles * tick_ns,
              cost.of(isa::Op::kBicc).cycles * tick_ns * 0.05);
}

// With realistic board behaviour the calibrated values stay within a few
// percent of the truth and reproduce the Table-I ordering.
TEST(Calibration, RealisticBoardReproducesTableOneShape) {
  board::BoardConfig cfg;  // defaults: variation + meter noise on
  Calibrator cal(CategoryScheme::paper(), small_plan());
  const auto result = cal.run(cfg);
  const auto& t = result.costs.time_ns;
  const auto& e = result.costs.energy_nj;
  // Shape (paper Table I): load >> store >> jump >> int ~ nop ~ fpu-arith;
  // fdiv and fsqrt far above fpu-arith.
  EXPECT_GT(t[2], t[3]);      // load > store
  EXPECT_GT(t[3], t[1]);      // store > jump
  EXPECT_GT(t[1], t[0] * 3);  // jump >> int
  EXPECT_GT(t[7], t[6] * 5);  // fdiv >> fpu arith
  EXPECT_GT(t[8], t[6] * 5);  // fsqrt >> fpu arith
  EXPECT_GT(e[2], e[3]);      // load energy > store energy
  EXPECT_GT(e[7], e[8]);      // fdiv energy > fsqrt energy
  // Magnitudes in the right ballpark (paper: 45/238/700/376 ns...).
  EXPECT_NEAR(t[0], 40.0, 8.0);
  EXPECT_NEAR(t[2], 700.0, 60.0);
  EXPECT_NEAR(e[0], 15.0, 3.0);
  EXPECT_NEAR(e[2], 229.0, 25.0);
}

TEST(Calibration, FpuCategoriesSkippedWithoutFpu) {
  board::BoardConfig cfg;
  cfg.has_fpu = false;
  Calibrator cal(CategoryScheme::paper(), small_plan());
  const auto result = cal.run(cfg);
  EXPECT_EQ(result.details.size(), 6u);  // only the integer-unit categories
  EXPECT_EQ(result.costs.energy_nj[6], 0.0);
  EXPECT_EQ(result.costs.energy_nj[7], 0.0);
  EXPECT_EQ(result.costs.energy_nj[8], 0.0);
  EXPECT_GT(result.costs.energy_nj[0], 0.0);
}

TEST(Calibration, AdaptationScalesCosts) {
  board::BoardConfig cfg;
  cfg.enable_variation = false;
  cfg.enable_meter_noise = false;
  Calibrator cal(CategoryScheme::paper(), small_plan());
  Adaptation adapt;
  adapt.energy_scale.assign(9, 1.0);
  adapt.energy_scale[0] = 2.0;
  const auto base = cal.run(cfg);
  const auto adapted = cal.run(cfg, adapt);
  EXPECT_NEAR(adapted.costs.energy_nj[0], 2.0 * base.costs.energy_nj[0],
              1e-9);
  EXPECT_DOUBLE_EQ(adapted.costs.energy_nj[1], base.costs.energy_nj[1]);
}

TEST(Calibration, AlternativeSchemesCalibratable) {
  board::BoardConfig cfg;
  cfg.enable_variation = false;
  cfg.enable_meter_noise = false;
  for (const auto* scheme :
       {&CategoryScheme::coarse(), &CategoryScheme::fine()}) {
    Calibrator cal(*scheme, small_plan());
    const auto result = cal.run(cfg);
    EXPECT_EQ(result.costs.energy_nj.size(), scheme->size());
    for (const auto& d : result.details) {
      EXPECT_GT(d.specific_energy_nj, 0.0) << scheme->name() << d.category;
      EXPECT_GT(d.specific_time_ns, 0.0) << scheme->name() << d.category;
    }
  }
}

}  // namespace
}  // namespace nfp::model
