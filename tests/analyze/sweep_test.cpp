// Decoder-consistency sweep tests: the full enumeration is clean, its
// per-family totals are pinned (any decode-table drift shows up as a diff
// here), and deliberately broken category maps are caught with the
// offending encoding reported.
#include "analyze/sweep.h"

#include <gtest/gtest.h>

#include "isa/categories.h"
#include "isa/decode.h"

namespace nfp::analyze {
namespace {

// Small but representative configuration for the fast tests.
SweepConfig small_config() {
  SweepConfig cfg;
  cfg.imm_samples = 16;
  cfg.reg_samples = 4;
  cfg.asi_samples = 2;
  return cfg;
}

TEST(Sweep, DefaultEnumerationIsConsistent) {
  const SweepResult result = run_sweep();
  EXPECT_TRUE(result.consistent())
      << result.findings_total << " findings, first: "
      << (result.findings.empty() ? "" : result.findings[0].check + " "
                                             + result.findings[0].detail);
  EXPECT_EQ(result.enumerated, result.accepted + result.rejected);
  // A few million encodings, as advertised.
  EXPECT_GT(result.enumerated, 2'000'000u);
}

TEST(Sweep, FamilyTotalsArePinned) {
  const SweepResult result = run_sweep();
  // One row per decode family; these numbers are a function of the decode
  // tables and the default sample counts only. An unexplained diff means
  // the decoder accepts or rejects different encodings than before.
  const char* expected =
      "# family enumerated accepted rejected"
      " int jump load store nop other fparith fpdiv fpsqrt\n"
      "fmt2.reserved 15360 0 15360 0 0 0 0 0 0 0 0 0\n"
      "fmt2.bicc 3072 3072 0 0 3072 0 0 0 0 0 0 0\n"
      "fmt2.sethi 3072 3072 0 0 0 0 0 1 3071 0 0 0\n"
      "fmt2.fbfcc 3072 3072 0 0 3072 0 0 0 0 0 0 0\n"
      "fmt1.call 384 384 0 0 384 0 0 0 0 0 0 0\n"
      "fmt3.alu 905200 540200 365000 452600 29200 0 0 0 58400 0 0 0\n"
      "fmt3.fpop1 512000 19000 493000 0 0 0 0 0 0 15000 2000 2000\n"
      "fmt3.fpop2 512000 2000 510000 0 0 0 0 0 0 2000 0 0\n"
      "fmt3.mem 934400 204400 730000 0 0 116800 87600 0 0 0 0 0\n";
  EXPECT_EQ(result.table(), expected);
  EXPECT_EQ(result.enumerated, 2'888'560u);
  EXPECT_EQ(result.accepted, 775'200u);
}

TEST(Sweep, DeterministicAcrossRuns) {
  const SweepConfig cfg = small_config();
  const SweepResult a = run_sweep(cfg);
  const SweepResult b = run_sweep(cfg);
  EXPECT_EQ(a.table(), b.table());
  EXPECT_EQ(a.enumerated, b.enumerated);
  EXPECT_EQ(a.findings_total, b.findings_total);
}

// The acceptance gate of the whole subsystem: a category flip anywhere in
// the map must surface as a "category" finding naming an encoding that
// actually decodes to the flipped op.
TEST(Sweep, InjectedCategoryFlipIsReported) {
  SweepConfig cfg = small_config();
  cfg.category = [](isa::Op op) {
    if (op == isa::Op::kLd) return isa::Category::kMemStore;  // the bug
    return isa::default_category(op);
  };
  const SweepResult result = run_sweep(cfg);
  EXPECT_FALSE(result.consistent());
  ASSERT_FALSE(result.findings.empty());
  bool category_finding = false;
  for (const auto& f : result.findings) {
    if (f.check != "category") continue;
    category_finding = true;
    // The reported word must be a genuine ld encoding.
    EXPECT_EQ(isa::decode(f.word).op, isa::Op::kLd) << std::hex << f.word;
  }
  EXPECT_TRUE(category_finding);
}

TEST(Sweep, InjectedJumpFlipIsReported) {
  SweepConfig cfg = small_config();
  cfg.category = [](isa::Op op) {
    if (op == isa::Op::kBicc) return isa::Category::kIntArith;
    return isa::default_category(op);
  };
  const SweepResult result = run_sweep(cfg);
  EXPECT_FALSE(result.consistent());
  bool found = false;
  for (const auto& f : result.findings) {
    if (f.check == "category" && isa::decode(f.word).op == isa::Op::kBicc) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Sweep, FindingCapDoesNotAffectTotals) {
  SweepConfig broken = small_config();
  broken.max_findings = 2;
  broken.category = [](isa::Op op) {
    if (op == isa::Op::kAdd) return isa::Category::kOther;
    return isa::default_category(op);
  };
  const SweepResult result = run_sweep(broken);
  EXPECT_LE(result.findings.size(), 2u);
  EXPECT_GT(result.findings_total, 2u);  // every add encoding misclassified
}

}  // namespace
}  // namespace nfp::analyze
