// Runs the static CFG lints over every committed fuzz-corpus reproducer.
// Corpus entries exercise gnarly-but-legal control flow (branch aliasing,
// self-modification, mid-chain invalidation); the lint must accept them all
// without errors. Warnings (e.g. trailing unreachable data words) are fine.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "analyze/cfg.h"
#include "asmkit/assembler.h"
#include "sim/memmap.h"

#ifndef NFP_FUZZ_CORPUS_DIR
#error "NFP_FUZZ_CORPUS_DIR must point at the committed corpus"
#endif

namespace nfp::analyze {
namespace {

TEST(CorpusLint, EveryCorpusProgramLintsErrorFree) {
  std::size_t linted = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(NFP_FUZZ_CORPUS_DIR)) {
    if (entry.path().extension() != ".s") continue;
    std::ifstream in(entry.path());
    ASSERT_TRUE(in.is_open()) << entry.path();
    std::ostringstream ss;
    ss << in.rdbuf();
    const Cfg cfg = build_cfg(asmkit::assemble(ss.str(), sim::kTextBase));
    EXPECT_FALSE(cfg.blocks.empty()) << entry.path();
    for (const auto& f : cfg.findings) {
      EXPECT_NE(f.severity, Severity::kError)
          << entry.path() << ": " << render(f);
    }
    ++linted;
  }
  EXPECT_GT(linted, 0u) << "no corpus at " << NFP_FUZZ_CORPUS_DIR;
}

}  // namespace
}  // namespace nfp::analyze
