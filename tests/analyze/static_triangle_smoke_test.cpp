// CI-sized slice of the three-way accuracy triangle (the full 120-kernel
// sweep lives in bench/bench_static_triangle.cpp): a dozen real MVC + FSE
// kernels at reduced sizes, each checked for the two hard invariants the
// static estimator promises:
//
//   - containment: board ground truth (instret, cycles, energy, time)
//     inside the execution-free IPET [lower, upper];
//   - dominance: the IPET lower bound never below the Dijkstra
//     shortest-path lower bound.
//
// Registered under the static_triangle ctest label so CI can select it
// with `ctest -L static_triangle`.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "analyze/bounds.h"
#include "analyze/cfg.h"
#include "analyze/ipet.h"
#include "analyze/profile.h"
#include "board/board.h"
#include "workloads/kernels.h"

namespace nfp::analyze {
namespace {

// Both sides of energy/time comparisons sum long chains of doubles in
// different orders; allow a relative whisker, never a semantic margin.
constexpr double kRelSlack = 1e-9;

void expect_inside(double truth, const IpetInterval& iv, const char* metric,
                   const std::string& name) {
  const double slack = kRelSlack * std::max(1.0, std::abs(truth));
  EXPECT_GE(truth, iv.lower - slack) << name << " " << metric;
  EXPECT_LE(truth, iv.upper + slack) << name << " " << metric;
}

std::vector<model::KernelJob> smoke_jobs() {
  // Reduced-size kernels keep one ctest shard under a few seconds while
  // still exercising calls, data-dependent loops, and both ABIs.
  workloads::MvcKernelParams mvc;
  mvc.width = 16;
  mvc.height = 16;
  mvc.frames = 2;
  mvc.qps = {10, 45};
  workloads::FseKernelParams fse;
  fse.iterations = 6;
  fse.count = 3;
  std::vector<model::KernelJob> jobs;
  for (const auto abi : {mcc::FloatAbi::kHard, mcc::FloatAbi::kSoft}) {
    for (auto& j : workloads::make_mvc_jobs(abi, mvc)) {
      jobs.push_back(std::move(j));
    }
    for (auto& j : workloads::make_fse_jobs(abi, fse)) {
      jobs.push_back(std::move(j));
    }
  }
  if (jobs.size() > 12) jobs.resize(12);
  return jobs;
}

TEST(StaticTriangleSmoke, GroundTruthInsideEveryAcceptedInterval) {
  const auto jobs = smoke_jobs();
  ASSERT_GE(jobs.size(), 12u);
  const board::CostModel costs;
  std::size_t accepted = 0;
  for (const auto& job : jobs) {
    const Cfg cfg = build_cfg(job.program);
    IpetConfig icfg;
    IpetResult ipet = analyze_ipet(cfg, costs, icfg);
    bool used_profile = false;
    if (!ipet.accepted && ipet.refusal == IpetRefusal::kUnboundedLoop) {
      const PcProfile prof = profile_pcs(job.program, job.inputs);
      ASSERT_TRUE(prof.halted) << job.name;
      icfg.loop_totals = block_totals(cfg, prof);
      ipet = analyze_ipet(cfg, costs, icfg);
      used_profile = true;
    }
    if (!ipet.accepted) continue;
    ++accepted;

    board::Board brd{board::BoardConfig{}};
    brd.load(job.program);
    for (const auto& [addr, bytes] : job.inputs) {
      brd.bus().write_block(addr, bytes.data(), bytes.size());
    }
    const auto run = brd.run(board::Board::kDefaultMaxInsns);
    ASSERT_TRUE(run.halted) << job.name;

    expect_inside(static_cast<double>(run.instret), ipet.insns, "insns",
                  job.name);
    expect_inside(static_cast<double>(brd.cycles()), ipet.cycles, "cycles",
                  job.name);
    expect_inside(brd.true_energy_nj(), ipet.energy_nj, "energy", job.name);
    expect_inside(brd.true_time_s(), ipet.time_s, "time", job.name);

    const BoundsResult dij = analyze_bounds(cfg, costs);
    EXPECT_GE(ipet.cycles.lower,
              static_cast<double>(dij.lower.cycles) * (1.0 - kRelSlack))
        << job.name;
    EXPECT_GE(ipet.energy_nj.lower, dij.lower_energy_nj * (1.0 - kRelSlack))
        << job.name;
    // A profiled run is itself a feasible flow, so with absolute totals the
    // insns upper can never sit below the profile's own instret.
    if (used_profile) {
      EXPECT_GE(ipet.insns.upper, static_cast<double>(run.instret))
          << job.name;
    }
  }
  // The smoke slice must keep real coverage: most of the dozen kernels are
  // within the estimator's supported class.
  EXPECT_GE(accepted, 8u) << "static estimator coverage regressed";
}

}  // namespace
}  // namespace nfp::analyze
