// Exact-rational simplex tests: optima as exact fractions, phase-1 reuse
// across objectives, infeasible/unbounded detection, directed rounding.
#include "analyze/lp.h"

#include <gtest/gtest.h>

namespace nfp::analyze::lp {
namespace {

Row le(std::vector<Term> terms, Rat rhs) {
  Row r;
  r.kind = RowKind::kLe;
  r.terms = std::move(terms);
  r.rhs = rhs;
  return r;
}

Row eq(std::vector<Term> terms, Rat rhs) {
  Row r;
  r.kind = RowKind::kEq;
  r.terms = std::move(terms);
  r.rhs = rhs;
  return r;
}

TEST(Rat, ArithmeticAndComparison) {
  const Rat half = Rat::frac(1, 2);
  const Rat third = Rat::frac(1, 3);
  EXPECT_EQ(half + third, Rat::frac(5, 6));
  EXPECT_EQ(half - third, Rat::frac(1, 6));
  EXPECT_EQ(half * third, Rat::frac(1, 6));
  EXPECT_EQ(half / third, Rat::frac(3, 2));
  EXPECT_TRUE(third < half);
  EXPECT_TRUE(-half < third);
  EXPECT_EQ(Rat::frac(2, 4), half);  // normalized
  EXPECT_EQ(Rat::frac(-3, -6), half);
  EXPECT_EQ(Rat(0).sign(), 0);
  EXPECT_EQ((-half).sign(), -1);
}

TEST(Rat, DirectedDoubleConversion) {
  // 1/2 is exact: both directions return it unchanged.
  EXPECT_EQ(Rat::frac(1, 2).to_double_dir(true), 0.5);
  EXPECT_EQ(Rat::frac(1, 2).to_double_dir(false), 0.5);
  EXPECT_EQ(Rat(42).to_double_dir(true), 42.0);
  EXPECT_EQ(Rat(42).to_double_dir(false), 42.0);
  // 1/3 is not: the directed values must bracket the exact one.
  const double up = Rat::frac(1, 3).to_double_dir(true);
  const double down = Rat::frac(1, 3).to_double_dir(false);
  EXPECT_LT(down, up);
  EXPECT_GE(up, 1.0 / 3.0);
  EXPECT_LE(down, 1.0 / 3.0);
}

TEST(Simplex, MaxAndMinOverOnePhase1Basis) {
  // max/min x0 + x1  s.t.  x0 + x1 <= 3, x0 <= 2, x >= 0.
  Problem p;
  p.num_vars = 2;
  p.rows.push_back(le({{0, Rat(1)}, {1, Rat(1)}}, Rat(3)));
  p.rows.push_back(le({{0, Rat(1)}}, Rat(2)));
  const Simplex s(p);
  ASSERT_TRUE(s.feasible());
  const std::vector<Rat> obj{Rat(1), Rat(1)};
  const Solution mx = s.optimize(obj, true);
  ASSERT_EQ(mx.status, LpStatus::kOptimal);
  EXPECT_EQ(mx.objective, Rat(3));
  const Solution mn = s.optimize(obj, false);
  ASSERT_EQ(mn.status, LpStatus::kOptimal);
  EXPECT_EQ(mn.objective, Rat(0));
}

TEST(Simplex, EqualityRowGivesFractionalVertex) {
  // 2*x0 = 1  ->  x0 = 1/2 exactly.
  Problem p;
  p.num_vars = 1;
  p.rows.push_back(eq({{0, Rat(2)}}, Rat(1)));
  const Simplex s(p);
  ASSERT_TRUE(s.feasible());
  const Solution sol = s.optimize({Rat(3)}, true);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_EQ(sol.objective, Rat::frac(3, 2));
  ASSERT_EQ(sol.x.size(), 1u);
  EXPECT_EQ(sol.x[0], Rat::frac(1, 2));
}

TEST(Simplex, InfeasibleSystemIsReported) {
  // x0 <= -1 with x0 >= 0.
  Problem p;
  p.num_vars = 1;
  p.rows.push_back(le({{0, Rat(1)}}, Rat(-1)));
  const Simplex s(p);
  EXPECT_FALSE(s.feasible());
  EXPECT_EQ(s.optimize({Rat(1)}, true).status, LpStatus::kInfeasible);
}

TEST(Simplex, UnboundedObjectiveIsReported) {
  // max x0 with only x1 constrained.
  Problem p;
  p.num_vars = 2;
  p.rows.push_back(le({{1, Rat(1)}}, Rat(5)));
  const Simplex s(p);
  ASSERT_TRUE(s.feasible());
  EXPECT_EQ(s.optimize({Rat(1), Rat(0)}, true).status, LpStatus::kUnbounded);
  // The same polytope still minimizes fine.
  const Solution mn = s.optimize({Rat(1), Rat(0)}, false);
  ASSERT_EQ(mn.status, LpStatus::kOptimal);
  EXPECT_EQ(mn.objective, Rat(0));
}

TEST(Simplex, KirchhoffDiamondFlow) {
  // Unit flow through a diamond: entry splits into two arms (vars 0/1),
  // which rejoin (vars 2/3 are the arm->exit edges). Conservation rows as
  // the IPET builder writes them.
  Problem p;
  p.num_vars = 4;
  p.rows.push_back(eq({{0, Rat(1)}, {1, Rat(1)}}, Rat(1)));  // source
  p.rows.push_back(eq({{2, Rat(1)}, {0, Rat(-1)}}, Rat(0)));  // arm A
  p.rows.push_back(eq({{3, Rat(1)}, {1, Rat(-1)}}, Rat(0)));  // arm B
  const Simplex s(p);
  ASSERT_TRUE(s.feasible());
  // Arm A costs 7, arm B costs 4 (edge costs summed onto arm edges).
  const std::vector<Rat> obj{Rat(7), Rat(4), Rat(0), Rat(0)};
  const Solution mx = s.optimize(obj, true);
  const Solution mn = s.optimize(obj, false);
  ASSERT_EQ(mx.status, LpStatus::kOptimal);
  ASSERT_EQ(mn.status, LpStatus::kOptimal);
  EXPECT_EQ(mx.objective, Rat(7));
  EXPECT_EQ(mn.objective, Rat(4));
  EXPECT_EQ(mx.x[0], Rat(1));
  EXPECT_EQ(mn.x[1], Rat(1));
}

TEST(Simplex, LoopBoundRowCapsBackEdgeFlow) {
  // Self-loop at the entry: var 0 = back edge, var 1 = exit. Conservation:
  // back + exit - back = 1. Relative bound 4 at an entry header:
  // back <= (B-1) * entry-inflow, with the synthetic source counting once.
  Problem p;
  p.num_vars = 2;
  p.rows.push_back(eq({{1, Rat(1)}}, Rat(1)));
  p.rows.push_back(le({{0, Rat(1)}}, Rat(3)));  // B - 1 with B = 4
  const Simplex s(p);
  ASSERT_TRUE(s.feasible());
  const std::vector<Rat> obj{Rat(10), Rat(2)};
  const Solution mx = s.optimize(obj, true);
  ASSERT_EQ(mx.status, LpStatus::kOptimal);
  EXPECT_EQ(mx.objective, Rat(32));  // 3 iterations * 10 + exit
  const Solution mn = s.optimize(obj, false);
  EXPECT_EQ(mn.objective, Rat(2));  // straight to the exit
}

TEST(Simplex, RedundantEqualitiesSurviveDriveOut) {
  // Duplicated equality rows leave a zero-valued artificial basic after
  // phase 1; the drive-out (or inert-row) handling must not corrupt the
  // optimum.
  Problem p;
  p.num_vars = 2;
  p.rows.push_back(eq({{0, Rat(1)}, {1, Rat(1)}}, Rat(2)));
  p.rows.push_back(eq({{0, Rat(1)}, {1, Rat(1)}}, Rat(2)));
  p.rows.push_back(le({{0, Rat(1)}}, Rat(1)));
  const Simplex s(p);
  ASSERT_TRUE(s.feasible());
  const Solution mx = s.optimize({Rat(5), Rat(1)}, true);
  ASSERT_EQ(mx.status, LpStatus::kOptimal);
  EXPECT_EQ(mx.objective, Rat(6));  // x0 = 1, x1 = 1
}

TEST(Simplex, OverflowThrowsInsteadOfRounding) {
  // Huge coefficients force the exact arithmetic over __int128.
  Problem p;
  p.num_vars = 2;
  const Rat big = Rat::frac((1ll << 62) - 1, (1ll << 62) - 5);
  const Rat big2 = Rat::frac((1ll << 62) - 7, (1ll << 62) - 11);
  p.rows.push_back(le({{0, big}, {1, big2}}, Rat::frac(1, (1ll << 62) - 3)));
  p.rows.push_back(eq({{0, Rat(1)}, {1, big}}, Rat(1)));
  bool threw = false;
  try {
    const Simplex s(p);
    (void)s.optimize({big, big2}, true);
  } catch (const LpOverflow&) {
    threw = true;
  }
  // Either the arithmetic overflows (the expected path) or the tiny system
  // happens to stay in range; both are sound. Just assert no crash.
  (void)threw;
}

}  // namespace
}  // namespace nfp::analyze::lp
