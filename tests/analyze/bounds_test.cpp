// Static NFP bounds tests. The load-bearing property: on loop-free
// single-path kernels the static lower-bound op-count vector equals the
// dynamic retire vector from the ISS exactly, so the static Eq. 1 fold and
// the dynamic estimate coincide.
#include "analyze/bounds.h"

#include <gtest/gtest.h>

#include "asmkit/assembler.h"
#include "nfp/estimator.h"
#include "sim/iss.h"
#include "sim/memmap.h"

namespace nfp::analyze {
namespace {

struct StaticAndDynamic {
  BoundsResult bounds;
  model::OpCounts dynamic_counts{};
  bool halted = false;
};

StaticAndDynamic run_both(const std::string& source,
                          const BoundsConfig& config = {}) {
  const asmkit::Program program = asmkit::assemble(source, sim::kTextBase);
  const board::CostModel costs;
  StaticAndDynamic out;
  out.bounds = analyze_bounds(build_cfg(program), costs, config);
  sim::Iss iss;
  iss.load(program);
  out.halted = iss.run().halted;
  out.dynamic_counts = iss.counters().counts;
  return out;
}

model::CategoryCosts unit_costs(const model::CategoryScheme& scheme) {
  model::CategoryCosts costs;
  costs.energy_nj.assign(scheme.size(), 7.5);
  costs.time_ns.assign(scheme.size(), 20.0);
  return costs;
}

// Loop-free kernel 1: integer arithmetic plus a store/load pair.
constexpr const char* kIntKernel = R"(
_start:
  mov 40, %g1
  add %g1, 2, %g2
  sub %sp, 8, %g3
  st %g2, [%g3]
  ld [%g3], %g4
  xor %g4, %g2, %g5
  ta 0
  nop
)";

// Loop-free kernel 2: FPU arithmetic (load, convert, add, mul, store back).
constexpr const char* kFpuKernel = R"(
_start:
  sub %sp, 16, %g1
  mov 6, %g2
  st %g2, [%g1]
  ldf [%g1], %f0
  fitos %f0, %f1
  fadds %f1, %f1, %f2
  fmuls %f2, %f1, %f3
  fstoi %f3, %f4
  stf %f4, [%g1 + 4]
  ta 0
  nop
)";

TEST(Bounds, StaticLowerEqualsDynamicRetireVectorIntKernel) {
  const StaticAndDynamic r = run_both(kIntKernel);
  ASSERT_TRUE(r.halted);
  ASSERT_TRUE(r.bounds.has_exit);
  EXPECT_TRUE(r.bounds.lower_exact);
  EXPECT_EQ(r.bounds.lower.op_counts, r.dynamic_counts);
  // With identical op counts the Eq. 1 folds are identical too.
  const auto& scheme = model::CategoryScheme::paper();
  const model::CategoryCosts costs = unit_costs(scheme);
  const model::Estimate st = fold(r.bounds.lower, scheme, costs);
  const model::Estimate dy = model::estimate(r.dynamic_counts, scheme, costs);
  EXPECT_DOUBLE_EQ(st.energy_nj, dy.energy_nj);
  EXPECT_DOUBLE_EQ(st.time_s, dy.time_s);
}

TEST(Bounds, StaticLowerEqualsDynamicRetireVectorFpuKernel) {
  const StaticAndDynamic r = run_both(kFpuKernel);
  ASSERT_TRUE(r.halted);
  ASSERT_TRUE(r.bounds.has_exit);
  EXPECT_TRUE(r.bounds.lower_exact);
  EXPECT_EQ(r.bounds.lower.op_counts, r.dynamic_counts);
  const auto& scheme = model::CategoryScheme::paper();
  const model::CategoryCosts costs = unit_costs(scheme);
  const model::Estimate st = fold(r.bounds.lower, scheme, costs);
  const model::Estimate dy = model::estimate(r.dynamic_counts, scheme, costs);
  EXPECT_DOUBLE_EQ(st.energy_nj, dy.energy_nj);
  EXPECT_DOUBLE_EQ(st.time_s, dy.time_s);
}

TEST(Bounds, LoopFreeUpperEqualsLowerOnSinglePath) {
  const StaticAndDynamic r = run_both(kIntKernel);
  ASSERT_TRUE(r.bounds.has_upper);
  EXPECT_EQ(r.bounds.upper.op_counts, r.bounds.lower.op_counts);
  EXPECT_EQ(r.bounds.upper.insns, r.bounds.lower.insns);
}

TEST(Bounds, CountedLoopBoundIsInferredAndTight) {
  const StaticAndDynamic r = run_both(R"(
_start:
  mov 12, %g2
  mov 0, %g3
loop:
  add %g3, 5, %g3
  subcc %g2, 3, %g2
  bne loop
  nop
  ta 0
  nop
)");
  ASSERT_TRUE(r.halted);
  ASSERT_TRUE(r.bounds.has_upper);
  ASSERT_EQ(r.bounds.loops.size(), 1u);
  EXPECT_TRUE(r.bounds.loops[0].inferred);
  EXPECT_EQ(r.bounds.loops[0].bound, 4u);  // 12 / 3
  // The heuristic bound is tight here: the upper vector equals the dynamic
  // retire vector, and the lower (one loop traversal) stays below it.
  EXPECT_EQ(r.bounds.upper.op_counts, r.dynamic_counts);
  EXPECT_LT(r.bounds.lower.insns, r.bounds.upper.insns);
}

TEST(Bounds, AnnotationSuppliesBoundWhenHeuristicCannot) {
  // Loop counter decremented by a register: not a counted loop the
  // heuristic can prove.
  const std::string source = R"(
_start:
  mov 8, %g1
  mov 2, %g2
loop:
  subcc %g1, %g2, %g1
  bne loop
  nop
  ta 0
  nop
)";
  const StaticAndDynamic bare = run_both(source);
  EXPECT_FALSE(bare.bounds.has_upper);
  EXPECT_NE(bare.bounds.upper_unavailable.find("no static bound"),
            std::string::npos);

  BoundsConfig config;
  config.loop_bounds[sim::kTextBase + 8] = 4;  // `loop` header
  const StaticAndDynamic annotated = run_both(source, config);
  ASSERT_TRUE(annotated.bounds.has_upper);
  ASSERT_EQ(annotated.bounds.loops.size(), 1u);
  EXPECT_FALSE(annotated.bounds.loops[0].inferred);
  EXPECT_EQ(annotated.bounds.upper.op_counts, annotated.dynamic_counts);
}

TEST(Bounds, IndirectExitBlocksUpperEstimate) {
  // Static-only: a retl with nothing on the stack would fault dynamically.
  const asmkit::Program program = asmkit::assemble(R"(
_start:
  mov 0, %g1
  retl
  nop
)",
                                                   sim::kTextBase);
  const board::CostModel costs;
  const BoundsResult bounds = analyze_bounds(build_cfg(program), costs);
  EXPECT_FALSE(bounds.has_upper);
  EXPECT_NE(bounds.upper_unavailable.find("jmpl"), std::string::npos);
  // The lower bound still exists: the indirect block is a possible exit.
  EXPECT_TRUE(bounds.has_exit);
}

TEST(Bounds, CallEdgeBlocksUpperEstimate) {
  const StaticAndDynamic r = run_both(R"(
_start:
  call helper
  nop
  ta 0
  nop
helper:
  retl
  nop
)");
  EXPECT_FALSE(r.bounds.has_upper);
  EXPECT_NE(r.bounds.upper_unavailable.find("call"), std::string::npos);
}

TEST(Bounds, InfiniteLoopHasNoExit) {
  const asmkit::Program program = asmkit::assemble(R"(
_start:
  ba _start
  nop
)",
                                                   sim::kTextBase);
  const board::CostModel costs;
  const BoundsResult bounds = analyze_bounds(build_cfg(program), costs);
  EXPECT_FALSE(bounds.has_exit);
  EXPECT_EQ(bounds.lower.insns, 0u);
}

TEST(Bounds, BranchingPathIsNotExact) {
  const StaticAndDynamic r = run_both(R"(
_start:
  cmp %g1, 0
  be skip
  nop
  mov 1, %g2
skip:
  ta 0
  nop
)");
  ASSERT_TRUE(r.bounds.has_exit);
  EXPECT_FALSE(r.bounds.lower_exact);
  // The bound is on cycles, not instructions: the min-time path is the
  // cheaper of the two alternatives (and may retire more instructions than
  // the path the hardware took, if untaken branches are cheap enough).
  const board::CostModel costs;
  const auto& subcc = costs.of(isa::Op::kSubcc);
  const auto& bicc = costs.of(isa::Op::kBicc);
  const auto& nop = costs.of(isa::Op::kNop);
  const auto& mov = costs.of(isa::Op::kOr);
  const auto& ta = costs.of(isa::Op::kTicc);
  const std::uint64_t taken =
      std::uint64_t{subcc.cycles} + bicc.cycles + nop.cycles + ta.cycles;
  const std::uint64_t untaken = std::uint64_t{subcc.cycles} +
                                bicc.cycles_alt + nop.cycles + mov.cycles +
                                ta.cycles;
  EXPECT_EQ(r.bounds.lower.cycles, std::min(taken, untaken));
}

TEST(Bounds, LowerCyclesRespectUntakenBranchCost) {
  // bn never branches: the min-time path pays cycles_alt, not cycles.
  const asmkit::Program program = asmkit::assemble(R"(
_start:
  bn nowhere
  nop
  ta 0
  nop
nowhere:
  ta 0
  nop
)",
                                                   sim::kTextBase);
  const board::CostModel costs;
  const BoundsResult b = analyze_bounds(build_cfg(program), costs);
  ASSERT_TRUE(b.has_exit);
  const auto& bn = costs.of(isa::Op::kBicc);
  const auto& nop = costs.of(isa::Op::kNop);
  const auto& ta = costs.of(isa::Op::kTicc);
  EXPECT_EQ(b.lower.cycles,
            std::uint64_t{bn.cycles_alt} + nop.cycles + ta.cycles);
}

}  // namespace
}  // namespace nfp::analyze
