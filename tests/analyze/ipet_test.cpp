// IPET flow-solver tests. Load-bearing invariants:
//   - the dynamic retire totals of a real run always sit inside the static
//     interval (containment),
//   - the IPET lower bound is never below the Dijkstra lower bound, and the
//     two agree exactly on loop-free kernels,
//   - interprocedural composition (callee summaries on continuation edges)
//     prices a call-in-loop program exactly,
//   - everything the formulation cannot model is a machine-parseable
//     refusal, never a number.
#include "analyze/ipet.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "analyze/profile.h"
#include "asmkit/assembler.h"
#include "board/board.h"
#include "sim/iss.h"
#include "sim/memmap.h"

#ifndef NFP_ANALYZE_FIXTURE_DIR
#error "NFP_ANALYZE_FIXTURE_DIR must point at tests/analyze/fixtures"
#endif

namespace nfp::analyze {
namespace {

std::string fixture(const std::string& name) {
  std::ifstream in(std::string(NFP_ANALYZE_FIXTURE_DIR) + "/" + name);
  EXPECT_TRUE(in.is_open()) << name;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct Triangle {
  IpetResult ipet;
  BoundsResult dijkstra;
  bool halted = false;
  std::uint64_t instret = 0;   // ground truth from the board
  std::uint64_t cycles = 0;
  double energy_nj = 0.0;
};

// Static interval + Dijkstra lower + board ground truth for one source.
Triangle run_triangle(const std::string& source, const IpetConfig& config = {},
                      bool run_dynamic = true) {
  const asmkit::Program program = asmkit::assemble(source, sim::kTextBase);
  const board::CostModel costs;
  const Cfg cfg = build_cfg(program);
  Triangle t;
  t.ipet = analyze_ipet(cfg, costs, config);
  BoundsConfig bc;
  bc.loop_bounds = config.loop_bounds;
  t.dijkstra = analyze_bounds(cfg, costs, bc);
  if (run_dynamic) {
    board::Board brd{board::BoardConfig{}};
    brd.load(program);
    const auto run = brd.run();
    t.halted = run.halted;
    t.instret = run.instret;
    t.cycles = brd.cycles();
    t.energy_nj = brd.true_energy_nj();
  }
  return t;
}

void expect_contained(const Triangle& t) {
  ASSERT_TRUE(t.ipet.accepted) << t.ipet.refusal_detail;
  ASSERT_TRUE(t.halted);
  const auto n = static_cast<double>(t.instret);
  const auto c = static_cast<double>(t.cycles);
  EXPECT_LE(t.ipet.insns.lower, n);
  EXPECT_GE(t.ipet.insns.upper, n);
  EXPECT_LE(t.ipet.cycles.lower, c);
  EXPECT_GE(t.ipet.cycles.upper, c);
  EXPECT_LE(t.ipet.energy_nj.lower, t.energy_nj * (1 + 1e-12));
  EXPECT_GE(t.ipet.energy_nj.upper, t.energy_nj * (1 - 1e-12));
}

void expect_not_below_dijkstra(const Triangle& t) {
  ASSERT_TRUE(t.ipet.accepted);
  ASSERT_TRUE(t.dijkstra.has_exit);
  EXPECT_GE(t.ipet.insns.lower, static_cast<double>(t.dijkstra.lower.insns));
  EXPECT_GE(t.ipet.cycles.lower, static_cast<double>(t.dijkstra.lower.cycles));
  EXPECT_GE(t.ipet.energy_nj.lower, t.dijkstra.lower_energy_nj);
}

constexpr const char* kLoopFreeKernel = R"(
_start:
  mov 40, %g1
  add %g1, 2, %g2
  sub %sp, 8, %g3
  st %g2, [%g3]
  ld [%g3], %g4
  xor %g4, %g2, %g5
  ta 0
  nop
)";

TEST(Ipet, LoopFreeLowerEqualsDijkstraExactly) {
  const Triangle t = run_triangle(kLoopFreeKernel);
  ASSERT_TRUE(t.ipet.accepted) << t.ipet.refusal_detail;
  // Single path: the lower ends coincide with the (exact) Dijkstra lower.
  EXPECT_EQ(t.ipet.insns.lower, static_cast<double>(t.dijkstra.lower.insns));
  EXPECT_EQ(t.ipet.cycles.lower, static_cast<double>(t.dijkstra.lower.cycles));
  EXPECT_DOUBLE_EQ(t.ipet.energy_nj.lower, t.dijkstra.lower_energy_nj);
  // Instruction counts carry no residual, so that interval collapses.
  EXPECT_EQ(t.ipet.insns.upper, t.ipet.insns.lower);
  // Cycles keep exactly the SDRAM row-miss headroom of the st/ld pair.
  const board::CostModel costs;
  EXPECT_EQ(t.ipet.cycles.upper,
            t.ipet.cycles.lower + 2.0 * costs.row_miss_cycles());
  // Energy keeps the toggle-modulation envelope open.
  EXPECT_GT(t.ipet.energy_nj.upper, t.ipet.energy_nj.lower);
  expect_contained(t);
  expect_not_below_dijkstra(t);
  // The witness vector matches the true retire count on a single path.
  EXPECT_EQ(t.ipet.lower.insns, t.instret);
}

TEST(Ipet, BranchingProgramBracketsBothArms) {
  const Triangle t = run_triangle(R"(
_start:
  cmp %g1, 0
  be skip
  nop
  mov 1, %g2
  xor %g2, %g2, %g3
skip:
  ta 0
  nop
)");
  ASSERT_TRUE(t.ipet.accepted) << t.ipet.refusal_detail;
  expect_contained(t);
  expect_not_below_dijkstra(t);
  // Two arms of different lengths: the interval is genuinely open.
  EXPECT_LT(t.ipet.insns.lower, t.ipet.insns.upper);
}

TEST(Ipet, CountedLoopUpperIsTight) {
  const Triangle t = run_triangle(R"(
_start:
  mov 12, %g2
  mov 0, %g3
loop:
  add %g3, 5, %g3
  subcc %g2, 3, %g2
  bne loop
  nop
  ta 0
  nop
)");
  ASSERT_TRUE(t.ipet.accepted) << t.ipet.refusal_detail;
  expect_contained(t);
  expect_not_below_dijkstra(t);
  ASSERT_EQ(t.ipet.loops.size(), 1u);
  EXPECT_EQ(t.ipet.loops[0].source, IpetBoundSource::kInferred);
  EXPECT_EQ(t.ipet.loops[0].bound, 4u);
  EXPECT_FALSE(t.ipet.loops[0].detail.empty());
  // The inferred bound is exact here, so the max-flow vertex retires
  // exactly what the hardware retired.
  EXPECT_EQ(t.ipet.insns.upper, static_cast<double>(t.instret));
  EXPECT_EQ(t.ipet.cycles.upper, static_cast<double>(t.cycles));
}

TEST(Ipet, NestedCountedLoopsFixture) {
  const Triangle t = run_triangle(fixture("nested_counted.s"));
  ASSERT_TRUE(t.ipet.accepted) << t.ipet.refusal_detail;
  expect_contained(t);
  expect_not_below_dijkstra(t);
  ASSERT_EQ(t.ipet.loops.size(), 2u);
  for (const IpetLoop& loop : t.ipet.loops) {
    EXPECT_EQ(loop.source, IpetBoundSource::kInferred);
    EXPECT_EQ(loop.bound, loop.depth == 2 ? 4u : 3u);
  }
  EXPECT_EQ(t.ipet.insns.upper, static_cast<double>(t.instret));
}

TEST(Ipet, ZeroTripFixture) {
  const Triangle t = run_triangle(fixture("zero_trip.s"));
  ASSERT_TRUE(t.ipet.accepted) << t.ipet.refusal_detail;
  expect_contained(t);
  expect_not_below_dijkstra(t);
  ASSERT_EQ(t.ipet.loops.size(), 1u);
  EXPECT_EQ(t.ipet.loops[0].bound, 1u);
}

TEST(Ipet, SlotStrideLoopFixture) {
  const Triangle t = run_triangle(fixture("slot_stride_loop.s"));
  ASSERT_TRUE(t.ipet.accepted) << t.ipet.refusal_detail;
  expect_contained(t);
  ASSERT_EQ(t.ipet.loops.size(), 1u);
  EXPECT_EQ(t.ipet.loops[0].bound, 6u);
  EXPECT_EQ(t.ipet.insns.upper, static_cast<double>(t.instret));
}

TEST(Ipet, CallInLoopFixtureComposesCalleeSummaries) {
  const Triangle t = run_triangle(fixture("call_in_loop.s"));
  ASSERT_TRUE(t.ipet.accepted) << t.ipet.refusal_detail;
  EXPECT_EQ(t.ipet.functions, 2u);
  expect_contained(t);
  // Dijkstra dives into the callee and stops at its return, so its lower
  // bound is strictly weaker than the interprocedural IPET one here.
  ASSERT_TRUE(t.dijkstra.has_exit);
  EXPECT_GT(t.ipet.insns.lower, static_cast<double>(t.dijkstra.lower.insns));
  // The loop bound (5) is exact: the max vertex retires the true stream.
  EXPECT_EQ(t.ipet.insns.upper, static_cast<double>(t.instret));
  EXPECT_EQ(t.ipet.cycles.upper, static_cast<double>(t.cycles));
  ASSERT_EQ(t.ipet.loops.size(), 1u);
  EXPECT_EQ(t.ipet.loops[0].bound, 5u);
}

TEST(Ipet, IrreducibleFixtureRefusesWithOffendingEdge) {
  const Triangle t = run_triangle(fixture("irreducible.s"), {}, false);
  EXPECT_FALSE(t.ipet.accepted);
  EXPECT_EQ(t.ipet.refusal, IpetRefusal::kIrreducible);
  EXPECT_NE(t.ipet.refusal_detail.find("irreducible"), std::string::npos);
  EXPECT_NE(t.ipet.refusal_detail.find("->"), std::string::npos);
}

TEST(Ipet, UnboundedLoopRefusesThenAnnotationAndTotalsRecover) {
  const std::string source = R"(
_start:
  mov 8, %g1
  mov 2, %g2
loop:
  subcc %g1, %g2, %g1
  bne loop
  nop
  ta 0
  nop
)";
  const Triangle bare = run_triangle(source, {}, false);
  EXPECT_FALSE(bare.ipet.accepted);
  EXPECT_EQ(bare.ipet.refusal, IpetRefusal::kUnboundedLoop);
  EXPECT_STREQ(to_string(bare.ipet.refusal), "unbounded-loop");

  // Annotation recovery (relative bound).
  IpetConfig annotated;
  annotated.loop_bounds[sim::kTextBase + 8] = 4;
  const Triangle ann = run_triangle(source, annotated);
  ASSERT_TRUE(ann.ipet.accepted) << ann.ipet.refusal_detail;
  expect_contained(ann);
  ASSERT_EQ(ann.ipet.loops.size(), 1u);
  EXPECT_EQ(ann.ipet.loops[0].source, IpetBoundSource::kAnnotated);
  EXPECT_EQ(ann.ipet.insns.upper, static_cast<double>(ann.instret));

  // Profile-total recovery: one instrumented reference run supplies an
  // absolute header-execution count.
  const asmkit::Program program = asmkit::assemble(source, sim::kTextBase);
  const PcProfile profile = profile_pcs(program);
  ASSERT_TRUE(profile.halted);
  IpetConfig totals;
  totals.loop_totals = block_totals(build_cfg(program), profile);
  const Triangle tot = run_triangle(source, totals);
  ASSERT_TRUE(tot.ipet.accepted) << tot.ipet.refusal_detail;
  expect_contained(tot);
  ASSERT_EQ(tot.ipet.loops.size(), 1u);
  EXPECT_EQ(tot.ipet.loops[0].source, IpetBoundSource::kTotal);
  EXPECT_EQ(tot.ipet.loops[0].bound, 4u);
  EXPECT_EQ(tot.ipet.insns.upper, static_cast<double>(tot.instret));
}

TEST(Ipet, RecursionRefusesWithNamedCycle) {
  const Triangle t = run_triangle(R"(
_start:
  call ping
  nop
  ta 0
  nop
ping:
  call pong
  nop
  retl
  nop
pong:
  call ping
  nop
  retl
  nop
)",
                                  {}, false);
  EXPECT_FALSE(t.ipet.accepted);
  EXPECT_EQ(t.ipet.refusal, IpetRefusal::kRecursion);
  EXPECT_NE(t.ipet.refusal_detail.find("cycle"), std::string::npos);
  EXPECT_NE(t.ipet.refusal_detail.find("->"), std::string::npos);
}

TEST(Ipet, HaltInCalleeRefuses) {
  const Triangle t = run_triangle(R"(
_start:
  call helper
  nop
  ta 0
  nop
helper:
  ta 0
  nop
)",
                                  {}, false);
  EXPECT_FALSE(t.ipet.accepted);
  EXPECT_EQ(t.ipet.refusal, IpetRefusal::kHaltInCallee);
}

TEST(Ipet, BadIndirectRefuses) {
  const Triangle t = run_triangle(R"(
_start:
  mov 64, %g1
  jmpl %g1, %g0
  nop
)",
                                  {}, false);
  EXPECT_FALSE(t.ipet.accepted);
  EXPECT_EQ(t.ipet.refusal, IpetRefusal::kIndirectJump);
}

TEST(Ipet, LintErrorsRefuse) {
  const Triangle t = run_triangle(fixture("cti_in_slot.s"), {}, false);
  EXPECT_FALSE(t.ipet.accepted);
  EXPECT_EQ(t.ipet.refusal, IpetRefusal::kLintErrors);
  EXPECT_STREQ(to_string(t.ipet.refusal), "lint-errors");
}

TEST(Ipet, RenderAndJsonCarryTheTriangleFields) {
  const Triangle t = run_triangle(kLoopFreeKernel, {}, false);
  ASSERT_TRUE(t.ipet.accepted);
  const std::string text = render(t.ipet);
  EXPECT_NE(text.find("ipet cycles ["), std::string::npos);
  EXPECT_NE(text.find("ipet energy ["), std::string::npos);
  const std::string json = to_json(t.ipet);
  EXPECT_NE(json.find("\"accepted\":true"), std::string::npos);
  EXPECT_NE(json.find("\"cycles\":{\"lower\":"), std::string::npos);

  const Triangle refused = run_triangle(fixture("irreducible.s"), {}, false);
  const std::string rjson = to_json(refused.ipet);
  EXPECT_NE(rjson.find("\"accepted\":false"), std::string::npos);
  EXPECT_NE(rjson.find("\"reason\":\"irreducible-loop\""), std::string::npos);
  const std::string rtext = render(refused.ipet);
  EXPECT_NE(rtext.find("[reason=irreducible-loop block=0x"),
            std::string::npos);
}

TEST(Profile, PcCountsMatchInstret) {
  const asmkit::Program program =
      asmkit::assemble(kLoopFreeKernel, sim::kTextBase);
  const PcProfile profile = profile_pcs(program);
  ASSERT_TRUE(profile.halted);
  std::uint64_t sum = 0;
  for (const std::uint64_t c : profile.counts) sum += c;
  EXPECT_EQ(sum, profile.instret);
  EXPECT_EQ(profile.at(sim::kTextBase), 1u);       // entry retires once
  EXPECT_EQ(profile.at(sim::kTextBase - 4), 0u);   // off-image is zero
}

}  // namespace
}  // namespace nfp::analyze
