// Static CFG recovery and lint tests: delay-slot legality, block splitting,
// edge resolution, and off-image detection.
#include "analyze/cfg.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "asmkit/assembler.h"
#include "sim/memmap.h"

#ifndef NFP_ANALYZE_FIXTURE_DIR
#error "NFP_ANALYZE_FIXTURE_DIR must point at tests/analyze/fixtures"
#endif

namespace nfp::analyze {
namespace {

Cfg analyze_source(const std::string& source) {
  return build_cfg(asmkit::assemble(source, sim::kTextBase));
}

bool has_finding(const Cfg& cfg, LintCode code) {
  for (const auto& f : cfg.findings) {
    if (f.code == code) return true;
  }
  return false;
}

const LintFinding* find(const Cfg& cfg, LintCode code) {
  for (const auto& f : cfg.findings) {
    if (f.code == code) return &f;
  }
  return nullptr;
}

TEST(CfgLint, StraightLineKernelIsClean) {
  const Cfg cfg = analyze_source(R"(
_start:
  mov 3, %g1
  add %g1, %g1, %g2
  st %g2, [%g1]
  ta 0
  nop
)");
  EXPECT_FALSE(cfg.has_errors());
  ASSERT_EQ(cfg.blocks.size(), 1u);
  const BasicBlock& b = cfg.blocks.begin()->second;
  EXPECT_EQ(b.start, cfg.entry);
  EXPECT_EQ(b.insn_count(), 4u);  // the trailing nop never executes
  EXPECT_TRUE(b.halt);
  EXPECT_TRUE(b.edges.empty());
  // ...but it is reported as unreachable.
  EXPECT_TRUE(has_finding(cfg, LintCode::kUnreachableCode));
}

TEST(CfgLint, HandWrittenCtiInDelaySlotFixtureIsFlagged) {
  std::ifstream in(std::string(NFP_ANALYZE_FIXTURE_DIR) + "/cti_in_slot.s");
  ASSERT_TRUE(in.is_open());
  std::ostringstream ss;
  ss << in.rdbuf();
  const Cfg cfg = analyze_source(ss.str());
  EXPECT_TRUE(cfg.has_errors());
  const LintFinding* f = find(cfg, LintCode::kCtiInDelaySlot);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kError);
  // The bne sits fourth in the fixture: entry + 12.
  EXPECT_EQ(f->pc, cfg.entry + 12);
}

TEST(CfgLint, CtiInAnnulledSlotIsOnlyAWarning) {
  // ba,a skips its delay slot always, so a CTI there can never execute.
  const Cfg cfg = analyze_source(R"(
_start:
  ba,a done
  bne _start
done:
  ta 0
  nop
)");
  EXPECT_FALSE(cfg.has_errors());
  EXPECT_TRUE(has_finding(cfg, LintCode::kCtiInAnnulledSlot));
}

TEST(CfgLint, IllegalEncodingInLiveSlotIsAnError) {
  const Cfg cfg = analyze_source(R"(
_start:
  ba done
  .word 0x00000000   ! op2 == 0: reserved format-2 encoding (unimp)
done:
  ta 0
  nop
)");
  const LintFinding* f = find(cfg, LintCode::kIllegalEncoding);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kError);
  EXPECT_EQ(f->pc, cfg.entry + 4);
}

TEST(CfgLint, IllegalEncodingInAnnulledSlotIsAWarning) {
  const Cfg cfg = analyze_source(R"(
_start:
  ba,a done
  .word 0x00000000
done:
  ta 0
  nop
)");
  EXPECT_FALSE(cfg.has_errors());
  EXPECT_TRUE(has_finding(cfg, LintCode::kIllegalInAnnulledSlot));
}

TEST(CfgLint, ReachableIllegalEncodingIsAnError) {
  const Cfg cfg = analyze_source(R"(
_start:
  mov 1, %g1
  .word 0x00000000
  ta 0
  nop
)");
  EXPECT_TRUE(cfg.has_errors());
  const LintFinding* f = find(cfg, LintCode::kIllegalEncoding);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->pc, cfg.entry + 4);
}

TEST(CfgLint, ConditionalBranchSplitsBlocksAndResolvesEdges) {
  const Cfg cfg = analyze_source(R"(
_start:
  cmp %g1, 0
  be taken
  nop
  mov 1, %g2
taken:
  ta 0
  nop
)");
  EXPECT_FALSE(cfg.has_errors());
  ASSERT_EQ(cfg.blocks.size(), 3u);
  const BasicBlock& head = cfg.blocks.at(cfg.entry);
  EXPECT_TRUE(head.has_cti);
  EXPECT_TRUE(head.has_slot);
  ASSERT_EQ(head.edges.size(), 2u);
  bool saw_taken = false, saw_untaken = false;
  for (const CfgEdge& e : head.edges) {
    if (e.kind == CfgEdge::Kind::kTaken) {
      saw_taken = true;
      EXPECT_EQ(e.target, cfg.entry + 16);  // label `taken`
      EXPECT_TRUE(e.includes_slot);
    }
    if (e.kind == CfgEdge::Kind::kUntaken) {
      saw_untaken = true;
      EXPECT_EQ(e.target, cfg.entry + 12);  // past the couple
      EXPECT_TRUE(e.includes_slot);
    }
  }
  EXPECT_TRUE(saw_taken);
  EXPECT_TRUE(saw_untaken);
}

TEST(CfgLint, AnnulledConditionalExcludesSlotOnUntakenEdge) {
  const Cfg cfg = analyze_source(R"(
_start:
  cmp %g1, 0
  be,a taken
  mov 9, %g3
  mov 1, %g2
taken:
  ta 0
  nop
)");
  const BasicBlock& head = cfg.blocks.at(cfg.entry);
  for (const CfgEdge& e : head.edges) {
    if (e.kind == CfgEdge::Kind::kUntaken) EXPECT_FALSE(e.includes_slot);
    if (e.kind == CfgEdge::Kind::kTaken) EXPECT_TRUE(e.includes_slot);
  }
}

TEST(CfgLint, CallEdgeAndReturnSiteAreRecovered) {
  const Cfg cfg = analyze_source(R"(
_start:
  call helper
  nop
  ta 0
  nop
helper:
  retl
  nop
)");
  const BasicBlock& head = cfg.blocks.at(cfg.entry);
  ASSERT_EQ(head.edges.size(), 1u);
  EXPECT_EQ(head.edges[0].kind, CfgEdge::Kind::kCall);
  EXPECT_EQ(head.edges[0].target, cfg.entry + 16);  // helper
  // The return site pc+8 is recovered as its own block.
  EXPECT_EQ(cfg.blocks.count(cfg.entry + 8), 1u);
  // retl is jmpl: an indirect exit.
  EXPECT_TRUE(cfg.blocks.at(cfg.entry + 16).indirect);
  EXPECT_FALSE(cfg.has_errors());
}

TEST(CfgLint, FallThroughOffImageIsAnError) {
  const Cfg cfg = analyze_source(R"(
_start:
  mov 1, %g1
  add %g1, %g1, %g2
)");
  EXPECT_TRUE(cfg.has_errors());
  EXPECT_TRUE(has_finding(cfg, LintCode::kFallThroughOffImage));
}

TEST(CfgLint, DelaySlotOffImageIsAnError) {
  const Cfg cfg = analyze_source(R"(
_start:
  ba _start
)");
  EXPECT_TRUE(cfg.has_errors());
  EXPECT_TRUE(has_finding(cfg, LintCode::kDelaySlotOffImage));
}

TEST(CfgLint, StaticNonHaltTrapIsAnError) {
  const Cfg cfg = analyze_source(R"(
_start:
  ta 5
  nop
)");
  EXPECT_TRUE(cfg.has_errors());
  EXPECT_TRUE(has_finding(cfg, LintCode::kStaticTrapNotHalt));
}

TEST(CfgLint, BranchIntoDelaySlotExecutesItStandalone) {
  // Branching into a delay slot is legal; the slot instruction becomes its
  // own block entry.
  const Cfg cfg = analyze_source(R"(
_start:
  ba over
slot:
  mov 2, %g1
over:
  cmp %g1, 0
  bne slot
  nop
  ta 0
  nop
)");
  EXPECT_FALSE(cfg.has_errors());
  EXPECT_EQ(cfg.blocks.count(cfg.entry + 4), 1u);  // `slot` is a block
}

TEST(CfgLint, UnreachableRunsAreCoalesced) {
  const Cfg cfg = analyze_source(R"(
_start:
  ta 0
  nop
  mov 1, %g1
  mov 2, %g2
  mov 3, %g3
)");
  const LintFinding* f = find(cfg, LintCode::kUnreachableCode);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kWarning);
  EXPECT_EQ(f->pc, cfg.entry + 4);  // the nop onward, one coalesced run
  EXPECT_NE(f->message.find("4 unreachable"), std::string::npos);
}

TEST(CfgLint, LoopHasBackEdge) {
  const Cfg cfg = analyze_source(R"(
_start:
  mov 4, %g1
loop:
  subcc %g1, 1, %g1
  bne loop
  nop
  ta 0
  nop
)");
  EXPECT_FALSE(cfg.has_errors());
  const BasicBlock& latch = cfg.blocks.at(cfg.entry + 4);
  bool back = false;
  for (const CfgEdge& e : latch.edges) {
    back = back || (e.kind == CfgEdge::Kind::kTaken && e.target == latch.start);
  }
  EXPECT_TRUE(back);
}

}  // namespace
}  // namespace nfp::analyze
