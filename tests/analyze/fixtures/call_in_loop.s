! Interprocedural fixture: a counted loop that calls a leaf helper each
! iteration. The callee is solved first and its summary is inlined on the
! synthesized call-continuation edge; the loop counter survives the call
! because the callee's transitive write mask ({%g5, %o7}) misses %g3.
  .text
_start:
  mov 5, %g3
loop:
  call helper
  nop
  subcc %g3, 1, %g3
  bne loop
  nop
  ta 0
  nop
helper:
  add %g5, 1, %g5
  retl
  nop
