! Irreducible region: the cycle head <-> mid has two entries (the branch can
! jump straight into mid), so neither block dominates the other and the
! retreating edge is not a natural back edge. IPET must refuse with
! reason=irreducible-loop naming the offending edge.
  .text
_start:
  cmp %g1, 0
  be mid
  nop
head:
  add %g2, 1, %g2
mid:
  subcc %g3, 1, %g3
  bne head
  nop
  ta 0
  nop
