! Hand-written lint fixture: a conditional branch sitting in the live delay
! slot of another branch. The V8 spec leaves CTI couples implementation-
! defined; the simulator treats them as faults, so nfplint must flag this
! as an error (cti-in-delay-slot at the slot address).
  .text
_start:
  mov 1, %g1
  cmp %g1, 0
  ba done
  bne _start        ! CTI in a live delay slot: the error under test
done:
  ta 0
  nop
