! Zero-trip counted loop: the header test fails on the very first pass
! (counter initialised to the exit value), so the body never runs. The
! inference still bounds the header at one execution.
  .text
_start:
  mov 0, %g2
loop:
  cmp %g2, 0
  be done
  nop
  sub %g2, 1, %g2
  ba loop
  nop
done:
  ta 0
  nop
