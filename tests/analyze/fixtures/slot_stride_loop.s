! Counted loop whose stride sits in the branch delay slot. The slot of a
! non-annulling conditional executes on both the taken and untaken paths,
! so the stride still runs exactly once per test: the inference must accept
! it (6 header runs: %g2 walks 6 -> 1 against limit 1).
  .text
_start:
  mov 6, %g2
loop:
  add %g4, 2, %g4
  cmp %g2, 1
  bne loop
  sub %g2, 1, %g2
  ta 0
  nop
