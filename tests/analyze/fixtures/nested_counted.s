! Two nested counted loops: the inner counter is re-initialised inside the
! outer body (the inference's re-init rule), so both bounds are provable.
! Inner: 4 header runs per entry; outer: 3 -> the inner body retires 12x.
  .text
_start:
  mov 3, %g1
outer:
  mov 4, %g2
inner:
  add %g4, 1, %g4
  subcc %g2, 1, %g2
  bne inner
  nop
  subcc %g1, 1, %g1
  bne outer
  nop
  ta 0
  nop
