// Dominator/loop-forest and counted-loop inference tests, including the
// widened shapes (either direction, separate stride + compare, delay-slot
// strides) and the refusal edge cases (irreducible regions, clobbers).
#include "analyze/loops.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "analyze/cfg.h"
#include "analyze/cost.h"
#include "asmkit/assembler.h"
#include "sim/memmap.h"

#ifndef NFP_ANALYZE_FIXTURE_DIR
#error "NFP_ANALYZE_FIXTURE_DIR must point at tests/analyze/fixtures"
#endif

namespace nfp::analyze {
namespace {

std::string fixture(const std::string& name) {
  std::ifstream in(std::string(NFP_ANALYZE_FIXTURE_DIR) + "/" + name);
  EXPECT_TRUE(in.is_open()) << name;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

Cfg cfg_of(const std::string& source) {
  return build_cfg(asmkit::assemble(source, sim::kTextBase));
}

// Whole-CFG successor view (valid for call-free programs).
SuccMap succs_of(const Cfg& cfg) {
  SuccMap out;
  for (const auto& [addr, b] : cfg.blocks) {
    out[addr];
    for (const CfgEdge& e : b.edges) {
      if (cfg.blocks.count(e.target) != 0) out[addr].push_back(e.target);
    }
  }
  return out;
}

std::set<std::uint32_t> all_blocks(const Cfg& cfg) {
  std::set<std::uint32_t> out;
  for (const auto& [addr, b] : cfg.blocks) out.insert(addr);
  return out;
}

const ClobberMask kNoClobbers = [](const BasicBlock&) -> std::uint32_t {
  return 0;
};

std::optional<CountedBound> infer_first_loop(const Cfg& cfg,
                                             const ClobberMask& clobbers) {
  const SuccMap succs = succs_of(cfg);
  const DomTree dom = build_domtree(cfg.entry, succs);
  const LoopForest forest = find_natural_loops(cfg.entry, succs, dom);
  EXPECT_FALSE(forest.irreducible);
  EXPECT_EQ(forest.loops.size(), 1u);
  if (forest.loops.size() != 1) return std::nullopt;
  return infer_counted_bound(cfg, dom, all_blocks(cfg), succs, forest.loops,
                             forest.loops[0], clobbers);
}

TEST(DomTree, DiamondIdoms) {
  // 1 -> {2, 3} -> 4: the entry dominates everything, the join only itself.
  SuccMap g;
  g[1] = {2, 3};
  g[2] = {4};
  g[3] = {4};
  g[4] = {};
  const DomTree dom = build_domtree(1, g);
  EXPECT_EQ(dom.idom.at(4), 1u);
  EXPECT_TRUE(dom.dominates(1, 4));
  EXPECT_FALSE(dom.dominates(2, 4));
  EXPECT_FALSE(dom.dominates(3, 4));
  EXPECT_TRUE(dom.dominates(4, 4));
  EXPECT_FALSE(dom.dominates(4, 1));
}

TEST(DomTree, UnreachableBlocksDominateNothing) {
  SuccMap g;
  g[1] = {2};
  g[2] = {};
  g[9] = {1};  // unreachable from the entry
  const DomTree dom = build_domtree(1, g);
  EXPECT_FALSE(dom.dominates(9, 2));
  EXPECT_FALSE(dom.dominates(1, 9));
  EXPECT_EQ(dom.rpo.size(), 2u);
}

TEST(LoopForest, NestedLoopsGetParentAndDepth) {
  // 1 -> 2 -> 3 -> 2 (inner), 3 -> 4 -> 1? No: outer latch 4 -> 2's
  // dominator 1... keep it simple: outer header 2, inner header 3.
  SuccMap g;
  g[1] = {2};
  g[2] = {3};
  g[3] = {3, 4};  // inner self-loop at 3
  g[4] = {2, 5};  // outer back edge 4 -> 2
  g[5] = {};
  const DomTree dom = build_domtree(1, g);
  const LoopForest forest = find_natural_loops(1, g, dom);
  ASSERT_FALSE(forest.irreducible);
  ASSERT_EQ(forest.loops.size(), 2u);
  const NaturalLoop& outer = forest.loops[0].header == 2 ? forest.loops[0]
                                                         : forest.loops[1];
  const NaturalLoop& inner = forest.loops[0].header == 3 ? forest.loops[0]
                                                         : forest.loops[1];
  EXPECT_EQ(outer.header, 2u);
  EXPECT_EQ(inner.header, 3u);
  EXPECT_EQ(outer.depth, 1);
  EXPECT_EQ(inner.depth, 2);
  EXPECT_GE(inner.parent, 0);
  EXPECT_EQ(forest.loops[static_cast<std::size_t>(inner.parent)].header, 2u);
  EXPECT_TRUE(outer.body.count(3) != 0);
  EXPECT_TRUE(outer.body.count(4) != 0);
  EXPECT_TRUE(inner.body.count(4) == 0);
}

TEST(LoopForest, TwoEntryRegionIsIrreducible) {
  // 1 branches to both 2 and 3; 2 <-> 3 form a cycle with two entries.
  SuccMap g;
  g[1] = {2, 3};
  g[2] = {3};
  g[3] = {2, 4};
  g[4] = {};
  const DomTree dom = build_domtree(1, g);
  const LoopForest forest = find_natural_loops(1, g, dom);
  EXPECT_TRUE(forest.irreducible);
  // The offender is a retreating edge inside {2, 3}.
  EXPECT_TRUE(forest.offender_to == 2 || forest.offender_to == 3);
}

TEST(LoopForest, IrreducibleFixture) {
  const Cfg cfg = cfg_of(fixture("irreducible.s"));
  ASSERT_FALSE(cfg.has_errors());
  const SuccMap succs = succs_of(cfg);
  const DomTree dom = build_domtree(cfg.entry, succs);
  const LoopForest forest = find_natural_loops(cfg.entry, succs, dom);
  EXPECT_TRUE(forest.irreducible);
}

TEST(CountedBound, DownCountingCombinedForm) {
  const Cfg cfg = cfg_of(R"(
_start:
  mov 12, %g2
loop:
  add %g3, 5, %g3
  subcc %g2, 3, %g2
  bne loop
  nop
  ta 0
  nop
)");
  const auto bound = infer_first_loop(cfg, kNoClobbers);
  ASSERT_TRUE(bound.has_value());
  EXPECT_EQ(bound->bound, 4u);
  EXPECT_NE(bound->detail.find("step -3"), std::string::npos);
}

TEST(CountedBound, UpCountingCompareForm) {
  const Cfg cfg = cfg_of(R"(
_start:
  mov 0, %g1
loop:
  add %g1, 1, %g1
  cmp %g1, 10
  bl loop
  nop
  ta 0
  nop
)");
  const auto bound = infer_first_loop(cfg, kNoClobbers);
  ASSERT_TRUE(bound.has_value());
  EXPECT_EQ(bound->bound, 10u);
}

TEST(CountedBound, StrideInDelaySlotFixture) {
  const Cfg cfg = cfg_of(fixture("slot_stride_loop.s"));
  ASSERT_FALSE(cfg.has_errors());
  const auto bound = infer_first_loop(cfg, kNoClobbers);
  ASSERT_TRUE(bound.has_value());
  EXPECT_EQ(bound->bound, 6u);
}

TEST(CountedBound, ZeroTripFixtureBoundsHeaderAtOne) {
  const Cfg cfg = cfg_of(fixture("zero_trip.s"));
  ASSERT_FALSE(cfg.has_errors());
  const auto bound = infer_first_loop(cfg, kNoClobbers);
  ASSERT_TRUE(bound.has_value());
  EXPECT_EQ(bound->bound, 1u);  // the test runs once, the body never
}

TEST(CountedBound, NestedFixtureBoundsBothLevels) {
  const Cfg cfg = cfg_of(fixture("nested_counted.s"));
  ASSERT_FALSE(cfg.has_errors());
  const SuccMap succs = succs_of(cfg);
  const DomTree dom = build_domtree(cfg.entry, succs);
  const LoopForest forest = find_natural_loops(cfg.entry, succs, dom);
  ASSERT_FALSE(forest.irreducible);
  ASSERT_EQ(forest.loops.size(), 2u);
  for (const NaturalLoop& loop : forest.loops) {
    const auto bound = infer_counted_bound(cfg, dom, all_blocks(cfg), succs,
                                           forest.loops, loop, kNoClobbers);
    ASSERT_TRUE(bound.has_value()) << hex(loop.header);
    EXPECT_EQ(bound->bound, loop.depth == 2 ? 4u : 3u);
  }
}

TEST(CountedBound, RegisterStrideIsRefused) {
  const Cfg cfg = cfg_of(R"(
_start:
  mov 8, %g1
  mov 2, %g2
loop:
  subcc %g1, %g2, %g1
  bne loop
  nop
  ta 0
  nop
)");
  EXPECT_FALSE(infer_first_loop(cfg, kNoClobbers).has_value());
}

TEST(CountedBound, TwoStridesAreAmbiguous) {
  const Cfg cfg = cfg_of(R"(
_start:
  mov 9, %g1
loop:
  sub %g1, 1, %g1
  sub %g1, 2, %g1
  cmp %g1, 0
  bg loop
  nop
  ta 0
  nop
)");
  EXPECT_FALSE(infer_first_loop(cfg, kNoClobbers).has_value());
}

TEST(CountedBound, ClobberMaskVetoesTheCounter) {
  const Cfg cfg = cfg_of(R"(
_start:
  mov 12, %g2
loop:
  subcc %g2, 3, %g2
  bne loop
  nop
  ta 0
  nop
)");
  ASSERT_TRUE(infer_first_loop(cfg, kNoClobbers).has_value());
  // The same loop with every block reported as clobbering %g2 must refuse.
  const ClobberMask clobber_g2 = [](const BasicBlock&) -> std::uint32_t {
    return 1u << 2;
  };
  EXPECT_FALSE(infer_first_loop(cfg, clobber_g2).has_value());
}

TEST(CountedBound, MissingInitialiserIsRefused) {
  // No write to %g2 outside the loop: the trip count is input-dependent.
  const Cfg cfg = cfg_of(R"(
_start:
  nop
loop:
  subcc %g2, 3, %g2
  bne loop
  nop
  ta 0
  nop
)");
  EXPECT_FALSE(infer_first_loop(cfg, kNoClobbers).has_value());
}

}  // namespace
}  // namespace nfp::analyze
