// Resume bit-identity battery and negative paths for sim/state_io.h.
//
// The contract: saving at ANY budget point — including stops with a pending
// delay slot and stops inside a hot chain — and restoring into a fresh
// executor must yield a continuation that retires bit-for-bit identically to
// the uninterrupted run, in every dispatch mode. And every malformed
// snapshot (truncated, corrupted, version-skewed, foreign chunks) must be
// rejected with a structured StateError while leaving the restore target
// bit-for-bit untouched.
#include "sim/state_io.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "asmkit/assembler.h"
#include "sim/digest.h"
#include "sim/iss.h"
#include "sim/jit.h"
#include "sim/memmap.h"

namespace nfp::sim {
namespace {

// A loop that exercises stores across pages, UART MMIO traffic, flag-setting
// arithmetic, and taken branches (so budget stops can land on pending delay
// slots).
asmkit::Program work_program(int iterations) {
  return asmkit::assemble(
      "_start: set " + std::to_string(iterations) + R"(, %l0
        set 0x40700000, %l1
        set )" + std::to_string(kUartTx) + R"(, %l2
        clr %l3
loop:   st %l0, [%l1 + %l3]
        add %l3, 4, %l3
        and %l3, 0xffc, %l3
        add %l0, 42, %l4
        st %l4, [%l2]
        subcc %l0, 1, %l0
        bne loop
        xor %l4, %l0, %l5
        mov 0, %o0
        ta 0
)",
      kTextBase);
}

// Patches the loop body from a template instruction stored after the halt:
// a snapshot taken after the patch must carry the modified code word (the
// restore rebuilds the decode cache from restored RAM). The patching store
// sits in a different superblock than the patched site (separated by the
// ba), matching the morph cache's invalidation contract.
asmkit::Program selfmod_program() {
  return asmkit::assemble(R"(
_start: set src, %l1
        ld [%l1], %l2
        set target, %l3
        st %l2, [%l3]
        set 6, %l0
        ba loop
        nop
loop:
target: add %g4, 1, %g4
        subcc %l0, 1, %l0
        bne loop
        nop
        mov 0, %o0
        ta 0
src:    add %g4, 5, %g4
)",
                          kTextBase);
}

struct Observed {
  bool halted = false;
  std::uint32_t exit_code = 0;
  std::uint64_t instret = 0;
  std::uint32_t pc = 0, npc = 0;
  ArchStateDigest digest{};
  std::array<std::uint64_t, isa::kOpCount> counts{};
  std::string uart;
};

Observed observe(Iss& iss) {
  Observed o;
  o.halted = iss.cpu().halted;
  o.exit_code = iss.cpu().exit_code;
  o.instret = iss.cpu().instret;
  o.pc = iss.cpu().pc;
  o.npc = iss.cpu().npc;
  o.digest = arch_digest(iss.cpu(), iss.bus());
  o.counts = iss.counters().counts;
  o.uart = iss.bus().uart_output();
  return o;
}

void expect_equal(const Observed& got, const Observed& want,
                  const std::string& where) {
  EXPECT_EQ(got.halted, want.halted) << where;
  EXPECT_EQ(got.exit_code, want.exit_code) << where;
  EXPECT_EQ(got.instret, want.instret) << where;
  EXPECT_EQ(got.pc, want.pc) << where;
  EXPECT_EQ(got.npc, want.npc) << where;
  EXPECT_EQ(got.digest, want.digest) << where;
  EXPECT_EQ(got.counts, want.counts) << where;
  EXPECT_EQ(got.uart, want.uart) << where;
}

Observed run_straight(const asmkit::Program& prog, Dispatch d,
                      std::uint64_t budget = 1'000'000) {
  Iss iss;
  iss.load(prog);
  iss.run(budget, d);
  return observe(iss);
}

// Runs `prog` under dispatch `d`, but save→restore→swap between two fresh
// executors at every stop point. Asserts each restored executor observes the
// exact saved state before continuing on it.
Observed run_resumed(const asmkit::Program& prog, Dispatch d,
                     const std::vector<std::uint64_t>& stops,
                     std::uint64_t budget = 1'000'000) {
  Iss a, b;
  Iss* cur = &a;
  Iss* other = &b;
  cur->load(prog);
  for (const std::uint64_t stop : stops) {
    const std::uint64_t done = cur->cpu().instret;
    if (stop > done && !cur->cpu().halted) {
      cur->run(stop - done, d);
    }
    std::stringstream buf;
    cur->save_state(buf);
    other->restore_state(buf);
    expect_equal(observe(*other), observe(*cur),
                 "restore at stop " + std::to_string(stop));
    std::swap(cur, other);
  }
  cur->run(budget, d);
  return observe(*cur);
}

std::vector<std::uint64_t> random_stops(std::uint64_t total, int n,
                                        std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<std::uint64_t> stops;
  for (int i = 0; i < n; ++i) {
    stops.push_back(std::uniform_int_distribution<std::uint64_t>(
        1, total > 1 ? total - 1 : 1)(rng));
  }
  std::sort(stops.begin(), stops.end());
  return stops;
}

std::vector<Dispatch> all_dispatch_modes() {
  std::vector<Dispatch> modes = {Dispatch::kStep, Dispatch::kBlockUnchained,
                                 Dispatch::kBlock};
  if (jit_available()) modes.push_back(Dispatch::kJit);
  return modes;
}

TEST(StateIoResume, RandomStopsAllDispatchModes) {
  const auto prog = work_program(400);
  for (const Dispatch d : all_dispatch_modes()) {
    const Observed straight = run_straight(prog, d);
    ASSERT_TRUE(straight.halted);
    for (std::uint32_t seed : {1u, 2u, 3u}) {
      const auto stops = random_stops(straight.instret, 5, seed);
      expect_equal(run_resumed(prog, d, stops), straight,
                   "dispatch " + std::to_string(static_cast<int>(d)) +
                       " seed " + std::to_string(seed));
    }
  }
}

TEST(StateIoResume, CrossDispatchResume) {
  // Save under one dispatch mode, resume under another: the snapshot is
  // architectural state only, so every pairing must agree with the stepped
  // straight-through run.
  const auto prog = work_program(300);
  const Observed straight = run_straight(prog, Dispatch::kStep);
  ASSERT_TRUE(straight.halted);
  for (const Dispatch first : all_dispatch_modes()) {
    for (const Dispatch second : all_dispatch_modes()) {
      Iss a, b;
      a.load(prog);
      a.run(straight.instret / 2, first);
      std::stringstream buf;
      a.save_state(buf);
      b.restore_state(buf);
      b.run(1'000'000, second);
      expect_equal(observe(b), straight, "cross-dispatch resume");
    }
  }
}

TEST(StateIoResume, PendingDelaySlotSnapshot) {
  // Sweep every budget point of a few loop iterations; several land right
  // after a taken branch retired (npc != pc + 4, the delay insn pending).
  // Assert we actually hit that case, and that each one resumes exactly.
  const auto prog = work_program(50);
  const Observed straight = run_straight(prog, Dispatch::kBlock);
  ASSERT_TRUE(straight.halted);
  int pending_seen = 0;
  for (std::uint64_t stop = 1; stop < 60; ++stop) {
    Iss a, b;
    a.load(prog);
    a.run(stop, Dispatch::kBlock);
    if (a.cpu().npc != a.cpu().pc + 4) ++pending_seen;
    std::stringstream buf;
    a.save_state(buf);
    b.restore_state(buf);
    b.run(1'000'000, Dispatch::kBlock);
    expect_equal(observe(b), straight,
                 "resume from stop " + std::to_string(stop));
  }
  EXPECT_GT(pending_seen, 0) << "sweep never hit a pending delay slot";
}

TEST(StateIoResume, MidChainSnapshot) {
  // Under chained block dispatch the loop body chains to itself after the
  // first iteration; stops beyond that land mid-chain. Resume through a
  // chain-hot stop, continue chained, and require the exact final state.
  const auto prog = work_program(200);
  const Observed straight = run_straight(prog, Dispatch::kBlock);
  ASSERT_TRUE(straight.halted);
  for (const std::uint64_t stop : {40ull, 41ull, 43ull, 100ull}) {
    expect_equal(run_resumed(prog, Dispatch::kBlock, {stop}), straight,
                 "mid-chain stop " + std::to_string(stop));
  }
}

TEST(StateIoResume, SelfModifyingCodeSurvivesSnapshot) {
  const auto prog = selfmod_program();
  for (const Dispatch d : all_dispatch_modes()) {
    const Observed straight = run_straight(prog, d);
    ASSERT_TRUE(straight.halted);
    // Stop after the patching store retired but before the loop finishes:
    // the restored executor must decode the patched word, not the original.
    for (const std::uint64_t stop : {5ull, 9ull, 14ull}) {
      expect_equal(run_resumed(prog, d, {stop}), straight,
                   "selfmod stop " + std::to_string(stop));
    }
  }
}

TEST(StateIoResume, RestoreIntoDirtyTargetResetsStaleState) {
  // The target previously ran a program that dirtied pages the snapshot does
  // not carry; restore must zero them (fresh-RAM guarantee), not merge.
  const auto prog_a = work_program(100);    // stores at 0x40700000
  const auto prog_b = selfmod_program();    // stores only into its code page
  Iss a;
  a.load(prog_a);
  a.run(1'000'000);
  ASSERT_TRUE(a.cpu().halted);

  Iss b;
  b.load(prog_b);
  b.run(4, Dispatch::kStep);
  std::stringstream buf;
  b.save_state(buf);

  a.restore_state(buf);
  expect_equal(observe(a), observe(b), "restore into dirty target");
  const auto stale = a.bus().read_block(0x40700000u, 64);
  EXPECT_EQ(stale, std::vector<std::uint8_t>(64, 0));
  a.run(1'000'000);
  Iss ref;
  ref.load(prog_b);
  ref.run(1'000'000);
  expect_equal(observe(a), observe(ref), "continue after dirty restore");
}

TEST(StateIoResume, HaltedStateRoundTrips) {
  const auto prog = work_program(30);
  Iss a;
  a.load(prog);
  a.run(1'000'000);
  ASSERT_TRUE(a.cpu().halted);
  std::stringstream buf;
  a.save_state(buf);
  Iss b;
  b.restore_state(buf);
  expect_equal(observe(b), observe(a), "halted round trip");
  // Running a restored-halted machine is a no-op, exactly like the original.
  const auto r = b.run(1'000);
  EXPECT_TRUE(r.halted);
  expect_equal(observe(b), observe(a), "run after halted restore");
}

// ---- negative paths --------------------------------------------------------

std::string snapshot_bytes(Iss& iss) {
  std::ostringstream out;
  iss.save_state(out);
  return out.str();
}

// Attempts a restore that must fail; returns the structured code and asserts
// the target was left bit-for-bit untouched.
StateErrorCode expect_rejected(Iss& target, const std::string& bytes) {
  const Observed before = observe(target);
  std::istringstream in(bytes);
  StateErrorCode code = StateErrorCode::kIo;
  bool threw = false;
  try {
    target.restore_state(in);
  } catch (const StateError& e) {
    threw = true;
    code = e.code;
  }
  EXPECT_TRUE(threw) << "malformed snapshot was accepted";
  expect_equal(observe(target), before, "target after rejected restore");
  return code;
}

class StateIoNegative : public ::testing::Test {
 protected:
  void SetUp() override {
    target_.load(work_program(100));
    target_.run(37);

    Iss src;
    src.load(work_program(200));
    src.run(50);
    good_ = snapshot_bytes(src);
  }

  Iss target_;
  std::string good_;
};

// Layout: 8-byte header (magic, version), then chunk headers of
// tag(4) + size(8) + checksum(8) followed by the payload.
constexpr std::size_t kFirstChunk = 8;
constexpr std::size_t kFirstChecksum = kFirstChunk + 12;

TEST_F(StateIoNegative, AcceptsTheUncorruptedBaseline) {
  std::istringstream in(good_);
  target_.restore_state(in);  // must not throw
  EXPECT_EQ(target_.cpu().instret, 50u);
}

TEST_F(StateIoNegative, TruncatedFile) {
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{4}, std::size_t{8}, std::size_t{15},
        kFirstChunk + 20, good_.size() / 2, good_.size() - 1}) {
    EXPECT_EQ(expect_rejected(target_, good_.substr(0, keep)),
              StateErrorCode::kTruncated)
        << "kept " << keep << " of " << good_.size();
  }
}

TEST_F(StateIoNegative, FlippedChecksumByte) {
  std::string bad = good_;
  bad[kFirstChecksum] ^= 0x01;
  EXPECT_EQ(expect_rejected(target_, bad), StateErrorCode::kBadChecksum);
}

TEST_F(StateIoNegative, FlippedPayloadByte) {
  std::string bad = good_;
  bad[kFirstChunk + 20 + 3] ^= 0x40;
  EXPECT_EQ(expect_rejected(target_, bad), StateErrorCode::kBadChecksum);
}

TEST_F(StateIoNegative, UnknownChunkTag) {
  std::string bad = good_;
  bad[kFirstChunk] = 'Z';
  bad[kFirstChunk + 1] = 'Z';
  bad[kFirstChunk + 2] = 'Z';
  bad[kFirstChunk + 3] = 'Z';
  EXPECT_EQ(expect_rejected(target_, bad), StateErrorCode::kUnknownChunk);
}

TEST_F(StateIoNegative, VersionSkew) {
  std::string bad = good_;
  bad[4] = static_cast<char>(kStateVersion + 1);
  EXPECT_EQ(expect_rejected(target_, bad), StateErrorCode::kBadVersion);
}

TEST_F(StateIoNegative, BadMagic) {
  std::string bad = good_;
  bad[0] = 'X';
  EXPECT_EQ(expect_rejected(target_, bad), StateErrorCode::kBadMagic);
}

TEST_F(StateIoNegative, TrailingData) {
  EXPECT_EQ(expect_rejected(target_, good_ + std::string(3, '\0')),
            StateErrorCode::kTrailingData);
}

TEST_F(StateIoNegative, MissingChunk) {
  // A platform-only snapshot lacks the ISS retire-count chunk.
  Iss src;
  src.load(work_program(50));
  src.run(10);
  std::ostringstream out;
  save_state(out, src.platform());
  EXPECT_EQ(expect_rejected(target_, out.str()),
            StateErrorCode::kMissingChunk);
}

TEST_F(StateIoNegative, ForeignChunkForThisTarget) {
  // An ISS snapshot carries the counts chunk a bare Platform restore does
  // not accept: never silently skipped.
  FunctionalSim f;
  f.load(work_program(50));
  const ArchStateDigest before =
      arch_digest(f.platform().cpu(), f.platform().bus());
  std::istringstream in(good_);
  StateErrorCode code = StateErrorCode::kIo;
  try {
    restore_state(in, f.platform());
  } catch (const StateError& e) {
    code = e.code;
  }
  EXPECT_EQ(code, StateErrorCode::kUnknownChunk);
  EXPECT_EQ(arch_digest(f.platform().cpu(), f.platform().bus()), before);
}

TEST_F(StateIoNegative, DuplicateChunk) {
  StateWriter w;
  Iss src;
  src.load(work_program(50));
  append_platform_chunks(w, src.platform());
  w.begin_chunk(kChunkCpu);  // second CPU0
  w.end_chunk();
  std::ostringstream out;
  w.finish(out);
  EXPECT_EQ(expect_rejected(target_, out.str()),
            StateErrorCode::kDuplicateChunk);
}

TEST_F(StateIoNegative, BadPayloadShape) {
  // A counts chunk with the wrong arity decodes but fails validation.
  StateWriter w;
  Iss src;
  src.load(work_program(50));
  append_platform_chunks(w, src.platform());
  w.begin_chunk(kChunkCounts);
  w.put_u32(3);
  for (int i = 0; i < 3; ++i) w.put_u64(0);
  w.end_chunk();
  std::ostringstream out;
  w.finish(out);
  EXPECT_EQ(expect_rejected(target_, out.str()),
            StateErrorCode::kBadPayload);
}

}  // namespace
}  // namespace nfp::sim
