// Differential and unit tests for the superblock morph cache: block
// dispatch must be observably identical to the single-step reference path
// on every workload in the kernel registry, and the cache must stay
// coherent when a program stores into its own code.
#include "sim/block_cache.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "asmkit/assembler.h"
#include "sim/iss.h"
#include "sim/memmap.h"
#include "workloads/kernels.h"

namespace nfp::sim {
namespace {

// Everything a kernel run exposes to an observer: functional results, the
// retire stream totals, and the output region the workloads write.
struct Observed {
  bool halted = false;
  std::uint32_t exit_code = 0;
  std::uint64_t instret = 0;
  std::string uart;
  std::array<std::uint64_t, isa::kOpCount> counts{};
  std::vector<std::uint8_t> output;
};

Observed run_job(const model::KernelJob& job, Dispatch dispatch) {
  Iss iss;
  iss.load(job.program);
  for (const auto& [addr, bytes] : job.inputs) {
    iss.bus().write_block(addr, bytes.data(), bytes.size());
  }
  const auto r = iss.run(2'000'000'000ull, dispatch);
  Observed o;
  o.halted = r.halted;
  o.exit_code = r.exit_code;
  o.instret = r.instret;
  o.uart = iss.bus().uart_output();
  o.counts = iss.counters().counts;
  o.output = iss.bus().read_block(kOutputBase, 64 * 1024);
  return o;
}

const char* mode_name(Dispatch d) {
  return d == Dispatch::kBlock ? "block-chained" : "block-unchained";
}

// Three-way differential: the single-step reference against both block
// modes (unchained lookup-per-transition and chained link-following).
// Per-op equality implies per-category equality for any category map.
void expect_identical(const model::KernelJob& job) {
  const auto step = run_job(job, Dispatch::kStep);
  ASSERT_TRUE(step.halted) << job.name;
  for (const auto mode : {Dispatch::kBlockUnchained, Dispatch::kBlock}) {
    const auto block = run_job(job, mode);
    EXPECT_TRUE(block.halted) << job.name << " " << mode_name(mode);
    EXPECT_EQ(block.exit_code, step.exit_code)
        << job.name << " " << mode_name(mode);
    EXPECT_EQ(block.instret, step.instret)
        << job.name << " " << mode_name(mode);
    EXPECT_EQ(block.uart, step.uart) << job.name << " " << mode_name(mode);
    EXPECT_EQ(block.counts, step.counts)
        << job.name << " " << mode_name(mode);
    EXPECT_EQ(block.output, step.output)
        << job.name << " " << mode_name(mode);
  }
}

TEST(BlockCacheDiff, FseKernelsIdentical) {
  workloads::FseKernelParams params;
  params.iterations = 16;
  params.count = 2;
  for (const auto abi : {mcc::FloatAbi::kHard, mcc::FloatAbi::kSoft}) {
    const auto jobs = workloads::make_fse_jobs(abi, params);
    for (int k = 0; k < params.count; ++k) expect_identical(jobs[k]);
  }
}

TEST(BlockCacheDiff, FseMinimalCpuConfigIdentical) {
  // Soft-float AND soft-muldiv: the emulation runtime is the branchiest
  // code in the repo, a good stress for block-boundary handling.
  workloads::FseKernelParams params;
  params.iterations = 8;
  params.count = 1;
  const auto jobs = workloads::make_fse_jobs(mcc::FloatAbi::kSoft, params,
                                             mcc::MulDivAbi::kSoft);
  expect_identical(jobs[0]);
}

TEST(BlockCacheDiff, MvcKernelsIdentical) {
  workloads::MvcKernelParams params;
  params.frames = 2;
  params.qps = {32};
  for (const auto abi : {mcc::FloatAbi::kHard, mcc::FloatAbi::kSoft}) {
    const auto jobs = workloads::make_mvc_jobs(abi, params);
    // One kernel per decoder configuration.
    for (const std::size_t idx : {0u, 3u, 6u, 9u}) {
      expect_identical(jobs[idx]);
    }
  }
}

TEST(BlockCacheDiff, SobelKernelsIdentical) {
  workloads::SobelKernelParams params;
  params.count = 1;
  for (const auto abi : {mcc::FloatAbi::kHard, mcc::FloatAbi::kSoft}) {
    expect_identical(workloads::make_sobel_jobs(abi, params)[0]);
  }
}

TEST(BlockCache, MorphsEachBlockOnceNotPerIteration) {
  Iss iss;
  const auto prog = asmkit::assemble(R"(
_start: mov 0, %l0
        mov 0, %o0
loop:   add %o0, %l0, %o0
        add %l0, 1, %l0
        cmp %l0, 100
        bne loop
        nop
        ta 0
)",
                                     kTextBase);
  iss.load(prog);
  const auto r = iss.run(1'000'000, Dispatch::kBlock);
  ASSERT_TRUE(r.halted);
  EXPECT_EQ(r.exit_code, 4950u);  // sum 0..99
  const auto& stats = iss.platform().block_cache()->stats();
  EXPECT_GE(stats.blocks_morphed, 1u);
  EXPECT_GT(stats.insns_morphed, 0u);
  // 100 iterations retired far more instructions than were ever morphed.
  EXPECT_LT(stats.insns_morphed, r.instret / 10);
  EXPECT_EQ(stats.flushes, 0u);
}

TEST(BlockCache, InstructionBudgetExactMidBlock) {
  // A budget that lands inside a straight-line run must stop at exactly
  // that many instructions in every dispatch mode.
  const auto prog = asmkit::assemble(R"(
_start: mov 0, %l0
loop:   add %l0, 1, %l0
        add %l0, 1, %l0
        add %l0, 1, %l0
        ba loop
        nop
)",
                                     kTextBase);
  for (const auto dispatch :
       {Dispatch::kStep, Dispatch::kBlockUnchained, Dispatch::kBlock}) {
    Iss iss;
    iss.load(prog);
    const auto r = iss.run(1001, dispatch);
    EXPECT_FALSE(r.halted);
    EXPECT_EQ(r.instret, 1001u);
  }
}

TEST(BlockCache, InstructionBudgetExactMidChain) {
  // Two blocks chained into a cycle; sweep budgets so the stop point lands
  // on every phase of the chain — block boundaries, delay slots, and
  // mid-block — and require instret == budget in all dispatch modes.
  const auto prog = asmkit::assemble(R"(
_start: mov 0, %l0
loop:   add %l0, 1, %l0
        add %l0, 1, %l0
        ba other
        nop
other:  add %l0, 1, %l0
        add %l0, 1, %l0
        add %l0, 1, %l0
        ba loop
        nop
)",
                                     kTextBase);
  for (std::uint64_t budget = 95; budget <= 105; ++budget) {
    for (const auto dispatch :
         {Dispatch::kStep, Dispatch::kBlockUnchained, Dispatch::kBlock}) {
      Iss iss;
      iss.load(prog);
      const auto r = iss.run(budget, dispatch);
      EXPECT_FALSE(r.halted) << "budget " << budget;
      EXPECT_EQ(r.instret, budget) << "budget " << budget;
    }
  }
}

TEST(BlockCache, StoreIntoCodeRefreshesBlock) {
  // First pass executes the original "mov 1, %o0", then the program patches
  // that word with the template at `word` (a "mov 7, %o0") and loops. Block
  // dispatch must flush the morphed block and re-morph the patched code.
  Iss iss;
  const auto prog = asmkit::assemble(R"(
_start: mov 0, %l7
        set patch, %g1
        set word, %g2
        ld [%g2], %l0
loop:   nop
patch:  mov 1, %o0
        cmp %l7, 1
        be done
        nop
        st %l0, [%g1]
        mov 1, %l7
        ba loop
        nop
done:   ta 0
word:   mov 7, %o0
)",
                                     kTextBase);
  iss.load(prog);
  const auto r = iss.run(1'000'000, Dispatch::kBlock);
  ASSERT_TRUE(r.halted);
  EXPECT_EQ(r.exit_code, 7u);
  EXPECT_GE(iss.platform().block_cache()->stats().flushes, 1u);
}

TEST(BlockCache, ChainLinksResolveHotLoopEdges) {
  // A two-block cycle: after the first traversal installs the links, every
  // further transition must ride the chain, not lookup().
  Iss iss;
  const auto prog = asmkit::assemble(R"(
_start: mov 0, %l0
        mov 0, %o0
loop:   add %o0, %l0, %o0
        add %l0, 1, %l0
        cmp %l0, 100
        bne loop
        nop
        ta 0
)",
                                     kTextBase);
  iss.load(prog);
  const auto r = iss.run(1'000'000, Dispatch::kBlock);
  ASSERT_TRUE(r.halted);
  EXPECT_EQ(r.exit_code, 4950u);
  const auto& stats = iss.platform().block_cache()->stats();
  EXPECT_GE(stats.links_installed, 1u);
  // ~100 loop iterations, each a chained re-entry of the loop block.
  EXPECT_GE(stats.chain_hits, 90u);
  EXPECT_LT(stats.lookup_fallbacks, 10u);
  EXPECT_EQ(stats.links_severed, 0u);
}

TEST(BlockCache, BtcResolvesRegisterIndirectReturns) {
  // A call/retl loop: the return's jmpl exit is register-indirect, so its
  // successor must resolve through the branch-target cache.
  Iss iss;
  const auto prog = asmkit::assemble(R"(
_start: mov 0, %l0
        mov 0, %o0
loop:   call fn
        nop
        add %l0, 1, %l0
        cmp %l0, 50
        bne loop
        nop
        ta 0
fn:     retl
        add %o0, 2, %o0
)",
                                     kTextBase);
  iss.load(prog);
  const auto r = iss.run(1'000'000, Dispatch::kBlock);
  ASSERT_TRUE(r.halted);
  EXPECT_EQ(r.exit_code, 100u);
  const auto& stats = iss.platform().block_cache()->stats();
  // 50 returns; all but the first (which misses and seeds the BTC) hit.
  EXPECT_GE(stats.btc_hits, 40u);
  EXPECT_GE(stats.btc_misses, 1u);
  EXPECT_GE(stats.chain_hits, 40u);
}

TEST(BlockCache, StoreFlushesChainedSuccessorAndPredecessorInFlight) {
  // Block X (at `loop`) patches the first word of block B every iteration,
  // then transfers into B; B transfers straight back to X. Once the first
  // traversal installs X->B and B->X, each later store flushes B while X —
  // B's chained predecessor AND successor — is the block in flight. The
  // severed links must force a fresh lookup/morph of B, so each iteration
  // executes the just-patched instruction (the bits toggle between
  // "mov 1, %o1" and "mov 7, %o1"); following a stale trace would add the
  // previous iteration's value and change the sum.
  const auto prog = asmkit::assemble(R"(
_start: mov 0, %l7
        mov 0, %o0
        set patch, %g1
        ld [%g1], %l0
        set word, %g2
        ld [%g2], %l2
        xor %l0, %l2, %l2
loop:   xor %l0, %l2, %l0
        st %l0, [%g1]
        ba bblk
        nop
bblk:
patch:  mov 1, %o1
        add %o0, %o1, %o0
        cmp %l7, 3
        bne loop
        add %l7, 1, %l7
        ta 0
word:   mov 7, %o1
)",
                                     kTextBase);
  for (const auto dispatch : {Dispatch::kBlockUnchained, Dispatch::kBlock}) {
    Iss iss;
    iss.load(prog);
    const auto r = iss.run(1'000'000, dispatch);
    ASSERT_TRUE(r.halted) << mode_name(dispatch);
    // Patched values seen: 7, 1, 7, 1.
    EXPECT_EQ(r.exit_code, 16u) << mode_name(dispatch);
    const auto& stats = iss.platform().block_cache()->stats();
    EXPECT_GE(stats.flushes, 3u) << mode_name(dispatch);
    if (dispatch == Dispatch::kBlock) {
      EXPECT_GE(stats.links_installed, 2u);
      EXPECT_GE(stats.links_severed, 2u);
    }
  }
}

TEST(BlockCache, LookupRejectsMisalignedAndForeignPcs) {
  Iss iss;
  const auto prog = asmkit::assemble(R"(
_start: nop
        ta 0
)",
                                     kTextBase);
  iss.load(prog);
  BlockCache* cache = iss.platform().block_cache();
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->lookup(kTextBase + 2), nullptr);
  EXPECT_EQ(cache->lookup(kTextBase - 4), nullptr);
  EXPECT_EQ(cache->lookup(kTextBase + prog.size()), nullptr);
  EXPECT_NE(cache->lookup(kTextBase), nullptr);
}

}  // namespace
}  // namespace nfp::sim
