#include "sim/trace.h"

#include <gtest/gtest.h>

#include "asmkit/assembler.h"
#include "sim/memmap.h"

namespace nfp::sim {
namespace {

TEST(Trace, CapturesDisassembledStream) {
  TraceSim tracer(100);
  tracer.load(asmkit::assemble(R"(
_start: mov 2, %l0
loop:   subcc %l0, 1, %l0
        bne loop
        nop
        ta 0
)",
                               kTextBase));
  const std::string trace = tracer.run();
  EXPECT_NE(trace.find("or %g0, 2, %l0"), std::string::npos);
  EXPECT_NE(trace.find("subcc %l0, 1, %l0"), std::string::npos);
  EXPECT_NE(trace.find("ta 0"), std::string::npos);
  // Two loop iterations: subcc appears twice.
  const auto first = trace.find("subcc");
  EXPECT_NE(trace.find("subcc", first + 1), std::string::npos);
  // Addresses are present.
  EXPECT_NE(trace.find("40000000"), std::string::npos);
}

TEST(Trace, RespectsLimit) {
  TraceSim tracer(5);
  tracer.load(asmkit::assemble(R"(
_start: mov 100, %l0
loop:   subcc %l0, 1, %l0
        bne loop
        nop
        ta 0
)",
                               kTextBase));
  const std::string trace = tracer.run();
  EXPECT_NE(trace.find("trace limit reached"), std::string::npos);
  // 5 instruction lines + the limit marker.
  int lines = 0;
  for (const char c : trace) lines += c == '\n';
  EXPECT_EQ(lines, 6);
  // The program still ran to completion.
  EXPECT_TRUE(tracer.cpu().halted);
}

}  // namespace
}  // namespace nfp::sim
