#include "sim/bus.h"

#include <gtest/gtest.h>

namespace nfp::sim {
namespace {

TEST(Bus, BigEndianWordAccess) {
  Bus bus;
  bus.store32(kRamBase, 0x11223344u);
  EXPECT_EQ(bus.load8(kRamBase), 0x11);
  EXPECT_EQ(bus.load8(kRamBase + 3), 0x44);
  EXPECT_EQ(bus.load16(kRamBase), 0x1122);
  EXPECT_EQ(bus.load16(kRamBase + 2), 0x3344);
  EXPECT_EQ(bus.load32(kRamBase), 0x11223344u);
}

TEST(Bus, DoubleRoundTrip) {
  Bus bus;
  bus.write_f64(kRamBase + 64, -3.25);
  EXPECT_EQ(bus.read_f64(kRamBase + 64), -3.25);
  // High word first (big-endian doubles).
  EXPECT_EQ(bus.load32(kRamBase + 64) >> 31, 1u);  // sign bit in first word
}

TEST(Bus, BlockTransfer) {
  Bus bus;
  const std::vector<std::uint8_t> data = {1, 2, 3, 4, 5};
  bus.write_block(kInputBase, data.data(), data.size());
  EXPECT_EQ(bus.read_block(kInputBase, 5), data);
}

TEST(Bus, UartCollectsOutput) {
  Bus bus;
  bus.store32(kUartTx, 'o');
  bus.store32(kUartTx, 'k');
  EXPECT_EQ(bus.uart_output(), "ok");
  bus.clear_uart();
  EXPECT_TRUE(bus.uart_output().empty());
}

TEST(Bus, TimerUsesTimeSource) {
  Bus bus;
  std::uint64_t now = 0x1'2345'6789ull;
  bus.set_time_source([&now] { return now; });
  EXPECT_EQ(bus.load32(kTimerLo), 0x23456789u);
  EXPECT_EQ(bus.load32(kTimerHi), 1u);
}

TEST(Bus, OutOfRangeAccessThrows) {
  Bus bus;
  EXPECT_THROW(bus.load32(0x10000000u), SimError);
  EXPECT_THROW(bus.store32(0x90000000u, 1), SimError);
  EXPECT_THROW(bus.write_block(kRamEnd - 2, nullptr, 4), SimError);
}

}  // namespace
}  // namespace nfp::sim
