// Directed tests for the x86-64 template JIT tier (Dispatch::kJit).
//
// The contract under test is observational equivalence with the single-step
// reference at every granularity the host loop exposes: final state, exact
// mid-run budget stops (including stops that land inside delay slots and
// folded delay instructions), per-op retire vectors, MMIO side effects,
// fault state, and coherence against self-modifying stores that kill the
// very block (or chain) the emitted code is executing.
//
// Every test skips itself on hosts where jit_available() is false — there
// the executor runs chained-block dispatch under the kJit label, which the
// fallback test at the bottom still covers.
#include "sim/jit.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>

#include "asmkit/assembler.h"
#include "sim/digest.h"
#include "sim/iss.h"
#include "sim/memmap.h"
#include "workloads/kernels.h"

namespace nfp::sim {
namespace {

// Full observable state of an Iss after a run (or after a fault: `fault`
// carries the exception message and the rest the reconciled state).
struct Observed {
  bool halted = false;
  std::uint32_t exit_code = 0;
  std::uint64_t instret = 0;
  std::uint32_t pc = 0;
  std::uint32_t npc = 0;
  ArchStateDigest digest{};
  std::array<std::uint64_t, isa::kOpCount> counts{};
  std::string uart;
  std::string fault;
};

Observed run_observed(const asmkit::Program& prog, Dispatch dispatch,
                      std::uint64_t budget = 1'000'000) {
  Iss iss;
  iss.load(prog);
  Observed o;
  try {
    const auto r = iss.run(budget, dispatch);
    o.halted = r.halted;
    o.exit_code = r.exit_code;
  } catch (const std::exception& e) {
    o.fault = e.what();
  }
  o.instret = iss.cpu().instret;
  o.pc = iss.cpu().pc;
  o.npc = iss.cpu().npc;
  o.digest = arch_digest(iss.cpu(), iss.bus());
  o.counts = iss.counters().counts;
  o.uart = iss.bus().uart_output();
  return o;
}

void expect_same(const Observed& step, const Observed& jit,
                 const std::string& what) {
  EXPECT_EQ(step.halted, jit.halted) << what;
  EXPECT_EQ(step.exit_code, jit.exit_code) << what;
  EXPECT_EQ(step.instret, jit.instret) << what;
  EXPECT_EQ(step.pc, jit.pc) << what;
  EXPECT_EQ(step.npc, jit.npc) << what;
  EXPECT_EQ(step.digest.cpu, jit.digest.cpu) << what;
  EXPECT_EQ(step.digest.ram, jit.digest.ram) << what;
  EXPECT_EQ(step.counts, jit.counts) << what;
  EXPECT_EQ(step.uart, jit.uart) << what;
  EXPECT_EQ(step.fault, jit.fault) << what;
}

void expect_step_jit_identical(const asmkit::Program& prog,
                               std::uint64_t budget, const std::string& what) {
  expect_same(run_observed(prog, Dispatch::kStep, budget),
              run_observed(prog, Dispatch::kJit, budget), what);
}

#define SKIP_WITHOUT_JIT()                                       \
  if (!jit_available()) {                                        \
    GTEST_SKIP() << "jit unavailable on this host (covered by "  \
                    "ForcedOffFallsBackToBlock)";                \
  }

// ---- template coverage ----------------------------------------------------

TEST(Jit, AluFlagsShiftsMulIdenticalToStep) {
  SKIP_WITHOUT_JIT();
  // Exercises every cc-setting form the templates emit natively (add/sub
  // with and without carry-in, logic, mul) plus all three shifts, across a
  // loop long enough that everything runs from emitted code.
  const auto prog = asmkit::assemble(R"(
_start: mov 0, %l0
        mov 0, %o0
        sethi %hi(0x12345400), %l4
        or %l4, 0x178, %l4
loop:   addcc %o0, %l4, %o0
        addxcc %o0, %l0, %o0
        subcc %o0, %l0, %o1
        subxcc %o1, 1, %o1
        andcc %o1, %l4, %o2
        orcc %o2, 7, %o2
        xorcc %o2, %o0, %o3
        xnorcc %o3, %l0, %o3
        andncc %o3, %l4, %o4
        orncc %o4, %o1, %o4
        umul %o4, %l4, %o5
        smulcc %o5, 3, %o5
        rd %y, %g2
        xor %o5, %g2, %o5
        wr %g0, %o5, %y
        sll %o5, 3, %g3
        srl %o5, 5, %g4
        sra %o5, 7, %g5
        add %g3, %g4, %g3
        add %g3, %g5, %o0
        add %l0, 1, %l0
        cmp %l0, 500
        bne loop
        nop
        ta 0
)",
                                     kTextBase);
  expect_step_jit_identical(prog, 1'000'000, "alu-flags");
}

TEST(Jit, ConditionalBranchesAllCondsIdenticalToStep) {
  SKIP_WITHOUT_JIT();
  // Data-dependent pattern of taken/untaken/annulled branches across every
  // icc condition code, iterated so both sides of each branch compile.
  const auto prog = asmkit::assemble(R"(
_start: mov 0, %l0
        mov 0, %o0
        sethi %hi(0x9E370000), %l4
        or %l4, 0x3F1, %l4
loop:   umul %l0, %l4, %l1
        addcc %l1, %l4, %l1
        be,a t1
        add %o0, 1, %o0
t1:     bne t2
        add %o0, 2, %o0
t2:     bcs,a t3
        add %o0, 4, %o0
t3:     bcc t4
        add %o0, 8, %o0
t4:     bneg t5
        add %o0, 16, %o0
t5:     bpos,a t6
        add %o0, 32, %o0
t6:     bvs t7
        add %o0, 64, %o0
t7:     bvc,a t8
        add %o0, 128, %o0
t8:     bg t9
        add %o0, 256, %o0
t9:     ble,a t10
        add %o0, 512, %o0
t10:    bge t11
        add %o0, 1024, %o0
t11:    bl,a t12
        add %o0, 2048, %o0
t12:    bgu t13
        add %o0, 4095, %o0
t13:    bleu,a t14
        add %o0, 1023, %o0
t14:    ba,a t15
        add %o0, 33, %o0
t15:    add %l0, 1, %l0
        cmp %l0, 300
        bne loop
        nop
        ta 0
)",
                                     kTextBase);
  expect_step_jit_identical(prog, 1'000'000, "bicc-conds");
}

TEST(Jit, LoadsStoresAllWidthsIdenticalToStep) {
  SKIP_WITHOUT_JIT();
  const auto prog = asmkit::assemble(R"(
_start: set 0x40100000, %g1
        set 0x9E3779B1, %g7
        mov 0, %l0
        mov 0, %o0
loop:   umul %l0, %g7, %l1
        st %l1, [%g1]
        sth %l1, [%g1 + 4]
        stb %l1, [%g1 + 6]
        std %l0, [%g1 + 8]
        ld [%g1], %o1
        lduh [%g1 + 4], %o2
        ldsh [%g1 + 4], %o3
        ldub [%g1 + 6], %o4
        ldsb [%g1 + 6], %o5
        ldd [%g1 + 8], %g2
        add %o1, %o2, %o1
        add %o1, %o3, %o1
        add %o1, %o4, %o1
        add %o1, %o5, %o1
        add %o1, %g2, %o1
        add %o1, %g3, %o1
        xor %o0, %o1, %o0
        add %l0, 1, %l0
        cmp %l0, 400
        bne loop
        nop
        ta 0
)",
                                     kTextBase);
  expect_step_jit_identical(prog, 1'000'000, "mem-widths");
}

TEST(Jit, CallJmplUartMmioIdenticalToStep) {
  SKIP_WITHOUT_JIT();
  // call/retl pairs (jmpl exits re-enter via the host), a UART store per
  // iteration (MMIO goes through the generic helper), and an instret MMIO
  // read mid-block (the helper must expose exact mid-block instret).
  const auto prog = asmkit::assemble(R"(
_start: mov 0, %l0
        mov 0, %o0
        set 0x80000000, %l5
        set 0x80000108, %l6
loop:   call fn
        nop
        ld [%l6], %l2
        xor %o0, %l2, %o0
        and %l0, 63, %l3
        add %l3, 48, %l3
        st %l3, [%l5]
        add %l0, 1, %l0
        cmp %l0, 200
        bne loop
        nop
        ta 0
fn:     retl
        add %o0, 3, %o0
)",
                                     kTextBase);
  expect_step_jit_identical(prog, 1'000'000, "call-jmpl-mmio");
}

TEST(Jit, KernelWorkloadsIdenticalToStep) {
  SKIP_WITHOUT_JIT();
  // Real compiled workloads, both ABIs: hard-float kernels exercise the
  // FPU-rejection fallback (exec_block inside a kJit run), soft-float the
  // branchiest emulation code in the repo.
  workloads::SobelKernelParams params;
  params.count = 1;
  for (const auto abi : {mcc::FloatAbi::kHard, mcc::FloatAbi::kSoft}) {
    const auto job = workloads::make_sobel_jobs(abi, params)[0];
    Iss step, jit;
    for (auto* iss : {&step, &jit}) {
      iss->load(job.program);
      for (const auto& [addr, bytes] : job.inputs) {
        iss->bus().write_block(addr, bytes.data(), bytes.size());
      }
    }
    const auto rs = step.run(2'000'000'000ull, Dispatch::kStep);
    const auto rj = jit.run(2'000'000'000ull, Dispatch::kJit);
    ASSERT_TRUE(rs.halted && rj.halted) << job.name;
    EXPECT_EQ(rs.exit_code, rj.exit_code) << job.name;
    EXPECT_EQ(rs.instret, rj.instret) << job.name;
    EXPECT_EQ(step.counters().counts, jit.counters().counts) << job.name;
    const auto ds = arch_digest(step.cpu(), step.bus());
    const auto dj = arch_digest(jit.cpu(), jit.bus());
    EXPECT_EQ(ds.cpu, dj.cpu) << job.name;
    EXPECT_EQ(ds.ram, dj.ram) << job.name;
  }
}

TEST(Jit, FpuBlocksRejectedAndFallBackPerBlock) {
  SKIP_WITHOUT_JIT();
  // A loop mixing FPU arithmetic, fcmp/fbfcc, and integer bookkeeping: the
  // FPU blocks must be rejected (exec_block fallback inside the kJit run)
  // while results stay bit-identical to stepping.
  const auto prog = asmkit::assemble(R"(
_start: set 0x40100000, %g1
        set 0x3FC00000, %l1
        st %l1, [%g1]
        set 0x3E800000, %l2
        st %l2, [%g1 + 4]
        ldf [%g1], %f0
        ldf [%g1 + 4], %f1
        mov 0, %l0
loop:   fadds %f0, %f1, %f2
        fmuls %f2, %f1, %f3
        fsubs %f2, %f3, %f0
        fcmps %f0, %f1
        nop
        fbl skip
        nop
        fadds %f0, %f0, %f0
skip:   add %l0, 1, %l0
        cmp %l0, 50
        bne loop
        nop
        stf %f0, [%g1 + 8]
        ld [%g1 + 8], %o0
        ta 0
)",
                                     kTextBase);
  Iss iss;
  iss.load(prog);
  const auto r = iss.run(1'000'000, Dispatch::kJit);
  ASSERT_TRUE(r.halted);
  ASSERT_NE(iss.platform().block_cache()->jit(), nullptr);
  EXPECT_GE(iss.platform().block_cache()->jit()->stats().blocks_rejected, 1u);
  expect_step_jit_identical(prog, 1'000'000, "fpu-reject");
}

// ---- budget exactness -----------------------------------------------------

TEST(Jit, BudgetExactAtEveryChainPhase) {
  SKIP_WITHOUT_JIT();
  // Two blocks in a cycle, budgets swept so the stop lands on block
  // boundaries, mid-block, and inside the folded delay instruction of the
  // taken `ba`. instret must equal the budget exactly, and the resumed
  // run must finish with the same state as an unbounded one.
  const auto prog = asmkit::assemble(R"(
_start: mov 0, %l0
loop:   add %l0, 1, %l0
        add %l0, 1, %l0
        ba other
        nop
other:  add %l0, 1, %l0
        add %l0, 1, %l0
        add %l0, 1, %l0
        ba loop
        nop
)",
                                     kTextBase);
  for (std::uint64_t budget = 95; budget <= 105; ++budget) {
    Iss iss;
    iss.load(prog);
    const auto r = iss.run(budget, Dispatch::kJit);
    EXPECT_FALSE(r.halted) << "budget " << budget;
    EXPECT_EQ(r.instret, budget) << "budget " << budget;
    // Resume for a fixed tail and cross-check against an uninterrupted
    // step run with the same total: split points must be invisible.
    iss.run(50, Dispatch::kJit);
    Iss ref;
    ref.load(prog);
    ref.run(budget + 50, Dispatch::kStep);
    EXPECT_EQ(iss.cpu().instret, ref.cpu().instret) << "budget " << budget;
    EXPECT_EQ(iss.cpu().pc, ref.cpu().pc) << "budget " << budget;
    EXPECT_EQ(iss.cpu().npc, ref.cpu().npc) << "budget " << budget;
    EXPECT_EQ(iss.cpu().r, ref.cpu().r) << "budget " << budget;
  }
}

// ---- self-modification and chain invalidation -----------------------------

TEST(Jit, SelfModifyingStoreRecompilesBlock) {
  SKIP_WITHOUT_JIT();
  // The program patches an instruction in its own (compiled) code and
  // loops back through it: the emitted store must invalidate the block —
  // and its native code — before the next entry.
  const auto prog = asmkit::assemble(R"(
_start: mov 0, %l7
        set patch, %g1
        set word, %g2
        ld [%g2], %l0
loop:   nop
patch:  mov 1, %o0
        cmp %l7, 1
        be done
        nop
        st %l0, [%g1]
        mov 1, %l7
        ba loop
        nop
done:   ta 0
word:   mov 7, %o0
)",
                                     kTextBase);
  Iss iss;
  iss.load(prog);
  const auto r = iss.run(1'000'000, Dispatch::kJit);
  ASSERT_TRUE(r.halted);
  EXPECT_EQ(r.exit_code, 7u);
  EXPECT_GE(iss.platform().block_cache()->stats().flushes, 1u);
  expect_step_jit_identical(prog, 1'000'000, "self-modify");
}

TEST(Jit, MidChainInvalidationUnpatchesBothSides) {
  SKIP_WITHOUT_JIT();
  // Block X patches block B's first word, then jumps into B; B jumps back
  // to X. Once X->B and B->X are patched into the emitted code, each store
  // kills B while X — B's native predecessor AND successor — is the block
  // in flight. A stale patched jump in either direction executes the old
  // "mov" bits and changes the sum.
  const auto prog = asmkit::assemble(R"(
_start: mov 0, %l7
        mov 0, %o0
        set patch, %g1
        ld [%g1], %l0
        set word, %g2
        ld [%g2], %l2
        xor %l0, %l2, %l2
loop:   xor %l0, %l2, %l0
        st %l0, [%g1]
        ba bblk
        nop
bblk:
patch:  mov 1, %o1
        add %o0, %o1, %o0
        cmp %l7, 3
        bne loop
        add %l7, 1, %l7
        ta 0
word:   mov 7, %o1
)",
                                     kTextBase);
  Iss iss;
  iss.load(prog);
  const auto r = iss.run(1'000'000, Dispatch::kJit);
  ASSERT_TRUE(r.halted);
  EXPECT_EQ(r.exit_code, 16u);  // patched values seen: 7, 1, 7, 1
  expect_step_jit_identical(prog, 1'000'000, "mid-chain-invalidation");
}

TEST(Jit, EmittedChainingKeepsHotLoopNative) {
  SKIP_WITHOUT_JIT();
  // Once the two-block cycle is patched, re-entries into the host loop
  // must stop: a long run should show a handful of native entries, not one
  // per iteration.
  const auto prog = asmkit::assemble(R"(
_start: mov 0, %l0
        set 100000, %l1
loop:   add %l0, 1, %l0
        cmp %l0, %l1
        bne other
        nop
        ta 0
other:  ba loop
        nop
)",
                                     kTextBase);
  Iss iss;
  iss.load(prog);
  const auto r = iss.run(10'000'000, Dispatch::kJit);
  ASSERT_TRUE(r.halted);
  const JitRuntime* jr = iss.platform().block_cache()->jit();
  ASSERT_NE(jr, nullptr);
  EXPECT_GE(jr->stats().patches, 1u);
  EXPECT_LT(jr->stats().entries, 64u)
      << "hot cycle kept bouncing back into the host loop";
}

// ---- inline branch-target cache (register-indirect exits) -----------------

TEST(Jit, InlineBtcKeepsCallReturnLoopNative) {
  SKIP_WITHOUT_JIT();
  // call/retl hot loop: the retl's register-indirect exit must stay native
  // once the inline BTC memoizes the return target — a long run shows a
  // handful of host entries and a hit count close to the iteration count,
  // with results bit-identical to stepping.
  const auto prog = asmkit::assemble(R"(
_start: mov 0, %o0
        set 50000, %l1
loop:   call fn
        nop
        subcc %l1, 1, %l1
        bne loop
        nop
        ta 0
fn:     retl
        add %o0, 1, %o0
)",
                                     kTextBase);
  Iss iss;
  iss.load(prog);
  const auto r = iss.run(10'000'000, Dispatch::kJit);
  ASSERT_TRUE(r.halted);
  const JitRuntime* jr = iss.platform().block_cache()->jit();
  ASSERT_NE(jr, nullptr);
  EXPECT_GE(jr->stats().btc_inserts, 1u);
  EXPECT_GT(jr->inline_btc_hits(), 10'000u);
  EXPECT_LT(jr->stats().entries, 64u)
      << "indirect exits kept bouncing back into the host loop";
  expect_step_jit_identical(prog, 10'000'000, "inline-btc");
}

TEST(Jit, InlineBtcAliasingReturnSitesStayCorrect) {
  SKIP_WITHOUT_JIT();
  // Two call sites whose return addresses are 2048 bytes apart — exactly
  // kInlineBtcEntries slots at word granularity — so both returns hash to
  // the same direct-mapped BTC slot. Each return evicts the other's entry;
  // the probe must miss (tag mismatch), fall back to the host, and never
  // jump to the aliased target.
  std::string src = R"(
_start: mov 0, %o0
        set 2000, %l1
loop:   call fn
        nop
)";
  // 510 nops + the call's own two words put the second return site exactly
  // 512 words past the first.
  for (int i = 0; i < 510; ++i) src += "        nop\n";
  src += R"(
        call fn
        nop
        subcc %l1, 1, %l1
        bne loop
        nop
        ta 0
fn:     retl
        add %o0, 1, %o0
)";
  const auto prog = asmkit::assemble(src, kTextBase);
  {
    Iss iss;
    iss.load(prog);
    const auto r = iss.run(10'000'000, Dispatch::kJit);
    ASSERT_TRUE(r.halted);
    const JitRuntime* jr = iss.platform().block_cache()->jit();
    ASSERT_NE(jr, nullptr);
    // Both sites resolve through the host and re-install the shared slot.
    EXPECT_GE(jr->stats().btc_inserts, 2u);
  }
  expect_step_jit_identical(prog, 10'000'000, "inline-btc-aliasing");
}

// ---- faults ---------------------------------------------------------------

TEST(Jit, DivisionByZeroFaultStateIdenticalToStep) {
  SKIP_WITHOUT_JIT();
  // Warm the block up with valid divisors first so the fault happens from
  // compiled code, then divide by zero: message, pc/npc, instret, and the
  // partial retire vector must match the stepping reference exactly.
  const auto prog = asmkit::assemble(R"(
_start: mov 8, %l0
        mov 100, %o0
loop:   udiv %o0, %l0, %o1
        add %o1, %o0, %o0
        sub %l0, 1, %l0
        cmp %l0, -1
        bne loop
        nop
        ta 0
)",
                                     kTextBase);
  const auto step = run_observed(prog, Dispatch::kStep);
  ASSERT_FALSE(step.fault.empty()) << "expected a division fault";
  expect_same(step, run_observed(prog, Dispatch::kJit), "div-zero");
}

TEST(Jit, MisalignedAccessFaultStateIdenticalToStep) {
  SKIP_WITHOUT_JIT();
  // The address walks 4, 2, 1, 0 byte strides: the first genuinely
  // misaligned word access must fault out of compiled code with the exact
  // stepping state (the emitted alignment guard routes it to the helper,
  // which rethrows the interpreter's own SimError).
  const auto prog = asmkit::assemble(R"(
_start: set 0x40100000, %g1
        mov 4, %l0
        mov 0, %o0
loop:   ld [%g1], %o1
        add %o0, %o1, %o0
        add %g1, %l0, %g1
        srl %l0, 1, %l0
        ba loop
        nop
)",
                                     kTextBase);
  const auto step = run_observed(prog, Dispatch::kStep);
  ASSERT_FALSE(step.fault.empty()) << "expected an alignment fault";
  expect_same(step, run_observed(prog, Dispatch::kJit), "misalign");
}

// ---- graceful degradation -------------------------------------------------

TEST(Jit, ForcedOffFallsBackToBlock) {
  // With the jit forced unavailable, --dispatch=jit semantics must be
  // bit-identical to chained block dispatch (this is also the only path a
  // non-x86-64 host ever runs): no JitRuntime is created at all.
  const auto prog = asmkit::assemble(R"(
_start: mov 0, %l0
        mov 0, %o0
loop:   add %o0, %l0, %o0
        add %l0, 1, %l0
        cmp %l0, 100
        bne loop
        nop
        ta 0
)",
                                     kTextBase);
  jit_set_forced_off(true);
  EXPECT_FALSE(jit_available());
  const auto jit = run_observed(prog, Dispatch::kJit);
  jit_set_forced_off(false);
  const auto block = run_observed(prog, Dispatch::kBlock);
  EXPECT_EQ(jit.halted, block.halted);
  EXPECT_EQ(jit.exit_code, block.exit_code);
  EXPECT_EQ(jit.instret, block.instret);
  EXPECT_EQ(jit.digest.cpu, block.digest.cpu);
  EXPECT_EQ(jit.digest.ram, block.digest.ram);
  EXPECT_EQ(jit.counts, block.counts);

  Iss iss;
  iss.load(prog);
  jit_set_forced_off(true);
  iss.run(1'000'000, Dispatch::kJit);
  jit_set_forced_off(false);
  EXPECT_EQ(iss.platform().block_cache()->jit(), nullptr)
      << "forced-off run must not have built a JitRuntime";
}

}  // namespace
}  // namespace nfp::sim
