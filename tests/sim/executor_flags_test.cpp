// Condition-code and control-transfer edge cases of the execution core.
#include <gtest/gtest.h>

#include "asmkit/assembler.h"
#include "sim/iss.h"
#include "sim/memmap.h"

namespace nfp::sim {
namespace {

std::uint32_t run_exit(const std::string& body) {
  Iss iss;
  iss.load(asmkit::assemble(body, kTextBase));
  const auto result = iss.run(1'000'000);
  EXPECT_TRUE(result.halted);
  return result.exit_code;
}

TEST(ExecutorFlags, AddccOverflow) {
  // 0x7FFFFFFF + 1 overflows: V set, N set, C clear.
  EXPECT_EQ(run_exit(R"(
_start: set 0x7FFFFFFC, %l0
        add %l0, 3, %l0
        addcc %l0, 1, %l1
        mov 0, %o0
        bvs v_set
        nop
        ta 0
v_set:  bneg n_set
        nop
        mov 1, %o0
        ta 0
n_set:  bcc done          ! carry must be clear
        nop
        mov 2, %o0
        ta 0
done:   mov 42, %o0
        ta 0
)"),
            42u);
}

TEST(ExecutorFlags, AddccCarryWithoutOverflow) {
  // 0xFFFFFFFF + 1 = 0: C set, Z set, V clear.
  EXPECT_EQ(run_exit(R"(
_start: mov -1, %l0
        addcc %l0, 1, %l1
        mov 0, %o0
        bcs c_set
        nop
        ta 0
c_set:  be z_set
        nop
        mov 1, %o0
        ta 0
z_set:  bvc done
        nop
        mov 2, %o0
        ta 0
done:   mov 42, %o0
        ta 0
)"),
            42u);
}

TEST(ExecutorFlags, SubccBorrow) {
  // 3 - 5: borrow (C set for subcc), negative.
  EXPECT_EQ(run_exit(R"(
_start: mov 3, %l0
        subcc %l0, 5, %l1
        mov 0, %o0
        bcs borrow
        nop
        ta 0
borrow: bneg done
        nop
        mov 1, %o0
        ta 0
done:   mov 42, %o0
        ta 0
)"),
            42u);
}

TEST(ExecutorFlags, AddxChainPropagatesCarry) {
  // 64-bit add: 0xFFFFFFFF:FFFFFFFF + 0:1 = 1:0.
  EXPECT_EQ(run_exit(R"(
_start: mov -1, %l0          ! low a
        mov -1, %l1          ! high a
        addcc %l0, 1, %l2    ! low sum, sets carry
        addx %l1, 0, %l3     ! high sum with carry
        mov %l3, %o0         ! 0 expected... -1 + carry = 0
        ta 0
)"),
            0u);
}

TEST(ExecutorFlags, SubxChainPropagatesBorrow) {
  // 64-bit subtract: 1:0 - 0:1 = 0:FFFFFFFF.
  EXPECT_EQ(run_exit(R"(
_start: mov 0, %l0           ! low a
        mov 1, %l1           ! high a
        subcc %l0, 1, %l2    ! low diff, borrow set
        subx %l1, 0, %l3     ! high diff minus borrow
        mov %l3, %o0
        ta 0
)"),
            0u);
}

TEST(ExecutorFlags, LogicalCcClearsOverflowAndCarry) {
  EXPECT_EQ(run_exit(R"(
_start: set 0x7FFFFFFC, %l0
        addcc %l0, 100, %l1  ! sets V
        andcc %l1, %l1, %g0  ! logical cc clears V and C
        mov 0, %o0
        bvc ok
        nop
        ta 0
ok:     mov 42, %o0
        ta 0
)"),
            42u);
}

TEST(ExecutorFlags, ConditionalBranchMatrix) {
  // One canonical value pair per condition; result accumulates bits.
  EXPECT_EQ(run_exit(R"(
_start: mov 0, %o0
        cmp %g0, 0           ! equal
        be t0
        nop
        ba f0
        nop
t0:     or %o0, 1, %o0
f0:     mov -5, %l0
        cmp %l0, 3           ! -5 < 3 signed
        bl t1
        nop
        ba f1
        nop
t1:     or %o0, 2, %o0
f1:     cmp %l0, 3           ! 0xFFFFFFFB > 3 unsigned
        bgu t2
        nop
        ba f2
        nop
t2:     or %o0, 4, %o0
f2:     cmp %l0, %l0
        bge t3               ! equal satisfies >=
        nop
        ba f3
        nop
t3:     or %o0, 8, %o0
f3:     ta 0
)"),
            15u);
}

TEST(ExecutorFlags, FPConditionMatrix) {
  EXPECT_EQ(run_exit(R"(
_start: set vals, %g1
        lddf [%g1], %f0      ! 1.5
        lddf [%g1+8], %f2    ! 2.5
        mov 0, %o0
        fcmpd %f0, %f2
        nop
        fbl t0
        nop
        ba f0
        nop
t0:     or %o0, 1, %o0
f0:     fcmpd %f2, %f0
        nop
        fbg t1
        nop
        ba f1
        nop
t1:     or %o0, 2, %o0
f1:     fcmpd %f0, %f0
        nop
        fbe t2
        nop
        ba f2
        nop
t2:     or %o0, 4, %o0
f2:     fcmpd %f0, %f2
        nop
        fbne t3
        nop
        ba f3
        nop
t3:     or %o0, 8, %o0
f3:     ta 0
        .data
        .align 8
vals:   .double 1.5, 2.5
)"),
            15u);
}

TEST(ExecutorFlags, AnnulledTakenConditionalExecutesDelay) {
  // b<cond>,a with the branch TAKEN executes the delay slot.
  EXPECT_EQ(run_exit(R"(
_start: mov 0, %o0
        cmp %g0, 0
        be,a target
        add %o0, 1, %o0      ! taken + annul -> still executes
        add %o0, 100, %o0
target: ta 0
)"),
            1u);
}

TEST(ExecutorFlags, BackwardBranchLoopsPreciseCount) {
  EXPECT_EQ(run_exit(R"(
_start: mov 0, %o0
        mov 7, %l0
loop:   add %o0, 2, %o0
        subcc %l0, 1, %l0
        bg loop
        nop
        ta 0
)"),
            14u);
}

TEST(ExecutorFlags, JmplIndirectTarget) {
  EXPECT_EQ(run_exit(R"(
_start: set dest, %l0
        jmpl %l0, %g0
        nop
        mov 1, %o0
        ta 0
dest:   mov 42, %o0
        ta 0
)"),
            42u);
}

TEST(ExecutorFlags, CallStoresReturnAddressInO7) {
  EXPECT_EQ(run_exit(R"(
_start: call func
        nop
after:  sub %o7, %g6, %o0   ! %o7 == address of the call == _start
        ta 0
func:   set _start, %g6
        retl
        nop
)"),
            0u);
}

}  // namespace
}  // namespace nfp::sim
